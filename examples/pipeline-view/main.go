// Pipeline-view: watch the RISC I two-stage pipeline cycle by cycle.
// Fetch overlaps execution; loads and stores borrow the shared memory
// port and suspend the next fetch for one cycle; delayed jumps keep the
// pipe full by executing the already-fetched shadow instruction.
package main

import (
	"fmt"
	"log"

	"risc1/internal/asm"
	"risc1/internal/cpu"
	"risc1/internal/isa"
	"risc1/internal/pipeline"
)

const program = `
	.equ buf, 0x800
main:	add r2, r0, 5		; plain register op: 1 cycle
	stl r2, r0, buf		; store: data access suspends a fetch
	ldl r3, r0, buf		; load: ditto
	add r3, r3, 1
	ba skip			; delayed jump
	add r4, r0, 9		; shadow slot: executes anyway
	add r4, r0, 77		; skipped
skip:	ret
	nop
`

func main() {
	prog, err := asm.Assemble(program, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	machine := cpu.New(cpu.Config{})
	model := pipeline.New(true)
	machine.Tracer = func(pc uint32, in isa.Inst) { model.Issue(in.Op) }
	machine.Reset(prog.Entry)
	if err := prog.LoadInto(machine.Mem); err != nil {
		log.Fatal(err)
	}
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("two-stage RISC I pipeline timeline:")
	fmt.Println()
	fmt.Print(model.Timeline())
	s := model.Stats()
	fmt.Printf("\n%d instructions in %d cycles (%.0f%% port utilization, %d fetch stalls)\n",
		s.Instructions, s.Cycles, 100*s.Utilization(), s.MemStalls)
	fmt.Printf("r4 = %d (the shadow slot ran; the skipped instruction did not)\n",
		machine.Regs.Get(4))
}
