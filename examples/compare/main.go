// Compare: show the same MiniC function compiled for both targets, side
// effects of the two design philosophies made visible — RISC I's fixed
// 32-bit register-to-register code against the CISC baseline's dense
// variable-length memory-operand code. Then run both and report the
// dynamic counts, reproducing the paper's core argument in miniature.
package main

import (
	"fmt"
	"log"
	"strings"

	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/vax"
)

const source = `
int total;
int result;

int weigh(int x) {
	return x * 10 + x / 4 + x % 3;
}

int main() {
	int i;
	total = 0;
	for (i = 0; i < 200; i = i + 1) {
		total = total + weigh(i);
	}
	result = total;
	return 0;
}
`

func main() {
	rprog, rtext, _, err := cc.CompileRISC(source, cc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	vprog, vtext, _, err := cc.CompileVAX(source, cc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== the function 'weigh' on each target ===")
	fmt.Println("\n--- RISC I (fixed 32-bit instructions, load/store only) ---")
	fmt.Print(extract(rtext, "weigh:"))
	fmt.Println("\n--- CISC baseline (variable length, memory operands) ---")
	fmt.Print(extract(vtext, "weigh:"))

	r := cpu.New(cpu.Config{})
	r.Reset(rprog.Entry)
	must(rprog.LoadInto(r.Mem))
	must(r.Run())
	v := vax.New(vax.Config{})
	v.Reset(vprog.Entry)
	must(vprog.LoadInto(v.Mem))
	must(v.Run())

	ra, _ := rprog.Symbol("result")
	rv, _ := r.Mem.LoadWord(ra)
	va, _ := vprog.Symbol("result")
	vv, _ := v.Mem.LoadWord(va)
	fmt.Printf("\n=== dynamic comparison (result %d == %d) ===\n", int32(rv), int32(vv))
	fmt.Printf("%-24s %12s %12s\n", "", "RISC I", "CISC")
	fmt.Printf("%-24s %12d %12d\n", "code bytes", rprog.TextSize, vprog.TextSize)
	fmt.Printf("%-24s %12d %12d\n", "instructions", r.Trace.Instructions, v.Trace.Instructions)
	fmt.Printf("%-24s %12.1f %12.1f\n", "avg cycles/instruction",
		float64(r.Trace.Cycles)/float64(r.Trace.Instructions),
		float64(v.Trace.Cycles)/float64(v.Trace.Instructions))
	fmt.Printf("%-24s %12.0f %12.0f\n", "microseconds", r.Micros(), v.Micros())
	fmt.Printf("\nRISC I runs %.2fx faster despite %.2fx more instructions and %.2fx larger code.\n",
		v.Micros()/r.Micros(),
		float64(r.Trace.Instructions)/float64(v.Trace.Instructions),
		float64(rprog.TextSize)/float64(vprog.TextSize))
}

// extract pulls one function's text from an assembly listing: from its
// label to the next top-level label.
func extract(text, label string) string {
	var out []string
	in := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, label) {
			in = true
		} else if in && len(line) > 0 && line[0] != '\t' && line[0] != ';' &&
			!strings.HasPrefix(line, ".L") {
			break
		}
		if in {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n") + "\n"
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
