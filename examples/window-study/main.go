// Window-study: reproduce the paper's register-window design-space
// exploration on one program. For each window count, run recursive
// Fibonacci and report how often calls overflow onto the memory save
// stack, the trap cycles paid, and total run time — the data that
// justified choosing eight windows.
package main

import (
	"fmt"
	"log"

	"risc1/internal/cc"
	"risc1/internal/cpu"
)

const source = `
int result;
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	result = fib(18);
	return 0;
}
`

func main() {
	prog, _, _, err := cc.CompileRISC(source, cc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("register-window design space on fib(18) — 2584 as a checksum")
	fmt.Printf("%8s %10s %10s %10s %12s %10s %9s\n",
		"windows", "physregs", "calls", "overflows", "rate", "trap cyc", "total µs")

	for _, windows := range []int{2, 3, 4, 6, 8, 12, 16} {
		c := cpu.New(cpu.Config{Windows: windows})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			log.Fatal(err)
		}
		if err := c.Run(); err != nil {
			log.Fatal(err)
		}
		addr, _ := prog.Symbol("result")
		if v, _ := c.Mem.LoadWord(addr); v != 2584 {
			log.Fatalf("windows=%d: fib(18) = %d, want 2584", windows, v)
		}
		st := c.Regs.Stats
		fmt.Printf("%8d %10d %10d %10d %11.2f%% %10d %9.0f\n",
			windows, c.Regs.Config().PhysicalRegs(), st.Calls, st.Overflows,
			100*float64(st.Overflows)/float64(st.Calls),
			c.Stats.TrapCycles, c.Micros())
	}

	fmt.Println("\nThe paper's conclusion, visible above: beyond ~8 windows the")
	fmt.Println("overflow rate is already negligible for real call patterns, so")
	fmt.Println("more silicon buys nothing — 8 windows (138 registers) is the knee.")
}
