// Quickstart: assemble a small RISC I program through the library API,
// run it on the cycle-level simulator, and inspect registers, window
// activity, and cycle counts.
package main

import (
	"fmt"
	"log"

	"risc1/internal/asm"
	"risc1/internal/cpu"
)

const program = `
; sum the numbers 1..100 into r2, then compute 2^10 by doubling in r3
main:	add r2, r0, 0		; sum := 0
	add r4, r0, 1		; i := 1
loop:	add r2, r2, r4
	add r4, r4, 1
	sub. r0, r4, 100	; compare i with 100
	ble loop
	nop			; delayed jump: this slot always executes

	add r3, r0, 1
	add r5, r0, 10
pow:	sll r3, r3, 1
	sub. r5, r5, 1
	bne pow
	nop
	ret			; halts: main returns to the halt sentinel
	nop
`

func main() {
	prog, err := asm.Assemble(program, asm.Options{Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d bytes of code; optimizer filled %d of %d delay slots\n",
		prog.TextSize, prog.Slots.Filled, prog.Slots.Transfers)

	machine := cpu.New(cpu.Config{}) // the paper's 8-window organization
	machine.Reset(prog.Entry)
	if err := prog.LoadInto(machine.Mem); err != nil {
		log.Fatal(err)
	}
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sum 1..100   = %d (r2)\n", machine.Regs.Get(2))
	fmt.Printf("2^10         = %d (r3)\n", machine.Regs.Get(3))
	fmt.Printf("instructions = %d\n", machine.Trace.Instructions)
	fmt.Printf("cycles       = %d (%.1f µs at the paper's 400 ns cycle)\n",
		machine.Trace.Cycles, machine.Micros())
	fmt.Println("\ndynamic instruction mix:")
	for _, s := range machine.Trace.Mix() {
		fmt.Printf("  %-8s %5.1f%%\n", s.Name, 100*s.Frac)
	}
}
