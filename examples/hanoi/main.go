// Hanoi: compile the call-intensive Towers of Hanoi benchmark from MiniC
// and race the RISC I machine against the CISC baseline — the head-to-
// head the paper's evaluation is built on. Procedure-call-heavy code is
// where the register windows shine.
package main

import (
	"fmt"
	"log"

	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/vax"
)

const discs = 16

var source = fmt.Sprintf(`
int moves;
int result;

void hanoi(int n, int from, int to, int via) {
	if (n == 0) return;
	hanoi(n - 1, from, via, to);
	moves = moves + 1;
	hanoi(n - 1, via, to, from);
}

int main() {
	moves = 0;
	hanoi(%d, 1, 3, 2);
	result = moves;
	return 0;
}
`, discs)

func main() {
	// RISC I: windows advance on CALL; most activations never touch
	// memory.
	rprog, _, _, err := cc.CompileRISC(source, cc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	r := cpu.New(cpu.Config{})
	r.Reset(rprog.Entry)
	if err := rprog.LoadInto(r.Mem); err != nil {
		log.Fatal(err)
	}
	if err := r.Run(); err != nil {
		log.Fatal(err)
	}

	// CISC baseline: every call builds a stack frame under microcode.
	vprog, _, _, err := cc.CompileVAX(source, cc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	v := vax.New(vax.Config{})
	v.Reset(vprog.Entry)
	if err := vprog.LoadInto(v.Mem); err != nil {
		log.Fatal(err)
	}
	if err := v.Run(); err != nil {
		log.Fatal(err)
	}

	addr, _ := rprog.Symbol("result")
	moves, _ := r.Mem.LoadWord(addr)
	fmt.Printf("towers of Hanoi, %d discs: %d moves\n\n", discs, moves)

	fmt.Printf("%-28s %14s %14s\n", "", "RISC I", "CISC baseline")
	fmt.Printf("%-28s %14d %14d\n", "code bytes", rprog.TextSize, vprog.TextSize)
	fmt.Printf("%-28s %14d %14d\n", "instructions executed", r.Trace.Instructions, v.Trace.Instructions)
	fmt.Printf("%-28s %14d %14d\n", "cycles", r.Trace.Cycles, v.Trace.Cycles)
	fmt.Printf("%-28s %14.0f %14.0f\n", "microseconds", r.Micros(), v.Micros())
	fmt.Printf("%-28s %14d %14d\n", "procedure calls", r.Regs.Stats.Calls, v.Stats.Calls)
	riscWords := r.Stats.SpillWords + r.Stats.RefillWords
	fmt.Printf("%-28s %14d %14d\n", "call memory words moved", riscWords, v.Stats.CallMemWords)
	fmt.Printf("\nwindow overflows: %d of %d calls (%.2f%%); speedup %.2fx\n",
		r.Regs.Stats.Overflows, r.Regs.Stats.Calls,
		100*float64(r.Regs.Stats.Overflows)/float64(r.Regs.Stats.Calls),
		v.Micros()/r.Micros())
}
