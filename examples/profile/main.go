// Profile: attach the observability layer to a RISC I run — guest
// profiler plus event tracer — and print where the simulated cycles go.
// This is the library-level form of risc1-run's -profile and -report
// flags: compile a MiniC program, hang an obs.Observer off the CPU, and
// render the flat/cumulative function table, the disassembly-annotated
// hot spots, and the versioned JSON run report.
package main

import (
	"fmt"
	"log"
	"os"

	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/obs"
)

const source = `
int result;

int gcd(int a, int b) {
	if (b == 0) return a;
	return gcd(b, a - (a / b) * b);
}

int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}

int main() {
	result = fib(15) + gcd(1071, 462);
	return 0;
}
`

func main() {
	prog, _, _, err := cc.CompileRISC(source, cc.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}

	c := cpu.New(cpu.Config{})
	o := &obs.Observer{
		// Ring-only tracer: no sink, but the last events stay inspectable
		// (risc1-run prints this tail when a traced program faults).
		Tracer: obs.NewTracer(0, nil),
		Prof:   obs.NewProfiler(),
	}
	c.Obs = o
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		log.Fatal(err)
	}
	o.Prof.Start(prog.Entry)
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
	if err := o.Finish(); err != nil {
		log.Fatal(err)
	}

	// The compiler's symbol table names the profile rows; the CPU's
	// memory image disassembles the hot spots.
	symtab := obs.NewSymTab(prog.Symbols)
	fmt.Print(obs.FormatProfile(o.Prof, symtab, c.Disassembler(), 8))

	fmt.Printf("\nlast %d trace events:\n", 5)
	ts := obs.NewTextSink(os.Stdout)
	for _, ev := range o.Tracer.Tail(5) {
		ts.Emit(ev)
	}
	ts.Close()

	report := c.BuildReport("fib+gcd")
	report.Config.Optimized = true
	report.Profile = obs.ProfileSection(o.Prof, symtab, c.Disassembler(), 5)
	b, err := report.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun report (%d bytes of JSON):\n", len(b))
	os.Stdout.Write(b)
}
