// Interrupt: demonstrate RISC I's CALLINT/RETINT machinery. A main loop
// counts while we inject periodic external interrupts; the handler runs
// in a fresh register window (so the interrupted code's registers are
// untouched), bumps a counter, and resumes transparently with RETINT.
package main

import (
	"fmt"
	"log"

	"risc1/internal/asm"
	"risc1/internal/cpu"
)

const program = `
main:	add r2, r0, 0		; work counter (global register)
loop:	add r2, r2, 1
	sub. r0, r2, 3000
	blt loop
	nop
	ret
	nop

	.org 0x400
handler:
	add r3, r3, 1		; interrupt counter
	add r16, r0, 999	; scribble on a local: our window, not main's
	retint r25, 0		; resume exactly where we left off
	nop
`

func main() {
	prog, err := asm.Assemble(program, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	vector, _ := prog.Symbol("handler")

	machine := cpu.New(cpu.Config{})
	machine.Reset(prog.Entry)
	if err := prog.LoadInto(machine.Mem); err != nil {
		log.Fatal(err)
	}

	// Drive the machine manually, raising an interrupt every 500
	// instructions — a crude timer tick.
	ticks := 0
	for {
		if halted, _ := machine.Halted(); halted {
			break
		}
		if n := machine.Trace.Instructions; n > 0 && n%500 == 0 && machine.InterruptsEnabled() {
			machine.RaiseInterrupt(vector)
			ticks++
		}
		machine.Step()
	}
	if _, err := machine.Halted(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("main loop completed %d iterations — untouched by %d interrupts\n",
		machine.Regs.Get(2), ticks)
	fmt.Printf("handler ran %d times (r3)\n", machine.Regs.Get(3))
	fmt.Printf("window calls %d, returns %d — each interrupt entry advanced a window\n",
		machine.Regs.Stats.Calls, machine.Regs.Stats.Returns)
	fmt.Println("\nThe window file gives interrupt handlers their own registers for")
	fmt.Println("free: entry is one cycle plus (rarely) a spill, versus saving a")
	fmt.Println("full register frame to memory on a conventional machine.")
}
