#!/bin/sh
# check.sh — the full verification suite as one command.
# Tier-1 (build + tests) plus static analysis and the race detector.
# staticcheck runs when installed (CI installs it; local runs without
# it just skip that step).
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (CI runs it)"
fi
go test ./...
go test -race ./...
# Session-lifecycle goroutine leak checks (see Makefile `leakcheck`).
go test -count=2 ./internal/session -run 'TestSessionGoroutineLeak'
go test -count=2 ./cmd/risc1-serve -run 'TestServeDrainClosesOpenStream|TestDrainCancelsInflightWithoutLeaking'
