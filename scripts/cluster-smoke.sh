#!/bin/sh
# cluster-smoke.sh — 3-replica kill-one-replica smoke test.
#
# Boots three risc1-serve replicas from generated risc1.cluster-config/v1
# files, verifies the fleet with `risc1-loadgen -cluster`, warms it with
# fixed-rate load, SIGKILLs one replica, waits out the detection window,
# and asserts that (a) load against the survivors completes with zero
# transport errors and zero 5xx outcomes, and (b) both survivors'
# /v1/cluster documents report the victim down. Run from anywhere; CI
# runs it on every push.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/risc1-serve" ./cmd/risc1-serve
go build -o "$WORK/risc1-loadgen" ./cmd/risc1-loadgen

P1=18461 P2=18462 P3=18463
U1="http://127.0.0.1:$P1" U2="http://127.0.0.1:$P2" U3="http://127.0.0.1:$P3"

# Short probe interval and threshold: the detection window is
# ~3 * 250ms, so the post-kill sleep below comfortably covers it.
for i in 1 2 3; do
    eval "self=\$U$i"
    cat > "$WORK/cluster-$i.json" <<EOF
{
  "schema": "risc1.cluster-config/v1",
  "self": "$self",
  "peers": ["$U1", "$U2", "$U3"],
  "probeIntervalMS": 250,
  "probeTimeoutMS": 1000,
  "failAfter": 3
}
EOF
done

for i in 1 2 3; do
    eval "port=\$P$i"
    "$WORK/risc1-serve" -addr "127.0.0.1:$port" -workers 2 \
        -cluster "$WORK/cluster-$i.json" 2> "$WORK/serve-$i.log" &
    PIDS="$PIDS $!"
done

# Wait for all three to listen.
for i in 1 2 3; do
    eval "url=\$U$i"
    for _ in $(seq 1 50); do
        if curl -sf "$url/healthz" >/dev/null 2>&1; then break; fi
        sleep 0.1
    done
    curl -sf "$url/healthz" >/dev/null || { echo "replica $i never came up" >&2; cat "$WORK/serve-$i.log" >&2; exit 1; }
done

echo "== fleet check (all 3 up)"
"$WORK/risc1-loadgen" -urls "$U1,$U2,$U3" -cluster

echo "== warmup load across 3 replicas"
"$WORK/risc1-loadgen" -urls "$U1,$U2,$U3" -rate 150 -requests 300 -seed 7 \
    -report "$WORK/warmup.json" 2> "$WORK/warmup.log"
grep -E 'transport_error|wrong_value' "$WORK/warmup.log" && { echo "warmup saw transport errors" >&2; exit 1; }

echo "== SIGKILL replica 3"
VICTIM=$(echo "$PIDS" | awk '{print $3}')
kill -9 "$VICTIM"
# Detection window: failAfter(3) * probeIntervalMS(250) plus slack.
sleep 2

echo "== survivors' /v1/cluster must report the victim down"
for url in "$U1" "$U2"; do
    doc=$(curl -sf "$url/v1/cluster")
    echo "$doc" | grep -q "\"url\": \"$U3\"" || { echo "$url: victim missing from membership" >&2; exit 1; }
    echo "$doc" | python3 -c "
import json, sys
doc = json.load(sys.stdin)
states = {m['url']: m['state'] for m in doc['members']}
assert states['$U3'] == 'down', f'victim state {states[\"$U3\"]!r}, want down'
" || { echo "$url: victim not marked down" >&2; echo "$doc" >&2; exit 1; }
done

echo "== load against the survivors: zero client-visible failures"
"$WORK/risc1-loadgen" -urls "$U1,$U2" -rate 150 -requests 300 -seed 11 \
    -report "$WORK/after.json" 2> "$WORK/after.log"
cat "$WORK/after.log"
if grep -E 'transport_error|wrong_value|internal' "$WORK/after.log"; then
    echo "survivor load saw client-visible failures" >&2
    exit 1
fi
python3 - "$WORK/after.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
outcomes = {o["name"]: o["count"] for o in rep["totals"]["outcomes"]}
bad = {k: v for k, v in outcomes.items()
       if k in ("transport_error", "wrong_value", "internal", "peer_unavailable")}
assert not bad, f"client-visible failures after the kill: {bad}"
assert outcomes.get("ok", 0) > 0, f"no successful requests at all: {outcomes}"
EOF

echo "== fleet check on the survivors (views converged, victim down everywhere)"
if "$WORK/risc1-loadgen" -urls "$U1,$U2" -cluster; then
    echo "survivor views consistent"
else
    echo "survivors disagree about membership" >&2
    exit 1
fi

echo "cluster smoke OK"
