// Package risc1 hosts the top-level benchmark harness: one testing.B
// entry per reproduced table and figure of the RISC I paper, plus raw
// simulator-throughput benchmarks. Run with:
//
//	go test -bench=. -benchmem
package risc1

import (
	"reflect"
	"testing"

	"risc1/internal/bench"
	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/vax"
)

// TestICacheDeterminism asserts the instruction cache's core invariant:
// predecoding changes host speed only. Every simulated observable —
// result, cycles, instruction counts, window and CPU stats, mixes,
// call-depth histogram, data traffic — must be byte-identical with the
// cache on and off.
func TestICacheDeterminism(t *testing.T) {
	for _, name := range []string{"hanoi", "ackermann", "sieve"} {
		w, ok := bench.ByName(benchSuite, name)
		if !ok {
			t.Fatalf("no %s workload", name)
		}
		on, err := bench.RunRISC(w, bench.RiscConfig{Optimize: true, Opt: 1})
		if err != nil {
			t.Fatal(err)
		}
		off, err := bench.RunRISC(w, bench.RiscConfig{Optimize: true, Opt: 1, NoICache: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(on, off) {
			t.Errorf("%s: simulated results diverge with icache on/off:\non:  %+v\noff: %+v", name, on, off)
		}
	}
}

// benchSuite is the shared small-scale suite (paper-scale inputs are for
// cmd/risc1-bench; the benchmarks here must finish quickly).
var benchSuite = bench.Suite(bench.Small())

// BenchmarkTableInstructionSet regenerates T1 (instruction-set table).
func BenchmarkTableInstructionSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.TableInstructionSet(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableMachines regenerates T2 (machine characteristics).
func BenchmarkTableMachines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.TableMachines(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableSuite regenerates T3 (benchmark listing).
func BenchmarkTableSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.TableSuite(benchSuite); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// compareOnce runs the full suite on both machines (T4/T5/T6/F2 input).
func compareOnce(b *testing.B) []bench.Comparison {
	b.Helper()
	cs, err := bench.CompareAll(benchSuite)
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

// BenchmarkTableCodeSize regenerates T4 (static code size).
func BenchmarkTableCodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareOnce(b)
		if out := bench.TableCodeSize(cs); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableExecTime regenerates T5 (execution time).
func BenchmarkTableExecTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareOnce(b)
		if out := bench.TableExecTime(cs); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableMix regenerates T6 (dynamic instruction mix).
func BenchmarkTableMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareOnce(b)
		if out := bench.TableMix(cs); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigWindowSweep regenerates F1 (overflow rate vs windows).
func BenchmarkFigWindowSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := bench.SweepWindows(benchSuite, []int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if out := bench.FigWindowSweep(sweep); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigDelaySlots regenerates F2 (delayed-jump optimization).
func BenchmarkFigDelaySlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareOnce(b)
		if out := bench.FigDelaySlots(cs); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTableCallCost regenerates T7 (per-call cost).
func BenchmarkTableCallCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		costs, err := bench.MeasureCallCost()
		if err != nil {
			b.Fatal(err)
		}
		if out := bench.TableCallCost(costs); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableTraffic regenerates T8 (call memory traffic).
func BenchmarkTableTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareOnce(b)
		if out := bench.TableTraffic(cs); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigAblation regenerates A1 (design-feature ablation).
func BenchmarkFigAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblation(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if out := bench.FigAblation(rows); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkRiscSimulator measures raw simulated instructions/second on a
// compute-bound workload.
func BenchmarkRiscSimulator(b *testing.B) {
	w, ok := bench.ByName(benchSuite, "sieve")
	if !ok {
		b.Fatal("no sieve")
	}
	prog, _, _, err := cc.CompileRISC(w.Source, cc.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		c := cpu.New(cpu.Config{})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		instr = c.Trace.Instructions
	}
	b.ReportMetric(float64(instr), "guest-instr/op")
}

// benchRiscWorkload measures raw host throughput of the RISC simulator
// on one workload, with the predecoded instruction cache on or off.
// Paper-scale inputs are used so per-run setup (allocating and zeroing
// the 1 MiB simulated memory) amortizes away and the number measures the
// interpreter loop itself.
func benchRiscWorkload(b *testing.B, name string, noICache bool) {
	b.Helper()
	w, ok := bench.ByName(bench.Suite(bench.Default()), name)
	if !ok {
		b.Fatalf("no %s workload", name)
	}
	prog, _, _, err := cc.CompileRISC(w.Source, cc.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		c := cpu.New(cpu.Config{NoICache: noICache})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		instr = c.Trace.Instructions
	}
	b.ReportMetric(float64(instr), "guest-instr/op")
}

// BenchmarkRiscHanoi compares the interpreter's host speed with and
// without the predecoded instruction cache on the hanoi workload.
// Simulated cycles are identical in both variants (TestICacheDeterminism
// asserts it); only the host-time column should differ.
func BenchmarkRiscHanoi(b *testing.B) {
	b.Run("icache", func(b *testing.B) { benchRiscWorkload(b, "hanoi", false) })
	b.Run("nocache", func(b *testing.B) { benchRiscWorkload(b, "hanoi", true) })
}

// BenchmarkRiscAckermann is the same comparison on the call-stress test.
func BenchmarkRiscAckermann(b *testing.B) {
	b.Run("icache", func(b *testing.B) { benchRiscWorkload(b, "ackermann", false) })
	b.Run("nocache", func(b *testing.B) { benchRiscWorkload(b, "ackermann", true) })
}

// BenchmarkVaxSimulator is the CISC counterpart.
func BenchmarkVaxSimulator(b *testing.B) {
	w, ok := bench.ByName(benchSuite, "sieve")
	if !ok {
		b.Fatal("no sieve")
	}
	prog, _, _, err := cc.CompileVAX(w.Source, cc.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		c := vax.New(vax.Config{})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		instr = c.Trace.Instructions
	}
	b.ReportMetric(float64(instr), "guest-instr/op")
}

// BenchmarkCompilerRisc measures MiniC -> RISC compile+assemble speed.
func BenchmarkCompilerRisc(b *testing.B) {
	w, _ := bench.ByName(benchSuite, "qsort")
	for i := 0; i < b.N; i++ {
		if _, _, _, err := cc.CompileRISC(w.Source, cc.DefaultOptions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilerVax measures MiniC -> CISC compile+assemble speed.
func BenchmarkCompilerVax(b *testing.B) {
	w, _ := bench.ByName(benchSuite, "qsort")
	for i := 0; i < b.N; i++ {
		if _, _, _, err := cc.CompileVAX(w.Source, cc.DefaultOptions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigDepthHistogram regenerates F3 (call-depth profile).
func BenchmarkFigDepthHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareOnce(b)
		if out := bench.FigDepthHistogram(cs); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTableOpFrequency regenerates T9 (instruction frequency).
func BenchmarkTableOpFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareOnce(b)
		if out := bench.TableOpFrequency(cs); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}
