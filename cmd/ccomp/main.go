// Command ccomp compiles MiniC (the benchmark dialect of C) to assembly
// for either target, optionally assembling and running it.
//
// Usage:
//
//	ccomp -target risc file.c          # print RISC I assembly
//	ccomp -target cisc file.c          # print CISC baseline assembly
//	ccomp -target risc -run file.c     # compile, run, print "result"
//	ccomp -O0 -emit-ir file.c          # print the unoptimized IR
package main

import (
	"flag"
	"fmt"
	"os"

	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/vax"
)

func main() {
	target := flag.String("target", "risc", "code generator: risc or cisc")
	optimize := flag.Bool("O", true, "fill delayed-jump slots (risc only)")
	opt := flag.Int("opt", 1, "IR optimization level (also -O0/-O1)")
	emitIR := flag.Bool("emit-ir", false, "print the optimized IR and exit")
	run := flag.Bool("run", false, "execute and print the global \"result\"")
	flag.CommandLine.Parse(cc.NormalizeOptFlags(os.Args[1:]))
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccomp [-target risc|cisc] [-O0|-O1] [-emit-ir] [-run] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *emitIR {
		prog, _, err := cc.Frontend(string(src), *opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(prog.Dump())
		return
	}

	ccOpts := cc.Options{Opt: *opt, DelaySlots: *optimize}
	switch *target {
	case "risc":
		prog, text, _, err := cc.CompileRISC(string(src), ccOpts)
		if err != nil {
			fatal(err)
		}
		if !*run {
			fmt.Print(text)
			return
		}
		c := cpu.New(cpu.Config{})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			fatal(err)
		}
		if err := c.Run(); err != nil {
			fatal(err)
		}
		report(prog.Symbol, func(a uint32) (uint32, error) { return c.Mem.LoadWord(a) })
		fmt.Printf("%d instructions, %d cycles (%.1f µs)\n",
			c.Trace.Instructions, c.Trace.Cycles, c.Micros())

	case "cisc":
		prog, text, _, err := cc.CompileVAX(string(src), ccOpts)
		if err != nil {
			fatal(err)
		}
		if !*run {
			fmt.Print(text)
			return
		}
		c := vax.New(vax.Config{})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			fatal(err)
		}
		if err := c.Run(); err != nil {
			fatal(err)
		}
		report(prog.Symbol, func(a uint32) (uint32, error) { return c.Mem.LoadWord(a) })
		fmt.Printf("%d instructions, %d cycles (%.1f µs)\n",
			c.Trace.Instructions, c.Trace.Cycles, c.Micros())

	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}
}

func report(symbol func(string) (uint32, bool), load func(uint32) (uint32, error)) {
	addr, ok := symbol("result")
	if !ok {
		fmt.Println("(no global named \"result\")")
		return
	}
	v, err := load(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result = %d\n", int32(v))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccomp:", err)
	os.Exit(1)
}
