// Command ccomp compiles MiniC (the benchmark dialect of C) to assembly
// for either target, optionally assembling and running it.
//
// Usage:
//
//	ccomp -target risc file.c          # print RISC I assembly
//	ccomp -target cisc file.c          # print CISC baseline assembly
//	ccomp -target risc -run file.c     # compile, run, print "result"
package main

import (
	"flag"
	"fmt"
	"os"

	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/vax"
)

func main() {
	target := flag.String("target", "risc", "code generator: risc or cisc")
	optimize := flag.Bool("O", true, "fill delayed-jump slots (risc only)")
	run := flag.Bool("run", false, "execute and print the global \"result\"")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccomp [-target risc|cisc] [-O] [-run] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	switch *target {
	case "risc":
		prog, text, err := cc.CompileRISC(string(src), *optimize)
		if err != nil {
			fatal(err)
		}
		if !*run {
			fmt.Print(text)
			return
		}
		c := cpu.New(cpu.Config{})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			fatal(err)
		}
		if err := c.Run(); err != nil {
			fatal(err)
		}
		report(prog.Symbol, func(a uint32) (uint32, error) { return c.Mem.LoadWord(a) })
		fmt.Printf("%d instructions, %d cycles (%.1f µs)\n",
			c.Trace.Instructions, c.Trace.Cycles, c.Micros())

	case "cisc":
		prog, text, err := cc.CompileVAX(string(src))
		if err != nil {
			fatal(err)
		}
		if !*run {
			fmt.Print(text)
			return
		}
		c := vax.New(vax.Config{})
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			fatal(err)
		}
		if err := c.Run(); err != nil {
			fatal(err)
		}
		report(prog.Symbol, func(a uint32) (uint32, error) { return c.Mem.LoadWord(a) })
		fmt.Printf("%d instructions, %d cycles (%.1f µs)\n",
			c.Trace.Instructions, c.Trace.Cycles, c.Micros())

	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}
}

func report(symbol func(string) (uint32, bool), load func(uint32) (uint32, error)) {
	addr, ok := symbol("result")
	if !ok {
		fmt.Println("(no global named \"result\")")
		return
	}
	v, err := load(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result = %d\n", int32(v))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccomp:", err)
	os.Exit(1)
}
