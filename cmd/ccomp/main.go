// Command ccomp compiles MiniC (the benchmark dialect of C) to assembly
// for any registered target machine, optionally assembling and running it.
//
// Usage:
//
//	ccomp -target risc1 file.c         # print RISC I assembly
//	ccomp -target cisc file.c          # print CISC baseline assembly
//	ccomp -target rv32 file.c          # print RV32I-subset assembly
//	ccomp -target risc1 -run file.c    # compile, run, print "result"
//	ccomp -O0 -emit-ir file.c          # print the unoptimized IR
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"risc1/internal/cc"
	"risc1/internal/machine"
)

func main() {
	target := flag.String("target", machine.DefaultName,
		"target machine ("+strings.Join(machine.Names(), ", ")+"; aliases accepted)")
	optimize := flag.Bool("O", true, "fill delayed-jump slots (risc1 only)")
	opt := flag.Int("opt", 1, "IR optimization level (also -O0/-O1)")
	emitIR := flag.Bool("emit-ir", false, "print the optimized IR and exit")
	run := flag.Bool("run", false, "execute and print the global \"result\"")
	flag.CommandLine.Parse(cc.NormalizeOptFlags(os.Args[1:]))
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: ccomp [-target %s] [-O0|-O1] [-emit-ir] [-run] file.c\n",
			strings.Join(machine.Names(), "|"))
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *emitIR {
		prog, _, err := cc.Frontend(string(src), *opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(prog.Dump())
		return
	}

	b, ok := machine.Lookup(*target)
	if !ok {
		_, err := machine.Canonical(*target)
		fatal(err)
	}
	o := b.Normalize(machine.Options{Opt: *opt, DelaySlots: *optimize})
	prog, text, _, err := b.Compile(string(src), o)
	if err != nil {
		fatal(err)
	}
	if !*run {
		fmt.Print(text)
		return
	}
	m := b.New(o)
	m.Reset(prog.Entry())
	if err := prog.LoadInto(m.Mem()); err != nil {
		fatal(err)
	}
	if err := m.RunContext(context.Background()); err != nil {
		fatal(err)
	}
	if addr, ok := prog.Symbol("result"); !ok {
		fmt.Println("(no global named \"result\")")
	} else if v, err := m.Mem().LoadWord(addr); err != nil {
		fatal(err)
	} else {
		fmt.Printf("result = %d\n", int32(v))
	}
	fmt.Printf("%d instructions, %d cycles (%.1f µs)\n",
		m.Instructions(), m.Cycles(), m.Micros())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccomp:", err)
	os.Exit(1)
}
