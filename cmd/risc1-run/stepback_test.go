package main

import (
	"io"
	"strings"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cpu"
)

const stepbackSrc = `
main:	add r1, r0, 0
	add r2, r0, 1
loop:	add r1, r1, r2
	sll r3, r1, 1
	xor r3, r3, r2
	stl r3, r0, 256
	add r2, r2, 1
	sub. r0, r2, 2000
	ble loop
	nop
	ret
	nop
`

func buildMachine(t *testing.T) *cpu.CPU {
	t.Helper()
	prog, err := asm.Assemble(stepbackSrc, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTimeTravelMatchesStraightRun: for a spread of step-back distances
// — inside the checkpoint ring, across several checkpoints, and past
// the ring into the from-the-start replay — the rewound machine must be
// indistinguishable from a fresh machine stepped directly to the same
// instruction.
func TestTimeTravelMatchesStraightRun(t *testing.T) {
	// The loop runs long enough to lay down multiple checkpoints.
	ref := buildMachine(t)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	total := ref.Trace.Instructions
	if total < 3*stepBackInterval {
		t.Fatalf("workload too short (%d instructions) to cross checkpoints", total)
	}

	for _, back := range []uint64{1, 100, stepBackInterval + 7, total - 5, total + 1000} {
		c := buildMachine(t)
		if err := timeTravel(c, back, io.Discard); err != nil {
			t.Fatalf("step-back %d: %v", back, err)
		}
		target := uint64(0)
		if back < total {
			target = total - back
		}

		direct := buildMachine(t)
		if target > 0 {
			if _, err := direct.RunSteps(target); err != nil {
				t.Fatal(err)
			}
		}

		if c.Trace.Instructions != target || direct.Trace.Instructions != target {
			t.Fatalf("step-back %d: instruction counts %d/%d, want %d",
				back, c.Trace.Instructions, direct.Trace.Instructions, target)
		}
		if c.PC() != direct.PC() {
			t.Errorf("step-back %d: pc %08x, straight run %08x", back, c.PC(), direct.PC())
		}
		if c.Trace.Cycles != direct.Trace.Cycles {
			t.Errorf("step-back %d: cycles %d, straight run %d", back, c.Trace.Cycles, direct.Trace.Cycles)
		}
		for r := uint8(0); r < 32; r++ {
			if c.Regs.Get(r) != direct.Regs.Get(r) {
				t.Errorf("step-back %d: r%d = %08x, straight run %08x", back, r, c.Regs.Get(r), direct.Regs.Get(r))
			}
		}
		if v, _ := c.Mem.LoadWord(256); func() uint32 { w, _ := direct.Mem.LoadWord(256); return w }() != v {
			t.Errorf("step-back %d: memory at 256 diverged", back)
		}
	}
}

// TestTimeTravelOutput sanity-checks the human-readable rewind report.
func TestTimeTravelOutput(t *testing.T) {
	c := buildMachine(t)
	var b strings.Builder
	if err := timeTravel(c, 10, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"time travel:", "rewinding to instruction", "registers (current window)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
