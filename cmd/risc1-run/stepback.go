package main

import (
	"fmt"
	"io"

	"risc1/internal/cpu"
)

// stepBackInterval is how many instructions run between time-travel
// checkpoints. Rewinding costs at most one interval of re-execution on
// top of an O(touched pages) snapshot restore.
const stepBackInterval = 1024

// stepBackRing is how many checkpoints are retained. Older history is
// still reachable through the initial checkpoint — rewinding past the
// ring just replays from the start, trading time for memory.
const stepBackRing = 64

// timeTravel runs the machine to completion while taking periodic
// copy-on-write checkpoints, then rewinds it to the state it had
// stepBack instructions before the end (clamped to the start). The
// machine is left at the rewound state for inspection; the run's
// terminal error (fault, limit) is returned alongside the totals so the
// caller can report how the run ended.
//
// Checkpoints are memory-cheap: each shares untouched pages with its
// neighbors, so a long run with a small working set keeps the whole
// ring in a few hundred kilobytes.
func timeTravel(c *cpu.CPU, stepBack uint64, w io.Writer) (runErr error) {
	checkpoints := []*cpu.Snapshot{c.Snapshot()} // instruction 0, never evicted
	defer func() {
		for _, s := range checkpoints {
			s.Release()
		}
	}()

	done := false
	for !done {
		var err error
		done, err = c.RunSteps(stepBackInterval)
		if err != nil {
			runErr = err
			break
		}
		if !done {
			checkpoints = append(checkpoints, c.Snapshot())
			if len(checkpoints) > 1+stepBackRing {
				// Evict the oldest ring entry, keeping checkpoint 0.
				checkpoints[1].Release()
				checkpoints = append(checkpoints[:1], checkpoints[2:]...)
			}
		}
	}

	total := c.Trace.Instructions
	target := uint64(0)
	if stepBack < total {
		target = total - stepBack
	}
	fmt.Fprintf(w, "time travel: run ended at instruction %d; rewinding to instruction %d (-step-back %d)\n",
		total, target, stepBack)

	// Restore the newest checkpoint at or before the target, then replay
	// forward to it. Checkpoints are instruction-ordered.
	best := checkpoints[0]
	for _, s := range checkpoints[1:] {
		if s.Instructions() <= target {
			best = s
		}
	}
	c.Restore(best)
	if replay := target - best.Instructions(); replay > 0 {
		if _, err := c.RunSteps(replay); err != nil {
			return fmt.Errorf("time travel: replay diverged: %w (this is a bug)", err)
		}
	}
	if got := c.Trace.Instructions; got != target {
		return fmt.Errorf("time travel: rewound to instruction %d, wanted %d (this is a bug)", got, target)
	}

	fmt.Fprintf(w, "rewound state at instruction %d:\n", c.Trace.Instructions)
	fmt.Fprintf(w, "  pc %08x", c.PC())
	if text, ok := c.Disassembler()(c.PC()); ok {
		fmt.Fprintf(w, "  next: %s", text)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  cycles %d, window depth %d\n", c.Trace.Cycles, c.Regs.Depth())
	fmt.Fprintln(w, "  registers (current window):")
	for r := uint8(0); r < 32; r++ {
		fmt.Fprintf(w, "  r%-2d %08x", r, c.Regs.Get(r))
		if r%4 == 3 {
			fmt.Fprintln(w)
		}
	}
	return runErr
}
