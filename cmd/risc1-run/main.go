// Command risc1-run assembles and executes a RISC I assembly program,
// then reports registers, cycle counts, and register-window statistics.
//
// Usage:
//
//	risc1-run [-O] [-windows N] [-nocache] [-limit N] [-print sym,sym] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"risc1/internal/asm"
	"risc1/internal/cpu"
	"risc1/internal/isa"
)

func main() {
	optimize := flag.Bool("O", false, "fill delayed-jump slots")
	windows := flag.Int("windows", 0, "register windows (0 = the paper's 8)")
	noWindows := flag.Bool("nowindows", false, "ablation: spill every call")
	noICache := flag.Bool("nocache", false, "disable the predecoded instruction cache (host speed only; simulated results are identical)")
	limit := flag.Uint64("limit", 0, "instruction limit (0 = default)")
	printSyms := flag.String("print", "", "comma-separated globals to print as words after the run")
	traceN := flag.Uint64("trace", 0, "print the first N executed instructions")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: risc1-run [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src), asm.Options{Optimize: *optimize})
	if err != nil {
		fatal(err)
	}
	c := cpu.New(cpu.Config{Windows: *windows, NoWindows: *noWindows, NoICache: *noICache, MaxInstructions: *limit})
	if *traceN > 0 {
		var n uint64
		c.Tracer = func(pc uint32, in isa.Inst) {
			if n < *traceN {
				fmt.Printf("%08x: %s\n", pc, in)
			}
			n++
		}
	}
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		fatal(err)
	}
	if err := c.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("halted after %d instructions, %d cycles (%.1f µs at 400 ns)\n",
		c.Trace.Instructions, c.Trace.Cycles, c.Micros())
	fmt.Printf("windows: %d calls, %d returns, %d overflows, %d underflows, max depth %d\n",
		c.Regs.Stats.Calls, c.Regs.Stats.Returns,
		c.Regs.Stats.Overflows, c.Regs.Stats.Underflows, c.Regs.MaxDepth())
	fmt.Printf("jumps: %d taken, %d untaken; delay-slot nops executed: %d\n",
		c.Stats.JumpsTaken, c.Stats.JumpsUntaken, c.Stats.DelaySlotNops)
	fmt.Println("\nregisters (current window):")
	for r := uint8(0); r < 32; r++ {
		fmt.Printf("  r%-2d %08x", r, c.Regs.Get(r))
		if r%4 == 3 {
			fmt.Println()
		}
	}
	if *printSyms != "" {
		fmt.Println("\nglobals:")
		for _, name := range strings.Split(*printSyms, ",") {
			name = strings.TrimSpace(name)
			addr, ok := prog.Symbol(name)
			if !ok {
				fmt.Printf("  %s: undefined\n", name)
				continue
			}
			v, err := c.Mem.LoadWord(addr)
			if err != nil {
				fmt.Printf("  %s: %v\n", name, err)
				continue
			}
			fmt.Printf("  %s = %d (%#x)\n", name, int32(v), v)
		}
	}
	fmt.Println("\ninstruction mix:")
	for _, s := range c.Trace.Mix() {
		fmt.Printf("  %-8s %6.1f%%  (%d)\n", s.Name, 100*s.Frac, s.Count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "risc1-run:", err)
	os.Exit(1)
}
