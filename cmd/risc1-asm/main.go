// Command risc1-asm assembles RISC I assembly source and prints a
// listing: encoded words with disassembly, the symbol table, and the
// static statistics (code size, delay-slot fill) the evaluation uses.
//
// Usage:
//
//	risc1-asm [-O] file.s
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"risc1/internal/asm"
	"risc1/internal/isa"
)

func main() {
	optimize := flag.Bool("O", false, "fill delayed-jump slots")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: risc1-asm [-O] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src), asm.Options{Optimize: *optimize})
	if err != nil {
		fatal(err)
	}

	for _, seg := range prog.Segments {
		fmt.Printf("segment at %#08x, %d bytes\n", seg.Addr, len(seg.Data))
		for off := 0; off+4 <= len(seg.Data); off += 4 {
			w := binary.BigEndian.Uint32(seg.Data[off:])
			addr := seg.Addr + uint32(off)
			if in, err := isa.Decode(w); err == nil {
				fmt.Printf("  %08x: %08x  %s\n", addr, w, in)
			} else {
				fmt.Printf("  %08x: %08x  .word\n", addr, w)
			}
		}
	}

	fmt.Println("\nsymbols:")
	for _, name := range prog.SortedSymbols() {
		v, _ := prog.Symbol(name)
		fmt.Printf("  %08x  %s\n", v, name)
	}
	fmt.Printf("\ntext %d bytes, data %d bytes, entry %#x\n", prog.TextSize, prog.DataSize, prog.Entry)
	fmt.Printf("delay slots: %d transfers, %d filled (%.0f%%), %d nops\n",
		prog.Slots.Transfers, prog.Slots.Filled, 100*prog.Slots.FillRate(), prog.Slots.Nops)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "risc1-asm:", err)
	os.Exit(1)
}
