package main

import (
	"context"
	"time"

	"risc1/internal/exec"
)

// drainPool waits up to timeout for the pool to finish every accepted
// job, then cancels whatever is still running and waits for the workers
// to exit. It returns true if the drain was clean (nothing had to be
// cancelled).
//
// The helper owns its goroutine: by the time it returns, the pool is
// fully closed and the waiter it spawned has exited — cancelled jobs
// observe ctx cancellation and return, which lets Close complete. The
// drain test pins both properties (jobs see cancellation, no goroutine
// outlives the drain) under -race.
func drainPool(pool *exec.Pool, timeout time.Duration, logf func(format string, args ...any)) bool {
	drained := make(chan struct{})
	go func() {
		pool.Close() // waits for every accepted job
		close(drained)
	}()
	select {
	case <-drained:
		return true
	case <-time.After(timeout):
	}
	logf("drain budget exhausted; cancelling remaining jobs")
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := pool.Shutdown(sctx); err != nil {
		logf("pool shutdown: %v", err)
	}
	// Shutdown cancelled the in-flight jobs; wait for the Close waiter so
	// the drain leaves nothing behind.
	<-drained
	return false
}
