package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"risc1/internal/cluster"
	"risc1/internal/exec"
	"risc1/internal/peer"
	"risc1/internal/rcache"
)

// Horizontal serving: N replicas share one logical result cache by
// consistent-hashing every run's content address onto the *live*
// replica set. Each cache key has exactly one home replica; a replica
// that receives a request whose key lives elsewhere forwards it over
// the ordinary v1 contract and relays the home's response verbatim.
// Because run responses are deterministic and id-free (a cache hit is
// byte-identical to a recompute — the invariant the differential tests
// pin), relaying stored bytes is indistinguishable from computing
// locally — and, by the same invariant, computing locally is
// indistinguishable from relaying, which is what makes the failure
// path safe: when a home is down (or a relay fails), the edge simply
// executes the run itself and the client sees identical bytes.
//
// Membership is live (internal/cluster): health probes plus passive
// relay-failure detection move peers between up/down/incompatible, and
// the routing ring is recomputed over up members only. The 502
// peer_unavailable answer is a last resort — reachable only when a
// relay fails after the client itself has gone away — not the response
// to a dead peer.
//
// Hot keys are the exception to single-home placement: once a key's
// request count at a replica crosses the popularity threshold, that
// replica caches the home's response bytes locally (a peer fill) and
// serves subsequent repeats itself — replication for the Zipf head,
// single-home placement for the tail. Membership changes re-home keys,
// so the hot-key cache is purged whenever the ring generation moves.

// PeerHeader marks a request forwarded by another replica. The home
// executes such requests locally (never re-forwards), which both
// terminates routing in one hop and makes ring disagreement during
// membership convergence degrade to extra work instead of a loop.
const PeerHeader = "X-Risc1-Peer"

// RouteHeader reports how this replica placed a synchronous run:
// "local" (this replica is the key's home), "forward" (relayed to the
// home), "replica" (served from this replica's hot-key copy), or
// "fallback" (the home was unreachable; executed locally instead).
const RouteHeader = "X-Risc1-Route"

// codePeerUnavailable is the stable error code for a relay that failed
// after the client's own context ended — the one case where the edge
// can neither relay nor fall back to local execution. 502.
const codePeerUnavailable = "peer_unavailable"

// peering is one replica's view of the replica set.
type peering struct {
	// members is the live membership table: health-probed peers, the
	// routing ring over up members, and the generation counter.
	members *cluster.Membership
	self    string
	// client carries peer fetches; no overall timeout — the forwarded
	// run's own deadline bounds it.
	client *http.Client
	// pop tracks per-key request counts (with decay) to decide which
	// keys are hot enough to replicate.
	pop       *peer.Popularity
	threshold uint64
	// cache holds verbatim response bytes from home replicas, keyed by
	// the same content address as the result cache. Do provides
	// singleflight (concurrent repeats of one key fetch once); Put
	// stores only hot, deterministic responses. Purged whenever the
	// membership generation changes — a ring change re-homes keys, so
	// copies replicated from a departed peer must not keep serving.
	cache *rcache.Cache

	routed    atomic.Uint64 // sync requests whose home is another replica
	localHome atomic.Uint64 // sync requests this replica is home for
	served    atomic.Uint64 // requests executed here on behalf of a peer
	fetches   atomic.Uint64 // relays that reached the home replica
	errors    atomic.Uint64 // relays that failed
	fallbacks atomic.Uint64 // failed relays answered by local execution
	purges    atomic.Uint64 // peer-cache purges on generation change
	lastGen   atomic.Uint64 // membership generation the cache was last valid for
}

// newPeering builds the replica-set view and starts its health prober,
// or returns nil when clustering is off.
func newPeering(cfg ServerConfig, fp cluster.Fingerprint) *peering {
	cc := cfg.Cluster
	if cc == nil {
		return nil
	}
	threshold := cc.HotThreshold
	if threshold == 0 {
		threshold = 8
	}
	cacheBytes := cc.PeerCacheBytes
	if cacheBytes == 0 {
		cacheBytes = 64 << 20
	}
	p := &peering{
		members:   cluster.NewMembership(*cc, fp, &http.Client{}),
		self:      cc.Self,
		client:    &http.Client{},
		pop:       peer.NewPopularity(0, 0),
		threshold: threshold,
		cache:     rcache.New(cacheBytes),
	}
	p.lastGen.Store(p.members.Generation())
	p.members.Start()
	return p
}

// close stops the health prober. Idempotent.
func (p *peering) close() { p.members.Stop() }

// home returns the owning live replica for a key, or "" when the key
// is homed here — because this replica owns it, or because its owner
// is down and the recomputed ring re-homed it here. Ahead of the
// lookup, a membership generation change purges the hot-key cache:
// entries replicated under the old ring may belong to someone else
// now.
func (p *peering) home(key rcache.Key) string {
	p.maybePurge()
	owner := p.members.Ring().Owner(string(key))
	if owner == "" || owner == p.self {
		return ""
	}
	return owner
}

// maybePurge invalidates the peer cache if the membership generation
// moved since the last check. The CAS elects one purger per
// transition; a relay completing mid-purge can re-fill a stale-homed
// entry, which the next transition collects — and whose bytes are
// correct regardless, since responses are content-addressed and
// deterministic.
func (p *peering) maybePurge() {
	gen := p.members.Generation()
	for {
		last := p.lastGen.Load()
		if gen == last {
			return
		}
		if p.lastGen.CompareAndSwap(last, gen) {
			p.cache.Purge()
			p.purges.Add(1)
			return
		}
	}
}

// peerResult is a home replica's response, relayed verbatim.
type peerResult struct {
	status int
	cache  string // the home's X-Risc1-Cache header
	body   []byte
}

// peerRefusal is a home's wire-level rejection of a relay (the
// peer_protocol envelope): not a transient failure but a contract
// mismatch, so it marks the peer incompatible rather than counting
// toward the down threshold.
type peerRefusal struct{ msg string }

func (e *peerRefusal) Error() string { return e.msg }

// serve answers a synchronous run homed on another replica: from the
// local hot-key copy when there is one, otherwise by relaying to the
// home. The route return is the RouteHeader value; the cache return is
// the X-Risc1-Cache value the client sees — a local copy hit is "hit"
// and a shared in-flight relay is "coalesced", exactly what a single
// replica would report for the same repeat, so serial request streams
// read identically at any replica count. A non-nil error means the
// relay failed; the caller reports it to membership via this method's
// own bookkeeping and falls back to local execution.
func (p *peering) serve(ctx context.Context, home string, spec exec.Spec, timeout time.Duration, key rcache.Key) (res *peerResult, route, cacheLabel string, err error) {
	p.routed.Add(1)
	p.members.CountRoute(home)
	hot := p.pop.Bump(string(key)) >= p.threshold

	v, outcome, err := p.cache.Do(ctx, key, func() (any, int64, error) {
		pr, ferr := p.fetch(ctx, home, spec, timeout)
		if ferr != nil {
			return nil, 0, ferr
		}
		if rerr := relayRefusal(pr); rerr != nil {
			return nil, 0, rerr
		}
		// Never stored by Do: replication is Put's decision below,
		// reserved for hot keys with deterministic outcomes.
		return pr, -1, nil
	})
	if err != nil {
		p.errors.Add(1)
		var refusal *peerRefusal
		if errors.As(err, &refusal) {
			p.members.ReportIncompatible(home, refusal.msg)
		} else {
			p.members.ReportRelayFailure(home, err)
		}
		return nil, "forward", "", err
	}
	pr := v.(*peerResult)
	switch outcome {
	case rcache.Hit:
		return pr, "replica", "hit", nil
	case rcache.Coalesced:
		return pr, "forward", "coalesced", nil
	default: // Miss: this request performed the relay.
		p.fetches.Add(1)
		p.members.ReportRelaySuccess(home)
		if hot && peerCacheable(pr) {
			p.cache.Put(key, pr, int64(len(pr.body)))
		}
		return pr, "forward", pr.cache, nil
	}
}

// fetch relays the clamped spec to the home replica under the
// versioned peer wire contract. The body is reconstructed from the
// spec — not echoed from the client — so the home's own clamping is a
// no-op and both replicas compute the same content address.
func (p *peering) fetch(ctx context.Context, home string, spec exec.Spec, timeout time.Duration) (*peerResult, error) {
	opt := spec.Opt
	body, err := json.Marshal(runRequest{
		Schema:    RequestSchemaV1,
		Name:      spec.Name,
		Source:    spec.Source,
		Machine:   spec.Machine,
		Opt:       &opt,
		Fuel:      spec.Fuel,
		TimeoutMS: timeout.Milliseconds(),
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, home+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(PeerHeader, p.self)
	req.Header.Set(cluster.VersionHeader, strconv.Itoa(cluster.ProtocolVersion))
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &peerResult{
		status: resp.StatusCode,
		cache:  resp.Header.Get(CacheHeader),
		body:   raw,
	}, nil
}

// relayRefusal classifies a relayed response that must NOT be served
// to the client: a peer_protocol envelope (the home refused our wire
// version — contract mismatch) or a body that is not a v1 response at
// all (a proxy error page, a replica mid-restart). Both are relay
// failures; the caller falls back to local execution. Legitimate v1
// error envelopes — compile_error, deadline, even internal — are the
// home's answer and relay verbatim, exactly as a single replica would
// produce them.
func relayRefusal(pr *peerResult) error {
	switch out := peerOutcome(pr.body); out {
	case "invalid":
		return fmt.Errorf("peer answered status %d with a non-v1 body", pr.status)
	case codePeerProtocol:
		return &peerRefusal{msg: fmt.Sprintf("peer refused relay: %s", bytes.TrimSpace(pr.body))}
	default:
		return nil
	}
}

// peerCacheable reports whether a relayed response may be replicated:
// only deterministic outcomes — ok, compile_error, fuel_exceeded — the
// same set the result cache itself stores. Deadline results, 5xx, and
// backpressure are moments, not facts.
func peerCacheable(pr *peerResult) bool {
	switch peerOutcome(pr.body) {
	case "ok", codeCompileError, codeFuelExceeded:
		return true
	}
	return false
}

// peerOutcome classifies a relayed response body for metrics and
// cacheability: "ok", the error code, or "invalid" when the body is not
// a v1 response.
func peerOutcome(body []byte) string {
	var r struct {
		Status string `json:"status"`
		Error  *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		return "invalid"
	}
	if r.Error != nil {
		if r.Error.Code == "" {
			return "invalid"
		}
		return r.Error.Code
	}
	return "ok"
}

// PeerStats is a snapshot of the peering counters, exported for tests
// and /metrics.
type PeerStats struct {
	Replicas  int // live ring size (self + up peers)
	Routed    uint64
	LocalHome uint64
	Served    uint64
	Fetches   uint64
	Errors    uint64
	HotKeys   int
}

// PeerStats snapshots the peering layer; the zero value when peering is
// off.
func (s *Server) PeerStats() PeerStats {
	p := s.peering
	if p == nil {
		return PeerStats{}
	}
	return PeerStats{
		Replicas:  len(p.members.Ring().Nodes()),
		Routed:    p.routed.Load(),
		LocalHome: p.localHome.Load(),
		Served:    p.served.Load(),
		Fetches:   p.fetches.Load(),
		Errors:    p.errors.Load(),
		HotKeys:   p.pop.HotKeys(p.threshold),
	}
}

// Prometheus renders the peering counters in the text exposition
// format under the risc1_peer_ prefix.
func (ps PeerStats) Prometheus() string {
	var b bytes.Buffer
	row := func(name, typ string, v any) {
		fmt.Fprintf(&b, "# TYPE risc1_peer_%s %s\nrisc1_peer_%s %v\n", name, typ, name, v)
	}
	row("replicas", "gauge", ps.Replicas)
	row("routed_total", "counter", ps.Routed)
	row("local_home_total", "counter", ps.LocalHome)
	row("served_total", "counter", ps.Served)
	row("fetch_total", "counter", ps.Fetches)
	row("fetch_errors_total", "counter", ps.Errors)
	row("hot_keys", "gauge", ps.HotKeys)
	return b.String()
}
