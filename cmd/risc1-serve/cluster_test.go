package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"risc1/internal/cluster"
)

// fetchCluster GETs /v1/cluster from a replica and decodes the document.
func fetchCluster(t *testing.T, url string) cluster.Response {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc cluster.Response
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// memberStateIn finds url's state in a cluster document.
func memberStateIn(doc cluster.Response, url string) cluster.State {
	for _, m := range doc.Members {
		if m.URL == url {
			return m.State
		}
	}
	return ""
}

// waitForState polls a replica's /v1/cluster until peerURL reaches the
// wanted state.
func waitForState(t *testing.T, onURL, peerURL string, want cluster.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if memberStateIn(fetchCluster(t, onURL), peerURL) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("peer %s never became %q in %s's view (state %q)",
		peerURL, want, onURL, memberStateIn(fetchCluster(t, onURL), peerURL))
}

// TestClusterEndpoint: GET /v1/cluster serves the membership document —
// schema, self, generation, fingerprint, one row per configured member
// with self marked — and a standalone server answers with generation 0
// and its fingerprint so tooling can probe any risc1-serve uniformly.
func TestClusterEndpoint(t *testing.T) {
	rig := newCluster(t, 3, ServerConfig{}, cluster.Config{})
	doc := fetchCluster(t, rig.tss[0].URL)

	if doc.Schema != cluster.ResponseSchema {
		t.Errorf("schema %q, want %q", doc.Schema, cluster.ResponseSchema)
	}
	if doc.Self != rig.tss[0].URL {
		t.Errorf("self %q, want %q", doc.Self, rig.tss[0].URL)
	}
	if doc.Generation == 0 {
		t.Error("peered replica reports generation 0")
	}
	if len(doc.Members) != 3 {
		t.Fatalf("members %d, want 3", len(doc.Members))
	}
	if got := memberStateIn(doc, rig.tss[0].URL); got != cluster.StateSelf {
		t.Errorf("own row state %q, want self", got)
	}
	for _, peerURL := range []string{rig.tss[1].URL, rig.tss[2].URL} {
		if got := memberStateIn(doc, peerURL); got != cluster.StateUp {
			t.Errorf("peer %s state %q, want up", peerURL, got)
		}
	}
	if doc.Fingerprint.Protocol != cluster.ProtocolVersion {
		t.Errorf("fingerprint protocol %d, want %d", doc.Fingerprint.Protocol, cluster.ProtocolVersion)
	}
	if len(doc.Fingerprint.Machines) == 0 {
		t.Error("fingerprint lists no machines")
	}

	single, _, _ := newTestServer(t, ServerConfig{})
	solo := fetchCluster(t, single.URL)
	if solo.Schema != cluster.ResponseSchema {
		t.Errorf("standalone schema %q", solo.Schema)
	}
	if solo.Generation != 0 {
		t.Errorf("standalone generation %d, want 0", solo.Generation)
	}
	if len(solo.Fingerprint.Machines) == 0 {
		t.Error("standalone fingerprint lists no machines")
	}
}

// TestPeerProtocolVersion: a request wearing the peer relay header must
// carry our wire version; missing or mismatched versions are refused
// with the stable peer_protocol envelope (400) on peered and standalone
// servers alike.
func TestPeerProtocolVersion(t *testing.T) {
	rig := newCluster(t, 2, ServerConfig{}, cluster.Config{})
	single, _, _ := newTestServer(t, ServerConfig{})
	body := mustBody(runRequest{Name: "proto", Source: serveSrc})

	for _, tc := range []struct {
		name, version string
	}{
		{"missing version", ""},
		{"wrong version", "999"},
	} {
		for _, url := range []string{rig.tss[0].URL, single.URL} {
			req, err := http.NewRequest(http.MethodPost, url+"/v1/run", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(PeerHeader, "http://elsewhere:1")
			if tc.version != "" {
				req.Header.Set(cluster.VersionHeader, tc.version)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			b := new(bytes.Buffer)
			b.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s: status %d, want 400\n%s", tc.name, resp.StatusCode, b)
			}
			if code := errorCode(t, b.Bytes()); code != codePeerProtocol {
				t.Errorf("%s: code %q, want %q", tc.name, code, codePeerProtocol)
			}
		}
	}

	// The matching version is accepted (and executed, not re-forwarded).
	req, err := http.NewRequest(http.MethodPost, rig.tss[0].URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(PeerHeader, "http://elsewhere:1")
	req.Header.Set(cluster.VersionHeader, strconv.Itoa(cluster.ProtocolVersion))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("matching version: status %d, want 200", resp.StatusCode)
	}
}

// TestClusterKillReplicaDifferential is the availability bar: a serial
// request stream against a 3-replica cluster, with one replica
// SIGKILLed (listener closed) a third of the way in, must still answer
// every request 200-or-deterministic-4xx with bodies byte-identical to
// a fresh single replica — zero client-visible 5xx — and the survivors'
// /v1/cluster must converge on the death.
func TestClusterKillReplicaDifferential(t *testing.T) {
	stream := diffStream()
	single, _, _ := newTestServer(t, ServerConfig{})
	// Passive-only detection (long probe interval) keeps the test
	// deterministic: state changes happen inside request handling.
	rig := newCluster(t, 3, ServerConfig{}, cluster.Config{ProbeIntervalMS: 60_000, FailAfter: 2})

	killAt := len(stream) / 3
	victim := 2
	for i, body := range stream {
		if i == killAt {
			rig.tss[victim].Close()
		}
		target := i % 3
		if target == victim && i >= killAt {
			target = (victim + 1) % 3 // clients move off the dead replica
		}
		wantResp, wantBody := postRun(t, single, body)
		gotResp, gotBody := postRun(t, rig.tss[target], body)
		if gotResp.StatusCode >= 500 {
			t.Fatalf("request %d: client-visible %d from the cluster\n%s", i, gotResp.StatusCode, gotBody)
		}
		if gotResp.StatusCode != wantResp.StatusCode {
			t.Fatalf("request %d: status %d (cluster) vs %d (single)\n%s",
				i, gotResp.StatusCode, wantResp.StatusCode, gotBody)
		}
		// Bodies are byte-identical across the kill; the cache header is
		// not asserted here — a fallback executes locally (a miss) where
		// the healthy cluster would have relayed a home hit.
		if !bytes.Equal(gotBody, wantBody) {
			t.Fatalf("request %d: cluster body diverges from single replica across the kill\ncluster:\n%s\nsingle:\n%s",
				i, gotBody, wantBody)
		}
	}

	// Survivors converge: enough relays failed during the stream (or
	// will, on the next draws) for both survivors to mark the victim
	// down. Nudge with a few more requests in case one survivor never
	// routed toward the victim.
	deadURL := rig.tss[victim].URL
	for _, s := range []int{0, 1} {
		deadline := time.Now().Add(10 * time.Second)
		for i := 0; memberStateIn(fetchCluster(t, rig.tss[s].URL), deadURL) != cluster.StateDown; i++ {
			if !time.Now().Before(deadline) {
				t.Fatalf("survivor %d never marked %s down", s, deadURL)
			}
			body := mustBody(runRequest{Name: fmt.Sprintf("nudge-%d-%d", s, i), Source: serveSrc})
			postRun(t, rig.tss[s], body)
		}
		if doc := fetchCluster(t, rig.tss[s].URL); doc.Generation < 2 {
			t.Errorf("survivor %d generation %d, want >= 2 after a transition", s, doc.Generation)
		}
	}
}

// TestClusterFlap: a replica that goes 503 (handler detached — the
// listener still accepts, answering non-v1 bodies) and comes back is
// detected down, then readmitted by a probe — with zero client-visible
// request errors at the surviving replica throughout the whole cycle.
func TestClusterFlap(t *testing.T) {
	rig := newCluster(t, 2, ServerConfig{}, cluster.Config{ProbeIntervalMS: 10, FailAfter: 2, ProbeTimeoutMS: 1000})
	flappy := 1
	flappyURL := rig.tss[flappy].URL
	steady := rig.tss[0]

	post := func(i int) {
		t.Helper()
		body := mustBody(runRequest{Name: fmt.Sprintf("flap-%d", i), Source: serveSrc})
		resp, b := postRun(t, steady, body)
		if resp.StatusCode >= 500 {
			t.Fatalf("request %d: client-visible %d during flap\n%s", i, resp.StatusCode, b)
		}
	}

	waitForState(t, steady.URL, flappyURL, cluster.StateUp)
	for i := 0; i < 8; i++ {
		post(i)
	}

	// Down: the handler detaches, so relays and probes get 503 bodies
	// that are not v1 responses — both count as failures, neither is
	// ever relayed to a client.
	rig.late[flappy].set(nil)
	for i := 8; i < 24; i++ {
		post(i)
	}
	waitForState(t, steady.URL, flappyURL, cluster.StateDown)
	for i := 24; i < 32; i++ {
		post(i)
	}

	// Up again: one successful probe readmits it.
	rig.late[flappy].set(rig.srvs[flappy].Handler())
	waitForState(t, steady.URL, flappyURL, cluster.StateUp)
	for i := 32; i < 40; i++ {
		post(i)
	}

	doc := fetchCluster(t, steady.URL)
	if doc.Generation < 3 {
		t.Errorf("generation %d after up->down->up, want >= 3", doc.Generation)
	}
}

// TestClusterGenerationPurgesPeerCache is the regression test for hot
// keys outliving their home: an edge replica serving a key from its
// local hot copy must drop that copy when membership changes re-home
// the key — otherwise a replica that left the ring keeps answering
// through caches that no longer have a home to validate against.
func TestClusterGenerationPurgesPeerCache(t *testing.T) {
	rig := newCluster(t, 3, ServerConfig{}, cluster.Config{ProbeIntervalMS: 10, FailAfter: 2, HotThreshold: 2})
	body := mustBody(runRequest{Name: "sticky", Source: serveSrc})

	// Find an edge replica (one that forwards this key) and make the
	// key hot there.
	edge, home := -1, ""
	for i := range rig.tss {
		resp, b := postRun(t, rig.tss[i], body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: %d\n%s", i, resp.StatusCode, b)
		}
		if resp.Header.Get(RouteHeader) == "forward" {
			edge = i
			break
		}
	}
	if edge == -1 {
		t.Fatal("every replica homes this key; ring is degenerate")
	}
	for i := 0; i < 4; i++ {
		postRun(t, rig.tss[edge], body)
	}
	resp, _ := postRun(t, rig.tss[edge], body)
	if got := resp.Header.Get(RouteHeader); got != "replica" {
		t.Fatalf("hot repeat route %q, want replica (local copy)", got)
	}

	// Kill the key's home. The edge serves the key from its local copy,
	// so only the background probes can notice the death.
	for _, ts := range rig.tss {
		u := ts.URL
		if rig.srvs[edge].peering.members.Ring().Owner(string(keyFor(t, rig.srvs[edge], body))) == u && u != rig.tss[edge].URL {
			home = u
			ts.Close()
			break
		}
	}
	if home == "" {
		t.Fatal("could not locate the key's home replica")
	}
	waitForState(t, rig.tss[edge].URL, home, cluster.StateDown)

	// The next request observes the new generation, purges the peer
	// cache, and re-routes the key — anywhere but the stale local copy.
	resp, b := postRun(t, rig.tss[edge], body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-death request: %d\n%s", resp.StatusCode, b)
	}
	if got := resp.Header.Get(RouteHeader); got == "replica" {
		t.Errorf("route %q: the edge kept serving a hot copy replicated from a dead home", got)
	}
	if cs := rig.srvs[edge].ClusterStats(); cs.CachePurges == 0 {
		t.Error("no peer-cache purge recorded across a membership generation change")
	}
}

// keyFor computes the content address the serving path uses for a
// request body, via the server's own clamping.
func keyFor(t *testing.T, srv *Server, body string) string {
	t.Helper()
	var req runRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	spec, timeout, errResp := srv.specFor(req)
	if errResp != nil {
		t.Fatalf("specFor: %+v", errResp.Error)
	}
	return string(spec.CacheKey(timeout))
}
