package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"risc1/internal/exec"
)

var updateGolden = flag.Bool("update", false, "rewrite the serve golden files")

const serveSrc = `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(10); return 0; }
`

// newTestServer builds a server on a small pool, plus its teardown.
func newTestServer(t *testing.T, cfg ServerConfig) *httptest.Server {
	t.Helper()
	pool := exec.NewPool(exec.Config{Workers: 2})
	srv := NewServer(pool, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// checkGolden compares a response body against its pinned file — the
// same -update convention as the bench report golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response diverged from %s; if the schema deliberately "+
			"changed, bump responseVersion and rerun with -update.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestRunGolden pins the successful-run response: 200, value 55, a full
// run report with the batch-engine accounting folded in.
func TestRunGolden(t *testing.T) {
	ts := newTestServer(t, ServerConfig{})
	body, _ := json.Marshal(runRequest{Name: "fib", Source: serveSrc})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, b)
	}
	checkGolden(t, "run_ok.json", b)
}

// TestRunFuelGolden pins the fuel-exhausted response: 422 and an error
// naming the instruction limit.
func TestRunFuelGolden(t *testing.T) {
	ts := newTestServer(t, ServerConfig{})
	body, _ := json.Marshal(runRequest{Name: "starved", Source: serveSrc, Fuel: 50})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422\n%s", resp.StatusCode, b)
	}
	checkGolden(t, "run_fuel.json", b)
}

// TestRunOversizedGolden pins the 413: a body past -max-source is
// refused before it is read in full.
func TestRunOversizedGolden(t *testing.T) {
	ts := newTestServer(t, ServerConfig{MaxSource: 256})
	big := fmt.Sprintf(`{"source": %q}`, strings.Repeat("int x; ", 200))
	resp, b := postRun(t, ts, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413\n%s", resp.StatusCode, b)
	}
	checkGolden(t, "run_oversized.json", b)
}

// TestRunDeadlineGolden pins the 504: an infinite guest loop is stopped
// by the wall-clock cap, with a fixed message so the golden is stable.
func TestRunDeadlineGolden(t *testing.T) {
	ts := newTestServer(t, ServerConfig{MaxTimeout: 50 * time.Millisecond})
	src := `int result; int main() { while (1) { result = result + 1; } return 0; }`
	body, _ := json.Marshal(runRequest{Name: "spin", Source: src})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504\n%s", resp.StatusCode, b)
	}
	checkGolden(t, "run_deadline.json", b)
}

// TestRunCompileError checks the 400 path without a golden: compiler
// message wording is not part of the serve contract.
func TestRunCompileError(t *testing.T) {
	ts := newTestServer(t, ServerConfig{})
	resp, b := postRun(t, ts, `{"source": "int main() { return undeclared; }"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", resp.StatusCode, b)
	}
	var r runResponse
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Status != "compile_error" || r.Error == "" {
		t.Errorf("response = %+v, want compile_error with a message", r)
	}
}

// TestRunBadRequests covers the validation rejections.
func TestRunBadRequests(t *testing.T) {
	ts := newTestServer(t, ServerConfig{})
	cases := []struct {
		name, body string
	}{
		{"invalid json", `{"source": `},
		{"missing source", `{}`},
		{"bad machine", `{"source": "int main() { return 0; }", "machine": "pdp11"}`},
		{"bad opt", `{"source": "int main() { return 0; }", "opt": 3}`},
	}
	for _, tc := range cases {
		resp, b := postRun(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400\n%s", tc.name, resp.StatusCode, b)
		}
	}
}

// TestAsyncRun drives the 202 + poll flow end to end.
func TestAsyncRun(t *testing.T) {
	ts := newTestServer(t, ServerConfig{})
	body, _ := json.Marshal(runRequest{Name: "fib", Source: serveSrc, Async: true})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202\n%s", resp.StatusCode, b)
	}
	var accepted runResponse
	if err := json.Unmarshal(b, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Status != "pending" || accepted.ID == "" {
		t.Fatalf("accepted = %+v, want pending with an id", accepted)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var r runResponse
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		if r.Status != "pending" {
			if r.Status != "ok" || r.Value == nil || *r.Value != 55 {
				t.Fatalf("final response = %+v, want ok with value 55", r)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobNotFound covers the poll path for an unknown id.
func TestJobNotFound(t *testing.T) {
	ts := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

// TestHealthAndMetrics checks the operational endpoints: liveness and
// the pool counters after a completed run.
func TestHealthAndMetrics(t *testing.T) {
	ts := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", resp.StatusCode)
	}

	body, _ := json.Marshal(runRequest{Source: serveSrc})
	postRun(t, ts, string(body))
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, want := range []string{
		"risc1_pool_workers 2",
		"risc1_pool_jobs_submitted_total 1",
		"risc1_pool_jobs_completed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestDeterministicResponses runs the same program twice on fresh
// servers: the responses (ids included) must be byte-identical, which
// is what lets the goldens exist at all.
func TestDeterministicResponses(t *testing.T) {
	body, _ := json.Marshal(runRequest{Name: "fib", Source: serveSrc})
	_, a := postRun(t, newTestServer(t, ServerConfig{}), string(body))
	_, b := postRun(t, newTestServer(t, ServerConfig{}), string(body))
	if !bytes.Equal(a, b) {
		t.Errorf("identical requests on fresh servers differ:\n%s\n---\n%s", a, b)
	}
}
