package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"risc1/internal/exec"
)

var updateGolden = flag.Bool("update", false, "rewrite the serve golden files")

const serveSrc = `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(10); return 0; }
`

const spinSrc = `int result; int main() { while (1) { result = result + 1; } return 0; }`

// newTestServer builds a server on a small pool, returning the HTTP
// test server plus the Server and pool for counter assertions.
func newTestServer(t *testing.T, cfg ServerConfig) (*httptest.Server, *Server, *exec.Pool) {
	t.Helper()
	pool := exec.NewPool(exec.Config{Workers: 2})
	srv := NewServer(pool, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.DrainSessions() // closes live sessions and stops the idle reaper
		ts.Close()
		pool.Close()
	})
	return ts, srv, pool
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// checkGolden compares a response body against its pinned file — the
// same -update convention as the bench report golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response diverged from %s; if the contract deliberately "+
			"changed, mint a new schema version and rerun with -update.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// errorCode decodes the unified error envelope.
func errorCode(t *testing.T, b []byte) string {
	t.Helper()
	var r runResponse
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if r.Error == nil {
		t.Fatalf("response has no error envelope:\n%s", b)
	}
	if r.Schema != ResponseSchemaV1 {
		t.Errorf("error response schema = %q, want %q", r.Schema, ResponseSchemaV1)
	}
	return r.Error.Code
}

// TestRunGolden pins the successful-run response: 200, value 55, a full
// run report with the batch-engine accounting folded in, no job id
// (sync responses are content-addressed, not request-addressed), and a
// cache-miss header on a fresh server.
func TestRunGolden(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	body, _ := json.Marshal(runRequest{Name: "fib", Source: serveSrc})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, b)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Errorf("%s = %q, want miss on a fresh server", CacheHeader, got)
	}
	checkGolden(t, "run_ok.json", b)
}

// TestRunFuelGolden pins the fuel-exhausted envelope: 422 with the
// stable code fuel_exceeded.
func TestRunFuelGolden(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	body, _ := json.Marshal(runRequest{Name: "starved", Source: serveSrc, Fuel: 50})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422\n%s", resp.StatusCode, b)
	}
	if code := errorCode(t, b); code != "fuel_exceeded" {
		t.Errorf("code = %q, want fuel_exceeded", code)
	}
	checkGolden(t, "run_fuel.json", b)
}

// TestRunOversizedGolden pins the 413 envelope: a body past -max-source
// is refused with body_too_large before it is read in full.
func TestRunOversizedGolden(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{MaxSource: 256})
	big := fmt.Sprintf(`{"source": %q}`, strings.Repeat("int x; ", 200))
	resp, b := postRun(t, ts, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413\n%s", resp.StatusCode, b)
	}
	if code := errorCode(t, b); code != "body_too_large" {
		t.Errorf("code = %q, want body_too_large", code)
	}
	checkGolden(t, "run_oversized.json", b)
}

// TestRunDeadlineGolden pins the 504 envelope: an infinite guest loop
// is stopped by the wall-clock cap, with a fixed message so the golden
// is stable.
func TestRunDeadlineGolden(t *testing.T) {
	ts, srv, _ := newTestServer(t, ServerConfig{MaxTimeout: 50 * time.Millisecond})
	body, _ := json.Marshal(runRequest{Name: "spin", Source: spinSrc})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504\n%s", resp.StatusCode, b)
	}
	if code := errorCode(t, b); code != "deadline" {
		t.Errorf("code = %q, want deadline", code)
	}
	checkGolden(t, "run_deadline.json", b)
	// Deadline expiry depends on scheduling, so it must never be cached.
	if s := srv.CacheStats(); s.Entries != 0 {
		t.Errorf("deadline result was stored (%d entries)", s.Entries)
	}
}

// TestRunQueueFullGolden pins the 429 envelope and Retry-After header:
// with one execution slot held by an async spin and no wait queue, the
// next request is turned away immediately.
func TestRunQueueFullGolden(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{
		MaxTimeout:  500 * time.Millisecond,
		MaxInflight: 1,
		MaxQueue:    -1,
	})
	spin, _ := json.Marshal(runRequest{Name: "spin", Source: spinSrc, Async: true})
	resp, b := postRun(t, ts, string(spin))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async spin status = %d, want 202\n%s", resp.StatusCode, b)
	}

	body, _ := json.Marshal(runRequest{Name: "fib", Source: serveSrc})
	resp, b = postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	if code := errorCode(t, b); code != "queue_full" {
		t.Errorf("code = %q, want queue_full", code)
	}
	checkGolden(t, "run_queue_full.json", b)
}

// TestRunCompileError checks the 400 envelope without a golden:
// compiler message wording is not part of the serve contract, the code
// is.
func TestRunCompileError(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	resp, b := postRun(t, ts, `{"source": "int main() { return undeclared; }"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", resp.StatusCode, b)
	}
	if code := errorCode(t, b); code != "compile_error" {
		t.Errorf("code = %q, want compile_error", code)
	}
}

// TestRunBadRequests covers the validation rejections and their stable
// codes.
func TestRunBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"invalid json", `{"source": `, 400, "bad_request"},
		{"missing source", `{}`, 400, "bad_request"},
		{"bad machine", `{"source": "int main() { return 0; }", "machine": "pdp11"}`, 422, "unsupported_machine"},
		{"bad opt", `{"source": "int main() { return 0; }", "opt": 3}`, 400, "bad_request"},
		{"unknown schema", `{"schema": "risc1.run-request/v9", "source": "int main() { return 0; }"}`, 422, "unsupported_schema"},
	}
	for _, tc := range cases {
		resp, b := postRun(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d\n%s", tc.name, resp.StatusCode, tc.status, b)
		}
		if code := errorCode(t, b); code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, code, tc.code)
		}
	}
}

// TestMachinesEndpoint: GET /v1/machines lists every registered backend
// with the default flagged, and an alias from the listing routes a run
// to the same content-addressed result as the canonical name.
func TestMachinesEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr machinesResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Schema != MachinesResponseSchemaV1 {
		t.Errorf("schema = %q, want %q", mr.Schema, MachinesResponseSchemaV1)
	}
	byName := map[string]machineInfo{}
	for _, m := range mr.Machines {
		byName[m.Name] = m
	}
	for _, want := range []string{"risc1", "cisc", "rv32"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("listing is missing machine %q: %+v", want, mr.Machines)
		}
	}
	if !byName["risc1"].Default {
		t.Errorf("risc1 not flagged as the default: %+v", byName["risc1"])
	}

	// Every advertised alias must be accepted by /v1/run and address the
	// same cache entry as the canonical name.
	for _, m := range mr.Machines {
		canon, _ := json.Marshal(runRequest{Name: "alias", Source: serveSrc, Machine: m.Name})
		first, firstBody := postRun(t, ts, string(canon))
		if first.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d\n%s", m.Name, first.StatusCode, firstBody)
		}
		for _, alias := range m.Aliases {
			req, _ := json.Marshal(runRequest{Name: "alias", Source: serveSrc, Machine: alias})
			resp, body := postRun(t, ts, string(req))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status = %d\n%s", alias, resp.StatusCode, body)
			}
			if got := resp.Header.Get(CacheHeader); got != "hit" {
				t.Errorf("%s: %s = %q, want hit (alias must share the canonical cache entry)",
					alias, CacheHeader, got)
			}
			if !bytes.Equal(body, firstBody) {
				t.Errorf("%s: response diverged from canonical %s:\n%s\n---\n%s",
					alias, m.Name, body, firstBody)
			}
		}
	}
}

// TestSchemaRoundTrip: an explicit v1 request schema is accepted and
// the response echoes the response schema — byte-identical to the same
// request without the field (absent means v1).
func TestSchemaRoundTrip(t *testing.T) {
	src := `int result; int main() { result = 6 * 7; return 0; }`
	explicit, _ := json.Marshal(runRequest{Schema: RequestSchemaV1, Source: src})
	implicit, _ := json.Marshal(runRequest{Source: src})

	tsA, _, _ := newTestServer(t, ServerConfig{})
	_, a := postRun(t, tsA, string(explicit))
	tsB, _, _ := newTestServer(t, ServerConfig{})
	_, b := postRun(t, tsB, string(implicit))
	if !bytes.Equal(a, b) {
		t.Errorf("explicit and implicit v1 requests differ:\n%s\n---\n%s", a, b)
	}
	var r runResponse
	if err := json.Unmarshal(a, &r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != ResponseSchemaV1 {
		t.Errorf("response schema = %q, want %q", r.Schema, ResponseSchemaV1)
	}
	if r.Value == nil || *r.Value != 42 {
		t.Errorf("value = %v, want 42", r.Value)
	}
}

// TestCacheDifferentialCorners is the serving half of the acceptance
// differential: for all four (machine, opt) corners, the cache-hit
// response body must be byte-identical both to this server's own cold
// miss and to a cold recompute on a server that has never cached
// anything.
func TestCacheDifferentialCorners(t *testing.T) {
	for _, machine := range []string{"risc1", "cisc", "rv32"} {
		for opt := 0; opt <= 1; opt++ {
			o := opt
			req, _ := json.Marshal(runRequest{Name: "diff", Source: serveSrc, Machine: machine, Opt: &o})

			ts, _, pool := newTestServer(t, ServerConfig{})
			miss, missBody := postRun(t, ts, string(req))
			hit, hitBody := postRun(t, ts, string(req))
			if got := miss.Header.Get(CacheHeader); got != "miss" {
				t.Errorf("%s/-O%d first: %s = %q, want miss", machine, opt, CacheHeader, got)
			}
			if got := hit.Header.Get(CacheHeader); got != "hit" {
				t.Errorf("%s/-O%d second: %s = %q, want hit", machine, opt, CacheHeader, got)
			}
			if !bytes.Equal(missBody, hitBody) {
				t.Errorf("%s/-O%d: hit body diverged from miss body:\n%s\n---\n%s",
					machine, opt, hitBody, missBody)
			}
			if got := pool.Stats().Submitted; got != 1 {
				t.Errorf("%s/-O%d: pool saw %d submissions, want 1 (hit must not recompute)", machine, opt, got)
			}

			// A server with caching effectively disabled recomputes from
			// scratch; its answer must be the same bytes.
			tsCold, _, _ := newTestServer(t, ServerConfig{CacheBytes: -1})
			_, coldBody := postRun(t, tsCold, string(req))
			if !bytes.Equal(coldBody, hitBody) {
				t.Errorf("%s/-O%d: cache-hit body diverged from uncached recompute:\n%s\n---\n%s",
					machine, opt, hitBody, coldBody)
			}
		}
	}
}

// TestSingleflightServe: N concurrent identical requests produce
// exactly one engine execution and N byte-identical responses, and the
// cache counters reconcile with the request count.
func TestSingleflightServe(t *testing.T) {
	const n = 12
	ts, srv, pool := newTestServer(t, ServerConfig{})
	body, _ := json.Marshal(runRequest{Name: "herd", Source: serveSrc})

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d\n%s", i, resp.StatusCode, b)
			}
			switch h := resp.Header.Get(CacheHeader); h {
			case "hit", "miss", "coalesced":
			default:
				t.Errorf("request %d: %s = %q", i, CacheHeader, h)
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("response %d diverged from response 0:\n%s\n---\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := pool.Stats().Submitted; got != 1 {
		t.Errorf("pool saw %d submissions, want 1 (the herd must collapse)", got)
	}
	s := srv.CacheStats()
	if s.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Misses+s.Coalesced != n {
		t.Errorf("hits(%d)+misses(%d)+coalesced(%d) != %d requests", s.Hits, s.Misses, s.Coalesced, n)
	}
}

// TestAsyncRun drives the 202 + poll flow end to end.
func TestAsyncRun(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	body, _ := json.Marshal(runRequest{Name: "fib", Source: serveSrc, Async: true})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202\n%s", resp.StatusCode, b)
	}
	var accepted runResponse
	if err := json.Unmarshal(b, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Status != "pending" || accepted.ID == "" {
		t.Fatalf("accepted = %+v, want pending with an id", accepted)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var r runResponse
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		if r.Status != "pending" {
			if r.Status != "ok" || r.Value == nil || *r.Value != 55 {
				t.Fatalf("final response = %+v, want ok with value 55", r)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobNotFound covers the poll path for an unknown id.
func TestJobNotFound(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	if code := errorCode(t, b); code != "not_found" {
		t.Errorf("code = %q, want not_found", code)
	}
}

// TestHealthAndMetrics checks the operational endpoints: liveness, the
// Prometheus content type, and that every layer's metrics — pool,
// result cache, program cache, warm-start image cache, limiter, session
// manager, and the request-latency histogram — reconcile with a known
// request sequence.
func TestHealthAndMetrics(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", resp.StatusCode)
	}

	// A known request mix, every leg deterministic:
	//  1. fresh run        -> rcache miss, pool executes, imgcache miss
	//  2. identical repeat -> rcache hit, never reaches the pool
	//  3. different fuel   -> rcache miss (fuel is in the result key) but
	//     imgcache HIT (the warm-start image key deliberately ignores it)
	//  4. malformed body   -> bad_request, never reaches the cache
	//  5. debug session on the same program -> second imgcache hit; then
	//     closed, so the session gauges are back to zero.
	body, _ := json.Marshal(runRequest{Source: serveSrc})
	postRun(t, ts, string(body))
	postRun(t, ts, string(body))
	refuel, _ := json.Marshal(runRequest{Source: serveSrc, Fuel: 1 << 20})
	postRun(t, ts, string(refuel))
	postRun(t, ts, `{}`)
	id := createSession(t, ts, sessionRequest{Source: serveSrc})
	doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, "")

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("metrics Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	text := string(b)
	for _, want := range []string{
		"risc1_pool_workers 2",
		"risc1_pool_jobs_submitted_total 2",
		"risc1_pool_jobs_completed_total 2",
		"risc1_rcache_hits_total 1",
		"risc1_rcache_misses_total 2",
		"risc1_rcache_entries 2",
		"risc1_progcache_misses_total 1",
		// Warm-start image counters reconcile: one build (run 1), then a
		// hit each from run 3 and the session.
		"risc1_imgcache_misses_total 1",
		"risc1_imgcache_hits_total 2",
		// Three runs + one session acquired slots; the bad request never got
		// that far.
		"risc1_http_requests_admitted_total 4",
		"risc1_http_requests_rejected_total 0",
		"risc1_http_inflight_capacity 64",
		// Session lifecycle counters.
		"risc1_session_active 0",
		"risc1_session_created_total 1",
		"risc1_session_closed_total 1",
		"risc1_session_expired_total 0",
		// Latency histogram, labeled by outcome and cache state: counts
		// reconcile with the request mix (sessions are not /v1/run
		// requests and must not appear).
		`risc1_http_request_seconds_count{outcome="ok",cache="miss"} 2`,
		`risc1_http_request_seconds_count{outcome="ok",cache="hit"} 1`,
		`risc1_http_request_seconds_count{outcome="bad_request",cache="none"} 1`,
		`risc1_http_request_seconds_bucket{outcome="ok",cache="hit",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestDeterministicResponses runs the same program twice on fresh
// servers: the responses must be byte-identical, which is what lets the
// goldens (and the cache) exist at all.
func TestDeterministicResponses(t *testing.T) {
	body, _ := json.Marshal(runRequest{Name: "fib", Source: serveSrc})
	tsA, _, _ := newTestServer(t, ServerConfig{})
	_, a := postRun(t, tsA, string(body))
	tsB, _, _ := newTestServer(t, ServerConfig{})
	_, b := postRun(t, tsB, string(body))
	if !bytes.Equal(a, b) {
		t.Errorf("identical requests on fresh servers differ:\n%s\n---\n%s", a, b)
	}
}
