package main

import (
	"context"
	"testing"

	"risc1/internal/loadgen"
	"risc1/internal/obs"
)

// TestLoadgenSmoke is the CI end-to-end check for the load generator:
// a short fixed-seed run against an in-process replica must complete
// every request successfully — zero error outcomes, in particular zero
// wrong_value (the generator verifies each response against the
// corpus's expected result) — and emit a well-formed
// risc1.loadgen-report/v1. Latencies are wall-clock and vary run to
// run; everything this test asserts is load-independent.
func TestLoadgenSmoke(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Rate:       2000, // finish the smoke in well under a second of pacing
		Requests:   120,
		Seed:       1,
		CorpusSeed: 1,
		CorpusSize: 12,
	}, &loadgen.HTTPTarget{BaseURL: ts.URL}, loadgen.WallClock{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if rep.Schema != obs.LoadReportSchema || rep.Version != obs.LoadReportVersion {
		t.Fatalf("report schema = %s/%d, want %s/%d",
			rep.Schema, rep.Version, obs.LoadReportSchema, obs.LoadReportVersion)
	}
	if rep.Totals.Offered != 120 || rep.Totals.Completed != 120 {
		t.Fatalf("offered/completed = %d/%d, want 120/120", rep.Totals.Offered, rep.Totals.Completed)
	}
	for _, o := range rep.Totals.Outcomes {
		if o.Name != "ok" {
			t.Errorf("outcome %q x%d, want only ok", o.Name, o.Count)
		}
	}
	// The Zipf head repeats programs, so the cache must have both hits
	// and misses (misses at least once per distinct program served).
	var cacheTotal uint64
	for _, c := range rep.Totals.Cache {
		cacheTotal += c.Count
		if c.Name == "none" {
			t.Errorf("cache state \"none\" x%d: some response carried no %s header", c.Count, CacheHeader)
		}
	}
	if cacheTotal != rep.Totals.Completed {
		t.Errorf("cache rows sum to %d, want %d", cacheTotal, rep.Totals.Completed)
	}
	if rep.Latency.Count != 120 || rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P50 {
		t.Errorf("latency summary malformed: %+v", rep.Latency)
	}
}
