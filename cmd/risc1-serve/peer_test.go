package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"risc1/internal/cluster"
	"risc1/internal/exec"
)

// lateHandler lets an httptest server start before the Server that will
// answer on it exists — replica URLs feed the ring, and the ring must be
// known at construction, so the listener comes first and the handler is
// bound after.
type lateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

// clusterRig is a test replica set: n peered Servers, each on its own
// pool, with live membership over the n listener URLs. The lateHandlers
// let a test take a replica dark (set(nil) → 503) and bring it back.
type clusterRig struct {
	tss   []*httptest.Server
	srvs  []*Server
	pools []*exec.Pool
	late  []*lateHandler
}

// newCluster starts n peered replicas. cc is the cluster config
// template — Self and Peers are filled per replica; leave the probe
// knobs zero for the defaults, or set ProbeIntervalMS/FailAfter low in
// tests that exercise detection.
func newCluster(t *testing.T, n int, cfg ServerConfig, cc cluster.Config) *clusterRig {
	t.Helper()
	rig := &clusterRig{
		tss:   make([]*httptest.Server, n),
		srvs:  make([]*Server, n),
		pools: make([]*exec.Pool, n),
		late:  make([]*lateHandler, n),
	}
	urls := make([]string, n)
	for i := range rig.late {
		rig.late[i] = &lateHandler{}
		rig.tss[i] = httptest.NewServer(rig.late[i])
		urls[i] = rig.tss[i].URL
	}
	for i := range rig.srvs {
		rcfg := cfg
		rcc := cc
		rcc.Schema = cluster.ConfigSchema
		rcc.Peers = urls
		rcc.Self = urls[i]
		rcfg.Cluster = &rcc
		rig.pools[i] = exec.NewPool(exec.Config{Workers: 2})
		rig.srvs[i] = NewServer(rig.pools[i], rcfg)
		rig.late[i].set(rig.srvs[i].Handler())
	}
	t.Cleanup(func() {
		for i := range rig.srvs {
			rig.srvs[i].StopCluster()
			rig.srvs[i].DrainSessions()
			rig.tss[i].Close()
			rig.pools[i].Close()
		}
	})
	return rig
}

// diffStream is a deterministic serial request stream with repeats:
// six distinct request bodies (varying name, fuel, and program) cycled
// in a pattern that revisits each several times, so the hit, miss, and
// error paths all fire.
func diffStream() []string {
	bodies := []string{
		mustBody(runRequest{Name: "fib", Source: serveSrc}),
		mustBody(runRequest{Name: "fib-tight", Source: serveSrc, Fuel: 50}), // fuel_exceeded
		mustBody(runRequest{Name: "sum", Source: `int result; int main() { int i; for (i = 0; i <= 10; i = i + 1) result = result + i; return 0; }`}),
		mustBody(runRequest{Name: "expr", Source: `int result; int main() { result = (3 + 4) * 6 - 2; return 0; }`}),
		mustBody(runRequest{Name: "broken", Source: `int result; int main() { result = ; }`}), // compile_error
		mustBody(runRequest{Name: "fib-o0", Source: serveSrc, Opt: new(int)}),
	}
	var stream []string
	for i := 0; i < 42; i++ {
		stream = append(stream, bodies[(i*5)%len(bodies)])
	}
	return stream
}

func mustBody(req runRequest) string {
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestPeerDifferential is the correctness bar for horizontal serving:
// an identical serial request stream answered by a 3-replica cluster
// (requests round-robined across replicas) and by a fresh single
// replica must be byte-identical — same bodies, same status codes, and
// the same X-Risc1-Cache ledger — and the cluster's routing counters
// must reconcile exactly with the request count.
func TestPeerDifferential(t *testing.T) {
	stream := diffStream()

	single, _, _ := newTestServer(t, ServerConfig{})
	rig := newCluster(t, 3, ServerConfig{}, cluster.Config{})
	tss, srvs := rig.tss, rig.srvs

	for i, body := range stream {
		wantResp, wantBody := postRun(t, single, body)
		gotResp, gotBody := postRun(t, tss[i%3], body)

		if gotResp.StatusCode != wantResp.StatusCode {
			t.Fatalf("request %d: status %d (cluster) vs %d (single)\n%s",
				i, gotResp.StatusCode, wantResp.StatusCode, gotBody)
		}
		if !bytes.Equal(gotBody, wantBody) {
			t.Fatalf("request %d: cluster body diverges from single replica\ncluster:\n%s\nsingle:\n%s",
				i, gotBody, wantBody)
		}
		if got, want := gotResp.Header.Get(CacheHeader), wantResp.Header.Get(CacheHeader); got != want {
			t.Fatalf("request %d: %s = %q (cluster) vs %q (single)", i, CacheHeader, got, want)
		}
		if route := gotResp.Header.Get(RouteHeader); route == "" {
			t.Fatalf("request %d: cluster response carries no %s header", i, RouteHeader)
		}
	}

	// The routing ledger: every request was either homed locally or
	// routed to a peer; every relay that reached a home was served by
	// one; nothing failed.
	var routed, localHome, served, fetches, errors uint64
	var peerLookups, peerLedger uint64
	for i, srv := range srvs {
		ps := srv.PeerStats()
		routed += ps.Routed
		localHome += ps.LocalHome
		served += ps.Served
		fetches += ps.Fetches
		errors += ps.Errors
		cs := srv.PeerCacheStats()
		peerLookups += ps.Routed
		peerLedger += cs.Hits + cs.Misses + cs.Coalesced
		if cs.Hits+cs.Misses+cs.Coalesced != ps.Routed {
			t.Errorf("replica %d: peer cache ledger %d+%d+%d != routed %d",
				i, cs.Hits, cs.Misses, cs.Coalesced, ps.Routed)
		}
	}
	if routed+localHome != uint64(len(stream)) {
		t.Errorf("routed %d + local %d != %d requests", routed, localHome, len(stream))
	}
	if fetches != served {
		t.Errorf("fetches %d != served %d: some relay was lost or double-counted", fetches, served)
	}
	if errors != 0 {
		t.Errorf("peer errors = %d, want 0", errors)
	}
	if routed == 0 {
		t.Error("no request was peer-routed; the stream never left one replica (ring imbalance?)")
	}
}

// TestPeerConcurrentDifferential: concurrent identical requests fanned
// across all replicas still execute exactly once fleet-wide — the edge
// peer caches coalesce per replica, the home's result cache coalesces
// across them — and everyone gets the same bytes.
func TestPeerConcurrentDifferential(t *testing.T) {
	rig := newCluster(t, 3, ServerConfig{}, cluster.Config{})
	tss, pools := rig.tss, rig.pools
	body := mustBody(runRequest{Name: "fanout", Source: serveSrc})

	const clients = 12
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(tss[i%3].URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes than client 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var submitted uint64
	for _, p := range pools {
		submitted += p.Stats().Submitted
	}
	if submitted != 1 {
		t.Errorf("fleet executed %d jobs for %d identical concurrent requests, want exactly 1", submitted, clients)
	}
}

// TestPeerHotReplication: once a peer-homed key crosses the popularity
// threshold, the edge replica fills its local copy and serves repeats
// itself (route "replica", cache "hit") without re-fetching.
func TestPeerHotReplication(t *testing.T) {
	rig := newCluster(t, 3, ServerConfig{}, cluster.Config{HotThreshold: 3})
	tss, srvs := rig.tss, rig.srvs
	body := mustBody(runRequest{Name: "hot", Source: serveSrc})

	// Find an edge replica that does NOT home this key.
	edge := -1
	for i := range tss {
		resp, b := postRun(t, tss[i], body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: %d\n%s", i, resp.StatusCode, b)
		}
		if resp.Header.Get(RouteHeader) == "forward" {
			edge = i
			break
		}
	}
	if edge == -1 {
		t.Fatal("every replica homes this key; ring is degenerate")
	}

	// Repeats 2 and 3 still forward (count below threshold, then the
	// fill); repeat 4 onward is served from the local copy.
	var routes []string
	for i := 0; i < 5; i++ {
		resp, _ := postRun(t, tss[edge], body)
		routes = append(routes, resp.Header.Get(RouteHeader))
		if i >= 3 {
			if got := resp.Header.Get(RouteHeader); got != "replica" {
				t.Errorf("repeat %d: route %q, want replica (hot copy)", i, got)
			}
			if got := resp.Header.Get(CacheHeader); got != "hit" {
				t.Errorf("repeat %d: cache %q, want hit", i, got)
			}
		}
	}
	if cs := srvs[edge].PeerCacheStats(); cs.Fills != 1 {
		t.Errorf("edge peer cache fills = %d, want exactly 1 (routes %v)", cs.Fills, routes)
	}
	if ps := srvs[edge].PeerStats(); ps.HotKeys != 1 {
		t.Errorf("edge hot keys = %d, want 1", ps.HotKeys)
	}
}

// TestPeerUnavailable: a request homed on a dead replica is served
// LOCALLY (route "fallback", status 200) — never a client-visible 5xx —
// while the failures feed the detector until the survivor marks the
// peer down and re-homes its keys (route becomes "local").
func TestPeerUnavailable(t *testing.T) {
	// A long probe interval keeps the background prober out of the
	// picture: detection here is purely passive, from relay failures.
	rig := newCluster(t, 2, ServerConfig{}, cluster.Config{ProbeIntervalMS: 60_000, FailAfter: 2})
	rig.tss[1].Close() // the second replica goes dark
	survivor := rig.tss[0]

	// Draw names until several home on the dead replica: each name is a
	// different content address, so a handful of draws must cross a
	// 2-node ring.
	var fallbacks int
	for i := 0; i < 32; i++ {
		body := mustBody(runRequest{Name: fmt.Sprintf("probe-%d", i), Source: serveSrc})
		resp, b := postRun(t, survivor, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("draw %d: status %d, want 200 (dead home must fall back locally)\n%s",
				i, resp.StatusCode, b)
		}
		switch route := resp.Header.Get(RouteHeader); route {
		case "fallback":
			fallbacks++
		case "local":
			// Homed here from the start, or re-homed after detection.
		default:
			t.Fatalf("draw %d: route %q, want fallback or local", i, route)
		}
	}
	if fallbacks == 0 {
		t.Fatal("32 draws all homed on the live replica; ring is degenerate")
	}
	if got := rig.srvs[0].PeerStats().Errors; got == 0 {
		t.Error("peer error counter did not move")
	}
	if cs := rig.srvs[0].ClusterStats(); cs.Fallbacks == 0 {
		t.Errorf("cluster stats fallbacks = %d, want > 0", cs.Fallbacks)
	}

	// Two relay failures (FailAfter) are enough: the survivor's view
	// must now show the peer down and its ring shrunk to itself.
	snap := rig.srvs[0].peering.members.Snapshot()
	var deadState cluster.State
	for _, mem := range snap.Members {
		if mem.URL == rig.tss[1].URL {
			deadState = mem.State
		}
	}
	if deadState != cluster.StateDown {
		t.Errorf("dead replica state %q on the survivor, want down", deadState)
	}
	if ps := rig.srvs[0].PeerStats(); ps.Replicas != 1 {
		t.Errorf("survivor ring size %d, want 1 after detection", ps.Replicas)
	}
}

// TestPeerMetricsExposed: peered replicas export the risc1_peer_*,
// risc1_peercache_*, and risc1_cluster_* families; standalone replicas
// export none of them.
func TestPeerMetricsExposed(t *testing.T) {
	rig := newCluster(t, 2, ServerConfig{}, cluster.Config{})
	tss := rig.tss
	postRun(t, tss[0], mustBody(runRequest{Name: "m", Source: serveSrc}))

	resp, err := http.Get(tss[0].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"risc1_peer_replicas 2",
		"risc1_peer_routed_total",
		"risc1_peer_local_home_total",
		"risc1_peer_served_total",
		"risc1_peer_fetch_total",
		"risc1_peer_fetch_errors_total",
		"risc1_peer_hot_keys",
		"risc1_peercache_hits_total",
		"risc1_peercache_fills_total",
		"risc1_cluster_members 2",
		"risc1_cluster_up",
		"risc1_cluster_down",
		"risc1_cluster_generation",
		"risc1_cluster_probes_total",
		"risc1_cluster_fallback_local_total",
		"risc1_cluster_cache_purges_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("peered /metrics is missing %q", want)
		}
	}

	single, _, _ := newTestServer(t, ServerConfig{})
	resp2, err := http.Get(single.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf.Reset()
	buf.ReadFrom(resp2.Body)
	for _, prefix := range []string{"risc1_peer_", "risc1_peercache_", "risc1_cluster_"} {
		if strings.Contains(buf.String(), prefix) {
			t.Errorf("standalone /metrics exports %s* families", prefix)
		}
	}
}
