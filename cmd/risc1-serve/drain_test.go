package main

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"risc1/internal/exec"
)

// TestDrainCancelsInflightWithoutLeaking pins the SIGTERM drain path:
// when the drain budget expires with a job still running, the job must
// observe cancellation through its context (not be abandoned mid-flight)
// and the drain helper must wait out its own goroutine — after drainPool
// returns, the process is back to its pre-pool goroutine count. Run
// under -race in CI, this also exercises the Close/Shutdown interleaving.
func TestDrainCancelsInflightWithoutLeaking(t *testing.T) {
	before := runtime.NumGoroutine()

	pool := exec.NewPool(exec.Config{Workers: 2})
	spec := exec.Spec{
		Name:       "spin",
		Source:     spinSrc, // deliberately never halts
		DelaySlots: true,
		Fuel:       1 << 62,
	}
	tk, err := pool.Submit(context.Background(), spec.Job("spin", time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Let the job reach the simulator before pulling the plug.
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	clean := drainPool(pool, 50*time.Millisecond, t.Logf)
	if clean {
		t.Error("drain of a spinning job reported clean")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("drain took %v; the spinning job did not observe cancellation", took)
	}

	res, err := tk.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("in-flight job result = %v, want context.Canceled", res.Err)
	}

	// No goroutine may outlive the drain: not the Close waiter, not the
	// workers. Allow the runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after drain = %d, before pool = %d: drain leaked", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrainCleanWhenIdle: with nothing in flight the drain is clean and
// immediate.
func TestDrainCleanWhenIdle(t *testing.T) {
	pool := exec.NewPool(exec.Config{Workers: 2})
	if !drainPool(pool, time.Second, t.Logf) {
		t.Error("idle pool did not drain cleanly")
	}
}
