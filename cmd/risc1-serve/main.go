// Command risc1-serve exposes the batch-execution engine as an HTTP
// service: POST a MiniC program, get back the versioned JSON run report
// the rest of the tool chain produces.
//
//	POST /v1/run       {"source": "...", "machine": "risc1", "opt": 1}
//	GET  /v1/jobs/{id} poll an async run
//	GET  /healthz      liveness
//	GET  /metrics      pool gauges and counters (Prometheus text)
//
// Every request is bounded three ways: body size (-max-source), an
// instruction budget (-max-fuel), and a wall-clock deadline
// (-max-timeout). Requests may ask for less than the caps, never more.
//
//	risc1-serve -addr :8080 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"risc1/internal/exec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulator workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued jobs beyond the running ones (0 = 2x workers)")
	maxSource := flag.Int64("max-source", 1<<20, "largest accepted request body in bytes")
	maxFuel := flag.Uint64("max-fuel", 1<<26, "largest per-run instruction budget")
	maxTimeout := flag.Duration("max-timeout", 10*time.Second, "longest per-run wall-clock deadline")
	flag.Parse()

	pool := exec.NewPool(exec.Config{Workers: *workers, Queue: *queue})
	srv := NewServer(pool, ServerConfig{
		MaxSource:  *maxSource,
		MaxFuel:    *maxFuel,
		MaxTimeout: *maxTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: stop intake, let in-flight requests and their
	// jobs finish, then stop the workers.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "risc1-serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "risc1-serve: http shutdown:", err)
		}
		if err := pool.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "risc1-serve: pool shutdown:", err)
		}
		close(done)
	}()

	fmt.Fprintln(os.Stderr, "risc1-serve: listening on", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "risc1-serve:", err)
		os.Exit(1)
	}
	<-done
}
