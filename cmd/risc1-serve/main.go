// Command risc1-serve exposes the batch-execution engine as an HTTP
// service behind the v1 API contract (docs/API.md): POST a MiniC
// program, get back the versioned JSON run report the rest of the tool
// chain produces.
//
//	POST   /v1/run                  {"schema": "risc1.run-request/v1", "source": "..."}
//	GET    /v1/jobs/{id}            poll an async run
//	POST   /v1/sessions             create a paused interactive debug session
//	POST   /v1/sessions/{id}        drive it: step / run / breakpoints / reads
//	GET    /v1/sessions/{id}        inspect state, breakpoints, stream counters
//	GET    /v1/sessions/{id}/events live trace events (SSE)
//	DELETE /v1/sessions/{id}        close the session
//	GET    /v1/cluster              replica-set membership, health, capability fingerprint
//	GET    /healthz                 liveness
//	GET    /metrics                 pool, cache, limiter, session, cluster metrics + latency histograms
//
// Every request is bounded three ways: body size (-max-source), an
// instruction budget (-max-fuel), and a wall-clock deadline
// (-max-timeout); requests may ask for less than the caps, never more.
// Identical requests are served from a content-addressed result cache
// (-cache-bytes; the X-Risc1-Cache header says hit, miss, or
// coalesced), admission is bounded (-inflight, -inflight-queue; beyond
// that, 429 + Retry-After) with debug sessions counting against the
// same capacity for their whole lifetime (-session-idle reaps the
// abandoned ones), and SIGTERM drains: sessions close first (open SSE
// streams get a terminal "end" event), then in-flight jobs finish
// (-drain-timeout, after which they are cancelled).
//
//	risc1-serve -addr :8080 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"risc1/internal/cluster"
	"risc1/internal/exec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulator workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued pool jobs beyond the running ones (0 = 2x workers)")
	maxSource := flag.Int64("max-source", 1<<20, "largest accepted request body in bytes")
	maxFuel := flag.Uint64("max-fuel", 1<<26, "largest per-run instruction budget")
	maxTimeout := flag.Duration("max-timeout", 10*time.Second, "longest per-run wall-clock deadline")
	inflight := flag.Int("inflight", 64, "admitted /v1/run requests executing at once")
	inflightQueue := flag.Int("inflight-queue", 0, "requests that may wait for an execution slot before 429 (0 = 2x -inflight)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "result-cache budget in bytes (negative = store nothing)")
	progCacheBytes := flag.Int64("prog-cache-bytes", 64<<20, "compiled-program cache budget in bytes (negative = disabled)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight jobs before cancelling them")
	sessionIdle := flag.Duration("session-idle", 2*time.Minute, "how long an untouched debug session survives before it is reaped")
	clusterPath := flag.String("cluster", "", "path to a risc1.cluster-config/v1 JSON file; empty = standalone")
	peers := flag.String("peers", "", "deprecated (use -cluster): comma-separated base URLs of every replica (this one included)")
	self := flag.String("self", "", "deprecated (use -cluster): this replica's entry in -peers")
	hotThreshold := flag.Uint64("hot-threshold", 0, "deprecated (use -cluster): per-key request count past which a peer-homed result is replicated locally")
	peerCacheBytes := flag.Int64("peer-cache-bytes", 0, "deprecated (use -cluster): hot-key peer-response cache budget in bytes")
	flag.Parse()

	// Cluster membership comes from the typed config file (-cluster); the
	// legacy -peers/-self string flags still work but are deprecated —
	// they build the same config with the documented defaults.
	var clusterCfg *cluster.Config
	switch {
	case *clusterPath != "" && *peers != "":
		fmt.Fprintln(os.Stderr, "risc1-serve: -cluster and -peers are mutually exclusive")
		os.Exit(2)
	case *clusterPath != "":
		cc, err := cluster.Load(*clusterPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "risc1-serve:", err)
			os.Exit(2)
		}
		clusterCfg = &cc
	case *peers != "":
		fmt.Fprintln(os.Stderr, "risc1-serve: -peers/-self are deprecated; use -cluster with a risc1.cluster-config/v1 file")
		cc, err := cluster.FromPeers(*peers, *self)
		if err != nil {
			fmt.Fprintln(os.Stderr, "risc1-serve:", err)
			os.Exit(2)
		}
		cc.HotThreshold = *hotThreshold
		cc.PeerCacheBytes = *peerCacheBytes
		clusterCfg = &cc
	}

	pool := exec.NewPool(exec.Config{Workers: *workers, Queue: *queue, ProgramCacheBytes: *progCacheBytes})
	srv := NewServer(pool, ServerConfig{
		MaxSource:   *maxSource,
		MaxFuel:     *maxFuel,
		MaxTimeout:  *maxTimeout,
		MaxInflight: *inflight,
		MaxQueue:    *inflightQueue,
		CacheBytes:  *cacheBytes,
		SessionIdle: *sessionIdle,
		Cluster:     clusterCfg,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful drain on SIGTERM/SIGINT: stop accepting HTTP, let
	// in-flight requests and their jobs (async ones included) finish,
	// and only cancel what is still running when the drain budget runs
	// out.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "risc1-serve: draining")
		deadline := time.Now().Add(*drainTimeout)
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		// Sessions close before the listener shuts down: every open SSE
		// stream gets its terminal "end" event and returns, so Shutdown
		// (which waits for in-flight handlers) is never held hostage by a
		// long-lived stream until the drain-timeout fallback.
		srv.StopCluster()
		srv.DrainSessions()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "risc1-serve: http shutdown:", err)
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "risc1-serve: "+format+"\n", args...)
		}
		if drainPool(pool, time.Until(deadline), logf) {
			fmt.Fprintln(os.Stderr, "risc1-serve: drained cleanly")
		}
		close(done)
	}()

	fmt.Fprintln(os.Stderr, "risc1-serve: listening on", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "risc1-serve:", err)
		os.Exit(1)
	}
	<-done
}
