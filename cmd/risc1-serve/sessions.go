package main

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"risc1/internal/machine"
	"risc1/internal/obs"
	"risc1/internal/session"
)

// The session half of the v1 contract (docs/API.md): long-lived paused
// machines driven by commands, with live trace events over SSE.
const (
	// SessionRequestSchemaV1 names the POST /v1/sessions body.
	SessionRequestSchemaV1 = "risc1.session-request/v1"
	// CommandRequestSchemaV1 names the POST /v1/sessions/{id} body.
	CommandRequestSchemaV1 = "risc1.session-command/v1"
	// SessionResponseSchemaV1 is echoed in every session reply.
	SessionResponseSchemaV1 = "risc1.session-response/v1"
)

// maxEventRing caps the per-subscriber SSE ring so one client cannot
// ask the server to buffer an unbounded trace.
const maxEventRing = 1 << 16

// sessionRequest is the body of POST /v1/sessions: the same program
// vocabulary as /v1/run, but the machine is created paused at the entry
// point instead of being run to completion.
type sessionRequest struct {
	// Schema names the request contract; empty means v1.
	Schema string `json:"schema,omitempty"`
	// Source is the MiniC program to debug.
	Source string `json:"source"`
	// Machine names a registered simulator backend, canonical or alias
	// (GET /v1/machines lists them); empty means the default, "risc1".
	Machine string `json:"machine,omitempty"`
	// Opt is the compiler optimization level, 0 or 1 (default 1).
	Opt *int `json:"opt,omitempty"`
	// Fuel is the session-lifetime instruction budget; 0 or absent means
	// the server cap. An exhausted session pauses (stopped "fuel") and
	// stays inspectable.
	Fuel uint64 `json:"fuel,omitempty"`
}

// commandRequest is the body of POST /v1/sessions/{id}. Exactly one
// command per request; a session executes one command at a time
// (concurrent commands fail fast with session_busy).
type commandRequest struct {
	// Schema names the request contract; empty means v1.
	Schema string `json:"schema,omitempty"`
	// Cmd is one of: step, run, add-breakpoint, clear-breakpoint,
	// breakpoints, read-registers, read-memory.
	Cmd string `json:"cmd"`
	// Steps bounds step (exactly N instructions, default 1) and run (a
	// budget, default unlimited — the session still stops on halt, fault,
	// breakpoint, or fuel).
	Steps uint64 `json:"steps,omitempty"`
	// Addr addresses breakpoints and memory reads: a "0x..." literal, a
	// decimal literal, or a program symbol name ("main", "result").
	Addr string `json:"addr,omitempty"`
	// Count is how many bytes read-memory returns (default 4).
	Count int `json:"count,omitempty"`
}

// sessionState mirrors session.State on the wire (PCs in hex).
type sessionState struct {
	// Stopped says why the last step/run command returned: step, halt,
	// fault, breakpoint, budget, fuel, or canceled.
	Stopped      string `json:"stopped,omitempty"`
	PC           string `json:"pc"`
	Halted       bool   `json:"halted"`
	Fault        string `json:"fault,omitempty"`
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// Steps counts the instructions executed by this command alone.
	Steps uint64 `json:"steps,omitempty"`
}

// sessionResponse is the body of every /v1/sessions reply (schema
// risc1.session-response/v1).
type sessionResponse struct {
	Schema      string           `json:"schema"`
	ID          string           `json:"id,omitempty"`
	Status      string           `json:"status,omitempty"` // "closed" after DELETE
	State       *sessionState    `json:"state,omitempty"`
	Registers   []uint32         `json:"registers,omitempty"`
	Memory      string           `json:"memory,omitempty"` // hex-encoded read-memory bytes
	Breakpoints []string         `json:"breakpoints,omitempty"`
	Stream      *obs.StreamStats `json:"stream,omitempty"`
	Error       *apiError        `json:"error,omitempty"`
}

// sessionError builds an envelope-only session response.
func sessionError(code, format string, args ...any) *sessionResponse {
	return &sessionResponse{
		Schema: SessionResponseSchemaV1,
		Error:  &apiError{Code: code, Message: fmt.Sprintf(format, args...)},
	}
}

// writeSessionJSON renders a session reply; okStatus is the HTTP status
// for the success case (200, or 201 for create).
func writeSessionJSON(w http.ResponseWriter, okStatus int, resp *sessionResponse) {
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := okStatus
	if resp.Error != nil {
		status = statusForCode(resp.Error.Code)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func wireState(st session.State) *sessionState {
	return &sessionState{
		Stopped:      st.Stopped,
		PC:           fmt.Sprintf("0x%08x", st.PC),
		Halted:       st.Halted,
		Fault:        st.Fault,
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		Steps:        st.Steps,
	}
}

// handleSessionCreate builds a paused machine (warm-started from the
// pool-wide post-prelude image when one exists) and registers it. The
// session holds one admission slot for its whole lifetime — sessions
// and runs draw from the same -inflight capacity — released by the
// session's close, whichever of DELETE, idle timeout, or drain gets
// there first.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSource)
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeSessionJSON(w, 0, sessionError(codeBodyTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxSource))
			return
		}
		writeSessionJSON(w, 0, sessionError(codeBadRequest, "invalid JSON: %v", err))
		return
	}
	if req.Schema != "" && req.Schema != SessionRequestSchemaV1 {
		writeSessionJSON(w, 0, sessionError(codeUnsupportedSchema,
			"unknown request schema %q; this server speaks %q", req.Schema, SessionRequestSchemaV1))
		return
	}
	if req.Source == "" {
		writeSessionJSON(w, 0, sessionError(codeBadRequest, "missing source"))
		return
	}
	opt := 1
	if req.Opt != nil {
		opt = *req.Opt
	}
	if opt < 0 || opt > 1 {
		writeSessionJSON(w, 0, sessionError(codeBadRequest, "opt must be 0 or 1, got %d", opt))
		return
	}
	b, ok := machine.Lookup(req.Machine)
	if !ok {
		_, err := machine.Canonical(req.Machine)
		writeSessionJSON(w, 0, sessionError(codeUnsupportedMachine, "%v", err))
		return
	}
	fuel := req.Fuel
	if fuel == 0 || fuel > s.cfg.MaxFuel {
		fuel = s.cfg.MaxFuel
	}

	release, err := s.lim.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeSessionJSON(w, 0, sessionError(codeQueueFull,
				"server at capacity (%d running, %d queued); retry later",
				s.cfg.MaxInflight, s.cfg.MaxQueue))
		}
		return
	}

	id := s.mgr.NewID()
	// Delay slots requested unconditionally; backends without them
	// normalize the knob away (see specFor).
	m, prog, err := s.sims.NewMachine(r.Context(), b, req.Source,
		machine.Options{Opt: opt, DelaySlots: true, Fuel: fuel})
	if err != nil {
		release()
		writeSessionJSON(w, 0, sessionError(codeCompileError, "%v", err))
		return
	}
	sess := session.New(id, m, prog)
	sess.OnClose = release
	if err := s.mgr.Add(sess); err != nil {
		sess.Close(session.CloseReasonDrain) // fires OnClose -> release
		writeSessionJSON(w, 0, sessionError(codeInternal, "server draining; no new sessions"))
		return
	}

	st, _, err := sess.Registers(r.Context())
	if err != nil {
		// Only a concurrent drain can beat us here.
		writeSessionJSON(w, 0, s.sessionCmdError(err, id))
		return
	}
	writeSessionJSON(w, http.StatusCreated, &sessionResponse{
		Schema: SessionResponseSchemaV1,
		ID:     id,
		State:  wireState(st),
	})
}

// sessionCmdError maps session-layer errors to the stable API codes.
func (s *Server) sessionCmdError(err error, id string) *sessionResponse {
	switch {
	case errors.Is(err, session.ErrBusy):
		return sessionError(codeSessionBusy, "session %s is executing another command", id)
	case errors.Is(err, session.ErrClosed):
		return sessionError(codeSessionNotFound, "session %s is closed", id)
	default:
		return sessionError(codeBadRequest, "%v", err)
	}
}

// resolveAddr turns a command's addr field into a guest address: a
// program symbol name first, then a 0x-hex or decimal literal.
func resolveAddr(sess *session.Session, addr string) (uint32, error) {
	if addr == "" {
		return 0, fmt.Errorf("missing addr")
	}
	if a, ok := sess.Symbol(addr); ok {
		return a, nil
	}
	a, err := strconv.ParseUint(addr, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("addr %q is neither a program symbol nor an address literal", addr)
	}
	return uint32(a), nil
}

func (s *Server) handleSessionCommand(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.mgr.Get(id)
	if !ok {
		writeSessionJSON(w, 0, sessionError(codeSessionNotFound, "no session %q", id))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSource)
	var req commandRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeSessionJSON(w, 0, sessionError(codeBadRequest, "invalid JSON: %v", err))
		return
	}
	if req.Schema != "" && req.Schema != CommandRequestSchemaV1 {
		writeSessionJSON(w, 0, sessionError(codeUnsupportedSchema,
			"unknown request schema %q; this server speaks %q", req.Schema, CommandRequestSchemaV1))
		return
	}

	resp := &sessionResponse{Schema: SessionResponseSchemaV1, ID: id}
	switch req.Cmd {
	case "step":
		st, err := sess.Step(r.Context(), req.Steps)
		if err != nil {
			writeSessionJSON(w, 0, s.sessionCmdError(err, id))
			return
		}
		resp.State = wireState(st)
	case "run":
		st, err := sess.Run(r.Context(), req.Steps)
		if err != nil {
			writeSessionJSON(w, 0, s.sessionCmdError(err, id))
			return
		}
		resp.State = wireState(st)
	case "add-breakpoint", "clear-breakpoint":
		addr, err := resolveAddr(sess, req.Addr)
		if err != nil {
			writeSessionJSON(w, 0, sessionError(codeBadRequest, "%v", err))
			return
		}
		if req.Cmd == "add-breakpoint" {
			err = sess.AddBreakpoint(r.Context(), addr)
		} else {
			err = sess.ClearBreakpoint(r.Context(), addr)
		}
		if err != nil {
			writeSessionJSON(w, 0, s.sessionCmdError(err, id))
			return
		}
		fallthrough
	case "breakpoints":
		bps, err := sess.Breakpoints()
		if err != nil {
			writeSessionJSON(w, 0, s.sessionCmdError(err, id))
			return
		}
		resp.Breakpoints = make([]string, len(bps))
		for i, a := range bps {
			resp.Breakpoints[i] = fmt.Sprintf("0x%08x", a)
		}
	case "read-registers":
		st, regs, err := sess.Registers(r.Context())
		if err != nil {
			writeSessionJSON(w, 0, s.sessionCmdError(err, id))
			return
		}
		resp.State = wireState(st)
		resp.Registers = regs
	case "read-memory":
		addr, err := resolveAddr(sess, req.Addr)
		if err != nil {
			writeSessionJSON(w, 0, sessionError(codeBadRequest, "%v", err))
			return
		}
		b, err := sess.ReadMemory(r.Context(), addr, req.Count)
		if err != nil {
			writeSessionJSON(w, 0, s.sessionCmdError(err, id))
			return
		}
		resp.Memory = hex.EncodeToString(b)
	default:
		writeSessionJSON(w, 0, sessionError(codeBadRequest,
			"unknown cmd %q (want step, run, add-breakpoint, clear-breakpoint, breakpoints, read-registers, or read-memory)", req.Cmd))
		return
	}
	writeSessionJSON(w, http.StatusOK, resp)
}

// handleSessionGet is the inspection snapshot: machine state, armed
// breakpoints, and the live-stream counters (the in-stream drop counter
// also shows up here and, aggregated, in /metrics).
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.mgr.Get(id)
	if !ok {
		writeSessionJSON(w, 0, sessionError(codeSessionNotFound, "no session %q", id))
		return
	}
	st, _, err := sess.Registers(r.Context())
	if err != nil {
		writeSessionJSON(w, 0, s.sessionCmdError(err, id))
		return
	}
	bps, err := sess.Breakpoints()
	if err != nil {
		writeSessionJSON(w, 0, s.sessionCmdError(err, id))
		return
	}
	stats := sess.StreamStats()
	resp := &sessionResponse{Schema: SessionResponseSchemaV1, ID: id, State: wireState(st), Stream: &stats}
	resp.Breakpoints = make([]string, len(bps))
	for i, a := range bps {
		resp.Breakpoints[i] = fmt.Sprintf("0x%08x", a)
	}
	writeSessionJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.mgr.Close(id, session.CloseReasonClient) {
		writeSessionJSON(w, 0, sessionError(codeSessionNotFound, "no session %q", id))
		return
	}
	writeSessionJSON(w, http.StatusOK, &sessionResponse{
		Schema: SessionResponseSchemaV1, ID: id, Status: "closed",
	})
}

// handleSessionEvents is the live trace stream: one SSE message per
// obs event (the data line is the same wire JSON a -trace-out JSONL
// file holds, so a streamed trace diffs cleanly against a post-hoc
// one), a "drops" message whenever the subscriber's ring lost events
// since the last delivery, and a terminal "end" message naming why the
// session died. A client that stops reading stalls only its own
// handler goroutine: the subscriber ring keeps overwriting its oldest
// events and the simulator never waits.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.mgr.Get(id)
	if !ok {
		writeSessionJSON(w, 0, sessionError(codeSessionNotFound, "no session %q", id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeSessionJSON(w, 0, sessionError(codeInternal, "streaming unsupported by this connection"))
		return
	}
	ring := 0
	if v := r.URL.Query().Get("ring"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxEventRing {
			writeSessionJSON(w, 0, sessionError(codeBadRequest,
				"ring must be an integer in [1, %d], got %q", maxEventRing, v))
			return
		}
		ring = n
	}

	sub := sess.Subscribe(ring)
	defer sess.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: open\ndata: {\"id\":%q}\n\n", id)
	flusher.Flush()

	var lastDropped uint64
	for {
		ev, dropped, ok := sub.Next(r.Context())
		if !ok {
			break
		}
		if dropped > lastDropped {
			fmt.Fprintf(w, "event: drops\ndata: {\"dropped\":%d}\n\n", dropped)
			lastDropped = dropped
		}
		b, err := json.Marshal(ev)
		if err != nil {
			break
		}
		fmt.Fprintf(w, "id: %d\nevent: trace\ndata: %s\n\n", ev.Seq, b)
		flusher.Flush()
	}
	// Distinguish "the session ended" (terminal event, then EOF) from
	// "the client went away" (nothing left to tell it).
	if sub.Closed() {
		if d := sub.Dropped(); d > lastDropped {
			fmt.Fprintf(w, "event: drops\ndata: {\"dropped\":%d}\n\n", d)
		}
		reason := sess.CloseReason()
		if reason == "" {
			reason = "closed"
		}
		fmt.Fprintf(w, "event: end\ndata: {\"reason\":%q}\n\n", reason)
		flusher.Flush()
	}
}

// DrainSessions closes every live session with the drain reason: open
// SSE streams get their terminal event and admission slots come back.
// main calls this before the HTTP listener shuts down, so streams end
// well before the -drain-timeout fallback has to cancel anything.
func (s *Server) DrainSessions() {
	s.mgr.CloseAll(session.CloseReasonDrain)
}

// SessionStats exposes the session manager for tests and tools.
func (s *Server) SessionStats() session.Stats { return s.mgr.Stats() }

// sessionIdleOrDefault resolves the configured idle timeout.
func sessionIdleOrDefault(d time.Duration) time.Duration {
	if d <= 0 {
		return session.DefaultIdleTimeout
	}
	return d
}
