package main

import (
	"context"
	"errors"
	"sync/atomic"

	"risc1/internal/obs"
)

// errQueueFull is the backpressure signal: the limiter's inflight slots
// and its bounded accept queue are both full, so the request must be
// turned away with 429 + Retry-After rather than buffered without
// bound.
var errQueueFull = errors.New("serve: accept queue full")

// limiter is the server's admission control: at most inflight requests
// hold execution slots at once, at most queue more may wait for one,
// and everything beyond that is rejected immediately. Waiting requests
// give up when their client does (ctx).
type limiter struct {
	sem      chan struct{} // one token per admitted request
	queueCap int

	waiting  atomic.Int64
	admitted atomic.Uint64
	rejected atomic.Uint64
}

func newLimiter(inflight, queue int) *limiter {
	return &limiter{sem: make(chan struct{}, inflight), queueCap: queue}
}

// acquire admits the request and returns its release function, or an
// error: errQueueFull for backpressure, the context's error when the
// client hung up while waiting. release must be called exactly once,
// when the request's work (including any async job it started) is done.
func (l *limiter) acquire(ctx context.Context) (func(), error) {
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.release, nil
	default:
	}
	// The fast path failed: every slot is busy. Join the bounded wait
	// queue if it has room. The check-then-wait is approximate under
	// contention — the queue may briefly hold a request or two more than
	// the cap — which is fine for backpressure: the bound it enforces is
	// still O(queueCap), never unbounded buffering.
	if int(l.waiting.Load()) >= l.queueCap {
		l.rejected.Add(1)
		return nil, errQueueFull
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return l.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *limiter) release() { <-l.sem }

// Stats snapshots the limiter for /metrics.
func (l *limiter) Stats() obs.LimiterStats {
	return obs.LimiterStats{
		InflightCap: cap(l.sem),
		QueueCap:    l.queueCap,
		Inflight:    int64(len(l.sem)),
		Waiting:     l.waiting.Load(),
		Admitted:    l.admitted.Load(),
		Rejected:    l.rejected.Load(),
	}
}
