package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"risc1/internal/cluster"
	"risc1/internal/exec"
	"risc1/internal/machine"
	"risc1/internal/obs"
	"risc1/internal/session"
)

// The v1 API contract (documented in docs/API.md): one request schema,
// one response schema, one error envelope with stable machine-readable
// codes. Evolving the contract means minting /v2 identifiers, never
// changing what v1 means.
const (
	// RequestSchemaV1 names the POST /v1/run body. Absent means v1;
	// anything else is rejected with unsupported_schema.
	RequestSchemaV1 = "risc1.run-request/v1"
	// ResponseSchemaV1 is echoed in every response body.
	ResponseSchemaV1 = "risc1.run-response/v1"
	// MachinesResponseSchemaV1 is the body of GET /v1/machines.
	MachinesResponseSchemaV1 = "risc1.machines-response/v1"
)

// Stable error codes. Clients dispatch on these, never on messages.
const (
	codeBadRequest         = "bad_request"         // 400: malformed JSON or invalid field
	codeCompileError       = "compile_error"       // 400: the program does not compile
	codeNotFound           = "not_found"           // 404: unknown job id
	codeSessionNotFound    = "session_not_found"   // 404: unknown or already-closed session
	codeSessionBusy        = "session_busy"        // 409: the session is executing another command
	codeBodyTooLarge       = "body_too_large"      // 413: body past -max-source
	codeUnsupportedSchema  = "unsupported_schema"  // 422: unknown request schema
	codeUnsupportedMachine = "unsupported_machine" // 422: machine name not in the registry
	codeFuelExceeded       = "fuel_exceeded"       // 422: instruction budget exhausted
	codeQueueFull          = "queue_full"          // 429: admission queue full, retry later
	codeInternal           = "internal"            // 500: bug or infrastructure failure
	codeDeadline           = "deadline"            // 504: wall-clock budget exhausted
	// codePeerUnavailable ("peer_unavailable", 502) lives in peer.go with
	// the rest of the replica-routing layer.

	// codePeerProtocol rejects a relayed request whose peer wire version
	// is missing or not ours: replicas speaking different protocols must
	// not relay to each other. 400.
	codePeerProtocol = "peer_protocol"
)

// CacheHeader reports how the result cache handled a synchronous run:
// "hit", "miss", or "coalesced".
const CacheHeader = "X-Risc1-Cache"

// ServerConfig bounds what one request may ask of the service.
type ServerConfig struct {
	// MaxSource caps the request body in bytes; larger requests are
	// rejected with 413 before the body is read in full.
	MaxSource int64
	// MaxFuel caps the per-run instruction budget. Requests asking for
	// more (or for none) are clamped to it.
	MaxFuel uint64
	// MaxTimeout caps the per-run wall-clock deadline; requests asking
	// for more (or for none) are clamped to it.
	MaxTimeout time.Duration
	// MaxInflight caps how many admitted /v1/run requests may hold
	// execution slots at once; <= 0 means 64.
	MaxInflight int
	// MaxQueue caps how many more may wait for a slot before the server
	// answers 429; 0 means 2x MaxInflight, negative means no waiting.
	MaxQueue int
	// CacheBytes budgets the content-addressed result cache; 0 means
	// 256 MiB, negative stores nothing (concurrent identical requests
	// still collapse to one execution).
	CacheBytes int64
	// SessionIdle is how long an untouched debug session survives before
	// it is reaped; <= 0 means session.DefaultIdleTimeout.
	SessionIdle time.Duration

	// Cluster joins this replica to a replica set (schema
	// risc1.cluster-config/v1): health-checked membership, consistent-
	// hash routing of synchronous runs over live members, hot-key
	// replication. Nil means standalone serving.
	Cluster *cluster.Config
}

// Server queues compile+simulate requests on a batch-execution pool
// behind a content-addressed result cache and an admission limiter, and
// serves versioned run reports.
type Server struct {
	cached *exec.Cached
	lim    *limiter
	cfg    ServerConfig

	// sims shares the pool's compiled-program and warm-start image caches
	// with the session subsystem, which builds caller-owned machines
	// outside the worker pool.
	sims *exec.Sims
	mgr  *session.Manager

	// peering is the replica-set view (live membership, consistent-hash
	// routing, hot-key replication), nil when serving standalone.
	peering *peering
	// fp is this replica's capability fingerprint — what the cluster
	// handshake compares, and what GET /v1/cluster advertises (standalone
	// servers advertise it too, so a prospective peer can check
	// compatibility before joining).
	fp cluster.Fingerprint

	// latency is the /v1/run request-latency histogram, labeled by the
	// request's outcome ("ok" or the stable error code) and by how the
	// result cache handled it (hit/miss/coalesced, or "none" when the
	// request never reached the cache).
	latency *obs.HistogramVec

	mu     sync.Mutex
	nextID int
	jobs   map[string]*jobEntry
}

// jobEntry is one accepted async request: done closes when resp is final.
type jobEntry struct {
	done chan struct{}
	resp *runResponse
}

// runRequest is the body of POST /v1/run (schema risc1.run-request/v1).
type runRequest struct {
	// Schema names the request contract; empty means v1.
	Schema string `json:"schema,omitempty"`
	// Name labels the run report; default "serve".
	Name string `json:"name,omitempty"`
	// Source is the MiniC program. It must store its result in the
	// global "result".
	Source string `json:"source"`
	// Machine names a registered simulator backend, canonical or alias
	// (GET /v1/machines lists them); empty means the default, "risc1".
	Machine string `json:"machine,omitempty"`
	// Opt is the compiler optimization level, 0 or 1 (default 1).
	Opt *int `json:"opt,omitempty"`
	// Fuel is the instruction budget; 0 or absent means the server cap.
	Fuel uint64 `json:"fuel,omitempty"`
	// TimeoutMS is the wall-clock budget; 0 or absent means the server cap.
	TimeoutMS int64 `json:"timeoutMS,omitempty"`
	// Async returns 202 immediately; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// apiError is the one error envelope every failure wears: a stable
// machine-readable code plus a human-readable message.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// runResponse is the body of every /v1/run and /v1/jobs reply (schema
// risc1.run-response/v1). Exactly one of Status ("ok" / "pending") or
// Error is set.
type runResponse struct {
	Schema string      `json:"schema"`
	ID     string      `json:"id,omitempty"` // async jobs only
	Status string      `json:"status,omitempty"`
	Value  *int32      `json:"value,omitempty"`
	Report *obs.Report `json:"report,omitempty"`
	Error  *apiError   `json:"error,omitempty"`
}

// errResponse builds an envelope-only response.
func errResponse(code, format string, args ...any) *runResponse {
	return &runResponse{
		Schema: ResponseSchemaV1,
		Error:  &apiError{Code: code, Message: fmt.Sprintf(format, args...)},
	}
}

// httpStatus maps a response to its HTTP code: the status for
// successes, the error code for failures.
func httpStatus(resp *runResponse) int {
	if resp.Error == nil {
		if resp.Status == "pending" {
			return http.StatusAccepted
		}
		return http.StatusOK
	}
	return statusForCode(resp.Error.Code)
}

// statusForCode maps the stable error codes to HTTP statuses — the one
// table both the run and session envelopes use.
func statusForCode(code string) int {
	switch code {
	case codeBadRequest, codeCompileError, codePeerProtocol:
		return http.StatusBadRequest
	case codeNotFound, codeSessionNotFound:
		return http.StatusNotFound
	case codeSessionBusy:
		return http.StatusConflict
	case codeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case codeUnsupportedSchema, codeUnsupportedMachine, codeFuelExceeded:
		return http.StatusUnprocessableEntity
	case codeQueueFull:
		return http.StatusTooManyRequests
	case codePeerUnavailable:
		return http.StatusBadGateway
	case codeDeadline:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// NewServer wires the handlers over pool, fronted by a result cache and
// an admission limiter.
func NewServer(pool *exec.Pool, cfg ServerConfig) *Server {
	if cfg.MaxSource <= 0 {
		cfg.MaxSource = 1 << 20
	}
	if cfg.MaxFuel == 0 {
		cfg.MaxFuel = 1 << 26
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Second
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 2 * cfg.MaxInflight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	// The fingerprint hashes everything that must agree for replicas to
	// share a cache: the wire protocol, the machine registry, and the
	// caps the server clamps requests against (the clamped values feed
	// the content address, so divergent caps mean divergent keys).
	fp := cluster.NewFingerprint(machine.Names(), cfg.MaxFuel, cfg.MaxTimeout, cfg.MaxSource)
	return &Server{
		cached:  exec.NewCached(pool, cfg.CacheBytes),
		lim:     newLimiter(cfg.MaxInflight, cfg.MaxQueue),
		cfg:     cfg,
		sims:    pool.ImageSims(),
		mgr:     session.NewManager(sessionIdleOrDefault(cfg.SessionIdle)),
		peering: newPeering(cfg, fp),
		fp:      fp,
		latency: obs.NewHistogramVec("risc1_http_request_seconds", "outcome", "cache"),
		jobs:    make(map[string]*jobEntry),
	}
}

// StopCluster ends the membership prober; a no-op when standalone.
// Called on drain, and by tests tearing down replica sets.
func (s *Server) StopCluster() {
	if s.peering != nil {
		s.peering.close()
	}
}

// Handler returns the service's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /v1/sessions/{id}", s.handleSessionCommand)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("GET /v1/machines", s.handleMachines)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, resp *runResponse) {
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(resp))
	w.Write(append(b, '\n'))
}

// outcomeLabel is the histogram's outcome label value for a response:
// "ok" for successes, the stable error code otherwise.
func outcomeLabel(resp *runResponse) string {
	if resp.Error != nil {
		return resp.Error.Code
	}
	return "ok"
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// observe records the request in the latency histogram. Requests
	// that fail before reaching the result cache carry cache="none";
	// async requests are observed once, at job completion, under the
	// job's real outcome (the interim 202 is not a run outcome).
	observe := func(resp *runResponse, cache string) {
		s.latency.Observe(time.Since(start), outcomeLabel(resp), cache)
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSource)
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		var resp *runResponse
		if errors.As(err, &tooBig) {
			resp = errResponse(codeBodyTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxSource)
		} else {
			resp = errResponse(codeBadRequest, "invalid JSON: %v", err)
		}
		observe(resp, "none")
		writeJSON(w, resp)
		return
	}
	if req.Schema != "" && req.Schema != RequestSchemaV1 {
		resp := errResponse(codeUnsupportedSchema,
			"unknown request schema %q; this server speaks %q", req.Schema, RequestSchemaV1)
		observe(resp, "none")
		writeJSON(w, resp)
		return
	}
	if req.Source == "" {
		resp := errResponse(codeBadRequest, "missing source")
		observe(resp, "none")
		writeJSON(w, resp)
		return
	}

	spec, timeout, errResp := s.specFor(req)
	if errResp != nil {
		observe(errResp, "none")
		writeJSON(w, errResp)
		return
	}

	// A request relayed by a peer replica was already admitted at the
	// replica the client hit — it bypasses this limiter (each client
	// request consumes exactly one admission slot fleet-wide) and always
	// executes here, never re-forwards. The relay must carry our peer
	// wire version: replicas speaking a different protocol (or none)
	// are refused with the stable peer_protocol envelope, which the
	// sending replica reads as "mark me incompatible".
	if r.Header.Get(PeerHeader) != "" {
		if v := r.Header.Get(cluster.VersionHeader); v != strconv.Itoa(cluster.ProtocolVersion) {
			resp := errResponse(codePeerProtocol,
				"peer wire version %q not supported; this replica speaks %d", v, cluster.ProtocolVersion)
			observe(resp, "none")
			writeJSON(w, resp)
			return
		}
	}
	forwarded := s.peering != nil && r.Header.Get(PeerHeader) != ""
	if forwarded {
		s.peering.served.Add(1)
	}

	release := func() {}
	if !forwarded {
		// Admission control: take an execution slot or join the bounded
		// queue; a full queue is backpressure the client can act on.
		var err error
		release, err = s.lim.acquire(r.Context())
		if err != nil {
			if errors.Is(err, errQueueFull) {
				resp := errResponse(codeQueueFull,
					"server at capacity (%d running, %d queued); retry later",
					s.cfg.MaxInflight, s.cfg.MaxQueue)
				observe(resp, "none")
				w.Header().Set("Retry-After", "1")
				writeJSON(w, resp)
			}
			// Otherwise the client hung up while waiting; nothing to write.
			return
		}
	}

	if req.Async {
		s.mu.Lock()
		s.nextID++
		id := fmt.Sprintf("job-%06d", s.nextID)
		entry := &jobEntry{done: make(chan struct{})}
		s.jobs[id] = entry
		s.mu.Unlock()
		// The job outlives the HTTP request: it runs under the pool's
		// lifetime, bounded by its own wall-clock budget, and keeps its
		// admission slot until it finishes.
		go func() {
			defer release()
			cr, outcome, err := s.cached.Run(context.Background(), spec, timeout)
			entry.resp = s.respFor(id, spec, cr, err)
			observe(entry.resp, string(outcome))
			close(entry.done)
		}()
		writeJSON(w, &runResponse{Schema: ResponseSchemaV1, ID: id, Status: "pending"})
		return
	}

	defer release()

	// Replica routing: a synchronous run whose content address is homed
	// on another live replica is answered by that replica (or by a
	// local hot-key copy of its answer). Relayed requests (forwarded
	// above) never route again. Async runs always execute locally —
	// their responses carry replica-local job ids, so relaying them
	// would break the "poll where you posted" contract.
	//
	// A failed relay falls back to local execution: responses are
	// deterministic and id-free, so the client receives bytes identical
	// to the home's answer while the failure feeds the passive detector
	// (after enough of them the peer leaves the ring and routing stops
	// selecting it). The 502 peer_unavailable envelope is the last
	// resort, reachable only when the client itself is gone.
	if s.peering != nil && !forwarded {
		key := spec.CacheKey(timeout)
		if home := s.peering.home(key); home != "" {
			pr, route, cacheLabel, err := s.peering.serve(r.Context(), home, spec, timeout, key)
			if err == nil {
				w.Header().Set(RouteHeader, route)
				w.Header().Set(CacheHeader, cacheLabel)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(pr.status)
				w.Write(pr.body)
				s.latency.Observe(time.Since(start), peerOutcome(pr.body), cacheLabel)
				return
			}
			if r.Context().Err() != nil {
				w.Header().Set(RouteHeader, route)
				resp := errResponse(codePeerUnavailable,
					"replica %s (home for this run) is unreachable: %v", home, err)
				observe(resp, "none")
				writeJSON(w, resp)
				return
			}
			s.peering.fallbacks.Add(1)
			w.Header().Set(RouteHeader, "fallback")
		} else {
			s.peering.localHome.Add(1)
			w.Header().Set(RouteHeader, "local")
		}
	}

	// Synchronous path, through the content-addressed cache: identical
	// in-flight requests collapse to one engine execution, repeats are
	// served from memory, and the header says which happened. The run
	// itself is deliberately not bound to r.Context(): a client that
	// hangs up must not fail the computation for coalesced followers.
	cr, outcome, err := s.cached.Run(context.Background(), spec, timeout)
	w.Header().Set(CacheHeader, string(outcome))
	resp := s.respFor("", spec, cr, err)
	observe(resp, string(outcome))
	writeJSON(w, resp)
}

// specFor validates and clamps a request into an exec.Spec.
func (s *Server) specFor(req runRequest) (exec.Spec, time.Duration, *runResponse) {
	opt := 1
	if req.Opt != nil {
		opt = *req.Opt
	}
	if opt < 0 || opt > 1 {
		return exec.Spec{}, 0, errResponse(codeBadRequest, "opt must be 0 or 1, got %d", opt)
	}
	name, err := machine.Canonical(req.Machine)
	if err != nil {
		return exec.Spec{}, 0, errResponse(codeUnsupportedMachine, "%v", err)
	}
	fuel := req.Fuel
	if fuel == 0 || fuel > s.cfg.MaxFuel {
		fuel = s.cfg.MaxFuel
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 || timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	reqName := req.Name
	if reqName == "" {
		reqName = "serve"
	}
	return exec.Spec{
		Name:    reqName,
		Machine: name,
		Source:  req.Source,
		Opt:     opt,
		// Ask for delay slots unconditionally; backends without them
		// normalize the knob away, so this only reaches the RISC assembler.
		DelaySlots: true,
		Fuel:       fuel,
	}, timeout, nil
}

// respFor classifies a finished (or cached) run into the response
// vocabulary. infraErr is a failure of the serving machinery itself
// (pool closed), distinct from the run's own outcome in cr.Err.
func (s *Server) respFor(id string, spec exec.Spec, cr exec.CachedResult, infraErr error) *runResponse {
	if infraErr != nil {
		resp := errResponse(codeInternal, "%v", infraErr)
		resp.ID = id
		return resp
	}
	resp := &runResponse{Schema: ResponseSchemaV1, ID: id}
	switch {
	case cr.Err == nil:
		resp.Status = "ok"
		v := cr.Outcome.Value
		resp.Value = &v
		rep := cr.Outcome.Report
		rep.Exec = &obs.ExecStat{Attempts: cr.Attempts, FuelLimit: spec.Fuel}
		resp.Report = &rep
	case errors.As(cr.Err, new(*exec.CompileError)):
		resp.Error = &apiError{Code: codeCompileError, Message: cr.Err.Error()}
	case exec.IsFuelExhausted(cr.Err):
		resp.Error = &apiError{Code: codeFuelExceeded, Message: cr.Err.Error()}
	case errors.Is(cr.Err, context.DeadlineExceeded):
		resp.Error = &apiError{Code: codeDeadline, Message: "simulation deadline exceeded"}
	case errors.As(cr.Err, new(*exec.PanicError)):
		resp.Error = &apiError{Code: codeInternal, Message: "internal error: job panicked"}
	default:
		resp.Error = &apiError{Code: codeInternal, Message: cr.Err.Error()}
	}
	return resp
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, errResponse(codeNotFound, "no job %q", id))
		return
	}
	select {
	case <-entry.done:
		writeJSON(w, entry.resp)
	default:
		writeJSON(w, &runResponse{Schema: ResponseSchemaV1, ID: id, Status: "pending"})
	}
}

// machineInfo is one registry entry on the wire.
type machineInfo struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description,omitempty"`
	Default     bool     `json:"default,omitempty"`
}

// machinesResponse is the body of GET /v1/machines (schema
// risc1.machines-response/v1).
type machinesResponse struct {
	Schema   string        `json:"schema"`
	Machines []machineInfo `json:"machines"`
}

// handleMachines lists the registered simulator backends in registration
// order: the canonical names a request's machine field accepts, their
// aliases, and which one an empty field means.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	resp := machinesResponse{Schema: MachinesResponseSchemaV1}
	for _, b := range machine.Machines() {
		resp.Machines = append(resp.Machines, machineInfo{
			Name:        b.Name,
			Aliases:     b.Aliases,
			Description: b.Description,
			Default:     b.Name == machine.DefaultName,
		})
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// handleCluster serves the cluster membership document (schema
// risc1.cluster-response/v1): every configured member with its state,
// health counters and probed fingerprint, plus the membership
// generation. It doubles as the health probe and capability handshake —
// peers GET it to check liveness and fingerprint compatibility. A
// standalone server answers too (generation 0, members only itself), so
// tooling can treat every risc1-serve uniformly.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var resp cluster.Response
	if s.peering != nil {
		resp = s.peering.members.Snapshot()
	} else {
		resp = cluster.Response{Schema: cluster.ResponseSchema, Fingerprint: s.fp}
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleMetrics exports every layer's gauges and counters in the
// Prometheus text exposition format: the pool, the level-2 result
// cache, the level-1 compiled-program cache, the warm-start image
// cache, the admission limiter, the session manager (live sessions,
// stream events and drops), and the /v1/run latency histogram.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	pool := s.cached.Pool()
	fmt.Fprint(w, pool.Stats().Prometheus())
	fmt.Fprint(w, s.cached.Stats().Prometheus("risc1_rcache"))
	fmt.Fprint(w, pool.ProgramCacheStats().Prometheus("risc1_progcache"))
	fmt.Fprint(w, pool.ImageCacheStats().Prometheus("risc1_imgcache"))
	fmt.Fprint(w, s.lim.Stats().Prometheus("risc1_http"))
	fmt.Fprint(w, s.mgr.Stats().Prometheus("risc1_session"))
	if s.peering != nil {
		fmt.Fprint(w, s.PeerStats().Prometheus())
		fmt.Fprint(w, s.peering.cache.Stats().Prometheus("risc1_peercache"))
		fmt.Fprint(w, s.ClusterStats().Prometheus())
	}
	fmt.Fprint(w, s.latency.Prometheus())
}

// CacheStats exposes the result cache for tests and tools.
func (s *Server) CacheStats() obs.CacheStats { return s.cached.Stats() }

// PeerCacheStats exposes the hot-key peer-response cache for tests and
// tools; the zero value when peering is off.
func (s *Server) PeerCacheStats() obs.CacheStats {
	if s.peering == nil {
		return obs.CacheStats{}
	}
	return s.peering.cache.Stats()
}

// LimiterStats exposes the admission limiter for tests and tools.
func (s *Server) LimiterStats() obs.LimiterStats { return s.lim.Stats() }

// ClusterStats merges the membership gauges with the serve-layer
// counters (local fallbacks, generation-change cache purges); the zero
// value when standalone.
func (s *Server) ClusterStats() obs.ClusterStats {
	p := s.peering
	if p == nil {
		return obs.ClusterStats{}
	}
	cs := p.members.Stats()
	cs.Fallbacks = p.fallbacks.Load()
	cs.CachePurges = p.purges.Load()
	return cs
}
