package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"risc1/internal/exec"
	"risc1/internal/obs"
)

// The serve response schema is versioned like the run report: bump on
// any field-breaking change and regenerate the golden files.
const (
	responseSchema  = "risc1.serve-response"
	responseVersion = 1
)

// ServerConfig bounds what one request may ask of the service.
type ServerConfig struct {
	// MaxSource caps the request body in bytes; larger requests are
	// rejected with 413 before the body is read in full.
	MaxSource int64
	// MaxFuel caps the per-run instruction budget. Requests asking for
	// more (or for none) are clamped to it.
	MaxFuel uint64
	// MaxTimeout caps the per-run wall-clock deadline; requests asking
	// for more (or for none) are clamped to it.
	MaxTimeout time.Duration
}

// Server queues compile+simulate requests on a batch-execution pool and
// serves their versioned run reports.
type Server struct {
	pool *exec.Pool
	cfg  ServerConfig

	mu     sync.Mutex
	nextID int
	jobs   map[string]*jobEntry
}

// jobEntry is one accepted request: done closes when resp is final.
type jobEntry struct {
	done chan struct{}
	resp *runResponse
}

// runRequest is the body of POST /v1/run.
type runRequest struct {
	// Name labels the run report; default "serve".
	Name string `json:"name,omitempty"`
	// Source is the MiniC program. It must store its result in the
	// global "result".
	Source string `json:"source"`
	// Machine is "risc1" (default) or "cisc".
	Machine string `json:"machine,omitempty"`
	// Opt is the compiler optimization level, 0 or 1 (default 1).
	Opt *int `json:"opt,omitempty"`
	// Fuel is the instruction budget; 0 or absent means the server cap.
	Fuel uint64 `json:"fuel,omitempty"`
	// TimeoutMS is the wall-clock budget; 0 or absent means the server cap.
	TimeoutMS int64 `json:"timeoutMS,omitempty"`
	// Async returns 202 immediately; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// runResponse is the body of every /v1/run and /v1/jobs reply.
type runResponse struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	ID      string `json:"id,omitempty"`
	// Status is one of ok, pending, compile_error, fuel_exhausted,
	// deadline_exceeded, oversized, bad_request, not_found, error.
	Status string      `json:"status"`
	Value  *int32      `json:"value,omitempty"`
	Error  string      `json:"error,omitempty"`
	Report *obs.Report `json:"report,omitempty"`
}

// httpStatus maps a response status to its HTTP code.
func httpStatus(status string) int {
	switch status {
	case "ok":
		return http.StatusOK
	case "pending":
		return http.StatusAccepted
	case "compile_error", "bad_request":
		return http.StatusBadRequest
	case "not_found":
		return http.StatusNotFound
	case "oversized":
		return http.StatusRequestEntityTooLarge
	case "fuel_exhausted":
		return http.StatusUnprocessableEntity
	case "deadline_exceeded":
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// NewServer wires the handlers onto a fresh mux.
func NewServer(pool *exec.Pool, cfg ServerConfig) *Server {
	if cfg.MaxSource <= 0 {
		cfg.MaxSource = 1 << 20
	}
	if cfg.MaxFuel == 0 {
		cfg.MaxFuel = 1 << 26
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Second
	}
	return &Server{pool: pool, cfg: cfg, jobs: make(map[string]*jobEntry)}
}

// Handler returns the service's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, resp *runResponse) {
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(resp.Status))
	w.Write(append(b, '\n'))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSource)
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, &runResponse{
				Schema: responseSchema, Version: responseVersion,
				Status: "oversized",
				Error:  fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxSource),
			})
			return
		}
		writeJSON(w, &runResponse{
			Schema: responseSchema, Version: responseVersion,
			Status: "bad_request", Error: "invalid JSON: " + err.Error(),
		})
		return
	}
	if req.Source == "" {
		writeJSON(w, &runResponse{
			Schema: responseSchema, Version: responseVersion,
			Status: "bad_request", Error: "missing source",
		})
		return
	}

	spec, timeout, errResp := s.specFor(req)
	if errResp != nil {
		writeJSON(w, errResp)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	entry := &jobEntry{done: make(chan struct{})}
	s.jobs[id] = entry
	s.mu.Unlock()

	// The job outlives the HTTP request in async mode, so it runs under
	// the pool's lifetime, bounded by its own wall-clock budget.
	tk, err := s.pool.Submit(context.Background(), spec.Job(id, timeout))
	if err != nil {
		resp := &runResponse{
			Schema: responseSchema, Version: responseVersion,
			ID: id, Status: "error", Error: err.Error(),
		}
		entry.resp = resp
		close(entry.done)
		writeJSON(w, resp)
		return
	}
	go func() {
		res, _ := tk.Result(context.Background())
		entry.resp = s.respFor(id, spec, res)
		close(entry.done)
	}()

	if req.Async {
		writeJSON(w, &runResponse{
			Schema: responseSchema, Version: responseVersion,
			ID: id, Status: "pending",
		})
		return
	}
	select {
	case <-entry.done:
		writeJSON(w, entry.resp)
	case <-r.Context().Done():
		// The client hung up; the job keeps running for a later poll.
	}
}

// specFor validates and clamps a request into an exec.Spec.
func (s *Server) specFor(req runRequest) (exec.Spec, time.Duration, *runResponse) {
	opt := 1
	if req.Opt != nil {
		opt = *req.Opt
	}
	if opt < 0 || opt > 1 {
		return exec.Spec{}, 0, &runResponse{
			Schema: responseSchema, Version: responseVersion,
			Status: "bad_request", Error: fmt.Sprintf("opt must be 0 or 1, got %d", opt),
		}
	}
	var machine exec.Machine
	switch req.Machine {
	case "", "risc1":
		machine = exec.MachineRISC
	case "cisc":
		machine = exec.MachineCISC
	default:
		return exec.Spec{}, 0, &runResponse{
			Schema: responseSchema, Version: responseVersion,
			Status: "bad_request", Error: fmt.Sprintf("unknown machine %q", req.Machine),
		}
	}
	fuel := req.Fuel
	if fuel == 0 || fuel > s.cfg.MaxFuel {
		fuel = s.cfg.MaxFuel
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 || timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	name := req.Name
	if name == "" {
		name = "serve"
	}
	return exec.Spec{
		Name:       name,
		Machine:    machine,
		Source:     req.Source,
		Opt:        opt,
		DelaySlots: machine == exec.MachineRISC,
		Fuel:       fuel,
	}, timeout, nil
}

// respFor classifies a finished job into the response vocabulary.
func (s *Server) respFor(id string, spec exec.Spec, res exec.Result) *runResponse {
	resp := &runResponse{Schema: responseSchema, Version: responseVersion, ID: id}
	switch {
	case res.Err == nil:
		out := res.Value.(exec.Outcome)
		resp.Status = "ok"
		resp.Value = &out.Value
		rep := out.Report
		rep.Exec = &obs.ExecStat{Attempts: res.Attempts, FuelLimit: spec.Fuel}
		resp.Report = &rep
	case errors.As(res.Err, new(*exec.CompileError)):
		resp.Status = "compile_error"
		resp.Error = res.Err.Error()
	case exec.IsFuelExhausted(res.Err):
		resp.Status = "fuel_exhausted"
		resp.Error = res.Err.Error()
	case errors.Is(res.Err, context.DeadlineExceeded):
		resp.Status = "deadline_exceeded"
		resp.Error = "simulation deadline exceeded"
	case errors.As(res.Err, new(*exec.PanicError)):
		resp.Status = "error"
		resp.Error = "internal error: job panicked"
	default:
		resp.Status = "error"
		resp.Error = res.Err.Error()
	}
	return resp
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, &runResponse{
			Schema: responseSchema, Version: responseVersion,
			Status: "not_found", Error: fmt.Sprintf("no job %q", id),
		})
		return
	}
	select {
	case <-entry.done:
		writeJSON(w, entry.resp)
	default:
		writeJSON(w, &runResponse{
			Schema: responseSchema, Version: responseVersion,
			ID: id, Status: "pending",
		})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.pool.Stats().Prometheus())
}
