package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/exec"
	"risc1/internal/obs"
	"risc1/internal/session"
)

// sessionsSrc is structurally rich (recursion -> calls, returns, and
// deep enough window spills) and tiny enough to step exhaustively.
const sessionsSrc = `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(8); return 0; }
`

// doSession performs one session API call and decodes the envelope.
func doSession(t *testing.T, method, url, body string) (*http.Response, *sessionResponse) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr sessionResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("unmarshal %s %s response: %v\n%s", method, url, err, b)
	}
	if sr.Schema != SessionResponseSchemaV1 {
		t.Errorf("%s %s: schema %q, want %q", method, url, sr.Schema, SessionResponseSchemaV1)
	}
	return resp, &sr
}

// createSession builds a session and returns its id.
func createSession(t *testing.T, ts *httptest.Server, req sessionRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, sr := doSession(t, "POST", ts.URL+"/v1/sessions", string(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, want 201: %+v", resp.StatusCode, sr.Error)
	}
	if sr.ID == "" || sr.State == nil || sr.State.Halted {
		t.Fatalf("created session %+v, want a paused machine with an id", sr)
	}
	return sr.ID
}

// command drives one session command, asserting success.
func command(t *testing.T, ts *httptest.Server, id string, req commandRequest) *sessionResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, sr := doSession(t, "POST", ts.URL+"/v1/sessions/"+id, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cmd %q status = %d: %+v", req.Cmd, resp.StatusCode, sr.Error)
	}
	return sr
}

// sseMessage is one parsed server-sent event.
type sseMessage struct {
	event string
	id    string
	data  string
}

// parseSSE splits an event-stream body into messages. It only uses
// Errorf so it is safe to call from a reader goroutine.
func parseSSE(t *testing.T, r io.Reader) []sseMessage {
	var msgs []sseMessage
	var cur sseMessage
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				msgs = append(msgs, cur)
			}
			cur = sseMessage{}
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
	if err := sc.Err(); err != nil {
		t.Errorf("reading SSE stream: %v", err)
	}
	return msgs
}

// TestSessionLifecycle drives the whole debugger surface over HTTP:
// create paused, breakpoint by symbol, run to it, inspect registers and
// memory, step, finish, and close.
func TestSessionLifecycle(t *testing.T) {
	ts, srv, _ := newTestServer(t, ServerConfig{})
	id := createSession(t, ts, sessionRequest{Source: sessionsSrc})

	command(t, ts, id, commandRequest{Cmd: "add-breakpoint", Addr: "fib"})
	sr := command(t, ts, id, commandRequest{Cmd: "run"})
	if sr.State.Stopped != session.StopBreakpoint || sr.State.Halted {
		t.Fatalf("run state %+v, want a breakpoint pause", sr.State)
	}
	if len(sr.Breakpoints) != 0 {
		t.Errorf("run response carries breakpoints: %v", sr.Breakpoints)
	}
	if bp := command(t, ts, id, commandRequest{Cmd: "breakpoints"}); len(bp.Breakpoints) != 1 {
		t.Errorf("breakpoints = %v, want one", bp.Breakpoints)
	}
	if sr := command(t, ts, id, commandRequest{Cmd: "read-registers"}); len(sr.Registers) != 32 {
		t.Errorf("RISC register read returned %d values, want 32", len(sr.Registers))
	}

	step := command(t, ts, id, commandRequest{Cmd: "step", Steps: 3})
	if step.State.Stopped != session.StopStep || step.State.Steps != 3 {
		t.Fatalf("step state %+v, want 3 stepped instructions", step.State)
	}

	command(t, ts, id, commandRequest{Cmd: "clear-breakpoint", Addr: "fib"})
	fin := command(t, ts, id, commandRequest{Cmd: "run"})
	if fin.State.Stopped != session.StopHalt || !fin.State.Halted {
		t.Fatalf("final run %+v, want a clean halt", fin.State)
	}

	mem := command(t, ts, id, commandRequest{Cmd: "read-memory", Addr: "result", Count: 4})
	if mem.Memory != "00000015" { // fib(8) = 21, big-endian word
		t.Errorf("result word = %q, want 00000015", mem.Memory)
	}

	// The inspection snapshot agrees.
	resp, got := doSession(t, "GET", ts.URL+"/v1/sessions/"+id, "")
	if resp.StatusCode != http.StatusOK || !got.State.Halted || got.Stream == nil {
		t.Fatalf("GET session = %d %+v", resp.StatusCode, got)
	}
	if got.Stream.Events == 0 {
		t.Error("session stream saw no events despite a full run")
	}

	resp, del := doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, "")
	if resp.StatusCode != http.StatusOK || del.Status != "closed" {
		t.Fatalf("DELETE = %d %+v", resp.StatusCode, del)
	}
	if resp, _ := doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE status = %d, want 404", resp.StatusCode)
	}
	body, _ := json.Marshal(commandRequest{Cmd: "step"})
	resp, sr = doSession(t, "POST", ts.URL+"/v1/sessions/"+id, string(body))
	if resp.StatusCode != http.StatusNotFound || sr.Error.Code != codeSessionNotFound {
		t.Errorf("command on a closed session = %d %+v, want 404 session_not_found", resp.StatusCode, sr.Error)
	}

	if st := srv.SessionStats(); st.Created != 1 || st.Closed != 1 || st.Active != 0 {
		t.Errorf("session stats %+v, want one created and closed", st)
	}
}

// TestSessionValidation covers the rejection paths and their stable codes.
// TestSessionEveryMachine drives a session to completion on every
// registered machine: the debugger surface is machine-agnostic, and the
// result global reads back the same bytes on each.
func TestSessionEveryMachine(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	for _, mach := range []string{"risc1", "cisc", "rv32"} {
		id := createSession(t, ts, sessionRequest{Source: sessionsSrc, Machine: mach})
		sr := command(t, ts, id, commandRequest{Cmd: "run"})
		if sr.State == nil || !sr.State.Halted || sr.State.Stopped != "halt" {
			t.Fatalf("%s: run state = %+v, want a clean halt", mach, sr.State)
		}
		sr = command(t, ts, id, commandRequest{Cmd: "read-memory", Addr: "result"})
		if sr.Memory != "00000015" {
			t.Errorf("%s: result = %q, want 00000015 (fib(8) = 21)", mach, sr.Memory)
		}
		doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, "")
	}
}

func TestSessionValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	cases := []struct {
		name, method, url, body string
		status                  int
		code                    string
	}{
		{"missing source", "POST", "/v1/sessions", `{}`, 400, "bad_request"},
		{"bad machine", "POST", "/v1/sessions", `{"source": "int main() { return 0; }", "machine": "pdp11"}`, 422, "unsupported_machine"},
		{"bad opt", "POST", "/v1/sessions", `{"source": "int main() { return 0; }", "opt": 7}`, 400, "bad_request"},
		{"unknown schema", "POST", "/v1/sessions", `{"schema": "risc1.session-request/v9", "source": "int main() { return 0; }"}`, 422, "unsupported_schema"},
		{"compile error", "POST", "/v1/sessions", `{"source": "int main() { return undeclared; }"}`, 400, "compile_error"},
		{"unknown session", "POST", "/v1/sessions/sess-999999", `{"cmd": "step"}`, 404, "session_not_found"},
		{"unknown session get", "GET", "/v1/sessions/sess-999999", "", 404, "session_not_found"},
		{"unknown session stream", "GET", "/v1/sessions/sess-999999/events", "", 404, "session_not_found"},
	}
	for _, tc := range cases {
		resp, sr := doSession(t, tc.method, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if sr.Error == nil || sr.Error.Code != tc.code {
			t.Errorf("%s: error = %+v, want code %q", tc.name, sr.Error, tc.code)
		}
	}

	// Command-level rejections on a live session.
	id := createSession(t, ts, sessionRequest{Source: sessionsSrc})
	for _, tc := range []struct {
		name, body string
		code       string
	}{
		{"unknown cmd", `{"cmd": "teleport"}`, "bad_request"},
		{"bad addr", `{"cmd": "add-breakpoint", "addr": "no_such_symbol"}`, "bad_request"},
		{"missing addr", `{"cmd": "read-memory"}`, "bad_request"},
		{"oversized read", `{"cmd": "read-memory", "addr": "result", "count": 65536}`, "bad_request"},
		{"unknown cmd schema", `{"schema": "risc1.session-command/v9", "cmd": "step"}`, "unsupported_schema"},
	} {
		_, sr := doSession(t, "POST", ts.URL+"/v1/sessions/"+id, tc.body)
		if sr.Error == nil || sr.Error.Code != tc.code {
			t.Errorf("%s: error = %+v, want code %q", tc.name, sr.Error, tc.code)
		}
	}
	// A numeric addr literal is accepted.
	fibAddr := command(t, ts, id, commandRequest{Cmd: "add-breakpoint", Addr: "fib"}).Breakpoints[0]
	command(t, ts, id, commandRequest{Cmd: "clear-breakpoint", Addr: fibAddr})
	if bp := command(t, ts, id, commandRequest{Cmd: "breakpoints"}); len(bp.Breakpoints) != 0 {
		t.Errorf("hex-literal clear left breakpoints: %v", bp.Breakpoints)
	}
}

// TestSessionBusy: while a long run command executes, every other
// command answers 409 session_busy immediately, and closing the session
// interrupts the run.
func TestSessionBusy(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	id := createSession(t, ts, sessionRequest{Source: spinSrc, Fuel: 1 << 40})

	runStatus := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(commandRequest{Cmd: "run"})
		resp, err := http.Post(ts.URL+"/v1/sessions/"+id, "application/json", strings.NewReader(string(body)))
		if err != nil {
			runStatus <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		runStatus <- resp.StatusCode
	}()

	// Wait for the run to hold the command lock.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, _ := json.Marshal(commandRequest{Cmd: "step"})
		resp, sr := doSession(t, "POST", ts.URL+"/v1/sessions/"+id, string(body))
		if resp.StatusCode == http.StatusConflict {
			if sr.Error.Code != codeSessionBusy {
				t.Fatalf("busy code = %q, want %q", sr.Error.Code, codeSessionBusy)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never became busy")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// DELETE interrupts the in-flight run; the run command reports the
	// session gone.
	if resp, _ := doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE of a busy session = %d", resp.StatusCode)
	}
	select {
	case st := <-runStatus:
		if st != http.StatusNotFound {
			t.Errorf("interrupted run status = %d, want 404 (session closed under it)", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("interrupted run never returned")
	}
}

// TestSessionsCountAgainstInflight: a live session owns an admission
// slot, so with -inflight 1 a run request is turned away until the
// session closes — sessions and runs share one capacity pool.
func TestSessionsCountAgainstInflight(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{MaxInflight: 1, MaxQueue: -1})
	id := createSession(t, ts, sessionRequest{Source: sessionsSrc})

	body, _ := json.Marshal(runRequest{Source: sessionsSrc})
	resp, b := postRun(t, ts, string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run beside a session = %d, want 429\n%s", resp.StatusCode, b)
	}
	if code := errorCode(t, b); code != "queue_full" {
		t.Errorf("code = %q, want queue_full", code)
	}
	// A second session is refused the same way.
	sreq, _ := json.Marshal(sessionRequest{Source: sessionsSrc})
	sresp, sr := doSession(t, "POST", ts.URL+"/v1/sessions", string(sreq))
	if sresp.StatusCode != http.StatusTooManyRequests || sr.Error.Code != codeQueueFull {
		t.Errorf("second session = %d %+v, want 429 queue_full", sresp.StatusCode, sr.Error)
	}

	doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, "")
	if resp, _ := postRun(t, ts, string(body)); resp.StatusCode != http.StatusOK {
		t.Errorf("run after session close = %d, want 200 (slot released)", resp.StatusCode)
	}
}

// TestSessionSSEDifferential is the acceptance differential end to end
// over the API: a session stepped instruction by instruction, observed
// through the SSE stream, must produce byte-for-byte the same JSON
// event lines as a post-hoc traced run of the same program through the
// JSONL sink (the risc1-run -trace-out path).
func TestSessionSSEDifferential(t *testing.T) {
	ts, _, _ := newTestServer(t, ServerConfig{})
	id := createSession(t, ts, sessionRequest{Source: sessionsSrc})

	// Attach the stream with a ring big enough to never drop.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events?ring=65536")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	type streamResult struct {
		msgs []sseMessage
	}
	stream := make(chan streamResult, 1)
	go func() {
		stream <- streamResult{parseSSE(t, resp.Body)}
	}()

	// Step in mixed strides so chunk boundaries land arbitrarily.
	strides := []uint64{1, 3, 1, 7, 64, 1}
	for i := 0; ; i++ {
		sr := command(t, ts, id, commandRequest{Cmd: "step", Steps: strides[i%len(strides)]})
		if sr.State.Halted {
			if sr.State.Fault != "" {
				t.Fatalf("session faulted: %s", sr.State.Fault)
			}
			break
		}
	}
	doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, "")

	var got streamResult
	select {
	case got = <-stream:
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream never ended")
	}
	msgs := got.msgs
	if len(msgs) < 3 || msgs[0].event != "open" {
		t.Fatalf("stream shape wrong: %d messages, first %+v", len(msgs), msgs[0])
	}
	last := msgs[len(msgs)-1]
	if last.event != "end" || !strings.Contains(last.data, session.CloseReasonClient) {
		t.Fatalf("terminal message = %+v, want end with reason %q", last, session.CloseReasonClient)
	}
	var streamed []string
	for _, m := range msgs[1 : len(msgs)-1] {
		if m.event == "drops" {
			t.Fatalf("lossless ring dropped events: %+v", m)
		}
		if m.event != "trace" {
			t.Fatalf("unexpected stream message %+v", m)
		}
		streamed = append(streamed, m.data)
	}

	// Reference: the same program traced post-hoc through the JSONL sink.
	prog, _, _, err := cc.CompileRISC(sessionsSrc, cc.Options{Opt: 1, DelaySlots: true})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	c.Obs = &obs.Observer{Tracer: obs.NewTracer(0, sink)}
	if err := c.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	sink.Close()
	reference := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	if len(streamed) != len(reference) {
		t.Fatalf("streamed %d events, post-hoc trace has %d", len(streamed), len(reference))
	}
	for i := range reference {
		if streamed[i] != reference[i] {
			t.Fatalf("event %d differs\n  streamed: %s\n  posthoc:  %s", i, streamed[i], reference[i])
		}
	}
}

// TestSessionStalledSSEClient is satellite coverage for the slow-
// subscriber path over real HTTP: a client that attaches a tiny ring
// and refuses to read must not slow the simulator (the run command
// still burns its whole fuel budget promptly), and when the stream is
// finally drained it shows monotonically increasing drop counts whose
// total exactly matches the sequence-number gaps.
func TestSessionStalledSSEClient(t *testing.T) {
	const fuel = 50000
	ts, _, _ := newTestServer(t, ServerConfig{})
	id := createSession(t, ts, sessionRequest{Source: spinSrc, Fuel: fuel})

	// Attach with a tiny ring and stall: no reads until the run is over.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events?ring=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The simulator must reach fuel exhaustion without waiting for the
	// stalled client (the generous deadline is CI headroom, not budget —
	// the session-layer A/B benchmark pins the <=5% overhead bound).
	runDone := make(chan sessionResponse, 1)
	go func() {
		body, _ := json.Marshal(commandRequest{Cmd: "run"})
		post, err := http.Post(ts.URL+"/v1/sessions/"+id, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			runDone <- sessionResponse{}
			return
		}
		defer post.Body.Close()
		var sr sessionResponse
		if err := json.NewDecoder(post.Body).Decode(&sr); err != nil {
			t.Errorf("decoding run response: %v", err)
		}
		runDone <- sr
	}()
	select {
	case sr := <-runDone:
		if sr.State == nil || sr.State.Stopped != session.StopFuel || sr.State.Instructions != fuel {
			t.Fatalf("run response %+v, want fuel exhaustion at %d", sr, fuel)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run stalled behind a non-reading SSE client")
	}

	// Total events offered, from the inspection snapshot.
	_, snap := doSession(t, "GET", ts.URL+"/v1/sessions/"+id, "")
	total := snap.Stream.Events
	if total < fuel {
		t.Fatalf("stream saw %d events for %d instructions", total, fuel)
	}
	doSession(t, "DELETE", ts.URL+"/v1/sessions/"+id, "")

	// Now drain the whole stream and audit it.
	msgs := parseSSE(t, resp.Body)
	if len(msgs) < 2 || msgs[0].event != "open" || msgs[len(msgs)-1].event != "end" {
		t.Fatalf("stream shape wrong: %d messages", len(msgs))
	}
	var (
		delivered  uint64
		lastSeq    int64 = -1
		gaps       uint64
		lastDrops  uint64
		dropsSeen  int
		sawDropped bool
	)
	for _, m := range msgs[1 : len(msgs)-1] {
		switch m.event {
		case "drops":
			var d struct {
				Dropped uint64 `json:"dropped"`
			}
			if err := json.Unmarshal([]byte(m.data), &d); err != nil {
				t.Fatalf("drops payload %q: %v", m.data, err)
			}
			if d.Dropped <= lastDrops {
				t.Fatalf("drop counter not monotone: %d after %d", d.Dropped, lastDrops)
			}
			lastDrops = d.Dropped
			dropsSeen++
			sawDropped = true
		case "trace":
			seq, err := strconv.ParseInt(m.id, 10, 64)
			if err != nil {
				t.Fatalf("trace id %q: %v", m.id, err)
			}
			if seq <= lastSeq {
				t.Fatalf("sequence not increasing: %d after %d", seq, lastSeq)
			}
			gaps += uint64(seq - lastSeq - 1)
			lastSeq = seq
			delivered++
		default:
			t.Fatalf("unexpected stream message %+v", m)
		}
	}
	if !sawDropped {
		t.Fatal("a stalled 8-slot ring under 50000 events never reported drops")
	}
	// Gap-exactness: every event is either delivered or accounted for in
	// the cumulative drop counter, and the counter equals the seq gaps.
	if gaps != lastDrops {
		t.Errorf("sequence gaps total %d, drop counter says %d", gaps, lastDrops)
	}
	if delivered+lastDrops != total {
		t.Errorf("delivered %d + dropped %d != emitted %d", delivered, lastDrops, total)
	}
	if uint64(lastSeq) != total-1 {
		t.Errorf("freshest delivered seq %d, want %d (drop-oldest keeps the live edge)", lastSeq, total-1)
	}
	t.Logf("delivered %d, dropped %d (%d drop reports) of %d events", delivered, lastDrops, dropsSeen, total)
}

// TestServeDrainClosesOpenStream is the drain bugfix pin: a SIGTERM-
// style drain must end open SSE streams with a terminal "drain" event
// and release the sessions' admission slots BEFORE the pool drain
// fallback fires — and the whole teardown leaks no goroutines.
func TestServeDrainClosesOpenStream(t *testing.T) {
	before := runtime.NumGoroutine()

	pool := exec.NewPool(exec.Config{Workers: 2})
	srv := NewServer(pool, ServerConfig{MaxInflight: 2})
	ts := httptest.NewServer(srv.Handler())

	id := createSession(t, ts, sessionRequest{Source: sessionsSrc})

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type result struct{ msgs []sseMessage }
	stream := make(chan result, 1)
	go func() { stream <- result{parseSSE(t, resp.Body)} }()
	command(t, ts, id, commandRequest{Cmd: "step", Steps: 25})

	// The drain sequence main runs on SIGTERM: sessions first, then the
	// listener, then the pool.
	start := time.Now()
	srv.DrainSessions()
	select {
	case got := <-stream:
		last := got.msgs[len(got.msgs)-1]
		if last.event != "end" || !strings.Contains(last.data, session.CloseReasonDrain) {
			t.Fatalf("terminal message = %+v, want end with reason %q", last, session.CloseReasonDrain)
		}
		// The 25 stepped instructions were delivered before the terminal
		// event — close drains buffers, it does not drop them.
		traces := 0
		for _, m := range got.msgs {
			if m.event == "trace" {
				traces++
			}
		}
		if traces < 25 {
			t.Errorf("stream delivered %d trace events before end, want >= 25", traces)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("open SSE stream did not end on drain")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("session drain took %v; it must beat the drain-timeout fallback", took)
	}
	if st := srv.LimiterStats(); st.Inflight != 0 {
		t.Errorf("drained sessions still hold %d admission slots", st.Inflight)
	}
	if st := srv.SessionStats(); st.Active != 0 || st.Closed != 1 {
		t.Errorf("session stats after drain: %+v", st)
	}

	ts.Close()
	if !drainPool(pool, 5*time.Second, t.Logf) {
		t.Error("pool drain was not clean after sessions closed")
	}

	// Nothing outlives the teardown: not the reaper, not the stream
	// handler, not the pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after drain = %d, before = %d: drain leaked", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionIdleReapedOverHTTP: an untouched session expires on the
// server's idle timeout; its stream ends with the idle-timeout reason
// and its admission slot comes back.
func TestSessionIdleReapedOverHTTP(t *testing.T) {
	ts, srv, _ := newTestServer(t, ServerConfig{MaxInflight: 1, SessionIdle: 80 * time.Millisecond})
	id := createSession(t, ts, sessionRequest{Source: sessionsSrc})

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msgs := parseSSE(t, resp.Body) // returns when the reaper closes the session
	last := msgs[len(msgs)-1]
	if last.event != "end" || !strings.Contains(last.data, session.CloseReasonIdle) {
		t.Fatalf("terminal message = %+v, want end with reason %q", last, session.CloseReasonIdle)
	}
	if st := srv.SessionStats(); st.Expired != 1 {
		t.Errorf("expired sessions = %d, want 1", st.Expired)
	}
	if st := srv.LimiterStats(); st.Inflight != 0 {
		t.Errorf("expired session still holds %d admission slots", st.Inflight)
	}
}
