// Command risc1-loadgen drives a risc1-serve deployment with
// production-shaped traffic: open-loop Poisson arrivals, Zipf program
// popularity over a progen-derived corpus, and per-request outcome and
// cache accounting. It prints a human summary to stderr and a
// risc1.loadgen-report/v1 JSON document to stdout (or -report).
//
// Fixed-rate run against one replica:
//
//	risc1-loadgen -url http://localhost:8080 -rate 200 -requests 2000
//
// Saturation sweep across three replicas, locating the 429 knee:
//
//	risc1-loadgen -urls http://h1:8080,http://h2:8080,http://h3:8080 \
//	    -sweep -sweep-start 50 -sweep-factor 2 -sweep-steps 7
//
// Cluster health check (no load): fetch every replica's /v1/cluster
// view and verify the fleet is reachable, agrees on membership, and is
// capability-homogeneous. Exit 0 iff all three hold:
//
//	risc1-loadgen -urls http://h1:8080,http://h2:8080,http://h3:8080 -cluster
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"risc1/internal/loadgen"
	"risc1/internal/obs"
)

func main() {
	var (
		url  = flag.String("url", "http://localhost:8080", "base URL of one risc1-serve replica")
		urls = flag.String("urls", "", "comma-separated replica URLs, round-robined client-side (overrides -url)")

		rate     = flag.Float64("rate", 50, "mean arrival rate, requests/sec (fixed mode)")
		requests = flag.Int("requests", 500, "arrivals per run (per step, in sweep mode)")
		seed     = flag.Int64("seed", 1, "schedule seed (arrival gaps + popularity draws)")

		corpus     = flag.Int("corpus", 32, "number of generated programs")
		corpusSeed = flag.Int64("corpus-seed", 1, "corpus generation seed")
		zipfS      = flag.Float64("zipf-s", 1.1, "Zipf popularity exponent (> 1)")
		zipfV      = flag.Float64("zipf-v", 1, "Zipf v parameter (>= 1)")

		machine   = flag.String("machine", "", "machine name per request (server default when empty)")
		opt       = flag.Int("opt", 1, "optimization level per request")
		fuel      = flag.Uint64("fuel", 0, "fuel per request (server default when 0)")
		timeoutMS = flag.Int64("timeout-ms", 0, "timeout per request in ms (server default when 0)")

		sweep       = flag.Bool("sweep", false, "run a saturation sweep instead of one fixed rate")
		sweepStart  = flag.Float64("sweep-start", 25, "sweep: first step's rate, requests/sec")
		sweepFactor = flag.Float64("sweep-factor", 2, "sweep: rate multiplier per step")
		sweepSteps  = flag.Int("sweep-steps", 6, "sweep: number of rate steps")
		kneeFrac    = flag.Float64("knee-frac", 0.01, "sweep: rejected fraction that counts as the knee")

		clusterCheck = flag.Bool("cluster", false, "check the replicas' /v1/cluster views (membership agreement, fingerprint compatibility) instead of generating load")

		report = flag.String("report", "", "write the JSON report here instead of stdout")
	)
	flag.Parse()

	if *clusterCheck {
		var checkURLs []string
		if *urls != "" {
			for _, u := range strings.Split(*urls, ",") {
				if u = strings.TrimSpace(u); u != "" {
					checkURLs = append(checkURLs, u)
				}
			}
		} else {
			checkURLs = []string{*url}
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		ck := loadgen.CheckCluster(ctx, &http.Client{}, checkURLs)
		fmt.Fprint(os.Stderr, ck.Summary())
		if !ck.OK() {
			os.Exit(1)
		}
		return
	}

	var tgt loadgen.Target
	client := &http.Client{}
	if *urls != "" {
		var targets []loadgen.Target
		for _, u := range strings.Split(*urls, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			targets = append(targets, &loadgen.HTTPTarget{BaseURL: strings.TrimRight(u, "/"), Client: client})
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "risc1-loadgen: -urls held no URLs")
			os.Exit(2)
		}
		tgt = &loadgen.RoundRobin{Targets: targets}
	} else {
		tgt = &loadgen.HTTPTarget{BaseURL: strings.TrimRight(*url, "/"), Client: client}
	}

	cfg := loadgen.Config{
		Rate:       *rate,
		Requests:   *requests,
		Seed:       *seed,
		CorpusSeed: *corpusSeed,
		CorpusSize: *corpus,
		ZipfS:      *zipfS,
		ZipfV:      *zipfV,
		Machine:    *machine,
		Opt:        *opt,
		Fuel:       *fuel,
		TimeoutMS:  *timeoutMS,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var (
		rep *obs.LoadReport
		err error
	)
	if *sweep {
		rep, err = loadgen.Sweep(ctx, loadgen.SweepConfig{
			Base:            cfg,
			StartRate:       *sweepStart,
			Factor:          *sweepFactor,
			Steps:           *sweepSteps,
			RequestsPerStep: *requests,
			KneeFrac:        *kneeFrac,
		}, tgt, loadgen.WallClock{})
	} else {
		rep, err = loadgen.Run(ctx, cfg, tgt, loadgen.WallClock{})
	}
	elapsed := time.Since(start)
	if err != nil && err != context.Canceled {
		fmt.Fprintf(os.Stderr, "risc1-loadgen: %v\n", err)
		os.Exit(1)
	}

	summarize(os.Stderr, rep, elapsed)

	b, jerr := rep.JSON()
	if jerr != nil {
		fmt.Fprintf(os.Stderr, "risc1-loadgen: marshal report: %v\n", jerr)
		os.Exit(1)
	}
	if *report != "" {
		if werr := os.WriteFile(*report, b, 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "risc1-loadgen: write report: %v\n", werr)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(b)
	}
	if err == context.Canceled {
		os.Exit(130)
	}
}

// summarize prints the human-readable digest to w.
func summarize(w *os.File, rep *obs.LoadReport, elapsed time.Duration) {
	switch rep.Mode {
	case "fixed":
		fmt.Fprintf(w, "loadgen: %d/%d requests completed in %v (offered %.4g req/s)\n",
			rep.Totals.Completed, rep.Totals.Offered, elapsed.Round(time.Millisecond), rep.Config.RatePerSec)
		for _, o := range rep.Totals.Outcomes {
			fmt.Fprintf(w, "  outcome %-16s %d\n", o.Name, o.Count)
		}
		for _, c := range rep.Totals.Cache {
			fmt.Fprintf(w, "  cache   %-16s %d\n", c.Name, c.Count)
		}
		fmt.Fprintf(w, "  latency p50 %s  p99 %s  p999 %s\n",
			secs(rep.Latency.P50), secs(rep.Latency.P99), secs(rep.Latency.P999))
	case "sweep":
		fmt.Fprintf(w, "loadgen sweep: %d steps in %v\n", len(rep.Steps), elapsed.Round(time.Millisecond))
		for _, s := range rep.Steps {
			fmt.Fprintf(w, "  %8.4g req/s: ok %d  rejected %d (%.2f%%)  errors %d  p50 %s  p99 %s  p999 %s\n",
				s.RatePerSec, s.OK, s.Rejected, 100*s.RejectedFrac, s.Errors,
				secs(s.P50), secs(s.P99), secs(s.P999))
		}
		if rep.Knee != nil {
			fmt.Fprintf(w, "  knee: %.4g req/s (%.2f%% rejected)\n", rep.Knee.RatePerSec, 100*rep.Knee.RejectedFrac)
		} else {
			fmt.Fprintln(w, "  knee: not reached")
		}
	}
}

// secs renders a quantile (seconds) as a duration string.
func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
