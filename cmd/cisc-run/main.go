// Command cisc-run assembles and executes a program for the CISC
// baseline (the VAX-780-class comparison machine), reporting registers
// and the microcoded cycle accounting.
//
// Usage:
//
//	cisc-run [-limit N] [-print sym,sym] file.s
//	cisc-run [-O0|-O1] [-emit-ir] file.c
//
// A .c argument is compiled from MiniC first; -O0/-O1 select the
// compiler's optimization level and -emit-ir prints the IR instead of
// running.
//
// Observability: the -report, -profile, -trace-out, -trace-format and
// -trace flags mirror risc1-run; see that command's documentation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"risc1/internal/cc"
	"risc1/internal/machine"
	"risc1/internal/obs"
	"risc1/internal/vax"
)

func main() {
	limit := flag.Uint64("limit", 0, "instruction limit (0 = default)")
	list := flag.Bool("list", false, "print a disassembly listing before running")
	printSyms := flag.String("print", "", "comma-separated globals to print as words after the run")
	traceN := flag.Uint64("trace", 0, "print only the first N trace events (stdout unless -trace-out)")
	traceOut := flag.String("trace-out", "", "stream the execution trace to FILE")
	traceFormat := flag.String("trace-format", "", "trace format: text, jsonl or chrome (default from the -trace-out extension)")
	profileOut := flag.String("profile", "", `write the guest profile (per-function and hot-spot listing) to FILE ("-" = stdout)`)
	reportOut := flag.String("report", "", `write the machine-readable JSON run report to FILE ("-" = stdout)`)
	top := flag.Int("top", 10, "rows in the profile and report hot-spot listings")
	opt := flag.Int("opt", 1, "MiniC optimization level, also spelled -O0/-O1 (.c input only)")
	emitIR := flag.Bool("emit-ir", false, "print the compiler IR and exit (.c input only)")
	flag.CommandLine.Parse(cc.NormalizeOptFlags(os.Args[1:]))
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cisc-run [flags] file.s|file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fromC := strings.HasSuffix(flag.Arg(0), ".c")
	if *emitIR {
		if !fromC {
			fatal(fmt.Errorf("-emit-ir needs MiniC (.c) input"))
		}
		irProg, _, err := cc.Frontend(string(src), *opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(irProg.Dump())
		return
	}
	var prog *vax.Program
	var passes []obs.PassStat
	if fromC {
		// The MiniC path compiles through the machine registry, so this
		// tool builds exactly what risc1-serve and the bench harness run.
		b, _ := machine.Lookup("cisc")
		mp, _, ps, err := b.Compile(string(src),
			b.Normalize(machine.Options{Opt: *opt}))
		if err != nil {
			fatal(err)
		}
		prog = machine.Unwrap(mp).(*vax.Program)
		passes = ps
	} else {
		prog, err = vax.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	}
	if *list {
		fmt.Print(vax.Listing(prog))
		fmt.Println()
	}
	c := vax.New(vax.Config{MaxInstructions: *limit})

	symtab := obs.NewSymTab(prog.Symbols)
	needTrace := *traceOut != "" || *traceN > 0
	needProf := *profileOut != "" || *reportOut != ""
	var o *obs.Observer
	var traceFile *os.File
	if needTrace || needProf {
		o = &obs.Observer{}
		if needProf {
			o.Prof = obs.NewProfiler()
			o.Prof.Start(prog.Entry)
		}
		if needTrace {
			w := os.Stdout
			format := "text"
			if *traceOut != "" {
				format, err = obs.TraceFormat(*traceOut, *traceFormat)
				if err != nil {
					fatal(err)
				}
				traceFile, err = os.Create(*traceOut)
				if err != nil {
					fatal(err)
				}
				w = traceFile
			} else if *traceFormat != "" {
				if format, err = obs.TraceFormat("", *traceFormat); err != nil {
					fatal(err)
				}
			}
			symbolize := func(pc uint32) (string, bool) {
				name, off, ok := symtab.Lookup(pc)
				return name, ok && off == 0
			}
			sink, err := obs.NewSink(format, w, vax.CycleNS, symbolize)
			if err != nil {
				fatal(err)
			}
			o.Tracer = obs.NewTracer(0, sink)
			o.Tracer.Limit = *traceN
		}
		c.Obs = o
	}

	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		fatal(err)
	}
	runErr := c.Run()
	if o != nil {
		if err := o.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "cisc-run: trace:", err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if runErr != nil {
		if o != nil && o.Tracer != nil {
			fmt.Fprintln(os.Stderr, "last events before the fault:")
			ts := obs.NewTextSink(os.Stderr)
			for _, ev := range o.Tracer.Tail(16) {
				ts.Emit(ev)
			}
			ts.Close()
		}
		fatal(runErr)
	}

	fmt.Printf("halted after %d instructions, %d cycles (%.1f µs at 200 ns)\n",
		c.Trace.Instructions, c.Trace.Cycles, c.Micros())
	fmt.Printf("calls: %d (%d cycles, %d frame words); branches: %d taken, %d untaken\n",
		c.Stats.Calls, c.Stats.CallCycles, c.Stats.CallMemWords,
		c.Stats.BranchesTaken, c.Stats.BranchesUntaken)
	fmt.Printf("instruction stream: %d bytes fetched (%.2f bytes/instruction)\n",
		c.Stats.InstBytes, float64(c.Stats.InstBytes)/float64(c.Trace.Instructions))
	fmt.Printf("memory: %d reads, %d writes (%d bytes read, %d bytes written)\n",
		c.Mem.Stats.Reads, c.Mem.Stats.Writes, c.Mem.Stats.BytesRead, c.Mem.Stats.BytesWritten)
	fmt.Println("\nregisters:")
	for r := 0; r < vax.NumRegs; r++ {
		name := fmt.Sprintf("r%d", r)
		switch r {
		case vax.RegAP:
			name = "ap"
		case vax.RegFP:
			name = "fp"
		case vax.RegSP:
			name = "sp"
		}
		fmt.Printf("  %-3s %08x", name, c.R[r])
		if r%4 == 3 {
			fmt.Println()
		}
	}
	if *printSyms != "" {
		fmt.Println("\nglobals:")
		for _, name := range strings.Split(*printSyms, ",") {
			name = strings.TrimSpace(name)
			addr, ok := prog.Symbol(name)
			if !ok {
				fmt.Printf("  %s: undefined\n", name)
				continue
			}
			v, err := c.Mem.LoadWord(addr)
			if err != nil {
				fmt.Printf("  %s: %v\n", name, err)
				continue
			}
			fmt.Printf("  %s = %d (%#x)\n", name, int32(v), v)
		}
	}
	fmt.Println("\ninstruction mix:")
	for _, s := range c.Trace.Mix() {
		fmt.Printf("  %-8s %6.1f%%  (%d)\n", s.Name, 100*s.Frac, s.Count)
	}

	if *profileOut != "" {
		text := obs.FormatProfile(o.Prof, symtab, c.Disassembler(), *top)
		if err := writeOut(*profileOut, []byte(text)); err != nil {
			fatal(err)
		}
	}
	if *reportOut != "" {
		name := filepath.Base(flag.Arg(0))
		name = strings.TrimSuffix(strings.TrimSuffix(name, ".s"), ".c")
		r := c.BuildReport(name)
		if fromC {
			r.Config.OptLevel = *opt
			r.Config.Passes = passes
		}
		r.Profile = obs.ProfileSection(o.Prof, symtab, c.Disassembler(), *top)
		b, err := r.JSON()
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*reportOut, b); err != nil {
			fatal(err)
		}
	}
}

// writeOut writes data to path, with "-" meaning stdout.
func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cisc-run:", err)
	os.Exit(1)
}
