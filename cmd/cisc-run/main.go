// Command cisc-run assembles and executes a program for the CISC
// baseline (the VAX-780-class comparison machine), reporting registers
// and the microcoded cycle accounting.
//
// Usage:
//
//	cisc-run [-limit N] [-print sym,sym] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"risc1/internal/vax"
)

func main() {
	limit := flag.Uint64("limit", 0, "instruction limit (0 = default)")
	list := flag.Bool("list", false, "print a disassembly listing before running")
	printSyms := flag.String("print", "", "comma-separated globals to print as words after the run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cisc-run [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := vax.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *list {
		fmt.Print(vax.Listing(prog))
		fmt.Println()
	}
	c := vax.New(vax.Config{MaxInstructions: *limit})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		fatal(err)
	}
	if err := c.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("halted after %d instructions, %d cycles (%.1f µs at 200 ns)\n",
		c.Trace.Instructions, c.Trace.Cycles, c.Micros())
	fmt.Printf("calls: %d (%d cycles, %d frame words); branches: %d taken, %d untaken\n",
		c.Stats.Calls, c.Stats.CallCycles, c.Stats.CallMemWords,
		c.Stats.BranchesTaken, c.Stats.BranchesUntaken)
	fmt.Printf("instruction stream: %d bytes fetched (%.2f bytes/instruction)\n",
		c.Stats.InstBytes, float64(c.Stats.InstBytes)/float64(c.Trace.Instructions))
	fmt.Println("\nregisters:")
	for r := 0; r < vax.NumRegs; r++ {
		name := fmt.Sprintf("r%d", r)
		switch r {
		case vax.RegAP:
			name = "ap"
		case vax.RegFP:
			name = "fp"
		case vax.RegSP:
			name = "sp"
		}
		fmt.Printf("  %-3s %08x", name, c.R[r])
		if r%4 == 3 {
			fmt.Println()
		}
	}
	if *printSyms != "" {
		fmt.Println("\nglobals:")
		for _, name := range strings.Split(*printSyms, ",") {
			name = strings.TrimSpace(name)
			addr, ok := prog.Symbol(name)
			if !ok {
				fmt.Printf("  %s: undefined\n", name)
				continue
			}
			v, err := c.Mem.LoadWord(addr)
			if err != nil {
				fmt.Printf("  %s: %v\n", name, err)
				continue
			}
			fmt.Printf("  %s = %d (%#x)\n", name, int32(v), v)
		}
	}
	fmt.Println("\ninstruction mix:")
	for _, s := range c.Trace.Mix() {
		fmt.Printf("  %-8s %6.1f%%  (%d)\n", s.Name, 100*s.Frac, s.Count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cisc-run:", err)
	os.Exit(1)
}
