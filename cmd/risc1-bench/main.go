// Command risc1-bench regenerates the evaluation tables and figures of
// the RISC I paper: instruction set, machine characteristics, benchmark
// suite, static code size, execution time, instruction mix, window
// overflow rates, delay-slot fill rates, procedure-call cost, call
// memory traffic, and a design-feature ablation.
//
// Usage:
//
//	risc1-bench                  # everything, paper-scale inputs
//	risc1-bench -scale small     # fast inputs
//	risc1-bench -table size,time # only selected tables
//	risc1-bench -fig windows     # only selected figures
//	risc1-bench -nocache         # run the simulators without the icache
//	risc1-bench -report out.json # machine-readable report of every run
//	risc1-bench -O0              # compile the workloads unoptimized
//	risc1-bench -parallel 8      # run the sweep on 8 workers
//	risc1-bench -cache           # cold-vs-cached latency of the result cache
//	risc1-bench -warmstart       # full-prelude vs image-restore request latency
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"risc1/internal/bench"
	"risc1/internal/cc"
	"risc1/internal/obs"
)

func main() {
	scale := flag.String("scale", "paper", "workload scale: paper or small")
	tables := flag.String("table", "", "comma-separated tables: instr,machines,suite,size,time,mix,ops,callcost,traffic (default all)")
	figs := flag.String("fig", "", "comma-separated figures: windows,delayslots,depth,ablation (default all)")
	noICache := flag.Bool("nocache", false, "disable the predecoded instruction cache (host speed only; simulated results are identical)")
	reportOut := flag.String("report", "", `write a machine-readable JSON bench report (one run report per workload and machine) to FILE ("-" = stdout)`)
	opt := flag.Int("opt", 1, "MiniC optimization level, also spelled -O0/-O1")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "simulator workers for the sweeps; output is byte-identical at any setting")
	cacheSweep := flag.Bool("cache", false, "measure the content-addressed result cache: cold vs cached request latency (host time)")
	cacheRepeats := flag.Int("cache-repeats", 5, "hot requests per workload for -cache")
	warmStart := flag.Bool("warmstart", false, "measure warm-start serving: full prelude vs image-restore request latency (host time)")
	warmStartRepeats := flag.Int("warmstart-repeats", 20, "interleaved cold/warm request pairs for -warmstart")
	flag.CommandLine.Parse(cc.NormalizeOptFlags(os.Args[1:]))
	bench.NoICache = *noICache
	bench.OptLevel = *opt
	bench.Parallel = *parallel

	params := bench.Default()
	if *scale == "small" {
		params = bench.Small()
	}

	want := func(list, name string) bool {
		if *tables == "" && *figs == "" {
			// -cache or -warmstart alone measure just that; combine them
			// with -table/-fig to also regenerate paper artifacts.
			return !*cacheSweep && !*warmStart
		}
		for _, n := range strings.Split(list, ",") {
			if strings.TrimSpace(n) == name {
				return true
			}
		}
		return false
	}

	suite := bench.Suite(params)
	out := os.Stdout

	if want(*tables, "instr") {
		fmt.Fprintln(out, bench.TableInstructionSet())
	}
	if want(*tables, "machines") {
		fmt.Fprintln(out, bench.TableMachines())
	}
	if want(*tables, "suite") {
		fmt.Fprintln(out, bench.TableSuite(suite))
	}

	needCompare := want(*tables, "size") || want(*tables, "time") || want(*tables, "mix") ||
		want(*tables, "ops") || want(*tables, "traffic") ||
		want(*figs, "delayslots") || want(*figs, "depth") || *reportOut != ""
	var cs []bench.Comparison
	if needCompare {
		var err error
		fmt.Fprintln(os.Stderr, "running the suite on both machines...")
		cs, err = bench.CompareAll(suite)
		if err != nil {
			fatal(err)
		}
	}
	if want(*tables, "size") {
		fmt.Fprintln(out, bench.TableCodeSize(cs))
	}
	if want(*tables, "time") {
		fmt.Fprintln(out, bench.TableExecTime(cs))
	}
	if want(*tables, "mix") {
		fmt.Fprintln(out, bench.TableMix(cs))
	}
	if want(*tables, "ops") {
		fmt.Fprintln(out, bench.TableOpFrequency(cs))
	}
	if want(*figs, "windows") {
		fmt.Fprintln(os.Stderr, "sweeping window counts...")
		sweep, err := bench.SweepWindows(suite, []int{2, 3, 4, 6, 8, 12, 16})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, bench.FigWindowSweep(sweep))
		fmt.Fprintln(out, bench.FigWindowTime(sweep))
	}
	if want(*figs, "delayslots") {
		fmt.Fprintln(out, bench.FigDelaySlots(cs))
	}
	if want(*figs, "depth") {
		fmt.Fprintln(out, bench.FigDepthHistogram(cs))
	}
	if want(*tables, "callcost") {
		costs, err := bench.MeasureCallCost()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, bench.TableCallCost(costs))
	}
	if want(*tables, "traffic") {
		fmt.Fprintln(out, bench.TableTraffic(cs))
	}
	if want(*figs, "ablation") {
		fmt.Fprintln(os.Stderr, "running the ablation...")
		rows, err := bench.RunAblation(suite)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, bench.FigAblation(rows))
	}
	if *cacheSweep {
		fmt.Fprintln(os.Stderr, "measuring the result cache...")
		sweep, err := bench.SweepCache(suite, *cacheRepeats)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, bench.TableCacheSweep(sweep))
	}
	if *warmStart {
		fmt.Fprintln(os.Stderr, "measuring warm-start serving...")
		sweep, err := bench.SweepWarmStart(*warmStartRepeats)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, bench.TableWarmStart(sweep))
	}
	if *reportOut != "" {
		r := obs.NewBenchReport(*scale, bench.Reports(cs))
		b, err := r.JSON()
		if err != nil {
			fatal(err)
		}
		if *reportOut == "-" {
			if _, err := os.Stdout.Write(b); err != nil {
				fatal(err)
			}
		} else if err := os.WriteFile(*reportOut, b, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "risc1-bench:", err)
	os.Exit(1)
}
