// Package rcache is a content-addressed result cache for deterministic
// computations: compiled programs (level 1) and whole run results
// (level 2) keyed by a canonical hash of everything that determines the
// output. Because the tool chain is deterministic end to end — PR 4
// pinned byte-identical run reports across worker counts — a cache hit
// is not an approximation of a recompute, it IS the recompute, and the
// differential tests in internal/exec and cmd/risc1-serve enforce the
// byte-identity.
//
// The cache is LRU-bounded by a byte budget and collapses concurrent
// identical lookups with singleflight: while one caller computes a key,
// later callers for the same key wait for that computation instead of
// repeating it, so a thundering herd of the same program compiles and
// simulates exactly once. Every lookup is classified as exactly one of
// Hit, Miss, or Coalesced; hits + misses + coalesced always equals the
// number of lookups, which the serving tests reconcile against their
// request counts.
package rcache

import (
	"container/list"
	"context"
	"sync"

	"risc1/internal/obs"
)

// Outcome classifies one lookup. The serve layer surfaces it verbatim
// in the X-Risc1-Cache response header.
type Outcome string

const (
	// Hit: the value was already stored; no computation ran.
	Hit Outcome = "hit"
	// Miss: this lookup ran the computation (whether or not the result
	// was storable afterwards).
	Miss Outcome = "miss"
	// Coalesced: another lookup was already computing this key; this one
	// waited for it and shares its result.
	Coalesced Outcome = "coalesced"
)

// ComputeFn produces the value for a key on a cache miss. It returns
// the value, its approximate size in bytes, and an error:
//
//   - err != nil: nothing is stored; the error (and value, which may
//     still be meaningful) is handed to every coalesced waiter.
//   - err == nil, size >= 0: the value is stored under the byte budget.
//   - err == nil, size < 0: the value is valid and returned to every
//     waiter, but not stored — for results that are correct once but
//     not deterministic (a wall-clock deadline, a panic).
type ComputeFn func() (v any, size int64, err error)

// Cache is a byte-budgeted LRU with singleflight lookup collapsing.
// All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[Key]*list.Element
	flight map[Key]*call

	hits, misses, coalesced, evictions, fills uint64
}

type entry struct {
	key  Key
	val  any
	size int64
}

// call is one in-flight computation; done closes when val/err are final.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a cache holding at most budget bytes of values (as
// reported by each ComputeFn). A budget <= 0 stores nothing but still
// collapses concurrent identical lookups.
func New(budget int64) *Cache {
	return &Cache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[Key]*list.Element),
		flight: make(map[Key]*call),
	}
}

// Do returns the value for key, computing it with fn on a miss. While
// one caller's fn runs, concurrent Do calls for the same key wait for
// it (Coalesced) rather than recomputing; callers for other keys
// proceed independently. ctx bounds only the waiting of a coalesced
// caller — the computation itself runs on the caller that missed and is
// bounded by whatever fn arranges.
func (c *Cache) Do(ctx context.Context, key Key, fn ComputeFn) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, Hit, nil
	}
	if fl, ok := c.flight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		// The waiter's own context takes priority over the leader's
		// result. A plain two-case select picks randomly when both
		// channels are ready, which would sometimes hand a cancelled
		// caller the leader's value (or worse, the leader's unrelated
		// error) — so check cancellation first, and again on wake-up.
		if err := ctx.Err(); err != nil {
			return nil, Coalesced, err
		}
		select {
		case <-fl.done:
			if err := ctx.Err(); err != nil {
				return nil, Coalesced, err
			}
			return fl.val, Coalesced, fl.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	fl := &call{done: make(chan struct{})}
	c.flight[key] = fl
	c.misses++
	c.mu.Unlock()

	v, size, err := fn()
	fl.val, fl.err = v, err

	c.mu.Lock()
	delete(c.flight, key)
	if err == nil && size >= 0 {
		c.store(key, v, size)
	}
	c.mu.Unlock()
	close(fl.done)
	return v, Miss, err
}

// Put is the peer-fill hook: it stores a value computed somewhere else —
// on another replica, typically — without running a ComputeFn and
// without counting a hit or a miss, so the Do ledger (hits + misses +
// coalesced == lookups) stays exact. It reports whether the value was
// actually stored (a negative size, a zero budget, or a value larger
// than the whole budget is not), and counts stored values in the
// Stats().Fills counter so /metrics can reconcile replica-local fills
// against peer fetches.
func (c *Cache) Put(key Key, v any, size int64) bool {
	if size < 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 || size > c.budget {
		return false
	}
	c.fills++
	c.store(key, v, size)
	return true
}

// Purge drops every stored entry, keeping the counters and any
// in-flight computations (their waiters still get the leader's value;
// the result is simply not stored if it lands after the purge races
// another Put — the next purge collects it). The peering layer calls
// this when the cluster's membership generation changes: a ring change
// re-homes keys, so replica-local copies of peer responses may no
// longer belong on this replica. Purged entries count as evictions.
// Returns how many entries were dropped.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.evictions += uint64(n)
	c.ll.Init()
	c.items = make(map[Key]*list.Element)
	c.used = 0
	return n
}

// Get is a pure lookup: it returns a stored value without computing or
// coalescing, and counts neither a hit nor a miss. Tests and metrics
// probes use it; the serving path goes through Do.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// store inserts under the budget, evicting LRU entries to fit. Called
// with c.mu held. Values larger than the whole budget are not stored.
func (c *Cache) store(key Key, v any, size int64) {
	if c.budget <= 0 || size > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		// A racing Put for the same key: replace in place.
		old := el.Value.(*entry)
		c.used += size - old.size
		old.val, old.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: v, size: size})
		c.used += size
	}
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.size
		c.evictions++
	}
}

// Stats snapshots the cache's gauges and counters.
func (c *Cache) Stats() obs.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.used,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Fills:     c.fills,
	}
}
