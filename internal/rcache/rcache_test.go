package rcache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustDo(t *testing.T, c *Cache, key Key, fn ComputeFn) (any, Outcome) {
	t.Helper()
	v, out, err := c.Do(context.Background(), key, fn)
	if err != nil {
		t.Fatalf("Do(%s): %v", key, err)
	}
	return v, out
}

// TestHitMiss covers the basic contract: first lookup computes, second
// returns the stored value without calling fn.
func TestHitMiss(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	fn := func() (any, int64, error) { calls++; return "v", 1, nil }

	v, out := mustDo(t, c, "k", fn)
	if v != "v" || out != Miss || calls != 1 {
		t.Fatalf("first lookup: v=%v out=%v calls=%d", v, out, calls)
	}
	v, out = mustDo(t, c, "k", func() (any, int64, error) {
		t.Fatal("fn called on a hit")
		return nil, 0, nil
	})
	if v != "v" || out != Hit {
		t.Fatalf("second lookup: v=%v out=%v", v, out)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Coalesced != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

// TestByteBudgetLRU fills past the budget and checks the least recently
// used entries fall out, with evictions counted and bytes reconciled.
func TestByteBudgetLRU(t *testing.T) {
	c := New(30)
	for i := 0; i < 4; i++ {
		key := Key(fmt.Sprintf("k%d", i))
		mustDo(t, c, key, func() (any, int64, error) { return i, 10, nil })
	}
	// 4 x 10 bytes into a 30-byte budget: k0 (the oldest) must be gone.
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 survived past the budget")
	}
	for _, k := range []Key{"k1", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Bytes != 30 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 30 bytes, 3 entries", s)
	}

	// Touching k1 makes k2 the LRU victim of the next insert.
	c.Get("k1")
	mustDo(t, c, "k4", func() (any, int64, error) { return 4, 10, nil })
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 survived; LRU order ignores Get recency")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("recently used k1 evicted")
	}
}

// TestOversizedAndNegativeSize: values larger than the whole budget and
// values reported with size < 0 are returned but never stored.
func TestOversizedAndNegativeSize(t *testing.T) {
	c := New(10)
	mustDo(t, c, "big", func() (any, int64, error) { return "x", 11, nil })
	if _, ok := c.Get("big"); ok {
		t.Error("oversized value stored")
	}
	v, _ := mustDo(t, c, "skip", func() (any, int64, error) { return "y", -1, nil })
	if v != "y" {
		t.Errorf("negative-size value = %v, want y", v)
	}
	if _, ok := c.Get("skip"); ok {
		t.Error("size<0 value stored")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("stats = %+v, want empty", s)
	}
}

// TestZeroBudget: a cache with no budget stores nothing but still
// returns computed values.
func TestZeroBudget(t *testing.T) {
	c := New(0)
	mustDo(t, c, "k", func() (any, int64, error) { return 1, 0, nil })
	if _, ok := c.Get("k"); ok {
		t.Error("zero-budget cache stored an entry")
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 miss", s)
	}
}

// TestErrorsNotCached: a failing compute is re-run on the next lookup.
func TestErrorsNotCached(t *testing.T) {
	c := New(1 << 10)
	boom := errors.New("boom")
	calls := 0
	fn := func() (any, int64, error) { calls++; return nil, 0, boom }
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (errors must not be cached)", calls)
	}
}

// TestSingleflight: N concurrent lookups of one cold key run fn once;
// everyone gets the same value; the classification counters add up to
// exactly N.
func TestSingleflight(t *testing.T) {
	const n = 32
	c := New(1 << 20)
	var computes atomic.Int64
	gate := make(chan struct{})
	fn := func() (any, int64, error) {
		computes.Add(1)
		<-gate // hold every other caller in the coalesced path
		return "shared", 6, nil
	}

	var wg sync.WaitGroup
	results := make([]any, n)
	outcomes := make([]Outcome, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, out, err := c.Do(context.Background(), "k", fn)
			if err != nil {
				t.Error(err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the stragglers a beat to reach Do before releasing the gate;
	// exact interleaving doesn't matter — the counters must reconcile
	// whatever it was.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	var hits, misses, coalesced int
	for i := 0; i < n; i++ {
		if results[i] != "shared" {
			t.Fatalf("result[%d] = %v, want shared", i, results[i])
		}
		switch outcomes[i] {
		case Hit:
			hits++
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1", misses)
	}
	if hits+misses+coalesced != n {
		t.Errorf("hits(%d)+misses(%d)+coalesced(%d) != %d requests", hits, misses, coalesced, n)
	}
	s := c.Stats()
	if s.Hits+s.Misses+s.Coalesced != n {
		t.Errorf("stats %+v do not reconcile to %d lookups", s, n)
	}
}

// TestCoalescedContextCancel: a waiter whose context dies while the
// leader computes gets the context error, not a hang.
func TestCoalescedContextCancel(t *testing.T) {
	c := New(1 << 10)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	go c.Do(context.Background(), "k", func() (any, int64, error) {
		close(leaderIn)
		<-gate
		return 1, 1, nil
	})
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, "k", func() (any, int64, error) {
		t.Error("waiter must not compute")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) || out != Coalesced {
		t.Errorf("got out=%v err=%v, want coalesced context.Canceled", out, err)
	}
	close(gate)
}

// TestCancelledFollowerBehindSlowLeader pins the priority between a
// coalesced waiter's own cancellation and the leader's completion: a
// follower whose context is cancelled must get context.Canceled, never
// the leader's value, even when the leader finishes at the same moment
// (a plain two-case select would pick randomly when both channels are
// ready). Each iteration parks a cancelled follower behind an in-flight
// leader, then releases the leader so both wake-up paths race.
func TestCancelledFollowerBehindSlowLeader(t *testing.T) {
	for i := 0; i < 100; i++ {
		c := New(1 << 10)
		gate := make(chan struct{})
		leaderIn := make(chan struct{})
		go c.Do(context.Background(), "k", func() (any, int64, error) {
			close(leaderIn)
			<-gate
			return "leader-value", 1, nil
		})
		<-leaderIn

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var (
			v    any
			out  Outcome
			err  error
			done = make(chan struct{})
		)
		go func() {
			defer close(done)
			v, out, err = c.Do(ctx, "k", func() (any, int64, error) {
				t.Error("cancelled follower must not compute")
				return nil, 0, nil
			})
		}()
		// Wait until the follower is registered as coalesced, then let
		// the leader finish — now fl.done and ctx.Done() are both ready.
		for c.Stats().Coalesced == 0 {
			runtime.Gosched()
		}
		close(gate)
		<-done
		if v != nil || out != Coalesced || !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d: cancelled follower got (%v, %v, %v), want (nil, coalesced, context.Canceled)", i, v, out, err)
		}
	}
}

// TestKeyBuilder: field values, field order, and domains all separate
// keys; equal field sequences agree.
func TestKeyBuilder(t *testing.T) {
	k1 := NewKey("d").Str("src", "int main(){}").Int("opt", 1).Sum()
	k2 := NewKey("d").Str("src", "int main(){}").Int("opt", 1).Sum()
	if k1 != k2 {
		t.Error("identical field sequences produced different keys")
	}
	distinct := map[Key]string{k1: "base"}
	for name, k := range map[string]Key{
		"different value":  NewKey("d").Str("src", "int main(){}").Int("opt", 0).Sum(),
		"different domain": NewKey("e").Str("src", "int main(){}").Int("opt", 1).Sum(),
		"different order":  NewKey("d").Int("opt", 1).Str("src", "int main(){}").Sum(),
		"value into name":  NewKey("d").Str("src", "int main(){}opt").Int("", 1).Sum(),
		"uint vs int":      NewKey("d").Str("src", "int main(){}").Uint("opt", 1).Sum(),
		"bool vs int":      NewKey("d").Str("src", "int main(){}").Bool("opt", true).Sum(),
	} {
		if prev, dup := distinct[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		distinct[k] = name
	}
}

// TestPut covers the peer-fill hook: a filled value is served as a Hit
// without ever running a ComputeFn, fills stay outside the Do ledger
// (hits+misses+coalesced == Do lookups regardless of Puts), and the
// size rules match store's (negative, oversized, and zero-budget fills
// are dropped).
func TestPut(t *testing.T) {
	c := New(100)
	if !c.Put("k1", "peer-value", 10) {
		t.Fatal("Put of a fitting value reported not stored")
	}
	v, out, err := c.Do(context.Background(), "k1", func() (any, int64, error) {
		t.Error("ComputeFn ran for a peer-filled key")
		return nil, 0, nil
	})
	if err != nil || out != Hit || v.(string) != "peer-value" {
		t.Fatalf("Do after Put = (%v, %v, %v), want peer-value hit", v, out, err)
	}

	if c.Put("k2", "x", -1) {
		t.Error("Put stored a negative-size value")
	}
	if c.Put("k3", "x", 1000) {
		t.Error("Put stored a value larger than the whole budget")
	}
	if New(0).Put("k4", "x", 1) {
		t.Error("Put stored into a zero-budget cache")
	}

	s := c.Stats()
	if s.Fills != 1 {
		t.Errorf("Fills = %d, want 1 (only the stored fill counts)", s.Fills)
	}
	if s.Hits != 1 || s.Misses != 0 || s.Coalesced != 0 {
		t.Errorf("Do ledger disturbed by Put: %+v", s)
	}

	// A Put over an existing key replaces the value in place.
	c.Put("k1", "replaced", 10)
	if v, ok := c.Get("k1"); !ok || v.(string) != "replaced" {
		t.Errorf("Put did not replace: %v %v", v, ok)
	}
}
