package rcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// A Key names one cache entry: the hex SHA-256 of a canonical
// serialization of everything that determines the cached value. Two
// requests collide exactly when every field the builder saw is equal,
// which is what makes the cache content-addressed rather than
// identity-addressed.
type Key = string

// KeyBuilder accumulates (name, value) fields into a canonical hash.
// Fields are length-prefixed and tagged with their type, so no two
// distinct field sequences serialize to the same byte stream (a source
// containing "opt=1" can never alias an actual opt field).
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a builder. The domain string separates key spaces:
// compiled-program keys and run-report keys for the same source must
// never collide.
func NewKey(domain string) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	b.raw('D', domain)
	return b
}

func (b *KeyBuilder) raw(tag byte, s string) {
	var hdr [9]byte
	hdr[0] = tag
	binary.BigEndian.PutUint64(hdr[1:], uint64(len(s)))
	b.h.Write(hdr[:])
	b.h.Write([]byte(s))
}

// Str adds a string field.
func (b *KeyBuilder) Str(name, v string) *KeyBuilder {
	b.raw('N', name)
	b.raw('S', v)
	return b
}

// Int adds a signed integer field.
func (b *KeyBuilder) Int(name string, v int64) *KeyBuilder {
	b.raw('N', name)
	var buf [9]byte
	buf[0] = 'I'
	binary.BigEndian.PutUint64(buf[1:], uint64(v))
	b.h.Write(buf[:])
	return b
}

// Uint adds an unsigned integer field.
func (b *KeyBuilder) Uint(name string, v uint64) *KeyBuilder {
	b.raw('N', name)
	var buf [9]byte
	buf[0] = 'U'
	binary.BigEndian.PutUint64(buf[1:], v)
	b.h.Write(buf[:])
	return b
}

// Bool adds a boolean field.
func (b *KeyBuilder) Bool(name string, v bool) *KeyBuilder {
	var x int64
	if v {
		x = 1
	}
	b.raw('N', name)
	var buf [9]byte
	buf[0] = 'B'
	binary.BigEndian.PutUint64(buf[1:], uint64(x))
	b.h.Write(buf[:])
	return b
}

// Sum finishes the key. The builder must not be reused afterwards.
func (b *KeyBuilder) Sum() Key {
	return hex.EncodeToString(b.h.Sum(nil))
}
