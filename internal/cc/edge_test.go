package cc

import (
	"strings"
	"testing"

	"risc1/internal/vax"
)

// Arithmetic edge cases the optimizer must not paper over. The pinned
// MiniC semantics are:
//
//   - division and modulo by zero never fold and are never deleted:
//     the operation reaches the target machine at every optimization
//     level, where the CISC baseline faults and RISC I's software
//     divide runtime returns a well-defined junk value (the unsigned
//     restoring loop saturates the quotient at 0xffffffff)
//   - INT_MIN / -1 wraps to INT_MIN and INT_MIN % -1 is 0, on both
//     machines at both levels (Go int32 semantics end to end)
//   - literal shift counts are masked to 0..31 at lowering, so both
//     machines agree at every level

// TestDivByZeroFaultsOnVax asserts the fault survives both optimization
// levels — including when the quotient is dead, which dead-code
// elimination must not exploit.
func TestDivByZeroFaultsOnVax(t *testing.T) {
	srcs := map[string]string{
		"live": `
int result;
int main() { result = 10 / 0; return 0; }
`,
		"dead": `
int result;
int main() { int x; x = 10 / 0; result = 7; return 0; }
`,
		"mod": `
int result;
int main() { int x; x = 10 % 0; result = 7; return 0; }
`,
	}
	for name, src := range srcs {
		for _, lvl := range []int{0, 1} {
			prog, text, _, err := CompileVAX(src, Options{Opt: lvl})
			if err != nil {
				t.Fatalf("%s -O%d: compile: %v\n%s", name, lvl, err, text)
			}
			c := vax.New(vax.Config{})
			c.Reset(prog.Entry)
			if err := prog.LoadInto(c.Mem); err != nil {
				t.Fatal(err)
			}
			err = c.Run()
			if err == nil || !strings.Contains(err.Error(), "divide by zero") {
				t.Errorf("%s -O%d: want a divide-by-zero fault, got %v\n%s", name, lvl, err, text)
			}
		}
	}
}

// TestDivByZeroDeterministicOnRisc asserts the RISC software divide's
// zero-divisor behavior is identical at -O0 and -O1 (no fold, no
// deletion, same runtime path).
func TestDivByZeroDeterministicOnRisc(t *testing.T) {
	src := `
int result;
int main() {
	int d;
	d = 0;
	result = (10 / d) + (10 / 0) * 3 + (7 % 0);
	return 0;
}
`
	r0, err := runRiscResult(src, Options{Opt: 0})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := runRiscResult(src, Options{Opt: 1, DelaySlots: true})
	if err != nil {
		t.Fatal(err)
	}
	if r0 != r1 {
		t.Errorf("risc divide-by-zero diverges between levels: -O0 %d, -O1 %d", r0, r1)
	}
}

// TestIntMinOverflowCases pins INT_MIN / -1 and INT_MIN % -1 on both
// machines at both levels, through the folder (constants) and through
// the runtime path (values laundered through a call).
func TestIntMinOverflowCases(t *testing.T) {
	// INT_MIN/-1 = INT_MIN; halving and quartering the two copies keeps
	// the sum inside int32 range (and exercises the signed power-of-two
	// division strength reduction on INT_MIN too).
	checkBoth(t, `
int result;
int id(int x) { return x; }
int main() {
	int a; int b;
	a = 1 << 31;
	b = -1;
	result = a / b / 2 + a % b + id(a) / id(b) / 4 + id(a) % id(b);
	return 0;
}
`, -2147483648/2+0+(-2147483648/4)+0)
}

// TestShiftCountsAtAndPast32 pins the masked-literal semantics: shift
// counts are taken mod 32 when they are compile-time literals.
func TestShiftCountsAtAndPast32(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int x;
	x = 100;
	result = (x << 32) + (x << 33) * 10 + (x >> 32) * 1000 + (-x >> 35) * 10000;
	return 0;
}
`, 100+200*10+100*1000+(-13)*10000)
}
