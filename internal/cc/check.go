package cc

import "fmt"

// check resolves names, computes types, interns string literals, and
// enforces MiniC's (deliberately small) static rules.
func check(prog *Program) error {
	c := &checker{prog: prog, globals: map[string]*Symbol{}, funcs: map[string]*Symbol{}}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errf(g.Line, "global %q redefined", g.Name)
		}
		if g.Type.Kind == TypeVoid {
			return errf(g.Line, "global %q has void type", g.Name)
		}
		c.globals[g.Name] = g
		if g.Init != nil {
			if err := c.expr(g.Init); err != nil {
				return err
			}
			if g.Init.Kind != ExprIntLit && g.Init.Kind != ExprCharLit &&
				!(g.Init.Kind == ExprUnary && g.Init.Op == "-" && g.Init.X.Kind == ExprIntLit) {
				return errf(g.Line, "global initializer for %q must be a constant", g.Name)
			}
		}
	}
	for _, f := range prog.Funcs {
		if prev, dup := c.funcs[f.Name]; dup {
			if prev.Body != nil && f.Body != nil {
				return errf(f.Line, "function %q redefined", f.Name)
			}
			if len(prev.Params) != len(f.Params) {
				return errf(f.Line, "declaration of %q disagrees with its definition", f.Name)
			}
			if f.Body == nil {
				continue // keep the definition
			}
		}
		if _, clash := c.globals[f.Name]; clash {
			return errf(f.Line, "%q is both a global and a function", f.Name)
		}
		c.funcs[f.Name] = f
	}
	// Drop prototypes: code generation only sees definitions, and calls
	// resolve through c.funcs, which prefers definitions.
	defs := prog.Funcs[:0]
	for _, f := range prog.Funcs {
		if f.Body != nil {
			defs = append(defs, f)
		}
	}
	prog.Funcs = defs
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	globals map[string]*Symbol
	funcs   map[string]*Symbol

	fn     *Symbol
	scopes []map[string]*Symbol
	loops  int
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(s *Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[s.Name]; dup {
		return errf(s.Line, "%q redefined in the same scope", s.Name)
	}
	top[s.Name] = s
	return nil
}

func (c *checker) resolve(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(f *Symbol) error {
	c.fn = f
	c.scopes = nil
	c.loops = 0
	c.push()
	for _, p := range f.Params {
		if !p.Type.IsScalar() {
			return errf(p.Line, "parameter %q must be scalar", p.Name)
		}
		if err := c.define(p); err != nil {
			return err
		}
	}
	if err := c.stmt(f.Body); err != nil {
		return err
	}
	c.pop()
	return nil
}

func (c *checker) stmt(s *Stmt) error {
	switch s.Kind {
	case StmtBlock, StmtGroup:
		if s.Kind == StmtBlock {
			c.push()
			defer c.pop()
		}
		for _, sub := range s.Body {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case StmtDecl:
		d := s.Decl
		if d.Type.Kind == TypeVoid {
			return errf(s.Line, "local %q has void type", d.Name)
		}
		if s.DeclInit != nil {
			if d.Type.Kind == TypeArray {
				return errf(s.Line, "array local %q cannot have an initializer", d.Name)
			}
			if err := c.expr(s.DeclInit); err != nil {
				return err
			}
			if err := c.assignable(d.Type, s.DeclInit, s.Line); err != nil {
				return err
			}
		}
		if err := c.define(d); err != nil {
			return err
		}
		c.fn.Locals = append(c.fn.Locals, d)
		return nil

	case StmtExpr:
		return c.expr(s.Expr)

	case StmtIf:
		if err := c.expr(s.Expr); err != nil {
			return err
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil

	case StmtWhile:
		if err := c.expr(s.Expr); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.stmt(s.Then)

	case StmtFor:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.expr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.stmt(s.Then)

	case StmtReturn:
		if s.Expr == nil {
			if c.fn.Type.Kind != TypeVoid {
				return errf(s.Line, "%q must return a value", c.fn.Name)
			}
			return nil
		}
		if c.fn.Type.Kind == TypeVoid {
			return errf(s.Line, "void function %q returns a value", c.fn.Name)
		}
		if err := c.expr(s.Expr); err != nil {
			return err
		}
		return c.assignable(c.fn.Type, s.Expr, s.Line)

	case StmtBreak, StmtContinue:
		if c.loops == 0 {
			return errf(s.Line, "break/continue outside a loop")
		}
		return nil
	}
	return errf(s.Line, "internal: unknown statement kind %d", s.Kind)
}

// decay converts array-typed expressions to pointers at use sites.
func decay(t *Type) *Type {
	if t.Kind == TypeArray {
		return ptrTo(t.Elem)
	}
	return t
}

// arith is the usual arithmetic promotion: char joins int.
func arith(t *Type) *Type {
	if t.Kind == TypeChar {
		return tyInt
	}
	return t
}

func (c *checker) expr(e *Expr) error {
	switch e.Kind {
	case ExprIntLit:
		e.Type = tyInt
	case ExprCharLit:
		e.Type = tyChar
	case ExprStrLit:
		label := c.internString(e.Str)
		e.StrLabel = label
		e.Type = ptrTo(tyChar)

	case ExprIdent:
		sym := c.resolve(e.Name)
		if sym == nil {
			if c.funcs[e.Name] != nil {
				return errf(e.Line, "function %q used as a value", e.Name)
			}
			return errf(e.Line, "undefined name %q", e.Name)
		}
		e.Sym = sym
		e.Type = sym.Type

	case ExprUnary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case "-", "~":
			t := decay(e.X.Type)
			if t.Kind != TypeInt && t.Kind != TypeChar {
				return errf(e.Line, "unary %s needs an integer, got %s", e.Op, e.X.Type)
			}
			e.Type = tyInt
		case "!":
			e.Type = tyInt
		case "*":
			t := decay(e.X.Type)
			if t.Kind != TypePtr {
				return errf(e.Line, "cannot dereference %s", e.X.Type)
			}
			e.Type = t.Elem
		case "&":
			if !isLvalue(e.X) {
				return errf(e.Line, "cannot take the address of this expression")
			}
			e.Type = ptrTo(e.X.Type)
		}

	case ExprBinary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		xt, yt := decay(e.X.Type), decay(e.Y.Type)
		switch e.Op {
		case "+", "-":
			switch {
			case xt.Kind == TypePtr && yt.Kind != TypePtr:
				e.Type = xt
			case e.Op == "+" && yt.Kind == TypePtr:
				e.Type = yt
			case e.Op == "-" && xt.Kind == TypePtr && yt.Kind == TypePtr:
				if !xt.Elem.equal(yt.Elem) {
					return errf(e.Line, "pointer subtraction of different element types")
				}
				e.Type = tyInt
			default:
				e.Type = arith(xt)
			}
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			e.Type = tyInt
		default: // * / % & | ^ << >>
			if xt.Kind == TypePtr || yt.Kind == TypePtr {
				return errf(e.Line, "operator %s does not apply to pointers", e.Op)
			}
			e.Type = tyInt
		}

	case ExprAssign:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		if !isLvalue(e.X) {
			return errf(e.Line, "left side of %s is not assignable", e.Op)
		}
		if e.X.Type.Kind == TypeArray {
			return errf(e.Line, "cannot assign to an array")
		}
		if e.Op == "=" {
			if err := c.assignable(e.X.Type, e.Y, e.Line); err != nil {
				return err
			}
		} else if decay(e.X.Type).Kind == TypePtr && e.Op != "+=" && e.Op != "-=" {
			return errf(e.Line, "operator %s does not apply to pointers", e.Op)
		}
		e.Type = e.X.Type

	case ExprIndex:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		xt := decay(e.X.Type)
		if xt.Kind != TypePtr {
			return errf(e.Line, "cannot index %s", e.X.Type)
		}
		if decay(e.Y.Type).Kind == TypePtr {
			return errf(e.Line, "array index must be an integer")
		}
		e.Type = xt.Elem

	case ExprCall:
		fn := c.funcs[e.Name]
		if fn == nil {
			return errf(e.Line, "call to undefined function %q", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return errf(e.Line, "%q takes %d arguments, got %d", e.Name, len(fn.Params), len(e.Args))
		}
		for i, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
			if err := c.assignable(fn.Params[i].Type, a, e.Line); err != nil {
				return errf(e.Line, "argument %d of %q: %v", i+1, e.Name, err)
			}
		}
		e.Sym = fn
		e.Type = fn.Type

	default:
		return errf(e.Line, "internal: unknown expression kind %d", e.Kind)
	}
	return nil
}

// assignable checks a loose C-style conversion from the expression to dst.
func (c *checker) assignable(dst *Type, e *Expr, line int) error {
	src := decay(e.Type)
	switch dst.Kind {
	case TypeInt, TypeChar:
		if src.Kind == TypeInt || src.Kind == TypeChar {
			return nil
		}
		return fmt.Errorf("cannot assign %s to %s", e.Type, dst)
	case TypePtr:
		if src.Kind == TypePtr && (src.Elem.equal(dst.Elem) || isZero(e)) {
			return nil
		}
		if isZero(e) {
			return nil // null pointer constant
		}
		return fmt.Errorf("cannot assign %s to %s", e.Type, dst)
	}
	return fmt.Errorf("cannot assign to %s", dst)
}

func isZero(e *Expr) bool { return e.Kind == ExprIntLit && e.Num == 0 }

func isLvalue(e *Expr) bool {
	switch e.Kind {
	case ExprIdent:
		return e.Sym != nil && e.Sym.Kind != SymFunc
	case ExprIndex:
		return true
	case ExprUnary:
		return e.Op == "*"
	}
	return false
}

func (c *checker) internString(s string) string {
	for _, lit := range c.prog.Strings {
		if lit.value == s {
			return lit.label
		}
	}
	label := fmt.Sprintf("Lstr%d", len(c.prog.Strings))
	c.prog.Strings = append(c.prog.Strings, stringLit{label: label, value: s})
	return label
}
