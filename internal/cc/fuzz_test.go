package cc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"risc1/internal/cpu"
	"risc1/internal/vax"
)

// The expression fuzzer builds random MiniC expressions over three int
// variables, evaluates them in Go with int32 semantics, and checks that
// both code generators (and the delay-slot optimizer) compute the same
// value on their simulators. This is the strongest single correctness
// property in the repository: it exercises the parser, checker, both
// code generators, both assemblers, both simulators, and the RISC
// multiply/divide runtime together.

type fuzzExpr struct {
	src string
	val int32
}

// fuzzOptions covers both optimization levels, with the delay-slot
// optimizer on at -O1 — the corners the differential property must
// hold across.
var fuzzOptions = []Options{
	{Opt: 0},
	{Opt: 1, DelaySlots: true},
}

func genExpr(r *rand.Rand, depth int, vars map[string]int32) fuzzExpr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0: // variable
			names := []string{"a", "b", "c"}
			n := names[r.Intn(len(names))]
			return fuzzExpr{src: n, val: vars[n]}
		default: // literal
			v := int32(r.Intn(2001) - 1000)
			return fuzzExpr{src: fmt.Sprintf("(%d)", v), val: v}
		}
	}
	x := genExpr(r, depth-1, vars)
	// Unary sometimes.
	if r.Intn(6) == 0 {
		switch r.Intn(3) {
		case 0:
			return fuzzExpr{src: "(-" + x.src + ")", val: -x.val}
		case 1:
			return fuzzExpr{src: "(~" + x.src + ")", val: ^x.val}
		default:
			v := int32(0)
			if x.val == 0 {
				v = 1
			}
			return fuzzExpr{src: "(!" + x.src + ")", val: v}
		}
	}
	y := genExpr(r, depth-1, vars)
	b := func(op string, v int32) fuzzExpr {
		return fuzzExpr{src: "(" + x.src + op + y.src + ")", val: v}
	}
	boolVal := func(cond bool) int32 {
		if cond {
			return 1
		}
		return 0
	}
	switch r.Intn(16) {
	case 0:
		return b("+", x.val+y.val)
	case 1:
		return b("-", x.val-y.val)
	case 2:
		return b("*", x.val*y.val)
	case 3: // division by a nonzero literal
		d := int32(r.Intn(40) + 1)
		if r.Intn(2) == 0 {
			d = -d
		}
		return fuzzExpr{src: fmt.Sprintf("(%s/(%d))", x.src, d), val: x.val / d}
	case 4: // modulo by a nonzero literal
		d := int32(r.Intn(40) + 1)
		return fuzzExpr{src: fmt.Sprintf("(%s%%(%d))", x.src, d), val: x.val % d}
	case 5:
		return b("&", x.val&y.val)
	case 6:
		return b("|", x.val|y.val)
	case 7:
		return b("^", x.val^y.val)
	case 8: // shift by a literal 0..15
		sh := r.Intn(16)
		return fuzzExpr{src: fmt.Sprintf("(%s<<%d)", x.src, sh), val: x.val << uint(sh)}
	case 9:
		sh := r.Intn(16)
		return fuzzExpr{src: fmt.Sprintf("(%s>>%d)", x.src, sh), val: x.val >> uint(sh)}
	case 10:
		return b("==", boolVal(x.val == y.val))
	case 11:
		return b("!=", boolVal(x.val != y.val))
	case 12:
		return b("<", boolVal(x.val < y.val))
	case 13:
		return b(">=", boolVal(x.val >= y.val))
	case 14:
		return b("&&", boolVal(x.val != 0 && y.val != 0))
	default:
		return b("||", boolVal(x.val != 0 || y.val != 0))
	}
}

func fuzzProgram(r *rand.Rand) (string, int32) {
	vars := map[string]int32{
		"a": int32(r.Intn(4001) - 2000),
		"b": int32(r.Intn(4001) - 2000),
		"c": int32(r.Intn(200) - 100),
	}
	e := genExpr(r, 4, vars)
	expr := e.src
	if r.Intn(2) == 0 {
		// Route the value through a function call to exercise the
		// parameter-passing and return conventions too.
		expr = "pass(" + expr + ")"
	}
	src := fmt.Sprintf(`
int result;
int pass(int v) { return v; }
int main() {
	int a; int b; int c;
	a = %d; b = %d; c = %d;
	result = %s;
	return 0;
}
`, vars["a"], vars["b"], vars["c"], expr)
	return src, e.val
}

func runRiscResult(src string, o Options) (int32, error) {
	prog, text, _, err := CompileRISC(src, o)
	if err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	c := cpu.New(cpu.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		return 0, err
	}
	if err := c.Run(); err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	addr, _ := prog.Symbol("result")
	v, err := c.Mem.LoadWord(addr)
	return int32(v), err
}

func runVaxResult(src string, o Options) (int32, error) {
	prog, text, _, err := CompileVAX(src, o)
	if err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	c := vax.New(vax.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		return 0, err
	}
	if err := c.Run(); err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	addr, _ := prog.Symbol("result")
	v, err := c.Mem.LoadWord(addr)
	return int32(v), err
}

func TestExpressionFuzz(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, want := fuzzProgram(r)
		for _, o := range fuzzOptions {
			got, err := runRiscResult(src, o)
			if err != nil {
				t.Logf("seed %d risc (%+v): %v\nsource:%s", seed, o, err, src)
				return false
			}
			if got != want {
				t.Logf("seed %d risc (%+v): got %d, want %d\nsource:%s", seed, o, got, want, src)
				return false
			}
			got, err = runVaxResult(src, o)
			if err != nil {
				t.Logf("seed %d vax (%+v): %v\nsource:%s", seed, o, err, src)
				return false
			}
			if got != want {
				t.Logf("seed %d vax (%+v): got %d, want %d\nsource:%s", seed, o, got, want, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}

// TestStatementFuzz drives randomized loop/condition programs: a small
// state machine whose Go mirror must agree after a bounded number of
// iterations.
func TestStatementFuzz(t *testing.T) {
	count := 30
	if testing.Short() {
		count = 6
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mul := int32(r.Intn(9) - 4)
		add := int32(r.Intn(100) - 50)
		mask := int32(r.Intn(255) + 1)
		iters := int32(r.Intn(50) + 1)
		src := fmt.Sprintf(`
int result;
int main() {
	int i; int s;
	s = 1;
	for (i = 0; i < %d; i = i + 1) {
		s = s * (%d) + (%d);
		if (s & %d) { s = s - i; } else { s = s + i; }
		while (s > 100000) { s = s / 3; }
		while (s < -100000) { s = s / 5; }
	}
	result = s;
	return 0;
}
`, iters, mul, add, mask)
		// Go mirror.
		s := int32(1)
		for i := int32(0); i < iters; i++ {
			s = s*mul + add
			if s&mask != 0 {
				s -= i
			} else {
				s += i
			}
			for s > 100000 {
				s = s / 3
			}
			for s < -100000 {
				s = s / 5
			}
		}
		for _, o := range fuzzOptions {
			got, err := runRiscResult(src, o)
			if err != nil || got != s {
				t.Logf("seed %d risc (%+v): got %d err %v, want %d\n%s", seed, o, got, err, s, src)
				return false
			}
			got, err = runVaxResult(src, o)
			if err != nil || got != s {
				t.Logf("seed %d vax (%+v): got %d err %v, want %d\n%s", seed, o, got, err, s, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}
