package cc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"risc1/internal/cc/progen"
	"risc1/internal/cpu"
	"risc1/internal/vax"
)

// The differential fuzz tests draw random well-typed MiniC programs
// from the shared corpus generator (internal/cc/progen), evaluate them
// in Go with int32 semantics, and check that both code generators (and
// the delay-slot optimizer) compute the same value on their simulators.
// This is the strongest single correctness property in the repository:
// it exercises the parser, checker, both code generators, both
// assemblers, both simulators, and the RISC multiply/divide runtime
// together. The same generator feeds internal/exec's pool-level
// differential test, which re-checks the property under concurrency.

// fuzzOptions covers both optimization levels, with the delay-slot
// optimizer on at -O1 — the corners the differential property must
// hold across.
var fuzzOptions = []Options{
	{Opt: 0},
	{Opt: 1, DelaySlots: true},
}

func runRiscResult(src string, o Options) (int32, error) {
	prog, text, _, err := CompileRISC(src, o)
	if err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	c := cpu.New(cpu.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		return 0, err
	}
	if err := c.Run(); err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	addr, _ := prog.Symbol("result")
	v, err := c.Mem.LoadWord(addr)
	return int32(v), err
}

func runVaxResult(src string, o Options) (int32, error) {
	prog, text, _, err := CompileVAX(src, o)
	if err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	c := vax.New(vax.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		return 0, err
	}
	if err := c.Run(); err != nil {
		return 0, fmt.Errorf("%w\n%s", err, text)
	}
	addr, _ := prog.Symbol("result")
	v, err := c.Mem.LoadWord(addr)
	return int32(v), err
}

// checkDifferential runs one generated program through every
// (machine, options) corner and reports the first disagreement.
func checkDifferential(t *testing.T, seed int64, src string, want int32) bool {
	t.Helper()
	for _, o := range fuzzOptions {
		got, err := runRiscResult(src, o)
		if err != nil {
			t.Logf("seed %d risc (%+v): %v\nsource:%s", seed, o, err, src)
			return false
		}
		if got != want {
			t.Logf("seed %d risc (%+v): got %d, want %d\nsource:%s", seed, o, got, want, src)
			return false
		}
		got, err = runVaxResult(src, o)
		if err != nil {
			t.Logf("seed %d vax (%+v): %v\nsource:%s", seed, o, err, src)
			return false
		}
		if got != want {
			t.Logf("seed %d vax (%+v): got %d, want %d\nsource:%s", seed, o, got, want, src)
			return false
		}
	}
	return true
}

func TestExpressionFuzz(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, want := progen.ExprProgram(r)
		return checkDifferential(t, seed, src, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}

// TestStatementFuzz drives randomized loop/condition programs: a small
// state machine whose Go mirror must agree after a bounded number of
// iterations.
func TestStatementFuzz(t *testing.T) {
	count := 30
	if testing.Short() {
		count = 6
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, want := progen.LoopProgram(r)
		return checkDifferential(t, seed, src, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}

// TestCallFuzz drives the call-heavy corpus: random recursive programs
// that exercise the register-window machinery on the RISC side and the
// CALLS/RET frames on the baseline.
func TestCallFuzz(t *testing.T) {
	count := 30
	if testing.Short() {
		count = 6
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, want := progen.CallProgram(r)
		return checkDifferential(t, seed, src, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}
