package cc

import (
	"risc1/internal/cc/ir"
)

// Lower translates a checked AST into the shared IR. The translation
// is deliberately naive — every constant is materialized into a
// temporary, every variable read becomes a copy — so that -O0 output
// is genuinely unoptimized and every improvement is owed to the
// machine-independent pass pipeline in internal/cc/opt, applied
// identically to both backends.
//
// The one piece of semantics pinned here: shift counts written as
// literals are masked to the 0..31 range the 32-bit machines support,
// so "x << 33" means "x << 1" on both backends at every optimization
// level. Run-time shift counts keep each machine's native behavior
// (RISC I masks, the CISC baseline saturates); see DESIGN.md.
func Lower(prog *Program) (*ir.Program, error) {
	lo := &lowerer{
		prog: prog,
		out:  &ir.Program{},
		vars: make(map[*Symbol]*ir.Var),
	}
	for _, gl := range prog.Globals {
		v := lo.varFor(gl)
		lo.out.Globals = append(lo.out.Globals, v)
	}
	for _, s := range prog.Strings {
		lo.out.Strings = append(lo.out.Strings, ir.StringLit{Label: s.label, Value: s.value})
	}
	for _, fn := range prog.Funcs {
		f, err := lo.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		lo.out.Funcs = append(lo.out.Funcs, f)
	}
	return lo.out, nil
}

// loopTarget is the break/continue bookkeeping, shared by every
// construct that used to duplicate it across the two generators.
type loopTarget struct {
	brk, cont *ir.Block
}

type lowerer struct {
	prog *Program
	out  *ir.Program
	vars map[*Symbol]*ir.Var

	f     *ir.Func
	cur   *ir.Block
	loops []loopTarget
}

// varFor returns (creating on first use) the IR variable for a symbol.
func (lo *lowerer) varFor(sym *Symbol) *ir.Var {
	if v, ok := lo.vars[sym]; ok {
		return v
	}
	v := &ir.Var{
		Name:      sym.Name,
		Scalar:    sym.Type.IsScalar(),
		Char:      sym.Type.Kind == TypeChar,
		Size:      sym.Type.Size(),
		ParamSlot: sym.ParamSlot,
	}
	switch sym.Kind {
	case SymGlobal:
		v.Kind = ir.VarGlobal
		if sym.Init != nil {
			c, _ := evalConst(sym.Init)
			v.Init = int32(c)
		}
		v.InitStr = sym.InitStr
	case SymParam:
		v.Kind = ir.VarParam
	default:
		v.Kind = ir.VarLocal
	}
	lo.vars[sym] = v
	return v
}

// evalConst folds the constant expressions MiniC accepts as global
// initializers: literals and unary - / ~ over them.
func evalConst(e *Expr) (int64, bool) {
	switch e.Kind {
	case ExprIntLit, ExprCharLit:
		return e.Num, true
	case ExprUnary:
		if v, ok := evalConst(e.X); ok {
			switch e.Op {
			case "-":
				return -v, true
			case "~":
				return ^v, true
			}
		}
	}
	return 0, false
}

func (lo *lowerer) lowerFunc(fn *Symbol) (*ir.Func, error) {
	lo.f = &ir.Func{Name: fn.Name, Line: fn.Line}
	lo.loops = nil
	for _, p := range fn.Params {
		lo.f.Params = append(lo.f.Params, lo.varFor(p))
	}
	for _, l := range fn.Locals {
		lo.f.Locals = append(lo.f.Locals, lo.varFor(l))
	}
	lo.start(lo.newBlock())
	if err := lo.stmt(fn.Body); err != nil {
		return nil, err
	}
	// Fall-off-the-end return (value 0 for int functions).
	lo.term(ir.Term{Kind: ir.TermReturn, Line: fn.Line})
	return lo.f, nil
}

// newBlock allocates a block; it gets its name and its place in the
// layout when started, so nested constructs lay out inline.
func (lo *lowerer) newBlock() *ir.Block { return &ir.Block{} }

// start appends the block to the layout and makes it current.
func (lo *lowerer) start(b *ir.Block) {
	b.Name = blockName(len(lo.f.Blocks))
	lo.f.Blocks = append(lo.f.Blocks, b)
	lo.cur = b
}

func blockName(i int) string {
	return "b" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// term closes the current block. Statements after break/continue/
// return land in a fresh unreachable block, which -O1 removes.
func (lo *lowerer) term(t ir.Term) {
	lo.cur.Term = t
	lo.cur = nil
}

func (lo *lowerer) emit(i ir.Instr) {
	lo.cur.Instrs = append(lo.cur.Instrs, i)
}

// temp allocates a fresh temporary.
func (lo *lowerer) temp() ir.Value { return lo.f.NewTemp() }

// loadConst materializes a constant into a temporary — the naive
// baseline every constant takes at -O0.
func (lo *lowerer) loadConst(c int32, line int) ir.Value {
	t := lo.temp()
	lo.emit(ir.Instr{Op: ir.OpCopy, Dst: t, A: ir.Const(c), Line: line})
	return t
}

func (lo *lowerer) stmt(s *Stmt) error {
	switch s.Kind {
	case StmtBlock, StmtGroup:
		for _, sub := range s.Body {
			if err := lo.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case StmtDecl:
		if s.DeclInit == nil {
			return nil
		}
		v, err := lo.expr(s.DeclInit)
		if err != nil {
			return err
		}
		lo.emit(ir.Instr{Op: ir.OpCopy, Dst: ir.VarRef(lo.varFor(s.Decl)), A: v, Line: s.Line})
		return nil

	case StmtExpr:
		_, err := lo.expr(s.Expr)
		return err

	case StmtIf:
		thenB, endB := lo.newBlock(), lo.newBlock()
		elseB := endB
		if s.Else != nil {
			elseB = lo.newBlock()
		}
		if err := lo.cond(s.Expr, thenB, elseB); err != nil {
			return err
		}
		lo.start(thenB)
		if err := lo.stmt(s.Then); err != nil {
			return err
		}
		lo.term(ir.Term{Kind: ir.TermJump, Then: endB, Line: s.Line})
		if s.Else != nil {
			lo.start(elseB)
			if err := lo.stmt(s.Else); err != nil {
				return err
			}
			lo.term(ir.Term{Kind: ir.TermJump, Then: endB, Line: s.Line})
		}
		lo.start(endB)
		return nil

	case StmtWhile:
		headB, bodyB, endB := lo.newBlock(), lo.newBlock(), lo.newBlock()
		lo.term(ir.Term{Kind: ir.TermJump, Then: headB, Line: s.Line})
		lo.start(headB)
		if err := lo.cond(s.Expr, bodyB, endB); err != nil {
			return err
		}
		lo.start(bodyB)
		lo.loops = append(lo.loops, loopTarget{brk: endB, cont: headB})
		err := lo.stmt(s.Then)
		lo.loops = lo.loops[:len(lo.loops)-1]
		if err != nil {
			return err
		}
		lo.term(ir.Term{Kind: ir.TermJump, Then: headB, Line: s.Line})
		lo.start(endB)
		return nil

	case StmtFor:
		if s.Init != nil {
			if err := lo.stmt(s.Init); err != nil {
				return err
			}
		}
		headB, bodyB, postB, endB := lo.newBlock(), lo.newBlock(), lo.newBlock(), lo.newBlock()
		lo.term(ir.Term{Kind: ir.TermJump, Then: headB, Line: s.Line})
		lo.start(headB)
		if s.Cond != nil {
			if err := lo.cond(s.Cond, bodyB, endB); err != nil {
				return err
			}
		} else {
			lo.term(ir.Term{Kind: ir.TermJump, Then: bodyB, Line: s.Line})
		}
		lo.start(bodyB)
		lo.loops = append(lo.loops, loopTarget{brk: endB, cont: postB})
		err := lo.stmt(s.Then)
		lo.loops = lo.loops[:len(lo.loops)-1]
		if err != nil {
			return err
		}
		lo.term(ir.Term{Kind: ir.TermJump, Then: postB, Line: s.Line})
		lo.start(postB)
		if s.Post != nil {
			if err := lo.stmt(s.Post); err != nil {
				return err
			}
		}
		lo.term(ir.Term{Kind: ir.TermJump, Then: headB, Line: s.Line})
		lo.start(endB)
		return nil

	case StmtReturn:
		t := ir.Term{Kind: ir.TermReturn, Line: s.Line}
		if s.Expr != nil {
			v, err := lo.expr(s.Expr)
			if err != nil {
				return err
			}
			t.Ret = v
		}
		lo.term(t)
		lo.start(lo.newBlock())
		return nil

	case StmtBreak, StmtContinue:
		if len(lo.loops) == 0 {
			return errf(s.Line, "break/continue outside a loop")
		}
		tgt := lo.loops[len(lo.loops)-1].brk
		if s.Kind == StmtContinue {
			tgt = lo.loops[len(lo.loops)-1].cont
		}
		lo.term(ir.Term{Kind: ir.TermJump, Then: tgt, Line: s.Line})
		lo.start(lo.newBlock())
		return nil
	}
	return errf(s.Line, "internal: unhandled statement kind %d", s.Kind)
}

// memSize returns the access width for a loaded or stored cell.
func memSize(t *Type) int {
	if t.Kind == TypeChar {
		return 1
	}
	return 4
}

// expr lowers an expression and returns the temporary holding it.
func (lo *lowerer) expr(e *Expr) (ir.Value, error) {
	switch e.Kind {
	case ExprIntLit, ExprCharLit:
		return lo.loadConst(int32(e.Num), e.Line), nil

	case ExprStrLit:
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpAddrStr, Dst: t, Label: e.StrLabel, Line: e.Line})
		return t, nil

	case ExprIdent:
		if e.Sym.Type.Kind == TypeArray {
			return lo.addr(e) // arrays decay to their address
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpCopy, Dst: t, A: ir.VarRef(lo.varFor(e.Sym)), Line: e.Line})
		return t, nil

	case ExprUnary:
		switch e.Op {
		case "-", "~":
			x, err := lo.expr(e.X)
			if err != nil {
				return ir.Value{}, err
			}
			op := ir.OpNeg
			if e.Op == "~" {
				op = ir.OpCom
			}
			t := lo.temp()
			lo.emit(ir.Instr{Op: op, Dst: t, A: x, Line: e.Line})
			return t, nil
		case "!":
			return lo.materializeCond(e)
		case "*":
			a, err := lo.expr(e.X)
			if err != nil {
				return ir.Value{}, err
			}
			t := lo.temp()
			lo.emit(ir.Instr{Op: ir.OpLoad, Dst: t, A: a, Size: memSize(e.Type), Line: e.Line})
			return t, nil
		case "&":
			return lo.addr(e.X)
		}

	case ExprBinary:
		switch e.Op {
		case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
			return lo.materializeCond(e)
		}
		if decay(e.X.Type).Kind == TypePtr || decay(e.Y.Type).Kind == TypePtr {
			return lo.pointerArith(e)
		}
		x, err := lo.expr(e.X)
		if err != nil {
			return ir.Value{}, err
		}
		y, err := lo.shiftOperand(e.Op, e.Y)
		if err != nil {
			return ir.Value{}, err
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: binOp(e.Op), Dst: t, A: x, B: y, Line: e.Line})
		return t, nil

	case ExprAssign:
		return lo.assign(e)

	case ExprIndex:
		a, err := lo.addr(e)
		if err != nil {
			return ir.Value{}, err
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpLoad, Dst: t, A: a, Size: memSize(e.Type), Line: e.Line})
		return t, nil

	case ExprCall:
		args := make([]ir.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := lo.expr(a)
			if err != nil {
				return ir.Value{}, err
			}
			args[i] = v
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpCall, Dst: t, Label: e.Name, Args: args, Line: e.Line})
		return t, nil
	}
	return ir.Value{}, errf(e.Line, "internal: unhandled expression kind %d", e.Kind)
}

// shiftOperand lowers the right operand of a binary operator. Literal
// shift counts are masked to 0..31 here so both backends agree on
// out-of-range constants at every optimization level.
func (lo *lowerer) shiftOperand(op string, y *Expr) (ir.Value, error) {
	if (op == "<<" || op == ">>") && (y.Kind == ExprIntLit || y.Kind == ExprCharLit) {
		return lo.loadConst(int32(y.Num)&31, y.Line), nil
	}
	return lo.expr(y)
}

// binOp maps an arithmetic operator to its IR op.
func binOp(op string) ir.Op {
	switch op {
	case "+":
		return ir.OpAdd
	case "-":
		return ir.OpSub
	case "*":
		return ir.OpMul
	case "/":
		return ir.OpDiv
	case "%":
		return ir.OpMod
	case "&":
		return ir.OpAnd
	case "|":
		return ir.OpOr
	case "^":
		return ir.OpXor
	case "<<":
		return ir.OpShl
	default:
		return ir.OpShr
	}
}

// scale multiplies an index by a power-of-two element size.
func (lo *lowerer) scale(idx ir.Value, size, line int) ir.Value {
	sh := ir.Log2(size)
	if sh == 0 {
		return idx
	}
	c := lo.loadConst(int32(sh), line)
	t := lo.temp()
	lo.emit(ir.Instr{Op: ir.OpShl, Dst: t, A: idx, B: c, Line: line})
	return t
}

// pointerArith lowers ptr±int (scaled) and ptr-ptr (descaled).
func (lo *lowerer) pointerArith(e *Expr) (ir.Value, error) {
	xt, yt := decay(e.X.Type), decay(e.Y.Type)
	switch {
	case xt.Kind == TypePtr && yt.Kind == TypePtr: // ptr - ptr
		x, err := lo.expr(e.X)
		if err != nil {
			return ir.Value{}, err
		}
		y, err := lo.expr(e.Y)
		if err != nil {
			return ir.Value{}, err
		}
		d := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpSub, Dst: d, A: x, B: y, Line: e.Line})
		if sh := ir.Log2(xt.Elem.Size()); sh > 0 {
			c := lo.loadConst(int32(sh), e.Line)
			t := lo.temp()
			lo.emit(ir.Instr{Op: ir.OpShr, Dst: t, A: d, B: c, Line: e.Line})
			return t, nil
		}
		return d, nil

	case xt.Kind == TypePtr: // ptr ± int
		base, err := lo.expr(e.X)
		if err != nil {
			return ir.Value{}, err
		}
		idx, err := lo.expr(e.Y)
		if err != nil {
			return ir.Value{}, err
		}
		op := ir.OpAdd
		if e.Op == "-" {
			op = ir.OpSub
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: op, Dst: t, A: base, B: lo.scale(idx, xt.Elem.Size(), e.Line), Line: e.Line})
		return t, nil

	default: // int + ptr
		idx, err := lo.expr(e.X)
		if err != nil {
			return ir.Value{}, err
		}
		base, err := lo.expr(e.Y)
		if err != nil {
			return ir.Value{}, err
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpAdd, Dst: t, A: base, B: lo.scale(idx, yt.Elem.Size(), e.Line), Line: e.Line})
		return t, nil
	}
}

// addr lowers the address of an lvalue or array.
func (lo *lowerer) addr(e *Expr) (ir.Value, error) {
	switch e.Kind {
	case ExprIdent:
		v := lo.varFor(e.Sym)
		if v.Scalar && v.Kind == ir.VarLocal {
			// Force the local out of the register file; the backends
			// check this flag before allocating.
			v.Addressed = true
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpAddr, Dst: t, Var: v, Line: e.Line})
		return t, nil
	case ExprIndex:
		base, err := lo.expr(e.X) // pointer value or array address
		if err != nil {
			return ir.Value{}, err
		}
		idx, err := lo.expr(e.Y)
		if err != nil {
			return ir.Value{}, err
		}
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpAdd, Dst: t, A: base, B: lo.scale(idx, e.Type.Size(), e.Line), Line: e.Line})
		return t, nil
	case ExprUnary:
		if e.Op == "*" {
			return lo.expr(e.X)
		}
	}
	return ir.Value{}, errf(e.Line, "internal: not an addressable expression")
}

// assign lowers = and the compound assignments; the expression's value
// is the stored value (untruncated, as the AST generators did).
func (lo *lowerer) assign(e *Expr) (ir.Value, error) {
	binop := ""
	if len(e.Op) > 1 {
		binop = e.Op[:len(e.Op)-1]
	}
	lhs := e.X

	// Scalar variable: read/modify/write through the variable cell.
	if lhs.Kind == ExprIdent && lhs.Sym.Type.IsScalar() {
		v := lo.varFor(lhs.Sym)
		if binop == "" {
			val, err := lo.expr(e.Y)
			if err != nil {
				return ir.Value{}, err
			}
			lo.emit(ir.Instr{Op: ir.OpCopy, Dst: ir.VarRef(v), A: val, Line: e.Line})
			return val, nil
		}
		old := lo.temp()
		lo.emit(ir.Instr{Op: ir.OpCopy, Dst: old, A: ir.VarRef(v), Line: e.Line})
		comb, err := lo.combine(binop, lhs, old, e.Y, e.Line)
		if err != nil {
			return ir.Value{}, err
		}
		lo.emit(ir.Instr{Op: ir.OpCopy, Dst: ir.VarRef(v), A: comb, Line: e.Line})
		return comb, nil
	}

	// Memory lvalue: compute the address once.
	addr, err := lo.lvalueAddr(lhs)
	if err != nil {
		return ir.Value{}, err
	}
	sz := memSize(lhs.Type)
	if binop == "" {
		val, err := lo.expr(e.Y)
		if err != nil {
			return ir.Value{}, err
		}
		lo.emit(ir.Instr{Op: ir.OpStore, A: addr, B: val, Size: sz, Line: e.Line})
		return val, nil
	}
	old := lo.temp()
	lo.emit(ir.Instr{Op: ir.OpLoad, Dst: old, A: addr, Size: sz, Line: e.Line})
	comb, err := lo.combine(binop, lhs, old, e.Y, e.Line)
	if err != nil {
		return ir.Value{}, err
	}
	lo.emit(ir.Instr{Op: ir.OpStore, A: addr, B: comb, Size: sz, Line: e.Line})
	return comb, nil
}

// combine computes old <binop> rhs, scaling rhs for pointer += / -=.
func (lo *lowerer) combine(binop string, lhs *Expr, old ir.Value, rhs *Expr, line int) (ir.Value, error) {
	y, err := lo.shiftOperand(binop, rhs)
	if err != nil {
		return ir.Value{}, err
	}
	if decay(lhs.Type).Kind == TypePtr {
		y = lo.scale(y, decay(lhs.Type).Elem.Size(), line)
	}
	t := lo.temp()
	lo.emit(ir.Instr{Op: binOp(binop), Dst: t, A: old, B: y, Line: line})
	return t, nil
}

// lvalueAddr is addr restricted to assignable expressions.
func (lo *lowerer) lvalueAddr(e *Expr) (ir.Value, error) {
	switch e.Kind {
	case ExprIdent, ExprIndex:
		return lo.addr(e)
	case ExprUnary:
		if e.Op == "*" {
			return lo.expr(e.X)
		}
	}
	return ir.Value{}, errf(e.Line, "internal: not an lvalue")
}

// cond lowers a boolean context: control transfers to thenB when e is
// true, elseB when false. Short-circuit operators become CFG edges.
func (lo *lowerer) cond(e *Expr, thenB, elseB *ir.Block) error {
	switch {
	case e.Kind == ExprUnary && e.Op == "!":
		return lo.cond(e.X, elseB, thenB)

	case e.Kind == ExprBinary && (e.Op == "&&" || e.Op == "||"):
		mid := lo.newBlock()
		if e.Op == "&&" {
			if err := lo.cond(e.X, mid, elseB); err != nil {
				return err
			}
		} else {
			if err := lo.cond(e.X, thenB, mid); err != nil {
				return err
			}
		}
		lo.start(mid)
		return lo.cond(e.Y, thenB, elseB)

	case e.Kind == ExprBinary && isComparison(e.Op):
		x, err := lo.expr(e.X)
		if err != nil {
			return err
		}
		y, err := lo.expr(e.Y)
		if err != nil {
			return err
		}
		lo.term(ir.Term{Kind: ir.TermBranch, Rel: rel(e.Op), A: x, B: y,
			Then: thenB, Else: elseB, Line: e.Line})
		return nil

	default:
		v, err := lo.expr(e)
		if err != nil {
			return err
		}
		z := lo.loadConst(0, e.Line)
		lo.term(ir.Term{Kind: ir.TermBranch, Rel: ir.RelNe, A: v, B: z,
			Then: thenB, Else: elseB, Line: e.Line})
		return nil
	}
}

func isComparison(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func rel(op string) ir.Rel {
	switch op {
	case "==":
		return ir.RelEq
	case "!=":
		return ir.RelNe
	case "<":
		return ir.RelLt
	case "<=":
		return ir.RelLe
	case ">":
		return ir.RelGt
	default:
		return ir.RelGe
	}
}

// materializeCond turns a boolean expression into 0/1.
func (lo *lowerer) materializeCond(e *Expr) (ir.Value, error) {
	t := lo.temp()
	tB, fB, join := lo.newBlock(), lo.newBlock(), lo.newBlock()
	if err := lo.cond(e, tB, fB); err != nil {
		return ir.Value{}, err
	}
	lo.start(tB)
	lo.emit(ir.Instr{Op: ir.OpCopy, Dst: t, A: ir.Const(1), Line: e.Line})
	lo.term(ir.Term{Kind: ir.TermJump, Then: join, Line: e.Line})
	lo.start(fB)
	lo.emit(ir.Instr{Op: ir.OpCopy, Dst: t, A: ir.Const(0), Line: e.Line})
	lo.term(ir.Term{Kind: ir.TermJump, Then: join, Line: e.Line})
	lo.start(join)
	return t, nil
}
