package cc

import (
	"strings"
	"testing"

	"risc1/internal/cpu"
	"risc1/internal/rv32"
	"risc1/internal/vax"
)

// runRISC compiles and executes src on the RISC I simulator, returning
// the machine for inspection. The value of the global named "result" is
// the usual check.
func runRISC(t *testing.T, src string, o Options) *cpu.CPU {
	t.Helper()
	prog, text, _, err := CompileRISC(src, o)
	if err != nil {
		t.Fatalf("compile risc: %v\n%s", err, text)
	}
	c := cpu.New(cpu.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("risc run: %v\nassembly:\n%s", err, text)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("risc assembly:\n%s", text)
		}
	})
	riscSyms = prog.Symbols
	return c
}

var riscSyms map[string]uint32
var vaxSyms map[string]uint32
var rv32Syms map[string]uint32

func riscGlobal(t *testing.T, c *cpu.CPU, name string) int32 {
	t.Helper()
	addr, ok := riscSyms[name]
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	v, err := c.Mem.LoadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	return int32(v)
}

func runVAXsrc(t *testing.T, src string, o Options) *vax.CPU {
	t.Helper()
	prog, text, _, err := CompileVAX(src, o)
	if err != nil {
		t.Fatalf("compile vax: %v\n%s", err, text)
	}
	c := vax.New(vax.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("vax run: %v\nassembly:\n%s", err, text)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("vax assembly:\n%s", text)
		}
	})
	vaxSyms = prog.Symbols
	return c
}

func vaxGlobal(t *testing.T, c *vax.CPU, name string) int32 {
	t.Helper()
	addr, ok := vaxSyms[name]
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	v, err := c.Mem.LoadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	return int32(v)
}

func runRV32src(t *testing.T, src string, o Options) *rv32.CPU {
	t.Helper()
	prog, text, _, err := CompileRV32(src, o)
	if err != nil {
		t.Fatalf("compile rv32: %v\n%s", err, text)
	}
	c := rv32.New(rv32.Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("rv32 run: %v\nassembly:\n%s", err, text)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("rv32 assembly:\n%s", text)
		}
	})
	rv32Syms = prog.Symbols
	return c
}

func rv32Global(t *testing.T, c *rv32.CPU, name string) int32 {
	t.Helper()
	addr, ok := rv32Syms[name]
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	v, err := c.Mem.LoadWord(addr)
	if err != nil {
		t.Fatal(err)
	}
	return int32(v)
}

// checkBoth runs src on all three machines at both optimization levels
// and asserts the global "result".
func checkBoth(t *testing.T, src string, want int32) {
	t.Helper()
	for _, lvl := range []int{0, 1} {
		r := runRISC(t, src, Options{Opt: lvl})
		if got := riscGlobal(t, r, "result"); got != want {
			t.Errorf("risc -O%d result = %d, want %d", lvl, got, want)
		}
		ro := runRISC(t, src, Options{Opt: lvl, DelaySlots: true})
		if got := riscGlobal(t, ro, "result"); got != want {
			t.Errorf("risc -O%d (delay slots) result = %d, want %d", lvl, got, want)
		}
		v := runVAXsrc(t, src, Options{Opt: lvl})
		if got := vaxGlobal(t, v, "result"); got != want {
			t.Errorf("vax -O%d result = %d, want %d", lvl, got, want)
		}
		m := runRV32src(t, src, Options{Opt: lvl})
		if got := rv32Global(t, m, "result"); got != want {
			t.Errorf("rv32 -O%d result = %d, want %d", lvl, got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	result = (3 + 4) * 5 - 20 / 4 + 17 % 5;
	return 0;
}
`, 7*5-5+2)
}

func TestNegativeDivMod(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int a; int b;
	a = -17; b = 5;
	result = a / b * 1000 + a % b;  // C: -3 and -2
	return 0;
}
`, -3000-2)
}

func TestUnaryOps(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int x;
	x = 5;
	result = -x + ~x + !x + !!x;   // -5 + -6 + 0 + 1
	return 0;
}
`, -10)
}

func TestShiftAndBitwise(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int a;
	a = 0xf0;
	result = (a << 4) + (a >> 2) + (a & 0x30) + (a | 7) + (a ^ 0xff);
	return 0;
}
`, 0xf00+0x3c+0x30+0xf7+0x0f)
}

func TestComparisonValues(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int a; int b;
	a = 3; b = 7;
	result = (a < b) * 1 + (a > b) * 10 + (a == 3) * 100 + (a != b) * 1000
	       + (b <= 7) * 10000 + (b >= 8) * 100000;
	return 0;
}
`, 1+100+1000+10000)
}

func TestShortCircuit(t *testing.T) {
	checkBoth(t, `
int result;
int hits;
int bump() { hits = hits + 1; return 1; }
int main() {
	int a;
	a = 0;
	if (a && bump()) { result = 111; }
	if (a || bump()) { result = result + 1; }
	result = result * 10 + hits;
	return 0;
}
`, 11)
}

func TestWhileAndFor(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int i; int s;
	s = 0;
	for (i = 1; i <= 10; i = i + 1) s = s + i;
	while (i > 0) { s = s + 1; i = i - 1; }
	result = s;
	return 0;
}
`, 55+11)
}

func TestBreakContinue(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int i; int s;
	s = 0;
	for (i = 0; i < 100; i = i + 1) {
		if (i % 2 == 0) continue;
		if (i > 10) break;
		s = s + i;   // 1+3+5+7+9
	}
	result = s;
	return 0;
}
`, 25)
}

func TestGlobalArraysAndPointers(t *testing.T) {
	checkBoth(t, `
int a[10];
int result;
int main() {
	int i;
	int *p;
	for (i = 0; i < 10; i = i + 1) a[i] = i * i;
	p = &a[3];
	result = a[9] + *p + p[2];   // 81 + 9 + 25
	return 0;
}
`, 115)
}

func TestLocalArrays(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int b[8];
	int i; int s;
	for (i = 0; i < 8; i = i + 1) b[i] = i + 1;
	s = 0;
	for (i = 0; i < 8; i = i + 1) s = s + b[i];
	result = s;
	return 0;
}
`, 36)
}

func TestCharsAndStrings(t *testing.T) {
	checkBoth(t, `
char buf[16];
int result;
int slen(char *s) {
	int n;
	n = 0;
	while (s[n]) n = n + 1;
	return n;
}
int main() {
	char *msg;
	int i;
	msg = "hello";
	for (i = 0; i <= slen(msg); i = i + 1) buf[i] = msg[i];
	result = slen(buf) * 256 + buf[4];
	return 0;
}
`, 5*256+'o')
}

func TestRecursionFib(t *testing.T) {
	checkBoth(t, `
int result;
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	result = fib(15);
	return 0;
}
`, 610)
}

func TestMutualRecursion(t *testing.T) {
	checkBoth(t, `
int result;
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int main() {
	result = isEven(10) * 10 + isOdd(7);
	return 0;
}
`, 11)
}

func TestManyArguments(t *testing.T) {
	checkBoth(t, `
int result;
int sum6(int a, int b, int c, int d, int e, int f) {
	return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}
int main() {
	result = sum6(1, 2, 3, 4, 5, 6);
	return 0;
}
`, 1+4+9+16+25+36)
}

func TestNestedCalls(t *testing.T) {
	checkBoth(t, `
int result;
int add(int a, int b) { return a + b; }
int main() {
	result = add(add(1, 2), add(add(3, 4), 5));
	return 0;
}
`, 15)
}

func TestCompoundAssign(t *testing.T) {
	checkBoth(t, `
int a[4];
int result;
int main() {
	int x;
	x = 10;
	x += 5; x -= 3; x *= 4; x /= 2; x %= 13;  // 11
	a[2] = 7;
	a[2] += 3;
	a[2] *= 2;
	result = x * 100 + a[2];
	return 0;
}
`, 1120)
}

func TestPointerArithmetic(t *testing.T) {
	checkBoth(t, `
int arr[10];
int result;
int main() {
	int *p; int *q;
	int i;
	for (i = 0; i < 10; i = i + 1) arr[i] = i;
	p = arr;
	q = p + 7;
	*q = 70;
	q -= 2;
	result = (q - p) * 1000 + arr[7] + q[0];
	return 0;
}
`, 5000+70+5)
}

func TestCharPointerWalk(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	char *s;
	int sum;
	s = "AB";
	sum = 0;
	while (*s) { sum = sum * 1000 + *s; s = s + 1; }
	result = sum;
	return 0;
}
`, 'A'*1000+'B')
}

func TestGlobalInitializers(t *testing.T) {
	checkBoth(t, `
int g = 42;
int h = -7;
char c = 'x';
int result;
int main() {
	result = g + h + c;
	return 0;
}
`, 42-7+'x')
}

func TestDeepRecursionSpills(t *testing.T) {
	// Depth 40 forces window overflow on the 8-window RISC machine.
	checkBoth(t, `
int result;
int down(int n, int acc) {
	if (n == 0) return acc;
	return down(n - 1, acc + n);
}
int main() {
	result = down(40, 0);
	return 0;
}
`, 820)
}

func TestAckermannSmall(t *testing.T) {
	checkBoth(t, `
int result;
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	result = ack(2, 3);
	return 0;
}
`, 9)
}

func TestOptimizedDelaySlotsSameResult(t *testing.T) {
	src := `
int result;
int f(int n) { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) s += i * i; return s; }
int main() { result = f(20); return 0; }
`
	plain := runRISC(t, src, Options{Opt: 1})
	p := riscGlobal(t, plain, "result")
	opt := runRISC(t, src, Options{Opt: 1, DelaySlots: true})
	o := riscGlobal(t, opt, "result")
	if p != o {
		t.Fatalf("optimizer changed the result: %d vs %d", p, o)
	}
	if opt.Trace.Instructions >= plain.Trace.Instructions {
		t.Errorf("optimized run should execute fewer instructions: %d vs %d",
			opt.Trace.Instructions, plain.Trace.Instructions)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int main() { return x; }", "undefined name"},
		{"int main() { foo(); }", "undefined function"},
		{"int f(int a) { return a; } int main() { return f(); }", "takes 1 arguments"},
		{"int main() { int a[3]; a = 0; }", "cannot assign to an array"},
		{"int main() { 5 = 6; }", "not assignable"},
		{"int main() { int x; x = *x; }", "cannot dereference"},
		{"int main() { break; }", "outside a loop"},
		{"int main() { int x; int x; }", "redefined"},
		{"void main2() { return 5; } int main() { return 0; }", "void function"},
		{"int main() { int x; x++; }", "no ++"},
		{"int main() { return 1 +; }", "unexpected"},
		{"int g = f(); int main() { return 0; }", "undefined"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q: error %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestTooManyRISCParams(t *testing.T) {
	src := "int f(int a, int b, int c, int d, int e, int g, int h) { return a; } int main() { return f(1,2,3,4,5,6,7); }"
	_, _, _, err := CompileRISC(src, Options{})
	if err == nil || !strings.Contains(err.Error(), "at most 6") {
		t.Errorf("want parameter-limit error, got %v", err)
	}
	// The CISC target passes arguments on the stack, so it accepts this.
	if _, _, _, err := CompileVAX(src, Options{}); err != nil {
		t.Errorf("vax should accept 7 params: %v", err)
	}
}

func TestWindowStatsFromCompiledCode(t *testing.T) {
	src := `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(14); return 0; }
`
	c := runRISC(t, src, Options{Opt: 1})
	if c.Regs.Stats.Calls < 100 {
		t.Errorf("expected many window calls, got %d", c.Regs.Stats.Calls)
	}
	if c.Regs.Stats.Overflows == 0 {
		t.Error("fib(14) at 8 windows should overflow at least once")
	}
	v := runVAXsrc(t, src, Options{Opt: 1})
	if v.Stats.Calls < 100 {
		t.Errorf("vax calls = %d", v.Stats.Calls)
	}
	// The headline claim: per-call memory traffic is far lower with
	// windows than with CALLS frames.
	riscWords := c.Stats.SpillWords + c.Stats.RefillWords
	riscPerCall := float64(riscWords) / float64(c.Regs.Stats.Calls)
	vaxPerCall := float64(v.Stats.CallMemWords) / float64(v.Stats.Calls)
	if riscPerCall >= vaxPerCall {
		t.Errorf("window traffic per call (%.2f words) should undercut CALLS (%.2f words)",
			riscPerCall, vaxPerCall)
	}
}

func TestPointerToPointer(t *testing.T) {
	checkBoth(t, `
int x;
int *p;
int **pp;
int result;
int main() {
	x = 5;
	p = &x;
	pp = &p;
	**pp = 42;
	result = x + *p;
	return 0;
}
`, 84)
}

func TestCharTruncationOnStore(t *testing.T) {
	checkBoth(t, `
char c;
int result;
int main() {
	c = 300;          // truncates to 44 in an 8-bit cell
	result = c;
	return 0;
}
`, 44)
}

func TestForWithoutClauses(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int i;
	i = 0;
	for (;;) {
		i = i + 1;
		if (i == 7) break;
	}
	result = i;
	return 0;
}
`, 7)
}

func TestNestedLoopsBreakContinue(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int i; int j; int s;
	s = 0;
	for (i = 0; i < 5; i = i + 1) {
		for (j = 0; j < 5; j = j + 1) {
			if (j == 3) break;       // inner break only
			if (i == 2) continue;    // inner continue only
			s = s + 1;
		}
	}
	result = s;   // 4 rows x 3 cols (row i==2 contributes 0)
	return 0;
}
`, 12)
}

func TestDanglingElse(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int a;
	a = 1;
	if (a)
		if (a > 5) result = 1;
		else result = 2;   // binds to the inner if
	return 0;
}
`, 2)
}

func TestDeepExpressionSpill(t *testing.T) {
	// Enough nesting to exhaust scratch registers and exercise the data-
	// stack spill path in both backends.
	checkBoth(t, `
int result;
int main() {
	int a;
	a = 2;
	result = ((((a+1)*(a+2))+((a+3)*(a+4)))+(((a+5)*(a+6))+((a+7)*(a+8))))
	       + ((((a+1)+(a+2))*((a+3)+(a+4)))+(((a+5)+(a+6))*((a+7)+(a+8))));
	return 0;
}
`, func() int32 {
		a := int32(2)
		return ((((a + 1) * (a + 2)) + ((a + 3) * (a + 4))) + (((a + 5) * (a + 6)) + ((a + 7) * (a + 8)))) +
			((((a + 1) + (a + 2)) * ((a + 3) + (a + 4))) + (((a + 5) + (a + 6)) * ((a + 7) + (a + 8))))
	}())
}

func TestManyLocalsSpillToFrame(t *testing.T) {
	// More scalar locals than allocatable registers: the extras live in
	// the frame and must still behave like variables.
	checkBoth(t, `
int result;
int main() {
	int a; int b; int c; int d; int e; int f; int g; int h;
	a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7; h = 8;
	a = a + h;
	h = h + a;
	result = a*1 + b*2 + c*3 + d*4 + e*5 + f*6 + g*7 + h*8;
	return 0;
}
`, 9*1+2*2+3*3+4*4+5*5+6*6+7*7+17*8)
}

func TestCharArrayLocal(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	char tmp[8];
	int i;
	for (i = 0; i < 8; i = i + 1) tmp[i] = 'a' + i;
	result = tmp[0] * 1000 + tmp[7];
	return 0;
}
`, 'a'*1000+'h')
}

func TestAssignmentAsValue(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int a; int b;
	b = (a = 5) + 1;
	result = a * 100 + b;
	return 0;
}
`, 506)
}

func TestRecursiveGCD(t *testing.T) {
	checkBoth(t, `
int result;
int gcd(int a, int b) {
	if (b == 0) return a;
	return gcd(b, a % b);
}
int main() {
	result = gcd(1071, 462) * 1000 + gcd(17, 5);
	return 0;
}
`, 21001)
}

func TestGlobalCharArrayString(t *testing.T) {
	checkBoth(t, `
char msg[12] = "abc";
int result;
int main() {
	result = msg[0] + msg[1] + msg[2] + msg[3];   // trailing NUL
	return 0;
}
`, 'a'+'b'+'c')
}

func TestSpillPathsUnderRegisterPressure(t *testing.T) {
	// Five scalar locals leave only four scratch registers on the RISC
	// target; the nested expression below then needs the data-stack
	// spill path in every operator family.
	checkBoth(t, `
int arr[4];
int result;
int f(int x) { return x + 1; }
int main() {
	int a; int b; int c; int d; int e;
	a = 1; b = 2; c = 3; d = 4; e = 5;
	arr[0] = 9;
	result = (a + (b * (c + (d * (e + (a * (b + (c * f(d)))))))))
	       + arr[(a + (b * (c + (d * e))))  & 3]
	       + (a * (b * (c * (d * e))))
	       + (e % 3);
	return 0;
}
`, func() int32 {
		arr := [4]int32{9, 0, 0, 0}
		a, b, c, d, e := int32(1), int32(2), int32(3), int32(4), int32(5)
		f := func(x int32) int32 { return x + 1 }
		return (a + (b * (c + (d * (e + (a * (b + (c * f(d))))))))) +
			arr[(a+(b*(c+(d*e))))&3] +
			(a * (b * (c * (d * e)))) +
			(e % 3)
	}())
}

func TestDeclWithCallInitializer(t *testing.T) {
	checkBoth(t, `
int result;
int seven() { return 7; }
int main() {
	int x = seven();
	int y = x + seven();
	result = x * 100 + y;
	return 0;
}
`, 714)
}

func TestNullPointerComparison(t *testing.T) {
	checkBoth(t, `
int x;
int *p;
int result;
int main() {
	p = 0;
	if (p == 0) result = 1;
	p = &x;
	if (p != 0) result = result + 10;
	return 0;
}
`, 11)
}

func TestCharEscapes(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	char *s;
	s = "a\tb\nc\\d\"e";
	result = '\n' * 1000000 + '\t' * 10000 + '\\' * 100 + s[1];
	return 0;
}
`, '\n'*1000000+'\t'*10000+'\\'*100+'\t')
}

func TestPointerArithVariants(t *testing.T) {
	checkBoth(t, `
int arr[8];
char cs[8];
int result;
int main() {
	int i;
	int *p;
	char *q;
	for (i = 0; i < 8; i = i + 1) { arr[i] = i * 10; cs[i] = 'a' + i; }
	p = arr + 3;        // ptr + int
	p = 1 + p;          // int + ptr
	p = p - 2;          // ptr - int
	q = cs + 5;
	result = *p + q[-1] + *(2 + arr);
	return 0;
}
`, 20+'e'+20)
}

func TestCharParamAndReturn(t *testing.T) {
	checkBoth(t, `
int result;
char upper(char c) {
	if (c >= 'a' && c <= 'z') return c - 32;
	return c;
}
int main() {
	result = upper('q') * 1000 + upper('Q');
	return 0;
}
`, 'Q'*1000+'Q')
}

func TestParserErrorMessages(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int", "expected name"},
		{"int a[0];", "must be positive"},
		{"int a[x];", "number literal"},
		{"int f(", "expected type"},
		{"int f() { if }", "expected \"(\""},
		{"int f() { while (1) }", "unexpected"},
		{"int f() { return 1 }", "expected \";\""},
		{"int f() {", "unterminated block"},
		{"void v; int main() { return 0; }", "void type"},
		{"int main() { char c; c = *c; }", "cannot dereference"},
		{"int main() { int a[2]; int b[2]; a[0] = a - b + 1; return 0; }", ""},
		{"int main() { int x; x = \"s\"; }", "cannot assign"},
		{"int main() { int *p; p = p + p; }", ""},
		{"int f(int a[3]) { return a[0]; } int main() { return 0; }", ""},
		{"/* unterminated", "unterminated comment"},
		{"int x = 099x;", "bad number"},
		{"int main() { 'ab'; }", "character literal"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if tc.want == "" {
			continue // just must not panic; may or may not error
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q: error %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	checkBoth(t, `
// line comment
int result; /* block
   comment spanning lines */
int main() {
	result = 5; // trailing
	/* inline */ result = result + 1;
	return 0;
}
`, 6)
}

func TestGlobalCommaDeclarations(t *testing.T) {
	checkBoth(t, `
int a = 1, b = 2, c;
int result;
int main() {
	c = 3;
	result = a + b * 10 + c * 100;
	return 0;
}
`, 321)
}

func TestLocalCommaDeclarations(t *testing.T) {
	checkBoth(t, `
int result;
int main() {
	int a = 4, b = 5, c = a + b;
	result = c * 10 + a;
	return 0;
}
`, 94)
}
