package cc

import "fmt"

// Parse builds the AST for a MiniC translation unit and runs semantic
// analysis (name resolution and type checking).
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks}
	prog, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	if err := check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type cparser struct {
	toks []token
	pos  int
}

func (p *cparser) cur() token  { return p.toks[p.pos] }
func (p *cparser) line() int   { return p.cur().line }
func (p *cparser) advance()    { p.pos++ }
func (p *cparser) atEOF() bool { return p.cur().kind == tEOF }

func (p *cparser) isPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *cparser) accept(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *cparser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return errf(p.line(), "expected %q, got %q", s, p.cur().text)
}

func (p *cparser) isKeyword(s string) bool {
	return p.cur().kind == tKeyword && p.cur().text == s
}

func (p *cparser) acceptKeyword(s string) bool {
	if p.isKeyword(s) {
		p.advance()
		return true
	}
	return false
}

// parseUnit parses a sequence of global declarations and functions.
func (p *cparser) parseUnit() (*Program, error) {
	prog := &Program{}
	for !p.atEOF() {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		name, ty, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			fn, err := p.parseFunc(name, ty)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		// Global variable(s).
		for {
			g := &Symbol{Name: name, Kind: SymGlobal, Type: ty, Line: p.line()}
			if p.accept("=") {
				if p.cur().kind == tString && ty.Kind == TypeArray && ty.Elem.Kind == TypeChar {
					g.InitStr = p.cur().text
					p.advance()
				} else {
					e, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					g.Init = e
				}
			}
			prog.Globals = append(prog.Globals, g)
			if p.accept(",") {
				name, ty, err = p.parseDeclarator(base)
				if err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// parseBaseType parses "int", "char", or "void".
func (p *cparser) parseBaseType() (*Type, error) {
	switch {
	case p.acceptKeyword("int"):
		return tyInt, nil
	case p.acceptKeyword("char"):
		return tyChar, nil
	case p.acceptKeyword("void"):
		return tyVoid, nil
	}
	return nil, errf(p.line(), "expected type, got %q", p.cur().text)
}

// parseDeclarator parses "*"* name ("[" n "]")?.
func (p *cparser) parseDeclarator(base *Type) (string, *Type, error) {
	ty := base
	for p.accept("*") {
		ty = ptrTo(ty)
	}
	if p.cur().kind != tIdent {
		return "", nil, errf(p.line(), "expected name, got %q", p.cur().text)
	}
	name := p.cur().text
	p.advance()
	if p.accept("[") {
		if p.cur().kind != tNumber {
			return "", nil, errf(p.line(), "array size must be a number literal")
		}
		n := int(p.cur().num)
		if n <= 0 {
			return "", nil, errf(p.line(), "array size must be positive")
		}
		p.advance()
		if err := p.expect("]"); err != nil {
			return "", nil, err
		}
		ty = &Type{Kind: TypeArray, Elem: ty, Len: n}
	}
	return name, ty, nil
}

func (p *cparser) parseFunc(name string, ret *Type) (*Symbol, error) {
	fn := &Symbol{Name: name, Kind: SymFunc, Type: ret, Line: p.line()}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		if p.acceptKeyword("void") {
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			for i := 0; ; i++ {
				base, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				pname, pty, err := p.parseDeclarator(base)
				if err != nil {
					return nil, err
				}
				if pty.Kind == TypeArray { // arrays decay in parameters
					pty = ptrTo(pty.Elem)
				}
				fn.Params = append(fn.Params, &Symbol{
					Name: pname, Kind: SymParam, Type: pty, ParamSlot: i, Line: p.line(),
				})
				if p.accept(",") {
					continue
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	if p.accept(";") {
		return fn, nil // prototype: body stays nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *cparser) parseBlock() (*Stmt, error) {
	line := p.line()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &Stmt{Kind: StmtBlock, Line: line}
	for !p.accept("}") {
		if p.atEOF() {
			return nil, errf(line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Body = append(blk.Body, s)
	}
	return blk, nil
}

func (p *cparser) parseStmt() (*Stmt, error) {
	line := p.line()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()

	case p.isKeyword("int") || p.isKeyword("char"):
		base, _ := p.parseBaseType()
		blk := &Stmt{Kind: StmtGroup, Line: line}
		for {
			name, ty, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			d := &Stmt{Kind: StmtDecl, Line: line, Decl: &Symbol{
				Name: name, Kind: SymLocal, Type: ty, Line: line,
			}}
			if p.accept("=") {
				e, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d.DeclInit = e
			}
			blk.Body = append(blk.Body, d)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if len(blk.Body) == 1 {
			return blk.Body[0], nil
		}
		return blk, nil

	case p.acceptKeyword("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtIf, Line: line, Expr: cond, Then: then}
		if p.acceptKeyword("else") {
			s.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil

	case p.acceptKeyword("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtWhile, Line: line, Expr: cond, Then: body}, nil

	case p.acceptKeyword("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtFor, Line: line}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &Stmt{Kind: StmtExpr, Line: line, Expr: e}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(";") {
			var err error
			s.Cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Post = &Stmt{Kind: StmtExpr, Line: line, Expr: e}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Then = body
		return s, nil

	case p.acceptKeyword("return"):
		s := &Stmt{Kind: StmtReturn, Line: line}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Expr = e
		}
		return s, p.expect(";")

	case p.acceptKeyword("break"):
		return &Stmt{Kind: StmtBreak, Line: line}, p.expect(";")

	case p.acceptKeyword("continue"):
		return &Stmt{Kind: StmtContinue, Line: line}, p.expect(";")

	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtExpr, Line: line, Expr: e}, p.expect(";")
	}
}

// Expression grammar, standard C precedence (no ?: or comma operator).

func (p *cparser) parseExpr() (*Expr, error) { return p.parseAssign() }

func (p *cparser) parseAssign() (*Expr, error) {
	lhs, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="} {
		if p.isPunct(op) {
			line := p.line()
			p.advance()
			rhs, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprAssign, Op: op, X: lhs, Y: rhs, Line: line}, nil
		}
	}
	return lhs, nil
}

// binary operator precedence levels, loosest first.
var cBinOps = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *cparser) parseBinary(level int) (*Expr, error) {
	if level == len(cBinOps) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range cBinOps[level] {
			if p.isPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return x, nil
		}
		line := p.line()
		p.advance()
		y, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &Expr{Kind: ExprBinary, Op: matched, X: x, Y: y, Line: line}
	}
}

func (p *cparser) parseUnary() (*Expr, error) {
	line := p.line()
	for _, op := range []string{"-", "!", "~", "*", "&"} {
		if p.isPunct(op) {
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprUnary, Op: op, X: x, Line: line}, nil
		}
	}
	if p.isPunct("++") || p.isPunct("--") {
		return nil, errf(line, "MiniC has no ++/--; write x = x + 1")
	}
	return p.parsePostfix()
}

func (p *cparser) parsePostfix() (*Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Expr{Kind: ExprIndex, X: x, Y: idx, Line: x.Line}
		case p.isPunct("(") && x.Kind == ExprIdent:
			p.advance()
			call := &Expr{Kind: ExprCall, Name: x.Name, Line: x.Line}
			if !p.accept(")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(",") {
						continue
					}
					if err := p.expect(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			x = call
		case p.isPunct("++") || p.isPunct("--"):
			return nil, errf(p.line(), "MiniC has no ++/--; write x = x + 1")
		default:
			return x, nil
		}
	}
}

func (p *cparser) parsePrimary() (*Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.advance()
		return &Expr{Kind: ExprIntLit, Num: t.num, Line: t.line}, nil
	case tChar:
		p.advance()
		return &Expr{Kind: ExprCharLit, Num: t.num, Line: t.line}, nil
	case tString:
		p.advance()
		return &Expr{Kind: ExprStrLit, Str: t.text, Line: t.line}, nil
	case tIdent:
		p.advance()
		return &Expr{Kind: ExprIdent, Name: t.text, Line: t.line}, nil
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, errf(t.line, "unexpected %q in expression", tokenText(t))
}

func tokenText(t token) string {
	if t.kind == tEOF {
		return "end of file"
	}
	if t.text != "" {
		return t.text
	}
	return fmt.Sprintf("%d", t.num)
}
