// Package cc implements MiniC, the small C dialect used to recreate the
// paper's benchmark programs, with code generators for both the RISC I
// target and the CISC baseline. The paper compiled C with a simple
// portable compiler (PCC); MiniC's generators follow the same strategy —
// straightforward per-statement code, registers for scalar locals, no
// global optimization — so the relative code-size and instruction-count
// comparisons carry over.
//
// The language: int (32-bit signed) and char (8-bit unsigned) types,
// pointers and one-dimensional arrays, functions, if/else, while, for,
// break/continue/return, the usual C expression operators (including
// assignment, &&/|| with short-circuit, comparisons, shifts, * / %), and
// string literals. No structs, typedefs, floating point, or preprocessor.
package cc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tChar
	tPunct   // operators and separators
	tKeyword // int, char, if, else, while, for, return, break, continue, void
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

// multi-character operators, longest first so maximal munch works.
var punct2 = []string{
	"<<=", ">>=", // reserved; rejected by the parser but lexed whole
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

// Error is a compiler diagnostic with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}

func (l *lexer) peekByte(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peekByte(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekByte(1) == '*':
			start := l.line
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return token{}, errf(start, "unterminated comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	switch {
	case isLetter(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		k := tIdent
		if keywords[text] {
			k = tKeyword
		}
		return token{kind: k, text: text, line: l.line}, nil

	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		var v int64
		var err error
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			v, err = strconv.ParseInt(text[2:], 16, 64)
		} else {
			v, err = strconv.ParseInt(text, 10, 64)
		}
		if err != nil {
			return token{}, errf(l.line, "bad number %q", text)
		}
		return token{kind: tNumber, text: text, num: v, line: l.line}, nil

	case c == '"':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) || l.src[l.pos] == '\n' {
				return token{}, errf(l.line, "unterminated string")
			}
			if l.src[l.pos] == '"' {
				l.pos++
				break
			}
			ch, err := l.scanCharInner()
			if err != nil {
				return token{}, err
			}
			sb.WriteByte(ch)
		}
		return token{kind: tString, text: sb.String(), line: l.line}, nil

	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return token{}, errf(l.line, "unterminated character literal")
		}
		ch, err := l.scanCharInner()
		if err != nil {
			return token{}, err
		}
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return token{}, errf(l.line, "unterminated character literal")
		}
		l.pos++
		return token{kind: tChar, num: int64(ch), line: l.line}, nil

	default:
		for _, op := range punct2 {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tPunct, text: op, line: l.line}, nil
			}
		}
		l.pos++
		return token{kind: tPunct, text: string(c), line: l.line}, nil
	}
}

func (l *lexer) scanCharInner() (byte, error) {
	c := l.src[l.pos]
	if c != '\\' {
		l.pos++
		return c, nil
	}
	if l.pos+1 >= len(l.src) {
		return 0, errf(l.line, "bad escape")
	}
	e := l.src[l.pos+1]
	l.pos += 2
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case '0':
		return 0, nil
	case 'r':
		return '\r', nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, errf(l.line, "unknown escape \\%c", e)
}

func isLetter(r rune) bool    { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
