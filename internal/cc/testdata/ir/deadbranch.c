int result;
int main() {
	int x;
	x = 6 * 7;
	if (x > 100) {
		result = 1 / 0;
	} else {
		result = x - 0;
	}
	return 0;
}
