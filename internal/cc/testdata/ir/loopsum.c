int result;
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) {
		s = s + i * 8;
	}
	result = s;
	return 0;
}
