char buf[8];
int result;
int put(int i, int v) {
	buf[i] = v + 0;
	return buf[i];
}
int main() {
	result = put(3, 200) * 2 / 2;
	return 0;
}
