package cc

import (
	"risc1/internal/asm"
	"risc1/internal/cc/ir"
	"risc1/internal/cc/opt"
	"risc1/internal/rv32"
	"risc1/internal/vax"
)

// Options selects how a MiniC compilation runs. The same machine-
// independent pipeline feeds both code generators, so Opt means the
// same thing for either target.
type Options struct {
	// Opt is the optimization level: 0 compiles the naive lowering
	// as-is, 1 runs the full machine-independent pass pipeline.
	Opt int
	// DelaySlots enables the RISC assembler's delayed-jump optimizer,
	// which fills branch shadow slots as the paper's tool chain did.
	// Ignored by the CISC target.
	DelaySlots bool
}

// DefaultOptions is the configuration the tools use unless told
// otherwise: optimized IR with filled delay slots.
var DefaultOptions = Options{Opt: 1, DelaySlots: true}

// Frontend runs the machine-independent half of the compiler: parse,
// type check, lower to IR, and optimize at the given level. Both code
// generators consume its output. The returned stats report how many
// rewrites each optimization pass performed.
func Frontend(src string, optLevel int) (*ir.Program, []opt.Stat, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	prog, err := Lower(ast)
	if err != nil {
		return nil, nil, err
	}
	stats := opt.Optimize(prog, optLevel)
	return prog, stats, nil
}

// CompileRISC compiles MiniC source to an assembled RISC I program.
// The generated assembly text is returned alongside the program for
// listings and debugging, and the pass statistics for reports.
func CompileRISC(src string, o Options) (*asm.Program, string, []opt.Stat, error) {
	prog, stats, err := Frontend(src, o.Opt)
	if err != nil {
		return nil, "", nil, err
	}
	text, err := GenRISC(prog)
	if err != nil {
		return nil, "", stats, err
	}
	p, err := asm.Assemble(text, asm.Options{Optimize: o.DelaySlots})
	if err != nil {
		return nil, text, stats, err
	}
	return p, text, stats, nil
}

// CompileVAX compiles MiniC source to an assembled program for the
// CISC baseline.
func CompileVAX(src string, o Options) (*vax.Program, string, []opt.Stat, error) {
	prog, stats, err := Frontend(src, o.Opt)
	if err != nil {
		return nil, "", nil, err
	}
	text, err := GenVAX(prog)
	if err != nil {
		return nil, "", stats, err
	}
	p, err := vax.Assemble(text)
	if err != nil {
		return nil, text, stats, err
	}
	return p, text, stats, nil
}

// CompileRV32 compiles MiniC source to an assembled program for the
// modern delay-slot-free RISC machine.
func CompileRV32(src string, o Options) (*rv32.Program, string, []opt.Stat, error) {
	prog, stats, err := Frontend(src, o.Opt)
	if err != nil {
		return nil, "", nil, err
	}
	text, err := GenRV32(prog)
	if err != nil {
		return nil, text, stats, err
	}
	p, err := rv32.Assemble(text)
	if err != nil {
		return nil, text, stats, err
	}
	return p, text, stats, nil
}

// NormalizeOptFlags rewrites the conventional -O0/-O1 spellings into
// the -opt=N form the flag package can parse, so tools accept both.
func NormalizeOptFlags(args []string) []string {
	out := make([]string, 0, len(args))
	for _, a := range args {
		switch a {
		case "-O0", "--O0":
			out = append(out, "-opt=0")
		case "-O1", "--O1":
			out = append(out, "-opt=1")
		default:
			out = append(out, a)
		}
	}
	return out
}
