package cc

import (
	"risc1/internal/asm"
	"risc1/internal/vax"
)

// CompileRISC compiles MiniC source to an assembled RISC I program. When
// optimize is set, the assembler's delayed-jump optimizer fills branch
// shadow slots, as the paper's tool chain did. The generated assembly
// text is returned alongside the program for listings and debugging.
func CompileRISC(src string, optimize bool) (*asm.Program, string, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, "", err
	}
	text, err := GenRISC(prog)
	if err != nil {
		return nil, "", err
	}
	p, err := asm.Assemble(text, asm.Options{Optimize: optimize})
	if err != nil {
		return nil, text, err
	}
	return p, text, nil
}

// CompileVAX compiles MiniC source to an assembled program for the CISC
// baseline.
func CompileVAX(src string) (*vax.Program, string, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, "", err
	}
	text, err := GenVAX(prog)
	if err != nil {
		return nil, "", err
	}
	p, err := vax.Assemble(text)
	if err != nil {
		return nil, text, err
	}
	return p, text, nil
}
