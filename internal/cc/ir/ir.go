// Package ir is the machine-independent intermediate representation
// shared by the MiniC code generators: a typed three-address code over
// basic blocks, lowered once from the checked AST. Both the RISC I and
// the CISC backend consume it, so every optimization expressed here
// benefits both targets equally — the precondition for a fair ISA
// comparison (see DESIGN.md section 9).
package ir

// Program is a lowered translation unit.
type Program struct {
	Funcs   []*Func
	Globals []*Var      // declaration order, drives data emission
	Strings []StringLit // interned string literals
}

// StringLit is one interned string literal and its data label.
type StringLit struct {
	Label string
	Value string
}

// VarKind distinguishes storage classes.
type VarKind uint8

const (
	VarGlobal VarKind = iota
	VarLocal
	VarParam
)

// Var is a named storage cell: a global, a local or a parameter. The
// backends decide where each one lives (register, frame, absolute);
// the IR only records what lowering knows about it.
type Var struct {
	Name string
	Kind VarKind

	Scalar bool // fits a register (int, char, pointer)
	Char   bool // one-byte storage cell: stores truncate, loads zero-extend
	Size   int  // storage size in bytes (arrays; scalars are 4 or 1)

	// Addressed marks scalars whose address is taken: they must live in
	// memory, never in a register.
	Addressed bool

	ParamSlot int // parameter position for VarParam

	// Global initializers.
	Init    int32
	InitStr string
}

// Func is one function: parameters, locals and a basic-block CFG.
// Blocks[0] is the entry. Temporaries are numbered 0..NTemps-1.
type Func struct {
	Name   string
	Params []*Var
	Locals []*Var // flattened declarations, arrays included
	Blocks []*Block
	NTemps int
	Line   int
}

// NewTemp allocates a fresh temporary and returns its value.
func (f *Func) NewTemp() Value {
	t := f.NTemps
	f.NTemps++
	return Temp(t)
}

// Block is a basic block: straight-line instructions closed by exactly
// one terminator. Name is assigned at creation and stable across
// passes, so IR dumps diff cleanly.
type Block struct {
	Name   string
	Instrs []Instr
	Term   Term
}

// ValKind tags a Value.
type ValKind uint8

const (
	ValInvalid ValKind = iota
	ValConst           // a 32-bit constant
	ValTemp            // a temporary
	ValVar             // a scalar variable (read as operand, written as Dst)
)

// Value is an operand or an instruction destination.
type Value struct {
	Kind ValKind
	C    int32 // ValConst
	Temp int   // ValTemp
	Var  *Var  // ValVar
}

// Const makes a constant value.
func Const(c int32) Value { return Value{Kind: ValConst, C: c} }

// Temp makes a temporary reference.
func Temp(t int) Value { return Value{Kind: ValTemp, Temp: t} }

// VarRef makes a scalar-variable reference.
func VarRef(v *Var) Value { return Value{Kind: ValVar, Var: v} }

// Valid reports whether the value is present (OpStore and void calls
// have no destination; TermReturn may carry no value).
func (v Value) Valid() bool { return v.Kind != ValInvalid }

// Equal reports whether two values name the same constant, temporary
// or variable. Two reads of the same variable in one instruction see
// the same value, so VarRef equality is sound for simplification.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case ValConst:
		return v.C == o.C
	case ValTemp:
		return v.Temp == o.Temp
	case ValVar:
		return v.Var == o.Var
	}
	return true
}

// Op enumerates instruction operators.
type Op uint8

const (
	OpCopy    Op = iota // Dst = A
	OpNeg               // Dst = -A
	OpCom               // Dst = ^A
	OpAdd               // Dst = A + B
	OpSub               // Dst = A - B
	OpMul               // Dst = A * B
	OpDiv               // Dst = A / B (C truncation; divide by zero faults at run time)
	OpMod               // Dst = A % B
	OpAnd               // Dst = A & B
	OpOr                // Dst = A | B
	OpXor               // Dst = A ^ B
	OpShl               // Dst = A << B
	OpShr               // Dst = A >> B (arithmetic; MiniC ints are signed)
	OpAddr              // Dst = address of Var (memory-resident variables only)
	OpAddrStr           // Dst = address of the string literal Label
	OpLoad              // Dst = Mem[A]; Size 1 zero-extends, Size 4 is a word
	OpStore             // Mem[A] = B; Size 1 truncates, Size 4 is a word
	OpCall              // Dst (optional) = Label(Args...)
)

// IsBinary reports whether the op has two value operands (A and B).
func (o Op) IsBinary() bool { return o >= OpAdd && o <= OpShr }

// Instr is one three-address instruction.
type Instr struct {
	Op    Op
	Dst   Value // ValTemp or ValVar; invalid for OpStore and void OpCall
	A, B  Value
	Var   *Var    // OpAddr
	Label string  // OpCall callee, OpAddrStr label
	Args  []Value // OpCall
	Size  int     // OpLoad / OpStore: 1 or 4
	Line  int
}

// Operands returns pointers to every value the instruction reads, so
// passes can rewrite uses in place.
func (i *Instr) Operands() []*Value {
	var out []*Value
	if i.A.Valid() {
		out = append(out, &i.A)
	}
	if i.B.Valid() {
		out = append(out, &i.B)
	}
	for k := range i.Args {
		out = append(out, &i.Args[k])
	}
	return out
}

// TermKind tags a terminator.
type TermKind uint8

const (
	TermJump TermKind = iota
	TermBranch
	TermReturn
)

// Rel is a branch relation.
type Rel uint8

const (
	RelEq Rel = iota
	RelNe
	RelLt
	RelLe
	RelGt
	RelGe
)

// Negate returns the opposite relation.
func (r Rel) Negate() Rel {
	switch r {
	case RelEq:
		return RelNe
	case RelNe:
		return RelEq
	case RelLt:
		return RelGe
	case RelLe:
		return RelGt
	case RelGt:
		return RelLe
	default:
		return RelLt
	}
}

// Eval evaluates the relation on two known constants.
func (r Rel) Eval(a, b int32) bool {
	switch r {
	case RelEq:
		return a == b
	case RelNe:
		return a != b
	case RelLt:
		return a < b
	case RelLe:
		return a <= b
	case RelGt:
		return a > b
	default:
		return a >= b
	}
}

// Term closes a block: an unconditional jump, a fused compare-and-
// branch, or a return.
type Term struct {
	Kind       TermKind
	Rel        Rel
	A, B       Value  // TermBranch operands
	Then, Else *Block // Branch targets; Jump uses Then
	Ret        Value  // TermReturn value; invalid means return 0 / void
	Line       int
}

// Operands returns pointers to every value the terminator reads.
func (t *Term) Operands() []*Value {
	var out []*Value
	switch t.Kind {
	case TermBranch:
		out = append(out, &t.A, &t.B)
	case TermReturn:
		if t.Ret.Valid() {
			out = append(out, &t.Ret)
		}
	}
	return out
}

// Succs returns the terminator's successor blocks.
func (t *Term) Succs() []*Block {
	switch t.Kind {
	case TermJump:
		return []*Block{t.Then}
	case TermBranch:
		return []*Block{t.Then, t.Else}
	}
	return nil
}

// Log2 returns the shift amount for a power of two (8 → 3). It is the
// shared helper both lowering and the strength-reduction pass use;
// PowerOfTwo guards it.
func Log2(n int) int {
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// PowerOfTwo reports whether n is a positive power of two.
func PowerOfTwo(n int32) bool { return n > 0 && n&(n-1) == 0 }
