package ir

import (
	"fmt"
	"strings"
)

// opSym maps binary ops to their surface syntax in dumps.
var opSym = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
}

// relSym maps relations to their surface syntax.
var relSym = map[Rel]string{
	RelEq: "==", RelNe: "!=", RelLt: "<", RelLe: "<=", RelGt: ">", RelGe: ">=",
}

func (v Value) String() string {
	switch v.Kind {
	case ValConst:
		return fmt.Sprintf("%d", v.C)
	case ValTemp:
		return fmt.Sprintf("t%d", v.Temp)
	case ValVar:
		return v.Var.Name
	}
	return "?"
}

func (i *Instr) String() string {
	switch i.Op {
	case OpCopy:
		return fmt.Sprintf("%s = %s", i.Dst, i.A)
	case OpNeg:
		return fmt.Sprintf("%s = -%s", i.Dst, i.A)
	case OpCom:
		return fmt.Sprintf("%s = ~%s", i.Dst, i.A)
	case OpAddr:
		return fmt.Sprintf("%s = &%s", i.Dst, i.Var.Name)
	case OpAddrStr:
		return fmt.Sprintf("%s = &%s", i.Dst, i.Label)
	case OpLoad:
		return fmt.Sprintf("%s = load.%d [%s]", i.Dst, i.Size, i.A)
	case OpStore:
		return fmt.Sprintf("store.%d [%s], %s", i.Size, i.A, i.B)
	case OpCall:
		args := make([]string, len(i.Args))
		for k, a := range i.Args {
			args[k] = a.String()
		}
		call := fmt.Sprintf("call %s(%s)", i.Label, strings.Join(args, ", "))
		if i.Dst.Valid() {
			return fmt.Sprintf("%s = %s", i.Dst, call)
		}
		return call
	default:
		return fmt.Sprintf("%s = %s %s %s", i.Dst, i.A, opSym[i.Op], i.B)
	}
}

func (t *Term) String() string {
	switch t.Kind {
	case TermJump:
		return fmt.Sprintf("jump %s", t.Then.Name)
	case TermBranch:
		return fmt.Sprintf("branch %s %s %s, %s, %s",
			t.A, relSym[t.Rel], t.B, t.Then.Name, t.Else.Name)
	default:
		if t.Ret.Valid() {
			return fmt.Sprintf("ret %s", t.Ret)
		}
		return "ret"
	}
}

// Dump renders the function in the stable textual form the -emit-ir
// flag and the golden tests use.
func (f *Func) Dump() string {
	var b strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Name
	}
	fmt.Fprintf(&b, "func %s(%s) {\n", f.Name, strings.Join(params, ", "))
	for _, bl := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", bl.Name)
		for k := range bl.Instrs {
			fmt.Fprintf(&b, "  %s\n", bl.Instrs[k].String())
		}
		fmt.Fprintf(&b, "  %s\n", bl.Term.String())
	}
	b.WriteString("}\n")
	return b.String()
}

// Dump renders every function in the program.
func (p *Program) Dump() string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.Dump())
	}
	return b.String()
}
