// Package progen generates random well-typed MiniC programs together
// with their expected results, computed by a Go mirror with int32
// semantics. It is the shared corpus generator behind the compiler's
// differential fuzz tests (internal/cc) and the batch-execution
// engine's cross-job leakage test (internal/exec): every generated
// program stores its value in the global "result" and must produce the
// same word on both simulators at both optimization levels.
//
// The package depends on nothing in the tool chain, so test packages on
// either side of the compiler/engine boundary can import it freely.
package progen

import (
	"fmt"
	"math/rand"
)

// expr is a generated expression and its Go-evaluated value.
type expr struct {
	src string
	val int32
}

// genExpr builds a random expression over the variables in vars. Every
// operation mirrors MiniC's int32 semantics exactly (wrap-around
// arithmetic, shifts by literal counts, division by nonzero literals).
func genExpr(r *rand.Rand, depth int, vars map[string]int32) expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0: // variable
			names := []string{"a", "b", "c"}
			n := names[r.Intn(len(names))]
			return expr{src: n, val: vars[n]}
		default: // literal
			v := int32(r.Intn(2001) - 1000)
			return expr{src: fmt.Sprintf("(%d)", v), val: v}
		}
	}
	x := genExpr(r, depth-1, vars)
	// Unary sometimes.
	if r.Intn(6) == 0 {
		switch r.Intn(3) {
		case 0:
			return expr{src: "(-" + x.src + ")", val: -x.val}
		case 1:
			return expr{src: "(~" + x.src + ")", val: ^x.val}
		default:
			v := int32(0)
			if x.val == 0 {
				v = 1
			}
			return expr{src: "(!" + x.src + ")", val: v}
		}
	}
	y := genExpr(r, depth-1, vars)
	b := func(op string, v int32) expr {
		return expr{src: "(" + x.src + op + y.src + ")", val: v}
	}
	boolVal := func(cond bool) int32 {
		if cond {
			return 1
		}
		return 0
	}
	switch r.Intn(16) {
	case 0:
		return b("+", x.val+y.val)
	case 1:
		return b("-", x.val-y.val)
	case 2:
		return b("*", x.val*y.val)
	case 3: // division by a nonzero literal
		d := int32(r.Intn(40) + 1)
		if r.Intn(2) == 0 {
			d = -d
		}
		return expr{src: fmt.Sprintf("(%s/(%d))", x.src, d), val: x.val / d}
	case 4: // modulo by a nonzero literal
		d := int32(r.Intn(40) + 1)
		return expr{src: fmt.Sprintf("(%s%%(%d))", x.src, d), val: x.val % d}
	case 5:
		return b("&", x.val&y.val)
	case 6:
		return b("|", x.val|y.val)
	case 7:
		return b("^", x.val^y.val)
	case 8: // shift by a literal 0..15
		sh := r.Intn(16)
		return expr{src: fmt.Sprintf("(%s<<%d)", x.src, sh), val: x.val << uint(sh)}
	case 9:
		sh := r.Intn(16)
		return expr{src: fmt.Sprintf("(%s>>%d)", x.src, sh), val: x.val >> uint(sh)}
	case 10:
		return b("==", boolVal(x.val == y.val))
	case 11:
		return b("!=", boolVal(x.val != y.val))
	case 12:
		return b("<", boolVal(x.val < y.val))
	case 13:
		return b(">=", boolVal(x.val >= y.val))
	case 14:
		return b("&&", boolVal(x.val != 0 && y.val != 0))
	default:
		return b("||", boolVal(x.val != 0 || y.val != 0))
	}
}

// ExprProgram generates a straight-line program computing one random
// expression over three initialized variables, sometimes routed through
// a function call to exercise the parameter-passing conventions.
func ExprProgram(r *rand.Rand) (src string, want int32) {
	vars := map[string]int32{
		"a": int32(r.Intn(4001) - 2000),
		"b": int32(r.Intn(4001) - 2000),
		"c": int32(r.Intn(200) - 100),
	}
	e := genExpr(r, 4, vars)
	exprSrc := e.src
	if r.Intn(2) == 0 {
		exprSrc = "pass(" + exprSrc + ")"
	}
	src = fmt.Sprintf(`
int result;
int pass(int v) { return v; }
int main() {
	int a; int b; int c;
	a = %d; b = %d; c = %d;
	result = %s;
	return 0;
}
`, vars["a"], vars["b"], vars["c"], exprSrc)
	return src, e.val
}

// LoopProgram generates a randomized loop/condition state machine: a
// small iteration whose Go mirror must agree after a bounded number of
// steps. It exercises control flow, division and comparison chains.
func LoopProgram(r *rand.Rand) (src string, want int32) {
	mul := int32(r.Intn(9) - 4)
	add := int32(r.Intn(100) - 50)
	mask := int32(r.Intn(255) + 1)
	iters := int32(r.Intn(50) + 1)
	src = fmt.Sprintf(`
int result;
int main() {
	int i; int s;
	s = 1;
	for (i = 0; i < %d; i = i + 1) {
		s = s * (%d) + (%d);
		if (s & %d) { s = s - i; } else { s = s + i; }
		while (s > 100000) { s = s / 3; }
		while (s < -100000) { s = s / 5; }
	}
	result = s;
	return 0;
}
`, iters, mul, add, mask)
	s := int32(1)
	for i := int32(0); i < iters; i++ {
		s = s*mul + add
		if s&mask != 0 {
			s -= i
		} else {
			s += i
		}
		for s > 100000 {
			s = s / 3
		}
		for s < -100000 {
			s = s / 5
		}
	}
	return src, s
}

// CallProgram generates a recursive accumulator over a random branch
// structure — a call-heavy program that moves the register-window
// machinery (spills and refills) so cross-job leakage through the
// save-stack region would surface.
func CallProgram(r *rand.Rand) (src string, want int32) {
	depth := int32(r.Intn(6) + 3)
	step := int32(r.Intn(20) - 10)
	seed := int32(r.Intn(100))
	src = fmt.Sprintf(`
int result;
int walk(int n, int acc) {
	if (n == 0) return acc;
	if (acc & 1) return walk(n - 1, acc * 3 + (%d));
	return walk(n - 1, acc + n * (%d));
}
int main() {
	result = walk(%d, %d);
	return 0;
}
`, step, step, depth, seed)
	var walk func(n, acc int32) int32
	walk = func(n, acc int32) int32 {
		if n == 0 {
			return acc
		}
		if acc&1 != 0 {
			return walk(n-1, acc*3+step)
		}
		return walk(n-1, acc+n*step)
	}
	return src, walk(depth, seed)
}

// Program generates one program of a random kind — the entry point for
// corpus-style consumers that just want variety.
func Program(r *rand.Rand) (src string, want int32) {
	switch r.Intn(3) {
	case 0:
		return ExprProgram(r)
	case 1:
		return LoopProgram(r)
	default:
		return CallProgram(r)
	}
}
