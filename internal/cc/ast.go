package cc

// Type is a MiniC type.
type Type struct {
	Kind TypeKind
	Elem *Type // for Ptr and Array
	Len  int   // for Array
}

// TypeKind enumerates MiniC's type constructors.
type TypeKind uint8

const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeChar
	TypePtr
	TypeArray
)

var (
	tyVoid = &Type{Kind: TypeVoid}
	tyInt  = &Type{Kind: TypeInt}
	tyChar = &Type{Kind: TypeChar}
)

func ptrTo(elem *Type) *Type { return &Type{Kind: TypePtr, Elem: elem} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeInt, TypePtr:
		return 4
	case TypeArray:
		return t.Len * t.Elem.Size()
	}
	return 0
}

// IsScalar reports whether values of the type fit in one register.
func (t *Type) IsScalar() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypePtr
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

func (t *Type) equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	if t.Kind == TypePtr || t.Kind == TypeArray {
		return t.Elem.equal(o.Elem)
	}
	return true
}

// Expr is an expression node. Type is filled by the checker.
type Expr struct {
	Kind ExprKind
	Line int
	Type *Type

	Op       string  // operator text for unary/binary/assign
	X, Y     *Expr   // operands
	Num      int64   // IntLit / CharLit
	Str      string  // StrLit
	Name     string  // Ident / Call callee
	Args     []*Expr // Call
	Sym      *Symbol // resolved identifier
	StrLabel string  // assigned data label for a string literal
}

// ExprKind enumerates expression node kinds.
type ExprKind uint8

const (
	ExprIntLit ExprKind = iota
	ExprCharLit
	ExprStrLit
	ExprIdent
	ExprUnary  // - ! ~ * &
	ExprBinary // arithmetic, comparison, logical
	ExprAssign // =, +=, ...
	ExprIndex  // X[Y]
	ExprCall
)

// Stmt is a statement node.
type Stmt struct {
	Kind StmtKind
	Line int

	Expr       *Expr   // ExprStmt, Return (may be nil), If/While cond
	Init, Post *Stmt   // For
	Cond       *Expr   // For
	Body       []*Stmt // Block
	Then, Else *Stmt   // If (Else may be nil); While/For body in Then
	Decl       *Symbol // LocalDecl
	DeclInit   *Expr   // LocalDecl initializer (may be nil)
}

// StmtKind enumerates statement node kinds.
type StmtKind uint8

const (
	StmtExpr StmtKind = iota
	StmtBlock
	StmtGroup // like a block, but introduces no scope (multi-declarations)
	StmtIf
	StmtWhile
	StmtFor
	StmtReturn
	StmtBreak
	StmtContinue
	StmtDecl
)

// SymKind distinguishes storage classes.
type SymKind uint8

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
)

// Symbol is a declared name.
type Symbol struct {
	Name string
	Kind SymKind
	Type *Type
	Line int

	// For functions.
	Params []*Symbol
	Locals []*Symbol // every block-scoped declaration, flattened
	Body   *Stmt     // nil for (unused) declarations

	// Storage assignment, filled by the code generators:
	// for SymLocal/SymParam, either a register number or a frame offset.
	Reg       int // allocated register, or -1
	FrameOff  int // byte offset in the frame when Reg < 0 or for arrays
	ParamSlot int // parameter position, for SymParam

	// For globals: initial scalar value or string initializer.
	Init    *Expr
	InitStr string
}

// Program is a checked MiniC translation unit.
type Program struct {
	Globals []*Symbol
	Funcs   []*Symbol
	Strings []stringLit // interned string literals
}

type stringLit struct {
	label string
	value string
}

// Func looks up a function by name.
func (p *Program) Func(name string) *Symbol {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
