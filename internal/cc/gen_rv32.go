package cc

import (
	"fmt"
	"strings"

	"risc1/internal/cc/ir"
	"risc1/internal/rv32"
)

// Modern-RISC (RV32I+M subset) code generation conventions:
//
//   - x0 (zero): hardwired zero
//   - ra: return address, saved in the frame by non-leaf functions
//   - sp: stack pointer, initialized by the bootstrap
//   - t0, t1: code-generator scratch (spill partner, address formation)
//   - t2..t6: temporaries, assigned by the shared linear-scan allocator;
//     caller-saved, so temporaries that live across a call get frame
//     slots up front (spillAcrossCalls) — the software cost the paper's
//     register windows avoid
//   - s1..s7: register variables and parameter homes, callee-saved via
//     prologue/epilogue stores — the conventional-machine answer to the
//     windows' free save/restore
//   - a0..a5: arguments; a0 carries return values
//
// The generator consumes the same IR as the other two backends. Unlike
// RISC I there are no delay slots to fill (taken branches pay a refetch
// bubble in the cost model instead) and multiply/divide are native
// M-extension instructions rather than software routines.
const (
	rv32StackTop  = 0x80000 // initial sp, matching the RISC I bootstrap
	rv32Scratch1  = 5       // t0
	rv32Scratch2  = 6       // t1
	rv32ArgBase   = 10      // a0
	rv32MaxParams = 6       // a0..a5
)

// rv32VarRegs are the callee-saved register-variable homes (s1..s7; s0
// is left out of the pool, keeping "fp" free for readers).
var rv32VarRegs = []int{9, 18, 19, 20, 21, 22, 23}

// rv32TempPool is the caller-saved allocator pool (t2..t6).
var rv32TempPool = []int{7, 28, 29, 30, 31}

// rn renders an architectural register number as its ABI name.
func rn(r int) string { return rv32.RegName(uint8(r)) }

// GenRV32 compiles a lowered (and possibly optimized) IR program to
// RV32 assembly text.
func GenRV32(prog *ir.Program) (string, error) {
	g := &mgen{prog: prog}
	g.raw("# MiniC RV32 output\n")
	g.label("start")
	g.emit("li sp, %d", rv32StackTop)
	g.emit("call main")
	g.emit("ecall")
	for _, fn := range prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	g.emitData()
	return g.b.String(), nil
}

type mgen struct {
	prog *ir.Program
	b    strings.Builder

	fn        *ir.Func
	alloc     allocation
	varReg    map[*ir.Var]int // register-resident variables (s1..s7)
	frameOff  map[*ir.Var]int // memory-resident locals (sp-relative)
	frameMem  int             // bytes of arrays + addressed/overflow locals
	savedS    []int           // callee-saved registers this body uses
	frameSize int
	leaf      bool
}

func (g *mgen) raw(s string) { g.b.WriteString(s) }

func (g *mgen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *mgen) label(l string) { fmt.Fprintf(&g.b, "%s:\n", l) }

func (g *mgen) blockLabel(b *ir.Block) string {
	return fmt.Sprintf(".L%s_%s", g.fn.Name, b.Name)
}

// memChar mirrors the other backends: one-byte cells are truncating
// stores and zero-extending loads; register homes and parameters hold
// full words.
func (g *mgen) memChar(v *ir.Var) bool {
	_, inReg := g.varReg[v]
	return v.Char && !inReg && v.Kind != ir.VarParam
}

func (g *mgen) loadMn(char bool) string {
	if char {
		return "lbu"
	}
	return "lw"
}

func (g *mgen) storeMn(char bool) string {
	if char {
		return "sb"
	}
	return "sw"
}

func (g *mgen) genFunc(fn *ir.Func) error {
	if len(fn.Params) > rv32MaxParams {
		return errf(fn.Line, "%q: the RV32 convention passes at most %d register parameters", fn.Name, rv32MaxParams)
	}
	g.fn = fn
	g.varReg = make(map[*ir.Var]int)
	g.frameOff = make(map[*ir.Var]int)
	g.savedS = nil

	g.leaf = true
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				g.leaf = false
			}
		}
	}

	// Storage assignment: parameters first (copied out of a0..a5 in the
	// prologue), then non-addressed scalar locals, into s1..s7; the rest
	// join the arrays in the frame.
	nreg := 0
	off := 0
	takeReg := func(v *ir.Var) bool {
		if nreg >= len(rv32VarRegs) {
			return false
		}
		r := rv32VarRegs[nreg]
		g.varReg[v] = r
		g.savedS = append(g.savedS, r)
		nreg++
		return true
	}
	for _, p := range fn.Params {
		if !p.Addressed && takeReg(p) {
			continue
		}
		g.frameOff[p] = off
		off += 4
	}
	for _, l := range fn.Locals {
		if l.Scalar && !l.Addressed && takeReg(l) {
			continue
		}
		g.frameOff[l] = off
		off += (l.Size + 3) &^ 3
	}
	g.frameMem = off

	g.alloc = allocateTemps(fn, rv32TempPool, true)
	g.frameSize = g.frameMem + 4*g.alloc.nSpills + 4*len(g.savedS)
	if !g.leaf {
		g.frameSize += 4
	}

	g.label(fn.Name)
	g.adjustSP(-g.frameSize)
	if !g.leaf {
		g.frameAccess("sw", 1, g.frameSize-4)
	}
	for i, s := range g.savedS {
		g.frameAccess("sw", s, g.sRegOff(i))
	}
	for _, p := range fn.Params {
		if r, ok := g.varReg[p]; ok {
			g.emit("mv %s, %s", rn(r), rn(rv32ArgBase+p.ParamSlot))
		} else {
			g.frameAccess("sw", rv32ArgBase+p.ParamSlot, g.frameOff[p])
		}
	}
	for i, b := range g.fn.Blocks {
		g.label(g.blockLabel(b))
		for k := range b.Instrs {
			if err := g.instr(&b.Instrs[k]); err != nil {
				return err
			}
		}
		var next *ir.Block
		if i+1 < len(g.fn.Blocks) {
			next = g.fn.Blocks[i+1]
		}
		g.term(&b.Term, next)
	}
	return nil
}

// adjustSP moves the stack pointer by delta bytes (t0 staging when the
// amount is out of immediate range).
func (g *mgen) adjustSP(delta int) {
	if delta == 0 {
		return
	}
	if imm12OK(int32(delta)) {
		g.emit("addi sp, sp, %d", delta)
		return
	}
	if delta < 0 {
		g.emit("li t0, %d", -delta)
		g.emit("sub sp, sp, t0")
	} else {
		g.emit("li t0, %d", delta)
		g.emit("add sp, sp, t0")
	}
}

// spillOff returns the sp-relative frame offset of a spill slot.
func (g *mgen) spillOff(slot int) int { return g.frameMem + 4*slot }

// sRegOff returns the frame offset of the i-th saved s-register.
func (g *mgen) sRegOff(i int) int { return g.frameMem + 4*g.alloc.nSpills + 4*i }

// imm12OK reports whether a constant fits the 12-bit immediate field.
func imm12OK(c int32) bool { return c >= -2048 && c <= 2047 }

// frameAccess emits a load or store of a frame cell, forming the
// address through t1 when the offset exceeds the immediate field.
func (g *mgen) frameAccess(mn string, reg, off int) {
	if imm12OK(int32(off)) {
		g.emit("%s %s, %d(sp)", mn, rn(reg), off)
		return
	}
	g.emit("li t1, %d", off)
	g.emit("add t1, t1, sp")
	g.emit("%s %s, 0(t1)", mn, rn(reg))
}

// regOf returns the register already holding a value, if any.
func (g *mgen) regOf(v ir.Value) (int, bool) {
	switch v.Kind {
	case ir.ValConst:
		if v.C == 0 {
			return 0, true
		}
	case ir.ValTemp:
		if l := g.alloc.loc[v.Temp]; l.reg >= 0 {
			return l.reg, true
		}
	case ir.ValVar:
		if r, ok := g.varReg[v.Var]; ok {
			return r, true
		}
	}
	return 0, false
}

// loadInto materializes a value in the given register.
func (g *mgen) loadInto(v ir.Value, rd int) {
	switch v.Kind {
	case ir.ValConst:
		g.emit("li %s, %d", rn(rd), v.C)
	case ir.ValTemp:
		if l := g.alloc.loc[v.Temp]; l.reg >= 0 {
			if l.reg != rd {
				g.emit("mv %s, %s", rn(rd), rn(l.reg))
			}
		} else {
			g.frameAccess("lw", rd, g.spillOff(l.slot))
		}
	case ir.ValVar:
		vr := v.Var
		if r, ok := g.varReg[vr]; ok {
			if r != rd {
				g.emit("mv %s, %s", rn(rd), rn(r))
			}
			return
		}
		if vr.Kind == ir.VarGlobal {
			g.emit("la %s, %s", rn(rd), vr.Name)
			g.emit("%s %s, 0(%s)", g.loadMn(vr.Char), rn(rd), rn(rd))
		} else {
			g.frameAccess(g.loadMn(g.memChar(vr)), rd, g.frameOff[vr])
		}
	}
}

// readVal returns a register holding the value, loading into the given
// scratch register when it has no home of its own.
func (g *mgen) readVal(v ir.Value, scratch int) int {
	if r, ok := g.regOf(v); ok {
		return r
	}
	g.loadInto(v, scratch)
	return scratch
}

// dstReg picks the register an instruction should compute into; store
// reports whether writeBack must follow.
func (g *mgen) dstReg(d ir.Value) (reg int, store bool) {
	if r, ok := g.regOf(d); ok && d.Kind != ir.ValConst {
		return r, false
	}
	return rv32Scratch1, true
}

// writeBack stores a computed value to a spilled temporary or a
// memory-resident variable.
func (g *mgen) writeBack(d ir.Value, r int) {
	switch d.Kind {
	case ir.ValTemp:
		g.frameAccess("sw", r, g.spillOff(g.alloc.loc[d.Temp].slot))
	case ir.ValVar:
		vr := d.Var
		if vr.Kind == ir.VarGlobal {
			g.emit("la t1, %s", vr.Name)
			g.emit("%s %s, 0(t1)", g.storeMn(vr.Char), rn(r))
		} else {
			g.frameAccess(g.storeMn(g.memChar(vr)), r, g.frameOff[vr])
		}
	}
}

// setDst routes a value sitting in register r to the destination.
func (g *mgen) setDst(d ir.Value, r int) {
	if rd, ok := g.regOf(d); ok {
		if rd != r {
			g.emit("mv %s, %s", rn(rd), rn(r))
		}
		return
	}
	g.writeBack(d, r)
}

// rv32ALU maps IR binary ops with native register-form mnemonics;
// rv32ALUImm those with an immediate form.
var rv32ALU = map[ir.Op]string{
	ir.OpAdd: "add", ir.OpSub: "sub", ir.OpAnd: "and", ir.OpOr: "or",
	ir.OpXor: "xor", ir.OpShl: "sll", ir.OpShr: "sra",
	ir.OpMul: "mul", ir.OpDiv: "div", ir.OpMod: "rem",
}

var rv32ALUImm = map[ir.Op]string{
	ir.OpAdd: "addi", ir.OpAnd: "andi", ir.OpOr: "ori",
	ir.OpXor: "xori", ir.OpShl: "slli", ir.OpShr: "srai",
}

func (g *mgen) instr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpCopy:
		g.copyTo(in.Dst, in.A)
		return nil

	case ir.OpNeg, ir.OpCom:
		rd, store := g.dstReg(in.Dst)
		a := g.readVal(in.A, rv32Scratch1)
		if in.Op == ir.OpNeg {
			g.emit("neg %s, %s", rn(rd), rn(a))
		} else {
			g.emit("not %s, %s", rn(rd), rn(a))
		}
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpMul, ir.OpDiv, ir.OpMod:
		g.binary(in)
		return nil

	case ir.OpAddr:
		rd, store := g.dstReg(in.Dst)
		vr := in.Var
		switch {
		case vr.Kind == ir.VarGlobal:
			g.emit("la %s, %s", rn(rd), vr.Name)
		default:
			off, ok := g.frameOff[vr]
			if !ok {
				return errf(in.Line, "internal: address of register-resident %q", vr.Name)
			}
			if imm12OK(int32(off)) {
				g.emit("addi %s, sp, %d", rn(rd), off)
			} else {
				g.emit("li %s, %d", rn(rd), off)
				g.emit("add %s, %s, sp", rn(rd), rn(rd))
			}
		}
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpAddrStr:
		rd, store := g.dstReg(in.Dst)
		g.emit("la %s, %s", rn(rd), in.Label)
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpLoad:
		rd, store := g.dstReg(in.Dst)
		a := g.readVal(in.A, rv32Scratch1)
		g.emit("%s %s, 0(%s)", g.loadMn(in.Size == 1), rn(rd), rn(a))
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpStore:
		a := g.readVal(in.A, rv32Scratch1)
		b := g.readVal(in.B, rv32Scratch2)
		g.emit("%s %s, 0(%s)", g.storeMn(in.Size == 1), rn(b), rn(a))
		return nil

	case ir.OpCall:
		if len(in.Args) > rv32MaxParams {
			return errf(in.Line, "call %q: at most %d register arguments", in.Label, rv32MaxParams)
		}
		for i, arg := range in.Args {
			g.loadInto(arg, rv32ArgBase+i)
		}
		g.emit("call %s", in.Label)
		if in.Dst.Valid() {
			g.setDst(in.Dst, rv32ArgBase)
		}
		return nil
	}
	return errf(in.Line, "internal: unhandled IR op %d", in.Op)
}

// copyTo implements Dst = A, using at most one instruction when both
// sides have register homes.
func (g *mgen) copyTo(d, a ir.Value) {
	if rd, ok := g.regOf(d); ok {
		g.loadInto(a, rd)
		return
	}
	r := g.readVal(a, rv32Scratch1)
	g.writeBack(d, r)
}

// binary emits one native ALU operation, using the immediate form when
// a constant operand fits. Multiplication, division and modulo are
// single M-extension instructions here — the hardware RISC I trades for
// its software __mul/__div routines.
func (g *mgen) binary(in *ir.Instr) {
	rd, store := g.dstReg(in.Dst)
	a, b := in.A, in.B

	// Constant on the left: commutative ops swap operands; the rest
	// stage the constant into a register below.
	if a.Kind == ir.ValConst && a.C != 0 {
		switch in.Op {
		case ir.OpAdd, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpMul:
			a, b = b, a
		}
	}

	ar := g.readVal(a, rv32Scratch1)
	if mn, ok := rv32ALUImm[in.Op]; ok && b.Kind == ir.ValConst && b.C != 0 && imm12OK(b.C) {
		g.emit("%s %s, %s, %d", mn, rn(rd), rn(ar), b.C)
	} else if in.Op == ir.OpSub && b.Kind == ir.ValConst && b.C != 0 && imm12OK(-b.C) {
		g.emit("addi %s, %s, %d", rn(rd), rn(ar), -b.C)
	} else {
		br := g.readVal(b, rv32Scratch2)
		g.emit("%s %s, %s, %s", rv32ALU[in.Op], rn(rd), rn(ar), rn(br))
	}
	if store {
		g.writeBack(in.Dst, rd)
	}
}

// rv32CondOf maps an IR relation to a branch mnemonic (ble/bgt are
// assembler pseudos that swap operands onto bge/blt).
var rv32CondOf = map[ir.Rel]string{
	ir.RelEq: "beq", ir.RelNe: "bne", ir.RelLt: "blt",
	ir.RelLe: "ble", ir.RelGt: "bgt", ir.RelGe: "bge",
}

// term emits a block terminator; next is the layout successor, whose
// label a fallthrough reaches for free. No delay slots to schedule:
// the branch-cost model charges the refetch bubble instead.
func (g *mgen) term(t *ir.Term, next *ir.Block) {
	switch t.Kind {
	case ir.TermJump:
		if t.Then != next {
			g.emit("j %s", g.blockLabel(t.Then))
		}

	case ir.TermBranch:
		a := g.readVal(t.A, rv32Scratch1)
		b := g.readVal(t.B, rv32Scratch2)
		branch := func(rel ir.Rel, target *ir.Block) {
			g.emit("%s %s, %s, %s", rv32CondOf[rel], rn(a), rn(b), g.blockLabel(target))
		}
		switch {
		case t.Else == next:
			branch(t.Rel, t.Then)
		case t.Then == next:
			branch(t.Rel.Negate(), t.Else)
		default:
			branch(t.Rel, t.Then)
			g.emit("j %s", g.blockLabel(t.Else))
		}

	case ir.TermReturn:
		if t.Ret.Valid() {
			g.loadInto(t.Ret, rv32ArgBase)
		} else {
			g.emit("li a0, 0")
		}
		for i, s := range g.savedS {
			g.frameAccess("lw", s, g.sRegOff(i))
		}
		if !g.leaf {
			g.frameAccess("lw", 1, g.frameSize-4)
		}
		g.adjustSP(g.frameSize)
		g.emit("ret")
	}
}

// emitData lays out globals and string literals after the code.
func (g *mgen) emitData() {
	g.raw("\n# data\n")
	g.emit(".align 4")
	for _, gl := range g.prog.Globals {
		g.label(gl.Name)
		switch {
		case gl.InitStr != "":
			g.emit(".asciz %q", gl.InitStr)
			if pad := gl.Size - len(gl.InitStr) - 1; pad > 0 {
				g.emit(".space %d", pad)
			}
		case gl.Char:
			g.emit(".byte %d", gl.Init)
		case gl.Scalar:
			g.emit(".word %d", gl.Init)
		default:
			g.emit(".space %d", gl.Size)
		}
		g.emit(".align 4")
	}
	for _, s := range g.prog.Strings {
		g.label(s.Label)
		g.emit(".asciz %q", s.Value)
		g.emit(".align 4")
	}
}
