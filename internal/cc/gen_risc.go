package cc

import (
	"fmt"
	"strings"

	"risc1/internal/cc/ir"
)

// RISC I code generation conventions (register windows, cf. DESIGN.md):
//
//   - r0: hardwired zero
//   - r1: data stack pointer (global), initialized by the bootstrap
//   - r8: code-generator scratch (spill partner, address formation)
//   - r9: second straight-line scratch
//   - r10..r15: outgoing arguments; the result returns in r10
//   - r16..r24: register variables and temporaries
//   - r25: return address (written by CALL, used by RET)
//   - r26..r31: incoming parameters; the callee writes its result to r26,
//     which is physically the caller's r10 — returning a value costs
//     nothing, exactly the property the paper's window design buys.
//
// The generator consumes the shared IR (internal/cc/ir): temporaries
// are assigned to r16.. by the linear-scan allocator in regalloc.go
// (they survive calls for free thanks to the windows), scalar locals
// get dedicated registers, and arrays, addressed locals and spilled
// temporaries live in a frame on the data stack. Multiplication,
// division and modulo call assembly runtime routines, because RISC I
// deliberately has no multiply or divide hardware.
const (
	riscStackTop   = 0x80000 // initial r1
	riscScratchPtr = 8       // r8: scratch (spills, address formation)
	riscScratch2   = 9       // r9: second straight-line scratch
	riscArgBase    = 10      // first outgoing argument register
	riscVarBase    = 16      // first allocatable local register
	riscVarLimit   = 25      // r25 reserved for the return address
	riscParamBase  = 26      // first incoming parameter register
	riscMaxParams  = 6
	riscRetValReg  = 26 // callee-side result register (caller sees r10)
)

// minScratch is the minimum number of r16..r24 registers kept for
// temporaries; register variables take at most the rest.
const minScratch = 4

// GenRISC compiles a lowered (and possibly optimized) IR program to
// RISC I assembly text.
func GenRISC(prog *ir.Program) (string, error) {
	g := &rgen{prog: prog}
	g.emitBootstrap()
	for _, fn := range prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	if g.usesMul {
		g.raw(riscMulRuntime)
	}
	if g.usesDiv {
		g.raw(riscDivRuntime)
	}
	g.emitData()
	return g.b.String(), nil
}

type rgen struct {
	prog *ir.Program
	b    strings.Builder

	fn        *ir.Func
	alloc     allocation
	varReg    map[*ir.Var]int // register-resident variables
	frameOff  map[*ir.Var]int // memory-resident locals (r1-relative)
	frameMem  int             // bytes of arrays + addressed locals
	frameSize int             // frameMem + spill slots

	usesMul bool
	usesDiv bool
}

func (g *rgen) raw(s string) { g.b.WriteString(s) }

func (g *rgen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *rgen) label(l string) { fmt.Fprintf(&g.b, "%s:\n", l) }

func (g *rgen) blockLabel(b *ir.Block) string {
	return fmt.Sprintf(".L%s_%s", g.fn.Name, b.Name)
}

func (g *rgen) emitBootstrap() {
	g.raw("; MiniC RISC I output\n")
	g.label("start")
	g.emit("li r1, %d\t\t; data stack pointer", riscStackTop)
	g.emit("call main")
	g.emit("nop")
	g.emit("mov r2, r10\t\t; exit value of main")
	g.emit("ret")
	g.emit("nop")
}

func storeOp(char bool) string {
	if char {
		return "stb"
	}
	return "stl"
}

func loadOp(char bool) string {
	if char {
		return "ldbu"
	}
	return "ldl"
}

// memChar reports whether a variable is a one-byte memory cell: stores
// truncate and loads zero-extend. Register-resident char locals and
// char parameters hold full words on both backends.
func (g *rgen) memChar(v *ir.Var) bool {
	_, inReg := g.varReg[v]
	return v.Char && !inReg && v.Kind != ir.VarParam
}

func (g *rgen) genFunc(fn *ir.Func) error {
	if len(fn.Params) > riscMaxParams {
		return errf(fn.Line, "%q: RISC I passes at most %d register parameters", fn.Name, riscMaxParams)
	}
	g.fn = fn
	g.varReg = make(map[*ir.Var]int)
	g.frameOff = make(map[*ir.Var]int)

	for _, p := range fn.Params {
		if p.Addressed {
			return errf(fn.Line, "%q: cannot take the address of a register parameter", p.Name)
		}
		g.varReg[p] = riscParamBase + p.ParamSlot
	}

	// Storage assignment: non-addressed scalar locals get registers
	// until only minScratch temporaries' worth remain; the rest join
	// the arrays in the stack frame.
	avail := riscVarLimit - riscVarBase // 9 allocatable registers
	nreg := 0
	off := 0
	for _, l := range fn.Locals {
		if l.Scalar && !l.Addressed && nreg < avail-minScratch {
			g.varReg[l] = riscVarBase + nreg
			nreg++
			continue
		}
		g.frameOff[l] = off
		off += (l.Size + 3) &^ 3
	}
	g.frameMem = off

	// Temporaries share r16..r24 above the register variables.
	var pool []int
	for r := riscVarBase + nreg; r < riscVarLimit; r++ {
		pool = append(pool, r)
	}
	g.alloc = allocateTemps(fn, pool, false)
	g.frameSize = g.frameMem + 4*g.alloc.nSpills

	g.label(fn.Name)
	if g.frameSize > 0 {
		g.emit("sub r1, r1, %d\t; frame for arrays/spilled locals", g.frameSize)
	}
	for i, b := range g.fn.Blocks {
		g.label(g.blockLabel(b))
		for k := range b.Instrs {
			if err := g.instr(&b.Instrs[k]); err != nil {
				return err
			}
		}
		var next *ir.Block
		if i+1 < len(g.fn.Blocks) {
			next = g.fn.Blocks[i+1]
		}
		g.term(&b.Term, next)
	}
	return nil
}

// spillOff returns the r1-relative frame offset of a spill slot.
func (g *rgen) spillOff(slot int) int { return g.frameMem + 4*slot }

// regOf returns the register already holding a value, if any.
func (g *rgen) regOf(v ir.Value) (int, bool) {
	switch v.Kind {
	case ir.ValConst:
		if v.C == 0 {
			return 0, true
		}
	case ir.ValTemp:
		if l := g.alloc.loc[v.Temp]; l.reg >= 0 {
			return l.reg, true
		}
	case ir.ValVar:
		if r, ok := g.varReg[v.Var]; ok {
			return r, true
		}
	}
	return 0, false
}

// frameAccess emits a load or store of a frame cell, forming the
// address through r9 when the offset exceeds the immediate field.
func (g *rgen) frameAccess(op string, reg, off int) {
	if off <= 4095 {
		g.emit("%s r%d, r1, %d", op, reg, off)
		return
	}
	g.emit("li r%d, %d", riscScratch2, off)
	g.emit("add r%d, r1, r%d", riscScratch2, riscScratch2)
	g.emit("%s r%d, r%d, 0", op, reg, riscScratch2)
}

// loadInto materializes a value in the given register.
func (g *rgen) loadInto(v ir.Value, rd int) {
	switch v.Kind {
	case ir.ValConst:
		g.emit("li r%d, %d", rd, v.C)
	case ir.ValTemp:
		if l := g.alloc.loc[v.Temp]; l.reg >= 0 {
			if l.reg != rd {
				g.emit("mov r%d, r%d", rd, l.reg)
			}
		} else {
			g.frameAccess("ldl", rd, g.spillOff(l.slot))
		}
	case ir.ValVar:
		vr := v.Var
		if r, ok := g.varReg[vr]; ok {
			if r != rd {
				g.emit("mov r%d, r%d", rd, r)
			}
			return
		}
		if vr.Kind == ir.VarGlobal {
			g.emit("li r%d, %s", rd, vr.Name)
			g.emit("%s r%d, r%d, 0", loadOp(vr.Char), rd, rd)
		} else {
			g.frameAccess(loadOp(g.memChar(vr)), rd, g.frameOff[vr])
		}
	}
}

// readVal returns a register holding the value, loading into the given
// scratch register when it has no home of its own.
func (g *rgen) readVal(v ir.Value, scratch int) int {
	if r, ok := g.regOf(v); ok {
		return r
	}
	g.loadInto(v, scratch)
	return scratch
}

// dstReg picks the register an instruction should compute into; store
// reports whether writeBack must follow.
func (g *rgen) dstReg(d ir.Value) (reg int, store bool) {
	if r, ok := g.regOf(d); ok && d.Kind != ir.ValConst {
		return r, false
	}
	return riscScratchPtr, true
}

// writeBack stores a computed value to a spilled temporary or a
// memory-resident variable.
func (g *rgen) writeBack(d ir.Value, r int) {
	switch d.Kind {
	case ir.ValTemp:
		g.frameAccess("stl", r, g.spillOff(g.alloc.loc[d.Temp].slot))
	case ir.ValVar:
		vr := d.Var
		if vr.Kind == ir.VarGlobal {
			g.emit("li r%d, %s", riscScratch2, vr.Name)
			g.emit("%s r%d, r%d, 0", storeOp(vr.Char), r, riscScratch2)
		} else {
			g.frameAccess(storeOp(g.memChar(vr)), r, g.frameOff[vr])
		}
	}
}

// setDst routes a value sitting in register r to the destination.
func (g *rgen) setDst(d ir.Value, r int) {
	if rd, ok := g.regOf(d); ok {
		if rd != r {
			g.emit("mov r%d, r%d", rd, r)
		}
		return
	}
	g.writeBack(d, r)
}

// immOK reports whether a constant fits the 13-bit immediate field.
func immOK(c int32) bool { return c >= -4096 && c <= 4095 }

// riscALU maps IR binary ops with native RISC I instructions.
var riscALU = map[ir.Op]string{
	ir.OpAdd: "add", ir.OpSub: "sub", ir.OpAnd: "and",
	ir.OpOr: "or", ir.OpXor: "xor", ir.OpShl: "sll", ir.OpShr: "sra",
}

func (g *rgen) instr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpCopy:
		g.copyTo(in.Dst, in.A)
		return nil

	case ir.OpNeg, ir.OpCom:
		rd, store := g.dstReg(in.Dst)
		a := g.readVal(in.A, riscScratchPtr)
		if in.Op == ir.OpNeg {
			g.emit("subr r%d, r%d, 0", rd, a)
		} else {
			g.emit("xor r%d, r%d, -1", rd, a)
		}
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		g.binary(in)
		return nil

	case ir.OpMul:
		return g.mulDivMod(in)
	case ir.OpDiv, ir.OpMod:
		return g.mulDivMod(in)

	case ir.OpAddr:
		rd, store := g.dstReg(in.Dst)
		vr := in.Var
		switch {
		case vr.Kind == ir.VarGlobal:
			g.emit("li r%d, %s", rd, vr.Name)
		case vr.Kind == ir.VarParam:
			return errf(in.Line, "cannot take the address of register parameter %q", vr.Name)
		default:
			off := g.frameOff[vr]
			if immOK(int32(off)) {
				g.emit("add r%d, r1, %d", rd, off)
			} else {
				g.emit("li r%d, %d", rd, off)
				g.emit("add r%d, r1, r%d", rd, rd)
			}
		}
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpAddrStr:
		rd, store := g.dstReg(in.Dst)
		g.emit("li r%d, %s", rd, in.Label)
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpLoad:
		rd, store := g.dstReg(in.Dst)
		a := g.readVal(in.A, riscScratchPtr)
		g.emit("%s r%d, r%d, 0", loadOp(in.Size == 1), rd, a)
		if store {
			g.writeBack(in.Dst, rd)
		}
		return nil

	case ir.OpStore:
		a := g.readVal(in.A, riscScratchPtr)
		b := g.readVal(in.B, riscScratch2)
		g.emit("%s r%d, r%d, 0", storeOp(in.Size == 1), b, a)
		return nil

	case ir.OpCall:
		for i, arg := range in.Args {
			g.loadInto(arg, riscArgBase+i)
		}
		g.emit("call %s", in.Label)
		g.emit("nop")
		if in.Dst.Valid() {
			g.setDst(in.Dst, riscArgBase)
		}
		return nil
	}
	return errf(in.Line, "internal: unhandled IR op %d", in.Op)
}

// copyTo implements Dst = A, using at most one instruction when both
// sides have register homes.
func (g *rgen) copyTo(d, a ir.Value) {
	if rd, ok := g.regOf(d); ok {
		g.loadInto(a, rd)
		return
	}
	r := g.readVal(a, riscScratchPtr)
	g.writeBack(d, r)
}

// binary emits one of the native two-operand ALU operations, using
// the immediate form when a constant operand fits.
func (g *rgen) binary(in *ir.Instr) {
	mn := riscALU[in.Op]
	rd, store := g.dstReg(in.Dst)
	a, b := in.A, in.B

	// Constant on the left: subr swaps subtraction; the commutative
	// ops just swap operands. Shifts fall through to register form.
	if a.Kind == ir.ValConst && a.C != 0 {
		switch in.Op {
		case ir.OpSub:
			if immOK(a.C) {
				br := g.readVal(b, riscScratchPtr)
				g.emit("subr r%d, r%d, %d", rd, br, a.C)
				if store {
					g.writeBack(in.Dst, rd)
				}
				return
			}
		case ir.OpAdd, ir.OpAnd, ir.OpOr, ir.OpXor:
			a, b = b, a
		}
	}

	ar := g.readVal(a, riscScratchPtr)
	if b.Kind == ir.ValConst && b.C != 0 && immOK(b.C) {
		g.emit("%s r%d, r%d, %d", mn, rd, ar, b.C)
	} else {
		br := g.readVal(b, riscScratch2)
		g.emit("%s r%d, r%d, r%d", mn, rd, ar, br)
	}
	if store {
		g.writeBack(in.Dst, rd)
	}
}

// mulDivMod lowers multiplication, division and modulo: multiplication
// by a register-destined constant becomes a shift-and-add sequence,
// everything else calls the software arithmetic runtime.
func (g *rgen) mulDivMod(in *ir.Instr) error {
	a, b := in.A, in.B
	if in.Op == ir.OpMul && a.Kind == ir.ValConst {
		a, b = b, a
	}
	rd, store := g.dstReg(in.Dst)
	if in.Op == ir.OpMul && b.Kind == ir.ValConst && !store {
		// In-place shift-and-add needs a register destination clear of
		// the r8/r9 workspace.
		g.loadInto(a, rd)
		g.mulConst(rd, b.C)
		return nil
	}

	var fn string
	switch in.Op {
	case ir.OpMul:
		fn = "__mul"
		g.usesMul = true
	case ir.OpDiv:
		fn = "__div"
		g.usesDiv = true
	default:
		fn = "__mod"
		g.usesDiv = true
	}
	g.loadInto(a, riscArgBase)
	g.loadInto(b, riscArgBase+1)
	g.emit("call %s", fn)
	g.emit("nop")
	if in.Dst.Valid() {
		g.setDst(in.Dst, riscArgBase)
	}
	return nil
}

// mulConst multiplies the value in dst by a constant, in place, using
// shifts and adds (r8/r9 as workspace; dst must be neither).
func (g *rgen) mulConst(dst int, c int32) {
	switch c {
	case 0:
		g.emit("mov r%d, 0", dst)
		return
	case 1:
		return
	case -1:
		g.emit("subr r%d, r%d, 0", dst, dst)
		return
	}
	neg := c < 0
	u := uint32(c)
	if neg {
		u = uint32(-c)
	}
	if u&(u-1) == 0 {
		g.emit("sll r%d, r%d, %d", dst, dst, ir.Log2(int(u)))
	} else {
		g.emit("mov r%d, r%d", riscScratchPtr, dst)
		first := true
		for bit := 0; bit < 32; bit++ {
			if u&(1<<uint(bit)) == 0 {
				continue
			}
			if first {
				if bit > 0 {
					g.emit("sll r%d, r%d, %d", dst, dst, bit)
				}
				first = false
				continue
			}
			g.emit("sll r%d, r%d, %d", riscScratch2, riscScratchPtr, bit)
			g.emit("add r%d, r%d, r%d", dst, dst, riscScratch2)
		}
	}
	if neg {
		g.emit("subr r%d, r%d, 0", dst, dst)
	}
}

// riscCondOf maps an IR relation to a branch condition suffix.
var riscCondOf = map[ir.Rel]string{
	ir.RelEq: "eq", ir.RelNe: "ne", ir.RelLt: "lt",
	ir.RelLe: "le", ir.RelGt: "gt", ir.RelGe: "ge",
}

// term emits a block terminator; next is the layout successor, whose
// label a fallthrough reaches for free.
func (g *rgen) term(t *ir.Term, next *ir.Block) {
	switch t.Kind {
	case ir.TermJump:
		if t.Then != next {
			g.emit("ba %s", g.blockLabel(t.Then))
			g.emit("nop")
		}

	case ir.TermBranch:
		a := g.readVal(t.A, riscScratchPtr)
		if t.B.Kind == ir.ValConst && immOK(t.B.C) {
			g.emit("sub. r0, r%d, %d", a, t.B.C)
		} else {
			b := g.readVal(t.B, riscScratch2)
			g.emit("sub. r0, r%d, r%d", a, b)
		}
		switch {
		case t.Else == next:
			g.emit("b%s %s", riscCondOf[t.Rel], g.blockLabel(t.Then))
			g.emit("nop")
		case t.Then == next:
			g.emit("b%s %s", riscCondOf[t.Rel.Negate()], g.blockLabel(t.Else))
			g.emit("nop")
		default:
			g.emit("b%s %s", riscCondOf[t.Rel], g.blockLabel(t.Then))
			g.emit("nop")
			g.emit("ba %s", g.blockLabel(t.Else))
			g.emit("nop")
		}

	case ir.TermReturn:
		if t.Ret.Valid() {
			g.loadInto(t.Ret, riscRetValReg)
		} else {
			g.emit("mov r%d, 0", riscRetValReg)
		}
		if g.frameSize > 0 {
			g.emit("add r1, r1, %d", g.frameSize)
		}
		g.emit("ret")
		g.emit("nop")
	}
}

// emitData lays out globals and string literals after the code.
func (g *rgen) emitData() {
	g.raw("\n; data\n")
	g.emit(".align 4")
	for _, gl := range g.prog.Globals {
		g.label(gl.Name)
		switch {
		case gl.InitStr != "":
			g.emit(".asciz %q", gl.InitStr)
			if pad := gl.Size - len(gl.InitStr) - 1; pad > 0 {
				g.emit(".space %d", pad)
			}
		case gl.Char:
			g.emit(".byte %d", gl.Init)
		case gl.Scalar:
			g.emit(".word %d", gl.Init)
		default:
			g.emit(".space %d", gl.Size)
		}
		g.emit(".align 4")
	}
	for _, s := range g.prog.Strings {
		g.label(s.Label)
		g.emit(".asciz %q", s.Value)
		g.emit(".align 4")
	}
}

// Runtime routines. Arguments arrive in r26/r27 (the caller's r10/r11);
// the result returns in r26. Locals r16.. are private to the window.
const riscMulRuntime = `
; signed/unsigned 32-bit multiply (low word): shift-and-add
__mul:
	mov r16, 0		; accumulator
	mov r17, r26		; multiplicand
	mov r18, r27		; multiplier
.Lmul_loop:
	sub. r0, r18, 0
	beq .Lmul_done
	nop
	and. r0, r18, 1
	beq .Lmul_skip
	nop
	add r16, r16, r17
.Lmul_skip:
	sll r17, r17, 1
	srl r18, r18, 1
	ba .Lmul_loop
	nop
.Lmul_done:
	mov r26, r16
	ret
	nop
`

const riscDivRuntime = `
; signed 32-bit divide and modulo via restoring unsigned division.
; __udivmod: r26=dividend r27=divisor -> r26=quotient r27=remainder
__udivmod:
	mov r16, 0		; quotient
	mov r17, 0		; remainder
	mov r18, 32		; bit counter
.Ludm_loop:
	sll r17, r17, 1
	srl r19, r26, 31
	or r17, r17, r19
	sll r26, r26, 1
	sll r16, r16, 1
	sub. r0, r17, r27	; unsigned compare remainder vs divisor
	blo .Ludm_skip		; remainder < divisor: leave bit clear
	nop
	sub r17, r17, r27
	add r16, r16, 1
.Ludm_skip:
	sub. r18, r18, 1
	bne .Ludm_loop
	nop
	mov r26, r16
	mov r27, r17
	ret
	nop

; __div: r26=a r27=b -> r26 = a/b (truncated)
__div:
	xor r20, r26, r27	; sign of the quotient
	sub. r0, r26, 0
	bge .Ldiv_ap
	nop
	subr r26, r26, 0
.Ldiv_ap:
	sub. r0, r27, 0
	bge .Ldiv_bp
	nop
	subr r27, r27, 0
.Ldiv_bp:
	mov r10, r26
	mov r11, r27
	call __udivmod
	nop
	mov r26, r10
	sub. r0, r20, 0
	bge .Ldiv_pos
	nop
	subr r26, r26, 0
.Ldiv_pos:
	ret
	nop

; __mod: r26=a r27=b -> r26 = a%b (sign follows the dividend, as in C)
__mod:
	mov r21, r26		; remember the dividend's sign
	sub. r0, r26, 0
	bge .Lmod_ap
	nop
	subr r26, r26, 0
.Lmod_ap:
	sub. r0, r27, 0
	bge .Lmod_bp
	nop
	subr r27, r27, 0
.Lmod_bp:
	mov r10, r26
	mov r11, r27
	call __udivmod
	nop
	mov r26, r11		; remainder
	sub. r0, r21, 0
	bge .Lmod_pos
	nop
	subr r26, r26, 0
.Lmod_pos:
	ret
	nop
`
