package cc

import (
	"fmt"
	"strings"
)

// RISC I code generation conventions (mirroring the paper's C compiler):
//
//   - r0: hardwired zero
//   - r1: data stack pointer (global), initialized by the bootstrap
//   - r8: code-generator scratch (spill partner, address formation)
//   - r10..r15: outgoing arguments; the result returns in r10
//   - r16..r24: register variables and the expression evaluation stack
//   - r25: return address (written by CALL, used by RET)
//   - r26..r31: incoming parameters; the callee writes its result to r26,
//     which is physically the caller's r10 — returning a value costs
//     nothing, exactly the property the paper's window design buys.
//
// Scalar locals live in registers (they survive calls for free thanks to
// the windows); arrays and overflow locals live in a frame on the data
// stack. Multiplication, division and modulo call assembly runtime
// routines, because RISC I deliberately has no multiply or divide
// hardware.
const (
	riscStackTop   = 0x80000 // data stack top (the register-save stack uses the top of memory)
	riscScratchPtr = 8       // r8: spill partner
	riscScratch2   = 9       // r9: second straight-line scratch
	riscArgBase    = 10      // first outgoing argument register
	riscVarBase    = 16      // first allocatable local register
	riscVarLimit   = 25      // r25 reserved for the return address
	riscParamBase  = 26      // first incoming parameter register
	riscMaxParams  = 6
	riscRetValReg  = 26 // callee-side result register (caller sees r10)
)

// minScratch is the minimum expression-stack depth kept in registers;
// deeper temporaries spill to the data stack.
const minScratch = 4

// GenRISC compiles a checked program to RISC I assembly text.
func GenRISC(prog *Program) (string, error) {
	g := &rgen{prog: prog}
	g.emitBootstrap()
	for _, fn := range prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	if g.usesMul {
		g.raw(riscMulRuntime)
	}
	if g.usesDiv {
		g.raw(riscDivRuntime)
	}
	g.emitData()
	return g.b.String(), nil
}

type rgen struct {
	prog *Program
	b    strings.Builder

	fn         *Symbol
	frameSize  int
	numVarRegs int // registers r16..r16+numVarRegs-1 hold variables
	numScratch int
	labelSeq   int

	usesMul bool
	usesDiv bool
}

func (g *rgen) raw(s string) { g.b.WriteString(s) }

func (g *rgen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *rgen) label(l string) { fmt.Fprintf(&g.b, "%s:\n", l) }

func (g *rgen) newLabel(hint string) string {
	g.labelSeq++
	return fmt.Sprintf(".L%s_%s%d", g.fn.Name, hint, g.labelSeq)
}

// sreg returns the k-th expression-stack register.
func (g *rgen) sreg(k int) int { return riscVarBase + g.numVarRegs + k }

func (g *rgen) emitBootstrap() {
	g.raw("; MiniC RISC I output\n")
	g.label("start")
	g.emit("li r1, %d\t\t; data stack pointer", riscStackTop)
	g.emit("call main")
	g.emit("nop")
	g.emit("mov r2, r10\t\t; exit value of main")
	g.emit("ret")
	g.emit("nop")
}

func (g *rgen) genFunc(fn *Symbol) error {
	if len(fn.Params) > riscMaxParams {
		return errf(fn.Line, "%q: RISC I passes at most %d register parameters", fn.Name, riscMaxParams)
	}
	g.fn = fn
	g.labelSeq = 0

	// Storage assignment: scalar locals get registers until only
	// minScratch expression registers remain; the rest join the arrays
	// in the stack frame.
	avail := riscVarLimit - riscVarBase // 9 allocatable registers
	var regLocals, memLocals []*Symbol
	for _, l := range fn.Locals {
		if l.Type.IsScalar() && len(regLocals) < avail-minScratch {
			regLocals = append(regLocals, l)
		} else {
			memLocals = append(memLocals, l)
		}
	}
	g.numVarRegs = len(regLocals)
	g.numScratch = avail - g.numVarRegs
	for i, l := range regLocals {
		l.Reg = riscVarBase + i
	}
	off := 0
	for _, l := range memLocals {
		l.Reg = -1
		sz := (l.Type.Size() + 3) &^ 3
		l.FrameOff = off
		off += sz
	}
	g.frameSize = off
	for _, p := range fn.Params {
		p.Reg = riscParamBase + p.ParamSlot
	}

	g.label(fn.Name)
	if g.frameSize > 0 {
		g.emit("sub r1, r1, %d\t; frame for arrays/spilled locals", g.frameSize)
	}
	if err := g.stmt(fn.Body, ""); err != nil {
		return err
	}
	// Fall-off-the-end return (value 0 for int functions).
	g.epilogue(true)
	return nil
}

// epilogue emits the return sequence; if zeroResult, r26 is cleared first.
func (g *rgen) epilogue(zeroResult bool) {
	if zeroResult {
		g.emit("mov r%d, 0", riscRetValReg)
	}
	if g.frameSize > 0 {
		g.emit("add r1, r1, %d", g.frameSize)
	}
	g.emit("ret")
	g.emit("nop")
}

type loopLabels struct{ brk, cont string }

func (g *rgen) stmt(s *Stmt, _ string) error { return g.stmtIn(s, nil) }

func (g *rgen) stmtIn(s *Stmt, loop *loopLabels) error {
	switch s.Kind {
	case StmtBlock, StmtGroup:
		for _, sub := range s.Body {
			if err := g.stmtIn(sub, loop); err != nil {
				return err
			}
		}
		return nil

	case StmtDecl:
		if s.DeclInit == nil {
			return nil
		}
		if s.Decl.Reg >= 0 && g.directAssign(s.Decl.Reg, s.DeclInit) {
			return nil
		}
		if err := g.evalTo(s.DeclInit, 0); err != nil {
			return err
		}
		g.storeVar(s.Decl, g.sreg(0))
		return nil

	case StmtExpr:
		// At statement level the expression's value is discarded, which
		// lets assignments take the direct register forms.
		if s.Expr.Kind == ExprAssign {
			return g.assign(s.Expr, 0, false)
		}
		return g.evalTo(s.Expr, 0)

	case StmtIf:
		elseL := g.newLabel("else")
		if err := g.branch(s.Expr, elseL, false); err != nil {
			return err
		}
		if err := g.stmtIn(s.Then, loop); err != nil {
			return err
		}
		if s.Else != nil {
			endL := g.newLabel("endif")
			g.emit("ba %s", endL)
			g.emit("nop")
			g.label(elseL)
			if err := g.stmtIn(s.Else, loop); err != nil {
				return err
			}
			g.label(endL)
		} else {
			g.label(elseL)
		}
		return nil

	case StmtWhile:
		top := g.newLabel("while")
		end := g.newLabel("wend")
		g.label(top)
		if err := g.branch(s.Expr, end, false); err != nil {
			return err
		}
		if err := g.stmtIn(s.Then, &loopLabels{brk: end, cont: top}); err != nil {
			return err
		}
		g.emit("ba %s", top)
		g.emit("nop")
		g.label(end)
		return nil

	case StmtFor:
		if s.Init != nil {
			if err := g.stmtIn(s.Init, loop); err != nil {
				return err
			}
		}
		top := g.newLabel("for")
		post := g.newLabel("fpost")
		end := g.newLabel("fend")
		g.label(top)
		if s.Cond != nil {
			if err := g.branch(s.Cond, end, false); err != nil {
				return err
			}
		}
		if err := g.stmtIn(s.Then, &loopLabels{brk: end, cont: post}); err != nil {
			return err
		}
		g.label(post)
		if s.Post != nil {
			if err := g.stmtIn(s.Post, loop); err != nil {
				return err
			}
		}
		g.emit("ba %s", top)
		g.emit("nop")
		g.label(end)
		return nil

	case StmtReturn:
		if s.Expr != nil {
			if err := g.evalTo(s.Expr, 0); err != nil {
				return err
			}
			g.emit("mov r%d, r%d", riscRetValReg, g.sreg(0))
			g.epilogue(false)
		} else {
			g.epilogue(true)
		}
		return nil

	case StmtBreak:
		g.emit("ba %s", loop.brk)
		g.emit("nop")
		return nil

	case StmtContinue:
		g.emit("ba %s", loop.cont)
		g.emit("nop")
		return nil
	}
	return errf(s.Line, "internal: unhandled statement kind %d", s.Kind)
}

// storeVar writes register src into a scalar variable.
func (g *rgen) storeVar(sym *Symbol, src int) {
	switch {
	case sym.Kind == SymGlobal:
		g.emit("li r%d, %s", riscScratchPtr, sym.Name)
		g.emit("%s r%d, r%d, 0", storeOp(sym.Type), src, riscScratchPtr)
	case sym.Kind == SymParam || sym.Reg >= 0:
		g.emit("mov r%d, r%d", sym.Reg, src)
	default: // frame local
		g.emit("%s r%d, r1, %d", storeOp(sym.Type), src, sym.FrameOff)
	}
}

func storeOp(t *Type) string {
	if t.Kind == TypeChar {
		return "stb"
	}
	return "stl"
}

func loadOp(t *Type) string {
	if t.Kind == TypeChar {
		return "ldbu"
	}
	return "ldl"
}

// push/pop spill an expression register to the data stack when the
// register stack overflows.
func (g *rgen) push(reg int) {
	g.emit("sub r1, r1, 4")
	g.emit("stl r%d, r1, 0", reg)
}

func (g *rgen) pop(reg int) {
	g.emit("ldl r%d, r1, 0", reg)
	g.emit("add r1, r1, 4")
}

// evalTo generates code leaving the value of e in sreg(k), free to use
// sreg(k+1).. as temporaries.
func (g *rgen) evalTo(e *Expr, k int) error {
	dst := g.sreg(k)
	switch e.Kind {
	case ExprIntLit, ExprCharLit:
		g.emit("li r%d, %d", dst, int32(e.Num))
		return nil

	case ExprStrLit:
		g.emit("li r%d, %s", dst, e.StrLabel)
		return nil

	case ExprIdent:
		sym := e.Sym
		switch {
		case sym.Type.Kind == TypeArray:
			return g.addrOf(e, k) // arrays decay to their address
		case sym.Kind == SymGlobal:
			g.emit("li r%d, %s", dst, sym.Name)
			g.emit("%s r%d, r%d, 0", loadOp(sym.Type), dst, dst)
		case sym.Kind == SymParam || sym.Reg >= 0:
			g.emit("mov r%d, r%d", dst, sym.Reg)
		default:
			g.emit("%s r%d, r1, %d", loadOp(sym.Type), dst, sym.FrameOff)
		}
		return nil

	case ExprUnary:
		switch e.Op {
		case "-":
			if err := g.evalTo(e.X, k); err != nil {
				return err
			}
			g.emit("subr r%d, r%d, 0", dst, dst)
			return nil
		case "~":
			if err := g.evalTo(e.X, k); err != nil {
				return err
			}
			g.emit("xor r%d, r%d, -1", dst, dst)
			return nil
		case "!":
			return g.materializeCond(e, k)
		case "*":
			if err := g.evalTo(e.X, k); err != nil {
				return err
			}
			g.emit("%s r%d, r%d, 0", loadOp(e.Type), dst, dst)
			return nil
		case "&":
			return g.addrOf(e.X, k)
		}

	case ExprBinary:
		switch e.Op {
		case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
			return g.materializeCond(e, k)
		}
		if decay(e.X.Type).Kind == TypePtr || decay(e.Y.Type).Kind == TypePtr {
			return g.pointerArith(e, k)
		}
		if e.Op == "*" || e.Op == "/" || e.Op == "%" {
			return g.mulDiv(e.Op, e.X, e.Y, k)
		}
		return g.binaryInts(e.Op, e.X, e.Y, k)

	case ExprAssign:
		return g.assign(e, k, true)

	case ExprIndex:
		if err := g.addrOf(e, k); err != nil {
			return err
		}
		g.emit("%s r%d, r%d, 0", loadOp(e.Type), dst, dst)
		return nil

	case ExprCall:
		return g.call(e, k)
	}
	return errf(e.Line, "internal: unhandled expression kind %d", e.Kind)
}

// binaryInts emits a plain integer binary operator (+ - & | ^ << >>).
// regOperand returns the register holding e when e is a register-
// resident scalar variable — the operand-selection trick that keeps the
// generated code close to what the era's compilers emitted.
func (g *rgen) regOperand(e *Expr) (int, bool) {
	if e.Kind != ExprIdent || e.Sym == nil || e.Sym.Kind == SymGlobal || !e.Sym.Type.IsScalar() {
		return 0, false
	}
	if e.Sym.Kind == SymParam || e.Sym.Reg >= 0 {
		return e.Sym.Reg, true
	}
	return 0, false
}

// evalOperand yields a register holding e's value: the variable's own
// register when possible, else sreg(k) after evaluation.
func (g *rgen) evalOperand(e *Expr, k int) (int, error) {
	if r, ok := g.regOperand(e); ok {
		return r, nil
	}
	if err := g.evalTo(e, k); err != nil {
		return 0, err
	}
	return g.sreg(k), nil
}

func riscALUOp(op string) string {
	return map[string]string{
		"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
		"<<": "sll", ">>": "sra",
	}[op]
}

func (g *rgen) binaryInts(op string, x, y *Expr, k int) error {
	mn := riscALUOp(op)
	if mn == "" {
		return errf(x.Line, "internal: no RISC mapping for %q", op)
	}
	dst := g.sreg(k)
	xr, err := g.evalOperand(x, k)
	if err != nil {
		return err
	}
	// Constant right operand fits the 13-bit immediate: skip a register.
	if c, ok := constFold(y); ok && c >= -4096 && c <= 4095 {
		g.emit("%s r%d, r%d, %d", mn, dst, xr, c)
		return nil
	}
	// Register-resident right operand: no evaluation at all.
	if yr, ok := g.regOperand(y); ok {
		g.emit("%s r%d, r%d, r%d", mn, dst, xr, yr)
		return nil
	}
	// X did not consume the scratch slot: Y may use it.
	if xr != dst {
		if err := g.evalTo(y, k); err != nil {
			return err
		}
		g.emit("%s r%d, r%d, r%d", mn, dst, xr, dst)
		return nil
	}
	if k+1 < g.numScratch {
		if err := g.evalTo(y, k+1); err != nil {
			return err
		}
		g.emit("%s r%d, r%d, r%d", mn, dst, dst, g.sreg(k+1))
		return nil
	}
	// Spill path: X waits on the data stack while Y evaluates.
	g.push(dst)
	if err := g.evalTo(y, k); err != nil {
		return err
	}
	g.pop(riscScratchPtr)
	g.emit("%s r%d, r%d, r%d", mn, dst, riscScratchPtr, dst)
	return nil
}

// pointerArith handles ptr±int (scaled) and ptr-ptr (descaled).
func (g *rgen) pointerArith(e *Expr, k int) error {
	xt, yt := decay(e.X.Type), decay(e.Y.Type)
	dst := g.sreg(k)
	switch {
	case xt.Kind == TypePtr && yt.Kind == TypePtr: // ptr - ptr
		if err := g.binaryInts("-", e.X, e.Y, k); err != nil {
			return err
		}
		if sh := log2(xt.Elem.Size()); sh > 0 {
			g.emit("sra r%d, r%d, %d", dst, dst, sh)
		}
		return nil
	case xt.Kind == TypePtr: // ptr ± int
		mn := "add"
		if e.Op == "-" {
			mn = "sub"
		}
		return g.scaledCombine(e.X, e.Y, xt.Elem.Size(), mn, k)
	default: // int + ptr
		return g.scaledCombine(e.Y, e.X, yt.Elem.Size(), "add", k)
	}
}

// scaledCombine computes base <op> scale(idx) into sreg(k), spilling the
// base to the data stack when the register stack is full.
func (g *rgen) scaledCombine(base, idx *Expr, size int, mn string, k int) error {
	dst := g.sreg(k)
	if err := g.evalTo(base, k); err != nil {
		return err
	}
	if k+1 < g.numScratch {
		if err := g.scaledTo(idx, k+1, size); err != nil {
			return err
		}
		g.emit("%s r%d, r%d, r%d", mn, dst, dst, g.sreg(k+1))
		return nil
	}
	g.push(dst)
	if err := g.scaledTo(idx, k, size); err != nil {
		return err
	}
	g.pop(riscScratchPtr)
	g.emit("%s r%d, r%d, r%d", mn, dst, riscScratchPtr, dst)
	return nil
}

// scaledTo evaluates an index expression into sreg(k), multiplied by the
// element size (always a power of two in MiniC).
// scaledTo requires k < numScratch; callers at the edge use spill paths.
func (g *rgen) scaledTo(e *Expr, k int, size int) error {
	if k >= g.numScratch {
		return errf(e.Line, "internal: scaledTo beyond the register stack")
	}
	if err := g.evalTo(e, k); err != nil {
		return err
	}
	if sh := log2(size); sh > 0 {
		g.emit("sll r%d, r%d, %d", g.sreg(k), g.sreg(k), sh)
	}
	return nil
}

func log2(n int) int {
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// mulDiv lowers * / % to runtime calls — RISC I has no multiply/divide.
func (g *rgen) mulDiv(op string, x, y *Expr, k int) error {
	// Strength reduction for constant right operands, as the era's C
	// compilers did: multiplication becomes a shift-add sequence, and
	// division/modulo by powers of two become sign-corrected shifts.
	if c, ok := constFold(y); ok {
		switch op {
		case "*":
			if err := g.evalTo(x, k); err != nil {
				return err
			}
			g.mulConst(k, int32(c))
			return nil
		case "/":
			if c > 0 && c&(c-1) == 0 {
				if err := g.evalTo(x, k); err != nil {
					return err
				}
				g.divPow2(k, log2(int(c)))
				return nil
			}
		case "%":
			if c > 0 && c&(c-1) == 0 {
				if err := g.evalTo(x, k); err != nil {
					return err
				}
				sh := log2(int(c))
				if sh == 0 {
					g.emit("mov r%d, 0", g.sreg(k))
					return nil
				}
				// x - (x/2^sh)<<sh, with C truncation semantics.
				g.emit("mov r%d, r%d", riscScratch2, g.sreg(k))
				g.divPow2(k, sh)
				g.emit("sll r%d, r%d, %d", g.sreg(k), g.sreg(k), sh)
				g.emit("sub r%d, r%d, r%d", g.sreg(k), riscScratch2, g.sreg(k))
				return nil
			}
		}
	}
	var fn string
	switch op {
	case "*":
		fn = "__mul"
		g.usesMul = true
	case "/":
		fn = "__div"
		g.usesDiv = true
	default:
		fn = "__mod"
		g.usesDiv = true
	}
	xr, err := g.evalOperand(x, k)
	if err != nil {
		return err
	}
	if yr, ok := g.regOperand(y); ok {
		g.emit("mov r%d, r%d", riscArgBase, xr)
		g.emit("mov r%d, r%d", riscArgBase+1, yr)
	} else if xr != g.sreg(k) {
		if err := g.evalTo(y, k); err != nil {
			return err
		}
		g.emit("mov r%d, r%d", riscArgBase, xr)
		g.emit("mov r%d, r%d", riscArgBase+1, g.sreg(k))
	} else if k+1 < g.numScratch {
		if err := g.evalTo(y, k+1); err != nil {
			return err
		}
		g.emit("mov r%d, r%d", riscArgBase, g.sreg(k))
		g.emit("mov r%d, r%d", riscArgBase+1, g.sreg(k+1))
	} else {
		// Spill path: X waits on the data stack while Y evaluates.
		g.push(g.sreg(k))
		if err := g.evalTo(y, k); err != nil {
			return err
		}
		g.emit("mov r%d, r%d", riscArgBase+1, g.sreg(k))
		g.pop(riscArgBase)
	}
	g.emit("call %s", fn)
	g.emit("nop")
	g.emit("mov r%d, r%d", g.sreg(k), riscArgBase)
	return nil
}

// mulConst multiplies sreg(k) by a constant with a shift-add sequence —
// straight-line code, so no window or scratch-register hazards.
func (g *rgen) mulConst(k int, c int32) {
	dst := g.sreg(k)
	switch c {
	case 0:
		g.emit("mov r%d, 0", dst)
		return
	case 1:
		return
	case -1:
		g.emit("subr r%d, r%d, 0", dst, dst)
		return
	}
	neg := false
	u := uint32(c)
	if c < 0 {
		neg = true
		u = uint32(-c)
	}
	if u&(u-1) == 0 {
		g.emit("sll r%d, r%d, %d", dst, dst, log2(int(u)))
	} else {
		g.emit("mov r%d, r%d", riscScratchPtr, dst)
		first := true
		for bit := 0; bit < 32; bit++ {
			if u&(1<<uint(bit)) == 0 {
				continue
			}
			if first {
				if bit == 0 {
					// dst already holds x<<0.
				} else {
					g.emit("sll r%d, r%d, %d", dst, dst, bit)
				}
				first = false
				continue
			}
			g.emit("sll r%d, r%d, %d", riscScratch2, riscScratchPtr, bit)
			g.emit("add r%d, r%d, r%d", dst, dst, riscScratch2)
		}
	}
	if neg {
		g.emit("subr r%d, r%d, 0", dst, dst)
	}
}

// divPow2 divides sreg(k) by 2^sh with C truncation-toward-zero
// semantics: negative dividends get the bias before the arithmetic shift.
func (g *rgen) divPow2(k, sh int) {
	dst := g.sreg(k)
	if sh == 0 {
		return
	}
	g.emit("sra r%d, r%d, 31", riscScratchPtr, dst)
	g.emit("srl r%d, r%d, %d", riscScratchPtr, riscScratchPtr, 32-sh)
	g.emit("add r%d, r%d, r%d", dst, dst, riscScratchPtr)
	g.emit("sra r%d, r%d, %d", dst, dst, sh)
}

// constFold evaluates compile-time constant expressions.
func constFold(e *Expr) (int64, bool) {
	switch e.Kind {
	case ExprIntLit, ExprCharLit:
		return e.Num, true
	case ExprUnary:
		if v, ok := constFold(e.X); ok {
			switch e.Op {
			case "-":
				return -v, true
			case "~":
				return ^v, true
			}
		}
	}
	return 0, false
}

// addrOf leaves the address of an lvalue (or array) in sreg(k).
func (g *rgen) addrOf(e *Expr, k int) error {
	dst := g.sreg(k)
	switch e.Kind {
	case ExprIdent:
		sym := e.Sym
		switch {
		case sym.Kind == SymGlobal:
			g.emit("li r%d, %s", dst, sym.Name)
		case sym.Reg >= 0 || sym.Kind == SymParam:
			return errf(e.Line, "cannot take the address of register variable %q", sym.Name)
		default:
			g.emit("add r%d, r1, %d", dst, sym.FrameOff)
		}
		return nil
	case ExprIndex:
		if err := g.evalTo(e.X, k); err != nil { // base (pointer value or array address)
			return err
		}
		if k+1 < g.numScratch {
			if err := g.scaledTo(e.Y, k+1, e.Type.Size()); err != nil {
				return err
			}
			g.emit("add r%d, r%d, r%d", dst, dst, g.sreg(k+1))
			return nil
		}
		// Spill path: the base waits on the data stack.
		g.push(dst)
		if err := g.scaledTo(e.Y, k, e.Type.Size()); err != nil {
			return err
		}
		g.pop(riscScratchPtr)
		g.emit("add r%d, r%d, r%d", dst, riscScratchPtr, dst)
		return nil
	case ExprUnary:
		if e.Op == "*" {
			return g.evalTo(e.X, k)
		}
	}
	return errf(e.Line, "internal: not an addressable expression")
}

// directAssign emits the common simple assignments straight into a
// variable's register — "v = c", "v = w", "v = a <op> b" with register or
// small-constant operands — returning false when the general path must
// run. Callers may only use it where the assignment's own value is
// discarded (statement level), since nothing lands in a scratch register.
func (g *rgen) directAssign(dst int, y *Expr) bool {
	if c, ok := constFold(y); ok && c >= -4096 && c <= 4095 {
		g.emit("add r%d, r0, %d", dst, c)
		return true
	}
	if r, ok := g.regOperand(y); ok {
		g.emit("add r%d, r%d, 0", dst, r)
		return true
	}
	if y.Kind == ExprBinary && decay(y.X.Type).Kind != TypePtr && decay(y.Y.Type).Kind != TypePtr {
		mn := riscALUOp(y.Op)
		if mn == "" {
			return false
		}
		a, aok := g.regOperand(y.X)
		if !aok {
			return false
		}
		if c, ok := constFold(y.Y); ok && c >= -4096 && c <= 4095 {
			g.emit("%s r%d, r%d, %d", mn, dst, a, c)
			return true
		}
		if b, bok := g.regOperand(y.Y); bok {
			g.emit("%s r%d, r%d, r%d", mn, dst, a, b)
			return true
		}
	}
	return false
}

// directCompound emits "v op= simple" straight onto the variable's
// register at statement level.
func (g *rgen) directCompound(lhs *Expr, binOp string, y *Expr) bool {
	if decay(lhs.Type).Kind == TypePtr {
		return false // pointer arithmetic needs scaling
	}
	mn := riscALUOp(binOp)
	if mn == "" {
		return false
	}
	dst := lhs.Sym.Reg
	if c, ok := constFold(y); ok && c >= -4096 && c <= 4095 {
		g.emit("%s r%d, r%d, %d", mn, dst, dst, c)
		return true
	}
	if r, ok := g.regOperand(y); ok {
		g.emit("%s r%d, r%d, r%d", mn, dst, dst, r)
		return true
	}
	return false
}

// assign handles = and the compound assignments, leaving the stored value
// in sreg(k).
func (g *rgen) assign(e *Expr, k int, valueNeeded bool) error {
	binOp := strings.TrimSuffix(e.Op, "=") // "" for plain =
	lhs := e.X

	// Register-resident scalar: operate in place.
	if lhs.Kind == ExprIdent && lhs.Sym.Kind != SymGlobal &&
		(lhs.Sym.Reg >= 0 || lhs.Sym.Kind == SymParam) {
		if binOp == "" {
			if !valueNeeded && g.directAssign(lhs.Sym.Reg, e.Y) {
				return nil
			}
			if err := g.evalTo(e.Y, k); err != nil {
				return err
			}
			g.emit("mov r%d, r%d", lhs.Sym.Reg, g.sreg(k))
			return nil
		}
		if !valueNeeded && g.directCompound(lhs, binOp, e.Y) {
			return nil
		}
		fake := &Expr{Kind: ExprBinary, Op: binOp, X: lhs, Y: e.Y, Line: e.Line, Type: e.Type}
		if err := g.evalTo(fake, k); err != nil {
			return err
		}
		g.emit("mov r%d, r%d", lhs.Sym.Reg, g.sreg(k))
		return nil
	}

	// Memory-resident lvalue: compute the address once.
	if k+2 >= g.numScratch {
		return errf(e.Line, "assignment too deep for the register stack; simplify")
	}
	if err := g.lvalueAddr(lhs, k+1); err != nil {
		return err
	}
	addr := g.sreg(k + 1)
	if binOp == "" {
		if err := g.evalTo(e.Y, k+2); err != nil {
			return err
		}
		g.emit("%s r%d, r%d, 0", storeOp(lhs.Type), g.sreg(k+2), addr)
		g.emit("mov r%d, r%d", g.sreg(k), g.sreg(k+2))
		return nil
	}
	// Compound: load old, combine, store.
	g.emit("%s r%d, r%d, 0", loadOp(lhs.Type), g.sreg(k), addr)
	if err := g.evalTo(e.Y, k+2); err != nil {
		return err
	}
	if err := g.combine(binOp, lhs, e, k); err != nil {
		return err
	}
	g.emit("%s r%d, r%d, 0", storeOp(lhs.Type), g.sreg(k), addr)
	return nil
}

// combine folds sreg(k) = sreg(k) <op> sreg(k+2) for compound assignment,
// including pointer scaling for += / -= on pointers.
func (g *rgen) combine(op string, lhs, e *Expr, k int) error {
	rhs := g.sreg(k + 2)
	if decay(lhs.Type).Kind == TypePtr {
		if sh := log2(decay(lhs.Type).Elem.Size()); sh > 0 {
			g.emit("sll r%d, r%d, %d", rhs, rhs, sh)
		}
	}
	switch op {
	case "*", "/", "%":
		fn := map[string]string{"*": "__mul", "/": "__div", "%": "__mod"}[op]
		if op == "*" {
			g.usesMul = true
		} else {
			g.usesDiv = true
		}
		g.emit("mov r%d, r%d", riscArgBase, g.sreg(k))
		g.emit("mov r%d, r%d", riscArgBase+1, rhs)
		g.emit("call %s", fn)
		g.emit("nop")
		g.emit("mov r%d, r%d", g.sreg(k), riscArgBase)
		return nil
	}
	mn := map[string]string{
		"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
	}[op]
	if mn == "" {
		return errf(e.Line, "internal: no RISC mapping for %q=", op)
	}
	g.emit("%s r%d, r%d, r%d", mn, g.sreg(k), g.sreg(k), rhs)
	return nil
}

// lvalueAddr is addrOf restricted to assignable expressions.
func (g *rgen) lvalueAddr(e *Expr, k int) error {
	switch e.Kind {
	case ExprIdent, ExprIndex:
		return g.addrOf(e, k)
	case ExprUnary:
		if e.Op == "*" {
			return g.evalTo(e.X, k)
		}
	}
	return errf(e.Line, "internal: not an lvalue")
}

// call evaluates arguments into scratch registers (locals survive nested
// calls thanks to the windows), moves them to the outgoing window, and
// calls. The result lands in r10 and is copied to sreg(k).
func (g *rgen) call(e *Expr, k int) error {
	// Register-resident and constant arguments need no scratch slot; the
	// rest evaluate into consecutive scratch registers (locals survive
	// nested calls thanks to the windows).
	srcs := make([]string, len(e.Args))
	used := 0
	for i, a := range e.Args {
		if r, ok := g.regOperand(a); ok {
			srcs[i] = fmt.Sprintf("r%d", r)
			continue
		}
		if c, ok := constFold(a); ok && c >= -4096 && c <= 4095 {
			srcs[i] = fmt.Sprintf("%d", c)
			continue
		}
		if k+used >= g.numScratch {
			return errf(e.Line, "call arguments too deep for the register stack; simplify")
		}
		if err := g.evalTo(a, k+used); err != nil {
			return err
		}
		srcs[i] = fmt.Sprintf("r%d", g.sreg(k+used))
		used++
	}
	for i, src := range srcs {
		g.emit("mov r%d, %s", riscArgBase+i, src)
	}
	g.emit("call %s", e.Name)
	g.emit("nop")
	g.emit("mov r%d, r%d", g.sreg(k), riscArgBase)
	return nil
}

// branch emits a conditional jump to target taken when e is true
// (whenTrue) or false (!whenTrue).
func (g *rgen) branch(e *Expr, target string, whenTrue bool) error {
	return g.branchAt(e, target, whenTrue, 0)
}

// branchAt is branch using sreg(k).. as scratch.
func (g *rgen) branchAt(e *Expr, target string, whenTrue bool, k int) error {
	switch {
	case e.Kind == ExprUnary && e.Op == "!":
		return g.branchAt(e.X, target, !whenTrue, k)

	case e.Kind == ExprBinary && (e.Op == "&&" || e.Op == "||"):
		// Short-circuit: reduce to the canonical two shapes.
		if e.Op == "&&" && !whenTrue {
			// !(a && b): jump if a false or b false.
			if err := g.branchAt(e.X, target, false, k); err != nil {
				return err
			}
			return g.branchAt(e.Y, target, false, k)
		}
		if e.Op == "||" && whenTrue {
			if err := g.branchAt(e.X, target, true, k); err != nil {
				return err
			}
			return g.branchAt(e.Y, target, true, k)
		}
		// (a && b) true, or (a || b) false: needs a skip label.
		skip := g.newLabel("sc")
		if err := g.branchAt(e.X, skip, e.Op == "||", k); err != nil {
			return err
		}
		if err := g.branchAt(e.Y, target, whenTrue, k); err != nil {
			return err
		}
		g.label(skip)
		return nil

	case e.Kind == ExprBinary && isComparison(e.Op):
		// sub. sets the codes; branch on the (possibly negated) relation.
		xr, err := g.evalOperand(e.X, k)
		if err != nil {
			return err
		}
		switch {
		case func() bool { c, ok := constFold(e.Y); return ok && c >= -4096 && c <= 4095 }():
			c, _ := constFold(e.Y)
			g.emit("sub. r0, r%d, %d", xr, c)
		default:
			if yr, ok := g.regOperand(e.Y); ok {
				g.emit("sub. r0, r%d, r%d", xr, yr)
				break
			}
			ys := k
			if xr == g.sreg(k) {
				ys = k + 1
				if ys >= g.numScratch {
					return errf(e.Line, "comparison too deep for the register stack")
				}
			}
			if err := g.evalTo(e.Y, ys); err != nil {
				return err
			}
			g.emit("sub. r0, r%d, r%d", xr, g.sreg(ys))
		}
		cond := riscCond(e.Op, whenTrue)
		g.emit("b%s %s", cond, target)
		g.emit("nop")
		return nil

	default:
		vr, err := g.evalOperand(e, k)
		if err != nil {
			return err
		}
		g.emit("sub. r0, r%d, 0", vr)
		if whenTrue {
			g.emit("bne %s", target)
		} else {
			g.emit("beq %s", target)
		}
		g.emit("nop")
		return nil
	}
}

func isComparison(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// riscCond maps a C comparison (possibly negated) to a branch condition.
func riscCond(op string, whenTrue bool) string {
	m := map[string]string{
		"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
	}
	n := map[string]string{
		"==": "ne", "!=": "eq", "<": "ge", "<=": "gt", ">": "le", ">=": "lt",
	}
	if whenTrue {
		return m[op]
	}
	return n[op]
}

// materializeCond turns a boolean expression into 0/1 in sreg(k).
func (g *rgen) materializeCond(e *Expr, k int) error {
	trueL := g.newLabel("ct")
	endL := g.newLabel("ce")
	if err := g.branchAt(e, trueL, true, k); err != nil {
		return err
	}
	g.emit("mov r%d, 0", g.sreg(k))
	g.emit("ba %s", endL)
	g.emit("nop")
	g.label(trueL)
	g.emit("mov r%d, 1", g.sreg(k))
	g.label(endL)
	return nil
}

// emitData lays out globals and string literals after the code.
func (g *rgen) emitData() {
	g.raw("\n; data\n")
	g.emit(".align 4")
	for _, gl := range g.prog.Globals {
		g.label(gl.Name)
		switch {
		case gl.InitStr != "":
			g.emit(".asciz %q", gl.InitStr)
			if pad := gl.Type.Size() - len(gl.InitStr) - 1; pad > 0 {
				g.emit(".space %d", pad)
			}
		case gl.Type.Kind == TypeChar:
			var v int64
			if gl.Init != nil {
				v, _ = constFold(gl.Init)
			}
			g.emit(".byte %d", v)
		case gl.Type.IsScalar():
			var v int64
			if gl.Init != nil {
				v, _ = constFold(gl.Init)
			}
			g.emit(".word %d", v)
		default:
			g.emit(".space %d", gl.Type.Size())
		}
		g.emit(".align 4")
	}
	for _, s := range g.prog.Strings {
		g.label(s.label)
		g.emit(".asciz %q", s.value)
		g.emit(".align 4")
	}
}

// Runtime routines. Arguments arrive in r26/r27 (the caller's r10/r11);
// the result returns in r26. Locals r16.. are private to the window.
const riscMulRuntime = `
; signed/unsigned 32-bit multiply (low word): shift-and-add
__mul:
	mov r16, 0		; accumulator
	mov r17, r26		; multiplicand
	mov r18, r27		; multiplier
.Lmul_loop:
	sub. r0, r18, 0
	beq .Lmul_done
	nop
	and. r0, r18, 1
	beq .Lmul_skip
	nop
	add r16, r16, r17
.Lmul_skip:
	sll r17, r17, 1
	srl r18, r18, 1
	ba .Lmul_loop
	nop
.Lmul_done:
	mov r26, r16
	ret
	nop
`

const riscDivRuntime = `
; signed 32-bit divide and modulo via restoring unsigned division.
; __udivmod: r26=dividend r27=divisor -> r26=quotient r27=remainder
__udivmod:
	mov r16, 0		; quotient
	mov r17, 0		; remainder
	mov r18, 32		; bit counter
.Ludm_loop:
	sll r17, r17, 1
	srl r19, r26, 31
	or r17, r17, r19
	sll r26, r26, 1
	sll r16, r16, 1
	sub. r0, r17, r27	; unsigned compare remainder vs divisor
	blo .Ludm_skip		; remainder < divisor: leave bit clear
	nop
	sub r17, r17, r27
	add r16, r16, 1
.Ludm_skip:
	sub. r18, r18, 1
	bne .Ludm_loop
	nop
	mov r26, r16
	mov r27, r17
	ret
	nop

; __div: r26=a r27=b -> r26 = a/b (truncated)
__div:
	xor r20, r26, r27	; sign of the quotient
	sub. r0, r26, 0
	bge .Ldiv_ap
	nop
	subr r26, r26, 0
.Ldiv_ap:
	sub. r0, r27, 0
	bge .Ldiv_bp
	nop
	subr r27, r27, 0
.Ldiv_bp:
	mov r10, r26
	mov r11, r27
	call __udivmod
	nop
	mov r26, r10
	sub. r0, r20, 0
	bge .Ldiv_pos
	nop
	subr r26, r26, 0
.Ldiv_pos:
	ret
	nop

; __mod: r26=a r27=b -> r26 = a%b (sign follows the dividend, as in C)
__mod:
	mov r21, r26		; remember the dividend's sign
	sub. r0, r26, 0
	bge .Lmod_ap
	nop
	subr r26, r26, 0
.Lmod_ap:
	sub. r0, r27, 0
	bge .Lmod_bp
	nop
	subr r27, r27, 0
.Lmod_bp:
	mov r10, r26
	mov r11, r27
	call __udivmod
	nop
	mov r26, r11		; remainder
	sub. r0, r21, 0
	bge .Lmod_pos
	nop
	subr r26, r26, 0
.Lmod_pos:
	ret
	nop
`
