package opt

import "risc1/internal/cc/ir"

// algebra applies identity and annihilator rewrites: x+0, x-0, x-x,
// x|0, x^0, x^x, x&0, x&-1, shifts by zero, and shifts of zero. Each
// rewrite turns an instruction into a copy, which the propagation and
// DCE passes then dissolve. Multiplication and division identities
// live in the strength-reduction pass.
func algebra(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for k := range b.Instrs {
			in := &b.Instrs[k]
			if !in.Op.IsBinary() {
				continue
			}
			if v, ok := simplify(in); ok {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: v, Line: in.Line}
				n++
			}
		}
	}
	return n
}

// simplify returns the value an instruction reduces to, if any.
func simplify(in *ir.Instr) (ir.Value, bool) {
	a, b := in.A, in.B
	ac := a.Kind == ir.ValConst
	bc := b.Kind == ir.ValConst
	switch in.Op {
	case ir.OpAdd:
		if ac && a.C == 0 {
			return b, true
		}
		if bc && b.C == 0 {
			return a, true
		}
	case ir.OpSub:
		if bc && b.C == 0 {
			return a, true
		}
		if a.Equal(b) {
			return ir.Const(0), true
		}
	case ir.OpOr:
		if ac && a.C == 0 {
			return b, true
		}
		if bc && b.C == 0 {
			return a, true
		}
		if a.Equal(b) {
			return a, true
		}
	case ir.OpXor:
		if ac && a.C == 0 {
			return b, true
		}
		if bc && b.C == 0 {
			return a, true
		}
		if a.Equal(b) {
			return ir.Const(0), true
		}
	case ir.OpAnd:
		if (ac && a.C == 0) || (bc && b.C == 0) {
			return ir.Const(0), true
		}
		if ac && a.C == -1 {
			return b, true
		}
		if bc && b.C == -1 {
			return a, true
		}
		if a.Equal(b) {
			return a, true
		}
	case ir.OpShl, ir.OpShr:
		if bc && b.C == 0 {
			return a, true
		}
		// Zero shifted by anything is zero on both machines, whatever
		// their out-of-range count behavior.
		if ac && a.C == 0 {
			return ir.Const(0), true
		}
	}
	return ir.Value{}, false
}
