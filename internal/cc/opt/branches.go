package opt

import "risc1/internal/cc/ir"

// branches simplifies control flow: branches whose outcome is known
// become jumps, and jumps through empty forwarding blocks are
// threaded to their final destination. Unreachable blocks left behind
// are swept by dce.
func branches(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		t := &b.Term
		if t.Kind == ir.TermBranch {
			if dest, ok := decide(t); ok {
				*t = ir.Term{Kind: ir.TermJump, Then: dest, Line: t.Line}
				n++
			}
		}
		// Thread each edge through chains of empty single-jump blocks.
		switch t.Kind {
		case ir.TermJump:
			n += thread(&t.Then)
		case ir.TermBranch:
			n += thread(&t.Then)
			n += thread(&t.Else)
			if t.Then == t.Else {
				*t = ir.Term{Kind: ir.TermJump, Then: t.Then, Line: t.Line}
				n++
			}
		}
	}
	return n
}

// decide resolves a branch whose outcome is static: equal targets,
// two constant operands, or the same value on both sides (x == x).
func decide(t *ir.Term) (*ir.Block, bool) {
	pick := func(taken bool) *ir.Block {
		if taken {
			return t.Then
		}
		return t.Else
	}
	if t.Then == t.Else {
		return t.Then, true
	}
	if t.A.Kind == ir.ValConst && t.B.Kind == ir.ValConst {
		return pick(t.Rel.Eval(t.A.C, t.B.C)), true
	}
	if t.A.Equal(t.B) {
		// x <rel> x: reflexive relations hold, strict ones do not.
		return pick(t.Rel == ir.RelEq || t.Rel == ir.RelLe || t.Rel == ir.RelGe), true
	}
	return nil, false
}

// thread retargets an edge through empty blocks that only jump on,
// with a visited set guarding against empty infinite loops.
func thread(edge **ir.Block) int {
	n := 0
	seen := map[*ir.Block]bool{*edge: true}
	for {
		b := *edge
		if len(b.Instrs) != 0 || b.Term.Kind != ir.TermJump || seen[b.Term.Then] {
			return n
		}
		seen[b.Term.Then] = true
		*edge = b.Term.Then
		n++
	}
}
