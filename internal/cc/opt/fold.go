package opt

import "risc1/internal/cc/ir"

// fold evaluates instructions whose operands are all constants,
// rewriting them to plain copies. Arithmetic is 32-bit two's
// complement with wraparound, which both simulated machines share.
//
// Edge cases are pinned here once, for both backends:
//   - Division or modulo by zero never folds: the fault stays a
//     run-time event with each machine's documented behavior.
//   - INT_MIN / -1 folds to INT_MIN and INT_MIN % -1 folds to 0,
//     matching what both the CISC divide instruction and the RISC I
//     software divide routine compute.
//   - Shifts fold only for counts in 0..31; anything else stays a
//     run-time shift (lowering already masks literal counts, so
//     out-of-range constants only arise from folded arithmetic).
func fold(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for k := range b.Instrs {
			in := &b.Instrs[k]
			var c int32
			switch {
			case in.Op == ir.OpNeg && in.A.Kind == ir.ValConst:
				c = -in.A.C
			case in.Op == ir.OpCom && in.A.Kind == ir.ValConst:
				c = ^in.A.C
			case in.Op.IsBinary() && in.A.Kind == ir.ValConst && in.B.Kind == ir.ValConst:
				var ok bool
				c, ok = foldBinary(in.Op, in.A.C, in.B.C)
				if !ok {
					continue
				}
			default:
				continue
			}
			*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: ir.Const(c), Line: in.Line}
			n++
		}
	}
	return n
}

// foldBinary folds one binary op over constants; ok is false when the
// operation must stay a run-time event.
func foldBinary(op ir.Op, a, b int32) (int32, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		if b < 0 || b > 31 {
			return 0, false
		}
		return a << uint(b), true
	case ir.OpShr:
		if b < 0 || b > 31 {
			return 0, false
		}
		return a >> uint(b), true
	}
	return 0, false
}
