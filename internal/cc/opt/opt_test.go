package opt

import (
	"strings"
	"testing"

	"risc1/internal/cc/ir"
)

// block makes a single-block function from instructions and a
// terminator, with NTemps set high enough for every referenced temp.
func fn(instrs []ir.Instr, term ir.Term) *ir.Func {
	f := &ir.Func{Name: "t", NTemps: 32}
	b := &ir.Block{Name: "b0", Instrs: instrs, Term: term}
	f.Blocks = []*ir.Block{b}
	return f
}

func retT(t int) ir.Term {
	return ir.Term{Kind: ir.TermReturn, Ret: ir.Temp(t)}
}

func TestFoldBinary(t *testing.T) {
	const intMin = -2147483648
	cases := []struct {
		op   ir.Op
		a, b int32
		want int32
		ok   bool
	}{
		{ir.OpAdd, 2147483647, 1, intMin, true}, // wraps
		{ir.OpSub, intMin, 1, 2147483647, true},
		{ir.OpMul, 65536, 65536, 0, true},
		{ir.OpDiv, intMin, -1, intMin, true}, // the classic overflow case
		{ir.OpMod, intMin, -1, 0, true},
		{ir.OpDiv, 7, 0, 0, false}, // never fold: must fault at run time
		{ir.OpMod, 7, 0, 0, false},
		{ir.OpDiv, -17, 5, -3, true}, // truncating, as in C
		{ir.OpMod, -17, 5, -2, true},
		{ir.OpShl, 1, 31, intMin, true},
		{ir.OpShr, -8, 2, -2, true}, // arithmetic shift
		{ir.OpShl, 1, 32, 0, false}, // out-of-range counts stay runtime
		{ir.OpShr, 1, -1, 0, false},
		{ir.OpAnd, 0x0ff0, 0x00ff, 0x00f0, true},
	}
	for _, c := range cases {
		got, ok := foldBinary(c.op, c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("fold op %d (%d, %d) = %d, %v; want %d, %v", c.op, c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestPropagateThenFold(t *testing.T) {
	f := fn([]ir.Instr{
		{Op: ir.OpCopy, Dst: ir.Temp(0), A: ir.Const(6)},
		{Op: ir.OpCopy, Dst: ir.Temp(1), A: ir.Const(7)},
		{Op: ir.OpMul, Dst: ir.Temp(2), A: ir.Temp(0), B: ir.Temp(1)},
	}, retT(2))
	if n := propagate(f); n == 0 {
		t.Fatal("propagate did nothing")
	}
	if n := fold(f); n == 0 {
		t.Fatal("fold did nothing")
	}
	in := f.Blocks[0].Instrs[2]
	if in.Op != ir.OpCopy || in.A.Kind != ir.ValConst || in.A.C != 42 {
		t.Errorf("want t2 = 42, got %s", f.Dump())
	}
}

func TestAlgebraIdentities(t *testing.T) {
	f := fn([]ir.Instr{
		{Op: ir.OpAdd, Dst: ir.Temp(1), A: ir.Temp(0), B: ir.Const(0)},  // t0
		{Op: ir.OpMul, Dst: ir.Temp(2), A: ir.Temp(1), B: ir.Const(1)},  // handled by strength, not algebra
		{Op: ir.OpXor, Dst: ir.Temp(3), A: ir.Temp(1), B: ir.Temp(1)},   // 0
		{Op: ir.OpAnd, Dst: ir.Temp(4), A: ir.Temp(3), B: ir.Const(-1)}, // t3
		{Op: ir.OpShl, Dst: ir.Temp(5), A: ir.Temp(4), B: ir.Const(0)},  // t4
	}, retT(5))
	algebra(f)
	ins := f.Blocks[0].Instrs
	check := func(i int, wantOp ir.Op, want ir.Value) {
		t.Helper()
		if ins[i].Op != wantOp || !ins[i].A.Equal(want) {
			t.Errorf("instr %d: got %s", i, f.Dump())
		}
	}
	check(0, ir.OpCopy, ir.Temp(0))
	check(2, ir.OpCopy, ir.Const(0))
	check(3, ir.OpCopy, ir.Temp(3))
	check(4, ir.OpCopy, ir.Temp(4))
}

func TestStrengthReduction(t *testing.T) {
	f := fn([]ir.Instr{
		{Op: ir.OpMul, Dst: ir.Temp(1), A: ir.Temp(0), B: ir.Const(8)},
		{Op: ir.OpDiv, Dst: ir.Temp(2), A: ir.Temp(0), B: ir.Const(4)},
		{Op: ir.OpMod, Dst: ir.Temp(3), A: ir.Temp(0), B: ir.Const(0)}, // untouched
		{Op: ir.OpDiv, Dst: ir.Temp(4), A: ir.Temp(0), B: ir.Const(7)}, // untouched (not a power of two)
	}, retT(1))
	if n := strength(f); n < 2 {
		t.Fatalf("strength rewrites = %d, want >= 2\n%s", n, f.Dump())
	}
	d := f.Dump()
	if !strings.Contains(d, "<< 3") {
		t.Errorf("mul by 8 should become a shift:\n%s", d)
	}
	if !strings.Contains(d, ">> 31") || !strings.Contains(d, ">> 2") {
		t.Errorf("div by 4 should become the sign-bias shift sequence:\n%s", d)
	}
	if !strings.Contains(d, "% 0") || !strings.Contains(d, "/ 7") {
		t.Errorf("mod-by-zero and div-by-7 must stay:\n%s", d)
	}
}

// TestStrengthDivMatchesDiv checks the signed power-of-two shift
// sequence against real division over a value sweep, including the
// corners.
func TestStrengthDivMatchesDiv(t *testing.T) {
	const intMin = -2147483648
	vals := []int32{intMin, intMin + 1, -100, -17, -8, -7, -1, 0, 1, 7, 8, 100, 2147483647}
	for _, c := range []int32{2, 4, 8, 1 << 30} {
		for _, a := range vals {
			// Mirror of the emitted sequence.
			sign := a >> 31
			bias := sign & (c - 1)
			sum := a + bias
			q := sum >> ir.Log2(int(c))
			m := a - (sum & -c)
			if q != a/c {
				t.Errorf("%d / %d: sequence %d, want %d", a, c, q, a/c)
			}
			if m != a%c {
				t.Errorf("%d %% %d: sequence %d, want %d", a, c, m, a%c)
			}
		}
	}
}

func TestDCEKeepsDivModDropsPure(t *testing.T) {
	f := fn([]ir.Instr{
		{Op: ir.OpDiv, Dst: ir.Temp(0), A: ir.Const(1), B: ir.Const(0)}, // dead but kept
		{Op: ir.OpMod, Dst: ir.Temp(1), A: ir.Const(1), B: ir.Const(0)}, // dead but kept
		{Op: ir.OpAdd, Dst: ir.Temp(2), A: ir.Const(1), B: ir.Const(2)}, // dead, dropped
		{Op: ir.OpCopy, Dst: ir.Temp(3), A: ir.Const(5)},
	}, retT(3))
	dce(f)
	ins := f.Blocks[0].Instrs
	if len(ins) != 3 || ins[0].Op != ir.OpDiv || ins[1].Op != ir.OpMod {
		t.Errorf("dce result:\n%s", f.Dump())
	}
}

func TestDCESweepsUnreachableBlocks(t *testing.T) {
	f := &ir.Func{Name: "t", NTemps: 1}
	b0 := &ir.Block{Name: "b0"}
	b1 := &ir.Block{Name: "b1"} // unreachable
	b2 := &ir.Block{Name: "b2"}
	b0.Term = ir.Term{Kind: ir.TermJump, Then: b2}
	b1.Term = ir.Term{Kind: ir.TermJump, Then: b2}
	b2.Term = ir.Term{Kind: ir.TermReturn}
	f.Blocks = []*ir.Block{b0, b1, b2}
	if n := dce(f); n != 1 {
		t.Errorf("dce = %d, want 1 (swept block)", n)
	}
	if len(f.Blocks) != 2 || f.Blocks[0] != b0 || f.Blocks[1] != b2 {
		t.Errorf("blocks after sweep: %v", f.Blocks)
	}
}

func TestBranchesDecideAndThread(t *testing.T) {
	f := &ir.Func{Name: "t", NTemps: 1}
	b0 := &ir.Block{Name: "b0"}
	b1 := &ir.Block{Name: "b1"} // empty forwarder
	b2 := &ir.Block{Name: "b2"}
	b0.Term = ir.Term{Kind: ir.TermBranch, Rel: ir.RelLt, A: ir.Const(1), B: ir.Const(2), Then: b1, Else: b2}
	b1.Term = ir.Term{Kind: ir.TermJump, Then: b2}
	b2.Term = ir.Term{Kind: ir.TermReturn}
	f.Blocks = []*ir.Block{b0, b1, b2}
	if n := branches(f); n == 0 {
		t.Fatal("branches did nothing")
	}
	if b0.Term.Kind != ir.TermJump || b0.Term.Then != b2 {
		t.Errorf("b0 should jump straight to b2, got %+v", b0.Term)
	}
}

func TestBranchReflexive(t *testing.T) {
	for _, c := range []struct {
		rel  ir.Rel
		then bool
	}{
		{ir.RelEq, true}, {ir.RelLe, true}, {ir.RelGe, true},
		{ir.RelNe, false}, {ir.RelLt, false}, {ir.RelGt, false},
	} {
		b1 := &ir.Block{Name: "then", Term: ir.Term{Kind: ir.TermReturn}}
		b2 := &ir.Block{Name: "else", Term: ir.Term{Kind: ir.TermReturn}}
		term := ir.Term{Kind: ir.TermBranch, Rel: c.rel, A: ir.Temp(0), B: ir.Temp(0), Then: b1, Else: b2}
		dest, ok := decide(&term)
		if !ok {
			t.Errorf("rel %d: x<rel>x should decide", c.rel)
			continue
		}
		want := b2
		if c.then {
			want = b1
		}
		if dest != want {
			t.Errorf("rel %d: took %s", c.rel, dest.Name)
		}
	}
}

func TestStoreSinkSkipsCharCells(t *testing.T) {
	word := &ir.Var{Name: "w", Kind: ir.VarGlobal, Scalar: true, Size: 4}
	ch := &ir.Var{Name: "c", Kind: ir.VarGlobal, Scalar: true, Char: true, Size: 1}
	f := fn([]ir.Instr{
		{Op: ir.OpAdd, Dst: ir.Temp(0), A: ir.Const(1), B: ir.Const(2)},
		{Op: ir.OpCopy, Dst: ir.VarRef(word), A: ir.Temp(0)},
		{Op: ir.OpAdd, Dst: ir.Temp(1), A: ir.Const(3), B: ir.Const(4)},
		{Op: ir.OpCopy, Dst: ir.VarRef(ch), A: ir.Temp(1)},
	}, ir.Term{Kind: ir.TermReturn})
	storeSink(f)
	ins := f.Blocks[0].Instrs
	if len(ins) != 3 {
		t.Fatalf("want 3 instrs after sinking into the word var:\n%s", f.Dump())
	}
	if !ins[0].Dst.Equal(ir.VarRef(word)) {
		t.Errorf("add should now target the word var:\n%s", f.Dump())
	}
	// The char store must keep its separate copy (truncation lives in
	// OpCopy-to-char only).
	if ins[2].Op != ir.OpCopy || !ins[2].Dst.Equal(ir.VarRef(ch)) {
		t.Errorf("char copy must survive:\n%s", f.Dump())
	}
}

// TestOptimizeReachesFixpoint runs the whole pipeline on a program
// needing several rounds (propagation exposing folds exposing dead
// branches) and checks the final shape and the level-0 contract.
func TestOptimizeReachesFixpoint(t *testing.T) {
	build := func() *ir.Program {
		f := &ir.Func{Name: "main", NTemps: 8}
		b0 := &ir.Block{Name: "b0"}
		b1 := &ir.Block{Name: "b1"}
		b2 := &ir.Block{Name: "b2"}
		b3 := &ir.Block{Name: "b3"}
		b0.Instrs = []ir.Instr{
			{Op: ir.OpCopy, Dst: ir.Temp(0), A: ir.Const(4)},
			{Op: ir.OpMul, Dst: ir.Temp(1), A: ir.Temp(0), B: ir.Const(4)},
		}
		b0.Term = ir.Term{Kind: ir.TermBranch, Rel: ir.RelGt, A: ir.Temp(1), B: ir.Const(10), Then: b1, Else: b2}
		b1.Term = ir.Term{Kind: ir.TermJump, Then: b3}
		b2.Instrs = []ir.Instr{{Op: ir.OpCopy, Dst: ir.Temp(2), A: ir.Const(99)}}
		b2.Term = ir.Term{Kind: ir.TermJump, Then: b3}
		b3.Term = ir.Term{Kind: ir.TermReturn, Ret: ir.Temp(1)}
		f.Blocks = []*ir.Block{b0, b1, b2, b3}
		return &ir.Program{Funcs: []*ir.Func{f}}
	}

	if stats := Optimize(build(), 0); stats != nil {
		t.Errorf("level 0 must be a no-op, got %v", stats)
	}

	p := build()
	stats := Optimize(p, 1)
	total := 0
	for _, s := range stats {
		total += s.Rewrites
	}
	if total == 0 {
		t.Fatal("pipeline made no rewrites")
	}
	f := p.Funcs[0]
	// 4*4 = 16 > 10: the branch decides, b2 dies, the program collapses
	// to "return 16".
	if len(f.Blocks) != 2 {
		t.Errorf("want 2 blocks after collapse, got:\n%s", f.Dump())
	}
	last := f.Blocks[len(f.Blocks)-1]
	if last.Term.Kind != ir.TermReturn {
		t.Fatalf("last block should return:\n%s", f.Dump())
	}
	// Running the pipeline again must change nothing (fixpoint).
	if again := Optimize(p, 1); again != nil {
		for _, s := range again {
			if s.Rewrites != 0 {
				t.Errorf("not a fixpoint: %s rewrote %d more", s.Name, s.Rewrites)
			}
		}
	}
}
