// Package opt is the machine-independent optimization pipeline over
// the shared IR. Every pass is a pure function on a single ir.Func
// that returns how many rewrites it performed; the driver iterates the
// whole pipeline to a fixpoint (a round in which no pass rewrites
// anything). Because the passes run before either backend sees the
// program, both the RISC I and the CISC generators receive identically
// optimized input — the optimization-symmetry requirement behind the
// paper's code-size and cycle comparisons (DESIGN.md section 9).
package opt

import "risc1/internal/cc/ir"

// Pass is one rewrite pass. Run returns the number of rewrites
// applied (0 means the function is already a fixpoint of this pass).
type Pass struct {
	Name string
	Run  func(*ir.Func) int
}

// Passes is the pipeline in application order. Order matters only for
// convergence speed, not for the final result: the driver repeats the
// whole list until a full round makes no change.
var Passes = []Pass{
	{"prop", propagate},
	{"fold", fold},
	{"algebra", algebra},
	{"strength", strength},
	{"storesink", storeSink},
	{"branches", branches},
	{"dce", dce},
}

// Stat records the total rewrites one pass performed across the whole
// program; the slice feeds the run/bench report's compiler section.
type Stat struct {
	Name     string
	Rewrites int
}

// maxRounds bounds the fixpoint iteration. Each round either rewrites
// something (and the program shrinks or gets strictly simpler) or the
// loop stops, so real programs converge in a handful of rounds; the
// cap turns a pass-interaction bug into a diagnosable non-optimal
// program instead of a hang.
const maxRounds = 50

// Optimize runs the pipeline over every function at the given level
// and returns per-pass rewrite totals. Level 0 returns the program
// untouched with nil stats; any higher level runs the full pipeline
// to fixpoint.
func Optimize(p *ir.Program, level int) []Stat {
	if level <= 0 {
		return nil
	}
	stats := make([]Stat, len(Passes))
	for i, ps := range Passes {
		stats[i].Name = ps.Name
	}
	for round := 0; round < maxRounds; round++ {
		changed := 0
		for i, ps := range Passes {
			for _, f := range p.Funcs {
				n := ps.Run(f)
				stats[i].Rewrites += n
				changed += n
			}
		}
		if changed == 0 {
			break
		}
	}
	return stats
}

// defCounts returns how many times each temporary is defined. Most
// temporaries are defined exactly once (lowering is nearly SSA); the
// exception is boolean materialization, which writes its result from
// two blocks. Passes only reason about single-definition temporaries.
func defCounts(f *ir.Func) []int {
	defs := make([]int, f.NTemps)
	for _, b := range f.Blocks {
		for k := range b.Instrs {
			if d := b.Instrs[k].Dst; d.Kind == ir.ValTemp {
				defs[d.Temp]++
			}
		}
	}
	return defs
}

// useCounts returns how many operand positions read each temporary,
// across instructions and terminators.
func useCounts(f *ir.Func) []int {
	uses := make([]int, f.NTemps)
	for _, b := range f.Blocks {
		for k := range b.Instrs {
			for _, op := range b.Instrs[k].Operands() {
				if op.Kind == ir.ValTemp {
					uses[op.Temp]++
				}
			}
		}
		for _, op := range b.Term.Operands() {
			if op.Kind == ir.ValTemp {
				uses[op.Temp]++
			}
		}
	}
	return uses
}
