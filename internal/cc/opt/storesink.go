package opt

import "risc1/internal/cc/ir"

// storeSink fuses `t = <op> ...; v = t` into `v = <op> ...` when t is
// used only by that adjacent copy. This is what lets the backends
// write results straight into variable homes — a register move saved
// on RISC I, and on the CISC machine the difference between a
// register round trip and one memory-destination instruction.
//
// Char variables are excluded: a copy into a char cell truncates to a
// byte, and keeping that truncation confined to OpCopy is what keeps
// both backends' char semantics aligned.
func storeSink(f *ir.Func) int {
	n := 0
	defs := defCounts(f)
	uses := useCounts(f)
	for _, b := range f.Blocks {
		for k := 0; k+1 < len(b.Instrs); k++ {
			in := &b.Instrs[k]
			next := &b.Instrs[k+1]
			if next.Op != ir.OpCopy || next.Dst.Kind != ir.ValVar || next.Dst.Var.Char {
				continue
			}
			if in.Op == ir.OpStore || !in.Dst.Valid() {
				continue
			}
			t := in.Dst
			if t.Kind != ir.ValTemp || !next.A.Equal(t) {
				continue
			}
			if defs[t.Temp] != 1 || uses[t.Temp] != 1 {
				continue
			}
			in.Dst = next.Dst
			b.Instrs = append(b.Instrs[:k+1], b.Instrs[k+2:]...)
			uses[t.Temp] = 0
			n++
		}
	}
	return n
}
