package opt

import "risc1/internal/cc/ir"

// propagate is the propagation pass: it forwards constants and copies
// of single-definition temporaries to their uses, forwards variable
// reads within a block, and deletes self-copies.
//
// Soundness without SSA rests on the single-definition rule: if t is
// defined exactly once as `t = s` and s is a constant or a temporary
// that is itself defined exactly once, then every use reached by t's
// definition sees exactly the value s, so the use can read s directly.
// Multi-definition temporaries (boolean materialization) are left
// alone.
//
// One deliberate restriction: a constant is never propagated into the
// count operand of a shift unless it lies in 0..31. Out-of-range
// counts keep their run-time form, where each machine applies its own
// native behavior — the same behavior the unoptimized program has.
func propagate(f *ir.Func) int {
	n := 0
	defs := defCounts(f)

	// Map each single-definition temp to its copied source, when that
	// source is itself stable: a constant, or a single-def temp.
	repl := make([]ir.Value, f.NTemps)
	for _, b := range f.Blocks {
		for k := range b.Instrs {
			in := &b.Instrs[k]
			if in.Op != ir.OpCopy || in.Dst.Kind != ir.ValTemp || defs[in.Dst.Temp] != 1 {
				continue
			}
			switch in.A.Kind {
			case ir.ValConst:
				repl[in.Dst.Temp] = in.A
			case ir.ValTemp:
				if defs[in.A.Temp] == 1 {
					repl[in.Dst.Temp] = in.A
				}
			}
		}
	}
	// Resolve chains (t2 = t1, t3 = t2) so one round suffices.
	resolve := func(v ir.Value) ir.Value {
		for v.Kind == ir.ValTemp && repl[v.Temp].Valid() {
			v = repl[v.Temp]
		}
		return v
	}

	shiftCount := func(in *ir.Instr, op *ir.Value) bool {
		return (in.Op == ir.OpShl || in.Op == ir.OpShr) && op == &in.B
	}
	apply := func(in *ir.Instr, op *ir.Value) {
		r := resolve(*op)
		if r.Equal(*op) {
			return
		}
		if r.Kind == ir.ValConst && in != nil && shiftCount(in, op) && (r.C < 0 || r.C > 31) {
			return
		}
		*op = r
		n++
	}

	for _, b := range f.Blocks {
		// Forward variable reads within the block: after `t = v`, uses
		// of t can read v directly until v is rewritten, t is redefined,
		// or (for globals and addressed variables) memory is touched.
		// After `v = $c`, reads of v become the constant under the same
		// kill rules; char cells are excluded because their stores
		// truncate.
		varOf := make(map[int]*ir.Var)
		varConst := make(map[*ir.Var]int32)
		killMem := func() {
			for t, v := range varOf {
				if v.Kind == ir.VarGlobal || v.Addressed {
					delete(varOf, t)
				}
			}
			for v := range varConst {
				if v.Kind == ir.VarGlobal || v.Addressed {
					delete(varConst, v)
				}
			}
		}
		forward := func(in *ir.Instr, op *ir.Value) {
			if op.Kind == ir.ValTemp {
				if v, ok := varOf[op.Temp]; ok {
					*op = ir.VarRef(v)
					n++
				}
			}
			if op.Kind == ir.ValVar {
				if c, ok := varConst[op.Var]; ok {
					if in != nil && shiftCount(in, op) && (c < 0 || c > 31) {
						return
					}
					*op = ir.Const(c)
					n++
				}
			}
		}
		for k := range b.Instrs {
			in := &b.Instrs[k]
			for _, op := range in.Operands() {
				apply(in, op)
				forward(in, op)
			}
			switch {
			case in.Op == ir.OpStore:
				killMem()
			case in.Op == ir.OpCall:
				killMem()
			case in.Dst.Kind == ir.ValVar:
				for t, v := range varOf {
					if v == in.Dst.Var {
						delete(varOf, t)
					}
				}
				delete(varConst, in.Dst.Var)
				if in.Op == ir.OpCopy && in.A.Kind == ir.ValConst && !in.Dst.Var.Char {
					varConst[in.Dst.Var] = in.A.C
				}
			case in.Dst.Kind == ir.ValTemp:
				delete(varOf, in.Dst.Temp)
				if in.Op == ir.OpCopy && in.A.Kind == ir.ValVar {
					varOf[in.Dst.Temp] = in.A.Var
				}
			}
		}
		for _, op := range b.Term.Operands() {
			apply(nil, op)
			forward(nil, op)
		}

		// Delete self-copies (v = v), which variable forwarding creates.
		out := b.Instrs[:0]
		for k := range b.Instrs {
			in := b.Instrs[k]
			if in.Op == ir.OpCopy && in.Dst.Kind == ir.ValVar && in.Dst.Equal(in.A) {
				n++
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return n
}
