package opt

import "risc1/internal/cc/ir"

// strength rewrites multiplication, division and modulo by selected
// constants into cheaper operations. On RISC I these ops are calls
// into the software arithmetic runtime, so removing one saves a call;
// on the CISC machine it replaces a slow iterative instruction. The
// pass lives here — not in a backend — precisely so both machines get
// the same treatment (this code started life inside gen_risc.go and
// silently favored RISC I).
//
// Division rewrites are only applied for positive power-of-two
// divisors, using the sign-bias sequence that rounds toward zero like
// a real division:
//
//	bias = (a >> 31) & (c-1)   // c-1 for negative a, else 0
//	a/c  = (a + bias) >> log2(c)
//	a%c  = a - ((a + bias) & -c)
//
// Everything uses arithmetic shifts and masks the IR already has, so
// no new ops are needed.
func strength(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		var out []ir.Instr
		for k := range b.Instrs {
			in := b.Instrs[k]
			repl, ok := reduce(f, &in)
			if !ok {
				out = append(out, in)
				continue
			}
			out = append(out, repl...)
			n++
		}
		b.Instrs = out
	}
	return n
}

// reduce returns the replacement sequence for one instruction, or
// ok=false to keep it as is.
func reduce(f *ir.Func, in *ir.Instr) ([]ir.Instr, bool) {
	cp := func(v ir.Value) []ir.Instr {
		return []ir.Instr{{Op: ir.OpCopy, Dst: in.Dst, A: v, Line: in.Line}}
	}
	one := func(op ir.Op, a ir.Value) []ir.Instr {
		return []ir.Instr{{Op: op, Dst: in.Dst, A: a, Line: in.Line}}
	}

	switch in.Op {
	case ir.OpMul:
		a, b := in.A, in.B
		if a.Kind == ir.ValConst { // normalize the constant to B
			a, b = b, a
		}
		if b.Kind != ir.ValConst {
			return nil, false
		}
		switch {
		case b.C == 0:
			return cp(ir.Const(0)), true
		case b.C == 1:
			return cp(a), true
		case b.C == -1:
			return one(ir.OpNeg, a), true
		case ir.PowerOfTwo(b.C):
			return []ir.Instr{{Op: ir.OpShl, Dst: in.Dst, A: a,
				B: ir.Const(int32(ir.Log2(int(b.C)))), Line: in.Line}}, true
		}
		return nil, false

	case ir.OpDiv, ir.OpMod:
		if in.B.Kind != ir.ValConst {
			return nil, false
		}
		c := in.B.C
		switch {
		case c == 1:
			if in.Op == ir.OpMod {
				return cp(ir.Const(0)), true
			}
			return cp(in.A), true
		case c == -1:
			if in.Op == ir.OpMod {
				return cp(ir.Const(0)), true
			}
			return one(ir.OpNeg, in.A), true
		case ir.PowerOfTwo(c) && c > 1:
			sh := int32(ir.Log2(int(c)))
			sign, bias, sum := f.NewTemp(), f.NewTemp(), f.NewTemp()
			seq := []ir.Instr{
				{Op: ir.OpShr, Dst: sign, A: in.A, B: ir.Const(31), Line: in.Line},
				{Op: ir.OpAnd, Dst: bias, A: sign, B: ir.Const(c - 1), Line: in.Line},
				{Op: ir.OpAdd, Dst: sum, A: in.A, B: bias, Line: in.Line},
			}
			if in.Op == ir.OpDiv {
				return append(seq,
					ir.Instr{Op: ir.OpShr, Dst: in.Dst, A: sum, B: ir.Const(sh), Line: in.Line}), true
			}
			trunc := f.NewTemp()
			return append(seq,
				ir.Instr{Op: ir.OpAnd, Dst: trunc, A: sum, B: ir.Const(-c), Line: in.Line},
				ir.Instr{Op: ir.OpSub, Dst: in.Dst, A: in.A, B: trunc, Line: in.Line}), true
		}
		return nil, false
	}
	return nil, false
}
