package opt

import "risc1/internal/cc/ir"

// dce removes code that cannot affect execution: blocks unreachable
// from the entry, pure instructions whose temporary result is never
// read (loads included — MiniC's machines have no load side effects),
// and the unused result registers of calls (the call itself stays for
// its side effects).
func dce(f *ir.Func) int {
	n := 0

	// Sweep unreachable blocks.
	reach := map[*ir.Block]bool{f.Blocks[0]: true}
	work := []*ir.Block{f.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Term.Succs() {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	if len(reach) < len(f.Blocks) {
		kept := f.Blocks[:0]
		for _, b := range f.Blocks {
			if reach[b] {
				kept = append(kept, b)
			} else {
				n++
			}
		}
		f.Blocks = kept
	}

	// Delete definitions of unread temporaries. Calls stay for their
	// side effects (their unused result register is cleared), and so
	// do divisions and modulo — a zero divisor must still fault at
	// run time, at every optimization level.
	uses := useCounts(f)
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for k := range b.Instrs {
			in := b.Instrs[k]
			if in.Dst.Kind == ir.ValTemp && uses[in.Dst.Temp] == 0 {
				switch in.Op {
				case ir.OpCall:
					in.Dst = ir.Value{}
					n++
				case ir.OpDiv, ir.OpMod:
					// keep
				default:
					n++
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return n
}
