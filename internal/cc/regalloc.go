package cc

import (
	"sort"

	"risc1/internal/cc/ir"
)

// Temporary allocation shared by both backends: a backward liveness
// analysis over the CFG, live intervals in layout order, and a linear
// scan over the given register pool with furthest-end spilling. The
// machines differ only in the pool they offer and in whether a call
// destroys it: RISC I's register windows preserve the caller's locals
// across calls, while the CISC machine's evaluation registers are
// caller-saved, so temporaries that live across a call are forced
// into frame slots up front (a frame operand is native there anyway).

// tempLoc is where one temporary lives for its whole lifetime.
type tempLoc struct {
	reg  int // register number, or -1 when spilled
	slot int // spill slot index when reg < 0
}

// allocation maps every temporary of a function to its home.
type allocation struct {
	loc     []tempLoc
	nSpills int
}

// interval is a temporary's live range in instruction-point numbering.
type interval struct {
	temp       int
	start, end int
}

// allocateTemps assigns every live temporary of f a register from
// pool or a spill slot. When spillAcrossCalls is set, temporaries
// whose interval spans an OpCall never get a register.
func allocateTemps(f *ir.Func, pool []int, spillAcrossCalls bool) allocation {
	a := allocation{loc: make([]tempLoc, f.NTemps)}
	for i := range a.loc {
		a.loc[i] = tempLoc{reg: -1, slot: -1}
	}
	if f.NTemps == 0 {
		return a
	}

	intervals, callPoints := liveIntervals(f)

	spill := func(t int) {
		a.loc[t] = tempLoc{reg: -1, slot: a.nSpills}
		a.nSpills++
	}

	// Force call-crossing temporaries into the frame where required.
	var scan []interval
	for _, iv := range intervals {
		forced := false
		if spillAcrossCalls {
			for _, cp := range callPoints {
				if iv.start < cp && iv.end > cp {
					forced = true
					break
				}
			}
		}
		if forced {
			spill(iv.temp)
		} else {
			scan = append(scan, iv)
		}
	}

	// Linear scan in order of interval start.
	sort.Slice(scan, func(i, j int) bool { return scan[i].start < scan[j].start })
	free := append([]int(nil), pool...)
	var active []interval // sorted by end, all holding registers
	for _, iv := range scan {
		// Expire intervals that ended before this one starts.
		k := 0
		for _, act := range active {
			if act.end >= iv.start {
				active[k] = act
				k++
			} else {
				free = append(free, a.loc[act.temp].reg)
			}
		}
		active = active[:k]

		if len(free) > 0 {
			a.loc[iv.temp] = tempLoc{reg: free[len(free)-1], slot: -1}
			free = free[:len(free)-1]
		} else {
			// Spill whichever of the active intervals (or this one)
			// lives longest.
			victim := -1
			for j, act := range active {
				if act.end > iv.end && (victim < 0 || act.end > active[victim].end) {
					victim = j
				}
			}
			if victim >= 0 {
				v := active[victim]
				a.loc[iv.temp] = tempLoc{reg: a.loc[v.temp].reg, slot: -1}
				spill(v.temp)
				active = append(active[:victim], active[victim+1:]...)
			} else {
				spill(iv.temp)
				continue
			}
		}
		active = append(active, iv)
		sort.Slice(active, func(i, j int) bool { return active[i].end < active[j].end })
	}
	return a
}

// liveIntervals numbers instruction points in layout order and builds
// one hole-free interval per live temporary, widened to block
// boundaries where liveness crosses them. It also reports the points
// occupied by calls.
func liveIntervals(f *ir.Func) ([]interval, []int) {
	liveIn, liveOut := liveness(f)

	start := make([]int, f.NTemps)
	end := make([]int, f.NTemps)
	for t := range start {
		start[t] = -1
	}
	touch := func(t, p int) {
		if start[t] < 0 || p < start[t] {
			start[t] = p
		}
		if p > end[t] {
			end[t] = p
		}
	}

	var callPoints []int
	p := 0
	for bi, b := range f.Blocks {
		blockStart := p
		for k := range b.Instrs {
			in := &b.Instrs[k]
			for _, op := range in.Operands() {
				if op.Kind == ir.ValTemp {
					touch(op.Temp, p)
				}
			}
			if in.Dst.Kind == ir.ValTemp {
				touch(in.Dst.Temp, p)
			}
			if in.Op == ir.OpCall {
				callPoints = append(callPoints, p)
			}
			p++
		}
		for _, op := range b.Term.Operands() {
			if op.Kind == ir.ValTemp {
				touch(op.Temp, p)
			}
		}
		blockEnd := p
		p++
		for t := range liveIn[bi] {
			touch(t, blockStart)
		}
		for t := range liveOut[bi] {
			touch(t, blockEnd)
		}
	}

	var out []interval
	for t := range start {
		if start[t] >= 0 {
			out = append(out, interval{temp: t, start: start[t], end: end[t]})
		}
	}
	return out, callPoints
}

// liveness computes per-block live-in/live-out temporary sets with the
// standard backward dataflow iteration.
func liveness(f *ir.Func) (liveIn, liveOut []map[int]struct{}) {
	n := len(f.Blocks)
	index := make(map[*ir.Block]int, n)
	for i, b := range f.Blocks {
		index[b] = i
	}

	use := make([]map[int]struct{}, n)
	def := make([]map[int]struct{}, n)
	for i, b := range f.Blocks {
		use[i] = map[int]struct{}{}
		def[i] = map[int]struct{}{}
		for k := range b.Instrs {
			in := &b.Instrs[k]
			for _, op := range in.Operands() {
				if op.Kind == ir.ValTemp {
					if _, d := def[i][op.Temp]; !d {
						use[i][op.Temp] = struct{}{}
					}
				}
			}
			if in.Dst.Kind == ir.ValTemp {
				def[i][in.Dst.Temp] = struct{}{}
			}
		}
		for _, op := range b.Term.Operands() {
			if op.Kind == ir.ValTemp {
				if _, d := def[i][op.Temp]; !d {
					use[i][op.Temp] = struct{}{}
				}
			}
		}
	}

	liveIn = make([]map[int]struct{}, n)
	liveOut = make([]map[int]struct{}, n)
	for i := range liveIn {
		liveIn[i] = map[int]struct{}{}
		liveOut[i] = map[int]struct{}{}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Term.Succs() {
				for t := range liveIn[index[s]] {
					if _, ok := liveOut[i][t]; !ok {
						liveOut[i][t] = struct{}{}
						changed = true
					}
				}
			}
			for t := range use[i] {
				if _, ok := liveIn[i][t]; !ok {
					liveIn[i][t] = struct{}{}
					changed = true
				}
			}
			for t := range liveOut[i] {
				if _, d := def[i][t]; !d {
					if _, ok := liveIn[i][t]; !ok {
						liveIn[i][t] = struct{}{}
						changed = true
					}
				}
			}
		}
	}
	return liveIn, liveOut
}
