package cc

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateIR = flag.Bool("update-ir", false, "rewrite the golden IR dumps")

// TestGoldenIRDumps pins the -emit-ir output for a small corpus at both
// optimization levels. The dump format is part of the tool surface
// (cmd flags print it), so changes must be deliberate: regenerate with
//
//	go test ./internal/cc -run TestGoldenIRDumps -update-ir
func TestGoldenIRDumps(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("testdata", "ir", "*.c"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no golden corpus: %v", err)
	}
	for _, src := range srcs {
		base := strings.TrimSuffix(src, ".c")
		code, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, lvl := range []int{0, 1} {
			prog, _, err := Frontend(string(code), lvl)
			if err != nil {
				t.Fatalf("%s -O%d: %v", src, lvl, err)
			}
			got := []byte(prog.Dump())
			path := fmt.Sprintf("%s.O%d.ir", base, lvl)
			if *updateIR {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-ir)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s -O%d: IR dump diverged from the golden file "+
					"(regenerate with -update-ir if deliberate)\ngot:\n%s\nwant:\n%s", src, lvl, got, want)
			}
		}
	}
}
