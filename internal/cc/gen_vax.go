package cc

import (
	"fmt"
	"strings"

	"risc1/internal/cc/ir"
)

// CISC baseline code generation conventions (PCC-for-VAX flavour):
//
//   - r0..r3: temporaries, assigned by the shared linear-scan
//     allocator; r0 carries return values
//   - r4, r5: emission scratch (char-cell staging, shift counts,
//     quotients) — never allocated
//   - r6..r11: register variables, saved/restored by the CALLS entry mask
//   - parameters live on the stack: argument i at 4*(i+1)(ap)
//   - arrays, addressed locals, overflow locals and spilled
//     temporaries live at negative FP offsets
//   - arguments are pushed right-to-left; CALLS/RET do the heavy lifting
//
// The generator consumes the same IR the RISC backend does. Where the
// architecture allows it, values are used as memory operands directly
// (globals as absolute operands, frame cells as displacements,
// immediates in-instruction) — exactly the density advantage the paper
// credits CISC code with. Temporaries that live across a call are
// assigned frame slots up front, because r0..r5 are caller-saved.
const (
	vaxScratchRegs = 6  // r0..r5
	vaxVarBase     = 6  // first register-variable register
	vaxVarLimit    = 12 // r6..r11
)

// vaxTempPool is the register pool the allocator hands out: r0..r3.
var vaxTempPool = []int{0, 1, 2, 3}

// GenVAX compiles a lowered (and possibly optimized) IR program to
// baseline CISC assembly text.
func GenVAX(prog *ir.Program) (string, error) {
	g := &vgen{prog: prog}
	g.raw("; MiniC CISC baseline output\n")
	g.label("start")
	g.emit("calls $0, main")
	g.emit("halt")
	for _, fn := range prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	g.emitData()
	return g.b.String(), nil
}

type vgen struct {
	prog *ir.Program
	b    strings.Builder

	fn        *ir.Func
	alloc     allocation
	varReg    map[*ir.Var]int // register variables (r6..r11)
	frameOff  map[*ir.Var]int // FP-relative memory locals (negative)
	frameMem  int
	frameSize int
}

func (g *vgen) raw(s string) { g.b.WriteString(s) }

func (g *vgen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *vgen) label(l string) { fmt.Fprintf(&g.b, "%s:\n", l) }

func (g *vgen) blockLabel(b *ir.Block) string {
	return fmt.Sprintf(".L%s_%s", g.fn.Name, b.Name)
}

func (g *vgen) genFunc(fn *ir.Func) error {
	g.fn = fn
	g.varReg = make(map[*ir.Var]int)
	g.frameOff = make(map[*ir.Var]int)

	// Non-addressed scalar locals into r6..r11; the rest (and arrays)
	// into the frame.
	var entryRegs []string
	off := 0
	for _, l := range fn.Locals {
		if l.Scalar && !l.Addressed && len(entryRegs) < vaxVarLimit-vaxVarBase {
			r := vaxVarBase + len(entryRegs)
			g.varReg[l] = r
			entryRegs = append(entryRegs, fmt.Sprintf("r%d", r))
			continue
		}
		sz := (l.Size + 3) &^ 3
		off += sz
		g.frameOff[l] = -off
	}
	g.frameMem = off

	g.alloc = allocateTemps(fn, vaxTempPool, true)
	g.frameSize = g.frameMem + 4*g.alloc.nSpills

	g.label(fn.Name)
	// Entry mask: save exactly the register variables this body uses.
	g.emit(".entry %s", strings.Join(entryRegs, ", "))
	if g.frameSize > 0 {
		g.emit("subl2 $%d, sp", g.frameSize)
	}
	for i, b := range fn.Blocks {
		g.label(g.blockLabel(b))
		for k := range b.Instrs {
			if err := g.instr(&b.Instrs[k]); err != nil {
				return err
			}
		}
		var next *ir.Block
		if i+1 < len(fn.Blocks) {
			next = fn.Blocks[i+1]
		}
		g.term(&b.Term, next)
	}
	return nil
}

// spillOp returns the frame operand of a spill slot.
func (g *vgen) spillOp(slot int) string {
	return fmt.Sprintf("%d(fp)", -(g.frameMem + 4*slot + 4))
}

// vChar reports whether the variable is a one-byte memory cell.
// Register-resident char locals and char parameters hold full words
// (parameters are pushed as words — the usual C integer promotion).
func (g *vgen) vChar(v *ir.Var) bool {
	_, inReg := g.varReg[v]
	return v.Char && !inReg && v.Kind != ir.VarParam
}

// cellOp returns the raw addressing-mode string of a variable's
// storage cell, whatever its width.
func (g *vgen) cellOp(v *ir.Var) string {
	if r, ok := g.varReg[v]; ok {
		return fmt.Sprintf("r%d", r)
	}
	switch v.Kind {
	case ir.VarGlobal:
		return v.Name
	case ir.VarParam:
		return fmt.Sprintf("%d(ap)", 4*(v.ParamSlot+1))
	default:
		return fmt.Sprintf("%d(fp)", g.frameOff[v])
	}
}

// operand returns a full-word addressing-mode string for a value, or
// ok=false for char cells, which need zero-extension first.
func (g *vgen) operand(v ir.Value) (string, bool) {
	switch v.Kind {
	case ir.ValConst:
		return fmt.Sprintf("$%d", v.C), true
	case ir.ValTemp:
		if l := g.alloc.loc[v.Temp]; l.reg >= 0 {
			return fmt.Sprintf("r%d", l.reg), true
		} else {
			return g.spillOp(l.slot), true
		}
	case ir.ValVar:
		if g.vChar(v.Var) {
			return "", false
		}
		return g.cellOp(v.Var), true
	}
	return "", false
}

// readOp returns a word operand for the value, staging char cells
// through the given scratch register.
func (g *vgen) readOp(v ir.Value, scratch string) string {
	if op, ok := g.operand(v); ok {
		return op
	}
	g.emit("movzbl %s, %s", g.cellOp(v.Var), scratch)
	return scratch
}

// dstOp returns the word destination operand of an instruction. Only
// OpCopy can target a char cell (the store-sink pass guarantees it),
// so every other op writes through this.
func (g *vgen) dstOp(d ir.Value) string {
	op, _ := g.operand(d)
	return op
}

func (g *vgen) instr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpCopy:
		g.copyTo(in.Dst, in.A)
		return nil

	case ir.OpNeg, ir.OpCom:
		mn := "mnegl"
		if in.Op == ir.OpCom {
			mn = "mcoml"
		}
		g.emit("%s %s, %s", mn, g.readOp(in.A, "r4"), g.dstOp(in.Dst))
		return nil

	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		a := g.readOp(in.A, "r4")
		b := g.readOp(in.B, "r5")
		d := g.dstOp(in.Dst)
		mn2, mn3 := vaxALU2[in.Op], vaxALU3[in.Op]
		switch d {
		case a:
			g.emit("%s %s, %s", mn2, b, d)
		case b:
			g.emit("%s %s, %s", mn2, a, d)
		default:
			g.emit("%s %s, %s, %s", mn3, a, b, d)
		}
		return nil

	case ir.OpSub:
		a := g.readOp(in.A, "r4")
		b := g.readOp(in.B, "r5")
		d := g.dstOp(in.Dst)
		if d == a {
			g.emit("subl2 %s, %s", b, d)
		} else {
			g.emit("subl3 %s, %s, %s", b, a, d)
		}
		return nil

	case ir.OpDiv:
		a := g.readOp(in.A, "r4")
		b := g.readOp(in.B, "r5")
		d := g.dstOp(in.Dst)
		if d == a {
			g.emit("divl2 %s, %s", b, d)
		} else {
			g.emit("divl3 %s, %s, %s", b, a, d)
		}
		return nil

	case ir.OpMod:
		g.mod(in)
		return nil

	case ir.OpShl, ir.OpShr:
		g.shift(in)
		return nil

	case ir.OpAddr:
		g.emit("moval %s, %s", g.cellOp(in.Var), g.dstOp(in.Dst))
		return nil

	case ir.OpAddrStr:
		g.emit("moval %s, %s", in.Label, g.dstOp(in.Dst))
		return nil

	case ir.OpLoad:
		addr := g.addrReg(in.A, "r4")
		mn := "movl"
		if in.Size == 1 {
			mn = "movzbl"
		}
		g.emit("%s (%s), %s", mn, addr, g.dstOp(in.Dst))
		return nil

	case ir.OpStore:
		addr := g.addrReg(in.A, "r4")
		b := g.readOp(in.B, "r5")
		if in.Size == 1 {
			if strings.HasPrefix(b, "$") {
				g.emit("movl %s, r5", b)
				b = "r5"
			}
			g.emit("movb %s, (%s)", b, addr)
		} else {
			g.emit("movl %s, (%s)", b, addr)
		}
		return nil

	case ir.OpCall:
		for i := len(in.Args) - 1; i >= 0; i-- {
			g.emit("pushl %s", g.readOp(in.Args[i], "r4"))
		}
		g.emit("calls $%d, %s", len(in.Args), in.Label)
		if in.Dst.Valid() {
			if d := g.dstOp(in.Dst); d != "r0" {
				g.emit("movl r0, %s", d)
			}
		}
		return nil
	}
	return errf(in.Line, "internal: unhandled IR op %d", in.Op)
}

var vaxALU2 = map[ir.Op]string{
	ir.OpAdd: "addl2", ir.OpMul: "mull2", ir.OpAnd: "andl2",
	ir.OpOr: "bisl2", ir.OpXor: "xorl2",
}

var vaxALU3 = map[ir.Op]string{
	ir.OpAdd: "addl3", ir.OpMul: "mull3", ir.OpAnd: "andl3",
	ir.OpOr: "bisl3", ir.OpXor: "xorl3",
}

// copyTo implements Dst = A; this is the only place a char cell is
// written, so truncation lives here on both backends.
func (g *vgen) copyTo(d, a ir.Value) {
	if dop, ok := g.operand(d); ok {
		// Word destination.
		if a.Kind == ir.ValVar && g.vChar(a.Var) {
			g.emit("movzbl %s, %s", g.cellOp(a.Var), dop)
			return
		}
		aop, _ := g.operand(a)
		if aop == dop {
			return
		}
		if a.Kind == ir.ValConst && a.C == 0 {
			g.emit("clrl %s", dop)
			return
		}
		g.emit("movl %s, %s", aop, dop)
		return
	}
	// Char-cell destination: a byte move truncates; byte-to-byte moves
	// go cell to cell. Immediates are staged to keep them in range.
	cell := g.cellOp(d.Var)
	switch {
	case a.Kind == ir.ValVar && g.vChar(a.Var):
		g.emit("movb %s, %s", g.cellOp(a.Var), cell)
	case a.Kind == ir.ValConst:
		g.emit("movl $%d, r5", a.C)
		g.emit("movb r5, %s", cell)
	default:
		aop, _ := g.operand(a)
		g.emit("movb %s, %s", aop, cell)
	}
}

// mod emits A % B as div/mul/sub. The quotient needs a register that
// is neither source: the destination itself when it aliases nothing,
// else whichever of r4/r5 is not staging an operand.
func (g *vgen) mod(in *ir.Instr) {
	a := g.readOp(in.A, "r4")
	b := g.readOp(in.B, "r5")
	d := g.dstOp(in.Dst)
	q := d
	if d == a || d == b {
		q = "r5"
		if b == "r5" {
			q = "r4"
		}
	}
	g.emit("divl3 %s, %s, %s", b, a, q)
	g.emit("mull2 %s, %s", b, q)
	g.emit("subl3 %s, %s, %s", q, a, d)
}

// shift emits ashl, negating the count for right shifts. Only counts
// in 0..31 reach here as constants; variable counts keep the CISC
// machine's native saturating behavior.
func (g *vgen) shift(in *ir.Instr) {
	a := g.readOp(in.A, "r4")
	d := g.dstOp(in.Dst)
	if in.B.Kind == ir.ValConst {
		c := in.B.C
		if in.Op == ir.OpShr {
			c = -c
		}
		g.emit("ashl $%d, %s, %s", c, a, d)
		return
	}
	b := g.readOp(in.B, "r5")
	if in.Op == ir.OpShr {
		g.emit("mnegl %s, r5", b)
		b = "r5"
	}
	g.emit("ashl %s, %s, %s", b, a, d)
}

// addrReg returns a register holding an address, staging non-register
// values through scratch.
func (g *vgen) addrReg(v ir.Value, scratch string) string {
	op := g.readOp(v, scratch)
	if strings.HasPrefix(op, "r") && !strings.Contains(op, "(") {
		return op
	}
	g.emit("movl %s, %s", op, scratch)
	return scratch
}

// vaxCondOf maps IR relations to branch mnemonics, with negations.
var vaxCondOf = map[ir.Rel]string{
	ir.RelEq: "beql", ir.RelNe: "bneq", ir.RelLt: "blss",
	ir.RelLe: "bleq", ir.RelGt: "bgtr", ir.RelGe: "bgeq",
}

func (g *vgen) term(t *ir.Term, next *ir.Block) {
	switch t.Kind {
	case ir.TermJump:
		if t.Then != next {
			g.emit("brw %s", g.blockLabel(t.Then))
		}

	case ir.TermBranch:
		rel := t.Rel
		switch {
		case t.B.Kind == ir.ValConst && t.B.C == 0:
			g.emit("tstl %s", g.readOp(t.A, "r4"))
		case t.A.Kind == ir.ValConst && t.A.C == 0:
			// 0 <rel> b  ==  b <swapped rel> 0
			g.emit("tstl %s", g.readOp(t.B, "r5"))
			rel = swapRel(rel)
		default:
			g.emit("cmpl %s, %s", g.readOp(t.A, "r4"), g.readOp(t.B, "r5"))
		}
		switch {
		case t.Else == next:
			g.emit("%s %s", vaxCondOf[rel], g.blockLabel(t.Then))
		case t.Then == next:
			g.emit("%s %s", vaxCondOf[rel.Negate()], g.blockLabel(t.Else))
		default:
			g.emit("%s %s", vaxCondOf[rel], g.blockLabel(t.Then))
			g.emit("brw %s", g.blockLabel(t.Else))
		}

	case ir.TermReturn:
		if t.Ret.Valid() {
			op := g.readOp(t.Ret, "r4")
			if op == "$0" {
				g.emit("clrl r0")
			} else if op != "r0" {
				g.emit("movl %s, r0", op)
			}
		} else {
			g.emit("clrl r0")
		}
		g.emit("ret")
	}
}

// swapRel mirrors a relation across swapped operands.
func swapRel(r ir.Rel) ir.Rel {
	switch r {
	case ir.RelLt:
		return ir.RelGt
	case ir.RelLe:
		return ir.RelGe
	case ir.RelGt:
		return ir.RelLt
	case ir.RelGe:
		return ir.RelLe
	}
	return r
}

// emitData lays out globals and string literals after the code.
func (g *vgen) emitData() {
	g.raw("\n; data\n")
	g.emit(".align 4")
	for _, gl := range g.prog.Globals {
		g.label(gl.Name)
		switch {
		case gl.InitStr != "":
			g.emit(".asciz %q", gl.InitStr)
			if pad := gl.Size - len(gl.InitStr) - 1; pad > 0 {
				g.emit(".space %d", pad)
			}
		case gl.Char:
			g.emit(".byte %d", gl.Init)
		case gl.Scalar:
			g.emit(".word %d", gl.Init)
		default:
			g.emit(".space %d", gl.Size)
		}
		g.emit(".align 4")
	}
	for _, s := range g.prog.Strings {
		g.label(s.Label)
		g.emit(".asciz %q", s.Value)
		g.emit(".align 4")
	}
}
