package cc

import (
	"fmt"
	"strings"
)

// CISC baseline code generation conventions (PCC-for-VAX flavour):
//
//   - r0..r5: expression evaluation registers; r0 carries return values
//   - r6..r11: register variables, saved/restored by the CALLS entry mask
//   - parameters live on the stack: argument i at 4*(i+1)(ap)
//   - arrays and overflow locals live at negative FP offsets
//   - arguments are pushed right-to-left; CALLS/RET do the heavy lifting
//
// Where the architecture allows it the generator uses memory operands
// directly (globals as absolute operands, immediates in-instruction) —
// this is exactly the density advantage the paper credits CISC code with.
const (
	vaxScratchRegs = 6 // r0..r5
	vaxVarBase     = 6 // first register-variable register
	vaxVarLimit    = 12
)

// GenVAX compiles a checked program to baseline CISC assembly text.
func GenVAX(prog *Program) (string, error) {
	g := &vgen{prog: prog}
	g.raw("; MiniC CISC baseline output\n")
	g.label("start")
	g.emit("calls $0, main")
	g.emit("halt")
	for _, fn := range prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	g.emitData()
	return g.b.String(), nil
}

type vgen struct {
	prog *Program
	b    strings.Builder

	fn        *Symbol
	frameSize int
	labelSeq  int
}

func (g *vgen) raw(s string) { g.b.WriteString(s) }

func (g *vgen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *vgen) label(l string) { fmt.Fprintf(&g.b, "%s:\n", l) }

func (g *vgen) newLabel(hint string) string {
	g.labelSeq++
	return fmt.Sprintf(".L%s_%s%d", g.fn.Name, hint, g.labelSeq)
}

func (g *vgen) genFunc(fn *Symbol) error {
	g.fn = fn
	g.labelSeq = 0

	// Scalar locals into r6..r11; the rest (and arrays) into the frame.
	var regLocals, memLocals []*Symbol
	for _, l := range fn.Locals {
		if l.Type.IsScalar() && len(regLocals) < vaxVarLimit-vaxVarBase {
			regLocals = append(regLocals, l)
		} else {
			memLocals = append(memLocals, l)
		}
	}
	for i, l := range regLocals {
		l.Reg = vaxVarBase + i
	}
	off := 0
	for _, l := range memLocals {
		l.Reg = -1
		sz := (l.Type.Size() + 3) &^ 3
		off += sz
		l.FrameOff = -off
	}
	g.frameSize = off
	for _, p := range fn.Params {
		p.Reg = -1
	}

	g.label(fn.Name)
	// Entry mask: save exactly the register variables this body uses.
	var regs []string
	for _, l := range regLocals {
		regs = append(regs, fmt.Sprintf("r%d", l.Reg))
	}
	g.emit(".entry %s", strings.Join(regs, ", "))
	if g.frameSize > 0 {
		g.emit("subl2 $%d, sp", g.frameSize)
	}
	if err := g.stmtIn(fn.Body, nil); err != nil {
		return err
	}
	g.emit("clrl r0")
	g.emit("ret")
	return nil
}

func (g *vgen) stmtIn(s *Stmt, loop *loopLabels) error {
	switch s.Kind {
	case StmtBlock, StmtGroup:
		for _, sub := range s.Body {
			if err := g.stmtIn(sub, loop); err != nil {
				return err
			}
		}
		return nil

	case StmtDecl:
		if s.DeclInit == nil {
			return nil
		}
		if err := g.evalTo(s.DeclInit, 0); err != nil {
			return err
		}
		g.storeVar(s.Decl, 0)
		return nil

	case StmtExpr:
		return g.evalTo(s.Expr, 0)

	case StmtIf:
		elseL := g.newLabel("else")
		if err := g.branchAt(s.Expr, elseL, false, 0); err != nil {
			return err
		}
		if err := g.stmtIn(s.Then, loop); err != nil {
			return err
		}
		if s.Else != nil {
			endL := g.newLabel("endif")
			g.emit("brw %s", endL)
			g.label(elseL)
			if err := g.stmtIn(s.Else, loop); err != nil {
				return err
			}
			g.label(endL)
		} else {
			g.label(elseL)
		}
		return nil

	case StmtWhile:
		top := g.newLabel("while")
		end := g.newLabel("wend")
		g.label(top)
		if err := g.branchAt(s.Expr, end, false, 0); err != nil {
			return err
		}
		if err := g.stmtIn(s.Then, &loopLabels{brk: end, cont: top}); err != nil {
			return err
		}
		g.emit("brw %s", top)
		g.label(end)
		return nil

	case StmtFor:
		if s.Init != nil {
			if err := g.stmtIn(s.Init, loop); err != nil {
				return err
			}
		}
		top := g.newLabel("for")
		post := g.newLabel("fpost")
		end := g.newLabel("fend")
		g.label(top)
		if s.Cond != nil {
			if err := g.branchAt(s.Cond, end, false, 0); err != nil {
				return err
			}
		}
		if err := g.stmtIn(s.Then, &loopLabels{brk: end, cont: post}); err != nil {
			return err
		}
		g.label(post)
		if s.Post != nil {
			if err := g.stmtIn(s.Post, loop); err != nil {
				return err
			}
		}
		g.emit("brw %s", top)
		g.label(end)
		return nil

	case StmtReturn:
		if s.Expr != nil {
			if err := g.evalTo(s.Expr, 0); err != nil {
				return err
			}
		} else {
			g.emit("clrl r0")
		}
		g.emit("ret")
		return nil

	case StmtBreak:
		g.emit("brw %s", loop.brk)
		return nil

	case StmtContinue:
		g.emit("brw %s", loop.cont)
		return nil
	}
	return errf(s.Line, "internal: unhandled statement kind %d", s.Kind)
}

// operandFor returns a direct addressing-mode string for a scalar
// variable, if one exists — the CISC density advantage.
func (g *vgen) operandFor(sym *Symbol) (string, bool) {
	switch {
	case sym.Kind == SymGlobal && sym.Type.IsScalar():
		return sym.Name, true
	case sym.Kind == SymParam:
		return fmt.Sprintf("%d(ap)", 4*(sym.ParamSlot+1)), true
	case sym.Kind == SymLocal && sym.Reg >= 0:
		return fmt.Sprintf("r%d", sym.Reg), true
	case sym.Kind == SymLocal && sym.Type.IsScalar():
		return fmt.Sprintf("%d(fp)", sym.FrameOff), true
	}
	return "", false
}

// charCell reports whether the variable occupies a single byte in
// storage. Parameters are excluded: the caller pushes every argument as
// a full word, so char parameters are accessed as longs (the usual C
// integer promotion).
func charCell(sym *Symbol) bool {
	return sym.Type.Kind == TypeChar && sym.Kind != SymParam
}

func (g *vgen) storeVar(sym *Symbol, k int) {
	op, ok := g.operandFor(sym)
	if !ok {
		return
	}
	if charCell(sym) {
		g.emit("movb r%d, %s", k, op)
	} else {
		g.emit("movl r%d, %s", k, op)
	}
}

// evalTo leaves the value of e in register k (one of r0..r5).
func (g *vgen) evalTo(e *Expr, k int) error {
	switch e.Kind {
	case ExprIntLit, ExprCharLit:
		g.emit("movl $%d, r%d", int32(e.Num), k)
		return nil

	case ExprStrLit:
		g.emit("moval %s, r%d", e.StrLabel, k)
		return nil

	case ExprIdent:
		sym := e.Sym
		if sym.Type.Kind == TypeArray {
			return g.addrOf(e, k)
		}
		op, ok := g.operandFor(sym)
		if !ok {
			return errf(e.Line, "internal: no operand for %q", sym.Name)
		}
		if charCell(sym) {
			g.emit("movzbl %s, r%d", op, k)
		} else {
			g.emit("movl %s, r%d", op, k)
		}
		return nil

	case ExprUnary:
		switch e.Op {
		case "-":
			if err := g.evalTo(e.X, k); err != nil {
				return err
			}
			g.emit("mnegl r%d, r%d", k, k)
			return nil
		case "~":
			if err := g.evalTo(e.X, k); err != nil {
				return err
			}
			g.emit("mcoml r%d, r%d", k, k)
			return nil
		case "!":
			return g.materializeCond(e, k)
		case "*":
			if err := g.evalTo(e.X, k); err != nil {
				return err
			}
			if e.Type.Kind == TypeChar {
				g.emit("movzbl (r%d), r%d", k, k)
			} else {
				g.emit("movl (r%d), r%d", k, k)
			}
			return nil
		case "&":
			return g.addrOf(e.X, k)
		}

	case ExprBinary:
		switch e.Op {
		case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
			return g.materializeCond(e, k)
		}
		if decay(e.X.Type).Kind == TypePtr || decay(e.Y.Type).Kind == TypePtr {
			return g.pointerArith(e, k)
		}
		return g.binaryInts(e.Op, e.X, e.Y, k)

	case ExprAssign:
		return g.assign(e, k)

	case ExprIndex:
		if err := g.addrOf(e, k); err != nil {
			return err
		}
		if e.Type.Kind == TypeChar {
			g.emit("movzbl (r%d), r%d", k, k)
		} else {
			g.emit("movl (r%d), r%d", k, k)
		}
		return nil

	case ExprCall:
		return g.call(e, k)
	}
	return errf(e.Line, "internal: unhandled expression kind %d", e.Kind)
}

// binaryInts generates integer arithmetic with direct operands where the
// right side is constant.
func (g *vgen) binaryInts(op string, x, y *Expr, k int) error {
	if err := g.evalTo(x, k); err != nil {
		return err
	}
	// Constant right operand: one two-operand instruction.
	if c, ok := constFold(y); ok {
		switch op {
		case "+":
			g.emit("addl2 $%d, r%d", c, k)
		case "-":
			g.emit("subl2 $%d, r%d", c, k)
		case "*":
			g.emit("mull2 $%d, r%d", c, k)
		case "/":
			g.emit("divl2 $%d, r%d", c, k)
		case "%":
			if err := g.checkDepth(x.Line, k+1); err != nil {
				return err
			}
			g.emit("divl3 $%d, r%d, r%d", c, k, k+1)
			g.emit("mull2 $%d, r%d", c, k+1)
			g.emit("subl2 r%d, r%d", k+1, k)
		case "&":
			g.emit("andl3 $%d, r%d, r%d", c, k, k)
		case "|":
			g.emit("bisl2 $%d, r%d", c, k)
		case "^":
			g.emit("xorl2 $%d, r%d", c, k)
		case "<<":
			g.emit("ashl $%d, r%d, r%d", c, k, k)
		case ">>":
			g.emit("ashl $%d, r%d, r%d", -c, k, k)
		default:
			return errf(x.Line, "internal: no CISC mapping for %q", op)
		}
		return nil
	}

	spill := k+1 >= vaxScratchRegs
	rhs := k + 1
	if spill {
		g.emit("pushl r%d", k)
		if err := g.evalTo(y, k); err != nil {
			return err
		}
		// Stack holds X; register k holds Y.
		switch op {
		case "+":
			g.emit("addl2 (sp)+, r%d", k)
		case "-":
			g.emit("subl3 r%d, (sp)+, r%d", k, k)
		case "*":
			g.emit("mull2 (sp)+, r%d", k)
		case "&":
			g.emit("andl3 (sp)+, r%d, r%d", k, k)
		case "|":
			g.emit("bisl2 (sp)+, r%d", k)
		case "^":
			g.emit("xorl2 (sp)+, r%d", k)
		default:
			return errf(x.Line, "expression too deep for %q; simplify", op)
		}
		return nil
	}
	if err := g.evalTo(y, rhs); err != nil {
		return err
	}
	switch op {
	case "+":
		g.emit("addl2 r%d, r%d", rhs, k)
	case "-":
		g.emit("subl2 r%d, r%d", rhs, k)
	case "*":
		g.emit("mull2 r%d, r%d", rhs, k)
	case "/":
		g.emit("divl3 r%d, r%d, r%d", rhs, k, k)
	case "%":
		if err := g.checkDepth(x.Line, rhs+1); err != nil {
			return err
		}
		g.emit("divl3 r%d, r%d, r%d", rhs, k, rhs+1)
		g.emit("mull2 r%d, r%d", rhs, rhs+1)
		g.emit("subl2 r%d, r%d", rhs+1, k)
	case "&":
		g.emit("andl3 r%d, r%d, r%d", rhs, k, k)
	case "|":
		g.emit("bisl2 r%d, r%d", rhs, k)
	case "^":
		g.emit("xorl2 r%d, r%d", rhs, k)
	case "<<":
		g.emit("ashl r%d, r%d, r%d", rhs, k, k)
	case ">>":
		g.emit("mnegl r%d, r%d", rhs, rhs)
		g.emit("ashl r%d, r%d, r%d", rhs, k, k)
	default:
		return errf(x.Line, "internal: no CISC mapping for %q", op)
	}
	return nil
}

func (g *vgen) checkDepth(line, k int) error {
	if k >= vaxScratchRegs {
		return errf(line, "expression too deep for the register stack; simplify")
	}
	return nil
}

func (g *vgen) pointerArith(e *Expr, k int) error {
	xt, yt := decay(e.X.Type), decay(e.Y.Type)
	switch {
	case xt.Kind == TypePtr && yt.Kind == TypePtr: // ptr - ptr
		if err := g.binaryInts("-", e.X, e.Y, k); err != nil {
			return err
		}
		if sh := log2(xt.Elem.Size()); sh > 0 {
			g.emit("ashl $%d, r%d, r%d", -sh, k, k)
		}
		return nil
	case xt.Kind == TypePtr:
		if err := g.evalTo(e.X, k); err != nil {
			return err
		}
		if err := g.checkDepth(e.Line, k+1); err != nil {
			return err
		}
		if err := g.scaledTo(e.Y, k+1, xt.Elem.Size()); err != nil {
			return err
		}
		if e.Op == "-" {
			g.emit("subl2 r%d, r%d", k+1, k)
		} else {
			g.emit("addl2 r%d, r%d", k+1, k)
		}
		return nil
	default: // int + ptr
		if err := g.evalTo(e.Y, k); err != nil {
			return err
		}
		if err := g.checkDepth(e.Line, k+1); err != nil {
			return err
		}
		if err := g.scaledTo(e.X, k+1, yt.Elem.Size()); err != nil {
			return err
		}
		g.emit("addl2 r%d, r%d", k+1, k)
		return nil
	}
}

func (g *vgen) scaledTo(e *Expr, k int, size int) error {
	if err := g.checkDepth(e.Line, k); err != nil {
		return err
	}
	if err := g.evalTo(e, k); err != nil {
		return err
	}
	if sh := log2(size); sh > 0 {
		g.emit("ashl $%d, r%d, r%d", sh, k, k)
	}
	return nil
}

// addrOf leaves the address of an lvalue (or array) in register k.
func (g *vgen) addrOf(e *Expr, k int) error {
	switch e.Kind {
	case ExprIdent:
		sym := e.Sym
		switch {
		case sym.Kind == SymGlobal:
			g.emit("moval %s, r%d", sym.Name, k)
		case sym.Kind == SymLocal && sym.Reg < 0:
			g.emit("moval %d(fp), r%d", sym.FrameOff, k)
		case sym.Kind == SymParam:
			g.emit("moval %d(ap), r%d", 4*(sym.ParamSlot+1), k)
		default:
			return errf(e.Line, "cannot take the address of register variable %q", sym.Name)
		}
		return nil
	case ExprIndex:
		if err := g.evalTo(e.X, k); err != nil {
			return err
		}
		if err := g.scaledTo(e.Y, k+1, e.Type.Size()); err != nil {
			return err
		}
		g.emit("addl2 r%d, r%d", k+1, k)
		return nil
	case ExprUnary:
		if e.Op == "*" {
			return g.evalTo(e.X, k)
		}
	}
	return errf(e.Line, "internal: not an addressable expression")
}

func (g *vgen) assign(e *Expr, k int) error {
	binOp := strings.TrimSuffix(e.Op, "=")
	lhs := e.X

	// Directly addressable scalar: memory-to-memory forms.
	if lhs.Kind == ExprIdent {
		if op, ok := g.operandFor(lhs.Sym); ok {
			if binOp == "" {
				if err := g.evalTo(e.Y, k); err != nil {
					return err
				}
				if charCell(lhs.Sym) {
					g.emit("movb r%d, %s", k, op)
				} else {
					g.emit("movl r%d, %s", k, op)
				}
				return nil
			}
			// Pointer += / -= routes through pointerArith for scaling.
			fake := &Expr{Kind: ExprBinary, Op: binOp, X: lhs, Y: e.Y, Line: e.Line, Type: e.Type}
			if err := g.evalTo(fake, k); err != nil {
				return err
			}
			if charCell(lhs.Sym) {
				g.emit("movb r%d, %s", k, op)
			} else {
				g.emit("movl r%d, %s", k, op)
			}
			return nil
		}
	}

	// General path: compute the address once.
	if err := g.checkDepth(e.Line, k+2); err != nil {
		return err
	}
	if err := g.lvalueAddr(lhs, k+1); err != nil {
		return err
	}
	mov := "movl"
	load := "movl"
	if lhs.Type.Kind == TypeChar {
		mov = "movb"
		load = "movzbl"
	}
	if binOp == "" {
		if err := g.evalTo(e.Y, k+2); err != nil {
			return err
		}
		g.emit("%s r%d, (r%d)", mov, k+2, k+1)
		g.emit("movl r%d, r%d", k+2, k)
		return nil
	}
	g.emit("%s (r%d), r%d", load, k+1, k)
	if err := g.evalTo(e.Y, k+2); err != nil {
		return err
	}
	if decay(lhs.Type).Kind == TypePtr {
		if sh := log2(decay(lhs.Type).Elem.Size()); sh > 0 {
			g.emit("ashl $%d, r%d, r%d", sh, k+2, k+2)
		}
	}
	switch binOp {
	case "+":
		g.emit("addl2 r%d, r%d", k+2, k)
	case "-":
		g.emit("subl2 r%d, r%d", k+2, k)
	case "*":
		g.emit("mull2 r%d, r%d", k+2, k)
	case "/":
		g.emit("divl3 r%d, r%d, r%d", k+2, k, k)
	case "%":
		if err := g.checkDepth(e.Line, k+3); err != nil {
			return err
		}
		g.emit("divl3 r%d, r%d, r%d", k+2, k, k+3)
		g.emit("mull2 r%d, r%d", k+2, k+3)
		g.emit("subl2 r%d, r%d", k+3, k)
	case "&":
		g.emit("andl3 r%d, r%d, r%d", k+2, k, k)
	case "|":
		g.emit("bisl2 r%d, r%d", k+2, k)
	case "^":
		g.emit("xorl2 r%d, r%d", k+2, k)
	default:
		return errf(e.Line, "internal: no CISC mapping for %q=", binOp)
	}
	g.emit("%s r%d, (r%d)", mov, k, k+1)
	return nil
}

func (g *vgen) lvalueAddr(e *Expr, k int) error {
	switch e.Kind {
	case ExprIdent, ExprIndex:
		return g.addrOf(e, k)
	case ExprUnary:
		if e.Op == "*" {
			return g.evalTo(e.X, k)
		}
	}
	return errf(e.Line, "internal: not an lvalue")
}

// call pushes arguments right-to-left and issues CALLS. Live scratch
// registers below k are caller-saved around the call.
func (g *vgen) call(e *Expr, k int) error {
	for i := k - 1; i >= 0; i-- {
		g.emit("pushl r%d", i)
	}
	for i := len(e.Args) - 1; i >= 0; i-- {
		if err := g.evalTo(e.Args[i], 0); err != nil {
			return err
		}
		g.emit("pushl r0")
	}
	g.emit("calls $%d, %s", len(e.Args), e.Name)
	if k != 0 {
		g.emit("movl r0, r%d", k)
	}
	for i := 0; i < k; i++ {
		g.emit("movl (sp)+, r%d", i)
	}
	return nil
}

// branchAt emits a conditional branch to target when e is true/false.
func (g *vgen) branchAt(e *Expr, target string, whenTrue bool, k int) error {
	switch {
	case e.Kind == ExprUnary && e.Op == "!":
		return g.branchAt(e.X, target, !whenTrue, k)

	case e.Kind == ExprBinary && (e.Op == "&&" || e.Op == "||"):
		if e.Op == "&&" && !whenTrue {
			if err := g.branchAt(e.X, target, false, k); err != nil {
				return err
			}
			return g.branchAt(e.Y, target, false, k)
		}
		if e.Op == "||" && whenTrue {
			if err := g.branchAt(e.X, target, true, k); err != nil {
				return err
			}
			return g.branchAt(e.Y, target, true, k)
		}
		skip := g.newLabel("sc")
		if err := g.branchAt(e.X, skip, e.Op == "||", k); err != nil {
			return err
		}
		if err := g.branchAt(e.Y, target, whenTrue, k); err != nil {
			return err
		}
		g.label(skip)
		return nil

	case e.Kind == ExprBinary && isComparison(e.Op):
		if err := g.evalTo(e.X, k); err != nil {
			return err
		}
		if c, ok := constFold(e.Y); ok {
			g.emit("cmpl r%d, $%d", k, c)
		} else {
			if err := g.checkDepth(e.Line, k+1); err != nil {
				return err
			}
			if err := g.evalTo(e.Y, k+1); err != nil {
				return err
			}
			g.emit("cmpl r%d, r%d", k, k+1)
		}
		g.emit("%s %s", vaxBranch(e.Op, whenTrue), target)
		return nil

	default:
		if err := g.evalTo(e, k); err != nil {
			return err
		}
		g.emit("tstl r%d", k)
		if whenTrue {
			g.emit("bneq %s", target)
		} else {
			g.emit("beql %s", target)
		}
		return nil
	}
}

func vaxBranch(op string, whenTrue bool) string {
	m := map[string]string{
		"==": "beql", "!=": "bneq", "<": "blss", "<=": "bleq", ">": "bgtr", ">=": "bgeq",
	}
	n := map[string]string{
		"==": "bneq", "!=": "beql", "<": "bgeq", "<=": "bgtr", ">": "bleq", ">=": "blss",
	}
	if whenTrue {
		return m[op]
	}
	return n[op]
}

func (g *vgen) materializeCond(e *Expr, k int) error {
	trueL := g.newLabel("ct")
	endL := g.newLabel("ce")
	if err := g.branchAt(e, trueL, true, k); err != nil {
		return err
	}
	g.emit("clrl r%d", k)
	g.emit("brw %s", endL)
	g.label(trueL)
	g.emit("movl $1, r%d", k)
	g.label(endL)
	return nil
}

func (g *vgen) emitData() {
	g.raw("\n; data\n")
	g.emit(".align 4")
	for _, gl := range g.prog.Globals {
		g.label(gl.Name)
		switch {
		case gl.InitStr != "":
			g.emit(".asciz %q", gl.InitStr)
			if pad := gl.Type.Size() - len(gl.InitStr) - 1; pad > 0 {
				g.emit(".space %d", pad)
			}
		case gl.Type.Kind == TypeChar:
			var v int64
			if gl.Init != nil {
				v, _ = constFold(gl.Init)
			}
			g.emit(".byte %d", v)
		case gl.Type.IsScalar():
			var v int64
			if gl.Init != nil {
				v, _ = constFold(gl.Init)
			}
			g.emit(".word %d", v)
		default:
			g.emit(".space %d", gl.Type.Size())
		}
		g.emit(".align 4")
	}
	for _, s := range g.prog.Strings {
		g.label(s.label)
		g.emit(".asciz %q", s.value)
		g.emit(".align 4")
	}
}
