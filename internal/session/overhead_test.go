package session

import (
	"context"
	"sort"
	"testing"
	"time"
)

// timeRun builds a fresh spin session with the given fuel, optionally
// attaches a stalled subscriber (never read), and times one Run to fuel
// exhaustion.
func timeRun(t *testing.T, fuel uint64, stalledSub bool) time.Duration {
	t.Helper()
	s := buildRISC(t, spinSrc, fuel)
	defer s.Close(CloseReasonClient)
	if stalledSub {
		s.Subscribe(64)
	}
	start := time.Now()
	st, err := s.Run(context.Background(), 0)
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != StopFuel || st.Instructions != fuel {
		t.Fatalf("run state %+v, want fuel stop at %d", st, fuel)
	}
	return took
}

// TestStalledSubscriberOverhead is the acceptance pin: a deliberately
// stalled subscriber must never slow the session's simulator by more
// than 5%. Measured the repo's standard way (bench/warmstart.go): both
// sides warmed up first, then strictly interleaved A/B rounds. The
// verdict is the MEDIAN of the per-round ratios: each round's free and
// stalled runs are adjacent in time, so host drift (CPU frequency,
// sibling test binaries, GC) hits both sides of a pair about equally
// and cancels in the ratio, and the median discards the few rounds
// where a noise spike lands inside one half of a pair.
func TestStalledSubscriberOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		// The race detector multiplies the cost of the sink's mutex ops,
		// so the 5% ratio measured under it reflects the instrumentation,
		// not the shipped code. The -race job still runs every functional
		// stream/session test; the perf pin runs in the plain test job.
		t.Skip("performance pin is meaningless under the race detector")
	}
	const fuel = 2_000_000 // tens of ms per side: long enough to swamp timer noise
	const rounds = 7

	timeRun(t, fuel, false) // warm up: image build, page pool, heap
	timeRun(t, fuel, true)

	ratios := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		f := timeRun(t, fuel, false).Seconds()
		s := timeRun(t, fuel, true).Seconds()
		ratios = append(ratios, s/f)
	}
	sort.Float64s(ratios)
	ratio := ratios[len(ratios)/2]
	t.Logf("per-round stalled/free ratios %.4f, median %.4f", ratios, ratio)
	if ratio > 1.05 {
		t.Errorf("stalled subscriber slows the simulator %.1f%% (median of %d paired rounds), budget is 5%%",
			(ratio-1)*100, rounds)
	}
}
