// Package session is the interactive-debugger subsystem behind
// risc1-serve's /v1/sessions API: long-lived paused machines that are
// driven instruction-by-instruction (step, run-until, breakpoints,
// register and memory inspection) while an obs.StreamSink fans their
// trace events out to any number of live subscribers.
//
// The contract that makes sessions servable at scale (DESIGN.md §13):
//
//   - One command at a time per session. A second command while one is
//     executing fails fast with ErrBusy — it never queues behind a long
//     run — so the HTTP layer can answer 409 session_busy immediately.
//   - Subscribers never slow the simulator. Trace delivery goes through
//     per-subscriber ring buffers with drop counters (obs.StreamSink);
//     a stalled consumer loses events, never time.
//   - Sessions die three ways — explicit close, idle timeout, server
//     drain — and all three end every subscriber's stream and fire the
//     session's release hook exactly once.
//   - Stepping is observationally identical to running: a session
//     stepped N instructions emits the exact trace-event sequence a
//     post-hoc traced run of the same program emits (pinned by the
//     differential tests), because commands drive the simulators' own
//     RunSteps and never touch architectural state.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"risc1/internal/machine"
	"risc1/internal/obs"
)

// Command errors the HTTP layer maps to stable API codes.
var (
	// ErrBusy: another command is executing on this session now.
	ErrBusy = errors.New("session: busy")
	// ErrClosed: the session was closed (explicitly, by idle timeout, or
	// by server drain) while or before the command ran.
	ErrClosed = errors.New("session: closed")
)

// runChunk is how many instructions a run command executes between
// breakpoint, cancellation, and budget checks when it can batch (no
// breakpoints armed): large enough to amortize the checks, small enough
// that cancellation and breakpoints land promptly.
const runChunk = 4096

// MaxMemoryRead caps one read-memory command, keeping responses bounded.
const MaxMemoryRead = 4096

// Session is one paused machine plus its live trace stream. The session
// layer is machine-agnostic: it drives any registered backend through
// machine.Machine and adds no simulation semantics of its own. All
// methods are safe for concurrent use; commands are serialized
// (ErrBusy).
type Session struct {
	id     string
	mach   machine.Machine
	sink   *obs.StreamSink
	symbol func(name string) (uint32, bool)

	// OnClose, when set before the session is shared, runs exactly once
	// when the session closes — the serve layer releases its admission
	// slot here.
	OnClose func()

	// cmdMu serializes commands. Commands TryLock: a busy session
	// answers immediately, it never queues work.
	cmdMu sync.Mutex
	bps   map[uint32]struct{}

	// ctx is cancelled by Close so in-flight run commands stop at the
	// next chunk boundary even when their HTTP context is still live.
	ctx    context.Context
	cancel context.CancelFunc

	stateMu  sync.Mutex
	busy     bool
	lastUsed time.Time
	closed   bool
	reason   string
}

// New wraps a paused machine as a session, attaching the trace stream
// (any existing observer on m is replaced). The machine must not be
// driven by anyone else for the session's lifetime.
func New(id string, m machine.Machine, prog machine.Program) *Session {
	s := newSession(id, m, prog.Symbol)
	m.Observe(&obs.Observer{Tracer: obs.NewTracer(0, s.sink)})
	return s
}

func newSession(id string, m machine.Machine, symbol func(string) (uint32, bool)) *Session {
	ctx, cancel := context.WithCancel(context.Background())
	return &Session{
		id:       id,
		mach:     m,
		sink:     obs.NewStreamSink(),
		symbol:   symbol,
		bps:      make(map[uint32]struct{}),
		ctx:      ctx,
		cancel:   cancel,
		lastUsed: time.Now(),
	}
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// StreamStats snapshots the session's fan-out counters.
func (s *Session) StreamStats() obs.StreamStats { return s.sink.Stats() }

// Subscribe attaches a live trace subscriber with the given ring size
// (<= 0 uses the obs default) and counts as session activity.
func (s *Session) Subscribe(ringSize int) *obs.Subscriber {
	s.touch()
	return s.sink.Subscribe(ringSize)
}

// Unsubscribe detaches a subscriber and ends its stream.
func (s *Session) Unsubscribe(sub *obs.Subscriber) { s.sink.Unsubscribe(sub) }

// Close ends the session: in-flight run commands stop at their next
// chunk boundary, every subscriber's stream ends (after draining its
// buffer), and OnClose fires. The reason is what idle or drain closures
// report; repeated closes keep the first reason. Safe to call from any
// goroutine, any number of times.
func (s *Session) Close(reason string) {
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return
	}
	s.closed = true
	s.reason = reason
	s.stateMu.Unlock()
	s.cancel()
	s.sink.Close()
	if s.OnClose != nil {
		s.OnClose()
	}
}

// CloseReason returns why the session closed ("" while it is alive).
func (s *Session) CloseReason() string {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if !s.closed {
		return ""
	}
	return s.reason
}

// idleFor reports how long the session has been idle; busy or closed
// sessions are never idle.
func (s *Session) idleFor(now time.Time) (time.Duration, bool) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.busy || s.closed {
		return 0, false
	}
	return now.Sub(s.lastUsed), true
}

func (s *Session) touch() {
	s.stateMu.Lock()
	s.lastUsed = time.Now()
	s.stateMu.Unlock()
}

// begin takes the command lock without queueing and flags the session
// busy. It fails with ErrBusy or ErrClosed.
func (s *Session) begin() error {
	if !s.cmdMu.TryLock() {
		return ErrBusy
	}
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		s.cmdMu.Unlock()
		return ErrClosed
	}
	s.busy = true
	s.lastUsed = time.Now()
	s.stateMu.Unlock()
	return nil
}

func (s *Session) end() {
	s.stateMu.Lock()
	s.busy = false
	s.lastUsed = time.Now()
	s.stateMu.Unlock()
	s.cmdMu.Unlock()
}

// Stop reasons: why a step or run command returned.
const (
	StopStep       = "step"       // the step count was reached
	StopHalt       = "halt"       // the program halted cleanly
	StopFault      = "fault"      // the machine faulted (State.Fault has the message)
	StopBreakpoint = "breakpoint" // execution reached an armed breakpoint
	StopBudget     = "budget"     // the run command's step budget ran out
	StopFuel       = "fuel"       // the session's instruction budget is exhausted
	StopCanceled   = "canceled"   // the command's context ended first
)

// State describes the machine after a command.
type State struct {
	Stopped      string // one of the Stop* reasons ("" for pure inspection commands)
	PC           uint32
	Halted       bool
	Fault        string // fault message when the machine stopped on an error
	Instructions uint64 // cumulative, session lifetime
	Cycles       uint64 // cumulative simulated cycles
	Steps        uint64 // instructions executed by THIS command
}

func (s *Session) state(stopped string, stepsBefore uint64) State {
	halted, herr := s.mach.Halted()
	st := State{
		Stopped:      stopped,
		PC:           s.mach.PC(),
		Halted:       halted,
		Instructions: s.mach.Instructions(),
		Cycles:       s.mach.Cycles(),
	}
	st.Steps = st.Instructions - stepsBefore
	if herr != nil {
		st.Fault = herr.Error()
	}
	return st
}

// Step executes exactly n instructions (n < 1 means 1), ignoring
// breakpoints — an explicit step always moves. It stops early on halt,
// fault, fuel exhaustion, or cancellation.
func (s *Session) Step(ctx context.Context, n uint64) (State, error) {
	if err := s.begin(); err != nil {
		return State{}, err
	}
	defer s.end()
	if n < 1 {
		n = 1
	}
	return s.run(ctx, n, false)
}

// Run executes until the program halts, faults, reaches an armed
// breakpoint, exhausts the session's fuel, or executes maxSteps
// instructions (maxSteps < 1 means no command budget beyond fuel). A
// session paused ON a breakpoint runs past it first.
func (s *Session) Run(ctx context.Context, maxSteps uint64) (State, error) {
	if err := s.begin(); err != nil {
		return State{}, err
	}
	defer s.end()
	if maxSteps < 1 {
		maxSteps = ^uint64(0)
	}
	return s.run(ctx, maxSteps, true)
}

// run is the shared command loop. With breakpoints armed it steps one
// instruction at a time (the check is a pre-execution PC probe, so the
// breakpoint instruction itself has not run when the command returns);
// with none it batches runChunk instructions between checks, which is
// what keeps run-until within a few percent of a free run.
func (s *Session) run(ctx context.Context, maxSteps uint64, honorBps bool) (State, error) {
	// Trace delivery is batched (obs.StreamSink); flushing on every
	// return path means a paused session has no undelivered events, so
	// stream snapshots reconcile exactly with what subscribers received.
	defer s.sink.Flush()
	if halted, _ := s.mach.Halted(); halted {
		return s.state(StopHalt, s.mach.Instructions()), nil
	}
	start := s.mach.Instructions()
	checkBps := honorBps && len(s.bps) > 0
	budgetStop := StopBudget
	if !honorBps {
		budgetStop = StopStep
	}
	for {
		executed := s.mach.Instructions() - start
		if executed >= maxSteps {
			return s.state(budgetStop, start), nil
		}
		if checkBps && executed > 0 {
			if _, hit := s.bps[s.mach.PC()]; hit {
				return s.state(StopBreakpoint, start), nil
			}
		}
		chunk := maxSteps - executed
		if checkBps {
			chunk = 1
		} else if chunk > runChunk {
			chunk = runChunk
		}
		halted, err := s.mach.RunSteps(chunk)
		s.sink.Flush() // per-chunk, so live subscribers stream during long runs
		switch {
		case err != nil && halted:
			return s.state(StopFault, start), nil
		case err != nil:
			// RunSteps only errors without halting on fuel exhaustion
			// (cpu/vax ErrInstructionLimit); the session stays inspectable.
			return s.state(StopFuel, start), nil
		case halted:
			return s.state(StopHalt, start), nil
		}
		if s.ctx.Err() != nil {
			return State{}, ErrClosed
		}
		if ctx.Err() != nil {
			return s.state(StopCanceled, start), nil
		}
	}
}

// AddBreakpoint arms a breakpoint at addr.
func (s *Session) AddBreakpoint(ctx context.Context, addr uint32) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	s.bps[addr] = struct{}{}
	return nil
}

// ClearBreakpoint disarms addr; clearing an unarmed address is a no-op.
func (s *Session) ClearBreakpoint(ctx context.Context, addr uint32) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	delete(s.bps, addr)
	return nil
}

// Breakpoints returns the armed addresses in ascending order.
func (s *Session) Breakpoints() ([]uint32, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	out := make([]uint32, 0, len(s.bps))
	for a := range s.bps {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ { // insertion sort; breakpoint sets are tiny
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, nil
}

// Symbol resolves a program symbol to its address (for breakpoints and
// memory reads addressed by name).
func (s *Session) Symbol(name string) (uint32, bool) { return s.symbol(name) }

// Registers returns the machine state plus the current window's
// register values (32 for RISC I, 16 for the baseline). Reads are
// side-effect-free: they never touch simulated statistics or state.
func (s *Session) Registers(ctx context.Context) (State, []uint32, error) {
	if err := s.begin(); err != nil {
		return State{}, nil, err
	}
	defer s.end()
	return s.state("", s.mach.Instructions()), s.mach.Registers(), nil
}

// ReadMemory returns n bytes at addr (n capped at MaxMemoryRead),
// bypassing simulated traffic statistics.
func (s *Session) ReadMemory(ctx context.Context, addr uint32, n int) ([]byte, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if n < 1 {
		n = 4
	}
	if n > MaxMemoryRead {
		return nil, fmt.Errorf("session: read of %d bytes exceeds the %d-byte cap", n, MaxMemoryRead)
	}
	return s.mach.Mem().ReadBytes(addr, n)
}
