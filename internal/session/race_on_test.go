//go:build race

package session

// raceEnabled reports whether this test binary was built with the race
// detector. Timing pins skip under it: race instrumentation multiplies
// the cost of every synchronization operation, so a performance ratio
// measured there says nothing about production builds.
const raceEnabled = true
