package session

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/exec"
	"risc1/internal/machine"
	"risc1/internal/obs"
	"risc1/internal/rv32"
	"risc1/internal/vax"
)

// fibSrc is a small but structurally rich program: recursion exercises
// call/return (and, deep enough, spill/refill) trace events alongside
// plain instructions.
const fibSrc = `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(8); return 0; }
`

// spinSrc never halts — the workload for fuel, busy, and stalled-
// subscriber tests.
const spinSrc = `int result; int main() { while (1) { result = result + 1; } return 0; }`

// testIDs keeps test-built session IDs unique — the Manager's table is
// keyed by ID, and two sessions sharing one would silently shadow each
// other.
var testIDs atomic.Uint64

func buildMachine(t testing.TB, name, src string, o machine.Options) (machine.Machine, machine.Program) {
	t.Helper()
	b, ok := machine.Lookup(name)
	if !ok {
		t.Fatalf("no backend named %q", name)
	}
	m, prog, err := exec.NewSims().NewMachine(context.Background(), b, src, o)
	if err != nil {
		t.Fatalf("building %s machine: %v", name, err)
	}
	return m, prog
}

func buildRISC(t testing.TB, src string, fuel uint64) *Session {
	t.Helper()
	m, prog := buildMachine(t, "risc1", src, machine.Options{Opt: 1, DelaySlots: true, Fuel: fuel})
	return New(fmt.Sprintf("test-risc-%d", testIDs.Add(1)), m, prog)
}

func buildVAX(t testing.TB, src string, fuel uint64) *Session {
	t.Helper()
	m, prog := buildMachine(t, "cisc", src, machine.Options{Opt: 1, Fuel: fuel})
	return New(fmt.Sprintf("test-vax-%d", testIDs.Add(1)), m, prog)
}

// collectSink gathers every event — the post-hoc reference side of the
// differential tests.
type collectSink struct{ evs []obs.Event }

func (c *collectSink) Emit(ev obs.Event) error { c.evs = append(c.evs, ev); return nil }
func (c *collectSink) Close() error            { return nil }

// drainAll reads a subscriber until its stream ends.
func drainAll(t *testing.T, sub *obs.Subscriber) []obs.Event {
	t.Helper()
	var evs []obs.Event
	for {
		ev, _, ok := sub.Next(context.Background())
		if !ok {
			return evs
		}
		evs = append(evs, ev)
	}
}

// jsonLines marshals events the way both the SSE stream and the JSONL
// trace file do, so "same trace" means byte-identical wire form.
func jsonLines(t *testing.T, evs []obs.Event) []string {
	t.Helper()
	lines := make([]string, len(evs))
	for i, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("marshal event %d: %v", i, err)
		}
		lines[i] = string(b)
	}
	return lines
}

// TestStepDifferentialRISC is the tentpole acceptance differential at
// the session layer: stepping a session instruction by instruction must
// produce the exact event sequence — same wire bytes — as one post-hoc
// traced run of the same program (the risc1-run -trace-out path).
func TestStepDifferentialRISC(t *testing.T) {
	for _, opt := range []int{0, 1} {
		// Session side: warm-started machine, stepped in mixed strides so
		// chunk boundaries land at arbitrary points.
		m, prog := buildMachine(t, "risc1", fibSrc, machine.Options{Opt: opt, DelaySlots: opt == 1})
		s := New("diff", m, prog)
		sub := s.Subscribe(1 << 20) // keep everything
		strides := []uint64{1, 1, 3, 7, 1, 64, 1}
		var st State
		for i := 0; ; i++ {
			var err error
			st, err = s.Step(context.Background(), strides[i%len(strides)])
			if err != nil {
				t.Fatalf("opt %d: step: %v", opt, err)
			}
			if st.Halted {
				break
			}
		}
		if st.Fault != "" {
			t.Fatalf("opt %d: faulted: %s", opt, st.Fault)
		}
		s.Close(CloseReasonClient)
		stepped := jsonLines(t, drainAll(t, sub))

		// Reference side: the plain traced-run prelude, no session layer.
		ref, _, _, err := cc.CompileRISC(fibSrc, cc.Options{Opt: opt, DelaySlots: opt == 1})
		if err != nil {
			t.Fatalf("opt %d: compile: %v", opt, err)
		}
		rc := cpu.New(cpu.Config{})
		rc.Reset(ref.Entry)
		if err := ref.LoadInto(rc.Mem); err != nil {
			t.Fatalf("opt %d: load: %v", opt, err)
		}
		sink := &collectSink{}
		rc.Obs = &obs.Observer{Tracer: obs.NewTracer(0, sink)}
		if err := rc.Run(); err != nil {
			t.Fatalf("opt %d: reference run: %v", opt, err)
		}
		free := jsonLines(t, sink.evs)

		if len(stepped) != len(free) {
			t.Fatalf("opt %d: stepped session emitted %d events, free run %d", opt, len(stepped), len(free))
		}
		for i := range free {
			if stepped[i] != free[i] {
				t.Fatalf("opt %d: event %d differs\n  stepped: %s\n  free:    %s", opt, i, stepped[i], free[i])
			}
		}
		if st.Instructions != rc.Trace.Instructions || st.Cycles != rc.Trace.Cycles {
			t.Errorf("opt %d: counters diverge: session %d/%d, free %d/%d",
				opt, st.Instructions, st.Cycles, rc.Trace.Instructions, rc.Trace.Cycles)
		}
	}
}

// TestStepDifferentialVAX is the CISC-baseline half of the differential.
func TestStepDifferentialVAX(t *testing.T) {
	m, prog := buildMachine(t, "cisc", fibSrc, machine.Options{Opt: 1})
	s := New("diff", m, prog)
	sub := s.Subscribe(1 << 20)
	for {
		st, err := s.Step(context.Background(), 5)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if st.Halted {
			break
		}
	}
	s.Close(CloseReasonClient)
	stepped := jsonLines(t, drainAll(t, sub))

	ref, _, _, err := cc.CompileVAX(fibSrc, cc.Options{Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc := vax.New(vax.Config{})
	rc.Reset(ref.Entry)
	if err := ref.LoadInto(rc.Mem); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	rc.Obs = &obs.Observer{Tracer: obs.NewTracer(0, sink)}
	if err := rc.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	free := jsonLines(t, sink.evs)
	if len(stepped) != len(free) {
		t.Fatalf("stepped session emitted %d events, free run %d", len(stepped), len(free))
	}
	for i := range free {
		if stepped[i] != free[i] {
			t.Fatalf("event %d differs\n  stepped: %s\n  free:    %s", i, stepped[i], free[i])
		}
	}
}

// TestStepDifferentialRV32 is the same differential on the third
// registered machine — the session layer never special-cases a backend.
func TestStepDifferentialRV32(t *testing.T) {
	m, prog := buildMachine(t, "rv32", fibSrc, machine.Options{Opt: 1})
	s := New("diff", m, prog)
	sub := s.Subscribe(1 << 20)
	for {
		st, err := s.Step(context.Background(), 5)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if st.Halted {
			break
		}
	}
	s.Close(CloseReasonClient)
	stepped := jsonLines(t, drainAll(t, sub))

	ref, _, _, err := cc.CompileRV32(fibSrc, cc.Options{Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc := rv32.New(rv32.Config{})
	rc.Reset(ref.Entry)
	if err := ref.LoadInto(rc.Mem); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	rc.Obs = &obs.Observer{Tracer: obs.NewTracer(0, sink)}
	if err := rc.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	free := jsonLines(t, sink.evs)
	if len(stepped) != len(free) {
		t.Fatalf("stepped session emitted %d events, free run %d", len(stepped), len(free))
	}
	for i := range free {
		if stepped[i] != free[i] {
			t.Fatalf("event %d differs\n  stepped: %s\n  free:    %s", i, stepped[i], free[i])
		}
	}
}

// TestRunUntilBreakpoint: run-until stops at an armed breakpoint with
// the breakpoint instruction not yet executed, a paused-on-breakpoint
// session runs PAST it on the next run, and clearing the breakpoint
// lets the program finish.
func TestRunUntilBreakpoint(t *testing.T) {
	s := buildRISC(t, fibSrc, 0)
	fib, ok := s.Symbol("fib")
	if !ok {
		t.Fatal("no fib symbol")
	}
	if err := s.AddBreakpoint(context.Background(), fib); err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != StopBreakpoint || st.PC != fib || st.Halted {
		t.Fatalf("first run: %+v, want stop %q at %#x", st, StopBreakpoint, fib)
	}
	instrsAtBp := st.Instructions

	// Paused on the breakpoint: the next run must move (fib recurses, so
	// it stops at fib again, strictly later).
	st, err = s.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != StopBreakpoint || st.PC != fib {
		t.Fatalf("second run: %+v, want another %q stop", st, StopBreakpoint)
	}
	if st.Instructions <= instrsAtBp {
		t.Fatal("run from a breakpoint did not execute anything")
	}

	if bps, err := s.Breakpoints(); err != nil || len(bps) != 1 || bps[0] != fib {
		t.Fatalf("breakpoints = %v, %v", bps, err)
	}
	if err := s.ClearBreakpoint(context.Background(), fib); err != nil {
		t.Fatal(err)
	}
	st, err = s.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != StopHalt || !st.Halted {
		t.Fatalf("final run: %+v, want clean halt", st)
	}
}

// TestInspection: register and memory reads return real machine state
// and never perturb it (the trace stream sees nothing from them).
func TestInspection(t *testing.T) {
	s := buildRISC(t, fibSrc, 0)
	sub := s.Subscribe(1 << 20)
	st, err := s.Run(context.Background(), 0)
	if err != nil || !st.Halted {
		t.Fatalf("run: %+v, %v", st, err)
	}
	evsBefore := s.StreamStats().Events

	_, regs, err := s.Registers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 32 {
		t.Fatalf("RISC register read returned %d values, want 32", len(regs))
	}
	addr, ok := s.Symbol("result")
	if !ok {
		t.Fatal("no result symbol")
	}
	b, err := s.ReadMemory(context.Background(), addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(b); got != 21 { // fib(8)
		t.Errorf("result = %d, want 21", got)
	}
	if _, err := s.ReadMemory(context.Background(), addr, MaxMemoryRead+1); err == nil {
		t.Error("oversized memory read did not fail")
	}
	if after := s.StreamStats().Events; after != evsBefore {
		t.Errorf("inspection emitted %d trace events", after-evsBefore)
	}
	s.Close(CloseReasonClient)
	drainAll(t, sub)
}

// TestFuelExhaustion: running out of the session's instruction budget
// pauses the session (StopFuel) instead of killing it — it stays fully
// inspectable.
func TestFuelExhaustion(t *testing.T) {
	s := buildRISC(t, spinSrc, 500)
	st, err := s.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != StopFuel || st.Halted {
		t.Fatalf("state %+v, want %q pause", st, StopFuel)
	}
	if st.Instructions != 500 {
		t.Errorf("executed %d instructions, want exactly the 500 fuel", st.Instructions)
	}
	if _, _, err := s.Registers(context.Background()); err != nil {
		t.Errorf("fuel-exhausted session not inspectable: %v", err)
	}
}

// TestBusyAndClosed: a second command while one runs fails fast with
// ErrBusy; Close interrupts the in-flight run; commands after Close
// fail with ErrClosed; OnClose fires exactly once.
func TestBusyAndClosed(t *testing.T) {
	s := buildRISC(t, spinSrc, 1<<30)
	closes := 0
	s.OnClose = func() { closes++ }

	runDone := make(chan error, 1)
	go func() {
		_, err := s.Run(context.Background(), 0)
		runDone <- err
	}()

	// Wait until the run actually holds the command lock.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Step(context.Background(), 1); errors.Is(err, ErrBusy) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never became busy")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := s.Registers(context.Background()); !errors.Is(err, ErrBusy) {
		t.Errorf("Registers during run = %v, want ErrBusy", err)
	}

	s.Close(CloseReasonClient)
	s.Close(CloseReasonDrain) // second close: no-op, reason stays
	if err := <-runDone; !errors.Is(err, ErrClosed) {
		t.Errorf("interrupted run = %v, want ErrClosed", err)
	}
	if _, err := s.Step(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Errorf("step after close = %v, want ErrClosed", err)
	}
	if closes != 1 {
		t.Errorf("OnClose fired %d times, want 1", closes)
	}
	if r := s.CloseReason(); r != CloseReasonClient {
		t.Errorf("close reason %q, want %q", r, CloseReasonClient)
	}
}

// TestStalledSubscriberSession is the slow-subscriber contract at the
// session layer (satellite 3's unit half): with a subscriber that never
// reads, the simulator still executes its full budget, the drop counter
// is monotone, and after the fact the survived events are exactly the
// freshest ring's worth with gap-exact sequence numbers.
func TestStalledSubscriberSession(t *testing.T) {
	const ring = 64
	const fuel = 50000
	s := buildRISC(t, spinSrc, fuel)
	sub := s.Subscribe(ring)

	st, err := s.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != StopFuel || st.Instructions != fuel {
		t.Fatalf("stalled subscriber perturbed the run: %+v", st)
	}

	total := s.StreamStats().Events
	if total < fuel {
		t.Fatalf("only %d events for %d instructions", total, fuel)
	}
	wantDropped := total - ring
	if d := sub.Dropped(); d != wantDropped {
		t.Fatalf("dropped %d, want %d", d, wantDropped)
	}
	s.Close(CloseReasonClient)

	var lastSeq uint64
	lastDropped, n := uint64(0), 0
	for {
		ev, dropped, ok := sub.Next(context.Background())
		if !ok {
			break
		}
		if dropped < lastDropped {
			t.Fatalf("drop counter fell %d -> %d", lastDropped, dropped)
		}
		if n > 0 && ev.Seq != lastSeq+1 {
			t.Fatalf("post-stall drain not gapless: seq %d after %d", ev.Seq, lastSeq)
		}
		if n == 0 && ev.Seq != dropped {
			t.Fatalf("first survivor seq %d != cumulative drops %d", ev.Seq, dropped)
		}
		lastSeq, lastDropped = ev.Seq, dropped
		n++
	}
	if n != ring {
		t.Fatalf("drained %d events, want the ring's %d", n, ring)
	}
	if lastSeq != total-1 {
		t.Errorf("freshest survivor seq %d, want %d", lastSeq, total-1)
	}
}
