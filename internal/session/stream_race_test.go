package session

import (
	"context"
	"testing"
	"time"
)

// TestSlowSubscriberConcurrent is the functional half of the stalled-SSE
// contract, built to run under the race detector (where the timing pin
// TestStalledSubscriberOverhead is skipped): a reader that consumes
// events concurrently with the run — but too slowly to keep up with a
// small ring — must observe a stream that accounts for every event. The
// per-event ledger is exact: when the event with sequence number seq is
// delivered, every earlier event was either delivered before it or sits
// in the drop counter, so seq+1 == delivered + dropped at every single
// delivery, and at end of stream the two sides sum to everything the
// simulator flushed.
func TestSlowSubscriberConcurrent(t *testing.T) {
	const ring = 128
	const fuel = 200_000
	s := buildRISC(t, spinSrc, fuel)
	sub := s.Subscribe(ring)

	type tally struct {
		delivered uint64
		dropped   uint64
		lastSeq   uint64
	}
	done := make(chan tally, 1)
	go func() {
		var tl tally
		var lastDropped uint64
		for {
			ev, dropped, ok := sub.Next(context.Background())
			if !ok {
				tl.dropped = dropped
				done <- tl
				return
			}
			if dropped < lastDropped {
				t.Errorf("drop counter fell %d -> %d", lastDropped, dropped)
			}
			lastDropped = dropped
			tl.delivered++
			tl.lastSeq = ev.Seq
			// The exact ledger at this delivery: everything before this
			// event was delivered or dropped, nothing else.
			if ev.Seq+1 != tl.delivered+dropped {
				t.Errorf("ledger broken at seq %d: delivered %d + dropped %d != %d",
					ev.Seq, tl.delivered, dropped, ev.Seq+1)
				done <- tl
				return
			}
			// Stay slow: stall a little on a fraction of deliveries so
			// the ring keeps overflowing while the simulator runs.
			if tl.delivered%64 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	st, err := s.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped != StopFuel || st.Instructions != fuel {
		t.Fatalf("slow subscriber perturbed the run: %+v", st)
	}
	total := s.StreamStats().Events
	if total < fuel {
		t.Fatalf("only %d events for %d instructions", total, fuel)
	}
	s.Close(CloseReasonClient) // ends the stream; the reader drains the ring and exits

	var tl tally
	select {
	case tl = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("reader did not finish after close")
	}

	if tl.delivered+tl.dropped != total {
		t.Errorf("delivered %d + dropped %d != %d events emitted", tl.delivered, tl.dropped, total)
	}
	if tl.lastSeq != total-1 {
		t.Errorf("freshest delivered seq %d, want %d (the last event is never dropped)", tl.lastSeq, total-1)
	}
	if tl.dropped == 0 {
		t.Error("no drops: the reader kept up and the slow path was never exercised")
	}
	if tl.delivered == 0 {
		t.Error("nothing delivered: the reader never ran concurrently")
	}
}
