package session

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestManagerLifecycle: IDs are unique, lookup works, explicit close
// removes the session and fires its release hook, and the stats
// counters reconcile.
func TestManagerLifecycle(t *testing.T) {
	m := NewManager(time.Hour) // reaper effectively off
	defer m.CloseAll(CloseReasonDrain)

	a, b := buildRISC(t, fibSrc, 0), buildRISC(t, fibSrc, 0)
	releases := 0
	a.OnClose = func() { releases++ }
	ida, idb := m.NewID(), m.NewID()
	if ida == idb {
		t.Fatalf("NewID repeated %q", ida)
	}
	for _, s := range []*Session{a, b} {
		if err := m.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := m.Get(a.ID()); !ok || got != a {
		t.Fatal("Get lost a registered session")
	}

	if !m.Close(a.ID(), CloseReasonClient) {
		t.Fatal("Close missed a live session")
	}
	if m.Close(a.ID(), CloseReasonClient) {
		t.Fatal("Close found an already-closed session")
	}
	if releases != 1 {
		t.Fatalf("release hook fired %d times, want 1", releases)
	}
	if _, ok := m.Get(a.ID()); ok {
		t.Fatal("closed session still resolvable")
	}

	st := m.Stats()
	if st.Active != 1 || st.Created != 2 || st.Closed != 1 || st.Expired != 0 {
		t.Fatalf("stats %+v, want active 1, created 2, closed 1", st)
	}
}

// TestManagerStreamTotalsSurviveClose: a session's stream counters fold
// into the manager totals when it closes, so the Prometheus counters
// stay monotonic across session churn.
func TestManagerStreamTotalsSurviveClose(t *testing.T) {
	m := NewManager(time.Hour)
	defer m.CloseAll(CloseReasonDrain)

	s := buildRISC(t, spinSrc, 2000)
	if err := m.Add(s); err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(16) // stalled: guarantees drops
	if _, err := s.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	live := m.Stats()
	if live.StreamEvents < 2000 || live.StreamDropped == 0 || live.Subscribers != 1 {
		t.Fatalf("live stats %+v", live)
	}

	m.Close(s.ID(), CloseReasonClient)
	after := m.Stats()
	if after.StreamEvents != live.StreamEvents || after.StreamDropped != live.StreamDropped {
		t.Fatalf("stream totals shrank on close: %+v -> %+v", live, after)
	}
	if after.Subscribers != 0 || after.Active != 0 {
		t.Fatalf("closed session still counted: %+v", after)
	}
	_ = sub

	text := after.Prometheus("risc1_session")
	for _, want := range []string{
		"# TYPE risc1_session_active gauge\nrisc1_session_active 0\n",
		"risc1_session_created_total 1\n",
		"risc1_session_closed_total 1\n",
		"# TYPE risc1_session_stream_dropped_total counter\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// TestManagerIdleReaper: an untouched session expires (subscribers get
// a terminal idle-timeout stream end), while a session kept busy by a
// long command survives well past the timeout.
func TestManagerIdleReaper(t *testing.T) {
	m := NewManager(60 * time.Millisecond)
	defer m.CloseAll(CloseReasonDrain)

	idle := buildRISC(t, fibSrc, 0)
	if err := m.Add(idle); err != nil {
		t.Fatal(err)
	}
	sub := idle.Subscribe(8)

	busy := buildRISC(t, spinSrc, 1<<30)
	if err := m.Add(busy); err != nil {
		t.Fatal(err)
	}
	busyDone := make(chan struct{})
	go func() {
		defer close(busyDone)
		busy.Run(context.Background(), 0) // interrupted by CloseAll via the deferred drain
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(idle.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r := idle.CloseReason(); r != CloseReasonIdle {
		t.Errorf("idle close reason %q, want %q", r, CloseReasonIdle)
	}
	// The subscriber's stream ended (terminal, not hung).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for {
		if _, _, ok := sub.Next(ctx); !ok {
			break
		}
	}
	if !sub.Closed() {
		t.Error("expired session left its subscriber stream open")
	}

	// The busy session is immune while its command runs.
	if _, ok := m.Get(busy.ID()); !ok {
		t.Fatal("busy session was reaped mid-command")
	}
	if st := m.Stats(); st.Expired != 1 {
		t.Errorf("expired count %d, want 1", st.Expired)
	}

	m.CloseAll(CloseReasonDrain)
	<-busyDone
	if err := m.Add(buildRISC(t, fibSrc, 0)); !errors.Is(err, ErrManagerClosed) {
		t.Errorf("Add after CloseAll = %v, want ErrManagerClosed", err)
	}
}

// TestSessionGoroutineLeak is the satellite-5 leak check: the goroutine
// count is stable after a full create -> stream -> idle-timeout ->
// drain lifecycle, repeated enough to make a per-session leak obvious.
func TestSessionGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		m := NewManager(30 * time.Millisecond)
		readers := make(chan struct{}, 4)
		for i := 0; i < 4; i++ {
			s := buildRISC(t, fibSrc, 0)
			if err := m.Add(s); err != nil {
				t.Fatal(err)
			}
			sub := s.Subscribe(32)
			go func() {
				defer func() { readers <- struct{}{} }()
				for {
					if _, _, ok := sub.Next(context.Background()); !ok {
						return
					}
				}
			}()
			if _, err := s.Step(context.Background(), 10); err != nil {
				t.Error(err)
			}
		}
		// Half the sessions expire idle; CloseAll drains the rest.
		time.Sleep(70 * time.Millisecond)
		m.CloseAll(CloseReasonDrain)
		for i := 0; i < 4; i++ {
			select {
			case <-readers:
			case <-time.After(5 * time.Second):
				t.Fatal("stream reader leaked: subscriber stream never ended")
			}
		}
	}

	// Let runtime bookkeeping settle, then compare.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after session lifecycles", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
