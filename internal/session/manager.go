package session

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrManagerClosed: the manager is draining; no new sessions.
var ErrManagerClosed = errors.New("session: manager closed")

// DefaultIdleTimeout is how long an untouched session survives before
// the reaper closes it. Commands and new stream subscriptions count as
// activity; a passively open stream does not — a watcher who never
// commands is indistinguishable from an abandoned one.
const DefaultIdleTimeout = 2 * time.Minute

// Stats is a point-in-time summary of the manager for /metrics. Stream
// totals cover closed sessions too, so the counters are monotonic the
// way Prometheus counters must be.
type Stats struct {
	Active        int    // live sessions (gauge)
	Subscribers   int    // attached stream subscribers across live sessions (gauge)
	Created       uint64 // sessions ever created
	Closed        uint64 // sessions closed for any reason (includes Expired)
	Expired       uint64 // closed by the idle reaper
	StreamEvents  uint64 // trace events offered to subscribers, all sessions ever
	StreamDropped uint64 // events dropped on slow subscribers, all sessions ever
}

// Prometheus renders the stats in text exposition format under prefix.
func (s Stats) Prometheus(prefix string) string {
	return fmt.Sprintf(`# TYPE %[1]s_active gauge
%[1]s_active %[2]d
# TYPE %[1]s_subscribers gauge
%[1]s_subscribers %[3]d
# TYPE %[1]s_created_total counter
%[1]s_created_total %[4]d
# TYPE %[1]s_closed_total counter
%[1]s_closed_total %[5]d
# TYPE %[1]s_expired_total counter
%[1]s_expired_total %[6]d
# TYPE %[1]s_stream_events_total counter
%[1]s_stream_events_total %[7]d
# TYPE %[1]s_stream_dropped_total counter
%[1]s_stream_dropped_total %[8]d
`, prefix, s.Active, s.Subscribers, s.Created, s.Closed, s.Expired, s.StreamEvents, s.StreamDropped)
}

// Manager owns the live session table: ID assignment, lookup, idle
// reaping, and the drain path that closes everything at shutdown. All
// methods are safe for concurrent use.
type Manager struct {
	idle time.Duration

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	closed   bool

	created, closedN, expired uint64
	// Stream totals of sessions already closed; live sessions are summed
	// on demand so Stats stays monotonic across session churn.
	doneEvents, doneDropped uint64

	stop     chan struct{}
	reaperWG sync.WaitGroup
}

// NewManager starts a manager whose reaper closes sessions idle longer
// than idleTimeout (<= 0 uses DefaultIdleTimeout). Stop it with
// CloseAll.
func NewManager(idleTimeout time.Duration) *Manager {
	if idleTimeout <= 0 {
		idleTimeout = DefaultIdleTimeout
	}
	m := &Manager{
		idle:     idleTimeout,
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),
	}
	m.reaperWG.Add(1)
	go m.reap()
	return m
}

// NewID issues the next session identifier.
func (m *Manager) NewID() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return fmt.Sprintf("sess-%06d", m.nextID)
}

// Add registers a session built with an ID from NewID. It fails with
// ErrManagerClosed once the manager is draining — the caller still owns
// (and must close) the rejected session.
func (m *Manager) Add(s *Session) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrManagerClosed
	}
	m.sessions[s.ID()] = s
	m.created++
	return nil
}

// Get looks up a live session.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Close removes and closes one session, reporting whether it existed.
func (m *Manager) Close(id, reason string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		m.retire(s)
	}
	m.mu.Unlock()
	if ok {
		s.Close(reason)
	}
	return ok
}

// retire removes a session from the table and folds its stream counters
// into the done totals. Caller holds m.mu; the session's sink keeps its
// counts after close, so snapshotting here (before Close) is exact.
func (m *Manager) retire(s *Session) {
	delete(m.sessions, s.ID())
	m.closedN++
	st := s.StreamStats()
	m.doneEvents += st.Events
	m.doneDropped += st.Dropped
}

// CloseAll closes every session with the given reason (the drain path:
// subscribers get a terminal event, release hooks fire), stops the
// reaper, and marks the manager closed so Add refuses new sessions. It
// returns when the reaper has exited and every session is closed.
func (m *Manager) CloseAll(reason string) {
	m.mu.Lock()
	var victims []*Session
	if !m.closed {
		m.closed = true
		close(m.stop)
		for _, s := range m.sessions {
			victims = append(victims, s)
		}
		for _, s := range victims {
			m.retire(s)
		}
	}
	m.mu.Unlock()
	for _, s := range victims {
		s.Close(reason)
	}
	m.reaperWG.Wait()
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Active:        len(m.sessions),
		Created:       m.created,
		Closed:        m.closedN,
		Expired:       m.expired,
		StreamEvents:  m.doneEvents,
		StreamDropped: m.doneDropped,
	}
	for _, s := range m.sessions {
		ss := s.StreamStats()
		st.Subscribers += ss.Subscribers
		st.StreamEvents += ss.Events
		st.StreamDropped += ss.Dropped
	}
	return st
}

// reap wakes a few times per idle period and closes sessions whose
// idle time exceeds the timeout. Sessions with a command in flight are
// never idle (Session.idleFor), so a long run-until cannot be reaped
// out from under its caller.
func (m *Manager) reap() {
	defer m.reaperWG.Done()
	period := m.idle / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > 5*time.Second {
		period = 5 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.mu.Lock()
			var victims []*Session
			for _, s := range m.sessions {
				if d, ok := s.idleFor(now); ok && d > m.idle {
					victims = append(victims, s)
				}
			}
			for _, s := range victims {
				m.retire(s)
				m.expired++
			}
			m.mu.Unlock()
			for _, s := range victims {
				s.Close(CloseReasonIdle)
			}
		}
	}
}

// Close reasons reported in each subscriber's terminal stream event.
const (
	CloseReasonClient = "closed"       // explicit DELETE by the client
	CloseReasonIdle   = "idle-timeout" // reaped after the idle timeout
	CloseReasonDrain  = "drain"        // server shutting down
)
