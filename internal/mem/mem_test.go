package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	m := New(64)
	if err := m.StoreWord(8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.LoadWord(8)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("LoadWord = %#x, %v", v, err)
	}
}

func TestBigEndianLayout(t *testing.T) {
	m := New(16)
	if err := m.StoreWord(0, 0x01020304); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint32{1, 2, 3, 4} {
		got, err := m.LoadByte(uint32(i))
		if err != nil || got != want {
			t.Errorf("byte %d = %d, want %d (big-endian)", i, got, want)
		}
	}
	h, _ := m.LoadHalf(2)
	if h != 0x0304 {
		t.Errorf("half at 2 = %#x, want 0x0304", h)
	}
}

func TestHalfAndByte(t *testing.T) {
	m := New(16)
	if err := m.StoreHalf(4, 0xffff1234); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadHalf(4); v != 0x1234 {
		t.Errorf("half = %#x, want 0x1234 (truncated)", v)
	}
	if err := m.StoreByte(9, 0x1ff); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadByte(9); v != 0xff {
		t.Errorf("byte = %#x, want 0xff (truncated)", v)
	}
}

func TestAlignmentFaults(t *testing.T) {
	m := New(64)
	if _, err := m.LoadWord(2); err == nil {
		t.Error("misaligned word load should fault")
	}
	if err := m.StoreWord(1, 0); err == nil {
		t.Error("misaligned word store should fault")
	}
	if _, err := m.LoadHalf(3); err == nil {
		t.Error("misaligned half load should fault")
	}
	var ae *AccessError
	err := m.StoreHalf(5, 0)
	if !errors.As(err, &ae) || !ae.Write || ae.Size != 2 {
		t.Errorf("expected write AccessError of size 2, got %v", err)
	}
}

func TestRangeFaults(t *testing.T) {
	m := New(16)
	if _, err := m.LoadWord(16); err == nil {
		t.Error("load past end should fault")
	}
	if _, err := m.LoadWord(0xfffffffc); err == nil {
		t.Error("load near address-space top should fault, not wrap")
	}
	if err := m.StoreByte(16, 0); err == nil {
		t.Error("store past end should fault")
	}
	if err := m.WriteBytes(12, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("WriteBytes past end should fault")
	}
	if _, err := m.ReadBytes(12, 5); err == nil {
		t.Error("ReadBytes past end should fault")
	}
}

func TestStatsCounting(t *testing.T) {
	m := New(64)
	m.StoreWord(0, 1)
	m.StoreHalf(4, 1)
	m.StoreByte(6, 1)
	m.LoadWord(0)
	m.LoadByte(6)
	want := Stats{Reads: 2, Writes: 3, BytesRead: 5, BytesWritten: 7}
	if m.Stats != want {
		t.Errorf("stats = %+v, want %+v", m.Stats, want)
	}
	if m.Stats.Accesses() != 5 {
		t.Errorf("accesses = %d, want 5", m.Stats.Accesses())
	}
}

func TestFetchDoesNotCountAsData(t *testing.T) {
	m := New(64)
	m.StoreWord(0, 42)
	m.Stats = Stats{}
	if _, err := m.FetchWord(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FetchByte(1); err != nil {
		t.Fatal(err)
	}
	if m.Stats != (Stats{}) {
		t.Errorf("fetch counted as data traffic: %+v", m.Stats)
	}
	if _, err := m.FetchWord(2); err == nil {
		t.Error("misaligned fetch should fault")
	}
}

func TestWriteReadBytes(t *testing.T) {
	m := New(32)
	if err := m.WriteBytes(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(3, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadBytes = %q, %v", got, err)
	}
}

func TestReset(t *testing.T) {
	m := New(16)
	m.StoreWord(0, 7)
	m.Reset()
	if v, _ := m.LoadWord(0); v != 0 {
		t.Error("Reset did not zero memory")
	}
	if m.Stats.Reads != 1 || m.Stats.Writes != 0 {
		t.Error("Reset did not clear stats before the verification read")
	}
}

// Property: a word stored at any aligned in-range address reads back
// identically and does not disturb neighbouring words.
func TestWordStoreProperty(t *testing.T) {
	m := New(1 << 12)
	f := func(slot uint16, v, neighbour uint32) bool {
		addr := uint32(slot%((1<<12)/4-2)+1) * 4
		if err := m.StoreWord(addr-4, neighbour); err != nil {
			return false
		}
		if err := m.StoreWord(addr+4, neighbour); err != nil {
			return false
		}
		if err := m.StoreWord(addr, v); err != nil {
			return false
		}
		a, _ := m.LoadWord(addr - 4)
		b, _ := m.LoadWord(addr)
		c, _ := m.LoadWord(addr + 4)
		return a == neighbour && b == v && c == neighbour
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestOnStoreHook verifies the write-hook contract the CPU's instruction
// cache depends on: every mutation path reports the touched range, failed
// stores report nothing, and loads/fetches never fire the hook.
func TestOnStoreHook(t *testing.T) {
	type event struct{ addr, size uint32 }
	m := New(64)
	var got []event
	m.OnStore = func(addr, size uint32) { got = append(got, event{addr, size}) }

	m.StoreWord(8, 1)
	m.StoreHalf(12, 2)
	m.StoreByte(14, 3)
	m.WriteBytes(20, []byte{1, 2, 3})
	m.StoreWord(2, 0)  // misaligned: must not notify
	m.StoreWord(64, 0) // out of range: must not notify
	m.LoadWord(8)      // reads never notify
	m.FetchWord(8)
	m.Reset()

	want := []event{{8, 4}, {12, 2}, {14, 1}, {20, 3}, {0, 64}}
	if len(got) != len(want) {
		t.Fatalf("hook events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestNewInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}
