// Package mem provides the byte-addressable main memory shared by the
// RISC I simulator and the CISC baseline. RISC I is big-endian; memory
// enforces natural alignment for halfword and word accesses, as the chip
// did, and counts traffic so the paper's memory-traffic comparisons can
// be regenerated.
//
// Storage is paged: memory is a table of lazily allocated 4 KiB pages,
// with absent pages reading as zero. Pages carry an atomic reference
// count, which is what makes Snapshot, Restore and Fork O(touched
// pages): a snapshot shares the page table and bumps every page's count;
// a later write to a shared page copies it first (copy-on-write). Pages
// come from a process-wide sync.Pool, so the churn of forking a machine
// per request does not hammer the garbage collector. A page is mutable
// only while exactly one owner references it; shared pages are immutable
// until released, which is what makes concurrent forks race-free.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the granularity of copy-on-write sharing. Aligned word and
// halfword accesses never straddle a page because PageSize is a multiple
// of the largest access size.
const (
	PageSize  = 4096
	pageShift = 12
	pageMask  = PageSize - 1
)

// page is one 4 KiB block plus its owner count. refs is the number of
// Memory page tables and Snapshots that reference it; data may be
// written only while refs == 1.
type page struct {
	refs atomic.Int32
	data [PageSize]byte
}

// pagePool recycles pages process-wide. Pooled pages are dirty: they
// are cleaned (or fully overwritten) at acquisition, not at release, so
// that releasing a page — the hot path of Restore when it drops a
// forked run's private pages — is a pointer operation, not a memclr.
var pagePool = sync.Pool{New: func() any { return new(page) }}

// newZeroPage returns an all-zero page owned by one reference. An
// absent page table entry reads as zero, so a lazily materialized page
// must agree with it.
func newZeroPage() *page {
	p := pagePool.Get().(*page)
	p.data = [PageSize]byte{}
	p.refs.Store(1)
	return p
}

// newCopyPage returns a copy of src owned by one reference. The copy
// overwrites the whole page, so the pooled page needs no zeroing first.
func newCopyPage(src *page) *page {
	p := pagePool.Get().(*page)
	p.data = src.data
	p.refs.Store(1)
	return p
}

// release drops one reference, recycling the page when the last owner
// lets go.
func (p *page) release() {
	if p.refs.Add(-1) == 0 {
		pagePool.Put(p)
	}
}

// AccessError describes a faulting memory access. The simulators convert
// it into a halted machine state rather than panicking, since bad
// addresses are ordinary (buggy-program) input.
type AccessError struct {
	Addr  uint32
	Size  int
	Write bool
	Why   string
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: %s of %d bytes at %#08x: %s", kind, e.Size, e.Addr, e.Why)
}

// Stats counts data-memory traffic (instruction fetch is counted by the
// CPUs separately, since the paper separates the two streams).
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Accesses returns the total number of data-memory operations.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Memory is a paged, big-endian, byte-addressable store.
type Memory struct {
	pages []*page // nil entry = all-zero page
	size  int

	// Stats accumulates data traffic. Callers may reset it directly.
	Stats Stats

	// OnStore, when non-nil, is called after every successful mutation
	// with the affected byte range [addr, addr+size). The RISC CPU hooks
	// it to invalidate predecoded instructions when a store lands in
	// cached code, so self-modifying programs stay correct. Reset,
	// Restore and WriteBytes report their full ranges too. The hook
	// belongs to this Memory alone: Fork does not carry it over.
	OnStore func(addr, size uint32)
}

func (m *Memory) notify(addr, size uint32) {
	if m.OnStore != nil {
		m.OnStore(addr, size)
	}
}

// New allocates size bytes of zeroed memory.
func New(size int) *Memory {
	if size <= 0 {
		panic(fmt.Sprintf("mem: invalid size %d", size))
	}
	npages := (size + PageSize - 1) / PageSize
	return &Memory{pages: make([]*page, npages), size: size}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return m.size }

func (m *Memory) check(addr uint32, size int, write bool) error {
	if uint64(addr)+uint64(size) > uint64(m.size) {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "address out of range"}
	}
	if addr%uint32(size) != 0 {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "misaligned"}
	}
	return nil
}

// writable returns the page for table index pi with exclusive ownership,
// allocating an empty page or copying a shared one as needed.
//
// The copy-on-write handshake is safe under concurrent forks because a
// page is written only when refs == 1. Two forks both seeing refs == 2
// each copy and release; a fork seeing refs == 1 observes (through the
// same atomic) that every other owner has already released — and owners
// release only after they are done reading — so writing in place is
// race-free.
func (m *Memory) writable(pi uint32) *page {
	pg := m.pages[pi]
	if pg == nil {
		pg = newZeroPage()
		m.pages[pi] = pg
		return pg
	}
	if pg.refs.Load() > 1 {
		np := newCopyPage(pg)
		m.pages[pi] = np
		pg.release()
		return np
	}
	return pg
}

// LoadWord reads a 32-bit big-endian word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	m.Stats.Reads++
	m.Stats.BytesRead += 4
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		return 0, nil
	}
	return binary.BigEndian.Uint32(pg.data[addr&pageMask:]), nil
}

// StoreWord writes a 32-bit big-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if err := m.check(addr, 4, true); err != nil {
		return err
	}
	m.Stats.Writes++
	m.Stats.BytesWritten += 4
	pg := m.writable(addr >> pageShift)
	binary.BigEndian.PutUint32(pg.data[addr&pageMask:], v)
	m.notify(addr, 4)
	return nil
}

// LoadHalf reads a 16-bit halfword, zero-extended.
func (m *Memory) LoadHalf(addr uint32) (uint32, error) {
	if err := m.check(addr, 2, false); err != nil {
		return 0, err
	}
	m.Stats.Reads++
	m.Stats.BytesRead += 2
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		return 0, nil
	}
	return uint32(binary.BigEndian.Uint16(pg.data[addr&pageMask:])), nil
}

// StoreHalf writes the low 16 bits of v.
func (m *Memory) StoreHalf(addr uint32, v uint32) error {
	if err := m.check(addr, 2, true); err != nil {
		return err
	}
	m.Stats.Writes++
	m.Stats.BytesWritten += 2
	pg := m.writable(addr >> pageShift)
	binary.BigEndian.PutUint16(pg.data[addr&pageMask:], uint16(v))
	m.notify(addr, 2)
	return nil
}

// LoadByte reads one byte, zero-extended.
func (m *Memory) LoadByte(addr uint32) (uint32, error) {
	if err := m.check(addr, 1, false); err != nil {
		return 0, err
	}
	m.Stats.Reads++
	m.Stats.BytesRead++
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		return 0, nil
	}
	return uint32(pg.data[addr&pageMask]), nil
}

// StoreByte writes the low 8 bits of v.
func (m *Memory) StoreByte(addr uint32, v uint32) error {
	if err := m.check(addr, 1, true); err != nil {
		return err
	}
	m.Stats.Writes++
	m.Stats.BytesWritten++
	pg := m.writable(addr >> pageShift)
	pg.data[addr&pageMask] = byte(v)
	m.notify(addr, 1)
	return nil
}

// FetchWord reads a word without touching the data-traffic statistics;
// the CPUs use it for instruction fetch and count fetches themselves.
func (m *Memory) FetchWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		return 0, nil
	}
	return binary.BigEndian.Uint32(pg.data[addr&pageMask:]), nil
}

// FetchByte reads one byte without counting it as data traffic; the CISC
// simulator fetches its variable-length instructions bytewise.
func (m *Memory) FetchByte(addr uint32) (byte, error) {
	if err := m.check(addr, 1, false); err != nil {
		return 0, err
	}
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		return 0, nil
	}
	return pg.data[addr&pageMask], nil
}

// WriteBytes copies raw bytes into memory (program loading); it bypasses
// traffic statistics and alignment checks. The write may span pages.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	if uint64(addr)+uint64(len(b)) > uint64(m.size) {
		return &AccessError{Addr: addr, Size: len(b), Write: true, Why: "address out of range"}
	}
	if len(b) == 0 {
		return nil
	}
	for off := 0; off < len(b); {
		a := addr + uint32(off)
		pg := m.writable(a >> pageShift)
		n := copy(pg.data[a&pageMask:], b[off:])
		off += n
	}
	m.notify(addr, uint32(len(b)))
	return nil
}

// ReadBytes copies raw bytes out of memory (result inspection); it
// bypasses traffic statistics.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	if uint64(addr)+uint64(n) > uint64(m.size) {
		return nil, &AccessError{Addr: addr, Size: n, Write: false, Why: "address out of range"}
	}
	out := make([]byte, n)
	for off := 0; off < n; {
		a := addr + uint32(off)
		pg := m.pages[a>>pageShift]
		chunk := PageSize - int(a&pageMask)
		if rest := n - off; chunk > rest {
			chunk = rest
		}
		if pg != nil {
			copy(out[off:off+chunk], pg.data[a&pageMask:])
		}
		off += chunk
	}
	return out, nil
}

// Reset zeroes all of memory and the statistics by releasing every page.
// It fires OnStore for the full address range — the RISC CPU's
// predecoded icache depends on that to drop stale decodes when a machine
// is reset and reloaded with different code.
func (m *Memory) Reset() {
	for i, pg := range m.pages {
		if pg != nil {
			pg.release()
			m.pages[i] = nil
		}
	}
	m.Stats = Stats{}
	m.notify(0, uint32(m.size))
}

// TouchedPages reports how many pages are materialized — the unit of
// snapshot and fork cost.
func (m *Memory) TouchedPages() int {
	n := 0
	for _, pg := range m.pages {
		if pg != nil {
			n++
		}
	}
	return n
}

// Snapshot is an immutable point-in-time image of a Memory, sharing the
// underlying pages copy-on-write. A Snapshot may be restored into any
// Memory of the same size, any number of times, from any goroutine.
// Dropping a Snapshot without Release simply defers the pages to the
// garbage collector instead of the page pool.
type Snapshot struct {
	pages []*page
	size  int
	stats Stats
}

// Size returns the snapshotted memory's size in bytes.
func (s *Snapshot) Size() int { return s.size }

// Pages reports how many materialized pages the snapshot references.
func (s *Snapshot) Pages() int {
	n := 0
	for _, pg := range s.pages {
		if pg != nil {
			n++
		}
	}
	return n
}

// Snapshot captures the current contents and traffic statistics in
// O(touched pages): it copies the page table and bumps each page's
// reference count, making every shared page copy-on-write for both
// sides.
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{pages: make([]*page, len(m.pages)), size: m.size, stats: m.Stats}
	for i, pg := range m.pages {
		if pg != nil {
			pg.refs.Add(1)
			s.pages[i] = pg
		}
	}
	return s
}

// Restore rewinds the memory to the snapshot's contents and statistics
// in O(touched pages of either side). It fires OnStore once per run of
// changed pages — a page whose table entry is unchanged is shared with
// the snapshot (refs >= 2) and therefore immutable since the snapshot
// was taken, so its bytes cannot have diverged and no event is needed.
// This is what keeps a warm re-entry's predecoded code hot: restoring
// after a run that touched three pages invalidates three pages of
// decode, not the whole machine. It panics if the snapshot came from a
// memory of a different size (a programming error, not runtime input).
func (m *Memory) Restore(s *Snapshot) {
	if s.size != m.size {
		panic(fmt.Sprintf("mem: restore of a %d-byte snapshot into a %d-byte memory", s.size, m.size))
	}
	runStart := -1
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		base := uint32(runStart) * PageSize
		limit := uint32(end) * PageSize
		if limit > uint32(m.size) {
			limit = uint32(m.size)
		}
		m.notify(base, limit-base)
		runStart = -1
	}
	for i := range m.pages {
		old, next := m.pages[i], s.pages[i]
		if old == next {
			flush(i)
			continue
		}
		if next != nil {
			next.refs.Add(1)
		}
		if old != nil {
			old.release()
		}
		m.pages[i] = next
		if runStart < 0 {
			runStart = i
		}
	}
	flush(len(m.pages))
	m.Stats = s.stats
}

// Release returns the snapshot's page references to the pool. The
// snapshot must not be restored afterwards. Optional: an unreleased
// snapshot is reclaimed by the garbage collector, just not recycled.
func (s *Snapshot) Release() {
	for i, pg := range s.pages {
		if pg != nil {
			pg.release()
			s.pages[i] = nil
		}
	}
}

// Fork returns a new Memory sharing this one's current contents
// copy-on-write, in O(touched pages). Both memories may then be read
// and written freely, from different goroutines; a write to a shared
// page copies just that page. Statistics are inherited; the OnStore
// hook is not (the fork's observer is the forker's business).
func (m *Memory) Fork() *Memory {
	f := &Memory{pages: make([]*page, len(m.pages)), size: m.size, Stats: m.Stats}
	for i, pg := range m.pages {
		if pg != nil {
			pg.refs.Add(1)
			f.pages[i] = pg
		}
	}
	return f
}
