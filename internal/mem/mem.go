// Package mem provides the byte-addressable main memory shared by the
// RISC I simulator and the CISC baseline. RISC I is big-endian; memory
// enforces natural alignment for halfword and word accesses, as the chip
// did, and counts traffic so the paper's memory-traffic comparisons can
// be regenerated.
package mem

import (
	"encoding/binary"
	"fmt"
)

// AccessError describes a faulting memory access. The simulators convert
// it into a halted machine state rather than panicking, since bad
// addresses are ordinary (buggy-program) input.
type AccessError struct {
	Addr  uint32
	Size  int
	Write bool
	Why   string
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: %s of %d bytes at %#08x: %s", kind, e.Size, e.Addr, e.Why)
}

// Stats counts data-memory traffic (instruction fetch is counted by the
// CPUs separately, since the paper separates the two streams).
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Accesses returns the total number of data-memory operations.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Memory is a flat, big-endian, byte-addressable store.
type Memory struct {
	data []byte

	// Stats accumulates data traffic. Callers may reset it directly.
	Stats Stats

	// OnStore, when non-nil, is called after every successful mutation
	// with the affected byte range [addr, addr+size). The RISC CPU hooks
	// it to invalidate predecoded instructions when a store lands in
	// cached code, so self-modifying programs stay correct. Reset and
	// WriteBytes report their full ranges too.
	OnStore func(addr, size uint32)
}

func (m *Memory) notify(addr, size uint32) {
	if m.OnStore != nil {
		m.OnStore(addr, size)
	}
}

// New allocates size bytes of zeroed memory.
func New(size int) *Memory {
	if size <= 0 {
		panic(fmt.Sprintf("mem: invalid size %d", size))
	}
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

func (m *Memory) check(addr uint32, size int, write bool) error {
	if uint64(addr)+uint64(size) > uint64(len(m.data)) {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "address out of range"}
	}
	if addr%uint32(size) != 0 {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "misaligned"}
	}
	return nil
}

// LoadWord reads a 32-bit big-endian word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	m.Stats.Reads++
	m.Stats.BytesRead += 4
	return binary.BigEndian.Uint32(m.data[addr:]), nil
}

// StoreWord writes a 32-bit big-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if err := m.check(addr, 4, true); err != nil {
		return err
	}
	m.Stats.Writes++
	m.Stats.BytesWritten += 4
	binary.BigEndian.PutUint32(m.data[addr:], v)
	m.notify(addr, 4)
	return nil
}

// LoadHalf reads a 16-bit halfword, zero-extended.
func (m *Memory) LoadHalf(addr uint32) (uint32, error) {
	if err := m.check(addr, 2, false); err != nil {
		return 0, err
	}
	m.Stats.Reads++
	m.Stats.BytesRead += 2
	return uint32(binary.BigEndian.Uint16(m.data[addr:])), nil
}

// StoreHalf writes the low 16 bits of v.
func (m *Memory) StoreHalf(addr uint32, v uint32) error {
	if err := m.check(addr, 2, true); err != nil {
		return err
	}
	m.Stats.Writes++
	m.Stats.BytesWritten += 2
	binary.BigEndian.PutUint16(m.data[addr:], uint16(v))
	m.notify(addr, 2)
	return nil
}

// LoadByte reads one byte, zero-extended.
func (m *Memory) LoadByte(addr uint32) (uint32, error) {
	if err := m.check(addr, 1, false); err != nil {
		return 0, err
	}
	m.Stats.Reads++
	m.Stats.BytesRead++
	return uint32(m.data[addr]), nil
}

// StoreByte writes the low 8 bits of v.
func (m *Memory) StoreByte(addr uint32, v uint32) error {
	if err := m.check(addr, 1, true); err != nil {
		return err
	}
	m.Stats.Writes++
	m.Stats.BytesWritten++
	m.data[addr] = byte(v)
	m.notify(addr, 1)
	return nil
}

// FetchWord reads a word without touching the data-traffic statistics;
// the CPUs use it for instruction fetch and count fetches themselves.
func (m *Memory) FetchWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(m.data[addr:]), nil
}

// FetchByte reads one byte without counting it as data traffic; the CISC
// simulator fetches its variable-length instructions bytewise.
func (m *Memory) FetchByte(addr uint32) (byte, error) {
	if err := m.check(addr, 1, false); err != nil {
		return 0, err
	}
	return m.data[addr], nil
}

// WriteBytes copies raw bytes into memory (program loading); it bypasses
// traffic statistics and alignment checks.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	if uint64(addr)+uint64(len(b)) > uint64(len(m.data)) {
		return &AccessError{Addr: addr, Size: len(b), Write: true, Why: "address out of range"}
	}
	copy(m.data[addr:], b)
	m.notify(addr, uint32(len(b)))
	return nil
}

// ReadBytes copies raw bytes out of memory (result inspection); it
// bypasses traffic statistics.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	if uint64(addr)+uint64(n) > uint64(len(m.data)) {
		return nil, &AccessError{Addr: addr, Size: n, Write: false, Why: "address out of range"}
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// Reset zeroes all of memory and the statistics.
func (m *Memory) Reset() {
	for i := range m.data {
		m.data[i] = 0
	}
	m.Stats = Stats{}
	m.notify(0, uint32(len(m.data)))
}
