package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := New(64 * 1024)
	for i := uint32(0); i < 32; i++ {
		if err := m.StoreWord(i*4, 0xA000_0000+i); err != nil {
			t.Fatal(err)
		}
	}
	m.Stats = Stats{Reads: 3, Writes: 5, BytesRead: 12, BytesWritten: 20}
	snap := m.Snapshot()

	// Diverge: overwrite snapshotted words, touch a fresh page, reset stats.
	for i := uint32(0); i < 32; i++ {
		if err := m.StoreWord(i*4, 0xDEAD_BEEF); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.StoreWord(40*1024, 123); err != nil {
		t.Fatal(err)
	}
	m.Stats = Stats{}

	m.Restore(snap)
	for i := uint32(0); i < 32; i++ {
		v, err := m.LoadWord(i * 4)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0xA000_0000+i {
			t.Fatalf("word %d after restore = %#x, want %#x", i, v, 0xA000_0000+i)
		}
	}
	if v, _ := m.LoadWord(40 * 1024); v != 0 {
		t.Errorf("page touched after snapshot survived restore: %#x", v)
	}
	// Stats restored to the snapshot point, before the loads above.
	want := Stats{Reads: 3, Writes: 5, BytesRead: 12, BytesWritten: 20}
	got := want
	got.Reads += 33 // the verification loads above
	got.BytesRead += 33 * 4
	if m.Stats != got {
		t.Errorf("stats after restore+verify = %+v, want %+v", m.Stats, got)
	}
	snap.Release()
}

func TestSnapshotIsImmutable(t *testing.T) {
	m := New(8 * 1024)
	if err := m.StoreWord(0, 0x11112222); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	defer snap.Release()

	// Writes after the snapshot must copy, not mutate the shared page.
	if err := m.StoreWord(0, 0x33334444); err != nil {
		t.Fatal(err)
	}
	m.Restore(snap)
	if v, _ := m.LoadWord(0); v != 0x11112222 {
		t.Errorf("snapshot mutated through the live memory: %#x", v)
	}
	// And restoring again after another divergence still works: a snapshot
	// may be restored any number of times.
	if err := m.StoreByte(1, 0xFF); err != nil {
		t.Fatal(err)
	}
	m.Restore(snap)
	if v, _ := m.LoadWord(0); v != 0x11112222 {
		t.Errorf("second restore diverged: %#x", v)
	}
}

func TestRestoreFiresOnStoreOverChangedPages(t *testing.T) {
	m := New(16 * 1024) // 4 pages
	snap := m.Snapshot()
	defer snap.Release()
	var calls []string
	m.OnStore = func(addr, size uint32) { calls = append(calls, fmt.Sprintf("%d+%d", addr, size)) }

	// Nothing diverged yet: a restore must not invalidate anything —
	// this is what keeps warm re-entries from dropping hot decode state.
	m.Restore(snap)
	if len(calls) != 0 {
		t.Errorf("no-op restore fired OnStore: %v", calls)
	}

	// Diverge pages 0 and 2 (page 1 untouched): two separate runs.
	if err := m.StoreWord(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(2*PageSize, 2); err != nil {
		t.Fatal(err)
	}
	calls = nil
	m.Restore(snap)
	want := []string{fmt.Sprintf("0+%d", PageSize), fmt.Sprintf("%d+%d", 2*PageSize, PageSize)}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Errorf("restore OnStore calls = %v, want %v", calls, want)
	}

	// Adjacent changed pages coalesce into one run.
	if err := m.StoreWord(PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(2*PageSize, 2); err != nil {
		t.Fatal(err)
	}
	calls = nil
	m.Restore(snap)
	want = []string{fmt.Sprintf("%d+%d", PageSize, 2*PageSize)}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Errorf("restore OnStore calls = %v, want %v", calls, want)
	}
}

func TestRestoreSizeMismatchPanics(t *testing.T) {
	snap := New(4 * 1024).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("restore of a mismatched snapshot did not panic")
		}
	}()
	New(8 * 1024).Restore(snap)
}

func TestForkIndependence(t *testing.T) {
	m := New(32 * 1024)
	if err := m.StoreWord(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(PageSize, 2); err != nil {
		t.Fatal(err)
	}
	f := m.Fork()

	// Writes on either side must not show through on the other.
	if err := m.StoreWord(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := f.StoreWord(PageSize, 200); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadWord(PageSize); v != 2 {
		t.Errorf("fork's write leaked into parent: %d", v)
	}
	if v, _ := f.LoadWord(0); v != 1 {
		t.Errorf("parent's write leaked into fork: %d", v)
	}
	// Untouched shared data reads the same on both sides.
	if v, _ := f.LoadWord(PageSize); v != 200 {
		t.Errorf("fork lost its own write: %d", v)
	}
}

func TestForkInheritsStatsNotHook(t *testing.T) {
	m := New(8 * 1024)
	fired := false
	m.OnStore = func(addr, size uint32) { fired = true }
	if err := m.StoreWord(0, 7); err != nil {
		t.Fatal(err)
	}
	f := m.Fork()
	if f.Stats != m.Stats {
		t.Errorf("fork stats %+v != parent %+v", f.Stats, m.Stats)
	}
	fired = false
	if err := f.StoreWord(4, 8); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("fork write fired the parent's OnStore hook")
	}
}

func TestSnapshotCostIsTouchedPages(t *testing.T) {
	m := New(1 << 20) // 256 pages
	if err := m.StoreWord(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(512*1024, 2); err != nil {
		t.Fatal(err)
	}
	if got := m.TouchedPages(); got != 2 {
		t.Fatalf("touched pages = %d, want 2", got)
	}
	snap := m.Snapshot()
	defer snap.Release()
	if got := snap.Pages(); got != 2 {
		t.Errorf("snapshot pages = %d, want 2", got)
	}
}

func TestConcurrentForkWrites(t *testing.T) {
	m := New(64 * 1024)
	for a := uint32(0); a < 64*1024; a += 4 {
		if err := m.StoreWord(a, a); err != nil {
			t.Fatal(err)
		}
	}
	base, err := m.ReadBytes(0, 64*1024)
	if err != nil {
		t.Fatal(err)
	}

	// Many goroutines fork the same parent and scribble over every page;
	// under -race this pins the copy-on-write handshake, and afterwards
	// the parent must be untouched.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := m.Fork()
			for a := uint32(0); a < 64*1024; a += 4 {
				if err := f.StoreWord(a, uint32(g)<<24|a); err != nil {
					t.Error(err)
					return
				}
			}
			for a := uint32(0); a < 64*1024; a += 4 {
				v, err := f.LoadWord(a)
				if err != nil || v != uint32(g)<<24|a {
					t.Errorf("fork %d read %#x at %#x, want %#x (err %v)", g, v, a, uint32(g)<<24|a, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	after, err := m.ReadBytes(0, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, after) {
		t.Fatal("parent memory changed under concurrent fork writes")
	}
}

// flatMemory is the pre-paging reference implementation: one contiguous
// byte slice. The fuzz test drives it in lockstep with the paged Memory
// to prove the page table, copy-on-write and snapshot machinery are
// invisible to clients.
type flatMemory struct {
	data  []byte
	snap  []byte
	write func(addr, size uint32)
}

func newFlat(size int) *flatMemory { return &flatMemory{data: make([]byte, size)} }

func (f *flatMemory) notify(addr, size uint32) {
	if f.write != nil {
		f.write(addr, size)
	}
}

func (f *flatMemory) storeWord(addr uint32, v uint32) {
	binary.BigEndian.PutUint32(f.data[addr:], v)
	f.notify(addr, 4)
}

func (f *flatMemory) storeByte(addr uint32, v byte) {
	f.data[addr] = v
	f.notify(addr, 1)
}

func (f *flatMemory) snapshot() { f.snap = append([]byte(nil), f.data...) }

// restore does not notify: the paged Restore fires per changed page run,
// which the fuzz harness checks by coverage instead of stream equality.
func (f *flatMemory) restore() { copy(f.data, f.snap) }

func (f *flatMemory) reset() {
	for i := range f.data {
		f.data[i] = 0
	}
	f.notify(0, uint32(len(f.data)))
}

// FuzzSnapshotVsFlat interprets the fuzz input as a little program of
// memory operations and runs it against both the paged Memory and the
// flat reference, comparing every read result, the full contents, and
// the OnStore event streams. Ops: store word / store byte / snapshot /
// restore / fork-and-swap / reset.
func FuzzSnapshotVsFlat(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2, 0, 10, 2, 3, 4, 0, 0, 42})
	f.Add([]byte{2, 0, 0, 0, 99, 3, 5, 0, 0, 7})
	f.Add([]byte{1, 255, 255, 4, 0, 16, 0, 3, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const size = 4 * PageSize
		m := New(size)
		ref := newFlat(size)
		var mEvents, refEvents []string
		m.OnStore = func(addr, size uint32) { mEvents = append(mEvents, fmt.Sprintf("%d+%d", addr, size)) }
		ref.write = func(addr, size uint32) { refEvents = append(refEvents, fmt.Sprintf("%d+%d", addr, size)) }
		var snap *Snapshot

		for i := 0; i < len(ops); {
			op := ops[i]
			i++
			arg := func() uint32 {
				if i < len(ops) {
					v := uint32(ops[i])
					i++
					return v
				}
				return 0
			}
			switch op % 6 {
			case 0: // aligned word store
				addr := (arg()<<8 | arg()) % size &^ 3
				v := arg()<<8 | arg()
				if err := m.StoreWord(addr, v); err != nil {
					t.Fatal(err)
				}
				ref.storeWord(addr, v)
			case 1: // byte store
				addr := (arg()<<8 | arg()) % size
				v := arg()
				if err := m.StoreByte(addr, v); err != nil {
					t.Fatal(err)
				}
				ref.storeByte(addr, byte(v))
			case 2: // snapshot (replacing any previous one)
				if snap != nil {
					snap.Release()
				}
				snap = m.Snapshot()
				ref.snapshot()
			case 3: // restore, if a snapshot exists
				if snap != nil {
					// Restore events are page-granular and may over-approximate
					// (a copied-on-write page can hold unchanged bytes), so the
					// check is coverage: every byte the restore changed must lie
					// inside some fired event, or the icache would go stale.
					pre := append([]byte(nil), ref.data...)
					var ranges [][2]uint32
					saved := m.OnStore
					m.OnStore = func(addr, sz uint32) { ranges = append(ranges, [2]uint32{addr, addr + sz}) }
					m.Restore(snap)
					m.OnStore = saved
					ref.restore()
					covered := make([]bool, size)
					for _, r := range ranges {
						for a := r[0]; a < r[1] && a < size; a++ {
							covered[a] = true
						}
					}
					for a := 0; a < size; a++ {
						if pre[a] != ref.data[a] && !covered[a] {
							t.Fatalf("restore changed byte %#x without an OnStore event covering it", a)
						}
					}
				}
			case 4: // fork and continue in the child (parent dropped)
				m = m.Fork()
				m.OnStore = func(addr, size uint32) { mEvents = append(mEvents, fmt.Sprintf("%d+%d", addr, size)) }
				// The flat reference is value-equal already; a fork does not
				// change contents or fire events.
			case 5: // reset
				m.Reset()
				ref.reset()
			}
		}

		got, err := m.ReadBytes(0, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref.data) {
			t.Fatal("paged memory contents diverged from flat reference")
		}
		for a := uint32(0); a < size; a += 4 {
			v, err := m.LoadWord(a)
			if err != nil {
				t.Fatal(err)
			}
			if want := binary.BigEndian.Uint32(ref.data[a:]); v != want {
				t.Fatalf("ReadWord(%#x) = %#x, flat reference %#x", a, v, want)
			}
		}
		if len(mEvents) != len(refEvents) {
			t.Fatalf("OnStore streams diverged: paged %d events, flat %d", len(mEvents), len(refEvents))
		}
		for i := range mEvents {
			if mEvents[i] != refEvents[i] {
				t.Fatalf("OnStore event %d: paged %s, flat %s", i, mEvents[i], refEvents[i])
			}
		}
	})
}
