// Package core is the high-level entry point to the RISC I system: one
// call assembles (or compiles MiniC) and executes a program on a
// configured machine, returning a handle for inspecting results and the
// statistics the paper's evaluation is built from. The lower-level
// packages (isa, asm, cpu, cc, ...) remain available for fine-grained
// control; core just wires the common path.
package core

import (
	"fmt"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cpu"
)

// Options configures a machine and its tool chain.
type Options struct {
	// CPU selects the machine organization (windows, memory size, ...).
	CPU cpu.Config
	// Optimize runs the assembler's delayed-jump optimizer.
	Optimize bool
	// Opt is the MiniC compiler's optimization level (-O0 / -O1).
	// Ignored for hand-written assembly.
	Opt int
}

// Machine is an executed RISC I program and the processor it ran on.
type Machine struct {
	CPU     *cpu.CPU
	Program *asm.Program
	// Assembly holds the generated text when the program came from
	// MiniC; empty for hand-written assembly.
	Assembly string
}

// RunAsm assembles RISC I assembly source and runs it to completion.
func RunAsm(src string, opts Options) (*Machine, error) {
	prog, err := asm.Assemble(src, asm.Options{Optimize: opts.Optimize})
	if err != nil {
		return nil, err
	}
	return execute(prog, "", opts)
}

// RunC compiles MiniC source and runs it to completion.
func RunC(src string, opts Options) (*Machine, error) {
	prog, text, _, err := cc.CompileRISC(src, cc.Options{Opt: opts.Opt, DelaySlots: opts.Optimize})
	if err != nil {
		return nil, err
	}
	return execute(prog, text, opts)
}

func execute(prog *asm.Program, text string, opts Options) (*Machine, error) {
	c := cpu.New(opts.CPU)
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		return nil, err
	}
	m := &Machine{CPU: c, Program: prog, Assembly: text}
	if err := c.Run(); err != nil {
		return m, err
	}
	return m, nil
}

// Global reads a word-sized global variable by symbol name.
func (m *Machine) Global(name string) (int32, error) {
	addr, ok := m.Program.Symbol(name)
	if !ok {
		return 0, fmt.Errorf("core: no symbol %q", name)
	}
	v, err := m.CPU.Mem.LoadWord(addr)
	return int32(v), err
}

// Result reads the conventional "result" global that MiniC benchmark
// programs store their checksum in.
func (m *Machine) Result() (int32, error) { return m.Global("result") }

// Cycles returns the executed cycle count.
func (m *Machine) Cycles() uint64 { return m.CPU.Trace.Cycles }

// Instructions returns the executed instruction count.
func (m *Machine) Instructions() uint64 { return m.CPU.Trace.Instructions }

// Micros returns simulated wall time at the paper's 400 ns cycle.
func (m *Machine) Micros() float64 { return m.CPU.Micros() }
