package core

import (
	"strings"
	"testing"

	"risc1/internal/cpu"
)

func TestRunAsm(t *testing.T) {
	m, err := RunAsm(`
main:	add r1, r0, 21
	add r1, r1, r1
	stl r1, r0, out
	ret
	nop
	.align 4
out:	.word 0
	`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m.Global("out"); err != nil || v != 42 {
		t.Fatalf("out = %d, %v", v, err)
	}
	if m.Instructions() == 0 || m.Cycles() < m.Instructions() || m.Micros() <= 0 {
		t.Errorf("counters look wrong: %d instr, %d cycles", m.Instructions(), m.Cycles())
	}
}

func TestRunC(t *testing.T) {
	m, err := RunC(`
int result;
int twice(int n) { return n + n; }
int main() { result = twice(21); return 0; }
	`, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m.Result(); err != nil || v != 42 {
		t.Fatalf("result = %d, %v", v, err)
	}
	if !strings.Contains(m.Assembly, "twice:") {
		t.Error("generated assembly should be exposed")
	}
	if m.CPU.Regs.Stats.Calls == 0 {
		t.Error("window statistics should be populated")
	}
}

func TestRunCConfig(t *testing.T) {
	src := `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(14); return 0; }
	`
	wide, err := RunC(src, Options{CPU: cpu.Config{Windows: 16}, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := RunC(src, Options{CPU: cpu.Config{Windows: 2}, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := wide.Result()
	b, _ := narrow.Result()
	if a != b || a != 377 {
		t.Fatalf("results diverge: %d vs %d", a, b)
	}
	if narrow.Cycles() <= wide.Cycles() {
		t.Error("two windows should cost more cycles than sixteen")
	}
}

func TestErrors(t *testing.T) {
	if _, err := RunAsm("bogus\n", Options{}); err == nil {
		t.Error("bad assembly should fail")
	}
	if _, err := RunC("int main() { return undefined; }", Options{}); err == nil {
		t.Error("bad MiniC should fail")
	}
	m, err := RunAsm("main:\tret\n\tnop\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Global("nothing"); err == nil {
		t.Error("unknown symbol should fail")
	}
}
