package core_test

import (
	"fmt"
	"log"

	"risc1/internal/core"
)

// ExampleRunC compiles a MiniC program and runs it on the RISC I
// simulator in one call.
func ExampleRunC() {
	m, err := core.RunC(`
int result;
int square(int n) { return n * n; }
int main() { result = square(12); return 0; }
`, core.Options{Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	v, _ := m.Result()
	fmt.Println(v)
	// Output: 144
}

// ExampleRunAsm assembles and runs RISC I assembly directly.
func ExampleRunAsm() {
	m, err := core.RunAsm(`
main:	add r1, r0, 40
	add r1, r1, 2
	stl r1, r0, answer
	ret
	nop
	.align 4
answer:	.word 0
`, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	v, _ := m.Global("answer")
	fmt.Println(v)
	// Output: 42
}
