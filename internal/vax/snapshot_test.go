package vax

import (
	"testing"

	"risc1/internal/mem"
)

const vaxSnapSrc = `
start:	movl $0, r1
	movl $1, r2
loop:	addl2 r2, r1
	mull3 $5, r1, r3
	movl r3, out
	incl r2
	cmpl r2, $30
	bleq loop
	halt
	.align 4
out:	.word 0
`

// vaxLoad assembles src into a fresh machine, ready to run.
func vaxLoad(t *testing.T, src string) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	return c
}

// vaxOutcome captures the observables the tests compare.
type vaxOutcome struct {
	r1, r3 uint32
	stats  Stats
	mem    mem.Stats
	instrs uint64
}

func vaxFinish(t *testing.T, c *CPU) vaxOutcome {
	t.Helper()
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return vaxOutcome{r1: c.R[1], r3: c.R[3], stats: c.Stats, mem: c.Mem.Stats, instrs: c.Trace.Instructions}
}

// TestVaxSnapshotRestoreDeterministic: snapshot mid-run, finish, restore,
// finish again — identical observables both times.
func TestVaxSnapshotRestoreDeterministic(t *testing.T) {
	c := vaxLoad(t, vaxSnapSrc)
	if done, err := c.RunSteps(20); done || err != nil {
		t.Fatalf("mid-run stop: done=%v err=%v", done, err)
	}
	snap := c.Snapshot()
	defer snap.Release()
	if snap.Instructions() != 20 {
		t.Errorf("snapshot instruction count = %d, want 20", snap.Instructions())
	}

	a := vaxFinish(t, c)
	c.Restore(snap)
	b := vaxFinish(t, c)
	if a != b {
		t.Errorf("restored run diverged:\n%+v\n%+v", a, b)
	}
}

// TestVaxForkRunsIndependently: a mid-run fork finishes with the same
// observables as the parent, and writes do not leak across the fork.
func TestVaxForkRunsIndependently(t *testing.T) {
	c := vaxLoad(t, vaxSnapSrc)
	if _, err := c.RunSteps(20); err != nil {
		t.Fatal(err)
	}
	f := c.Fork()

	if err := c.Mem.StoreWord(8192, 0xF00D); err != nil {
		t.Fatal(err)
	}
	c.Mem.Stats.Writes--
	c.Mem.Stats.BytesWritten -= 4
	a := vaxFinish(t, c)

	if v, _ := f.Mem.LoadWord(8192); v != 0 {
		t.Fatalf("parent's write leaked into fork: %#x", v)
	}
	f.Mem.Stats.Reads--
	f.Mem.Stats.BytesRead -= 4
	b := vaxFinish(t, f)

	if a != b {
		t.Errorf("fork diverged from parent:\n%+v\n%+v", a, b)
	}
}

// TestVaxRestoreIncompatiblePanics: different memory sizes are different
// machines.
func TestVaxRestoreIncompatiblePanics(t *testing.T) {
	a := New(Config{MemSize: 1 << 16})
	snap := a.Snapshot()
	defer snap.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("restore across memory sizes did not panic")
		}
	}()
	New(Config{MemSize: 1 << 17}).Restore(snap)
}

// TestVaxRestoreIgnoresFuel: the instruction budget is per-run state.
func TestVaxRestoreIgnoresFuel(t *testing.T) {
	a := vaxLoad(t, vaxSnapSrc)
	snap := a.Snapshot()
	defer snap.Release()
	b := New(Config{MaxInstructions: 5})
	b.Restore(snap) // must not panic
	if done, err := b.RunSteps(3); done || err != nil {
		t.Fatalf("restored machine did not run: done=%v err=%v", done, err)
	}
}
