package vax

import (
	"fmt"
	"strings"
)

// Disassemble decodes one instruction from code starting at offset off;
// addr is the memory address of code[0], used to print absolute branch
// targets. It returns the assembly text and the instruction's byte
// length.
func Disassemble(code []byte, off int, addr uint32) (string, int, error) {
	if off >= len(code) {
		return "", 0, fmt.Errorf("vax: disassemble past end of code")
	}
	op := Op(code[off])
	info, ok := Lookup(op)
	if !ok {
		return fmt.Sprintf(".byte %#02x", code[off]), 1, nil
	}
	pos := off + 1
	var operands []string
	for _, arg := range info.Args {
		text, n, err := disasmOperand(code, pos, addr+uint32(pos-off), arg)
		if err != nil {
			return "", 0, err
		}
		// Branch displacements need the final instruction length, which
		// for the branch formats is fixed: opcode + displacement.
		operands = append(operands, text)
		pos += n
	}
	// Fix up branch targets now that the total length is known.
	for i, arg := range info.Args {
		if arg.Kind == ArgBr8 || arg.Kind == ArgBr16 {
			d, _ := parseNumberText(operands[i])
			target := addr + uint32(pos) + uint32(d)
			operands[i] = fmt.Sprintf("%#x", target)
		}
	}
	text := info.Name
	if len(operands) > 0 {
		text += " " + strings.Join(operands, ", ")
	}
	return text, pos - off, nil
}

func parseNumberText(s string) (int32, error) {
	var v int32
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err
}

func regText(r uint8) string {
	switch r {
	case RegAP:
		return "ap"
	case RegFP:
		return "fp"
	case RegSP:
		return "sp"
	}
	return fmt.Sprintf("r%d", r)
}

func disasmOperand(code []byte, pos int, _ uint32, arg Arg) (string, int, error) {
	take := func(n int) (uint32, error) {
		if pos+n > len(code) {
			return 0, fmt.Errorf("vax: truncated operand")
		}
		var v uint32
		for i := 0; i < n; i++ {
			v = v<<8 | uint32(code[pos+i])
		}
		return v, nil
	}
	switch arg.Kind {
	case ArgBr8:
		v, err := take(1)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%d", int8(v)), 1, nil
	case ArgBr16:
		v, err := take(2)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%d", int16(v)), 2, nil
	}
	if pos >= len(code) {
		return "", 0, fmt.Errorf("vax: truncated specifier")
	}
	spec := code[pos]
	mode := Mode(spec >> 4)
	reg := spec & 0x0f
	pos++
	switch mode {
	case ModeReg:
		return regText(reg), 1, nil
	case ModeDeferred:
		return "(" + regText(reg) + ")", 1, nil
	case ModeAutoInc:
		return "(" + regText(reg) + ")+", 1, nil
	case ModeAutoDec:
		return "-(" + regText(reg) + ")", 1, nil
	case ModeDisp8:
		v, err := take(1)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%d(%s)", int8(v), regText(reg)), 2, nil
	case ModeDisp16:
		v, err := take(2)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%d(%s)", int16(v), regText(reg)), 3, nil
	case ModeDisp32:
		v, err := take(4)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%d(%s)", int32(v), regText(reg)), 5, nil
	case ModeImmAbs:
		if reg == immSub {
			v, err := take(int(arg.Size))
			if err != nil {
				return "", 0, err
			}
			return fmt.Sprintf("$%d", int32(signExtendToSize(v, arg.Size))), 1 + int(arg.Size), nil
		}
		v, err := take(4)
		if err != nil {
			return "", 0, err
		}
		return fmt.Sprintf("%#x", v), 5, nil
	}
	return "", 0, fmt.Errorf("vax: bad mode %d in specifier %#02x", mode, spec)
}

// Listing disassembles a whole program segment into address-annotated
// lines, stopping cleanly at data it cannot decode.
func Listing(p *Program) string {
	var b strings.Builder
	for _, seg := range p.Segments {
		fmt.Fprintf(&b, "segment at %#08x, %d bytes\n", seg.Addr, len(seg.Data))
		off := 0
		for off < len(seg.Data) {
			text, n, err := Disassemble(seg.Data, off, seg.Addr)
			if err != nil || n == 0 {
				fmt.Fprintf(&b, "  %08x: .byte %#02x\n", seg.Addr+uint32(off), seg.Data[off])
				off++
				continue
			}
			raw := seg.Data[off : off+n]
			fmt.Fprintf(&b, "  %08x: %-22x %s\n", seg.Addr+uint32(off), raw, text)
			off += n
		}
	}
	return b.String()
}
