package vax

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/trace"
)

// ErrInstructionLimit is wrapped by the error Run returns when a program
// exhausts its instruction budget — the same sentinel contract as
// cpu.ErrInstructionLimit, so batch execution treats both machines
// uniformly. Check with errors.Is.
var ErrInstructionLimit = errors.New("instruction limit exceeded")

// runQuantum matches cpu.runQuantum: instructions between context
// checks in RunContext.
const runQuantum = 8192

// Config selects the baseline machine's parameters.
type Config struct {
	// MemSize is main memory in bytes; zero means 1 MiB.
	MemSize int
	// StackTop is the initial SP; zero places it at the top of memory.
	StackTop uint32
	// MaxInstructions aborts runaway programs; zero means 2^32.
	MaxInstructions uint64
}

func (c Config) withDefaults() Config {
	if c.MemSize == 0 {
		c.MemSize = 1 << 20
	}
	if c.StackTop == 0 {
		c.StackTop = uint32(c.MemSize)
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 1 << 32
	}
	return c
}

// Stats holds CISC-specific dynamic counters.
type Stats struct {
	BranchesTaken   uint64
	BranchesUntaken uint64
	Calls           uint64
	Returns         uint64
	CallCycles      uint64 // cycles spent inside CALLS/RET microcode
	CallMemWords    uint64 // longwords of call-frame stack traffic
	InstBytes       uint64 // instruction-stream bytes fetched
}

// CPU is the baseline CISC processor.
type CPU struct {
	cfg Config

	Mem   *mem.Memory
	R     [NumRegs]uint32
	Trace *trace.Collector
	Stats Stats

	// Obs, when non-nil, receives structured execution events
	// (instructions, CALLS/RET, faults) for tracing and profiling, the
	// same layer the RISC CPU drives. nil keeps the hot loop
	// observation-free; attaching it never changes simulated state.
	Obs *obs.Observer

	pc         uint32
	n, z, v, c bool
	depth      int
	halted     bool
	haltErr    error

	// obsPending stages a call/return performed by the current
	// instruction until observe can report it in order (instruction
	// first, then the transfer). Only touched when Obs is attached.
	obsPending uint8
	obsTarget  uint32

	opHandles [numOps]int // trace handles indexed by opcode
}

const (
	obsPendingNone uint8 = iota
	obsPendingCall
	obsPendingRet
)

// New builds a CPU with zeroed memory and registers.
func New(cfg Config) *CPU {
	cfg = cfg.withDefaults()
	c := &CPU{cfg: cfg, Mem: mem.New(cfg.MemSize), Trace: trace.New()}
	for _, info := range Instructions() {
		c.opHandles[info.Op] = c.Trace.Handle(info.Name, info.Class)
	}
	c.resetState(0)
	return c
}

// Config returns the effective configuration.
func (c *CPU) Config() Config { return c.cfg }

// PC returns the address of the next instruction.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether the machine stopped, and the fault if any.
func (c *CPU) Halted() (bool, error) { return c.halted, c.haltErr }

func (c *CPU) resetState(entry uint32) {
	c.pc = entry
	c.R = [NumRegs]uint32{}
	c.R[RegSP] = c.cfg.StackTop
	c.R[RegFP] = c.cfg.StackTop
	c.R[RegAP] = c.cfg.StackTop
	c.n, c.z, c.v, c.c = false, false, false, false
	c.depth = 0
	c.halted = false
	c.haltErr = nil
	c.Stats = Stats{}
}

// Reset clears memory and registers and sets the entry point.
func (c *CPU) Reset(entry uint32) {
	c.Mem.Reset()
	c.Trace.Reset()
	c.resetState(entry)
}

// SetEntry rewinds execution without clearing memory.
func (c *CPU) SetEntry(entry uint32) {
	c.Trace.Reset()
	c.resetState(entry)
}

// Run executes until HALT, a fault, or the instruction limit.
func (c *CPU) Run() error {
	return c.RunContext(context.Background())
}

// RunContext executes like Run but stops between instruction quanta
// when ctx is cancelled or its deadline passes, returning the context's
// error. The machine stops on an instruction boundary and can resume.
// A context that is already done returns before the first quantum —
// zero instructions execute.
func (c *CPU) RunContext(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		halted, err := c.RunSteps(runQuantum)
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
	}
}

// RunSteps executes at most n instructions, reporting whether the
// machine halted, with the fault (or wrapped ErrInstructionLimit) as
// the error. halted false with a nil error means the budget n ran out.
func (c *CPU) RunSteps(n uint64) (bool, error) {
	for i := uint64(0); i < n && !c.halted; i++ {
		if c.Trace.Instructions >= c.cfg.MaxInstructions {
			return false, fmt.Errorf("vax: %w: limit %d at pc %#08x", ErrInstructionLimit, c.cfg.MaxInstructions, c.pc)
		}
		c.Step()
	}
	return c.halted, c.haltErr
}

// SetMaxInstructions replaces the instruction budget ("fuel") without
// rebuilding the machine. Zero restores the default of 2^32.
func (c *CPU) SetMaxInstructions(n uint64) {
	if n == 0 {
		n = 1 << 32
	}
	c.cfg.MaxInstructions = n
}

func (c *CPU) fault(err error) {
	c.halted = true
	c.haltErr = err
	if o := c.Obs; o != nil && o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Kind: obs.KindFault, PC: c.pc, Cycle: c.Trace.Cycles, Text: err.Error()})
	}
}

// observe feeds the observer one completed instruction plus any call or
// return it performed. It runs before ExecHandle, so c.Trace.Cycles is
// still the cycle count at which the instruction began. calls and ret
// stage their transfer in obsPending* rather than reporting directly so
// the profiler charges the microcode cycles to the call site before the
// new activation opens.
func (c *CPU) observe(pcStart uint32, name string, cost uint64) {
	o := c.Obs
	if o.Prof != nil {
		o.Prof.Sample(pcStart, cost)
	}
	if o.Tracer != nil {
		text := name
		if raw, err := c.Mem.ReadBytes(pcStart, disasmWindow(c.Mem.Size(), pcStart)); err == nil {
			if t, _, derr := Disassemble(raw, 0, pcStart); derr == nil {
				text = t
			}
		}
		o.Tracer.Emit(obs.Event{
			Kind: obs.KindInstr, PC: pcStart, Cycle: c.Trace.Cycles,
			Cost: cost, Op: name, Text: text,
		})
	}
	switch c.obsPending {
	case obsPendingCall:
		if o.Prof != nil {
			o.Prof.EnterCall(c.obsTarget)
		}
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.KindCall, PC: pcStart, Cycle: c.Trace.Cycles, Target: c.obsTarget, Depth: c.depth})
		}
	case obsPendingRet:
		if o.Prof != nil {
			o.Prof.LeaveCall()
		}
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.KindReturn, PC: pcStart, Cycle: c.Trace.Cycles, Target: c.obsTarget, Depth: c.depth})
		}
	}
	c.obsPending = obsPendingNone
}

// disasmWindow bounds a read of one variable-length instruction: the
// longest encodable form fits in 16 bytes.
func disasmWindow(memSize int, pc uint32) int {
	n := 16
	if rest := memSize - int(pc); rest < n {
		n = rest
	}
	return n
}

// fetchByte reads one instruction-stream byte and advances PC.
func (c *CPU) fetchByte() (byte, bool) {
	b, err := c.Mem.FetchByte(c.pc)
	if err != nil {
		c.fault(fmt.Errorf("vax: fetch at %#08x: %w", c.pc, err))
		return 0, false
	}
	c.pc++
	c.Stats.InstBytes++
	return b, true
}

func (c *CPU) fetchN(n int) (uint32, bool) {
	var v uint32
	for i := 0; i < n; i++ {
		b, ok := c.fetchByte()
		if !ok {
			return 0, false
		}
		v = v<<8 | uint32(b)
	}
	return v, true
}

// location identifies where an operand lives.
type location struct {
	isReg bool
	reg   uint8
	addr  uint32
}

// operand is a decoded operand: its value (for reads), its location (for
// writes), and the cycle cost of evaluating its specifier.
type operand struct {
	val    uint32
	loc    location
	hasLoc bool
}

// decodeOperand evaluates one operand specifier, accumulating cycles.
func (c *CPU) decodeOperand(arg Arg, cycles *uint64) (operand, bool) {
	*cycles += costSpecifier
	spec, ok := c.fetchByte()
	if !ok {
		return operand{}, false
	}
	mode := Mode(spec >> 4)
	reg := spec & 0x0f

	var addr uint32
	switch mode {
	case ModeReg:
		o := operand{loc: location{isReg: true, reg: reg}, hasLoc: true}
		if arg.Kind == ArgRead || arg.Kind == ArgMod {
			o.val = c.readReg(reg, arg.Size)
		}
		if arg.Kind == ArgAddr {
			c.fault(fmt.Errorf("vax: at %#08x: address of a register", c.pc))
			return operand{}, false
		}
		return o, true
	case ModeDeferred:
		addr = c.R[reg]
	case ModeAutoInc:
		addr = c.R[reg]
		c.R[reg] += uint32(arg.Size)
	case ModeAutoDec:
		c.R[reg] -= uint32(arg.Size)
		addr = c.R[reg]
	case ModeDisp8, ModeDisp16, ModeDisp32:
		n := 1
		switch mode {
		case ModeDisp16:
			n = 2
		case ModeDisp32:
			n = 4
		}
		raw, ok := c.fetchN(n)
		if !ok {
			return operand{}, false
		}
		*cycles += costDispFetch
		disp := signExtend(raw, uint(8*n))
		addr = c.R[reg] + uint32(disp)
	case ModeImmAbs:
		if reg == immSub {
			raw, ok := c.fetchN(int(arg.Size))
			if !ok {
				return operand{}, false
			}
			*cycles += costDispFetch
			if arg.Kind == ArgWrite || arg.Kind == ArgMod || arg.Kind == ArgAddr {
				c.fault(fmt.Errorf("vax: at %#08x: immediate used as destination", c.pc))
				return operand{}, false
			}
			return operand{val: signExtendToSize(raw, arg.Size)}, true
		}
		raw, ok := c.fetchN(4)
		if !ok {
			return operand{}, false
		}
		*cycles += costDispFetch
		addr = raw
	default:
		c.fault(fmt.Errorf("vax: at %#08x: bad operand mode %d", c.pc, mode))
		return operand{}, false
	}

	o := operand{loc: location{addr: addr}, hasLoc: true}
	if arg.Kind == ArgAddr {
		return o, true // effective address only; no memory access
	}
	if arg.Kind == ArgRead || arg.Kind == ArgMod {
		*cycles += costMemOperand
		v, err := c.loadSized(addr, arg.Size)
		if err != nil {
			c.fault(fmt.Errorf("vax: at %#08x: %w", c.pc, err))
			return operand{}, false
		}
		o.val = v
	}
	return o, true
}

func signExtend(v uint32, bitCount uint) int32 {
	sh := 32 - bitCount
	return int32(v<<sh) >> sh
}

func signExtendToSize(v uint32, s Size) uint32 {
	switch s {
	case SizeB:
		return uint32(int32(v<<24) >> 24)
	case SizeW:
		return uint32(int32(v<<16) >> 16)
	}
	return v
}

func (c *CPU) readReg(r uint8, s Size) uint32 {
	v := c.R[r]
	switch s {
	case SizeB:
		return v & 0xff
	case SizeW:
		return v & 0xffff
	}
	return v
}

func (c *CPU) loadSized(addr uint32, s Size) (uint32, error) {
	switch s {
	case SizeB:
		return c.Mem.LoadByte(addr)
	case SizeW:
		return c.Mem.LoadHalf(addr)
	}
	return c.Mem.LoadWord(addr)
}

// write stores a result to a decoded location, charging memory cost.
func (c *CPU) write(loc location, s Size, v uint32, cycles *uint64) bool {
	if loc.isReg {
		switch s {
		case SizeB:
			c.R[loc.reg] = c.R[loc.reg]&^0xff | v&0xff
		case SizeW:
			c.R[loc.reg] = c.R[loc.reg]&^0xffff | v&0xffff
		default:
			c.R[loc.reg] = v
		}
		return true
	}
	*cycles += costMemOperand
	var err error
	switch s {
	case SizeB:
		err = c.Mem.StoreByte(loc.addr, v)
	case SizeW:
		err = c.Mem.StoreHalf(loc.addr, v)
	default:
		err = c.Mem.StoreWord(loc.addr, v)
	}
	if err != nil {
		c.fault(fmt.Errorf("vax: at %#08x: %w", c.pc, err))
		return false
	}
	return true
}

// setNZ sets N and Z from a result and clears V (the MOV-class rule; C is
// left alone, as on the VAX).
func (c *CPU) setNZ(v uint32) {
	c.n = int32(v) < 0
	c.z = v == 0
	c.v = false
}

func (c *CPU) push(v uint32, cycles *uint64) bool {
	c.R[RegSP] -= 4
	*cycles += costStackWord
	if err := c.Mem.StoreWord(c.R[RegSP], v); err != nil {
		c.fault(fmt.Errorf("vax: push: %w", err))
		return false
	}
	return true
}

func (c *CPU) pop(cycles *uint64) (uint32, bool) {
	v, err := c.Mem.LoadWord(c.R[RegSP])
	if err != nil {
		c.fault(fmt.Errorf("vax: pop: %w", err))
		return 0, false
	}
	c.R[RegSP] += 4
	*cycles += costStackWord
	return v, true
}

// Step executes one instruction.
func (c *CPU) Step() {
	if c.halted {
		return
	}
	pcStart := c.pc
	opb, ok := c.fetchByte()
	if !ok {
		return
	}
	op := Op(opb)
	info, valid := Lookup(op)
	if !valid {
		c.fault(fmt.Errorf("vax: at %#08x: illegal opcode %#02x", c.pc-1, opb))
		return
	}

	cycles := uint64(costDispatch)
	var opsBuf [3]operand
	nops := 0
	var brDisp int32
	for _, arg := range info.Args {
		if arg.Kind == ArgBr8 || arg.Kind == ArgBr16 {
			n := 1
			if arg.Kind == ArgBr16 {
				n = 2
			}
			raw, ok := c.fetchN(n)
			if !ok {
				return
			}
			brDisp = signExtend(raw, uint(8*n))
			continue
		}
		o, ok := c.decodeOperand(arg, &cycles)
		if !ok {
			return
		}
		opsBuf[nops] = o
		nops++
	}

	if !c.exec(op, info, opsBuf[:nops], brDisp, &cycles) {
		return
	}
	if c.Obs != nil {
		c.observe(pcStart, info.Name, cycles)
	}
	c.Trace.ExecHandle(c.opHandles[op], cycles)
}

func (c *CPU) exec(op Op, info Info, ops []operand, brDisp int32, cycles *uint64) bool {
	switch op {
	case HALT:
		c.halted = true
	case NOP:

	case MOVB, MOVW, MOVL:
		v := ops[0].val
		if !c.write(ops[1].loc, info.Args[1].Size, v, cycles) {
			return false
		}
		c.setNZ(signExtendToSize(v, info.Args[1].Size))
	case MOVAL:
		if !c.write(ops[1].loc, SizeL, ops[0].loc.addr, cycles) {
			return false
		}
		c.setNZ(ops[0].loc.addr)
	case MOVZBL:
		v := ops[0].val & 0xff
		if !c.write(ops[1].loc, SizeL, v, cycles) {
			return false
		}
		c.setNZ(v)
	case MOVZWL:
		v := ops[0].val & 0xffff
		if !c.write(ops[1].loc, SizeL, v, cycles) {
			return false
		}
		c.setNZ(v)
	case CVTBL:
		v := uint32(int32(ops[0].val<<24) >> 24)
		if !c.write(ops[1].loc, SizeL, v, cycles) {
			return false
		}
		c.setNZ(v)
	case CVTWL:
		v := uint32(int32(ops[0].val<<16) >> 16)
		if !c.write(ops[1].loc, SizeL, v, cycles) {
			return false
		}
		c.setNZ(v)
	case CLRL:
		if !c.write(ops[0].loc, SizeL, 0, cycles) {
			return false
		}
		c.setNZ(0)
	case MNEGL:
		v := -ops[0].val
		if !c.write(ops[1].loc, SizeL, v, cycles) {
			return false
		}
		c.setNZ(v)
	case MCOML:
		v := ^ops[0].val
		if !c.write(ops[1].loc, SizeL, v, cycles) {
			return false
		}
		c.setNZ(v)
	case PUSHL:
		if !c.push(ops[0].val, cycles) {
			return false
		}
		c.setNZ(ops[0].val)

	case INCL, DECL:
		v := ops[0].val + 1
		if op == DECL {
			v = ops[0].val - 1
		}
		if !c.write(ops[0].loc, SizeL, v, cycles) {
			return false
		}
		c.setArith(ops[0].val, 1, v, op == DECL)
	case ADDL2, ADDL3:
		return c.arith3(ops, cycles, func(a, b uint32) uint32 { return b + a }, false)
	case SUBL2, SUBL3:
		return c.arith3(ops, cycles, func(a, b uint32) uint32 { return b - a }, true)
	case MULL2, MULL3:
		*cycles += costMul
		return c.logic3(ops, cycles, func(a, b uint32) uint32 { return b * a })
	case DIVL2, DIVL3:
		*cycles += costDiv
		if ops[0].val == 0 {
			c.fault(fmt.Errorf("vax: at %#08x: divide by zero", c.pc))
			return false
		}
		return c.logic3(ops, cycles, func(a, b uint32) uint32 {
			return uint32(int32(b) / int32(a))
		})
	case BISL2, BISL3:
		return c.logic3(ops, cycles, func(a, b uint32) uint32 { return b | a })
	case BICL2, BICL3:
		return c.logic3(ops, cycles, func(a, b uint32) uint32 { return b &^ a })
	case XORL2, XORL3:
		return c.logic3(ops, cycles, func(a, b uint32) uint32 { return b ^ a })
	case ANDL3:
		return c.logic3(ops, cycles, func(a, b uint32) uint32 { return b & a })
	case ASHL:
		cnt := int32(signExtendToSize(ops[0].val, SizeB))
		src := ops[1].val
		var v uint32
		switch {
		case cnt >= 32 || cnt <= -32:
			v = 0
			if cnt < 0 && int32(src) < 0 {
				v = ^uint32(0)
			}
		case cnt >= 0:
			v = src << uint(cnt)
		default:
			v = uint32(int32(src) >> uint(-cnt))
		}
		if !c.write(ops[2].loc, SizeL, v, cycles) {
			return false
		}
		c.setNZ(v)

	case CMPL:
		a, b := ops[0].val, ops[1].val
		c.n = int32(a) < int32(b)
		c.z = a == b
		c.v = false
		c.c = a < b
	case CMPB:
		a := signExtendToSize(ops[0].val, SizeB)
		b := signExtendToSize(ops[1].val, SizeB)
		c.n = int32(a) < int32(b)
		c.z = a == b
		c.v = false
		c.c = a&0xff < b&0xff
	case TSTL:
		c.setNZ(ops[0].val)
		c.c = false

	case BRB, BRW:
		*cycles += costBranchTaken
		c.pc += uint32(brDisp)
	case JMP:
		*cycles += costBranchTaken
		c.pc = ops[0].loc.addr
	case BEQL, BNEQ, BLSS, BLEQ, BGTR, BGEQ, BLSSU, BLEQU, BGTRU, BGEQU:
		if c.evalCond(info.Cond) {
			*cycles += costBranchTaken
			c.Stats.BranchesTaken++
			c.pc += uint32(brDisp)
		} else {
			c.Stats.BranchesUntaken++
		}

	case CALLS:
		return c.calls(ops, cycles)
	case RET:
		return c.ret(cycles)

	default:
		c.fault(fmt.Errorf("vax: unimplemented opcode %v", info.Name))
		return false
	}
	return true
}

// arith3 handles the 2- and 3-operand add/sub forms and full flags.
func (c *CPU) arith3(ops []operand, cycles *uint64, f func(a, b uint32) uint32, isSub bool) bool {
	a, b := ops[0].val, ops[1].val
	res := f(a, b)
	dst := len(ops) - 1
	if !c.write(ops[dst].loc, SizeL, res, cycles) {
		return false
	}
	c.setArith(b, a, res, isSub)
	return true
}

func (c *CPU) setArith(b, a, res uint32, isSub bool) {
	c.n = int32(res) < 0
	c.z = res == 0
	if isSub {
		c.c = b < a // borrow
		c.v = (b^a)&(b^res)&0x80000000 != 0
	} else {
		c.c = res < a
		c.v = (a^res)&(b^res)&0x80000000 != 0
	}
}

// logic3 handles 2- and 3-operand forms that set only N and Z.
func (c *CPU) logic3(ops []operand, cycles *uint64, f func(a, b uint32) uint32) bool {
	res := f(ops[0].val, ops[1].val)
	dst := len(ops) - 1
	if !c.write(ops[dst].loc, SizeL, res, cycles) {
		return false
	}
	c.setNZ(res)
	return true
}

func (c *CPU) evalCond(cond BranchCond) bool {
	switch cond {
	case condEQL:
		return c.z
	case condNEQ:
		return !c.z
	case condLSS:
		return c.n
	case condLEQ:
		return c.n || c.z
	case condGTR:
		return !c.n && !c.z
	case condGEQ:
		return !c.n
	case condLSSU:
		return c.c
	case condLEQU:
		return c.c || c.z
	case condGTRU:
		return !c.c && !c.z
	case condGEQU:
		return !c.c
	}
	return false
}

// calls implements the microcoded procedure call: it reads the entry mask
// at the target, pushes the argument count, return state and masked
// registers, and repoints AP/FP — the expensive call the paper contrasts
// with RISC I's one-cycle window advance.
func (c *CPU) calls(ops []operand, cycles *uint64) bool {
	*cycles += costCallsBase
	start := *cycles
	n := ops[0].val
	dst := ops[1].loc.addr
	mask, err := c.Mem.LoadHalf(dst)
	if err != nil {
		c.fault(fmt.Errorf("vax: calls: reading entry mask: %w", err))
		return false
	}
	if !c.push(n, cycles) {
		return false
	}
	newAP := c.R[RegSP]
	if !c.push(c.pc, cycles) { // return address
		return false
	}
	if !c.push(c.R[RegFP], cycles) {
		return false
	}
	if !c.push(c.R[RegAP], cycles) {
		return false
	}
	for i := uint8(0); i < 12; i++ {
		if mask&(1<<i) != 0 {
			if !c.push(c.R[i], cycles) {
				return false
			}
		}
	}
	if !c.push(mask, cycles) {
		return false
	}
	c.R[RegAP] = newAP
	c.R[RegFP] = c.R[RegSP]
	c.pc = dst + 2
	c.depth++
	c.Trace.Depth(c.depth)
	if c.Obs != nil {
		c.obsPending = obsPendingCall
		c.obsTarget = dst
	}
	c.Stats.Calls++
	c.Stats.CallCycles += *cycles - start + costCallsBase
	c.Stats.CallMemWords += 5 + uint64(bits.OnesCount16(uint16(mask)))
	return true
}

// ret unwinds the CALLS frame.
func (c *CPU) ret(cycles *uint64) bool {
	*cycles += costRetBase
	start := *cycles
	c.R[RegSP] = c.R[RegFP]
	mask, ok := c.pop(cycles)
	if !ok {
		return false
	}
	for i := 11; i >= 0; i-- {
		if mask&(1<<uint(i)) != 0 {
			v, ok := c.pop(cycles)
			if !ok {
				return false
			}
			c.R[i] = v
		}
	}
	ap, ok := c.pop(cycles)
	if !ok {
		return false
	}
	fp, ok := c.pop(cycles)
	if !ok {
		return false
	}
	ra, ok := c.pop(cycles)
	if !ok {
		return false
	}
	n, ok := c.pop(cycles)
	if !ok {
		return false
	}
	c.R[RegAP] = ap
	c.R[RegFP] = fp
	c.R[RegSP] += 4 * n
	c.pc = ra
	c.depth--
	if c.Obs != nil {
		c.obsPending = obsPendingRet
		c.obsTarget = ra
	}
	c.Stats.Returns++
	c.Stats.CallCycles += *cycles - start + costRetBase
	c.Stats.CallMemWords += 5 + uint64(bits.OnesCount16(uint16(mask)))
	return true
}

// Micros converts cycles to microseconds at the baseline's 200 ns cycle.
func (c *CPU) Micros() float64 {
	return float64(c.Trace.Cycles) * CycleNS / 1000
}
