package vax

// Microcoded cycle-cost model, calibrated to 1980-class minicomputer
// behaviour (VAX-11/780: ~200 ns cycle, average ~10 cycles per
// instruction on compiled code). All evaluation comparisons report both
// raw cycles and time, so the model's constants are visible, auditable
// inputs to the reproduced tables rather than hidden assumptions.
const (
	// CycleNS is the baseline's cycle time in nanoseconds (the 780's
	// 200 ns, versus RISC I's estimated 400 ns — the paper's comparison
	// deliberately gives the CISC machine the faster clock).
	CycleNS = 200

	// costDispatch is the microcode decode/dispatch overhead paid by
	// every instruction.
	costDispatch = 2

	// costSpecifier is paid per operand specifier evaluated.
	costSpecifier = 1

	// costDispFetch is paid per displacement or immediate constant
	// fetched from the instruction stream.
	costDispFetch = 1

	// costMemOperand is the memory round trip paid for each memory
	// operand read or written (and twice for modify operands).
	costMemOperand = 2

	// costBranchTaken is the extra pipeline/PC update cost of a taken
	// branch.
	costBranchTaken = 2

	// costMul and costDiv model the iterative multiply/divide microcode.
	costMul = 18
	costDiv = 30

	// costCallsBase and costRetBase are the fixed microcode overhead of
	// CALLS/RET on top of the per-word stack traffic; costStackWord is
	// paid per longword pushed or popped while building or unwinding
	// the frame. Together they put one call/return pair in the 70-90
	// cycle range (14-18 µs) that published VAX-11/780 procedure-call
	// measurements report — the number the RISC I paper's register
	// windows are aimed at.
	costCallsBase = 14
	costRetBase   = 12
	costStackWord = 3
)
