// Package vax implements the CISC baseline the RISC I paper measures
// against: a VAX-780-class machine with variable-length instructions
// (one opcode byte plus general operand specifiers), eight addressing
// modes, condition codes, and the microcoded CALLS/RET procedure call
// that builds a stack frame and saves registers by mask — the paper's
// example of procedure call as the most expensive HLL operation.
//
// The package provides its own assembler and cycle-level simulator. The
// cycle-cost model (see costs.go) is calibrated to published 1980-class
// minicomputer characteristics: a couple of cycles of microcode dispatch
// per instruction, a cycle per operand specifier, and memory operands
// paying the memory round trip.
package vax

import "fmt"

// Op is a one-byte CISC opcode.
type Op uint8

// The baseline instruction set. Mnemonics follow VAX conventions:
// B/W/L suffixes select byte/word/long data size, and the 2/3 suffix on
// dyadic arithmetic selects two-operand (destructive) or three-operand
// form.
const (
	opInvalid Op = iota

	HALT
	NOP

	MOVB
	MOVW
	MOVL
	MOVAL  // move address (effective address of first operand)
	MOVZBL // move zero-extended byte to long
	MOVZWL // move zero-extended word to long
	CVTBL  // convert (sign-extend) byte to long
	CVTWL  // convert (sign-extend) word to long
	CLRL
	MNEGL // move negated
	MCOML // move complemented
	PUSHL

	INCL
	DECL
	ADDL2
	ADDL3
	SUBL2
	SUBL3
	MULL2
	MULL3
	DIVL2
	DIVL3
	BISL2 // bit set (or)
	BISL3
	BICL2 // bit clear (and-not)
	BICL3
	XORL2
	XORL3
	ANDL3 // departure from strict VAX (which composes MCOML+BICL3)
	ASHL  // arithmetic shift: count, src, dst; negative count shifts right

	CMPL
	CMPB
	TSTL

	BRB // unconditional, byte displacement
	BRW // unconditional, word displacement
	JMP // unconditional, general operand
	BEQL
	BNEQ
	BLSS
	BLEQ
	BGTR
	BGEQ
	BLSSU
	BLEQU
	BGTRU
	BGEQU

	CALLS // call with argument count and entry-mask register save
	RET

	numOps
)

// NumInstructions is the baseline's opcode count, reported in the
// machine-characteristics table (the real VAX-11/780 had 304).
const NumInstructions = int(numOps) - 1

// Size is an operand data size in bytes.
type Size uint8

const (
	SizeB Size = 1
	SizeW Size = 2
	SizeL Size = 4
)

// ArgKind says how an instruction uses one operand.
type ArgKind uint8

const (
	ArgRead  ArgKind = iota // operand value is read
	ArgWrite                // operand location is written
	ArgMod                  // read-modify-write
	ArgAddr                 // effective address is taken (MOVAL, JMP, CALLS)
	ArgBr8                  // 8-bit pc-relative displacement
	ArgBr16                 // 16-bit pc-relative displacement
)

// Arg describes one operand slot.
type Arg struct {
	Kind ArgKind
	Size Size
}

func rd(s Size) Arg { return Arg{ArgRead, s} }
func wr(s Size) Arg { return Arg{ArgWrite, s} }
func md(s Size) Arg { return Arg{ArgMod, s} }
func addr() Arg     { return Arg{ArgAddr, SizeL} }
func br8() Arg      { return Arg{ArgBr8, SizeB} }
func br16() Arg     { return Arg{ArgBr16, SizeW} }

// Info is per-opcode metadata.
type Info struct {
	Op   Op
	Name string
	Args []Arg
	// Cond is the branch condition for conditional branches.
	Cond BranchCond
	// Class buckets the opcode for instruction-mix reporting.
	Class string
}

// BranchCond enumerates the conditional-branch predicates.
type BranchCond uint8

const (
	condNone BranchCond = iota
	condEQL
	condNEQ
	condLSS
	condLEQ
	condGTR
	condGEQ
	condLSSU
	condLEQU
	condGTRU
	condGEQU
)

var infos = [numOps]Info{
	HALT: {Name: "halt", Class: "control"},
	NOP:  {Name: "nop", Class: "misc"},

	MOVB:   {Name: "movb", Args: []Arg{rd(SizeB), wr(SizeB)}, Class: "move"},
	MOVW:   {Name: "movw", Args: []Arg{rd(SizeW), wr(SizeW)}, Class: "move"},
	MOVL:   {Name: "movl", Args: []Arg{rd(SizeL), wr(SizeL)}, Class: "move"},
	MOVAL:  {Name: "moval", Args: []Arg{addr(), wr(SizeL)}, Class: "move"},
	MOVZBL: {Name: "movzbl", Args: []Arg{rd(SizeB), wr(SizeL)}, Class: "move"},
	MOVZWL: {Name: "movzwl", Args: []Arg{rd(SizeW), wr(SizeL)}, Class: "move"},
	CVTBL:  {Name: "cvtbl", Args: []Arg{rd(SizeB), wr(SizeL)}, Class: "move"},
	CVTWL:  {Name: "cvtwl", Args: []Arg{rd(SizeW), wr(SizeL)}, Class: "move"},
	CLRL:   {Name: "clrl", Args: []Arg{wr(SizeL)}, Class: "move"},
	MNEGL:  {Name: "mnegl", Args: []Arg{rd(SizeL), wr(SizeL)}, Class: "alu"},
	MCOML:  {Name: "mcoml", Args: []Arg{rd(SizeL), wr(SizeL)}, Class: "alu"},
	PUSHL:  {Name: "pushl", Args: []Arg{rd(SizeL)}, Class: "move"},

	INCL:  {Name: "incl", Args: []Arg{md(SizeL)}, Class: "alu"},
	DECL:  {Name: "decl", Args: []Arg{md(SizeL)}, Class: "alu"},
	ADDL2: {Name: "addl2", Args: []Arg{rd(SizeL), md(SizeL)}, Class: "alu"},
	ADDL3: {Name: "addl3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	SUBL2: {Name: "subl2", Args: []Arg{rd(SizeL), md(SizeL)}, Class: "alu"},
	SUBL3: {Name: "subl3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	MULL2: {Name: "mull2", Args: []Arg{rd(SizeL), md(SizeL)}, Class: "alu"},
	MULL3: {Name: "mull3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	DIVL2: {Name: "divl2", Args: []Arg{rd(SizeL), md(SizeL)}, Class: "alu"},
	DIVL3: {Name: "divl3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	BISL2: {Name: "bisl2", Args: []Arg{rd(SizeL), md(SizeL)}, Class: "alu"},
	BISL3: {Name: "bisl3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	BICL2: {Name: "bicl2", Args: []Arg{rd(SizeL), md(SizeL)}, Class: "alu"},
	BICL3: {Name: "bicl3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	XORL2: {Name: "xorl2", Args: []Arg{rd(SizeL), md(SizeL)}, Class: "alu"},
	XORL3: {Name: "xorl3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	ANDL3: {Name: "andl3", Args: []Arg{rd(SizeL), rd(SizeL), wr(SizeL)}, Class: "alu"},
	ASHL:  {Name: "ashl", Args: []Arg{rd(SizeB), rd(SizeL), wr(SizeL)}, Class: "alu"},

	CMPL: {Name: "cmpl", Args: []Arg{rd(SizeL), rd(SizeL)}, Class: "alu"},
	CMPB: {Name: "cmpb", Args: []Arg{rd(SizeB), rd(SizeB)}, Class: "alu"},
	TSTL: {Name: "tstl", Args: []Arg{rd(SizeL)}, Class: "alu"},

	BRB: {Name: "brb", Args: []Arg{br8()}, Class: "control"},
	BRW: {Name: "brw", Args: []Arg{br16()}, Class: "control"},
	JMP: {Name: "jmp", Args: []Arg{addr()}, Class: "control"},

	BEQL:  {Name: "beql", Args: []Arg{br16()}, Cond: condEQL, Class: "control"},
	BNEQ:  {Name: "bneq", Args: []Arg{br16()}, Cond: condNEQ, Class: "control"},
	BLSS:  {Name: "blss", Args: []Arg{br16()}, Cond: condLSS, Class: "control"},
	BLEQ:  {Name: "bleq", Args: []Arg{br16()}, Cond: condLEQ, Class: "control"},
	BGTR:  {Name: "bgtr", Args: []Arg{br16()}, Cond: condGTR, Class: "control"},
	BGEQ:  {Name: "bgeq", Args: []Arg{br16()}, Cond: condGEQ, Class: "control"},
	BLSSU: {Name: "blssu", Args: []Arg{br16()}, Cond: condLSSU, Class: "control"},
	BLEQU: {Name: "blequ", Args: []Arg{br16()}, Cond: condLEQU, Class: "control"},
	BGTRU: {Name: "bgtru", Args: []Arg{br16()}, Cond: condGTRU, Class: "control"},
	BGEQU: {Name: "bgequ", Args: []Arg{br16()}, Cond: condGEQU, Class: "control"},

	CALLS: {Name: "calls", Args: []Arg{rd(SizeL), addr()}, Class: "call"},
	RET:   {Name: "ret", Class: "call"},
}

func init() {
	for op := opInvalid + 1; op < numOps; op++ {
		infos[op].Op = op
		if infos[op].Name == "" {
			panic(fmt.Sprintf("vax: opcode %d missing metadata", op))
		}
	}
}

// Lookup returns metadata for op.
func Lookup(op Op) (Info, bool) {
	if op <= opInvalid || op >= numOps {
		return Info{}, false
	}
	return infos[op], true
}

// ByName maps a mnemonic to its opcode.
func ByName(name string) (Op, bool) {
	op, ok := byName[name]
	return op, ok
}

var byName = func() map[string]Op {
	m := make(map[string]Op, NumInstructions)
	for op := opInvalid + 1; op < numOps; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// Instructions returns all opcode metadata in declaration order.
func Instructions() []Info {
	out := make([]Info, 0, NumInstructions)
	for op := opInvalid + 1; op < numOps; op++ {
		out = append(out, infos[op])
	}
	return out
}

// Register numbers. The stack and frame conventions mirror the VAX:
// AP is the argument pointer, FP the frame pointer, SP the stack pointer.
const (
	NumRegs = 16
	RegAP   = 12
	RegFP   = 13
	RegSP   = 14
	// R15 is reserved (the VAX used it as PC); the assembler rejects it.
)

// NumAddressingModes is the count of operand addressing modes the
// baseline implements, for the machine-characteristics table.
const NumAddressingModes = 8

// Mode is the high nibble of an operand specifier byte.
type Mode uint8

const (
	ModeReg      Mode = iota // Rn
	ModeDeferred             // (Rn)
	ModeAutoInc              // (Rn)+
	ModeAutoDec              // -(Rn)
	ModeDisp8                // D(Rn), signed byte displacement
	ModeDisp16               // D(Rn), signed word displacement
	ModeDisp32               // D(Rn), long displacement
	ModeImmAbs               // reg 0: immediate literal; reg 1: absolute address
)

// Specifier sub-codes for ModeImmAbs.
const (
	immSub = 0
	absSub = 1
)
