package vax

import (
	"context"
	"errors"
	"testing"
)

// vaxSpin is an infinite guest loop for the cancellation and fuel tests.
const vaxSpin = `
start:	brb start
	halt
`

func assembleVax(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestRunContextCancellation mirrors the RISC-side test: an already
// cancelled context returns before any instruction executes; a mid-run
// cancellation stops on a quantum boundary with the machine resumable.
func TestRunContextCancellation(t *testing.T) {
	prog := assembleVax(t, vaxSpin)
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext = %v, want context.Canceled", err)
	}
	if c.Trace.Instructions != 0 {
		t.Errorf("pre-cancelled context executed %d instructions, want 0", c.Trace.Instructions)
	}
	if _, err := c.RunSteps(runQuantum); err != nil {
		t.Fatal(err)
	}
	before := c.Trace.Instructions
	if err := c.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("resumed RunContext = %v, want context.Canceled", err)
	}
	if c.Trace.Instructions != before {
		t.Errorf("cancelled resume executed %d more instructions, want 0",
			c.Trace.Instructions-before)
	}
	if halted, err := c.RunSteps(10); err != nil || halted {
		t.Errorf("machine not resumable after cancellation: %v, %v", halted, err)
	}
}

// TestInstructionLimitSentinel pins fuel exhaustion as a wrapped
// ErrInstructionLimit, and SetMaxInstructions as the re-arm the pool's
// simulator cache uses between jobs.
func TestInstructionLimitSentinel(t *testing.T) {
	prog := assembleVax(t, vaxSpin)
	c := New(Config{MaxInstructions: 100})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("Run = %v, want wrapped ErrInstructionLimit", err)
	}
	c.SetMaxInstructions(1000)
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("second run = %v, want fuel exhaustion", err)
	}
	if c.Trace.Instructions != 1000 {
		t.Errorf("second run executed %d instructions, want the re-armed 1000", c.Trace.Instructions)
	}
}

// TestSimulatorsDoNotAliasMemory is the CISC half of the package-state
// audit: two machines constructed independently share no memory,
// registers, or counters.
func TestSimulatorsDoNotAliasMemory(t *testing.T) {
	prog := assembleVax(t, `
start:	movl $1234, r1
	movl r1, buf
	halt
	.align 4
buf:	.word 0
	`)
	a := New(Config{})
	b := New(Config{})
	a.Reset(prog.Entry)
	prog.LoadInto(a.Mem)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if a.R[1] != 1234 {
		t.Fatalf("scribbler did not run: r1 = %d", a.R[1])
	}
	if b.R[1] != 0 {
		t.Errorf("second CPU sees the first CPU's register write: r1 = %d", b.R[1])
	}
	if b.Trace.Instructions != 0 {
		t.Errorf("second CPU counted the first CPU's instructions: %d", b.Trace.Instructions)
	}
	// The whole untouched memory image must still be zero where the
	// first machine's program and data landed.
	for addr := prog.Entry; addr < prog.Entry+64; addr += 4 {
		if v, err := b.Mem.LoadWord(addr); err != nil || v != 0 {
			t.Errorf("second CPU memory at %#x = %#x (%v), want 0", addr, v, err)
			break
		}
	}
}
