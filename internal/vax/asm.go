package vax

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"risc1/internal/mem"
	"risc1/internal/syntax"
)

// Segment is a contiguous block of assembled bytes.
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is the output of the baseline assembler.
type Program struct {
	Segments []Segment
	Symbols  map[string]uint32
	Entry    uint32 // "start" if defined, else "main", else first instruction
	TextSize int    // bytes of instructions + entry masks (static code size)
	DataSize int
}

// LoadInto copies all segments into memory.
func (p *Program) LoadInto(m *mem.Memory) error {
	for _, s := range p.Segments {
		if err := m.WriteBytes(s.Addr, s.Data); err != nil {
			return fmt.Errorf("vax: loading segment at %#08x: %w", s.Addr, err)
		}
	}
	return nil
}

// Symbol looks up a label or .equ value.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// SortedSymbols returns symbol names in address order.
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

func errf(line int, format string, args ...any) error {
	return syntax.Errorf(line, "vax: "+format, args...)
}

// Assemble translates baseline CISC assembly into a loadable program.
//
// Operand syntax (VAX flavour): "$e" immediate, "rN"/"ap"/"fp"/"sp"
// register, "(rN)" deferred, "(rN)+" autoincrement, "-(rN)" autodecrement,
// "e(rN)" displacement, bare "e" absolute. Branches take a label.
// Procedure bodies start with ".entry [regs...]" giving the register-save
// mask for CALLS. Data directives match the RISC assembler's.
func Assemble(src string) (*Program, error) {
	p := &vparser{syms: make(map[string]uint32)}
	for lineNo, line := range strings.Split(src, "\n") {
		if err := p.parseLine(line, lineNo+1); err != nil {
			return nil, err
		}
	}
	if err := p.layout(); err != nil {
		return nil, err
	}
	return p.emit()
}

// MustAssemble panics on error; for known-good embedded sources.
func MustAssemble(src string) *Program {
	prog, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type vkind uint8

const (
	vInst vkind = iota
	vEntry
	vWord
	vHalf
	vByte
	vAscii
	vSpace
	vAlign
	vOrg
)

// operandSrc is a parsed operand before encoding.
type operandSrc struct {
	mode     Mode
	reg      uint8
	disp     syntax.Expr // displacement / immediate / absolute / branch target
	dispSize Size        // for displacement modes, chosen at parse time
}

type vitem struct {
	kind     vkind
	line     int
	labels   []string
	op       Op
	operands []operandSrc
	mask     uint16 // .entry register-save mask
	exprs    []syntax.Expr
	str      string
	count    uint32
	addr     uint32
}

type vparser struct {
	items   []vitem
	syms    map[string]uint32
	pending []string
}

func (p *vparser) add(it vitem) {
	it.labels = p.pending
	p.pending = nil
	p.items = append(p.items, it)
}

func regName(s string) (uint8, bool) {
	switch strings.ToLower(s) {
	case "ap":
		return RegAP, true
	case "fp":
		return RegFP, true
	case "sp":
		return RegSP, true
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs-1 { // r15 reserved
			return uint8(n), true
		}
	}
	return 0, false
}

func (p *vparser) parseLine(line string, lineNo int) error {
	toks, err := syntax.ScanLine(line, lineNo)
	if err != nil {
		return err
	}
	for len(toks) >= 2 && toks[0].Kind == syntax.Ident && toks[1].Kind == syntax.Punct && toks[1].Text == ":" {
		name := toks[0].Text
		p.pending = append(p.pending, name)
		toks = toks[2:]
	}
	if len(toks) == 0 {
		return nil
	}
	if toks[0].Kind != syntax.Ident {
		return errf(lineNo, "expected mnemonic or directive, got %q", toks[0].Text)
	}
	head := strings.ToLower(toks[0].Text)
	rest := toks[1:]
	if strings.HasPrefix(head, ".") {
		return p.parseDirective(head, rest, lineNo)
	}
	return p.parseInst(head, rest, lineNo)
}

type cursor struct {
	toks []syntax.Token
	pos  int
	line int
}

func (c *cursor) done() bool { return c.pos >= len(c.toks) }

func (c *cursor) punct(s string) bool {
	if c.pos < len(c.toks) && c.toks[c.pos].Kind == syntax.Punct && c.toks[c.pos].Text == s {
		c.pos++
		return true
	}
	return false
}

func (c *cursor) comma() error {
	if c.punct(",") {
		return nil
	}
	return errf(c.line, "expected ','")
}

func (c *cursor) end() error {
	if !c.done() {
		return errf(c.line, "unexpected trailing operands")
	}
	return nil
}

func (c *cursor) expr() (syntax.Expr, error) {
	ep := &syntax.Parser{Toks: c.toks, Pos: c.pos, Line: c.line}
	e, err := ep.Parse()
	if err != nil {
		return nil, err
	}
	c.pos = ep.Pos
	return e, nil
}

// isRegToken reports whether the token at pos names a register.
func (c *cursor) isRegToken(pos int) (uint8, bool) {
	if pos < len(c.toks) && c.toks[pos].Kind == syntax.Ident {
		return regName(c.toks[pos].Text)
	}
	return 0, false
}

// parseOperand parses one general operand.
func (c *cursor) parseOperand(arg Arg) (operandSrc, error) {
	if c.done() {
		return operandSrc{}, errf(c.line, "missing operand")
	}
	// Branch displacement: a bare expression.
	if arg.Kind == ArgBr8 || arg.Kind == ArgBr16 {
		e, err := c.expr()
		return operandSrc{disp: e}, err
	}
	t := c.toks[c.pos]
	// $expr — immediate.
	if t.Kind == syntax.Punct && t.Text == "$" {
		c.pos++
		e, err := c.expr()
		return operandSrc{mode: ModeImmAbs, reg: immSub, disp: e}, err
	}
	// -(rN) — autodecrement. A '-' followed by '(' reg ')'.
	if t.Kind == syntax.Punct && t.Text == "-" {
		if r, ok := c.isRegToken(c.pos + 2); ok && c.pos+3 < len(c.toks)+1 &&
			c.toks[c.pos+1].Kind == syntax.Punct && c.toks[c.pos+1].Text == "(" {
			if c.pos+3 < len(c.toks) && c.toks[c.pos+3].Kind == syntax.Punct && c.toks[c.pos+3].Text == ")" {
				c.pos += 4
				return operandSrc{mode: ModeAutoDec, reg: r}, nil
			}
		}
		// Otherwise fall through: a negative displacement/absolute.
	}
	// (rN) or (rN)+ — deferred / autoincrement.
	if t.Kind == syntax.Punct && t.Text == "(" {
		if r, ok := c.isRegToken(c.pos + 1); ok &&
			c.pos+2 < len(c.toks) && c.toks[c.pos+2].Kind == syntax.Punct && c.toks[c.pos+2].Text == ")" {
			c.pos += 3
			if c.punct("+") {
				return operandSrc{mode: ModeAutoInc, reg: r}, nil
			}
			return operandSrc{mode: ModeDeferred, reg: r}, nil
		}
		// Otherwise it is a parenthesized expression.
	}
	// rN — register direct.
	if t.Kind == syntax.Ident {
		if r, ok := regName(t.Text); ok {
			c.pos++
			return operandSrc{mode: ModeReg, reg: r}, nil
		}
	}
	// expr or expr(rN) — absolute or displacement.
	e, err := c.expr()
	if err != nil {
		return operandSrc{}, err
	}
	if c.punct("(") {
		r, ok := c.isRegToken(c.pos)
		if !ok {
			return operandSrc{}, errf(c.line, "expected register in displacement operand")
		}
		c.pos++
		if !c.punct(")") {
			return operandSrc{}, errf(c.line, "missing ')' in displacement operand")
		}
		return operandSrc{mode: dispMode(e), reg: r, disp: e, dispSize: dispSizeOf(e)}, nil
	}
	return operandSrc{mode: ModeImmAbs, reg: absSub, disp: e}, nil
}

// dispMode picks the displacement width from a literal value; symbolic
// displacements get the full 32 bits so layout stays single-pass.
func dispMode(e syntax.Expr) Mode {
	if v, ok := syntax.LiteralValue(e); ok {
		switch {
		case v >= -128 && v <= 127:
			return ModeDisp8
		case v >= -32768 && v <= 32767:
			return ModeDisp16
		}
	}
	return ModeDisp32
}

func dispSizeOf(e syntax.Expr) Size {
	switch dispMode(e) {
	case ModeDisp8:
		return SizeB
	case ModeDisp16:
		return SizeW
	default:
		return SizeL
	}
}

func (p *vparser) parseInst(name string, toks []syntax.Token, line int) error {
	op, ok := ByName(name)
	if !ok {
		return errf(line, "unknown instruction %q", name)
	}
	info, _ := Lookup(op)
	c := &cursor{toks: toks, line: line}
	it := vitem{kind: vInst, line: line, op: op}
	for i, arg := range info.Args {
		if i > 0 {
			if err := c.comma(); err != nil {
				return err
			}
		}
		o, err := c.parseOperand(arg)
		if err != nil {
			return err
		}
		it.operands = append(it.operands, o)
	}
	if err := c.end(); err != nil {
		return err
	}
	p.add(it)
	return nil
}

func (p *vparser) parseDirective(name string, toks []syntax.Token, line int) error {
	c := &cursor{toks: toks, line: line}
	switch name {
	case ".entry":
		var mask uint16
		for !c.done() {
			if len(c.toks[c.pos:]) > 0 && c.toks[c.pos].Kind == syntax.Ident {
				r, ok := regName(c.toks[c.pos].Text)
				if !ok || r >= RegAP {
					return errf(line, ".entry may only save r0..r11, got %q", c.toks[c.pos].Text)
				}
				mask |= 1 << r
				c.pos++
				if c.done() {
					break
				}
				if err := c.comma(); err != nil {
					return err
				}
				continue
			}
			return errf(line, ".entry expects register names")
		}
		p.add(vitem{kind: vEntry, line: line, mask: mask})
		return nil

	case ".equ":
		if c.done() || c.toks[c.pos].Kind != syntax.Ident {
			return errf(line, ".equ needs a name")
		}
		sym := c.toks[c.pos].Text
		c.pos++
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		v, err := e.Eval(p.syms)
		if err != nil {
			return errf(line, ".equ value must be computable here: %v", err)
		}
		if _, dup := p.syms[sym]; dup {
			return errf(line, "symbol %q redefined", sym)
		}
		p.syms[sym] = uint32(v)
		return nil

	case ".org", ".space", ".align":
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		v, err := e.Eval(p.syms)
		if err != nil {
			return errf(line, "%s operand must be computable here: %v", name, err)
		}
		if v < 0 {
			return errf(line, "%s operand must be non-negative", name)
		}
		kind := map[string]vkind{".org": vOrg, ".space": vSpace, ".align": vAlign}[name]
		if kind == vAlign && (v == 0 || v&(v-1) != 0) {
			return errf(line, ".align needs a power of two")
		}
		p.add(vitem{kind: kind, line: line, count: uint32(v)})
		return nil

	case ".word", ".half", ".byte":
		var exprs []syntax.Expr
		for {
			e, err := c.expr()
			if err != nil {
				return err
			}
			exprs = append(exprs, e)
			if c.done() {
				break
			}
			if err := c.comma(); err != nil {
				return err
			}
		}
		kind := map[string]vkind{".word": vWord, ".half": vHalf, ".byte": vByte}[name]
		p.add(vitem{kind: kind, line: line, exprs: exprs})
		return nil

	case ".ascii", ".asciz":
		if c.done() || c.toks[c.pos].Kind != syntax.String {
			return errf(line, "%s needs a string", name)
		}
		s := c.toks[c.pos].Text
		c.pos++
		if err := c.end(); err != nil {
			return err
		}
		if name == ".asciz" {
			s += "\x00"
		}
		p.add(vitem{kind: vAscii, line: line, str: s})
		return nil
	}
	return errf(line, "unknown directive %q", name)
}

// operandBytes is the encoded size of one operand.
func operandBytes(o operandSrc, arg Arg) uint32 {
	switch arg.Kind {
	case ArgBr8:
		return 1
	case ArgBr16:
		return 2
	}
	switch o.mode {
	case ModeReg, ModeDeferred, ModeAutoInc, ModeAutoDec:
		return 1
	case ModeDisp8:
		return 2
	case ModeDisp16:
		return 3
	case ModeDisp32:
		return 5
	case ModeImmAbs:
		if o.reg == immSub {
			return 1 + uint32(arg.Size)
		}
		return 5 // absolute: specifier + 32-bit address
	}
	return 1
}

func (it *vitem) size() uint32 {
	switch it.kind {
	case vInst:
		sz := uint32(1)
		info, _ := Lookup(it.op)
		for i, o := range it.operands {
			sz += operandBytes(o, info.Args[i])
		}
		return sz
	case vEntry:
		return 2
	case vWord:
		return 4 * uint32(len(it.exprs))
	case vHalf:
		return 2 * uint32(len(it.exprs))
	case vByte:
		return uint32(len(it.exprs))
	case vAscii:
		return uint32(len(it.str))
	case vSpace:
		return it.count
	default:
		return 0
	}
}

func (it *vitem) alignment() uint32 {
	switch it.kind {
	case vWord:
		return 4
	case vHalf, vEntry:
		return 2
	default:
		return 1 // instructions are unaligned byte streams, as on the VAX
	}
}

func (p *vparser) layout() error {
	lc := uint32(0)
	for i := range p.items {
		it := &p.items[i]
		switch it.kind {
		case vOrg:
			if it.count < lc {
				return errf(it.line, ".org %#x moves backwards from %#x", it.count, lc)
			}
			lc = it.count
		case vAlign:
			lc = (lc + it.count - 1) &^ (it.count - 1)
		}
		if a := it.alignment(); lc%a != 0 {
			lc = (lc + a - 1) &^ (a - 1)
		}
		it.addr = lc
		for _, l := range it.labels {
			if _, dup := p.syms[l]; dup {
				return errf(it.line, "symbol %q redefined", l)
			}
			p.syms[l] = lc
		}
		lc += it.size()
	}
	for _, l := range p.pending {
		if _, dup := p.syms[l]; dup {
			return fmt.Errorf("vax: symbol %q redefined", l)
		}
		p.syms[l] = lc
	}
	return nil
}

func (p *vparser) emit() (*Program, error) {
	prog := &Program{Symbols: p.syms}
	var cur *Segment
	put := func(addr uint32, b []byte) {
		if cur == nil || cur.Addr+uint32(len(cur.Data)) != addr {
			prog.Segments = append(prog.Segments, Segment{Addr: addr})
			cur = &prog.Segments[len(prog.Segments)-1]
		}
		cur.Data = append(cur.Data, b...)
	}

	for i := range p.items {
		it := &p.items[i]
		switch it.kind {
		case vInst:
			b, err := p.encodeInst(it)
			if err != nil {
				return nil, err
			}
			put(it.addr, b)
			prog.TextSize += len(b)
		case vEntry:
			var b [2]byte
			binary.BigEndian.PutUint16(b[:], it.mask)
			put(it.addr, b[:])
			prog.TextSize += 2
		case vWord, vHalf, vByte:
			sz := map[vkind]int{vWord: 4, vHalf: 2, vByte: 1}[it.kind]
			for j, e := range it.exprs {
				v, err := e.Eval(p.syms)
				if err != nil {
					return nil, errf(it.line, "%v", err)
				}
				b := make([]byte, sz)
				switch sz {
				case 4:
					binary.BigEndian.PutUint32(b, uint32(v))
				case 2:
					binary.BigEndian.PutUint16(b, uint16(v))
				default:
					b[0] = byte(v)
				}
				put(it.addr+uint32(j*sz), b)
			}
			prog.DataSize += sz * len(it.exprs)
		case vAscii:
			put(it.addr, []byte(it.str))
			prog.DataSize += len(it.str)
		case vSpace:
			if it.count > 0 {
				put(it.addr, make([]byte, it.count))
				prog.DataSize += int(it.count)
			}
		}
	}
	prog.Entry = p.entry()
	return prog, nil
}

func (p *vparser) entry() uint32 {
	if v, ok := p.syms["start"]; ok {
		return v
	}
	if v, ok := p.syms["main"]; ok {
		return v
	}
	for _, it := range p.items {
		if it.kind == vInst {
			return it.addr
		}
	}
	return 0
}

func (p *vparser) encodeInst(it *vitem) ([]byte, error) {
	info, _ := Lookup(it.op)
	out := []byte{byte(it.op)}
	end := it.addr + it.size() // branch displacements are relative to here
	for i, o := range it.operands {
		arg := info.Args[i]
		switch arg.Kind {
		case ArgBr8, ArgBr16:
			v, err := o.disp.Eval(p.syms)
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			d := v - int64(end)
			if arg.Kind == ArgBr8 {
				if d < -128 || d > 127 {
					return nil, errf(it.line, "branch displacement %d exceeds a byte; use brw", d)
				}
				out = append(out, byte(int8(d)))
			} else {
				if d < -32768 || d > 32767 {
					return nil, errf(it.line, "branch displacement %d exceeds 16 bits", d)
				}
				var b [2]byte
				binary.BigEndian.PutUint16(b[:], uint16(int16(d)))
				out = append(out, b[:]...)
			}
			continue
		}
		spec := byte(o.mode)<<4 | o.reg
		out = append(out, spec)
		switch o.mode {
		case ModeDisp8, ModeDisp16, ModeDisp32:
			v, err := o.disp.Eval(p.syms)
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			switch o.mode {
			case ModeDisp8:
				if v < -128 || v > 127 {
					return nil, errf(it.line, "displacement %d exceeds a byte", v)
				}
				out = append(out, byte(int8(v)))
			case ModeDisp16:
				if v < -32768 || v > 32767 {
					return nil, errf(it.line, "displacement %d exceeds 16 bits", v)
				}
				var b [2]byte
				binary.BigEndian.PutUint16(b[:], uint16(int16(v)))
				out = append(out, b[:]...)
			default:
				var b [4]byte
				binary.BigEndian.PutUint32(b[:], uint32(v))
				out = append(out, b[:]...)
			}
		case ModeImmAbs:
			v, err := o.disp.Eval(p.syms)
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			if o.reg == immSub {
				switch arg.Size {
				case SizeB:
					out = append(out, byte(v))
				case SizeW:
					var b [2]byte
					binary.BigEndian.PutUint16(b[:], uint16(v))
					out = append(out, b[:]...)
				default:
					var b [4]byte
					binary.BigEndian.PutUint32(b[:], uint32(v))
					out = append(out, b[:]...)
				}
			} else {
				var b [4]byte
				binary.BigEndian.PutUint32(b[:], uint32(v))
				out = append(out, b[:]...)
			}
		}
	}
	return out, nil
}
