package vax

import (
	"fmt"
	"strings"
	"testing"
)

func runVax(t *testing.T, src string) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestMoveAndArith(t *testing.T) {
	c := runVax(t, `
start:	movl $40, r0
	addl2 $2, r0
	subl3 $2, r0, r1
	mull3 $3, r1, r2
	divl3 $4, r2, r3
	halt
	`)
	if c.R[0] != 42 || c.R[1] != 40 || c.R[2] != 120 || c.R[3] != 30 {
		t.Errorf("r0..r3 = %d %d %d %d", c.R[0], c.R[1], c.R[2], c.R[3])
	}
}

func TestAddressingModes(t *testing.T) {
	c := runVax(t, `
start:	moval tbl, r1
	movl (r1), r2		; deferred: tbl[0] = 11
	movl 4(r1), r3		; displacement: tbl[1] = 22
	movl (r1)+, r4		; autoincrement
	movl (r1), r5		; now points at tbl[1]
	movl tbl+8, r6		; absolute: tbl[2] = 33
	moval tbl, r7
	addl2 $12, r7
	movl $99, -(r7)		; autodecrement writes tbl[2]
	movl tbl+8, r8
	halt
	.align 4
tbl:	.word 11, 22, 33
	`)
	want := map[int]uint32{2: 11, 3: 22, 4: 11, 5: 22, 6: 33, 8: 99}
	for r, v := range want {
		if c.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.R[r], v)
		}
	}
}

func TestByteAndWordOps(t *testing.T) {
	c := runVax(t, `
start:	movzbl b0, r1
	cvtbl b0, r2
	movzwl h0, r3
	cvtwl h0, r4
	movb $65, b1
	movzbl b1, r5
	halt
b0:	.byte 0x85
b1:	.byte 0
	.align 2
h0:	.half 0x8001
	`)
	if c.R[1] != 0x85 {
		t.Errorf("movzbl = %#x", c.R[1])
	}
	if int32(c.R[2]) != -123 {
		t.Errorf("cvtbl = %d, want -123", int32(c.R[2]))
	}
	if c.R[3] != 0x8001 {
		t.Errorf("movzwl = %#x", c.R[3])
	}
	if int32(c.R[4]) != -32767 {
		t.Errorf("cvtwl = %d", int32(c.R[4]))
	}
	if c.R[5] != 65 {
		t.Errorf("movb roundtrip = %d", c.R[5])
	}
}

func TestBranches(t *testing.T) {
	c := runVax(t, `
start:	movl $5, r0
	clrl r1
loop:	addl2 r0, r1
	decl r0
	tstl r0
	bgtr loop
	cmpl $3, $7
	blss less
	movl $0, r2
	brb out
less:	movl $1, r2
out:	cmpl $3, $-7
	bgtru uless	; unsigned: 3 < 0xfff...9 is true -> no branch? 3 <u -7=huge: 3 < huge so NOT gtru
	movl $1, r3
uless:	halt
	`)
	if c.R[1] != 15 {
		t.Errorf("loop sum = %d, want 15", c.R[1])
	}
	if c.R[2] != 1 {
		t.Errorf("signed compare failed: r2 = %d", c.R[2])
	}
	if c.R[3] != 1 {
		t.Errorf("unsigned compare failed: r3 = %d (bgtru should not branch)", c.R[3])
	}
	if c.Stats.BranchesTaken == 0 || c.Stats.BranchesUntaken == 0 {
		t.Errorf("branch stats: %+v", c.Stats)
	}
}

func TestLogicAndShift(t *testing.T) {
	c := runVax(t, `
start:	movl $0xf0, r0
	bisl3 $0x0f, r0, r1	; or
	bicl3 $0x30, r0, r2	; and-not
	xorl3 $0xff, r0, r3
	andl3 $0x3c, r0, r4
	ashl $4, r0, r5		; left
	ashl $-4, r0, r6	; right
	mcoml $0, r7
	mnegl $5, r8
	halt
	`)
	checks := map[int]uint32{1: 0xff, 2: 0xc0, 3: 0x0f, 4: 0x30, 5: 0xf00, 6: 0x0f}
	for r, v := range checks {
		if c.R[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.R[r], v)
		}
	}
	if c.R[7] != 0xffffffff {
		t.Errorf("mcoml = %#x", c.R[7])
	}
	if int32(c.R[8]) != -5 {
		t.Errorf("mnegl = %d", int32(c.R[8]))
	}
}

func TestCallsRet(t *testing.T) {
	c := runVax(t, `
start:	pushl $20
	pushl $22
	calls $2, addfn
	halt

addfn:	.entry r6
	movl 4(ap), r6		; first arg (pushed last)
	addl2 8(ap), r6
	movl r6, r0		; result convention: r0
	ret
	`)
	if c.R[0] != 42 {
		t.Errorf("calls result = %d, want 42", c.R[0])
	}
	if c.Stats.Calls != 1 || c.Stats.Returns != 1 {
		t.Errorf("call stats: %+v", c.Stats)
	}
	if c.Stats.CallCycles == 0 || c.Stats.CallMemWords < 10 {
		t.Errorf("call cost not counted: %+v", c.Stats)
	}
	// SP must be fully unwound (args popped by RET).
	if c.R[RegSP] != c.Config().StackTop {
		t.Errorf("SP = %#x, want %#x", c.R[RegSP], c.Config().StackTop)
	}
}

func TestCallsSavesMaskedRegisters(t *testing.T) {
	c := runVax(t, `
start:	movl $7, r6
	movl $8, r7
	calls $0, clobber
	halt
clobber: .entry r6, r7
	movl $999, r6
	movl $888, r7
	ret
	`)
	if c.R[6] != 7 || c.R[7] != 8 {
		t.Errorf("saved registers not restored: r6=%d r7=%d", c.R[6], c.R[7])
	}
}

func TestRecursiveFib(t *testing.T) {
	c := runVax(t, `
start:	pushl $12
	calls $1, fib
	halt

; fib(n) -> r0
fib:	.entry r6
	movl 4(ap), r6
	cmpl r6, $2
	bgeq rec
	movl r6, r0
	ret
rec:	subl3 $1, r6, r0
	pushl r0
	calls $1, fib
	movl r0, r1		; fib(n-1)... but r1 is not saved! use stack
	pushl r1
	subl3 $2, r6, r0
	pushl r0
	calls $1, fib
	addl2 (sp)+, r0		; pop saved fib(n-1), add
	ret
	`)
	if c.R[0] != 144 {
		t.Errorf("fib(12) = %d, want 144", c.R[0])
	}
	if c.Stats.Calls != c.Stats.Returns {
		t.Errorf("calls %d != returns %d", c.Stats.Calls, c.Stats.Returns)
	}
	if c.Trace.MaxDepth() < 11 {
		t.Errorf("max depth = %d, want >= 11", c.Trace.MaxDepth())
	}
}

func TestLocalVariablesOnStack(t *testing.T) {
	c := runVax(t, `
start:	calls $0, fn
	halt
fn:	.entry
	subl2 $8, sp		; two locals
	movl $5, -4(fp)
	movl $6, -8(fp)
	addl3 -4(fp), -8(fp), r0
	ret
	`)
	if c.R[0] != 11 {
		t.Errorf("locals sum = %d, want 11", c.R[0])
	}
}

func TestVariableLengthSizes(t *testing.T) {
	// Register-register MOVL is 3 bytes; with a long immediate it is 7.
	p, err := Assemble("movl r1, r2\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.TextSize != 3 {
		t.Errorf("movl r1,r2 = %d bytes, want 3", p.TextSize)
	}
	p, err = Assemble("movl $100000, r2\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.TextSize != 7 {
		t.Errorf("movl $imm32,r2 = %d bytes, want 7", p.TextSize)
	}
	p, err = Assemble("addl3 r1, r2, r3\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.TextSize != 4 {
		t.Errorf("addl3 r,r,r = %d bytes, want 4", p.TextSize)
	}
	// Displacement widths: byte vs word vs long.
	p, _ = Assemble("movl 4(fp), r0\n")
	if p.TextSize != 4 {
		t.Errorf("disp8 form = %d bytes, want 4", p.TextSize)
	}
	p, _ = Assemble("movl 1000(fp), r0\n")
	if p.TextSize != 5 {
		t.Errorf("disp16 form = %d bytes, want 5", p.TextSize)
	}
	p, _ = Assemble("movl 100000(fp), r0\n")
	if p.TextSize != 7 {
		t.Errorf("disp32 form = %d bytes, want 7", p.TextSize)
	}
}

func TestMicrocodedCostsAreVisible(t *testing.T) {
	// A memory-memory add must cost more than register-register.
	rr := runVax(t, "start:\tmovl $1, r0\n\taddl2 r0, r1\n\thalt\n")
	mm := runVax(t, "start:\taddl2 a, b\n\thalt\na:\t.word 1\nb:\t.word 2\n")
	// Compare just the add instructions by total cycles net of halt/movl.
	if mm.Trace.Cycles <= rr.Trace.Cycles-3 {
		t.Errorf("memory add (%d cy total) should out-cost register add (%d cy total)",
			mm.Trace.Cycles, rr.Trace.Cycles)
	}
	if rr.Micros() <= 0 {
		t.Error("Micros should be positive")
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	prog, err := Assemble("start:\tdivl2 $0, r1\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("want divide-by-zero fault, got %v", err)
	}
}

func TestIllegalOpcodeFaults(t *testing.T) {
	c := New(Config{})
	c.Reset(0)
	c.Mem.WriteBytes(0, []byte{0xff})
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "illegal opcode") {
		t.Errorf("want illegal-opcode fault, got %v", err)
	}
}

func TestInstructionLimit(t *testing.T) {
	prog, _ := Assemble("start:\tbrb start\n")
	c := New(Config{MaxInstructions: 100})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Errorf("want limit error, got %v", err)
	}
}

func TestAsmErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"bogus r1\n", "unknown instruction"},
		{"movl r1\n", "expected ','"},
		// r15 is reserved: it parses as an (undefined) symbol, not a register.
		{"movl r15, r0\n", "undefined symbol"},
		{"movl $5, $6\n", ""}, // assembles; faults at run time
		{".entry ap\n", "may only save"},
		{"x: .word 1\nx: .word 2\n", "redefined"},
		{"brb far\n.org 40000\nfar: halt\n", "exceeds a byte"},
	}
	for _, tc := range cases {
		if tc.want == "" {
			continue
		}
		_, err := Assemble(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q: error %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestImmediateDestinationFaults(t *testing.T) {
	prog, err := Assemble("start:\tmovl $5, $6\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "immediate used as destination") {
		t.Errorf("want immediate-destination fault, got %v", err)
	}
}

func TestInstructionCountMetadata(t *testing.T) {
	if NumInstructions < 40 {
		t.Errorf("baseline has %d opcodes; expected a rich CISC set", NumInstructions)
	}
	for _, info := range Instructions() {
		if info.Name == "" || info.Class == "" {
			t.Errorf("opcode %d missing metadata", info.Op)
		}
		op, ok := ByName(info.Name)
		if !ok || op != info.Op {
			t.Errorf("ByName(%q) mismatch", info.Name)
		}
	}
}

func TestPushPop(t *testing.T) {
	c := runVax(t, `
start:	pushl $7
	pushl $9
	movl (sp)+, r1
	movl (sp)+, r2
	halt
	`)
	if c.R[1] != 9 || c.R[2] != 7 {
		t.Errorf("stack order wrong: r1=%d r2=%d", c.R[1], c.R[2])
	}
	if c.R[RegSP] != c.Config().StackTop {
		t.Errorf("SP not restored: %#x", c.R[RegSP])
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	// Assemble -> disassemble -> reassemble must reproduce the bytes.
	src := `
	movl $40, r0
	addl2 $2, r0
	subl3 r1, r2, r3
	movl 4(ap), r6
	movl -8(fp), r7
	movl (r1)+, r2
	movl -(r3), r4
	clrl r5
	mcoml r5, r5
	ashl $-4, r0, r1
	cmpl r0, $100000
	tstl r9
	pushl r0
	ret
	halt
	nop
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	data := p.Segments[0].Data
	var lines []string
	off := 0
	for off < len(data) {
		text, n, err := Disassemble(data, off, p.Segments[0].Addr)
		if err != nil {
			t.Fatalf("disassemble at %d: %v", off, err)
		}
		lines = append(lines, "\t"+text)
		off += n
	}
	p2, err := Assemble(strings.Join(lines, "\n") + "\n")
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, strings.Join(lines, "\n"))
	}
	d2 := p2.Segments[0].Data
	if len(d2) != len(data) {
		t.Fatalf("size changed: %d -> %d\n%s", len(data), len(d2), strings.Join(lines, "\n"))
	}
	for i := range data {
		if data[i] != d2[i] {
			t.Fatalf("byte %d changed: %#02x -> %#02x\n%s", i, data[i], d2[i], strings.Join(lines, "\n"))
		}
	}
}

func TestDisassembleBranches(t *testing.T) {
	p, err := Assemble("start:\tbrb start\n\tbeql start\n")
	if err != nil {
		t.Fatal(err)
	}
	data := p.Segments[0].Data
	text, n, err := Disassemble(data, 0, 0)
	if err != nil || n != 2 {
		t.Fatalf("brb: %q, %d, %v", text, n, err)
	}
	if text != "brb 0x0" {
		t.Errorf("brb disassembled as %q", text)
	}
	text, n, err = Disassemble(data, 2, 0)
	if err != nil || n != 3 {
		t.Fatalf("beql: %q, %d, %v", text, n, err)
	}
	if text != "beql 0x0" {
		t.Errorf("beql disassembled as %q", text)
	}
}

func TestListing(t *testing.T) {
	p, err := Assemble("start:\tmovl $1, r0\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Listing(p)
	if !strings.Contains(out, "movl $1, r0") || !strings.Contains(out, "halt") {
		t.Errorf("listing:\n%s", out)
	}
}

func TestAllConditionalBranches(t *testing.T) {
	// Exercise every branch predicate in both taken and untaken
	// directions via CMPL-set flags.
	cases := []struct {
		br    string
		a, b  int32
		taken bool
	}{
		{"beql", 5, 5, true}, {"beql", 5, 6, false},
		{"bneq", 5, 6, true}, {"bneq", 5, 5, false},
		{"blss", -1, 0, true}, {"blss", 0, -1, false},
		{"bleq", 0, 0, true}, {"bleq", 1, 0, false},
		{"bgtr", 1, 0, true}, {"bgtr", 0, 0, false},
		{"bgeq", 0, -5, true}, {"bgeq", -5, 0, false},
		{"blssu", 1, 2, true}, {"blssu", -1, 1, false}, // -1 is huge unsigned
		{"blequ", 2, 2, true}, {"blequ", 2, 1, false},
		{"bgtru", -1, 1, true}, {"bgtru", 1, -1, false},
		{"bgequ", -1, 1, true}, {"bgequ", 1, -1, false},
	}
	for _, tc := range cases {
		src := fmt.Sprintf(`
start:	cmpl $%d, $%d
	%s yes
	movl $0, r1
	brb done
yes:	movl $1, r1
done:	halt
`, tc.a, tc.b, tc.br)
		c := runVax(t, src)
		want := uint32(0)
		if tc.taken {
			want = 1
		}
		if c.R[1] != want {
			t.Errorf("cmpl %d,%d ; %s: taken=%v, want %v", tc.a, tc.b, tc.br, c.R[1] == 1, tc.taken)
		}
	}
}

func TestSymbolHelpers(t *testing.T) {
	p := MustAssemble("b:\thalt\na:\t.word 1\n")
	if v, ok := p.Symbol("a"); !ok || v == 0 {
		t.Errorf("Symbol(a) = %d, %v", v, ok)
	}
	if _, ok := p.Symbol("zz"); ok {
		t.Error("unknown symbol should miss")
	}
	names := p.SortedSymbols()
	if len(names) != 2 || names[0] != "b" {
		t.Errorf("SortedSymbols = %v", names)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bogus\n")
}

func TestPCHaltedSetEntry(t *testing.T) {
	prog := MustAssemble("start:\tmovl $1, r0\n\thalt\nagain:\tmovl $2, r0\n\thalt\n")
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if h, _ := c.Halted(); h {
		t.Fatal("not started yet")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if h, err := c.Halted(); !h || err != nil {
		t.Fatalf("halted = %v, %v", h, err)
	}
	if c.R[0] != 1 {
		t.Fatalf("r0 = %d", c.R[0])
	}
	// SetEntry rewinds without clearing memory.
	again, _ := prog.Symbol("again")
	c.SetEntry(again)
	if c.PC() != again {
		t.Errorf("PC = %#x, want %#x", c.PC(), again)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.R[0] != 2 {
		t.Errorf("r0 after SetEntry run = %d", c.R[0])
	}
}

func TestByteRegisterWritePreservesHighBits(t *testing.T) {
	c := runVax(t, `
start:	movl $0x11223344, r1
	movb $0x55, r1
	movw $0x6677, r2
	halt
	`)
	if c.R[1] != 0x11223355 {
		t.Errorf("movb to register = %#x, want 0x11223355", c.R[1])
	}
	if c.R[2]&0xffff != 0x6677 {
		t.Errorf("movw to register = %#x", c.R[2])
	}
}

func TestDirectiveCoverage(t *testing.T) {
	p := MustAssemble(`
	.equ K, 3
	.org 0x40
w:	.word K*2
	.half 7
	.byte 'x'
	.ascii "ab"
	.asciz "c"
	.space 5
	.align 8
end:	halt
	`)
	if v, _ := p.Symbol("w"); v != 0x40 {
		t.Errorf("w at %#x", v)
	}
	if v, _ := p.Symbol("end"); v%8 != 0 {
		t.Errorf("end not aligned: %#x", v)
	}
	if p.DataSize == 0 {
		t.Error("data size missing")
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{".equ 5, 5\n", "needs a name"},
		{".equ a, 1\n.equ a, 2\n", "redefined"},
		{".org -1\n", "non-negative"},
		{".align 5\n", "power of two"},
		{".ascii 7\n", "needs a string"},
		{".bogus\n", "unknown directive"},
		{".org 9\n.org 4\n", "backwards"},
	}
	for _, tc := range cases {
		if _, err := Assemble(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestDisassembleImmediateAndAbsolute(t *testing.T) {
	p := MustAssemble("start:\tmovl $-5, r0\n\tmovl 0x1234, r1\n\thalt\n")
	data := p.Segments[0].Data
	text, n, err := Disassemble(data, 0, 0)
	if err != nil || text != "movl $-5, r0" {
		t.Errorf("imm: %q, %d, %v", text, n, err)
	}
	text, _, err = Disassemble(data, n, 0)
	if err != nil || text != "movl 0x1234, r1" {
		t.Errorf("abs: %q, %v", text, err)
	}
}

func TestDisassembleTruncated(t *testing.T) {
	// An opcode byte with missing operand bytes must error, not panic.
	if _, _, err := Disassemble([]byte{byte(MOVL)}, 0, 0); err == nil {
		t.Error("truncated instruction should error")
	}
	if _, _, err := Disassemble([]byte{}, 0, 0); err == nil {
		t.Error("empty code should error")
	}
}
