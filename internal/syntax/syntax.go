// Package syntax provides the line scanner and constant-expression
// parser shared by the RISC I assembler and the CISC baseline assembler:
// tokens, numeric literals (decimal, 0x, 0b, character), strings with
// escapes, and a two-pass-friendly expression tree resolved against a
// symbol table.
package syntax

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind uint8

const (
	Ident  Kind = iota // mnemonics, labels, symbols, register names
	Number             // numeric literal
	String             // "..." with escapes resolved
	Char               // 'c'
	Punct              // single punctuation rune
)

// Token is one lexical element of a source line.
type Token struct {
	Kind Kind
	Text string
	Num  int64 // valid for Number and Char
}

// Error is a diagnostic with a source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// Errorf builds a positioned diagnostic.
func Errorf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ScanLine tokenizes one source line. Comments start with ';' or '#' and
// run to end of line.
func ScanLine(line string, lineNo int) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(line)
	for i < n {
		ch := line[i]
		switch {
		case ch == ';' || ch == '#':
			return toks, nil
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
		case isIdentStart(rune(ch)):
			j := i + 1
			for j < n && isIdentPart(rune(line[j])) {
				j++
			}
			toks = append(toks, Token{Kind: Ident, Text: line[i:j]})
			i = j
		case ch >= '0' && ch <= '9':
			j := i + 1
			for j < n && isIdentPart(rune(line[j])) {
				j++
			}
			text := line[i:j]
			v, err := ParseNumber(text)
			if err != nil {
				return nil, Errorf(lineNo, "bad number %q", text)
			}
			toks = append(toks, Token{Kind: Number, Text: text, Num: v})
			i = j
		case ch == '"':
			s, next, err := scanString(line, i, lineNo)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: String, Text: s})
			i = next
		case ch == '\'':
			c, next, err := scanChar(line, i, lineNo)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: Char, Num: int64(c)})
			i = next
		default:
			toks = append(toks, Token{Kind: Punct, Text: string(ch)})
			i++
		}
	}
	return toks, nil
}

func scanString(line string, i, lineNo int) (string, int, error) {
	n := len(line)
	j := i + 1
	var sb strings.Builder
	for j < n && line[j] != '"' {
		c := line[j]
		if c == '\\' && j+1 < n {
			j++
			var err error
			c, err = unescape(line[j], lineNo)
			if err != nil {
				return "", 0, err
			}
		}
		sb.WriteByte(c)
		j++
	}
	if j >= n {
		return "", 0, Errorf(lineNo, "unterminated string")
	}
	return sb.String(), j + 1, nil
}

func scanChar(line string, i, lineNo int) (byte, int, error) {
	n := len(line)
	if i+2 < n && line[i+1] == '\\' && i+3 < n && line[i+3] == '\'' {
		c, err := unescape(line[i+2], lineNo)
		return c, i + 4, err
	}
	if i+2 < n && line[i+2] == '\'' {
		return line[i+1], i + 3, nil
	}
	return 0, 0, Errorf(lineNo, "bad character literal")
}

func unescape(c byte, lineNo int) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	}
	return 0, Errorf(lineNo, "unknown escape \\%c", c)
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// ParseNumber parses decimal, hexadecimal (0x), and binary (0b)
// literals; the whole string must be consumed.
func ParseNumber(s string) (int64, error) {
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		return strconv.ParseInt(s[2:], 16, 64)
	case strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B"):
		if len(s) == 2 {
			return 0, fmt.Errorf("empty binary literal")
		}
		var v int64
		for _, c := range s[2:] {
			if c != '0' && c != '1' {
				return 0, fmt.Errorf("bad binary digit")
			}
			v = v<<1 | int64(c-'0')
		}
		return v, nil
	default:
		return strconv.ParseInt(s, 10, 64)
	}
}
