package syntax

// Expr is an assembly-time constant expression, resolved against the
// symbol table during the assembler's second pass.
type Expr interface {
	Eval(syms map[string]uint32) (int64, error)
}

// Num is a literal.
type Num struct{ V int64 }

// Eval returns the literal value.
func (e Num) Eval(map[string]uint32) (int64, error) { return e.V, nil }

// Sym is a symbol reference.
type Sym struct {
	Name string
	Line int
}

// Eval looks the symbol up.
func (e Sym) Eval(syms map[string]uint32) (int64, error) {
	v, ok := syms[e.Name]
	if !ok {
		return 0, Errorf(e.Line, "undefined symbol %q", e.Name)
	}
	return int64(v), nil
}

// Unary is negation or bitwise complement.
type Unary struct {
	Op rune // '-' or '~'
	X  Expr
}

// Eval applies the operator.
func (e Unary) Eval(syms map[string]uint32) (int64, error) {
	v, err := e.X.Eval(syms)
	if err != nil {
		return 0, err
	}
	if e.Op == '-' {
		return -v, nil
	}
	return ^v, nil
}

// Binary is a two-operand arithmetic/logic node.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Eval applies the operator.
func (e Binary) Eval(syms map[string]uint32) (int64, error) {
	a, err := e.X.Eval(syms)
	if err != nil {
		return 0, err
	}
	b, err := e.Y.Eval(syms)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, Errorf(e.Line, "division by zero in expression")
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, Errorf(e.Line, "modulo by zero in expression")
		}
		return a % b, nil
	case "&":
		return a & b, nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "<<":
		return a << uint(b&63), nil
	case ">>":
		return a >> uint(b&63), nil
	}
	return 0, Errorf(e.Line, "unknown operator %q", e.Op)
}

// precedence levels, loosest first.
var binOps = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

// Parser parses expressions from a token slice, advancing Pos.
type Parser struct {
	Toks []Token
	Pos  int
	Line int
}

func (p *Parser) peekPunct() string {
	if p.Pos < len(p.Toks) && p.Toks[p.Pos].Kind == Punct {
		return p.Toks[p.Pos].Text
	}
	return ""
}

// Parse parses a full expression at the lowest precedence.
func (p *Parser) Parse() (Expr, error) { return p.parseLevel(0) }

func (p *Parser) parseLevel(level int) (Expr, error) {
	if level == len(binOps) {
		return p.parseUnary()
	}
	x, err := p.parseLevel(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op := p.matchOp(binOps[level])
		if op == "" {
			return x, nil
		}
		y, err := p.parseLevel(level + 1)
		if err != nil {
			return nil, err
		}
		x = Binary{Op: op, X: x, Y: y, Line: p.Line}
	}
}

// matchOp consumes one of the given operators if present; two-character
// operators arrive as two adjacent punct tokens.
func (p *Parser) matchOp(ops []string) string {
	for _, op := range ops {
		if len(op) == 1 {
			if p.peekPunct() == op {
				p.Pos++
				return op
			}
		} else if p.Pos+1 < len(p.Toks) &&
			p.Toks[p.Pos].Kind == Punct && p.Toks[p.Pos].Text == op[:1] &&
			p.Toks[p.Pos+1].Kind == Punct && p.Toks[p.Pos+1].Text == op[1:] {
			p.Pos += 2
			return op
		}
	}
	return ""
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.peekPunct() {
	case "-", "~":
		op := rune(p.Toks[p.Pos].Text[0])
		p.Pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	if p.Pos >= len(p.Toks) {
		return nil, Errorf(p.Line, "expected expression")
	}
	t := p.Toks[p.Pos]
	switch t.Kind {
	case Number, Char:
		p.Pos++
		return Num{V: t.Num}, nil
	case Ident:
		p.Pos++
		return Sym{Name: t.Text, Line: p.Line}, nil
	case Punct:
		if t.Text == "(" {
			p.Pos++
			x, err := p.Parse()
			if err != nil {
				return nil, err
			}
			if p.peekPunct() != ")" {
				return nil, Errorf(p.Line, "missing )")
			}
			p.Pos++
			return x, nil
		}
	}
	return nil, Errorf(p.Line, "unexpected token %q in expression", t.Text)
}

// LiteralValue reports whether the expression is a plain literal
// (number, possibly under unary operators) whose value is known without
// any symbols.
func LiteralValue(e Expr) (int64, bool) {
	switch v := e.(type) {
	case Num:
		return v.V, true
	case Unary:
		if x, ok := LiteralValue(v.X); ok {
			if v.Op == '-' {
				return -x, true
			}
			return ^x, true
		}
	}
	return 0, false
}
