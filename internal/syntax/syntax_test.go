package syntax

import (
	"strings"
	"testing"
	"testing/quick"
)

func scan(t *testing.T, line string) []Token {
	t.Helper()
	toks, err := ScanLine(line, 1)
	if err != nil {
		t.Fatalf("scan %q: %v", line, err)
	}
	return toks
}

func TestScanBasics(t *testing.T) {
	toks := scan(t, `add r1, r2, 0x1F ; comment`)
	kinds := []Kind{Ident, Ident, Punct, Ident, Punct, Number}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: kind %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[5].Num != 0x1f {
		t.Errorf("hex literal = %d", toks[5].Num)
	}
}

func TestScanCommentStyles(t *testing.T) {
	for _, line := range []string{"; whole line", "# whole line", "  \t "} {
		if toks := scan(t, line); len(toks) != 0 {
			t.Errorf("%q should produce no tokens, got %v", line, toks)
		}
	}
}

func TestScanStringEscapes(t *testing.T) {
	toks := scan(t, `.ascii "a\n\t\0\\\"z"`)
	if len(toks) != 2 || toks[1].Kind != String {
		t.Fatalf("tokens: %+v", toks)
	}
	if toks[1].Text != "a\n\t\x00\\\"z" {
		t.Errorf("string = %q", toks[1].Text)
	}
	if _, err := ScanLine(`"bad \q"`, 1); err == nil {
		t.Error("unknown escape should fail")
	}
	if _, err := ScanLine(`"unterminated`, 1); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestScanCharLiterals(t *testing.T) {
	toks := scan(t, `'A' '\n' '\''`)
	want := []int64{'A', '\n', '\''}
	if len(toks) != 3 {
		t.Fatalf("tokens: %+v", toks)
	}
	for i, v := range want {
		if toks[i].Kind != Char || toks[i].Num != v {
			t.Errorf("char %d = %+v, want %d", i, toks[i], v)
		}
	}
	if _, err := ScanLine(`'ab'`, 1); err == nil {
		t.Error("two-character literal should fail")
	}
}

func TestParseNumberForms(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "42": 42, "0x10": 16, "0XfF": 255, "0b101": 5,
	}
	for s, want := range cases {
		got, err := ParseNumber(s)
		if err != nil || got != want {
			t.Errorf("ParseNumber(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, s := range []string{"0b", "0b12"} {
		if _, err := ParseNumber(s); err == nil {
			t.Errorf("ParseNumber(%q) should fail", s)
		}
	}
}

func evalStr(t *testing.T, src string, syms map[string]uint32) int64 {
	t.Helper()
	toks, err := ScanLine(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := &Parser{Toks: toks, Line: 1}
	e, err := p.Parse()
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := e.Eval(syms)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprPrecedence(t *testing.T) {
	syms := map[string]uint32{"x": 10}
	cases := map[string]int64{
		"1+2*3":   7,
		"(1+2)*3": 9,
		"10-3-2":  5,
		"1<<4|1":  17,
		"6&3^1":   3,
		"100/7%5": 4,
		"-x+1":    -9,
		"~0&0xff": 255,
		"x*x":     100,
		"1+2<<3":  24, // shift binds looser than +
		"'A'+1":   66,
		"2*-3":    -6,
	}
	for src, want := range cases {
		if got := evalStr(t, src, syms); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{"", "1+", "(1", "1/0", "5%0", "undefined_name", ")", "1 @ 2"}
	for _, src := range bad {
		toks, err := ScanLine(src, 1)
		if err != nil {
			continue
		}
		p := &Parser{Toks: toks, Line: 1}
		e, err := p.Parse()
		if err != nil {
			continue
		}
		if _, err := e.Eval(map[string]uint32{}); err == nil {
			// "1 @ 2" parses the leading 1 and stops; that is the
			// caller's trailing-token problem, not an eval error.
			if p.Pos == len(toks) {
				t.Errorf("%q: expected an error somewhere", src)
			}
		}
	}
}

func TestLiteralValue(t *testing.T) {
	toks, _ := ScanLine("-42", 1)
	p := &Parser{Toks: toks, Line: 1}
	e, _ := p.Parse()
	if v, ok := LiteralValue(e); !ok || v != -42 {
		t.Errorf("LiteralValue(-42) = %d, %v", v, ok)
	}
	toks, _ = ScanLine("~1", 1)
	p = &Parser{Toks: toks, Line: 1}
	e, _ = p.Parse()
	if v, ok := LiteralValue(e); !ok || v != -2 {
		t.Errorf("LiteralValue(~1) = %d, %v", v, ok)
	}
	toks, _ = ScanLine("sym", 1)
	p = &Parser{Toks: toks, Line: 1}
	e, _ = p.Parse()
	if _, ok := LiteralValue(e); ok {
		t.Error("symbols are not literals")
	}
}

func TestErrorType(t *testing.T) {
	err := Errorf(7, "boom %d", 42)
	if !strings.Contains(err.Error(), "line 7") || !strings.Contains(err.Error(), "boom 42") {
		t.Errorf("error format: %v", err)
	}
}

// Property: the expression parser agrees with a tiny independent
// evaluator over randomly generated arithmetic expressions.
func TestExprRandomProperty(t *testing.T) {
	type node struct {
		s string
		v int64
	}
	build := func(seed int64) node {
		// A deterministic pseudo-random expression over + - * and parens.
		x := seed
		next := func(n int64) int64 {
			x = x*6364136223846793005 + 1442695040888963407
			r := (x >> 33) % n
			if r < 0 {
				r += n
			}
			return r
		}
		var gen func(depth int) node
		gen = func(depth int) node {
			if depth == 0 || next(3) == 0 {
				v := next(100)
				return node{s: itoa(v), v: v}
			}
			a := gen(depth - 1)
			b := gen(depth - 1)
			switch next(3) {
			case 0:
				return node{s: "(" + a.s + "+" + b.s + ")", v: a.v + b.v}
			case 1:
				return node{s: "(" + a.s + "-" + b.s + ")", v: a.v - b.v}
			default:
				return node{s: "(" + a.s + "*" + b.s + ")", v: a.v * b.v}
			}
		}
		return gen(4)
	}
	f := func(seed int64) bool {
		n := build(seed)
		toks, err := ScanLine(n.s, 1)
		if err != nil {
			return false
		}
		p := &Parser{Toks: toks, Line: 1}
		e, err := p.Parse()
		if err != nil {
			return false
		}
		v, err := e.Eval(nil)
		return err == nil && v == n.v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
