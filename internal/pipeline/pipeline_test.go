package pipeline

import (
	"strings"
	"testing"

	"risc1/internal/isa"
)

func TestRegisterOpsTakeOneCycle(t *testing.T) {
	m := New(false)
	for i := 0; i < 10; i++ {
		m.Issue(isa.ADD)
	}
	s := m.Stats()
	if s.Cycles != 10 || s.Instructions != 10 || s.MemStalls != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Utilization() != 1.0 {
		t.Errorf("utilization = %f, want 1", s.Utilization())
	}
}

func TestMemoryOpsSuspendFetch(t *testing.T) {
	m := New(false)
	m.Issue(isa.LDL)
	m.Issue(isa.STB)
	m.Issue(isa.ADD)
	s := m.Stats()
	if s.Cycles != 5 {
		t.Errorf("cycles = %d, want 5 (2+2+1)", s.Cycles)
	}
	if s.MemStalls != 2 {
		t.Errorf("mem stalls = %d, want 2", s.MemStalls)
	}
}

func TestTransfersDoNotStall(t *testing.T) {
	// Delayed jumps keep the pipeline full: a jump costs one cycle like
	// any register instruction.
	m := New(false)
	m.Issue(isa.JMPR)
	m.Issue(isa.ADD) // the shadow-slot instruction
	if got := m.Stats().Cycles; got != 2 {
		t.Errorf("jump+slot = %d cycles, want 2", got)
	}
}

func TestTimelineRecording(t *testing.T) {
	m := New(true)
	m.Issue(isa.ADD)
	m.Issue(isa.LDL)
	out := m.Timeline()
	if !strings.Contains(out, "add") || !strings.Contains(out, "ldl (data access)") {
		t.Errorf("timeline:\n%s", out)
	}
	if !strings.Contains(out, "suspended: memory port busy") {
		t.Errorf("stall not annotated:\n%s", out)
	}
}

func TestEmptyUtilization(t *testing.T) {
	if u := New(false).Stats().Utilization(); u != 0 {
		t.Errorf("empty utilization = %f", u)
	}
}
