// Package pipeline models the RISC I two-stage pipeline from first
// principles: instruction fetch overlaps execution, and the single
// memory port is shared between the two, so a load or store suspends the
// concurrent fetch for one cycle. Taken transfers do not flush anything —
// the delayed-jump rule means the already-fetched next instruction (the
// shadow slot) simply executes.
//
// The package exists both as the paper's timing rationale made
// executable, and as an independent cross-check: feeding it the
// instruction stream of a cpu.CPU run must reproduce the simulator's
// cycle count exactly (see the integration test in internal/cpu).
package pipeline

import (
	"fmt"
	"strings"

	"risc1/internal/isa"
)

// Stats summarizes a pipeline run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	// MemStalls counts cycles the fetch stage sat idle because a load
	// or store owned the memory port.
	MemStalls uint64
}

// Utilization is the fraction of cycles that completed an instruction.
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Event is one cycle of the recorded timeline.
type Event struct {
	Cycle   uint64
	Execute string // instruction completing its execute stage
	Fetch   string // what the fetch stage is doing
}

// Model is the two-stage pipeline.
type Model struct {
	stats  Stats
	record bool
	events []Event
}

// New creates a model; when record is set, a per-cycle timeline is kept
// (use only for short streams — it grows one entry per cycle).
func New(record bool) *Model {
	return &Model{record: record}
}

// Issue advances the pipeline by one instruction of the given opcode.
func (m *Model) Issue(op isa.Opcode) {
	info := op.Info()
	m.stats.Instructions++
	m.stats.Cycles++
	if m.record {
		m.events = append(m.events, Event{
			Cycle:   m.stats.Cycles,
			Execute: info.Name,
			Fetch:   "next instruction",
		})
	}
	if info.MemBytes > 0 {
		// The data access occupies the memory port; the overlapped
		// fetch waits one cycle.
		m.stats.Cycles++
		m.stats.MemStalls++
		if m.record {
			m.events = append(m.events, Event{
				Cycle:   m.stats.Cycles,
				Execute: info.Name + " (data access)",
				Fetch:   "suspended: memory port busy",
			})
		}
	}
}

// Stats returns the accumulated counters.
func (m *Model) Stats() Stats { return m.stats }

// Timeline renders the recorded cycles as a two-column table.
func (m *Model) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s  %-24s %s\n", "cycle", "execute stage", "fetch stage")
	for _, e := range m.events {
		fmt.Fprintf(&b, "%6d  %-24s %s\n", e.Cycle, e.Execute, e.Fetch)
	}
	return b.String()
}
