package isa

import "fmt"

// Cond is one of the 16 jump conditions of RISC I, encoded in the dest
// field of JMP and JMPR. The predicates are evaluated against the four
// condition-code bits Z (zero), N (negative), C (carry), V (overflow)
// that SCC-tagged instructions set.
type Cond uint8

const (
	CondNever  Cond = iota // nev: never taken (effectively a NOP jump)
	CondGT                 // gt:  greater than (signed)
	CondLE                 // le:  less or equal (signed)
	CondGE                 // ge:  greater or equal (signed)
	CondLT                 // lt:  less than (signed)
	CondHI                 // hi:  higher (unsigned)
	CondLOS                // los: lower or same (unsigned)
	CondLO                 // lo:  lower / no carry (unsigned)
	CondHIS                // his: higher or same / carry set (unsigned)
	CondPL                 // pl:  plus (N clear)
	CondMI                 // mi:  minus (N set)
	CondNE                 // ne:  not equal (Z clear)
	CondEQ                 // eq:  equal (Z set)
	CondNV                 // nv:  no overflow (V clear)
	CondV                  // v:   overflow (V set)
	CondAlways             // alw: always taken
	NumConds
)

var condNames = [NumConds]string{
	"nev", "gt", "le", "ge", "lt", "hi", "los", "lo",
	"his", "pl", "mi", "ne", "eq", "nv", "v", "alw",
}

// String returns the condition's assembler suffix (e.g. "eq" in "jmp eq").
func (c Cond) String() string {
	if c < NumConds {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// CondByName maps an assembler condition name to its encoding.
func CondByName(name string) (Cond, bool) {
	for i, n := range condNames {
		if n == name {
			return Cond(i), true
		}
	}
	return 0, false
}

// Flags holds the four RISC I condition-code bits.
type Flags struct {
	Z bool // result was zero
	N bool // result was negative
	C bool // carry out (for SUB: no borrow)
	V bool // signed overflow
}

// Eval reports whether the condition holds under the given flags.
// The signed comparisons use the standard N/V/Z identities; the unsigned
// ones use C/Z, with the subtraction convention that C means "no borrow".
func (c Cond) Eval(f Flags) bool {
	switch c {
	case CondNever:
		return false
	case CondAlways:
		return true
	case CondEQ:
		return f.Z
	case CondNE:
		return !f.Z
	case CondMI:
		return f.N
	case CondPL:
		return !f.N
	case CondV:
		return f.V
	case CondNV:
		return !f.V
	case CondLT:
		return f.N != f.V
	case CondGE:
		return f.N == f.V
	case CondLE:
		return f.Z || f.N != f.V
	case CondGT:
		return !f.Z && f.N == f.V
	case CondLO:
		return !f.C
	case CondHIS:
		return f.C
	case CondLOS:
		return !f.C || f.Z
	case CondHI:
		return f.C && !f.Z
	default:
		return false
	}
}
