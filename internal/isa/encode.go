package isa

import "fmt"

// Inst is a decoded RISC I instruction. Exactly one of the two formats is
// meaningful, selected by Op's Info().Format: short-format instructions
// use Rd/Rs1 and either Rs2 (Imm=false) or Imm13 (Imm=true); long-format
// instructions use Rd and Imm19.
type Inst struct {
	Op  Opcode
	SCC bool // set condition codes from the result

	Rd  uint8 // destination register, or Cond for JMP/JMPR
	Rs1 uint8

	Imm   bool  // short format: s2 is an immediate rather than a register
	Rs2   uint8 // short format, Imm=false
	Imm13 int32 // short format, Imm=true: signed 13-bit immediate

	Imm19 int32 // long format: signed 19-bit immediate
}

// Field widths and limits of the two encodings.
const (
	// Imm13Min..Imm13Max bound the short-format signed immediate.
	Imm13Min = -(1 << 12)
	Imm13Max = 1<<12 - 1
	// Imm19Min..Imm19Max bound the long-format signed immediate.
	Imm19Min = -(1 << 18)
	Imm19Max = 1<<18 - 1
	// InstBytes is the size of every RISC I instruction.
	InstBytes = 4
)

// Cond returns the jump condition carried in the dest field.
func (in Inst) Cond() Cond { return Cond(in.Rd & 0x0f) }

// bit layout (from the top):
//	op: 31..25  scc: 24  dest: 23..19  rs1: 18..14  imm: 13  short2: 12..0
//	long immediate: 18..0

// Encode packs the instruction into its 32-bit machine form. It reports
// an error if a field is out of range for the instruction's format.
func (in Inst) Encode() (uint32, error) {
	info, ok := Lookup(in.Op)
	if !ok {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumVisibleRegs {
		return 0, fmt.Errorf("isa: encode %s: dest register r%d out of range", info.Name, in.Rd)
	}
	w := uint32(in.Op) << 25
	if in.SCC {
		w |= 1 << 24
	}
	w |= uint32(in.Rd) << 19

	if info.Format == FormatLong {
		if in.Imm19 < Imm19Min || in.Imm19 > Imm19Max {
			return 0, fmt.Errorf("isa: encode %s: immediate %d exceeds 19 bits", info.Name, in.Imm19)
		}
		w |= uint32(in.Imm19) & (1<<19 - 1)
		return w, nil
	}

	if in.Rs1 >= NumVisibleRegs {
		return 0, fmt.Errorf("isa: encode %s: source register r%d out of range", info.Name, in.Rs1)
	}
	w |= uint32(in.Rs1) << 14
	if in.Imm {
		if in.Imm13 < Imm13Min || in.Imm13 > Imm13Max {
			return 0, fmt.Errorf("isa: encode %s: immediate %d exceeds 13 bits", info.Name, in.Imm13)
		}
		w |= 1 << 13
		w |= uint32(in.Imm13) & (1<<13 - 1)
		return w, nil
	}
	if in.Rs2 >= NumVisibleRegs {
		return 0, fmt.Errorf("isa: encode %s: source register r%d out of range", info.Name, in.Rs2)
	}
	w |= uint32(in.Rs2)
	return w, nil
}

// Decode unpacks a 32-bit machine word. It reports an error for an
// unassigned opcode; all field values are otherwise legal by construction.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> 25)
	info, ok := Lookup(op)
	if !ok {
		return Inst{}, fmt.Errorf("isa: decode: illegal opcode %d in word %#08x", op, w)
	}
	in := Inst{
		Op:  op,
		SCC: w&(1<<24) != 0,
		Rd:  uint8(w >> 19 & 0x1f),
	}
	if info.Format == FormatLong {
		in.Imm19 = signExtend(w&(1<<19-1), 19)
		return in, nil
	}
	in.Rs1 = uint8(w >> 14 & 0x1f)
	if w&(1<<13) != 0 {
		in.Imm = true
		in.Imm13 = signExtend(w&(1<<13-1), 13)
	} else {
		in.Rs2 = uint8(w & 0x1f)
	}
	return in, nil
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// String disassembles the instruction into canonical assembler syntax.
func (in Inst) String() string {
	info, ok := Lookup(in.Op)
	if !ok {
		return fmt.Sprintf(".word %#08x", uint32(in.Op)<<25)
	}
	name := info.Name
	if in.SCC {
		name += "."
	}
	s2 := func() string {
		if in.Imm {
			return fmt.Sprintf("%d", in.Imm13)
		}
		return RegName(in.Rs2)
	}
	switch {
	case info.Cond:
		if info.Format == FormatLong {
			return fmt.Sprintf("%s %s, %d", name, in.Cond(), in.Imm19)
		}
		return fmt.Sprintf("%s %s, %s, %s", name, in.Cond(), RegName(in.Rs1), s2())
	case info.Format == FormatLong:
		return fmt.Sprintf("%s %s, %d", name, RegName(in.Rd), in.Imm19)
	case info.Store:
		return fmt.Sprintf("%s %s, %s, %s", name, RegName(in.Rd), RegName(in.Rs1), s2())
	case in.Op == PUTPSW:
		return fmt.Sprintf("%s %s, %s", name, RegName(in.Rs1), s2())
	case in.Op == GETPSW || in.Op == GTLPC:
		return fmt.Sprintf("%s %s", name, RegName(in.Rd))
	case in.Op == RET || in.Op == RETINT:
		return fmt.Sprintf("%s %s, %s", name, RegName(in.Rd), s2())
	default:
		return fmt.Sprintf("%s %s, %s, %s", name, RegName(in.Rd), RegName(in.Rs1), s2())
	}
}
