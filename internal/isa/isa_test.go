package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInstructionCount(t *testing.T) {
	if NumInstructions != 31 {
		t.Fatalf("RISC I has 31 instructions, got %d", NumInstructions)
	}
	if got := len(Instructions()); got != 31 {
		t.Fatalf("Instructions() returned %d entries, want 31", got)
	}
}

func TestClassCounts(t *testing.T) {
	counts := map[Class]int{}
	for _, info := range Instructions() {
		counts[info.Class]++
	}
	want := map[Class]int{ClassALU: 12, ClassMem: 8, ClassCtrl: 7, ClassMisc: 4}
	for class, n := range want {
		if counts[class] != n {
			t.Errorf("class %v: got %d instructions, want %d", class, counts[class], n)
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, info := range Instructions() {
		op, ok := ByName(info.Name)
		if !ok || op != info.Op {
			t.Errorf("ByName(%q) = %v, %v; want %v, true", info.Name, op, ok, info.Op)
		}
	}
	if _, ok := ByName("mul"); ok {
		t.Error("RISC I has no multiply instruction, but ByName found one")
	}
}

func TestLookupInvalid(t *testing.T) {
	if _, ok := Lookup(opInvalid); ok {
		t.Error("Lookup(0) should fail")
	}
	if _, ok := Lookup(numOpcodes); ok {
		t.Error("Lookup(numOpcodes) should fail")
	}
	if Opcode(0).Valid() {
		t.Error("opcode 0 must be invalid")
	}
}

func TestEncodeDecodeExamples(t *testing.T) {
	cases := []Inst{
		{Op: ADD, Rd: 5, Rs1: 6, Rs2: 7},
		{Op: ADD, SCC: true, Rd: 5, Rs1: 6, Imm: true, Imm13: -1},
		{Op: SUB, SCC: true, Rd: 0, Rs1: 31, Imm: true, Imm13: Imm13Max},
		{Op: SUB, Rd: 1, Rs1: 2, Imm: true, Imm13: Imm13Min},
		{Op: LDL, Rd: 16, Rs1: 30, Imm: true, Imm13: 8},
		{Op: STB, Rd: 10, Rs1: 17, Rs2: 18},
		{Op: JMP, Rd: uint8(CondEQ), Rs1: 3, Imm: true, Imm13: 0},
		{Op: JMPR, Rd: uint8(CondAlways), Imm19: -1024},
		{Op: CALLR, Rd: 25, Imm19: Imm19Max},
		{Op: LDHI, Rd: 9, Imm19: Imm19Min},
		{Op: RET, Rd: 26, Imm: true, Imm13: 0},
		{Op: GETPSW, Rd: 4},
	}
	for _, in := range cases {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %#08x: %v", w, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: opInvalid},
		{Op: ADD, Rd: 32},
		{Op: ADD, Rd: 1, Rs1: 32},
		{Op: ADD, Rd: 1, Rs1: 1, Rs2: 32},
		{Op: ADD, Rd: 1, Rs1: 1, Imm: true, Imm13: Imm13Max + 1},
		{Op: ADD, Rd: 1, Rs1: 1, Imm: true, Imm13: Imm13Min - 1},
		{Op: LDHI, Rd: 1, Imm19: Imm19Max + 1},
		{Op: LDHI, Rd: 1, Imm19: Imm19Min - 1},
	}
	for _, in := range bad {
		if _, err := in.Encode(); err == nil {
			t.Errorf("encode %+v: expected error", in)
		}
	}
}

func TestDecodeIllegalOpcode(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("decoding word 0 should fail (opcode 0 unassigned)")
	}
	if _, err := Decode(uint32(numOpcodes) << 25); err == nil {
		t.Error("decoding out-of-range opcode should fail")
	}
}

// randomInst builds a canonically-valid random instruction for the
// round-trip property.
func randomInst(r *rand.Rand) Inst {
	ops := Instructions()
	info := ops[r.Intn(len(ops))]
	in := Inst{Op: info.Op, SCC: r.Intn(2) == 0, Rd: uint8(r.Intn(32))}
	if info.Format == FormatLong {
		in.Imm19 = int32(r.Intn(Imm19Max-Imm19Min+1)) + Imm19Min
		return in
	}
	in.Rs1 = uint8(r.Intn(32))
	if r.Intn(2) == 0 {
		in.Imm = true
		in.Imm13 = int32(r.Intn(Imm13Max-Imm13Min+1)) + Imm13Min
	} else {
		in.Rs2 = uint8(r.Intn(32))
	}
	return in
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInst(r)
		w, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeEncodeFixpoint(t *testing.T) {
	// For any word that decodes successfully, re-encoding the decoded
	// instruction must reproduce the word exactly (unused fields are
	// zero in canonical encodings, so restrict fuzzing to canonical
	// words built by Encode — covered above — plus direct bit patterns
	// whose unused bits are clear).
	f := func(raw uint32) bool {
		in, err := Decode(raw)
		if err != nil {
			return true // illegal opcodes are allowed to fail
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		// Mask out bits that are dont-care in the original word.
		info := in.Op.Info()
		var mask uint32 = 0xffffffff
		if info.Format == FormatShort && raw&(1<<13) == 0 {
			mask = ^uint32(0x1fe0) // bits 12..5 unused when s2 is a register
		}
		return w&mask == raw&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		f    Flags
		want bool
	}{
		{CondNever, Flags{Z: true, N: true, C: true, V: true}, false},
		{CondAlways, Flags{}, true},
		{CondEQ, Flags{Z: true}, true},
		{CondEQ, Flags{}, false},
		{CondNE, Flags{Z: true}, false},
		{CondLT, Flags{N: true}, true},
		{CondLT, Flags{N: true, V: true}, false},
		{CondGE, Flags{N: true, V: true}, true},
		{CondGT, Flags{}, true},
		{CondGT, Flags{Z: true}, false},
		{CondLE, Flags{Z: true}, true},
		{CondHI, Flags{C: true}, true},
		{CondHI, Flags{C: true, Z: true}, false},
		{CondLOS, Flags{Z: true}, true},
		{CondLO, Flags{}, true},
		{CondLO, Flags{C: true}, false},
		{CondHIS, Flags{C: true}, true},
		{CondMI, Flags{N: true}, true},
		{CondPL, Flags{N: true}, false},
		{CondV, Flags{V: true}, true},
		{CondNV, Flags{V: true}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.f); got != tc.want {
			t.Errorf("%v.Eval(%+v) = %v, want %v", tc.c, tc.f, got, tc.want)
		}
	}
}

func TestCondComplements(t *testing.T) {
	// Each condition and its complement must partition every flag state.
	pairs := [][2]Cond{
		{CondEQ, CondNE}, {CondLT, CondGE}, {CondGT, CondLE},
		{CondHI, CondLOS}, {CondLO, CondHIS}, {CondMI, CondPL},
		{CondV, CondNV}, {CondNever, CondAlways},
	}
	for z := 0; z < 2; z++ {
		for n := 0; n < 2; n++ {
			for c := 0; c < 2; c++ {
				for v := 0; v < 2; v++ {
					f := Flags{Z: z == 1, N: n == 1, C: c == 1, V: v == 1}
					for _, p := range pairs {
						if p[0].Eval(f) == p[1].Eval(f) {
							t.Errorf("conditions %v and %v agree under %+v", p[0], p[1], f)
						}
					}
				}
			}
		}
	}
}

func TestCondNames(t *testing.T) {
	for c := Cond(0); c < NumConds; c++ {
		got, ok := CondByName(c.String())
		if !ok || got != c {
			t.Errorf("CondByName(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := CondByName("bogus"); ok {
		t.Error("CondByName should reject unknown names")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: SUB, SCC: true, Rd: 1, Rs1: 2, Imm: true, Imm13: -4}, "sub. r1, r2, -4"},
		{Inst{Op: STL, Rd: 10, Rs1: 30, Imm: true, Imm13: 8}, "stl r10, r30, 8"},
		{Inst{Op: JMP, Rd: uint8(CondEQ), Rs1: 5, Imm: true, Imm13: 0}, "jmp eq, r5, 0"},
		{Inst{Op: JMPR, Rd: uint8(CondAlways), Imm19: 12}, "jmpr alw, 12"},
		{Inst{Op: LDHI, Rd: 7, Imm19: 100}, "ldhi r7, 100"},
		{Inst{Op: RET, Rd: 26, Imm: true, Imm13: 0}, "ret r26, 0"},
		{Inst{Op: GETPSW, Rd: 3}, "getpsw r3"},
		{Inst{Op: PUTPSW, Rs1: 3, Imm: true, Imm13: 0}, "putpsw r3, 0"},
		{Inst{Op: CALLR, Rd: 25, Imm19: 40}, "callr r25, 40"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("disasm: got %q, want %q", got, tc.want)
		}
	}
}

func TestSemanticsDocumented(t *testing.T) {
	for _, info := range Instructions() {
		if strings.TrimSpace(info.Semantic) == "" {
			t.Errorf("%s: missing semantics for the instruction-set table", info.Name)
		}
		if info.Cycles < 1 {
			t.Errorf("%s: cycle count must be at least 1", info.Name)
		}
		if info.Class == ClassMem && info.MemBytes == 0 {
			t.Errorf("%s: memory instruction without transfer size", info.Name)
		}
	}
}
