// Package isa defines the RISC I instruction set architecture: the 31
// instructions of the Berkeley RISC I processor (Patterson & Séquin,
// ISCA 1981), their two 32-bit encodings, condition codes, and the
// metadata needed to reproduce the paper's instruction-set table.
//
// All instructions are exactly 32 bits. There are two formats:
//
//	short:  op(7) | scc(1) | dest(5) | rs1(5) | imm(1) | short2(13)
//	long:   op(7) | scc(1) | dest(5) | imm19(19)
//
// In the short format, short2 is either a second source register (imm=0)
// or a sign-extended 13-bit immediate (imm=1). The long format carries a
// 19-bit immediate used by LDHI and the PC-relative CALLR/JMPR.
// Conditional jumps (JMP, JMPR) reuse the dest field to encode one of 16
// conditions.
package isa

import "fmt"

// Opcode identifies one of the 31 RISC I instructions. The zero value is
// not a valid opcode so that an uninitialized Inst is detectably invalid.
type Opcode uint8

// The RISC I instruction set. Grouped exactly as the paper groups them:
// arithmetic/logic (12), memory access (8), control transfer (7), and
// miscellaneous (4).
const (
	opInvalid Opcode = iota

	// Arithmetic and logic. All operate on registers (or a short
	// immediate second operand) and optionally set the condition codes.
	ADD   // rd = rs1 + s2
	ADDC  // rd = rs1 + s2 + carry
	SUB   // rd = rs1 - s2
	SUBC  // rd = rs1 - s2 - borrow
	SUBR  // rd = s2 - rs1 (reverse subtract)
	SUBCR // rd = s2 - rs1 - borrow
	AND   // rd = rs1 & s2
	OR    // rd = rs1 | s2
	XOR   // rd = rs1 ^ s2
	SLL   // rd = rs1 << s2
	SRL   // rd = rs1 >> s2 (logical)
	SRA   // rd = rs1 >> s2 (arithmetic)

	// Memory access: the only instructions that touch memory.
	// Effective address is rs1 + s2 (index + displacement).
	LDL  // load 32-bit word
	LDSU // load 16-bit halfword, zero-extended
	LDSS // load 16-bit halfword, sign-extended
	LDBU // load byte, zero-extended
	LDBS // load byte, sign-extended
	STL  // store 32-bit word
	STS  // store 16-bit halfword
	STB  // store byte

	// Control transfer. All jumps are delayed: the next sequential
	// instruction executes before the transfer takes effect.
	JMP     // conditional jump to rs1 + s2
	JMPR    // conditional PC-relative jump, PC + imm19
	CALL    // rd = PC; advance register window; jump to rs1 + s2
	CALLR   // rd = PC; advance window; jump to PC + imm19
	RET     // retreat window; jump to rd + s2 (rd holds return PC)
	CALLINT // disable interrupts, advance window (trap entry)
	RETINT  // enable interrupts, retreat window (trap exit)

	// Miscellaneous.
	LDHI   // rd = imm19 << 13 (build 32-bit constants with OR)
	GTLPC  // rd = last PC (restart support after interrupted delayed jump)
	GETPSW // rd = processor status word
	PUTPSW // PSW = rs1 + s2

	numOpcodes
)

// NumInstructions is the size of the RISC I instruction set — the paper's
// headline count of 31.
const NumInstructions = int(numOpcodes) - 1

// Format distinguishes the two 32-bit instruction encodings.
type Format uint8

const (
	// FormatShort is op|scc|dest|rs1|imm|short2.
	FormatShort Format = iota
	// FormatLong is op|scc|dest|imm19.
	FormatLong
)

// Class groups instructions the way the paper's evaluation does when it
// reports dynamic instruction mixes.
type Class uint8

const (
	ClassALU  Class = iota // arithmetic, logic, shifts
	ClassMem               // loads and stores
	ClassCtrl              // jumps, calls, returns
	ClassMisc              // PSW and PC access, LDHI
)

// String returns the mix-table heading for the class.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMem:
		return "memory"
	case ClassCtrl:
		return "control"
	default:
		return "misc"
	}
}

// Info describes one instruction for assemblers, disassemblers and the
// instruction-set table of the paper.
type Info struct {
	Op       Opcode
	Name     string // assembler mnemonic, lower case
	Format   Format
	Class    Class
	Semantic string // one-line semantics as printed in the paper's table
	// Cycles is the register-file cycle count: 1 for everything except
	// memory access, which needs an extra cycle for the data access
	// because the single memory port is shared with instruction fetch.
	Cycles int
	// MemBytes is the data transfer size for loads/stores, 0 otherwise.
	MemBytes int
	// Store marks memory-writing instructions.
	Store bool
	// Cond marks instructions whose dest field holds a jump condition.
	Cond bool
	// WindowDelta is +1 for window-advancing calls, -1 for returns.
	WindowDelta int
}

var infos = [numOpcodes]Info{
	ADD:   {Name: "add", Class: ClassALU, Semantic: "rd := rs1 + s2", Cycles: 1},
	ADDC:  {Name: "addc", Class: ClassALU, Semantic: "rd := rs1 + s2 + carry", Cycles: 1},
	SUB:   {Name: "sub", Class: ClassALU, Semantic: "rd := rs1 - s2", Cycles: 1},
	SUBC:  {Name: "subc", Class: ClassALU, Semantic: "rd := rs1 - s2 - borrow", Cycles: 1},
	SUBR:  {Name: "subr", Class: ClassALU, Semantic: "rd := s2 - rs1", Cycles: 1},
	SUBCR: {Name: "subcr", Class: ClassALU, Semantic: "rd := s2 - rs1 - borrow", Cycles: 1},
	AND:   {Name: "and", Class: ClassALU, Semantic: "rd := rs1 & s2", Cycles: 1},
	OR:    {Name: "or", Class: ClassALU, Semantic: "rd := rs1 | s2", Cycles: 1},
	XOR:   {Name: "xor", Class: ClassALU, Semantic: "rd := rs1 xor s2", Cycles: 1},
	SLL:   {Name: "sll", Class: ClassALU, Semantic: "rd := rs1 << s2", Cycles: 1},
	SRL:   {Name: "srl", Class: ClassALU, Semantic: "rd := rs1 >> s2 (logical)", Cycles: 1},
	SRA:   {Name: "sra", Class: ClassALU, Semantic: "rd := rs1 >> s2 (arith)", Cycles: 1},

	LDL:  {Name: "ldl", Class: ClassMem, Semantic: "rd := M[rs1+s2] (word)", Cycles: 2, MemBytes: 4},
	LDSU: {Name: "ldsu", Class: ClassMem, Semantic: "rd := M[rs1+s2] (half, unsigned)", Cycles: 2, MemBytes: 2},
	LDSS: {Name: "ldss", Class: ClassMem, Semantic: "rd := M[rs1+s2] (half, signed)", Cycles: 2, MemBytes: 2},
	LDBU: {Name: "ldbu", Class: ClassMem, Semantic: "rd := M[rs1+s2] (byte, unsigned)", Cycles: 2, MemBytes: 1},
	LDBS: {Name: "ldbs", Class: ClassMem, Semantic: "rd := M[rs1+s2] (byte, signed)", Cycles: 2, MemBytes: 1},
	STL:  {Name: "stl", Class: ClassMem, Semantic: "M[rs1+s2] := rd (word)", Cycles: 2, MemBytes: 4, Store: true},
	STS:  {Name: "sts", Class: ClassMem, Semantic: "M[rs1+s2] := rd (half)", Cycles: 2, MemBytes: 2, Store: true},
	STB:  {Name: "stb", Class: ClassMem, Semantic: "M[rs1+s2] := rd (byte)", Cycles: 2, MemBytes: 1, Store: true},

	JMP:     {Name: "jmp", Class: ClassCtrl, Semantic: "if cond then PC := rs1+s2 (delayed)", Cycles: 1, Cond: true},
	JMPR:    {Name: "jmpr", Format: FormatLong, Class: ClassCtrl, Semantic: "if cond then PC := PC+imm19 (delayed)", Cycles: 1, Cond: true},
	CALL:    {Name: "call", Class: ClassCtrl, Semantic: "rd := PC; CWP++; PC := rs1+s2 (delayed)", Cycles: 1, WindowDelta: 1},
	CALLR:   {Name: "callr", Format: FormatLong, Class: ClassCtrl, Semantic: "rd := PC; CWP++; PC := PC+imm19 (delayed)", Cycles: 1, WindowDelta: 1},
	RET:     {Name: "ret", Class: ClassCtrl, Semantic: "PC := rd+s2; CWP-- (delayed)", Cycles: 1, WindowDelta: -1},
	CALLINT: {Name: "callint", Class: ClassCtrl, Semantic: "rd := last PC; CWP++; disable interrupts", Cycles: 1, WindowDelta: 1},
	RETINT:  {Name: "retint", Class: ClassCtrl, Semantic: "PC := rd+s2; CWP++... enable interrupts", Cycles: 1, WindowDelta: -1},

	LDHI:   {Name: "ldhi", Format: FormatLong, Class: ClassMisc, Semantic: "rd := imm19 << 13", Cycles: 1},
	GTLPC:  {Name: "gtlpc", Class: ClassMisc, Semantic: "rd := last PC", Cycles: 1},
	GETPSW: {Name: "getpsw", Class: ClassMisc, Semantic: "rd := PSW", Cycles: 1},
	PUTPSW: {Name: "putpsw", Class: ClassMisc, Semantic: "PSW := rs1+s2", Cycles: 1},
}

func init() {
	for op := opInvalid + 1; op < numOpcodes; op++ {
		infos[op].Op = op
		if infos[op].Name == "" {
			panic(fmt.Sprintf("isa: opcode %d missing metadata", op))
		}
	}
	infos[RETINT].Semantic = "PC := rd+s2; CWP--; enable interrupts"
}

// Lookup returns the Info for op, or ok=false for an invalid opcode.
func Lookup(op Opcode) (Info, bool) {
	if op <= opInvalid || op >= numOpcodes {
		return Info{}, false
	}
	return infos[op], true
}

// Valid reports whether op names a real instruction.
func (op Opcode) Valid() bool { return op > opInvalid && op < numOpcodes }

// Info returns the instruction metadata; it panics on an invalid opcode,
// which always indicates a programming error rather than bad input.
func (op Opcode) Info() Info {
	info, ok := Lookup(op)
	if !ok {
		panic(fmt.Sprintf("isa: invalid opcode %d", op))
	}
	return info
}

// String returns the assembler mnemonic.
func (op Opcode) String() string {
	if info, ok := Lookup(op); ok {
		return info.Name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ByName maps an assembler mnemonic (lower case) to its opcode.
func ByName(name string) (Opcode, bool) {
	op, ok := byName[name]
	return op, ok
}

var byName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumInstructions)
	for op := opInvalid + 1; op < numOpcodes; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// Instructions returns metadata for the whole instruction set in the
// paper's presentation order, for regenerating the instruction-set table.
func Instructions() []Info {
	out := make([]Info, 0, NumInstructions)
	for op := opInvalid + 1; op < numOpcodes; op++ {
		out = append(out, infos[op])
	}
	return out
}

// Register file geometry visible to one procedure: registers r0..r31.
// These boundaries are the paper's window organization.
const (
	NumVisibleRegs = 32
	// GlobalEnd is one past the last global register (r0..r9).
	GlobalEnd = 10
	// LowStart..LowEnd-1 are the outgoing-parameter registers (r10..r15),
	// shared with the callee's HIGH registers.
	LowStart = 10
	LowEnd   = 16
	// LocalStart..LocalEnd-1 are the private locals (r16..r25).
	LocalStart = 16
	LocalEnd   = 26
	// HighStart..HighEnd-1 are the incoming-parameter registers
	// (r26..r31), shared with the caller's LOW registers.
	HighStart = 26
	HighEnd   = 32
)

// RegName returns the conventional assembler name for visible register r.
func RegName(r uint8) string { return fmt.Sprintf("r%d", r) }
