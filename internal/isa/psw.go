package isa

// Processor status word layout (simulator-defined; the 1981 paper leaves
// the PSW encoding to the implementation). The low bits carry the four
// condition codes and the interrupt-enable flag; bits 8..12 report the
// current window pointer. The CWP field is READ-ONLY through PUTPSW:
// hardware changes it only via CALL/RET/CALLINT/RETINT, and the CPU
// faults on an attempt to write a different value rather than silently
// dropping it.
const (
	PSWZ         uint32 = 1 << 0 // zero
	PSWN         uint32 = 1 << 1 // negative
	PSWC         uint32 = 1 << 2 // carry (for SUB: no borrow)
	PSWV         uint32 = 1 << 3 // signed overflow
	PSWIntEnable uint32 = 1 << 4 // interrupts enabled

	// PSWCWPShift/PSWCWPBits locate the read-only CWP field (bits 8..12).
	PSWCWPShift        = 8
	PSWCWPBits  uint32 = 0x1f
)

// PSWFlagBits masks the four condition-code bits.
const PSWFlagBits = PSWZ | PSWN | PSWC | PSWV

// PSW packs the condition codes into their PSW bit positions.
func (f Flags) PSW() uint32 {
	var w uint32
	if f.Z {
		w |= PSWZ
	}
	if f.N {
		w |= PSWN
	}
	if f.C {
		w |= PSWC
	}
	if f.V {
		w |= PSWV
	}
	return w
}

// FlagsFromPSW extracts the condition codes from a PSW value.
func FlagsFromPSW(w uint32) Flags {
	return Flags{
		Z: w&PSWZ != 0,
		N: w&PSWN != 0,
		C: w&PSWC != 0,
		V: w&PSWV != 0,
	}
}

// PSWCWP extracts the read-only CWP field from a PSW value.
func PSWCWP(w uint32) int { return int(w >> PSWCWPShift & PSWCWPBits) }
