package isa_test

import (
	"fmt"

	"risc1/internal/isa"
)

// ExampleDecode shows decoding a 32-bit RISC I instruction word.
func ExampleDecode() {
	in := isa.Inst{Op: isa.ADD, SCC: true, Rd: 1, Rs1: 2, Imm: true, Imm13: -4}
	word, _ := in.Encode()
	back, _ := isa.Decode(word)
	fmt.Println(back)
	// Output: add. r1, r2, -4
}

// ExampleCond_Eval evaluates a branch condition against condition codes.
func ExampleCond_Eval() {
	flags := isa.Flags{Z: false, N: true, V: false}
	fmt.Println(isa.CondLT.Eval(flags), isa.CondGE.Eval(flags))
	// Output: true false
}
