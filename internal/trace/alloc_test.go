package trace

import "testing"

// TestExecHandleAllocFree pins the fast path's contract: recording an
// instruction through a pre-registered handle allocates nothing. Both
// simulators call ExecHandle once per simulated instruction, so a
// single allocation here would show up as millions per run.
func TestExecHandleAllocFree(t *testing.T) {
	c := New()
	h := c.Handle("add", "alu")
	allocs := testing.AllocsPerRun(1000, func() {
		c.ExecHandle(h, 1)
	})
	if allocs != 0 {
		t.Errorf("ExecHandle allocates %.1f objects per call, want 0", allocs)
	}
}

// TestExecHandleMergesWithExec asserts the fast and slow paths land in
// the same tables.
func TestExecHandleMergesWithExec(t *testing.T) {
	c := New()
	h := c.Handle("add", "alu")
	c.ExecHandle(h, 1)
	c.Exec("add", "alu", 1)
	ops := c.OpCounts()
	if len(ops) != 1 || ops[0].Name != "add" || ops[0].Count != 2 {
		t.Errorf("OpCounts = %+v, want one add row with count 2", ops)
	}
	mix := c.Mix()
	if len(mix) != 1 || mix[0].Name != "alu" || mix[0].Count != 2 {
		t.Errorf("Mix = %+v, want one alu row with count 2", mix)
	}
}

// BenchmarkExecHandle measures the per-instruction accounting cost; run
// with -benchmem to see the zero-allocation guarantee.
func BenchmarkExecHandle(b *testing.B) {
	c := New()
	h := c.Handle("add", "alu")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ExecHandle(h, 1)
	}
}

// BenchmarkExec is the map-backed slow path, for comparison.
func BenchmarkExec(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Exec("add", "alu", 1)
	}
}
