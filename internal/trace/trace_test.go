package trace

import "testing"

func TestExecAccumulates(t *testing.T) {
	c := New()
	c.Exec("add", "alu", 1)
	c.Exec("add", "alu", 1)
	c.Exec("ldl", "memory", 2)
	if c.Instructions != 3 || c.Cycles != 4 {
		t.Errorf("instructions=%d cycles=%d", c.Instructions, c.Cycles)
	}
	c.AddCycles(10)
	if c.Cycles != 14 {
		t.Errorf("AddCycles: %d", c.Cycles)
	}
}

func TestMixOrderingAndFractions(t *testing.T) {
	c := New()
	for i := 0; i < 7; i++ {
		c.Exec("add", "alu", 1)
	}
	for i := 0; i < 3; i++ {
		c.Exec("ldl", "memory", 2)
	}
	mix := c.Mix()
	if len(mix) != 2 || mix[0].Name != "alu" || mix[1].Name != "memory" {
		t.Fatalf("mix = %+v", mix)
	}
	if mix[0].Frac != 0.7 || mix[1].Frac != 0.3 {
		t.Errorf("fractions = %v %v", mix[0].Frac, mix[1].Frac)
	}
	ops := c.OpCounts()
	if ops[0].Name != "add" || ops[0].Count != 7 {
		t.Errorf("op counts = %+v", ops)
	}
}

func TestMixTiesSortByName(t *testing.T) {
	c := New()
	c.Exec("b", "x", 1)
	c.Exec("a", "y", 1)
	ops := c.OpCounts()
	if ops[0].Name != "a" || ops[1].Name != "b" {
		t.Errorf("ties should sort by name: %+v", ops)
	}
}

func TestDepthHistogram(t *testing.T) {
	c := New()
	c.Depth(1)
	c.Depth(2)
	c.Depth(2)
	c.Depth(5)
	if c.MaxDepth() != 5 {
		t.Errorf("max depth = %d", c.MaxDepth())
	}
	h := c.DepthHistogram()
	if len(h) != 6 || h[1] != 1 || h[2] != 2 || h[5] != 1 || h[3] != 0 {
		t.Errorf("histogram = %v", h)
	}
}

func TestNegativeDepthIgnoredInHistogram(t *testing.T) {
	c := New()
	c.Depth(-1)
	c.Depth(0)
	h := c.DepthHistogram()
	if len(h) != 1 || h[0] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Exec("add", "alu", 1)
	c.Depth(3)
	c.Reset()
	if c.Instructions != 0 || c.Cycles != 0 || c.MaxDepth() != 0 {
		t.Error("Reset incomplete")
	}
	if len(c.Mix()) != 0 || len(c.OpCounts()) != 0 {
		t.Error("Reset left mixes behind")
	}
}

func TestEmptyCollector(t *testing.T) {
	c := New()
	if len(c.Mix()) != 0 {
		t.Error("empty mix expected")
	}
	if h := c.DepthHistogram(); len(h) != 1 || h[0] != 0 {
		t.Errorf("empty histogram = %v", h)
	}
}

func TestHandleFastPath(t *testing.T) {
	c := New()
	add := c.Handle("add", "alu")
	ldl := c.Handle("ldl", "memory")
	for i := 0; i < 5; i++ {
		c.ExecHandle(add, 1)
	}
	c.ExecHandle(ldl, 2)
	c.Exec("xor", "alu", 1) // the slow path merges with handles
	if c.Instructions != 7 || c.Cycles != 8 {
		t.Errorf("instructions=%d cycles=%d", c.Instructions, c.Cycles)
	}
	mix := c.Mix()
	if len(mix) != 2 || mix[0].Name != "alu" || mix[0].Count != 6 {
		t.Errorf("mix = %+v", mix)
	}
	ops := c.OpCounts()
	if ops[0].Name != "add" || ops[0].Count != 5 {
		t.Errorf("ops = %+v", ops)
	}
	// Reset keeps handles valid with zeroed counts.
	c.Reset()
	c.ExecHandle(add, 1)
	if c.Instructions != 1 || c.OpCounts()[0].Count != 1 {
		t.Errorf("handle after reset: %+v", c.OpCounts())
	}
}
