// Package trace collects dynamic execution statistics shared by the
// RISC I simulator and the CISC baseline: instruction counts, cycle
// counts, per-opcode and per-class mixes, and the call-depth histogram
// behind the paper's register-window experiments.
package trace

import (
	"fmt"
	"sort"
)

// Collector accumulates execution statistics. Opcode and class names are
// strings so that machines with different instruction sets can share the
// reporting code. Hot simulators should register a Handle per opcode once
// and use ExecHandle per instruction; Exec remains for occasional events.
type Collector struct {
	Instructions uint64
	Cycles       uint64

	ops     map[string]uint64
	classes map[string]uint64

	handles []handleCounter

	depthHist map[int]uint64
	maxDepth  int
}

type handleCounter struct {
	op, class string
	n         uint64
}

// Handle pre-registers an (opcode, class) pair and returns an index for
// ExecHandle. Handles survive Reset (their counts are zeroed).
func (c *Collector) Handle(op, class string) int {
	c.handles = append(c.handles, handleCounter{op: op, class: class})
	return len(c.handles) - 1
}

// ExecHandle records one executed instruction through a pre-registered
// handle — the allocation- and hash-free fast path. It is three integer
// increments and stays allocation-free by contract; the alloc test and
// BenchmarkExecHandle in this package enforce it, and both simulators'
// per-instruction accounting depends on it.
func (c *Collector) ExecHandle(h int, cycles uint64) {
	c.Instructions++
	c.Cycles += cycles
	c.handles[h].n++
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		ops:       make(map[string]uint64),
		classes:   make(map[string]uint64),
		depthHist: make(map[int]uint64),
	}
}

// Exec records one executed instruction of the given opcode and class
// costing the given number of cycles. This is the map-backed slow path:
// it hashes both strings on every call, so it is for occasional events
// and ad-hoc tools only. Per-instruction recording in a simulator loop
// should register a Handle per opcode once and call ExecHandle; the two
// paths merge in Mix/OpCounts, so mixing them stays correct.
func (c *Collector) Exec(op, class string, cycles uint64) {
	c.Instructions++
	c.Cycles += cycles
	c.ops[op]++
	c.classes[class]++
}

// AddCycles records cycles not attributable to an instruction (e.g.
// window overflow trap overhead).
func (c *Collector) AddCycles(n uint64) { c.Cycles += n }

// Depth records that an activation began at the given call depth.
func (c *Collector) Depth(d int) {
	c.depthHist[d]++
	if d > c.maxDepth {
		c.maxDepth = d
	}
}

// MaxDepth returns the deepest call depth recorded.
func (c *Collector) MaxDepth() int { return c.maxDepth }

// DepthHistogram returns call counts indexed by depth, 0..MaxDepth.
func (c *Collector) DepthHistogram() []uint64 {
	out := make([]uint64, c.maxDepth+1)
	for d, n := range c.depthHist {
		if d >= 0 && d <= c.maxDepth {
			out[d] = n
		}
	}
	return out
}

// Share is one row of a frequency table.
type Share struct {
	Name  string
	Count uint64
	Frac  float64 // of total instructions
}

// Mix returns the dynamic class mix, largest first — the paper's
// instruction-mix table.
func (c *Collector) Mix() []Share { return c.shares(c.classes, true) }

// OpCounts returns per-opcode dynamic counts, largest first.
func (c *Collector) OpCounts() []Share { return c.shares(c.ops, false) }

func (c *Collector) shares(m map[string]uint64, byClass bool) []Share {
	merged := make(map[string]uint64, len(m)+len(c.handles))
	for k, v := range m {
		merged[k] = v
	}
	for _, h := range c.handles {
		if h.n == 0 {
			continue
		}
		if byClass {
			merged[h.class] += h.n
		} else {
			merged[h.op] += h.n
		}
	}
	m = merged
	out := make([]Share, 0, len(m))
	for name, n := range m {
		s := Share{Name: name, Count: n}
		if c.Instructions > 0 {
			s.Frac = float64(n) / float64(c.Instructions)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Clone returns a deep copy of the collector: counters, per-handle
// counts, maps and the depth histogram. Handle indices stay valid on
// the clone. Machine snapshots and forks use it.
func (c *Collector) Clone() *Collector {
	n := &Collector{
		Instructions: c.Instructions,
		Cycles:       c.Cycles,
		ops:          make(map[string]uint64, len(c.ops)),
		classes:      make(map[string]uint64, len(c.classes)),
		handles:      append([]handleCounter(nil), c.handles...),
		depthHist:    make(map[int]uint64, len(c.depthHist)),
		maxDepth:     c.maxDepth,
	}
	for k, v := range c.ops {
		n.ops[k] = v
	}
	for k, v := range c.classes {
		n.classes[k] = v
	}
	for k, v := range c.depthHist {
		n.depthHist[k] = v
	}
	return n
}

// CopyFrom overwrites this collector's statistics with src's, in place,
// so holders of the *Collector pointer observe the restored state. Both
// collectors must have registered the same handles (same machine type);
// it panics otherwise.
func (c *Collector) CopyFrom(src *Collector) {
	if len(c.handles) != len(src.handles) {
		panic(fmt.Sprintf("trace: copy between collectors with %d and %d handles", len(src.handles), len(c.handles)))
	}
	c.Instructions = src.Instructions
	c.Cycles = src.Cycles
	copy(c.handles, src.handles)
	c.ops = make(map[string]uint64, len(src.ops))
	for k, v := range src.ops {
		c.ops[k] = v
	}
	c.classes = make(map[string]uint64, len(src.classes))
	for k, v := range src.classes {
		c.classes[k] = v
	}
	c.depthHist = make(map[int]uint64, len(src.depthHist))
	for k, v := range src.depthHist {
		c.depthHist[k] = v
	}
	c.maxDepth = src.maxDepth
}

// Reset clears all statistics. Registered handles remain valid with
// their counts zeroed.
func (c *Collector) Reset() {
	c.Instructions = 0
	c.Cycles = 0
	c.ops = make(map[string]uint64)
	c.classes = make(map[string]uint64)
	for i := range c.handles {
		c.handles[i].n = 0
	}
	c.depthHist = make(map[int]uint64)
	c.maxDepth = 0
}
