// Package peer is the scale-out layer's placement logic: a consistent-
// hash ring that gives every cache key one home replica, and a
// popularity tracker that decides which keys are hot enough to replicate
// off their home. Both are deterministic pure data structures — every
// replica configured with the same node list computes the same owner for
// every key, with no coordination traffic — which is what lets N
// risc1-serve processes agree on placement by configuration alone.
package peer

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is how many points each node contributes to the
// ring. 64 keeps the per-node load imbalance within a few percent for
// small clusters while the ring stays tiny (N*64 uint64s).
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over a set of node names
// (replica base URLs, in risc1-serve's case). A key's owner is the first
// virtual node clockwise from the key's hash, so adding or removing one
// node moves only ~1/N of the key space. Safe for concurrent use —
// there is nothing to mutate.
type Ring struct {
	points []uint64 // sorted virtual-node hashes
	owner  []string // owner[i] is the node owning points[i]
	nodes  []string // the distinct nodes, in the caller's order
}

// NewRing builds a ring from the given node names with vnodes virtual
// points per node (<= 0 means DefaultVirtualNodes). Duplicate names are
// collapsed; an empty list yields a ring whose Owner returns "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	type point struct {
		h    uint64
		node string
	}
	pts := make([]point, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			pts = append(pts, point{hash64(n + "#" + strconv.Itoa(i)), n})
		}
	}
	// Sort by (hash, node) so a hash collision between two nodes'
	// virtual points resolves the same way on every replica.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].node < pts[j].node
	})
	r.points = make([]uint64, len(pts))
	r.owner = make([]string, len(pts))
	for i, p := range pts {
		r.points[i] = p.h
		r.owner[i] = p.node
	}
	return r
}

// Owner returns the node that owns key: the first virtual point at or
// clockwise after the key's hash, wrapping at the top of the circle.
// An empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.owner[i]
}

// Nodes returns the distinct node names, in the order they were given.
func (r *Ring) Nodes() []string { return r.nodes }

// hash64 places a label on the circle: FNV-1a, which is stable across
// processes, architectures, and Go versions — a requirement, since every
// replica must compute identical placements from configuration alone —
// followed by a splitmix64 finalizer. FNV alone avalanches poorly on the
// short, similar labels virtual nodes produce ("node#0", "node#1", ...),
// clustering a node's points on the circle; the finalizer spreads them.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
