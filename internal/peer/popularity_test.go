package peer

import (
	"fmt"
	"sync"
	"testing"
)

// TestPopularityThreshold: counts grow by one per bump, so a key
// crosses any threshold at exactly the expected request.
func TestPopularityThreshold(t *testing.T) {
	p := NewPopularity(0, 0)
	const threshold = 4
	for i := 1; i <= 10; i++ {
		got := p.Bump("k")
		if got != uint64(i) {
			t.Fatalf("bump %d returned count %d", i, got)
		}
		if hot := got >= threshold; hot != (i >= threshold) {
			t.Fatalf("bump %d: hot = %v, want %v", i, hot, i >= threshold)
		}
	}
	if n := p.HotKeys(threshold); n != 1 {
		t.Errorf("HotKeys = %d, want 1", n)
	}
	if n := p.HotKeys(100); n != 0 {
		t.Errorf("HotKeys(100) = %d, want 0", n)
	}
}

// TestPopularityDecay: after decayEvery total bumps, counts halve and
// cold keys are forgotten entirely.
func TestPopularityDecay(t *testing.T) {
	p := NewPopularity(0, 8)
	for i := 0; i < 6; i++ {
		p.Bump("hot")
	}
	p.Bump("cold")
	p.Bump("filler") // 8th bump triggers the decay sweep first
	if c := p.Count("hot"); c != 3 {
		t.Errorf("hot count after decay = %d, want 3", c)
	}
	if c := p.Count("cold"); c != 0 {
		t.Errorf("cold key survived decay with count %d", c)
	}
	if c := p.Count("filler"); c != 1 {
		t.Errorf("filler count = %d, want 1 (bumped after the sweep)", c)
	}
}

// TestPopularityBounded: a full tracker refuses new keys rather than
// growing without bound, and decay frees room again.
func TestPopularityBounded(t *testing.T) {
	p := NewPopularity(4, 1<<40)
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		p.Bump(k)
		p.Bump(k)
	}
	if got := p.Bump("overflow"); got != 1 {
		t.Fatalf("overflow bump = %d, want untracked 1", got)
	}
	if c := p.Count("overflow"); c != 0 {
		t.Errorf("overflow key tracked with count %d despite full map", c)
	}
	// The forced decay inside the rejected insert halved the residents
	// to 1 each; enough further bumps on a new key must eventually fit
	// once another forced sweep drops them to zero.
	if got := p.Bump("late"); got != 1 || p.Count("late") != 1 {
		t.Errorf("late key not tracked after decay freed room: bump=%d count=%d", got, p.Count("late"))
	}
}

// TestPopularityConcurrent is the locking proof for the -race job:
// concurrent bumps on overlapping keys never lose counts entirely.
func TestPopularityConcurrent(t *testing.T) {
	p := NewPopularity(0, 0)
	var wg sync.WaitGroup
	const goroutines, bumps = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < bumps; i++ {
				p.Bump(fmt.Sprintf("k%d", i%4))
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 4; i++ {
		total += p.Count(fmt.Sprintf("k%d", i))
	}
	if total != goroutines*bumps {
		t.Errorf("total count %d, want %d", total, goroutines*bumps)
	}
}
