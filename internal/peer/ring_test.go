package peer

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: two rings built from the same node list agree
// on every key — the property that lets replicas agree on placement by
// configuration alone.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r1 := NewRing(nodes, 0)
	r2 := NewRing(nodes, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("rings disagree on %q: %q vs %q", key, r1.Owner(key), r2.Owner(key))
		}
	}
}

// TestRingOrderIndependent: the node list's order must not affect
// placement — operators won't spell -peers identically on every replica.
func TestRingOrderIndependent(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("node order changed owner of %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingBalance: with enough virtual nodes, no replica owns a wildly
// disproportionate share of a uniform key space.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("%064x", i))]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		got := counts[n]
		if got < want/2 || got > want*2 {
			t.Errorf("node %s owns %d of %d keys, want within 2x of %d", n, got, keys, want)
		}
	}
}

// TestRingStability: removing one node must not move keys between the
// surviving nodes — only the removed node's share is redistributed.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"n1", "n2", "n3"}, 0)
	partial := NewRing([]string{"n1", "n2"}, 0)
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := partial.Owner(key)
		if before == "n3" {
			continue // orphaned share may land anywhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving nodes on membership change, want 0", moved)
	}
}

// TestRingEdgeCases: empty and single-node rings, duplicate names.
func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("k"); owner != "" {
		t.Errorf("empty ring owner = %q, want empty", owner)
	}
	solo := NewRing([]string{"only"}, 0)
	for i := 0; i < 10; i++ {
		if owner := solo.Owner(fmt.Sprintf("k%d", i)); owner != "only" {
			t.Errorf("single-node ring owner = %q", owner)
		}
	}
	dup := NewRing([]string{"a", "a", "b", ""}, 0)
	if n := len(dup.Nodes()); n != 2 {
		t.Errorf("duplicate+empty names collapsed to %d nodes, want 2", n)
	}
}
