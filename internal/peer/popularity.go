package peer

import "sync"

// Popularity tracks per-key request counts with periodic decay: the
// hot-key detector behind replica-local caching of results whose home is
// another node. Counting is replica-local and deterministic — a fixed
// request sequence always produces the same counts — so tests can pin
// exactly when a key crosses the replication threshold.
//
// Decay is request-driven rather than wall-clock-driven: every
// decayEvery bumps across the whole tracker, all counts halve and the
// ones that reach zero are forgotten. A key must keep earning its count
// against the aggregate request rate, so yesterday's hot program cools
// off as traffic moves on, and the map's size is bounded by the working
// set rather than history.
type Popularity struct {
	mu         sync.Mutex
	counts     map[string]uint64
	maxKeys    int
	decayEvery uint64
	bumps      uint64
}

// Tracker defaults: at most 4096 tracked keys, halving every 8192 bumps.
const (
	DefaultMaxKeys    = 4096
	DefaultDecayEvery = 8192
)

// NewPopularity builds a tracker holding at most maxKeys keys, halving
// all counts every decayEvery bumps (<= 0 selects the defaults).
func NewPopularity(maxKeys int, decayEvery uint64) *Popularity {
	if maxKeys <= 0 {
		maxKeys = DefaultMaxKeys
	}
	if decayEvery == 0 {
		decayEvery = DefaultDecayEvery
	}
	return &Popularity{
		counts:     make(map[string]uint64),
		maxKeys:    maxKeys,
		decayEvery: decayEvery,
	}
}

// Bump records one request for key and returns its new count. When the
// tracker is full of other keys, the new key is not tracked and Bump
// returns 1 — an untracked key simply cannot become hot until decay
// frees room, which is the behavior a bounded hot-set wants.
func (p *Popularity) Bump(key string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bumps++
	if p.bumps%p.decayEvery == 0 {
		p.decayLocked()
	}
	c, tracked := p.counts[key]
	if !tracked && len(p.counts) >= p.maxKeys {
		p.decayLocked()
		if len(p.counts) >= p.maxKeys {
			return 1
		}
	}
	c++
	p.counts[key] = c
	return c
}

// Count returns key's current count (0 when untracked).
func (p *Popularity) Count(key string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[key]
}

// HotKeys returns how many keys currently sit at or above threshold —
// the gauge /metrics exports.
func (p *Popularity) HotKeys(threshold uint64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.counts {
		if c >= threshold {
			n++
		}
	}
	return n
}

// decayLocked halves every count and drops the ones that reach zero.
// Called with p.mu held.
func (p *Popularity) decayLocked() {
	for k, c := range p.counts {
		c /= 2
		if c == 0 {
			delete(p.counts, k)
		} else {
			p.counts[k] = c
		}
	}
}
