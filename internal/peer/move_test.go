package peer

import (
	"fmt"
	"testing"
)

// These tests make the ring's central promise empirical: membership
// changes are *monotone* (a join moves keys only onto the new node; a
// leave moves keys only off the dead node) and *proportional* (the
// moved fraction is near 1/N). The serve layer leans on both — the
// first is why a down replica does not reshuffle the survivors' cache
// placement, the second is why rebalancing cost stays bounded as the
// cluster grows.

// corpusKeys is a fixed key corpus shaped like real cache keys (the
// content addresses are opaque strings; what matters is that they are
// distinct and fixed across ring builds).
func corpusKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("risc1.run/v2:%08x", i*2654435761)
	}
	return keys
}

func nodeNames(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return nodes
}

// TestJoinMovesOnlyToNewNode: adding replica N+1 re-homes keys ONLY
// onto the new replica (consistent-hashing invariant), and the moved
// fraction is within 2x of 1/(N+1) both ways.
func TestJoinMovesOnlyToNewNode(t *testing.T) {
	const n, keyN = 4, 20000
	keys := corpusKeys(keyN)
	before := NewRing(nodeNames(n), 0)
	after := NewRing(nodeNames(n+1), 0)
	newNode := nodeNames(n + 1)[n]

	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != newNode {
			t.Fatalf("key %s moved %s -> %s: a join must move keys only onto the joiner %s",
				k, was, is, newNode)
		}
	}
	frac := float64(moved) / keyN
	ideal := 1.0 / float64(n+1)
	if frac < ideal/2 || frac > ideal*2 {
		t.Errorf("join moved %.4f of keys, want within 2x of 1/%d = %.4f", frac, n+1, ideal)
	}
	t.Logf("join %d->%d replicas: moved %d/%d keys (%.2f%%, ideal %.2f%%)",
		n, n+1, moved, keyN, 100*frac, 100*ideal)
}

// TestLeaveMovesOnlyFromDeadNode: removing a replica re-homes exactly
// the keys it owned — survivors' keys stay put — and the moved
// fraction is within 2x of 1/N.
func TestLeaveMovesOnlyFromDeadNode(t *testing.T) {
	const n, keyN = 5, 20000
	keys := corpusKeys(keyN)
	nodes := nodeNames(n)
	dead := nodes[2]
	survivors := append(append([]string{}, nodes[:2]...), nodes[3:]...)
	before := NewRing(nodes, 0)
	after := NewRing(survivors, 0)

	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == dead {
			moved++
			if is == dead {
				t.Fatalf("key %s still owned by the removed node", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %s moved %s -> %s though its home %s survived", k, was, is, was)
		}
	}
	frac := float64(moved) / keyN
	ideal := 1.0 / float64(n)
	if frac < ideal/2 || frac > ideal*2 {
		t.Errorf("leave moved %.4f of keys, want within 2x of 1/%d = %.4f", frac, n, ideal)
	}
	t.Logf("leave %d->%d replicas: moved %d/%d keys (%.2f%%, ideal %.2f%%)",
		n, n-1, moved, keyN, 100*frac, 100*ideal)
}

// TestMonotoneAcrossFlap: down then up restores the exact original
// placement — a flap is placement-idempotent, so an edge cache purged
// on the down transition refills with identical homes after recovery.
func TestMonotoneAcrossFlap(t *testing.T) {
	const n, keyN = 3, 5000
	keys := corpusKeys(keyN)
	nodes := nodeNames(n)
	full := NewRing(nodes, 0)
	degraded := NewRing([]string{nodes[0], nodes[2]}, 0)
	restored := NewRing(nodes, 0)

	for _, k := range keys {
		if full.Owner(k) != restored.Owner(k) {
			t.Fatalf("key %s: owner changed across an identical membership (flap not idempotent)", k)
		}
		// While degraded, every key owned by the down node must land on
		// a survivor; every other key must not move.
		was, during := full.Owner(k), degraded.Owner(k)
		if was == nodes[1] {
			if during == nodes[1] {
				t.Fatalf("key %s served by the down node during the flap", k)
			}
		} else if during != was {
			t.Fatalf("key %s moved %s -> %s during an unrelated node's flap", k, was, during)
		}
	}
}

// TestEachStepMovesBoundedFraction: growing 2 -> 8 one replica at a
// time, each step's movement stays within 2x of 1/N — the property
// that makes rolling reconfiguration affordable at any size.
func TestEachStepMovesBoundedFraction(t *testing.T) {
	const keyN = 10000
	keys := corpusKeys(keyN)
	for n := 2; n < 8; n++ {
		before := NewRing(nodeNames(n), 0)
		after := NewRing(nodeNames(n+1), 0)
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != after.Owner(k) {
				moved++
			}
		}
		frac := float64(moved) / keyN
		ideal := 1.0 / float64(n+1)
		if frac < ideal/2 || frac > ideal*2 {
			t.Errorf("join at n=%d moved %.4f, want within 2x of %.4f", n, frac, ideal)
		}
	}
}
