package rv32

import (
	"fmt"

	"risc1/internal/mem"
	"risc1/internal/trace"
)

// Snapshot is an immutable machine image of the rv32 machine: memory
// shared copy-on-write (O(touched pages)), the flat register file, and
// all simulated statistics. The same capture rules as the other
// machines apply (DESIGN.md §12): observer state is not captured, the
// instruction budget is left to the run, and a snapshot may be restored
// into any same-sized machine, repeatedly, from any goroutine.
type Snapshot struct {
	cfg   Config
	mem   *mem.Snapshot
	regs  [NumRegs]uint32
	tr    *trace.Collector
	stats Stats

	pc      uint32
	depth   int
	halted  bool
	haltErr error
}

// MemPages reports how many memory pages the snapshot references.
func (s *Snapshot) MemPages() int { return s.mem.Pages() }

// Instructions returns the snapshotted instruction count.
func (s *Snapshot) Instructions() uint64 { return s.tr.Instructions }

// compatible ignores the instruction budget, which is per-run state.
func compatible(a, b Config) bool {
	a.MaxInstructions, b.MaxInstructions = 0, 0
	return a == b
}

// Snapshot captures the machine's architectural state in O(touched
// memory pages).
func (c *CPU) Snapshot() *Snapshot {
	return &Snapshot{
		cfg:     c.cfg,
		mem:     c.Mem.Snapshot(),
		regs:    c.R,
		tr:      c.Trace.Clone(),
		stats:   c.Stats,
		pc:      c.pc,
		depth:   c.depth,
		halted:  c.halted,
		haltErr: c.haltErr,
	}
}

// Restore rewinds the machine to the snapshot in O(touched pages),
// keeping the Mem and Trace pointers stable and leaving the instruction
// budget as configured. It panics on an incompatible configuration.
func (c *CPU) Restore(s *Snapshot) {
	if !compatible(c.cfg, s.cfg) {
		panic(fmt.Sprintf("rv32: restore of a %+v snapshot into a %+v machine", s.cfg, c.cfg))
	}
	c.Mem.Restore(s.mem)
	c.R = s.regs
	c.Trace.CopyFrom(s.tr)
	c.Stats = s.stats
	c.pc = s.pc
	c.depth = s.depth
	c.halted = s.halted
	c.haltErr = s.haltErr
	c.obsPending = obsPendingNone
	c.obsTarget = 0
}

// Release returns the snapshot's memory pages to the page pool; the
// snapshot must not be restored afterwards. Optional, like the other
// machines'.
func (s *Snapshot) Release() { s.mem.Release() }

// Fork returns an independent copy of the machine with memory shared
// copy-on-write and registers and statistics copied. Observers are not
// carried over. Parent and fork may then run concurrently.
func (c *CPU) Fork() *CPU {
	return &CPU{
		cfg:       c.cfg,
		Mem:       c.Mem.Fork(),
		R:         c.R,
		Trace:     c.Trace.Clone(),
		Stats:     c.Stats,
		pc:        c.pc,
		depth:     c.depth,
		halted:    c.halted,
		haltErr:   c.haltErr,
		opHandles: c.opHandles,
	}
}
