package rv32

import (
	"context"
	"errors"
	"fmt"
	"math"

	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/trace"
)

// ErrInstructionLimit is wrapped by the error Run returns when a program
// exhausts its instruction budget — the same sentinel contract as
// cpu.ErrInstructionLimit and vax.ErrInstructionLimit, so batch
// execution treats all machines uniformly. Check with errors.Is.
var ErrInstructionLimit = errors.New("instruction limit exceeded")

// runQuantum matches cpu.runQuantum: instructions between context
// checks in RunContext.
const runQuantum = 8192

// Config selects the machine's parameters.
type Config struct {
	// MemSize is main memory in bytes; zero means 1 MiB.
	MemSize int
	// StackTop is the initial sp; zero places it at the top of memory.
	StackTop uint32
	// MaxInstructions aborts runaway programs; zero means 2^32.
	MaxInstructions uint64
}

func (c Config) withDefaults() Config {
	if c.MemSize == 0 {
		c.MemSize = 1 << 20
	}
	if c.StackTop == 0 {
		c.StackTop = uint32(c.MemSize)
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 1 << 32
	}
	return c
}

// Stats holds rv32-specific dynamic counters.
type Stats struct {
	BranchesTaken   uint64
	BranchesUntaken uint64
	Calls           uint64
	Returns         uint64
	MulDivOps       uint64 // M-extension instructions executed
}

// CPU is the delay-slot-free RISC processor.
type CPU struct {
	cfg Config

	Mem   *mem.Memory
	R     [NumRegs]uint32
	Trace *trace.Collector
	Stats Stats

	// Obs, when non-nil, receives structured execution events
	// (instructions, calls, returns, faults) for tracing and profiling —
	// the same layer the other machines drive. nil keeps the hot loop
	// observation-free; attaching it never changes simulated state.
	Obs *obs.Observer

	pc      uint32
	depth   int
	halted  bool
	haltErr error

	// obsPending stages a call/return performed by the current
	// instruction until observe can report it in order.
	obsPending uint8
	obsTarget  uint32

	opHandles [numOps]int // trace handles indexed by opcode
}

const (
	obsPendingNone uint8 = iota
	obsPendingCall
	obsPendingRet
)

// New builds a CPU with zeroed memory and registers.
func New(cfg Config) *CPU {
	cfg = cfg.withDefaults()
	c := &CPU{cfg: cfg, Mem: mem.New(cfg.MemSize), Trace: trace.New()}
	for _, info := range Instructions() {
		c.opHandles[info.Op] = c.Trace.Handle(info.Name, info.Class)
	}
	c.resetState(0)
	return c
}

// Config returns the effective configuration.
func (c *CPU) Config() Config { return c.cfg }

// PC returns the address of the next instruction.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether the machine stopped, and the fault if any.
func (c *CPU) Halted() (bool, error) { return c.halted, c.haltErr }

func (c *CPU) resetState(entry uint32) {
	c.pc = entry
	c.R = [NumRegs]uint32{}
	c.R[RegSP] = c.cfg.StackTop
	c.depth = 0
	c.halted = false
	c.haltErr = nil
	c.Stats = Stats{}
	c.obsPending = obsPendingNone
	c.obsTarget = 0
}

// Reset clears memory and registers and sets the entry point.
func (c *CPU) Reset(entry uint32) {
	c.Mem.Reset()
	c.Trace.Reset()
	c.resetState(entry)
}

// SetEntry rewinds execution without clearing memory.
func (c *CPU) SetEntry(entry uint32) {
	c.Trace.Reset()
	c.resetState(entry)
}

// Run executes until ECALL, a fault, or the instruction limit.
func (c *CPU) Run() error {
	return c.RunContext(context.Background())
}

// RunContext executes like Run but stops between instruction quanta
// when ctx is cancelled or its deadline passes, returning the context's
// error. The machine stops on an instruction boundary and can resume.
// A context that is already done returns before the first quantum —
// zero instructions execute.
func (c *CPU) RunContext(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		halted, err := c.RunSteps(runQuantum)
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
	}
}

// RunSteps executes at most n instructions, reporting whether the
// machine halted, with the fault (or wrapped ErrInstructionLimit) as
// the error. halted false with a nil error means the budget n ran out.
func (c *CPU) RunSteps(n uint64) (bool, error) {
	for i := uint64(0); i < n && !c.halted; i++ {
		if c.Trace.Instructions >= c.cfg.MaxInstructions {
			return false, fmt.Errorf("rv32: %w: limit %d at pc %#08x", ErrInstructionLimit, c.cfg.MaxInstructions, c.pc)
		}
		c.Step()
	}
	return c.halted, c.haltErr
}

// SetMaxInstructions replaces the instruction budget ("fuel") without
// rebuilding the machine. Zero restores the default of 2^32.
func (c *CPU) SetMaxInstructions(n uint64) {
	if n == 0 {
		n = 1 << 32
	}
	c.cfg.MaxInstructions = n
}

func (c *CPU) fault(err error) {
	c.halted = true
	c.haltErr = err
	if o := c.Obs; o != nil && o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Kind: obs.KindFault, PC: c.pc, Cycle: c.Trace.Cycles, Text: err.Error()})
	}
}

// observe feeds the observer one completed instruction plus any call or
// return it performed, in the same order contract as the other
// machines: the instruction first, then the transfer.
func (c *CPU) observe(pcStart uint32, name string, cost uint64) {
	o := c.Obs
	if o.Prof != nil {
		o.Prof.Sample(pcStart, cost)
	}
	if o.Tracer != nil {
		text := name
		if raw, err := c.Mem.ReadBytes(pcStart, 4); err == nil {
			if t, _, derr := Disassemble(raw, 0, pcStart); derr == nil {
				text = t
			}
		}
		o.Tracer.Emit(obs.Event{
			Kind: obs.KindInstr, PC: pcStart, Cycle: c.Trace.Cycles,
			Cost: cost, Op: name, Text: text,
		})
	}
	switch c.obsPending {
	case obsPendingCall:
		if o.Prof != nil {
			o.Prof.EnterCall(c.obsTarget)
		}
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.KindCall, PC: pcStart, Cycle: c.Trace.Cycles, Target: c.obsTarget, Depth: c.depth})
		}
	case obsPendingRet:
		if o.Prof != nil {
			o.Prof.LeaveCall()
		}
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.KindReturn, PC: pcStart, Cycle: c.Trace.Cycles, Target: c.obsTarget, Depth: c.depth})
		}
	}
	c.obsPending = obsPendingNone
}

// setReg writes a register, keeping x0 hardwired to zero.
func (c *CPU) setReg(r uint8, v uint32) {
	if r != RegZero {
		c.R[r] = v
	}
}

// Step executes one instruction.
func (c *CPU) Step() {
	if c.halted {
		return
	}
	pcStart := c.pc
	w, err := c.Mem.FetchWord(c.pc)
	if err != nil {
		c.fault(fmt.Errorf("rv32: fetch at %#08x: %w", c.pc, err))
		return
	}
	in, err := Decode(w)
	if err != nil {
		c.fault(fmt.Errorf("rv32: at %#08x: %w", c.pc, err))
		return
	}

	cycles := uint64(costBase)
	if !c.exec(in, &cycles) {
		return
	}
	if c.Obs != nil {
		c.observe(pcStart, infos[in.Op].Name, cycles)
	}
	c.Trace.ExecHandle(c.opHandles[in.Op], cycles)
}

func (c *CPU) exec(in Inst, cycles *uint64) bool {
	next := c.pc + 4
	r1, r2 := c.R[in.Rs1], c.R[in.Rs2]

	switch in.Op {
	case LUI:
		c.setReg(in.Rd, uint32(in.Imm)<<12)
	case AUIPC:
		c.setReg(in.Rd, c.pc+uint32(in.Imm)<<12)

	case JAL:
		target := c.pc + uint32(in.Imm)
		c.setReg(in.Rd, next)
		*cycles += costBranchTaken
		if in.Rd == RegRA {
			c.callEnter(target)
		}
		next = target
	case JALR:
		target := (r1 + uint32(in.Imm)) &^ 1
		isRet := in.Rd == RegZero && in.Rs1 == RegRA
		c.setReg(in.Rd, next)
		*cycles += costBranchTaken
		if in.Rd == RegRA {
			c.callEnter(target)
		} else if isRet {
			c.callLeave(target)
		}
		next = target

	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		var taken bool
		switch in.Op {
		case BEQ:
			taken = r1 == r2
		case BNE:
			taken = r1 != r2
		case BLT:
			taken = int32(r1) < int32(r2)
		case BGE:
			taken = int32(r1) >= int32(r2)
		case BLTU:
			taken = r1 < r2
		default:
			taken = r1 >= r2
		}
		if taken {
			*cycles += costBranchTaken
			c.Stats.BranchesTaken++
			next = c.pc + uint32(in.Imm)
		} else {
			c.Stats.BranchesUntaken++
		}

	case LB, LBU, LW:
		*cycles += costMemExtra
		addr := r1 + uint32(in.Imm)
		var v uint32
		var err error
		switch in.Op {
		case LW:
			v, err = c.Mem.LoadWord(addr)
		default:
			v, err = c.Mem.LoadByte(addr)
			if in.Op == LB {
				v = uint32(int32(v<<24) >> 24)
			}
		}
		if err != nil {
			c.fault(fmt.Errorf("rv32: at %#08x: %w", c.pc, err))
			return false
		}
		c.setReg(in.Rd, v)
	case SB, SW:
		*cycles += costMemExtra
		addr := r1 + uint32(in.Imm)
		var err error
		if in.Op == SW {
			err = c.Mem.StoreWord(addr, r2)
		} else {
			err = c.Mem.StoreByte(addr, r2)
		}
		if err != nil {
			c.fault(fmt.Errorf("rv32: at %#08x: %w", c.pc, err))
			return false
		}

	case ADDI:
		c.setReg(in.Rd, r1+uint32(in.Imm))
	case SLTI:
		c.setReg(in.Rd, boolReg(int32(r1) < in.Imm))
	case SLTIU:
		c.setReg(in.Rd, boolReg(r1 < uint32(in.Imm)))
	case XORI:
		c.setReg(in.Rd, r1^uint32(in.Imm))
	case ORI:
		c.setReg(in.Rd, r1|uint32(in.Imm))
	case ANDI:
		c.setReg(in.Rd, r1&uint32(in.Imm))
	case SLLI:
		c.setReg(in.Rd, r1<<uint(in.Imm))
	case SRLI:
		c.setReg(in.Rd, r1>>uint(in.Imm))
	case SRAI:
		c.setReg(in.Rd, uint32(int32(r1)>>uint(in.Imm)))

	case ADD:
		c.setReg(in.Rd, r1+r2)
	case SUB:
		c.setReg(in.Rd, r1-r2)
	case SLL:
		c.setReg(in.Rd, r1<<(r2&31))
	case SLT:
		c.setReg(in.Rd, boolReg(int32(r1) < int32(r2)))
	case SLTU:
		c.setReg(in.Rd, boolReg(r1 < r2))
	case XOR:
		c.setReg(in.Rd, r1^r2)
	case SRL:
		c.setReg(in.Rd, r1>>(r2&31))
	case SRA:
		c.setReg(in.Rd, uint32(int32(r1)>>(r2&31)))
	case OR:
		c.setReg(in.Rd, r1|r2)
	case AND:
		c.setReg(in.Rd, r1&r2)

	case MUL:
		*cycles += costMul
		c.Stats.MulDivOps++
		c.setReg(in.Rd, r1*r2)
	case DIV:
		*cycles += costDiv
		c.Stats.MulDivOps++
		c.setReg(in.Rd, uint32(div32(int32(r1), int32(r2))))
	case REM:
		*cycles += costDiv
		c.Stats.MulDivOps++
		c.setReg(in.Rd, uint32(rem32(int32(r1), int32(r2))))

	case ECALL:
		c.halted = true
	case EBREAK:
		c.fault(fmt.Errorf("rv32: ebreak at %#08x", c.pc))
		return false

	default:
		c.fault(fmt.Errorf("rv32: unimplemented opcode %v", infos[in.Op].Name))
		return false
	}
	c.pc = next
	return true
}

func boolReg(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// div32 and rem32 implement the M-extension's trap-free semantics:
// divide by zero yields quotient -1 and remainder = dividend; the
// MinInt32/-1 overflow yields MinInt32 and remainder 0.
func div32(a, b int32) int32 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt32 && b == -1:
		return math.MinInt32
	}
	return a / b
}

func rem32(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt32 && b == -1:
		return 0
	}
	return a % b
}

// callEnter and callLeave track procedure nesting for the depth
// histogram and the observer, mirroring the other machines.
func (c *CPU) callEnter(target uint32) {
	c.depth++
	c.Trace.Depth(c.depth)
	c.Stats.Calls++
	if c.Obs != nil {
		c.obsPending = obsPendingCall
		c.obsTarget = target
	}
}

func (c *CPU) callLeave(target uint32) {
	c.depth--
	c.Stats.Returns++
	if c.Obs != nil {
		c.obsPending = obsPendingRet
		c.obsTarget = target
	}
}

// Micros converts cycles to microseconds at the machine's cycle time.
func (c *CPU) Micros() float64 {
	return float64(c.Trace.Cycles) * CycleNS / 1000
}
