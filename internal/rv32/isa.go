// Package rv32 implements the third machine of the cross-ISA study: a
// delay-slot-free RV32I-subset processor with the M-extension multiply
// and divide instructions. Where RISC I (internal/cpu) answers the
// paper's question with register windows and branch delay slots, this
// machine answers it the way RISC's descendants did — a flat 32-entry
// register file, compare-and-branch instructions, and a short pipeline
// that simply pays a bubble on taken branches. It shares the memory
// system, trace collector, observer layer and report schema with the
// other two machines, so the three-way tables compare architecture, not
// instrumentation.
//
// The encodings are the real RV32I/M ones (R/I/S/B/U/J formats), so the
// disassembler and any external RISC-V reference agree about what a
// word means.
package rv32

import "fmt"

// Op identifies one instruction of the subset.
type Op uint8

const (
	opInvalid Op = iota

	LUI
	AUIPC
	JAL
	JALR

	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	LB
	LBU
	LW
	SB
	SW

	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI

	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND

	MUL
	DIV
	REM

	ECALL
	EBREAK

	numOps
)

// NumInstructions is the subset's opcode count, reported in the
// machine-characteristics table alongside RISC I's 31 and the
// baseline's CISC repertoire.
const NumInstructions = int(numOps) - 1

// Fmt is the RISC-V instruction format an opcode encodes with.
type Fmt uint8

const (
	FmtR   Fmt = iota
	FmtI       // 12-bit signed immediate (ALU-immediate, loads, jalr)
	FmtIS      // shift-immediate: shamt in [24:20], funct7 selects srl/sra
	FmtS       // stores
	FmtB       // conditional branches, ±4 KiB
	FmtU       // lui/auipc, 20-bit upper immediate
	FmtJ       // jal, ±1 MiB
	FmtSys     // ecall/ebreak
)

// Info is per-opcode metadata: the encoding fields and the mix class.
type Info struct {
	Op     Op
	Name   string
	Fmt    Fmt
	Opcode uint32 // 7-bit major opcode
	Funct3 uint32
	Funct7 uint32
	// Class buckets the opcode for instruction-mix reporting, using the
	// same headings as the RISC I tables: alu, memory, control, misc.
	Class string
}

// Major opcodes of the base ISA.
const (
	opcLUI    = 0b0110111
	opcAUIPC  = 0b0010111
	opcJAL    = 0b1101111
	opcJALR   = 0b1100111
	opcBranch = 0b1100011
	opcLoad   = 0b0000011
	opcStore  = 0b0100011
	opcOpImm  = 0b0010011
	opcOp     = 0b0110011
	opcSystem = 0b1110011
)

var infos = [numOps]Info{
	LUI:   {Name: "lui", Fmt: FmtU, Opcode: opcLUI, Class: "alu"},
	AUIPC: {Name: "auipc", Fmt: FmtU, Opcode: opcAUIPC, Class: "alu"},
	JAL:   {Name: "jal", Fmt: FmtJ, Opcode: opcJAL, Class: "control"},
	JALR:  {Name: "jalr", Fmt: FmtI, Opcode: opcJALR, Funct3: 0b000, Class: "control"},

	BEQ:  {Name: "beq", Fmt: FmtB, Opcode: opcBranch, Funct3: 0b000, Class: "control"},
	BNE:  {Name: "bne", Fmt: FmtB, Opcode: opcBranch, Funct3: 0b001, Class: "control"},
	BLT:  {Name: "blt", Fmt: FmtB, Opcode: opcBranch, Funct3: 0b100, Class: "control"},
	BGE:  {Name: "bge", Fmt: FmtB, Opcode: opcBranch, Funct3: 0b101, Class: "control"},
	BLTU: {Name: "bltu", Fmt: FmtB, Opcode: opcBranch, Funct3: 0b110, Class: "control"},
	BGEU: {Name: "bgeu", Fmt: FmtB, Opcode: opcBranch, Funct3: 0b111, Class: "control"},

	LB:  {Name: "lb", Fmt: FmtI, Opcode: opcLoad, Funct3: 0b000, Class: "memory"},
	LBU: {Name: "lbu", Fmt: FmtI, Opcode: opcLoad, Funct3: 0b100, Class: "memory"},
	LW:  {Name: "lw", Fmt: FmtI, Opcode: opcLoad, Funct3: 0b010, Class: "memory"},
	SB:  {Name: "sb", Fmt: FmtS, Opcode: opcStore, Funct3: 0b000, Class: "memory"},
	SW:  {Name: "sw", Fmt: FmtS, Opcode: opcStore, Funct3: 0b010, Class: "memory"},

	ADDI:  {Name: "addi", Fmt: FmtI, Opcode: opcOpImm, Funct3: 0b000, Class: "alu"},
	SLTI:  {Name: "slti", Fmt: FmtI, Opcode: opcOpImm, Funct3: 0b010, Class: "alu"},
	SLTIU: {Name: "sltiu", Fmt: FmtI, Opcode: opcOpImm, Funct3: 0b011, Class: "alu"},
	XORI:  {Name: "xori", Fmt: FmtI, Opcode: opcOpImm, Funct3: 0b100, Class: "alu"},
	ORI:   {Name: "ori", Fmt: FmtI, Opcode: opcOpImm, Funct3: 0b110, Class: "alu"},
	ANDI:  {Name: "andi", Fmt: FmtI, Opcode: opcOpImm, Funct3: 0b111, Class: "alu"},
	SLLI:  {Name: "slli", Fmt: FmtIS, Opcode: opcOpImm, Funct3: 0b001, Funct7: 0b0000000, Class: "alu"},
	SRLI:  {Name: "srli", Fmt: FmtIS, Opcode: opcOpImm, Funct3: 0b101, Funct7: 0b0000000, Class: "alu"},
	SRAI:  {Name: "srai", Fmt: FmtIS, Opcode: opcOpImm, Funct3: 0b101, Funct7: 0b0100000, Class: "alu"},

	ADD:  {Name: "add", Fmt: FmtR, Opcode: opcOp, Funct3: 0b000, Funct7: 0b0000000, Class: "alu"},
	SUB:  {Name: "sub", Fmt: FmtR, Opcode: opcOp, Funct3: 0b000, Funct7: 0b0100000, Class: "alu"},
	SLL:  {Name: "sll", Fmt: FmtR, Opcode: opcOp, Funct3: 0b001, Funct7: 0b0000000, Class: "alu"},
	SLT:  {Name: "slt", Fmt: FmtR, Opcode: opcOp, Funct3: 0b010, Funct7: 0b0000000, Class: "alu"},
	SLTU: {Name: "sltu", Fmt: FmtR, Opcode: opcOp, Funct3: 0b011, Funct7: 0b0000000, Class: "alu"},
	XOR:  {Name: "xor", Fmt: FmtR, Opcode: opcOp, Funct3: 0b100, Funct7: 0b0000000, Class: "alu"},
	SRL:  {Name: "srl", Fmt: FmtR, Opcode: opcOp, Funct3: 0b101, Funct7: 0b0000000, Class: "alu"},
	SRA:  {Name: "sra", Fmt: FmtR, Opcode: opcOp, Funct3: 0b101, Funct7: 0b0100000, Class: "alu"},
	OR:   {Name: "or", Fmt: FmtR, Opcode: opcOp, Funct3: 0b110, Funct7: 0b0000000, Class: "alu"},
	AND:  {Name: "and", Fmt: FmtR, Opcode: opcOp, Funct3: 0b111, Funct7: 0b0000000, Class: "alu"},

	MUL: {Name: "mul", Fmt: FmtR, Opcode: opcOp, Funct3: 0b000, Funct7: 0b0000001, Class: "alu"},
	DIV: {Name: "div", Fmt: FmtR, Opcode: opcOp, Funct3: 0b100, Funct7: 0b0000001, Class: "alu"},
	REM: {Name: "rem", Fmt: FmtR, Opcode: opcOp, Funct3: 0b110, Funct7: 0b0000001, Class: "alu"},

	ECALL:  {Name: "ecall", Fmt: FmtSys, Opcode: opcSystem, Class: "misc"},
	EBREAK: {Name: "ebreak", Fmt: FmtSys, Opcode: opcSystem, Class: "misc"},
}

func init() {
	for op := opInvalid + 1; op < numOps; op++ {
		infos[op].Op = op
		if infos[op].Name == "" {
			panic(fmt.Sprintf("rv32: opcode %d missing metadata", op))
		}
	}
}

// Lookup returns metadata for op.
func Lookup(op Op) (Info, bool) {
	if op <= opInvalid || op >= numOps {
		return Info{}, false
	}
	return infos[op], true
}

// ByName maps a mnemonic to its opcode.
func ByName(name string) (Op, bool) {
	op, ok := byName[name]
	return op, ok
}

var byName = func() map[string]Op {
	m := make(map[string]Op, NumInstructions)
	for op := opInvalid + 1; op < numOps; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// Instructions returns all opcode metadata in declaration order.
func Instructions() []Info {
	out := make([]Info, 0, NumInstructions)
	for op := opInvalid + 1; op < numOps; op++ {
		out = append(out, infos[op])
	}
	return out
}

// Register numbers and the standard ABI assignments the code generator
// follows. x0 is hardwired to zero.
const (
	NumRegs = 32
	RegZero = 0
	RegRA   = 1 // return address (written by jal/jalr)
	RegSP   = 2 // stack pointer
)

// abiNames maps register numbers to their ABI mnemonics, which both the
// assembler and the disassembler speak.
var abiNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegName returns the ABI name of a register.
func RegName(r uint8) string {
	if int(r) < len(abiNames) {
		return abiNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// regByName resolves "x7", an ABI name, or "fp" to a register number.
func regByName(s string) (uint8, bool) {
	if s == "fp" {
		return 8, true
	}
	for i, n := range abiNames {
		if s == n {
			return uint8(i), true
		}
	}
	if len(s) >= 2 && s[0] == 'x' {
		var n int
		if _, err := fmt.Sscanf(s[1:], "%d", &n); err == nil && n >= 0 && n < NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

// Inst is one decoded instruction.
type Inst struct {
	Op       Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int32 // sign-extended; shamt for FmtIS; upper value for FmtU
}

// Encode packs an instruction into its 32-bit word. Immediates out of
// the format's range are an error.
func Encode(op Op, rd, rs1, rs2 uint8, imm int32) (uint32, error) {
	info, ok := Lookup(op)
	if !ok {
		return 0, fmt.Errorf("rv32: encode of invalid opcode %d", op)
	}
	base := info.Opcode | info.Funct3<<12
	switch info.Fmt {
	case FmtR:
		return base | info.Funct7<<25 | uint32(rd)<<7 | uint32(rs1)<<15 | uint32(rs2)<<20, nil
	case FmtI:
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("rv32: %s immediate %d exceeds 12 bits", info.Name, imm)
		}
		return base | uint32(rd)<<7 | uint32(rs1)<<15 | uint32(imm)&0xfff<<20, nil
	case FmtIS:
		if imm < 0 || imm > 31 {
			return 0, fmt.Errorf("rv32: %s shift amount %d out of range", info.Name, imm)
		}
		return base | info.Funct7<<25 | uint32(rd)<<7 | uint32(rs1)<<15 | uint32(imm)<<20, nil
	case FmtS:
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("rv32: %s offset %d exceeds 12 bits", info.Name, imm)
		}
		u := uint32(imm) & 0xfff
		return base | uint32(rs1)<<15 | uint32(rs2)<<20 | u&0x1f<<7 | u>>5<<25, nil
	case FmtB:
		if imm < -4096 || imm > 4095 || imm&1 != 0 {
			return 0, fmt.Errorf("rv32: %s branch offset %d out of range", info.Name, imm)
		}
		u := uint32(imm)
		return base | uint32(rs1)<<15 | uint32(rs2)<<20 |
			(u>>11&1)<<7 | (u>>1&0xf)<<8 | (u>>5&0x3f)<<25 | (u>>12&1)<<31, nil
	case FmtU:
		if imm < 0 || imm > 0xfffff {
			return 0, fmt.Errorf("rv32: %s upper immediate %#x out of range", info.Name, imm)
		}
		return info.Opcode | uint32(rd)<<7 | uint32(imm)<<12, nil
	case FmtJ:
		if imm < -(1<<20) || imm >= 1<<20 || imm&1 != 0 {
			return 0, fmt.Errorf("rv32: %s jump offset %d out of range", info.Name, imm)
		}
		u := uint32(imm)
		return info.Opcode | uint32(rd)<<7 |
			(u>>12&0xff)<<12 | (u>>11&1)<<20 | (u>>1&0x3ff)<<21 | (u>>20&1)<<31, nil
	case FmtSys:
		if op == EBREAK {
			return base | 1<<20, nil
		}
		return base, nil
	}
	return 0, fmt.Errorf("rv32: encode of %s: unknown format", info.Name)
}

// Decode unpacks a 32-bit word. Unknown encodings are an error.
func Decode(w uint32) (Inst, error) {
	opc := w & 0x7f
	rd := uint8(w >> 7 & 0x1f)
	f3 := w >> 12 & 0x7
	rs1 := uint8(w >> 15 & 0x1f)
	rs2 := uint8(w >> 20 & 0x1f)
	f7 := w >> 25 & 0x7f

	immI := int32(w) >> 20
	immS := int32(w)>>25<<5 | int32(w>>7&0x1f)
	immB := int32(w)>>31<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3f)<<5 | int32(w>>8&0xf)<<1
	immJ := int32(w)>>31<<20 | int32(w>>12&0xff)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3ff)<<1

	bad := func() (Inst, error) {
		return Inst{}, fmt.Errorf("rv32: illegal instruction %#08x", w)
	}
	switch opc {
	case opcLUI:
		return Inst{Op: LUI, Rd: rd, Imm: int32(w >> 12)}, nil
	case opcAUIPC:
		return Inst{Op: AUIPC, Rd: rd, Imm: int32(w >> 12)}, nil
	case opcJAL:
		return Inst{Op: JAL, Rd: rd, Imm: immJ}, nil
	case opcJALR:
		if f3 != 0 {
			return bad()
		}
		return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case opcBranch:
		ops := map[uint32]Op{0b000: BEQ, 0b001: BNE, 0b100: BLT, 0b101: BGE, 0b110: BLTU, 0b111: BGEU}
		op, ok := ops[f3]
		if !ok {
			return bad()
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB}, nil
	case opcLoad:
		ops := map[uint32]Op{0b000: LB, 0b100: LBU, 0b010: LW}
		op, ok := ops[f3]
		if !ok {
			return bad()
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case opcStore:
		ops := map[uint32]Op{0b000: SB, 0b010: SW}
		op, ok := ops[f3]
		if !ok {
			return bad()
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS}, nil
	case opcOpImm:
		switch f3 {
		case 0b001:
			if f7 != 0 {
				return bad()
			}
			return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 0b101:
			switch f7 {
			case 0b0000000:
				return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			case 0b0100000:
				return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return bad()
		}
		ops := map[uint32]Op{0b000: ADDI, 0b010: SLTI, 0b011: SLTIU, 0b100: XORI, 0b110: ORI, 0b111: ANDI}
		op, ok := ops[f3]
		if !ok {
			return bad()
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case opcOp:
		type key struct{ f3, f7 uint32 }
		ops := map[key]Op{
			{0b000, 0b0000000}: ADD, {0b000, 0b0100000}: SUB,
			{0b001, 0b0000000}: SLL, {0b010, 0b0000000}: SLT,
			{0b011, 0b0000000}: SLTU, {0b100, 0b0000000}: XOR,
			{0b101, 0b0000000}: SRL, {0b101, 0b0100000}: SRA,
			{0b110, 0b0000000}: OR, {0b111, 0b0000000}: AND,
			{0b000, 0b0000001}: MUL, {0b100, 0b0000001}: DIV,
			{0b110, 0b0000001}: REM,
		}
		op, ok := ops[key{f3, f7}]
		if !ok {
			return bad()
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case opcSystem:
		switch w >> 20 {
		case 0:
			return Inst{Op: ECALL}, nil
		case 1:
			return Inst{Op: EBREAK}, nil
		}
		return bad()
	}
	return bad()
}
