package rv32

import "fmt"

// disasmWindow returns how many bytes to hand the disassembler for an
// instruction at pc without running off the end of memory.
func disasmWindow(memSize int, pc uint32) int {
	if rem := memSize - int(pc); rem < 4 {
		if rem < 0 {
			return 0
		}
		return rem
	}
	return 4
}

// Disassemble decodes one instruction from code[off:] and renders it in
// standard RISC-V assembly with ABI register names. addr is the address
// of code[off]; branch and jump targets print as absolute addresses.
// Returns the text and the encoded length (always 4).
func Disassemble(code []byte, off int, addr uint32) (string, int, error) {
	if off < 0 || off+4 > len(code) {
		return "", 0, fmt.Errorf("rv32: truncated instruction at %#08x", addr)
	}
	w := uint32(code[off])<<24 | uint32(code[off+1])<<16 | uint32(code[off+2])<<8 | uint32(code[off+3])
	in, err := Decode(w)
	if err != nil {
		return "", 0, fmt.Errorf("rv32: at %#08x: %w", addr, err)
	}
	info, _ := Lookup(in.Op)
	var text string
	switch info.Fmt {
	case FmtR:
		text = fmt.Sprintf("%s %s, %s, %s", info.Name, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case FmtI:
		if info.Opcode == opcLoad || in.Op == JALR {
			text = fmt.Sprintf("%s %s, %d(%s)", info.Name, RegName(in.Rd), in.Imm, RegName(in.Rs1))
		} else {
			text = fmt.Sprintf("%s %s, %s, %d", info.Name, RegName(in.Rd), RegName(in.Rs1), in.Imm)
		}
	case FmtIS:
		text = fmt.Sprintf("%s %s, %s, %d", info.Name, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	case FmtS:
		text = fmt.Sprintf("%s %s, %d(%s)", info.Name, RegName(in.Rs2), in.Imm, RegName(in.Rs1))
	case FmtB:
		text = fmt.Sprintf("%s %s, %s, %#x", info.Name, RegName(in.Rs1), RegName(in.Rs2), addr+uint32(in.Imm))
	case FmtU:
		text = fmt.Sprintf("%s %s, %#x", info.Name, RegName(in.Rd), uint32(in.Imm)&0xfffff)
	case FmtJ:
		text = fmt.Sprintf("%s %s, %#x", info.Name, RegName(in.Rd), addr+uint32(in.Imm))
	default: // FmtSys
		text = info.Name
	}
	return text, 4, nil
}
