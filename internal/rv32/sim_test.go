package rv32

import (
	"errors"
	"math"
	"testing"
)

func runSource(t *testing.T, src string) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(Config{MemSize: 1 << 16})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: ADDI, Rd: 5, Rs1: 6, Imm: -2048},
		{Op: ADDI, Rd: 5, Rs1: 6, Imm: 2047},
		{Op: LUI, Rd: 10, Imm: 0xfffff},
		{Op: JAL, Rd: 1, Imm: -1048576},
		{Op: JAL, Rd: 0, Imm: 1048574},
		{Op: BEQ, Rs1: 3, Rs2: 4, Imm: -4096},
		{Op: BGEU, Rs1: 31, Rs2: 1, Imm: 4094},
		{Op: SW, Rs1: 2, Rs2: 8, Imm: -4},
		{Op: LW, Rd: 15, Rs1: 2, Imm: 124},
		{Op: SLLI, Rd: 7, Rs1: 7, Imm: 31},
		{Op: SRAI, Rd: 7, Rs1: 7, Imm: 1},
		{Op: MUL, Rd: 12, Rs1: 13, Rs2: 14},
		{Op: ECALL},
	}
	for _, in := range cases {
		w, err := Encode(in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %#08x (%+v): %v", w, in, err)
		}
		if got != in {
			t.Errorf("round trip %+v: got %+v (word %#08x)", in, got, w)
		}
	}
}

func TestSumLoop(t *testing.T) {
	c := runSource(t, `
		li   a0, 0
		li   t0, 1
		li   t1, 101
	loop:
		add  a0, a0, t0
		addi t0, t0, 1
		blt  t0, t1, loop
		la   t2, result
		sw   a0, 0(t2)
		ecall
	result:
		.word 0
	`)
	if got := c.R[10]; got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
	if c.Stats.BranchesTaken != 99 || c.Stats.BranchesUntaken != 1 {
		t.Errorf("branches taken/untaken = %d/%d, want 99/1", c.Stats.BranchesTaken, c.Stats.BranchesUntaken)
	}
}

func TestCallReturnAndStats(t *testing.T) {
	c := runSource(t, `
	start:
		li   sp, 0x8000
		li   a0, 6
		li   a1, 7
		call mulfn
		ecall
	mulfn:
		mul  a0, a0, a1
		ret
	`)
	if got := c.R[10]; got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
	if c.Stats.Calls != 1 || c.Stats.Returns != 1 {
		t.Errorf("calls/returns = %d/%d, want 1/1", c.Stats.Calls, c.Stats.Returns)
	}
	if c.Stats.MulDivOps != 1 {
		t.Errorf("mulDivOps = %d, want 1", c.Stats.MulDivOps)
	}
}

func TestDivisionSemantics(t *testing.T) {
	if q := div32(10, 0); q != -1 {
		t.Errorf("10/0 = %d, want -1", q)
	}
	if r := rem32(10, 0); r != 10 {
		t.Errorf("10%%0 = %d, want 10", r)
	}
	if q := div32(math.MinInt32, -1); q != math.MinInt32 {
		t.Errorf("MinInt32/-1 = %d, want MinInt32", q)
	}
	if r := rem32(math.MinInt32, -1); r != 0 {
		t.Errorf("MinInt32%%-1 = %d, want 0", r)
	}
	if q := div32(-7, 2); q != -3 {
		t.Errorf("-7/2 = %d, want -3 (truncating)", q)
	}
	if r := rem32(-7, 2); r != -1 {
		t.Errorf("-7%%2 = %d, want -1", r)
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	c := runSource(t, `
		li   t0, 99
		addi zero, t0, 1
		add  a0, zero, t0
		ecall
	`)
	if c.R[0] != 0 {
		t.Errorf("x0 = %d, want 0", c.R[0])
	}
	if c.R[10] != 99 {
		t.Errorf("a0 = %d, want 99", c.R[10])
	}
}

func TestWideLiAndMemory(t *testing.T) {
	c := runSource(t, `
		li   t0, 123456789
		la   t1, buf
		sw   t0, 0(t1)
		lw   a0, 0(t1)
		li   t2, -300
		sb   t2, 4(t1)
		lb   a1, 4(t1)
		lbu  a2, 4(t1)
		ecall
	buf:
		.space 8
	`)
	if c.R[10] != 123456789 {
		t.Errorf("lw = %d, want 123456789", c.R[10])
	}
	// -300 truncates to the byte 0xd4: lb sign-extends to -44, lbu zero-extends to 212.
	if int32(c.R[11]) != -44 {
		t.Errorf("lb = %d, want -44", int32(c.R[11]))
	}
	if c.R[12] != 212 {
		t.Errorf("lbu = %d, want 212", c.R[12])
	}
}

func TestInstructionLimit(t *testing.T) {
	prog := MustAssemble(`
	loop:
		j loop
	`)
	c := New(Config{MemSize: 1 << 16, MaxInstructions: 100})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	err := c.Run()
	if !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("err = %v, want ErrInstructionLimit", err)
	}
}

func TestSnapshotRestoreDeterminism(t *testing.T) {
	src := `
		li   a0, 0
		li   t0, 0
		li   t1, 50
	loop:
		mul  t2, t0, t0
		add  a0, a0, t2
		addi t0, t0, 1
		blt  t0, t1, loop
		ecall
	`
	prog := MustAssemble(src)
	c := New(Config{MemSize: 1 << 16})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := c.R[10]
	wantCycles := c.Trace.Cycles

	c.Restore(snap)
	if h, _ := c.Halted(); h {
		t.Fatal("restored machine reports halted")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.R[10] != want || c.Trace.Cycles != wantCycles {
		t.Errorf("replay diverged: a0=%d cycles=%d, want a0=%d cycles=%d", c.R[10], c.Trace.Cycles, want, wantCycles)
	}
	snap.Release()
}

func TestForkIsolation(t *testing.T) {
	prog := MustAssemble(`
		li  t0, 1
		la  t1, cell
		sw  t0, 0(t1)
		ecall
	cell:
		.word 0
	`)
	c := New(Config{MemSize: 1 << 16})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	f := c.Fork()
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	addr, _ := prog.Symbol("cell")
	if v, _ := c.Mem.LoadWord(addr); v != 0 {
		t.Errorf("parent memory mutated by fork: cell = %d", v)
	}
	if v, _ := f.Mem.LoadWord(addr); v != 1 {
		t.Errorf("fork cell = %d, want 1", v)
	}
}

func TestDisassembleListing(t *testing.T) {
	prog := MustAssemble(`
	start:
		addi a0, zero, 5
		beq  a0, zero, start
		lw   a1, 8(sp)
		jal  ra, start
		ecall
	`)
	c := New(Config{MemSize: 1 << 16})
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"addi a0, zero, 5",
		"beq a0, zero, 0x0",
		"lw a1, 8(sp)",
		"jal ra, 0x0",
		"ecall",
	}
	for i, w := range want {
		raw, err := c.Mem.ReadBytes(uint32(4*i), 4)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := Disassemble(raw, 0, uint32(4*i))
		if err != nil {
			t.Fatal(err)
		}
		if n != 4 || got != w {
			t.Errorf("disasm[%d] = %q (len %d), want %q", i, got, n, w)
		}
	}
}

func TestBuildReport(t *testing.T) {
	c := runSource(t, `
		li  a0, 2
		li  a1, 3
		mul a0, a0, a1
		ecall
	`)
	r := c.BuildReport("smoke")
	if r.Machine != "rv32" {
		t.Errorf("machine = %q, want rv32", r.Machine)
	}
	if r.Rv32 == nil || r.Rv32.MulDivOps != 1 {
		t.Errorf("rv32 section = %+v, want MulDivOps 1", r.Rv32)
	}
	if r.Totals.Instructions == 0 || r.Totals.CPI < 1 {
		t.Errorf("totals = %+v", r.Totals)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}
