package rv32

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"risc1/internal/mem"
	"risc1/internal/syntax"
)

// Segment is a contiguous block of assembled bytes.
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is the output of the rv32 assembler.
type Program struct {
	Segments []Segment
	Symbols  map[string]uint32
	Entry    uint32 // "start" if defined, else "main", else first instruction
	TextSize int    // bytes of instructions (static code size)
	DataSize int
}

// LoadInto copies all segments into memory.
func (p *Program) LoadInto(m *mem.Memory) error {
	for _, s := range p.Segments {
		if err := m.WriteBytes(s.Addr, s.Data); err != nil {
			return fmt.Errorf("rv32: loading segment at %#08x: %w", s.Addr, err)
		}
	}
	return nil
}

// Symbol looks up a label or .equ value.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// SortedSymbols returns symbol names in address order.
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

func errf(line int, format string, args ...any) error {
	return syntax.Errorf(line, "rv32: "+format, args...)
}

// Assemble translates rv32 assembly into a loadable program.
//
// Operand syntax follows RISC-V conventions: registers by number ("x5")
// or ABI name ("t0", "a0", "sp"), loads/stores/jalr as "off(reg)",
// branches and jumps take a label or expression. The pseudo-
// instructions li, la, mv, nop, j, jr, call, ret, neg, not, beqz, bnez,
// ble and bgt expand to base instructions at parse time. Data
// directives match the other assemblers'.
func Assemble(src string) (*Program, error) {
	p := &rparser{syms: make(map[string]uint32)}
	for lineNo, line := range strings.Split(src, "\n") {
		if err := p.parseLine(line, lineNo+1); err != nil {
			return nil, err
		}
	}
	if err := p.layout(); err != nil {
		return nil, err
	}
	return p.emit()
}

// MustAssemble panics on error; for known-good embedded sources.
func MustAssemble(src string) *Program {
	prog, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type rkind uint8

const (
	rInst rkind = iota
	rLi
	rWord
	rHalf
	rByte
	rAscii
	rSpace
	rAlign
	rOrg
)

type ritem struct {
	kind   rkind
	line   int
	labels []string

	op           Op
	rd, rs1, rs2 uint8
	imm          syntax.Expr // immediate / offset / branch+jump target / li value
	wide         bool        // li: lui+addi form (8 bytes)

	exprs []syntax.Expr
	str   string
	count uint32
	addr  uint32
}

type rparser struct {
	items   []ritem
	syms    map[string]uint32
	pending []string
}

func (p *rparser) add(it ritem) {
	it.labels = p.pending
	p.pending = nil
	p.items = append(p.items, it)
}

func (p *rparser) parseLine(line string, lineNo int) error {
	toks, err := syntax.ScanLine(line, lineNo)
	if err != nil {
		return err
	}
	for len(toks) >= 2 && toks[0].Kind == syntax.Ident && toks[1].Kind == syntax.Punct && toks[1].Text == ":" {
		p.pending = append(p.pending, toks[0].Text)
		toks = toks[2:]
	}
	if len(toks) == 0 {
		return nil
	}
	if toks[0].Kind != syntax.Ident {
		return errf(lineNo, "expected mnemonic or directive, got %q", toks[0].Text)
	}
	head := strings.ToLower(toks[0].Text)
	rest := toks[1:]
	if strings.HasPrefix(head, ".") {
		return p.parseDirective(head, rest, lineNo)
	}
	return p.parseInst(head, rest, lineNo)
}

type cursor struct {
	toks []syntax.Token
	pos  int
	line int
}

func (c *cursor) done() bool { return c.pos >= len(c.toks) }

func (c *cursor) punct(s string) bool {
	if c.pos < len(c.toks) && c.toks[c.pos].Kind == syntax.Punct && c.toks[c.pos].Text == s {
		c.pos++
		return true
	}
	return false
}

func (c *cursor) comma() error {
	if c.punct(",") {
		return nil
	}
	return errf(c.line, "expected ','")
}

func (c *cursor) end() error {
	if !c.done() {
		return errf(c.line, "unexpected trailing operands")
	}
	return nil
}

func (c *cursor) expr() (syntax.Expr, error) {
	ep := &syntax.Parser{Toks: c.toks, Pos: c.pos, Line: c.line}
	e, err := ep.Parse()
	if err != nil {
		return nil, err
	}
	c.pos = ep.Pos
	return e, nil
}

// reg consumes a register name.
func (c *cursor) reg() (uint8, error) {
	if c.pos < len(c.toks) && c.toks[c.pos].Kind == syntax.Ident {
		if r, ok := regByName(strings.ToLower(c.toks[c.pos].Text)); ok {
			c.pos++
			return r, nil
		}
	}
	if c.pos < len(c.toks) {
		return 0, errf(c.line, "expected register, got %q", c.toks[c.pos].Text)
	}
	return 0, errf(c.line, "missing register operand")
}

// offReg consumes "off(reg)"; a bare "(reg)" means offset zero.
func (c *cursor) offReg() (syntax.Expr, uint8, error) {
	var off syntax.Expr
	if !(c.pos < len(c.toks) && c.toks[c.pos].Kind == syntax.Punct && c.toks[c.pos].Text == "(") {
		e, err := c.expr()
		if err != nil {
			return nil, 0, err
		}
		off = e
	}
	if !c.punct("(") {
		return nil, 0, errf(c.line, "expected '(reg)' in memory operand")
	}
	r, err := c.reg()
	if err != nil {
		return nil, 0, err
	}
	if !c.punct(")") {
		return nil, 0, errf(c.line, "missing ')' in memory operand")
	}
	return off, r, nil
}

func (p *rparser) parseInst(name string, toks []syntax.Token, line int) error {
	c := &cursor{toks: toks, line: line}

	// Pseudo-instructions first; each rewrites into one base item
	// (li/la may take two words, decided here so layout stays
	// single-pass).
	switch name {
	case "nop":
		if err := c.end(); err != nil {
			return err
		}
		p.add(ritem{kind: rInst, line: line, op: ADDI})
		return nil
	case "mv":
		rd, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		rs, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		p.add(ritem{kind: rInst, line: line, op: ADDI, rd: rd, rs1: rs})
		return nil
	case "neg", "not":
		rd, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		rs, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		if name == "neg" {
			p.add(ritem{kind: rInst, line: line, op: SUB, rd: rd, rs2: rs})
		} else {
			p.add(ritem{kind: rInst, line: line, op: XORI, rd: rd, rs1: rs, imm: syntax.Num{V: -1}})
		}
		return nil
	case "li", "la":
		rd, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		it := ritem{kind: rLi, line: line, rd: rd, imm: e, wide: true}
		if v, ok := syntax.LiteralValue(e); ok && v >= -2048 && v <= 2047 {
			it.wide = false
		}
		p.add(it)
		return nil
	case "j", "call":
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		rd := uint8(RegZero)
		if name == "call" {
			rd = RegRA
		}
		p.add(ritem{kind: rInst, line: line, op: JAL, rd: rd, imm: e})
		return nil
	case "jr":
		rs, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		p.add(ritem{kind: rInst, line: line, op: JALR, rs1: rs})
		return nil
	case "ret":
		if err := c.end(); err != nil {
			return err
		}
		p.add(ritem{kind: rInst, line: line, op: JALR, rs1: RegRA})
		return nil
	case "beqz", "bnez":
		rs, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		op := BEQ
		if name == "bnez" {
			op = BNE
		}
		p.add(ritem{kind: rInst, line: line, op: op, rs1: rs, imm: e})
		return nil
	case "ble", "bgt":
		a, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		b, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		// a <= b  ==  b >= a;  a > b  ==  b < a.
		op := BGE
		if name == "bgt" {
			op = BLT
		}
		p.add(ritem{kind: rInst, line: line, op: op, rs1: b, rs2: a, imm: e})
		return nil
	}

	op, ok := ByName(name)
	if !ok {
		return errf(line, "unknown instruction %q", name)
	}
	info, _ := Lookup(op)
	it := ritem{kind: rInst, line: line, op: op}
	var err error
	switch info.Fmt {
	case FmtR:
		if it.rd, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.rs1, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.rs2, err = c.reg(); err != nil {
			return err
		}
	case FmtI:
		if it.rd, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if info.Opcode == opcLoad || op == JALR {
			if it.imm, it.rs1, err = c.offReg(); err != nil {
				return err
			}
		} else {
			if it.rs1, err = c.reg(); err != nil {
				return err
			}
			if err = c.comma(); err != nil {
				return err
			}
			if it.imm, err = c.expr(); err != nil {
				return err
			}
		}
	case FmtIS:
		if it.rd, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.rs1, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.imm, err = c.expr(); err != nil {
			return err
		}
	case FmtS:
		if it.rs2, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.imm, it.rs1, err = c.offReg(); err != nil {
			return err
		}
	case FmtB:
		if it.rs1, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.rs2, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.imm, err = c.expr(); err != nil {
			return err
		}
	case FmtU:
		if it.rd, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.imm, err = c.expr(); err != nil {
			return err
		}
	case FmtJ:
		if it.rd, err = c.reg(); err != nil {
			return err
		}
		if err = c.comma(); err != nil {
			return err
		}
		if it.imm, err = c.expr(); err != nil {
			return err
		}
	case FmtSys:
		// no operands
	}
	if err := c.end(); err != nil {
		return err
	}
	p.add(it)
	return nil
}

func (p *rparser) parseDirective(name string, toks []syntax.Token, line int) error {
	c := &cursor{toks: toks, line: line}
	switch name {
	case ".equ":
		if c.done() || c.toks[c.pos].Kind != syntax.Ident {
			return errf(line, ".equ needs a name")
		}
		sym := c.toks[c.pos].Text
		c.pos++
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		v, err := e.Eval(p.syms)
		if err != nil {
			return errf(line, ".equ value must be computable here: %v", err)
		}
		if _, dup := p.syms[sym]; dup {
			return errf(line, "symbol %q redefined", sym)
		}
		p.syms[sym] = uint32(v)
		return nil

	case ".org", ".space", ".align":
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		v, err := e.Eval(p.syms)
		if err != nil {
			return errf(line, "%s operand must be computable here: %v", name, err)
		}
		if v < 0 {
			return errf(line, "%s operand must be non-negative", name)
		}
		kind := map[string]rkind{".org": rOrg, ".space": rSpace, ".align": rAlign}[name]
		if kind == rAlign && (v == 0 || v&(v-1) != 0) {
			return errf(line, ".align needs a power of two")
		}
		p.add(ritem{kind: kind, line: line, count: uint32(v)})
		return nil

	case ".word", ".half", ".byte":
		var exprs []syntax.Expr
		for {
			e, err := c.expr()
			if err != nil {
				return err
			}
			exprs = append(exprs, e)
			if c.done() {
				break
			}
			if err := c.comma(); err != nil {
				return err
			}
		}
		kind := map[string]rkind{".word": rWord, ".half": rHalf, ".byte": rByte}[name]
		p.add(ritem{kind: kind, line: line, exprs: exprs})
		return nil

	case ".ascii", ".asciz":
		if c.done() || c.toks[c.pos].Kind != syntax.String {
			return errf(line, "%s needs a string", name)
		}
		s := c.toks[c.pos].Text
		c.pos++
		if err := c.end(); err != nil {
			return err
		}
		if name == ".asciz" {
			s += "\x00"
		}
		p.add(ritem{kind: rAscii, line: line, str: s})
		return nil
	}
	return errf(line, "unknown directive %q", name)
}

func (it *ritem) size() uint32 {
	switch it.kind {
	case rInst:
		return 4
	case rLi:
		if it.wide {
			return 8
		}
		return 4
	case rWord:
		return 4 * uint32(len(it.exprs))
	case rHalf:
		return 2 * uint32(len(it.exprs))
	case rByte:
		return uint32(len(it.exprs))
	case rAscii:
		return uint32(len(it.str))
	case rSpace:
		return it.count
	default:
		return 0
	}
}

func (it *ritem) alignment() uint32 {
	switch it.kind {
	case rInst, rLi, rWord:
		return 4
	case rHalf:
		return 2
	default:
		return 1
	}
}

func (p *rparser) layout() error {
	lc := uint32(0)
	for i := range p.items {
		it := &p.items[i]
		switch it.kind {
		case rOrg:
			if it.count < lc {
				return errf(it.line, ".org %#x moves backwards from %#x", it.count, lc)
			}
			lc = it.count
		case rAlign:
			lc = (lc + it.count - 1) &^ (it.count - 1)
		}
		if a := it.alignment(); lc%a != 0 {
			lc = (lc + a - 1) &^ (a - 1)
		}
		it.addr = lc
		for _, l := range it.labels {
			if _, dup := p.syms[l]; dup {
				return errf(it.line, "symbol %q redefined", l)
			}
			p.syms[l] = lc
		}
		lc += it.size()
	}
	for _, l := range p.pending {
		if _, dup := p.syms[l]; dup {
			return fmt.Errorf("rv32: symbol %q redefined", l)
		}
		p.syms[l] = lc
	}
	return nil
}

func (p *rparser) emit() (*Program, error) {
	prog := &Program{Symbols: p.syms}
	var cur *Segment
	put := func(addr uint32, b []byte) {
		if cur == nil || cur.Addr+uint32(len(cur.Data)) != addr {
			prog.Segments = append(prog.Segments, Segment{Addr: addr})
			cur = &prog.Segments[len(prog.Segments)-1]
		}
		cur.Data = append(cur.Data, b...)
	}
	putWord := func(addr uint32, w uint32) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], w)
		put(addr, b[:])
	}

	for i := range p.items {
		it := &p.items[i]
		switch it.kind {
		case rInst:
			w, err := p.encodeInst(it)
			if err != nil {
				return nil, err
			}
			putWord(it.addr, w)
			prog.TextSize += 4
		case rLi:
			v, err := it.imm.Eval(p.syms)
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			if !it.wide {
				w, err := Encode(ADDI, it.rd, RegZero, 0, int32(v))
				if err != nil {
					return nil, errf(it.line, "%v", err)
				}
				putWord(it.addr, w)
				prog.TextSize += 4
				break
			}
			u := uint32(v)
			hi := (u + 0x800) >> 12
			lo := int32(u) - int32(hi<<12)
			wHi, err := Encode(LUI, it.rd, 0, 0, int32(hi&0xfffff))
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			wLo, err := Encode(ADDI, it.rd, it.rd, 0, lo)
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			putWord(it.addr, wHi)
			putWord(it.addr+4, wLo)
			prog.TextSize += 8
		case rWord, rHalf, rByte:
			sz := map[rkind]int{rWord: 4, rHalf: 2, rByte: 1}[it.kind]
			for j, e := range it.exprs {
				v, err := e.Eval(p.syms)
				if err != nil {
					return nil, errf(it.line, "%v", err)
				}
				b := make([]byte, sz)
				switch sz {
				case 4:
					binary.BigEndian.PutUint32(b, uint32(v))
				case 2:
					binary.BigEndian.PutUint16(b, uint16(v))
				default:
					b[0] = byte(v)
				}
				put(it.addr+uint32(j*sz), b)
			}
			prog.DataSize += sz * len(it.exprs)
		case rAscii:
			put(it.addr, []byte(it.str))
			prog.DataSize += len(it.str)
		case rSpace:
			if it.count > 0 {
				put(it.addr, make([]byte, it.count))
				prog.DataSize += int(it.count)
			}
		}
	}
	prog.Entry = p.entry()
	return prog, nil
}

func (p *rparser) entry() uint32 {
	if v, ok := p.syms["start"]; ok {
		return v
	}
	if v, ok := p.syms["main"]; ok {
		return v
	}
	for _, it := range p.items {
		if it.kind == rInst || it.kind == rLi {
			return it.addr
		}
	}
	return 0
}

func (p *rparser) encodeInst(it *ritem) (uint32, error) {
	info, _ := Lookup(it.op)
	var imm int32
	if it.imm != nil {
		v, err := it.imm.Eval(p.syms)
		if err != nil {
			return 0, errf(it.line, "%v", err)
		}
		imm = int32(v)
	}
	switch info.Fmt {
	case FmtB, FmtJ:
		// Targets are absolute addresses; the formats encode pc-relative.
		imm -= int32(it.addr)
		if info.Fmt == FmtB && (imm < -4096 || imm > 4095) {
			return 0, errf(it.line, "branch target out of the ±4 KiB range (offset %d)", imm)
		}
	}
	w, err := Encode(it.op, it.rd, it.rs1, it.rs2, imm)
	if err != nil {
		return 0, errf(it.line, "%v", err)
	}
	return w, nil
}
