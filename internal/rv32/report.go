package rv32

import "risc1/internal/obs"

// BuildReport assembles the versioned machine-readable run report for
// the modern-RISC machine's current statistics. The caller attaches the
// profiler section separately (obs.ProfileSection).
func (c *CPU) BuildReport(workload string) obs.Report {
	r := obs.Report{
		Schema:   obs.ReportSchema,
		Version:  obs.ReportVersion,
		Machine:  "rv32",
		Workload: workload,
		Config: obs.ReportConfig{
			MemSize: c.cfg.MemSize,
			CycleNS: CycleNS,
		},
		Totals: obs.Totals{
			Instructions: c.Trace.Instructions,
			Cycles:       c.Trace.Cycles,
			BaseCycles:   c.Trace.Cycles,
			Micros:       c.Micros(),
		},
		Rv32: &obs.Rv32{
			Calls:           c.Stats.Calls,
			Returns:         c.Stats.Returns,
			BranchesTaken:   c.Stats.BranchesTaken,
			BranchesUntaken: c.Stats.BranchesUntaken,
			MulDivOps:       c.Stats.MulDivOps,
		},
		Memory: obs.Memory{
			Reads:        c.Mem.Stats.Reads,
			Writes:       c.Mem.Stats.Writes,
			BytesRead:    c.Mem.Stats.BytesRead,
			BytesWritten: c.Mem.Stats.BytesWritten,
			Accesses:     c.Mem.Stats.Accesses(),
		},
	}
	if c.Trace.Instructions > 0 {
		r.Totals.CPI = float64(c.Trace.Cycles) / float64(c.Trace.Instructions)
	}
	for _, s := range c.Trace.Mix() {
		r.Mix = append(r.Mix, obs.MixEntry{Name: s.Name, Count: s.Count, Frac: s.Frac})
	}
	for _, s := range c.Trace.OpCounts() {
		r.Ops = append(r.Ops, obs.MixEntry{Name: s.Name, Count: s.Count, Frac: s.Frac})
	}
	return r
}

// Disassembler returns a pc → assembly-text resolver reading the CPU's
// current memory image — the disasm callback for annotated profiles.
func (c *CPU) Disassembler() func(pc uint32) (string, bool) {
	return func(pc uint32) (string, bool) {
		raw, err := c.Mem.ReadBytes(pc, disasmWindow(c.Mem.Size(), pc))
		if err != nil {
			return "", false
		}
		text, _, err := Disassemble(raw, 0, pc)
		if err != nil {
			return "", false
		}
		return text, true
	}
}
