package rv32

// Cycle-cost model for the modern-RISC third machine: a short in-order
// pipeline with no branch delay slots. The cycle time is deliberately
// pinned to RISC I's 400 ns — the three-way comparison holds the
// implementation technology fixed so the tables measure architecture
// (flat file vs windows, bubbles vs delay slots, hardware vs software
// multiply), not process scaling. As with the other two machines the
// constants are visible inputs to the reproduced tables.
const (
	// CycleNS matches cpu.DefaultCycleNS: same NMOS-class technology
	// assumption as RISC I, so cycle counts compare directly.
	CycleNS = 400

	// costBase is the single-issue pipeline's cycle per instruction.
	costBase = 1

	// costMemExtra is the extra data-access cycle loads and stores pay
	// on the shared memory port, mirroring RISC I's 2-cycle ldl/stl.
	costMemExtra = 1

	// costBranchTaken is the refetch bubble of a taken branch or jump.
	// This is the price of dropping the paper's delay slots: the
	// delay-slot machine hides this cycle when the assembler fills the
	// slot, the modern machine pays it on every taken transfer.
	costBranchTaken = 1

	// costMul and costDiv model the M-extension hardware: a short
	// pipelined multiplier and an iterative ~1-bit-per-cycle divider.
	// RISC I has neither and calls its software routines instead.
	costMul = 4
	costDiv = 34
)
