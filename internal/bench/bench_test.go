package bench

import (
	"strings"
	"testing"
)

// TestSuiteCorrectness is the central integration test: every benchmark
// must produce the Go reference result on all three simulators,
// optimized and not, with and without windows.
func TestSuiteCorrectness(t *testing.T) {
	for _, w := range Suite(Small()) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cfg := range []RiscConfig{
				{},
				{Opt: 1},
				{Optimize: true, Opt: 1},
				{Windows: 3, Optimize: true, Opt: 1},
				{NoWindows: true},
			} {
				run, err := RunRISC(w, cfg)
				if err != nil {
					t.Fatalf("risc cfg %+v: %v", cfg, err)
				}
				if run.Result != w.Expected {
					t.Fatalf("risc cfg %+v: result %d, want %d", cfg, run.Result, w.Expected)
				}
			}
			for _, lvl := range []int{0, 1} {
				vx, err := RunVAX(w, VaxConfig{Opt: lvl})
				if err != nil {
					t.Fatal(err)
				}
				if vx.Result != w.Expected {
					t.Fatalf("vax -O%d result %d, want %d", lvl, vx.Result, w.Expected)
				}
				rv, err := RunRV32(w, Rv32Config{Opt: lvl})
				if err != nil {
					t.Fatal(err)
				}
				if rv.Result != w.Expected {
					t.Fatalf("rv32 -O%d result %d, want %d", lvl, rv.Result, w.Expected)
				}
			}
		})
	}
}

func TestShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is slow")
	}
	cs, err := CompareAll(Suite(Small()))
	if err != nil {
		t.Fatal(err)
	}

	var sizeRatioSum, speedSum float64
	for _, c := range cs {
		sizeRatio := float64(c.Risc.TextBytes) / float64(c.Vax.TextBytes)
		speed := c.Vax.Micros / c.Risc.Micros
		sizeRatioSum += sizeRatio
		speedSum += speed
		if sizeRatio < 0.8 {
			t.Errorf("%s: RISC code unexpectedly smaller than CISC (%.2f)", c.Workload.Name, sizeRatio)
		}
		if c.Risc.Instructions <= c.Vax.Instructions/2 {
			t.Errorf("%s: RISC should execute more instructions (%d vs %d)",
				c.Workload.Name, c.Risc.Instructions, c.Vax.Instructions)
		}
	}
	avgSize := sizeRatioSum / float64(len(cs))
	avgSpeed := speedSum / float64(len(cs))
	// The paper's headline shapes.
	if avgSize < 1.0 || avgSize > 2.5 {
		t.Errorf("average RISC/CISC code-size ratio %.2f outside the paper's 1-2.5x band", avgSize)
	}
	if avgSpeed < 1.3 {
		t.Errorf("average RISC speedup %.2f; the paper reports a clear win (2-4x)", avgSpeed)
	}
}

func TestWindowSweepShape(t *testing.T) {
	sweep, err := SweepWindows(Suite(Small()), []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rate) != 3 || len(sweep.Workloads) == 0 {
		t.Fatalf("unexpected sweep shape: %+v", sweep)
	}
	for j := range sweep.Workloads {
		r2, r4, r8 := sweep.Rate[0][j], sweep.Rate[1][j], sweep.Rate[2][j]
		if r2 != 1.0 {
			t.Errorf("%s: 2 windows must overflow on every call, got %.2f", sweep.Workloads[j], r2)
		}
		if !(r4 >= r8) {
			t.Errorf("%s: overflow rate should not rise with windows (%f -> %f)", sweep.Workloads[j], r4, r8)
		}
		if r8 > 0.25 {
			t.Errorf("%s: at 8 windows the rate should be small, got %.2f", sweep.Workloads[j], r8)
		}
	}
}

func TestCallCostOrdering(t *testing.T) {
	costs, err := MeasureCallCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 4 {
		t.Fatalf("want 4 machines, got %d", len(costs))
	}
	windows, noWindows, cisc, rv := costs[0], costs[1], costs[2], costs[3]
	if !(windows.CyclesPerCall < noWindows.CyclesPerCall) {
		t.Errorf("windows (%f cy) should beat no-windows (%f cy)",
			windows.CyclesPerCall, noWindows.CyclesPerCall)
	}
	if !(windows.MicrosPerCall < cisc.MicrosPerCall) {
		t.Errorf("windows (%f µs) should beat CALLS (%f µs)",
			windows.MicrosPerCall, cisc.MicrosPerCall)
	}
	if windows.MemWordsPer > 1 {
		t.Errorf("windowed calls should move almost no memory, got %.2f words/call", windows.MemWordsPer)
	}
	if cisc.MemWordsPer < 5 {
		t.Errorf("CALLS should move a whole frame, got %.2f words/call", cisc.MemWordsPer)
	}
	if !(rv.MemWordsPer > windows.MemWordsPer) {
		t.Errorf("rv32 calls push frames to memory, so should move more than windowed RISC (%.2f vs %.2f words/call)",
			rv.MemWordsPer, windows.MemWordsPer)
	}
	if !(windows.CyclesPerCall < rv.CyclesPerCall) {
		t.Errorf("windows (%f cy) should beat rv32 stack frames (%f cy)",
			windows.CyclesPerCall, rv.CyclesPerCall)
	}
}

func TestDelaySlotOptimizerHelps(t *testing.T) {
	suite := Suite(Small())
	w, _ := ByName(suite, "sieve")
	plain, err := RunRISC(w, RiscConfig{Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunRISC(w, RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Slots.Filled == 0 {
		t.Error("optimizer filled no slots")
	}
	if opt.Instructions >= plain.Instructions {
		t.Errorf("optimizer should cut dynamic instructions: %d vs %d", opt.Instructions, plain.Instructions)
	}
	if opt.CPUStats.DelaySlotNops >= plain.CPUStats.DelaySlotNops {
		t.Errorf("optimizer should cut dynamic NOPs: %d vs %d",
			opt.CPUStats.DelaySlotNops, plain.CPUStats.DelaySlotNops)
	}
}

func TestAblationOrdering(t *testing.T) {
	suite := []Workload{}
	for _, w := range Suite(Small()) {
		if w.Name == "fib" || w.Name == "hanoi" {
			suite = append(suite, w)
		}
	}
	rows, err := RunAblation(suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.Full <= r.NoOpt) {
			t.Errorf("%s: removing the optimizer should not speed things up (%d vs %d)", r.Name, r.Full, r.NoOpt)
		}
		if !(r.Full < r.NoWindows) {
			t.Errorf("%s: removing windows should cost cycles (%d vs %d)", r.Name, r.Full, r.NoWindows)
		}
		if !(r.NoWindowsNoOpt >= r.NoWindows) {
			t.Errorf("%s: the stripped machine should be slowest", r.Name)
		}
	}
}

func TestTablesRender(t *testing.T) {
	cs, err := CompareAll(Suite(Small())[:3])
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name, out, want string
	}{
		{"T1", TableInstructionSet(), "ldhi"},
		{"T2", TableMachines(), "register windows"},
		{"T3", TableSuite(Suite(Small())), "sieve"},
		{"T4", TableCodeSize(cs), "RISC/CISC"},
		{"T5", TableExecTime(cs), "CISC/RISC time"},
		{"T6", TableMix(cs), "alu"},
		{"F2", FigDelaySlots(cs), "fill rate"},
	}
	for _, c := range checks {
		if !strings.Contains(c.out, c.want) {
			t.Errorf("%s: missing %q in output:\n%s", c.name, c.want, c.out)
		}
		if strings.Contains(c.out, "%!") {
			t.Errorf("%s: bad format verb:\n%s", c.name, c.out)
		}
	}
}

func TestByName(t *testing.T) {
	suite := Suite(Small())
	if _, ok := ByName(suite, "fib"); !ok {
		t.Error("fib should exist")
	}
	if _, ok := ByName(suite, "nope"); ok {
		t.Error("nope should not exist")
	}
}

func TestSuiteSize(t *testing.T) {
	// The paper's eleven programs plus the pointer variant of Puzzle.
	if n := len(Suite(Small())); n != 12 {
		t.Errorf("suite has %d programs, want 12", n)
	}
}

func TestPointerAndSubscriptPuzzleAgree(t *testing.T) {
	suite := Suite(Small())
	sub, _ := ByName(suite, "puzzle")
	ptr, _ := ByName(suite, "puzzle-ptr")
	if sub.Expected != ptr.Expected {
		t.Fatalf("variants disagree before running: %d vs %d", sub.Expected, ptr.Expected)
	}
	a, err := RunRISC(sub, RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRISC(ptr, RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result != b.Result {
		t.Errorf("subscript %d != pointer %d", a.Result, b.Result)
	}
}

func TestDepthHistogramFigure(t *testing.T) {
	suite := Suite(Small())
	w, _ := ByName(suite, "fib")
	c, err := Compare(w)
	if err != nil {
		t.Fatal(err)
	}
	out := FigDepthHistogram([]Comparison{c})
	if !strings.Contains(out, "fib") || !strings.Contains(out, "max depth") {
		t.Errorf("figure:\n%s", out)
	}
	// fib(12) nests 11 deep; the cumulative shares must be monotone.
	if c.Risc.MaxDepth < 10 {
		t.Errorf("max depth = %d", c.Risc.MaxDepth)
	}
	var total uint64
	for _, n := range c.Risc.Depths {
		total += n
	}
	if total != c.Risc.Windows.Calls {
		t.Errorf("histogram total %d != calls %d", total, c.Risc.Windows.Calls)
	}
}

// TestPaperScaleAckermann runs the paper's original Ackermann(3,6) input
// end-to-end (skipped with -short: it executes several million guest
// instructions and nests ~2500 activations deep).
func TestPaperScaleAckermann(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale ackermann is slow")
	}
	w := Workload{
		Name:      "ackermann-3-6",
		Source:    srcAckermann(3, 6),
		Expected:  refAckermann(3, 6),
		CallHeavy: true,
	}
	run, err := RunRISC(w, RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if run.Result != 509 {
		t.Fatalf("ack(3,6) = %d, want 509", run.Result)
	}
	if run.MaxDepth < 500 {
		t.Errorf("max depth = %d; expected deep nesting", run.MaxDepth)
	}
	if run.Windows.Overflows == 0 {
		t.Error("deep recursion must overflow")
	}
}

func TestOpFrequencyTable(t *testing.T) {
	cs, err := CompareAll(Suite(Small())[:2])
	if err != nil {
		t.Fatal(err)
	}
	out := TableOpFrequency(cs)
	if !strings.Contains(out, "add") || !strings.Contains(out, "cumulative") {
		t.Errorf("table:\n%s", out)
	}
}

func TestWindowTimeFigure(t *testing.T) {
	sweep, err := SweepWindows(Suite(Small()), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	out := FigWindowTime(sweep)
	if !strings.Contains(out, "F4.") || !strings.Contains(out, "(w=2 vs w=8)") {
		t.Errorf("figure:\n%s", out)
	}
	// Two windows must never be faster than eight.
	for j := range sweep.Workloads {
		if sweep.Micros[0][j] < sweep.Micros[1][j] {
			t.Errorf("%s: w=2 (%f µs) beat w=8 (%f µs)",
				sweep.Workloads[j], sweep.Micros[0][j], sweep.Micros[1][j])
		}
	}
}
