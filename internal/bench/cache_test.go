package bench

import (
	"strings"
	"testing"
)

// TestSweepCacheCounters pins the exact cache accounting of a serial
// sweep: one miss per workload, repeats hits per workload, nothing
// coalesced, and the reconciliation identity hits + misses + coalesced
// == requests.
func TestSweepCacheCounters(t *testing.T) {
	suite := Suite(Small())
	const repeats = 3
	sweep, err := SweepCache(suite, repeats)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(suite))
	s := sweep.Stats
	if s.Misses != n || s.Hits != n*repeats || s.Coalesced != 0 {
		t.Errorf("stats = %+v, want %d misses / %d hits / 0 coalesced", s, n, n*repeats)
	}
	if s.Hits+s.Misses+s.Coalesced != n*(repeats+1) {
		t.Errorf("counters do not reconcile to %d requests: %+v", n*(repeats+1), s)
	}
	if len(sweep.Rows) != len(suite) {
		t.Fatalf("rows = %d, want %d", len(sweep.Rows), len(suite))
	}
	out := TableCacheSweep(sweep)
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "cache counters") {
		t.Errorf("table missing expected sections:\n%s", out)
	}
}

// TestSweepCacheSpeedup is the acceptance bar for the hit path: on the
// heaviest workload of the small suite, serving from the cache must be
// at least 5x faster than compiling and simulating. The real margin is
// orders of magnitude (a map lookup against a full compile+simulate);
// 5x just keeps the assertion robust on noisy CI hosts.
func TestSweepCacheSpeedup(t *testing.T) {
	sweep, err := SweepCache(Suite(Small()), 5)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, r := range sweep.Rows {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	if best < 5 {
		t.Errorf("best hit-path speedup = %.1fx, want >= 5x\n%s", best, TableCacheSweep(sweep))
	}
}
