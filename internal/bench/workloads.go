// Package bench recreates the RISC I paper's C benchmark suite in MiniC,
// provides a Go reference implementation of every program for
// correctness cross-checks, and implements the harness that regenerates
// the paper's evaluation tables and figures (code size, execution time,
// instruction mix, window-overflow rates, delay-slot fill rates, and
// procedure-call cost).
package bench

import "fmt"

// Workload is one benchmark program.
type Workload struct {
	Name string
	// Key is the paper's benchmark letter where one exists.
	Key  string
	Desc string
	// Source is the MiniC program; it stores its checksum in the global
	// "result".
	Source string
	// Expected is the checksum computed by the Go reference.
	Expected int32
	// CallHeavy marks the call-intensive programs used for the window
	// experiments.
	CallHeavy bool
}

// Params scales the suite. The zero value is the paper-scale
// configuration; Small() is a fast configuration for unit tests.
type Params struct {
	SieveIters  int // sieve passes over 8191 flags
	FibN        int
	HanoiDiscs  int
	AckM, AckN  int
	QsortSize   int
	SearchIters int
	BitIters    int
	ListSize    int
	MatrixIters int // bit-matrix products
	MatN        int // integer matmul dimension
	PuzzleBoard int
}

// Default returns paper-scale parameters, bounded so the full suite
// simulates in seconds. (The paper ran Ackermann(3,6); that input makes
// ~170k calls — here the default is (3,5) with (3,6) available to
// callers that want the original.)
func Default() Params {
	return Params{
		SieveIters:  10,
		FibN:        20,
		HanoiDiscs:  14,
		AckM:        3,
		AckN:        5,
		QsortSize:   1000,
		SearchIters: 50,
		BitIters:    5000,
		ListSize:    400,
		MatrixIters: 10,
		MatN:        16,
		PuzzleBoard: 14,
	}
}

// Small returns a fast configuration for tests.
func Small() Params {
	return Params{
		SieveIters:  1,
		FibN:        12,
		HanoiDiscs:  7,
		AckM:        2,
		AckN:        3,
		QsortSize:   60,
		SearchIters: 3,
		BitIters:    100,
		ListSize:    40,
		MatrixIters: 1,
		MatN:        6,
		PuzzleBoard: 10,
	}
}

// Suite builds the full benchmark set at the given scale, with expected
// results computed by the Go references.
func Suite(p Params) []Workload {
	return []Workload{
		{
			Name: "e-strsearch", Key: "E",
			Desc:     "string search (character comparison loop)",
			Source:   srcSearch(p.SearchIters),
			Expected: refSearch(p.SearchIters),
		},
		{
			Name: "f-bittest", Key: "F",
			Desc:     "bit set/test/clear over a bitmap",
			Source:   srcBittest(p.BitIters),
			Expected: refBittest(p.BitIters),
		},
		{
			Name: "h-linkedlist", Key: "H",
			Desc:     "sorted linked-list insertion",
			Source:   srcLinkedList(p.ListSize),
			Expected: refLinkedList(p.ListSize),
		},
		{
			Name: "k-bitmatrix", Key: "K",
			Desc:     "32x32 boolean matrix product",
			Source:   srcBitMatrix(p.MatrixIters),
			Expected: refBitMatrix(p.MatrixIters),
		},
		{
			Name: "ackermann", Key: "",
			Desc:      fmt.Sprintf("Ackermann(%d,%d), the call-stress test", p.AckM, p.AckN),
			Source:    srcAckermann(p.AckM, p.AckN),
			Expected:  refAckermann(p.AckM, p.AckN),
			CallHeavy: true,
		},
		{
			Name: "qsort", Key: "",
			Desc:      fmt.Sprintf("recursive quicksort of %d pseudo-random ints", p.QsortSize),
			Source:    srcQsort(p.QsortSize),
			Expected:  refQsort(p.QsortSize),
			CallHeavy: true,
		},
		{
			Name: "puzzle", Key: "",
			Desc:      "recursive piece-packing search (reduced subscript Puzzle)",
			Source:    srcPuzzle(p.PuzzleBoard),
			Expected:  refPuzzle(p.PuzzleBoard),
			CallHeavy: true,
		},
		{
			Name: "puzzle-ptr", Key: "",
			Desc:      "the same packing search, pointer version (the paper compared both)",
			Source:    srcPuzzlePtr(p.PuzzleBoard),
			Expected:  refPuzzle(p.PuzzleBoard),
			CallHeavy: true,
		},
		{
			Name: "sieve", Key: "",
			Desc:     fmt.Sprintf("sieve of Eratosthenes, %d passes over 8191 flags", p.SieveIters),
			Source:   srcSieve(p.SieveIters),
			Expected: refSieve(p.SieveIters),
		},
		{
			Name: "hanoi", Key: "",
			Desc:      fmt.Sprintf("towers of Hanoi, %d discs", p.HanoiDiscs),
			Source:    srcHanoi(p.HanoiDiscs),
			Expected:  refHanoi(p.HanoiDiscs),
			CallHeavy: true,
		},
		{
			Name: "fib", Key: "",
			Desc:      fmt.Sprintf("naive recursive Fibonacci(%d)", p.FibN),
			Source:    srcFib(p.FibN),
			Expected:  refFib(p.FibN),
			CallHeavy: true,
		},
		{
			Name: "matmul", Key: "",
			Desc:     fmt.Sprintf("%dx%d integer matrix multiply", p.MatN, p.MatN),
			Source:   srcMatmul(p.MatN),
			Expected: refMatmul(p.MatN),
		},
	}
}

// ByName finds a workload in a suite.
func ByName(suite []Workload, name string) (Workload, bool) {
	for _, w := range suite {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

const searchText = "the quick brown fox jumps over the lazy dog while the band plays on and the search target hides near the end needle in the haystack"
const searchPat = "needle"

func srcSearch(iters int) string {
	return fmt.Sprintf(`
char text[140] = %q;
char pat[8] = %q;
int result;

int search(char *s, char *p) {
	int i; int j;
	i = 0;
	while (s[i]) {
		j = 0;
		while (p[j] && s[i + j] == p[j]) j = j + 1;
		if (!p[j]) return i;
		i = i + 1;
	}
	return 0 - 1;
}

int main() {
	int i; int total;
	total = 0;
	for (i = 0; i < %d; i = i + 1) total = total + search(text, pat) + i;
	result = total;
	return 0;
}
`, searchText, searchPat, iters)
}

func refSearch(iters int) int32 {
	idx := int32(-1)
	for i := 0; i+len(searchPat) <= len(searchText); i++ {
		if searchText[i:i+len(searchPat)] == searchPat {
			idx = int32(i)
			break
		}
	}
	var total int32
	for i := int32(0); i < int32(iters); i++ {
		total += idx + i
	}
	return total
}

func srcBittest(iters int) string {
	return fmt.Sprintf(`
int bitmap[64];
int result;

void setbit(int n)   { bitmap[n >> 5] |= 1 << (n & 31); }
void clearbit(int n) { bitmap[n >> 5] &= ~(1 << (n & 31)); }
int testbit(int n)   { return (bitmap[n >> 5] >> (n & 31)) & 1; }

int main() {
	int i; int n; int hits;
	hits = 0;
	for (i = 0; i < %d; i = i + 1) {
		n = (i * 7 + 3) & 2047;
		setbit(n);
		if (testbit((n + 1) & 2047)) hits = hits + 1;
		if (i & 1) clearbit((n + i) & 2047);
		hits = hits + testbit(n);
	}
	result = hits;
	return 0;
}
`, iters)
}

func refBittest(iters int) int32 {
	var bitmap [64]int32
	set := func(n int32) { bitmap[n>>5] |= 1 << uint(n&31) }
	clear := func(n int32) { bitmap[n>>5] &^= 1 << uint(n&31) }
	test := func(n int32) int32 { return (bitmap[n>>5] >> uint(n&31)) & 1 }
	var hits int32
	for i := int32(0); i < int32(iters); i++ {
		n := (i*7 + 3) & 2047
		set(n)
		if test((n+1)&2047) != 0 {
			hits++
		}
		if i&1 != 0 {
			clear((n + i) & 2047)
		}
		hits += test(n)
	}
	return hits
}

func srcLinkedList(size int) string {
	return fmt.Sprintf(`
int nextp[%d];
int val[%d];
int head;
int nalloc;
int seed;
int result;

int rnd() {
	seed = seed * 1103515245 + 12345;
	return (seed >> 16) & 0x7fff;
}

void insert(int v) {
	int n; int p; int prev;
	n = nalloc;
	nalloc = nalloc + 1;
	val[n] = v;
	if (head == 0 - 1 || val[head] >= v) {
		nextp[n] = head;
		head = n;
		return;
	}
	prev = head;
	p = nextp[head];
	while (p != 0 - 1 && val[p] < v) {
		prev = p;
		p = nextp[p];
	}
	nextp[n] = p;
	nextp[prev] = n;
}

int main() {
	int i; int sum; int p;
	head = 0 - 1;
	nalloc = 0;
	seed = 1;
	for (i = 0; i < %d; i = i + 1) insert(rnd());
	sum = 0;
	p = head;
	while (p != 0 - 1) {
		sum = sum * 3 + val[p];
		p = nextp[p];
	}
	result = sum;
	return 0;
}
`, size+1, size+1, size)
}

func refLinkedList(size int) int32 {
	next := make([]int32, size+1)
	val := make([]int32, size+1)
	head := int32(-1)
	nalloc := int32(0)
	seed := int32(1)
	rnd := func() int32 {
		seed = seed*1103515245 + 12345
		return (seed >> 16) & 0x7fff
	}
	insert := func(v int32) {
		n := nalloc
		nalloc++
		val[n] = v
		if head == -1 || val[head] >= v {
			next[n] = head
			head = n
			return
		}
		prev := head
		p := next[head]
		for p != -1 && val[p] < v {
			prev = p
			p = next[p]
		}
		next[n] = p
		next[prev] = n
	}
	for i := 0; i < size; i++ {
		insert(rnd())
	}
	var sum int32
	for p := head; p != -1; p = next[p] {
		sum = sum*3 + val[p]
	}
	return sum
}

func srcBitMatrix(iters int) string {
	return fmt.Sprintf(`
int m1[32];
int m2[32];
int prod[32];
int result;

int main() {
	int it; int i; int j; int k; int row; int sum;
	for (it = 0; it < %d; it = it + 1) {
		for (i = 0; i < 32; i = i + 1) {
			m1[i] = i * 2654435761 + it;
			m2[i] = i * 40503 + it * 7;
		}
		for (i = 0; i < 32; i = i + 1) {
			row = 0;
			for (j = 0; j < 32; j = j + 1) {
				k = 0;
				while (k < 32) {
					if (((m1[i] >> k) & 1) && ((m2[k] >> j) & 1)) {
						row = row | (1 << j);
						k = 32;
					}
					k = k + 1;
				}
			}
			prod[i] = row;
		}
	}
	sum = 0;
	for (i = 0; i < 32; i = i + 1) sum = sum ^ (prod[i] + i);
	result = sum;
	return 0;
}
`, iters)
}

const riscHashConst = int32(-1640531535) // 2654435761 as a wrapped int32

func refBitMatrix(iters int) int32 {
	var m1, m2, prod [32]int32
	for it := int32(0); it < int32(iters); it++ {
		for i := int32(0); i < 32; i++ {
			m1[i] = i*riscHashConst + it
			m2[i] = i*40503 + it*7
		}
		for i := 0; i < 32; i++ {
			var row int32
			for j := 0; j < 32; j++ {
				for k := 0; k < 32; k++ {
					if (m1[i]>>uint(k))&1 != 0 && (m2[k]>>uint(j))&1 != 0 {
						row |= 1 << uint(j)
						break
					}
				}
			}
			prod[i] = row
		}
	}
	var sum int32
	for i := int32(0); i < 32; i++ {
		sum ^= prod[i] + i
	}
	return sum
}

func srcAckermann(m, n int) string {
	return fmt.Sprintf(`
int result;
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	result = ack(%d, %d);
	return 0;
}
`, m, n)
}

func refAckermann(m, n int) int32 {
	var ack func(m, n int32) int32
	ack = func(m, n int32) int32 {
		if m == 0 {
			return n + 1
		}
		if n == 0 {
			return ack(m-1, 1)
		}
		return ack(m-1, ack(m, n-1))
	}
	return ack(int32(m), int32(n))
}

func srcQsort(size int) string {
	return fmt.Sprintf(`
int a[%d];
int seed;
int result;

int rnd() {
	seed = seed * 1103515245 + 12345;
	return (seed >> 16) & 0x7fff;
}

void sort(int lo, int hi) {
	int i; int j; int pivot; int t;
	if (lo >= hi) return;
	i = lo;
	j = hi;
	pivot = a[(lo + hi) / 2];
	while (i <= j) {
		while (a[i] < pivot) i = i + 1;
		while (a[j] > pivot) j = j - 1;
		if (i <= j) {
			t = a[i];
			a[i] = a[j];
			a[j] = t;
			i = i + 1;
			j = j - 1;
		}
	}
	sort(lo, j);
	sort(i, hi);
}

int main() {
	int i; int sum;
	seed = 42;
	for (i = 0; i < %d; i = i + 1) a[i] = rnd();
	sort(0, %d);
	sum = 0;
	for (i = 0; i < %d; i = i + 1) sum = sum * 3 + a[i];
	result = sum;
	return 0;
}
`, size, size, size-1, size)
}

func refQsort(size int) int32 {
	a := make([]int32, size)
	seed := int32(42)
	rnd := func() int32 {
		seed = seed*1103515245 + 12345
		return (seed >> 16) & 0x7fff
	}
	for i := range a {
		a[i] = rnd()
	}
	var sort func(lo, hi int32)
	sort = func(lo, hi int32) {
		if lo >= hi {
			return
		}
		i, j := lo, hi
		pivot := a[(lo+hi)/2]
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		sort(lo, j)
		sort(i, hi)
	}
	sort(0, int32(size-1))
	var sum int32
	for _, v := range a {
		sum = sum*3 + v
	}
	return sum
}

// puzzleSizes are the piece sizes packed into the board; they are chosen
// so several distinct perfect packings exist.
var puzzleSizes = []int{4, 3, 3, 2, 1, 1}

func srcPuzzle(board int) string {
	return fmt.Sprintf(`
int board[%d];
int sizes[6];
int nsol;
int tries;
int result;

void place(int k) {
	int pos; int j; int ok;
	if (k == 6) {
		nsol = nsol + 1;
		return;
	}
	for (pos = 0; pos + sizes[k] <= %d; pos = pos + 1) {
		ok = 1;
		for (j = 0; j < sizes[k]; j = j + 1) {
			if (board[pos + j]) ok = 0;
		}
		tries = tries + 1;
		if (ok) {
			for (j = 0; j < sizes[k]; j = j + 1) board[pos + j] = 1;
			place(k + 1);
			for (j = 0; j < sizes[k]; j = j + 1) board[pos + j] = 0;
		}
	}
}

int main() {
	sizes[0] = %d; sizes[1] = %d; sizes[2] = %d;
	sizes[3] = %d; sizes[4] = %d; sizes[5] = %d;
	nsol = 0;
	tries = 0;
	place(0);
	result = nsol * 1000000 + tries;
	return 0;
}
`, board, board,
		puzzleSizes[0], puzzleSizes[1], puzzleSizes[2],
		puzzleSizes[3], puzzleSizes[4], puzzleSizes[5])
}

// srcPuzzlePtr is the pointer-walking variant of the packing search —
// the paper evaluated Puzzle in both subscript and pointer styles to
// show the comparison is robust to coding idiom.
func srcPuzzlePtr(board int) string {
	return fmt.Sprintf(`
int board[%d];
int sizes[6];
int nsol;
int tries;
int result;

void place(int k) {
	int *p; int *q; int *lim; int *end;
	int ok; int sz;
	if (k == 6) {
		nsol = nsol + 1;
		return;
	}
	sz = sizes[k];
	end = &board[%d];
	for (p = board; p + sz <= end; p = p + 1) {
		ok = 1;
		lim = p + sz;
		for (q = p; q < lim; q = q + 1) {
			if (*q) ok = 0;
		}
		tries = tries + 1;
		if (ok) {
			for (q = p; q < lim; q = q + 1) *q = 1;
			place(k + 1);
			for (q = p; q < lim; q = q + 1) *q = 0;
		}
	}
}

int main() {
	sizes[0] = %d; sizes[1] = %d; sizes[2] = %d;
	sizes[3] = %d; sizes[4] = %d; sizes[5] = %d;
	nsol = 0;
	tries = 0;
	place(0);
	result = nsol * 1000000 + tries;
	return 0;
}
`, board, board,
		puzzleSizes[0], puzzleSizes[1], puzzleSizes[2],
		puzzleSizes[3], puzzleSizes[4], puzzleSizes[5])
}

func refPuzzle(boardLen int) int32 {
	board := make([]bool, boardLen)
	var nsol, tries int32
	var place func(k int)
	place = func(k int) {
		if k == len(puzzleSizes) {
			nsol++
			return
		}
		sz := puzzleSizes[k]
		for pos := 0; pos+sz <= boardLen; pos++ {
			ok := true
			for j := 0; j < sz; j++ {
				if board[pos+j] {
					ok = false
				}
			}
			tries++
			if ok {
				for j := 0; j < sz; j++ {
					board[pos+j] = true
				}
				place(k + 1)
				for j := 0; j < sz; j++ {
					board[pos+j] = false
				}
			}
		}
	}
	place(0)
	return nsol*1000000 + tries
}

func srcSieve(iters int) string {
	return fmt.Sprintf(`
int flags[8191];
int result;

int main() {
	int iter; int i; int k; int prime; int count;
	count = 0;
	for (iter = 0; iter < %d; iter = iter + 1) {
		count = 0;
		for (i = 0; i < 8191; i = i + 1) flags[i] = 1;
		for (i = 0; i < 8191; i = i + 1) {
			if (flags[i]) {
				prime = i + i + 3;
				for (k = i + prime; k < 8191; k = k + prime) flags[k] = 0;
				count = count + 1;
			}
		}
	}
	result = count;
	return 0;
}
`, iters)
}

func refSieve(iters int) int32 {
	var count int32
	flags := make([]bool, 8191)
	for it := 0; it < iters; it++ {
		count = 0
		for i := range flags {
			flags[i] = true
		}
		for i := 0; i < 8191; i++ {
			if flags[i] {
				prime := i + i + 3
				for k := i + prime; k < 8191; k += prime {
					flags[k] = false
				}
				count++
			}
		}
	}
	return count
}

func srcHanoi(discs int) string {
	return fmt.Sprintf(`
int moves;
int result;

void hanoi(int n, int from, int to, int via) {
	if (n == 0) return;
	hanoi(n - 1, from, via, to);
	moves = moves + 1;
	hanoi(n - 1, via, to, from);
}

int main() {
	moves = 0;
	hanoi(%d, 1, 3, 2);
	result = moves;
	return 0;
}
`, discs)
}

func refHanoi(discs int) int32 {
	return int32(1)<<uint(discs) - 1
}

func srcFib(n int) string {
	return fmt.Sprintf(`
int result;
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	result = fib(%d);
	return 0;
}
`, n)
}

func refFib(n int) int32 {
	a, b := int32(0), int32(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

func srcMatmul(n int) string {
	return fmt.Sprintf(`
int ma[%d];
int mb[%d];
int mc[%d];
int result;

int main() {
	int i; int j; int k; int s; int t;
	for (i = 0; i < %d * %d; i = i + 1) {
		ma[i] = i %% 7 + 1;
		mb[i] = i %% 5 + 2;
	}
	for (i = 0; i < %d; i = i + 1) {
		for (j = 0; j < %d; j = j + 1) {
			s = 0;
			for (k = 0; k < %d; k = k + 1) {
				t = ma[i * %d + k] * mb[k * %d + j];
				s = s + t;
			}
			mc[i * %d + j] = s;
		}
	}
	s = 0;
	for (i = 0; i < %d * %d; i = i + 1) s = s * 7 + mc[i];
	result = s;
	return 0;
}
`, n*n, n*n, n*n, n, n, n, n, n, n, n, n, n, n)
}

func refMatmul(n int) int32 {
	ma := make([]int32, n*n)
	mb := make([]int32, n*n)
	mc := make([]int32, n*n)
	for i := range ma {
		ma[i] = int32(i%7 + 1)
		mb[i] = int32(i%5 + 2)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += ma[i*n+k] * mb[k*n+j]
			}
			mc[i*n+j] = s
		}
	}
	var s int32
	for i := 0; i < n*n; i++ {
		s = s*7 + mc[i]
	}
	return s
}
