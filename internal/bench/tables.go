package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"risc1/internal/cpu"
	"risc1/internal/exec"
	"risc1/internal/isa"
	"risc1/internal/regfile"
	"risc1/internal/rv32"
	"risc1/internal/vax"
)

// The table printers regenerate the paper's evaluation artifacts as
// formatted text. Each returns a string so CLI tools, tests, and the
// EXPERIMENTS.md generator can share them.

func table(fn func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fn(w)
	w.Flush()
	return b.String()
}

// TableInstructionSet regenerates the paper's Table 1: the 31 RISC I
// instructions with their formats and one-line semantics.
func TableInstructionSet() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "T1. The RISC I instruction set (%d instructions)\n", isa.NumInstructions)
		fmt.Fprintln(w, "mnemonic\tclass\tformat\tcycles\tsemantics")
		for _, info := range isa.Instructions() {
			format := "short"
			if info.Format == isa.FormatLong {
				format = "long"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\n",
				info.Name, info.Class, format, info.Cycles, info.Semantic)
		}
	})
}

// TableMachines regenerates the machine-characteristics comparison: the
// RISC I design against the microcoded CISC baseline it is measured
// against (standing in for the paper's VAX-11/780 column), plus the
// RV32I-subset point — a RISC without windows or delay slots.
func TableMachines() string {
	rcfg := regfile.DefaultConfig
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T2. Machine characteristics")
		fmt.Fprintln(w, "characteristic\tRISC I\tCISC baseline (VAX-780 class)\tRV32I subset")
		fmt.Fprintf(w, "instructions\t%d\t%d\t%d\n", isa.NumInstructions, vax.NumInstructions, rv32.NumInstructions)
		fmt.Fprintf(w, "instruction size (bytes)\t4\t2-19 (variable)\t4\n")
		fmt.Fprintf(w, "instruction formats\t2\tone per operand-specifier combination\t6\n")
		fmt.Fprintf(w, "addressing modes\t%d\t%d\t%d\n", 2, vax.NumAddressingModes, 1)
		fmt.Fprintf(w, "general registers\t%d visible / %d physical\t%d\t%d\n",
			isa.NumVisibleRegs, rcfg.PhysicalRegs(), vax.NumRegs, rv32.NumRegs)
		fmt.Fprintf(w, "register windows\t%d (overlap 6)\tnone\tnone\n", rcfg.Windows)
		fmt.Fprintf(w, "delayed jumps\tyes (1 slot)\tno\tno\n")
		fmt.Fprintf(w, "cycle time (ns)\t%d\t%d\t%d\n", cpu.DefaultCycleNS, vax.CycleNS, rv32.CycleNS)
		fmt.Fprintf(w, "control\thardwired\tmicrocoded (modelled costs)\thardwired\n")
		fmt.Fprintf(w, "memory access\tload/store only\tany operand\tload/store only\n")
	})
}

// TableSuite lists the benchmark programs — the paper's workload table.
func TableSuite(suite []Workload) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T3. Benchmark suite (C programs, recreated in MiniC)")
		fmt.Fprintln(w, "name\tpaper key\tdescription\tcall-heavy")
		for _, wl := range suite {
			key := wl.Key
			if key == "" {
				key = "-"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%v\n", wl.Name, key, wl.Desc, wl.CallHeavy)
		}
	})
}

// TableCodeSize regenerates the static program-size comparison. The
// paper's result: RISC I code is modestly larger (it reported roughly
// 1.2-2x against VAX), the price of fixed 32-bit instructions.
func TableCodeSize(cs []Comparison) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T4. Static code size (bytes of instructions)")
		fmt.Fprintln(w, "benchmark\tRISC I\tCISC\tRV32\tRISC/CISC\tRV32/CISC")
		var sumRatio, sumRv32 float64
		for _, c := range cs {
			ratio := float64(c.Risc.TextBytes) / float64(c.Vax.TextBytes)
			rvRatio := float64(c.Rv32.TextBytes) / float64(c.Vax.TextBytes)
			sumRatio += ratio
			sumRv32 += rvRatio
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%.2f\n", c.Workload.Name,
				c.Risc.TextBytes, c.Vax.TextBytes, c.Rv32.TextBytes, ratio, rvRatio)
		}
		fmt.Fprintf(w, "geometric mean-ish (avg)\t\t\t\t%.2f\t%.2f\n",
			sumRatio/float64(len(cs)), sumRv32/float64(len(cs)))
	})
}

// TableExecTime regenerates the execution-time comparison: dynamic
// instructions, cycles, microseconds (RISC I at 400 ns vs CISC at
// 200 ns), and the speedup. The paper's result: RISC I executes more
// instructions yet finishes 2-4x sooner.
func TableExecTime(cs []Comparison) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T5. Execution time")
		fmt.Fprintln(w, "benchmark\tRISC instr\tCISC instr\tRV32 instr\tRISC µs\tCISC µs\tRV32 µs\tCISC/RISC time\tCISC/RV32 time")
		var sumSpeed, sumRv32 float64
		for _, c := range cs {
			speed := c.Vax.Micros / c.Risc.Micros
			rvSpeed := c.Vax.Micros / c.Rv32.Micros
			sumSpeed += speed
			sumRv32 += rvSpeed
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.2f\t%.2f\n",
				c.Workload.Name, c.Risc.Instructions, c.Vax.Instructions, c.Rv32.Instructions,
				c.Risc.Micros, c.Vax.Micros, c.Rv32.Micros, speed, rvSpeed)
		}
		fmt.Fprintf(w, "average speedup\t\t\t\t\t\t\t%.2f\t%.2f\n",
			sumSpeed/float64(len(cs)), sumRv32/float64(len(cs)))
	})
}

// TableMix regenerates the dynamic instruction-mix comparison by class.
func TableMix(cs []Comparison) string {
	riscTotals := map[string]uint64{}
	vaxTotals := map[string]uint64{}
	rv32Totals := map[string]uint64{}
	var riscN, vaxN, rv32N uint64
	for _, c := range cs {
		for _, s := range c.Risc.Mix {
			riscTotals[s.Name] += s.Count
			riscN += s.Count
		}
		for _, s := range c.Vax.Mix {
			vaxTotals[s.Name] += s.Count
			vaxN += s.Count
		}
		for _, s := range c.Rv32.Mix {
			rv32Totals[s.Name] += s.Count
			rv32N += s.Count
		}
	}
	share := func(totals map[string]uint64, n uint64, class string) string {
		if c := totals[class]; c > 0 {
			return fmt.Sprintf("%.1f%%", 100*float64(c)/float64(n))
		}
		return "-"
	}
	classes := []string{"alu", "memory", "control", "move", "call", "misc"}
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T6. Dynamic instruction mix (whole suite)")
		fmt.Fprintln(w, "class\tRISC I\tCISC\tRV32")
		for _, cl := range classes {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", cl,
				share(riscTotals, riscN, cl), share(vaxTotals, vaxN, cl), share(rv32Totals, rv32N, cl))
		}
	})
}

// FigWindowSweep regenerates the window-overflow figure: the fraction of
// calls that overflow as the number of windows grows. The paper's shape:
// a steep fall, with only a few percent of calls spilling at 8 windows.
func FigWindowSweep(s WindowSweep) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "F1. Window overflows as a fraction of calls, by window count")
		fmt.Fprintf(w, "windows\t%s\n", strings.Join(s.Workloads, "\t"))
		for i, wins := range s.Windows {
			cells := make([]string, len(s.Rate[i]))
			for j, r := range s.Rate[i] {
				cells[j] = fmt.Sprintf("%.2f%%", 100*r)
			}
			fmt.Fprintf(w, "%d\t%s\n", wins, strings.Join(cells, "\t"))
		}
		calls := make([]string, len(s.Calls))
		for j, n := range s.Calls {
			calls[j] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(w, "(calls)\t%s\n", strings.Join(calls, "\t"))
	})
}

// FigWindowTime shows run time against window count: the performance
// side of the window design space. Time falls as overflows vanish, then
// flattens — the knee the paper picked 8 windows at.
func FigWindowTime(s WindowSweep) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "F4. Run time (simulated microseconds) by window count")
		fmt.Fprintf(w, "windows\t%s\n", strings.Join(s.Workloads, "\t"))
		for i, wins := range s.Windows {
			cells := make([]string, len(s.Micros[i]))
			for j, us := range s.Micros[i] {
				cells[j] = fmt.Sprintf("%.0f", us)
			}
			fmt.Fprintf(w, "%d\t%s\n", wins, strings.Join(cells, "\t"))
		}
		// Relative cost of the smallest file vs the largest measured.
		if len(s.Micros) >= 2 {
			cells := make([]string, len(s.Workloads))
			last := len(s.Micros) - 1
			for j := range s.Workloads {
				cells[j] = fmt.Sprintf("%.2fx", s.Micros[0][j]/s.Micros[last][j])
			}
			fmt.Fprintf(w, "(w=%d vs w=%d)\t%s\n", s.Windows[0], s.Windows[last], strings.Join(cells, "\t"))
		}
	})
}

// FigDelaySlots regenerates the delayed-jump optimization result: how
// many branch shadow slots the optimizer filled (static), and the
// dynamic NOPs that disappeared.
func FigDelaySlots(cs []Comparison) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "F2. Delayed-jump optimization")
		fmt.Fprintln(w, "benchmark\ttransfers\tslots filled\tfill rate\tdyn. NOPs before\tdyn. NOPs after\tinstr saved")
		for _, c := range cs {
			saved := int64(c.RiscNop.Instructions) - int64(c.Risc.Instructions)
			fmt.Fprintf(w, "%s\t%d\t%d\t%.0f%%\t%d\t%d\t%d\n",
				c.Workload.Name,
				c.Risc.Slots.Transfers, c.Risc.Slots.Filled, 100*c.Risc.Slots.FillRate(),
				c.RiscNop.CPUStats.DelaySlotNops, c.Risc.CPUStats.DelaySlotNops, saved)
		}
	})
}

// TableCallCost regenerates the paper's headline comparison: what one
// procedure call/return costs on each machine.
func TableCallCost(costs []CallCost) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T7. Cost of one call/return (differenced microbenchmark)")
		fmt.Fprintln(w, "machine\tcycles/call\tµs/call\tmemory words/call")
		for _, c := range costs {
			fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.1f\n", c.Machine, c.CyclesPerCall, c.MicrosPerCall, c.MemWordsPer)
		}
	})
}

// TableTraffic regenerates the call-related memory-traffic comparison on
// the call-heavy programs: register windows keep most activations on
// chip, so data-memory traffic collapses.
func TableTraffic(cs []Comparison) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T8. Data-memory traffic on call-heavy programs")
		fmt.Fprintln(w, "benchmark\tcalls\tRISC words moved\tCISC frame words\tRISC words/call\tCISC words/call")
		for _, c := range cs {
			if !c.Workload.CallHeavy {
				continue
			}
			riscWords := c.Risc.CPUStats.SpillWords + c.Risc.CPUStats.RefillWords
			calls := c.Risc.Windows.Calls
			if calls == 0 {
				continue
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%.2f\n",
				c.Workload.Name, calls, riscWords, c.Vax.Stats.CallMemWords,
				float64(riscWords)/float64(calls),
				float64(c.Vax.Stats.CallMemWords)/float64(c.Vax.Stats.Calls))
		}
	})
}

// TableOpFrequency ranks the most-executed RISC I instructions across
// the suite — the measurement style that motivated RISC in the first
// place: a handful of simple operations dominates everything compilers
// emit, so silicon spent on the rest is wasted.
func TableOpFrequency(cs []Comparison) string {
	totals := map[string]uint64{}
	var n uint64
	for _, c := range cs {
		for _, op := range c.Risc.Ops {
			totals[op.Name] += op.Count
			n += op.Count
		}
	}
	type row struct {
		name string
		cnt  uint64
	}
	rows := make([]row, 0, len(totals))
	for name, cnt := range totals {
		rows = append(rows, row{name, cnt})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cnt != rows[j].cnt {
			return rows[i].cnt > rows[j].cnt
		}
		return rows[i].name < rows[j].name
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T9. Most-executed RISC I instructions (whole suite)")
		fmt.Fprintln(w, "rank	instruction	share	cumulative")
		var cum float64
		for i, r := range rows {
			if i >= 10 {
				fmt.Fprintf(w, "\t(%d more)\t%.1f%%\t100.0%%\n", len(rows)-10, 100-cum)
				break
			}
			share := 100 * float64(r.cnt) / float64(n)
			cum += share
			fmt.Fprintf(w, "%d\t%s\t%.1f%%\t%.1f%%\n", i+1, r.name, share, cum)
		}
	})
}

// FigDepthHistogram shows how deeply the call-heavy programs nest — the
// behaviour that justifies a multi-window register file: most calls
// happen within a narrow band of depths, so a handful of windows
// captures nearly all of them.
func FigDepthHistogram(cs []Comparison) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "F3. Call-depth profile (fraction of calls beginning at each depth)")
		fmt.Fprintln(w, "benchmark\tmax depth\tdepth<=4\tdepth<=8\tdepth<=16")
		for _, c := range cs {
			if !c.Workload.CallHeavy {
				continue
			}
			var total uint64
			for _, n := range c.Risc.Depths {
				total += n
			}
			if total == 0 {
				continue
			}
			cum := func(limit int) float64 {
				var s uint64
				for d, n := range c.Risc.Depths {
					if d <= limit {
						s += n
					}
				}
				return 100 * float64(s) / float64(total)
			}
			fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\t%.1f%%\n",
				c.Workload.Name, c.Risc.MaxDepth, cum(4), cum(8), cum(16))
		}
	})
}

// AblationRow is one cell of the design-choice ablation.
type AblationRow struct {
	Name           string
	Full           uint64 // windows + optimizer
	NoOpt          uint64 // windows, NOP slots
	NoWindows      uint64 // optimizer, no windows
	NoWindowsNoOpt uint64
}

// RunAblation measures cycles with each design feature toggled. The
// four configurations per workload are independent, so they go through
// the pool like the main comparison.
func RunAblation(suite []Workload) ([]AblationRow, error) {
	configs := []RiscConfig{
		{Optimize: true, Opt: OptLevel},
		{Opt: OptLevel},
		{NoWindows: true, Optimize: true, Opt: OptLevel},
		{NoWindows: true, Opt: OptLevel},
	}
	var heavy []Workload
	var jobs []exec.Job
	for _, w := range suite {
		if !w.CallHeavy {
			continue
		}
		heavy = append(heavy, w)
		for _, cfg := range configs {
			jobs = append(jobs, riscJob(w, cfg))
		}
	}
	p := newPool()
	defer p.Close()
	results := p.RunBatch(context.Background(), jobs)
	var rows []AblationRow
	for i, w := range heavy {
		cycles := make([]uint64, len(configs))
		for k := range configs {
			res := results[i*len(configs)+k]
			if res.Err != nil {
				return nil, res.Err
			}
			cycles[k] = res.Value.(RiscRun).Cycles
		}
		rows = append(rows, AblationRow{
			Name: w.Name, Full: cycles[0], NoOpt: cycles[1],
			NoWindows: cycles[2], NoWindowsNoOpt: cycles[3],
		})
	}
	return rows, nil
}

// FigAblation formats the design-feature ablation.
func FigAblation(rows []AblationRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "A1. Ablation: cycles with design features toggled (call-heavy programs)")
		fmt.Fprintln(w, "benchmark\twindows+opt\twindows only\topt only\tneither\tneither/full")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\n",
				r.Name, r.Full, r.NoOpt, r.NoWindows, r.NoWindowsNoOpt,
				float64(r.NoWindowsNoOpt)/float64(r.Full))
		}
	})
}
