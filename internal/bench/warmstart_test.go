package bench

import "testing"

// TestWarmStartSpeedup pins the point of warm-start serving: on a
// prelude-heavy workload, re-entering the compiled+initialized image
// must beat re-running the full prelude by at least 3x per request.
// The sweep itself enforces that the warm report is byte-identical to
// the cold one before any timing, so this is 3x for the same answer.
//
// Host timing on a shared machine is noisy even over medians, so the
// assertion allows a couple of fresh attempts before declaring the
// speedup gone; steady-state runs measure ~4x.
func TestWarmStartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("host-timing benchmark")
	}
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		s, err := SweepWarmStart(20)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Rows) != 1 {
			t.Fatalf("sweep rows = %d, want 1", len(s.Rows))
		}
		r := s.Rows[0]
		if r.WarmMS <= 0 || r.ColdMS <= 0 {
			t.Fatalf("degenerate timings: %+v", r)
		}
		if r.Speedup > best {
			best = r.Speedup
		}
		if best >= 3 {
			return
		}
		t.Logf("attempt %d: cold %.3fms warm %.4fms speedup %.1fx", attempt, r.ColdMS, r.WarmMS, r.Speedup)
	}
	t.Fatalf("warm-start speedup %.1fx, want >= 3x", best)
}
