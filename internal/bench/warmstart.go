package bench

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"text/tabwriter"
	"time"

	"risc1/internal/exec"
)

// The warm-start sweep is a host-speed measurement, like the result
// cache sweep: it shows what re-entering a compiled+initialized machine
// image (memory pages shared copy-on-write) buys a serving deployment
// over re-running the prelude — Reset, segment copy-in, and icache
// refill — on every request. Simulated numbers are untouched: a warm
// run restores the exact post-prelude machine state, so its report is
// byte-identical to a cold run's, and the sweep verifies that before it
// believes any timing.

// warmStartSrc is the prelude-heavy workload: a 896 KiB zero-initialized
// global array whose segment the cold path must copy into memory on
// every request, with a deliberately tiny run. The two touched elements
// span the array so a restore that lost data pages would change the
// result.
const warmStartSrc = `
int result;
int big[229376];

int main() {
	big[0] = 40;
	big[229375] = 2;
	result = big[0] + big[229375];
	return 0;
}
`

const warmStartExpected = 42

// WarmStartRow is one interleaved cold-vs-warm timing. The per-request
// times are medians over the repeats: a warm request is a few
// microseconds of work, so a single GC pause landing on one iteration
// would dominate a mean without saying anything about the steady state.
type WarmStartRow struct {
	Workload string
	ColdMS   float64 // full prelude per request, median over the repeats
	WarmMS   float64 // image restore per request, median over the repeats
	Speedup  float64 // ColdMS / WarmMS
}

// WarmStartSweep is the measurement behind risc1-bench -warmstart.
type WarmStartSweep struct {
	Repeats int
	Rows    []WarmStartRow
}

// SweepWarmStart times cold (ColdStart, full prelude) against warm
// (image-restored) runs of the prelude-heavy workload, strictly
// interleaved A/B so drift in host load hits both sides equally. Both
// paths are warmed up first, and the first cold and warm reports are
// compared byte for byte — the speedup is measured over identical
// answers, never over skipped work.
func SweepWarmStart(repeats int) (WarmStartSweep, error) {
	if repeats < 1 {
		repeats = 1
	}
	p := exec.NewPool(exec.Config{Workers: 1})
	defer p.Close()
	sweep := WarmStartSweep{Repeats: repeats}

	spec := exec.Spec{
		Name:       "prelude-heavy",
		Source:     warmStartSrc,
		Opt:        OptLevel,
		DelaySlots: true,
	}
	run := func(cold bool) (exec.Outcome, time.Duration, error) {
		s := spec
		s.ColdStart = cold
		start := time.Now()
		tk, err := p.Submit(context.Background(), s.Job("warmstart", 0))
		if err != nil {
			return exec.Outcome{}, 0, err
		}
		res, err := tk.Result(context.Background())
		took := time.Since(start)
		if err != nil {
			return exec.Outcome{}, 0, err
		}
		if res.Err != nil {
			return exec.Outcome{}, 0, res.Err
		}
		return res.Value.(exec.Outcome), took, nil
	}

	// Warm-up both paths: the first warm run also builds the image, and
	// the extra rounds let the page pool and the heap reach steady state
	// before anything is timed.
	coldOut, _, err := run(true)
	if err != nil {
		return sweep, fmt.Errorf("bench warmstart (cold warm-up): %w", err)
	}
	warmOut, _, err := run(false)
	if err != nil {
		return sweep, fmt.Errorf("bench warmstart (warm warm-up): %w", err)
	}
	if coldOut.Value != warmStartExpected || warmOut.Value != warmStartExpected {
		return sweep, fmt.Errorf("bench warmstart: results %d (cold) / %d (warm), want %d",
			coldOut.Value, warmOut.Value, warmStartExpected)
	}
	coldJSON, err := coldOut.Report.JSON()
	if err != nil {
		return sweep, err
	}
	warmJSON, err := warmOut.Report.JSON()
	if err != nil {
		return sweep, err
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		return sweep, fmt.Errorf("bench warmstart: warm report diverged from cold — refusing to time non-identical work")
	}
	for i := 0; i < 12; i++ {
		if _, _, err := run(true); err != nil {
			return sweep, fmt.Errorf("bench warmstart (warm-up): %w", err)
		}
		if _, _, err := run(false); err != nil {
			return sweep, fmt.Errorf("bench warmstart (warm-up): %w", err)
		}
	}

	coldTimes := make([]time.Duration, 0, repeats)
	warmTimes := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		if _, took, err := run(true); err != nil {
			return sweep, fmt.Errorf("bench warmstart (cold %d): %w", i, err)
		} else {
			coldTimes = append(coldTimes, took)
		}
		if _, took, err := run(false); err != nil {
			return sweep, fmt.Errorf("bench warmstart (warm %d): %w", i, err)
		} else {
			warmTimes = append(warmTimes, took)
		}
	}
	row := WarmStartRow{
		Workload: spec.Name,
		ColdMS:   float64(median(coldTimes).Microseconds()) / 1000,
		WarmMS:   float64(median(warmTimes).Microseconds()) / 1000,
	}
	if row.WarmMS > 0 {
		row.Speedup = row.ColdMS / row.WarmMS
	}
	sweep.Rows = append(sweep.Rows, row)
	return sweep, nil
}

// median returns the middle element of the sample (upper middle for even
// sizes); robust against the occasional GC pause in a way a mean is not.
func median(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// TableWarmStart renders the sweep. Timings are host wall-clock; the
// byte-identity of warm and cold reports is checked before timing.
func TableWarmStart(s WarmStartSweep) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Warm start: full prelude vs image restore per request (host time, %d interleaved repeats)\n", s.Repeats)
		fmt.Fprintln(w, "workload\tcold ms\twarm ms\tspeedup")
		for _, r := range s.Rows {
			fmt.Fprintf(w, "%s\t%.3f\t%.4f\t%.1fx\n", r.Workload, r.ColdMS, r.WarmMS, r.Speedup)
		}
	})
}
