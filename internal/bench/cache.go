package bench

import (
	"context"
	"fmt"
	"text/tabwriter"
	"time"

	"risc1/internal/exec"
	"risc1/internal/obs"
	"risc1/internal/rcache"
)

// The cache sweep is a host-speed measurement (like the icache A/B),
// not a simulated one: it shows what the content-addressed result cache
// buys a serving deployment on repeated workloads. Simulated numbers
// are untouched — a cache hit returns the byte-identical report the
// cold run produced, which is the whole point.

// CacheRow is one workload's cold-vs-hit timing.
type CacheRow struct {
	Workload string
	ColdMS   float64 // compile + simulate, first request
	HitMS    float64 // mean cached-request latency over the repeats
	Speedup  float64 // ColdMS / HitMS
}

// CacheSweep is the repeated-workload measurement behind risc1-bench
// -cache.
type CacheSweep struct {
	Repeats int
	Rows    []CacheRow
	Stats   obs.CacheStats
}

// SweepCache runs every workload once cold and `repeats` times hot
// through a result-cached pool, timing the host-side latency of each
// path. Every hot run is verified to be a cache hit and to return the
// workload's expected checksum, so the speedup is measured over
// byte-identical answers, never over skipped work.
func SweepCache(suite []Workload, repeats int) (CacheSweep, error) {
	if repeats < 1 {
		repeats = 1
	}
	p := newPool()
	defer p.Close()
	cached := exec.NewCached(p, 256<<20)
	sweep := CacheSweep{Repeats: repeats}

	for _, w := range suite {
		spec := exec.Spec{
			Name:       w.Name,
			Source:     w.Source,
			Opt:        OptLevel,
			DelaySlots: true,
		}
		start := time.Now()
		cold, out, err := cached.Run(context.Background(), spec, 0)
		coldMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			return sweep, err
		}
		if cold.Err != nil {
			return sweep, fmt.Errorf("bench %s (cache, cold): %w", w.Name, cold.Err)
		}
		if out != rcache.Miss {
			return sweep, fmt.Errorf("bench %s (cache): cold run classified %q, want miss", w.Name, out)
		}
		if cold.Outcome.Value != w.Expected {
			return sweep, fmt.Errorf("bench %s (cache, cold): result %d, want %d", w.Name, cold.Outcome.Value, w.Expected)
		}

		var hitTotal time.Duration
		for i := 0; i < repeats; i++ {
			start = time.Now()
			hot, out, err := cached.Run(context.Background(), spec, 0)
			hitTotal += time.Since(start)
			if err != nil {
				return sweep, err
			}
			if hot.Err != nil {
				return sweep, fmt.Errorf("bench %s (cache, hot %d): %w", w.Name, i, hot.Err)
			}
			if out != rcache.Hit {
				return sweep, fmt.Errorf("bench %s (cache): hot run %d classified %q, want hit", w.Name, i, out)
			}
			if hot.Outcome.Value != w.Expected {
				return sweep, fmt.Errorf("bench %s (cache, hot %d): result %d, want %d", w.Name, i, hot.Outcome.Value, w.Expected)
			}
		}
		hitMS := float64(hitTotal.Microseconds()) / 1000 / float64(repeats)
		row := CacheRow{Workload: w.Name, ColdMS: coldMS, HitMS: hitMS}
		if hitMS > 0 {
			row.Speedup = coldMS / hitMS
		}
		sweep.Rows = append(sweep.Rows, row)
	}
	sweep.Stats = cached.Stats()
	return sweep, nil
}

// TableCacheSweep renders the sweep. Timings are host wall-clock and
// vary run to run; the counter line is exact.
func TableCacheSweep(s CacheSweep) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Result cache: cold vs cached request latency (host time, %d hot repeats)\n", s.Repeats)
		fmt.Fprintln(w, "workload\tcold ms\thit ms\tspeedup")
		for _, r := range s.Rows {
			fmt.Fprintf(w, "%s\t%.3f\t%.4f\t%.0fx\n", r.Workload, r.ColdMS, r.HitMS, r.Speedup)
		}
		fmt.Fprintf(w, "cache counters: %d misses, %d hits, %d coalesced, %d evictions (hits+misses+coalesced == requests)\n",
			s.Stats.Misses, s.Stats.Hits, s.Stats.Coalesced, s.Stats.Evictions)
	})
}
