package bench

import (
	"context"
	"fmt"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/exec"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/regfile"
	"risc1/internal/trace"
	"risc1/internal/vax"
)

// RiscRun is the outcome of one workload on the RISC I simulator.
type RiscRun struct {
	Result       int32
	Instructions uint64
	Cycles       uint64
	Micros       float64
	TextBytes    int
	Windows      regfile.Stats
	CPUStats     cpu.Stats
	Slots        asm.SlotStats
	Mix          []trace.Share
	Ops          []trace.Share // per-opcode dynamic counts
	MaxDepth     int
	Depths       []uint64 // calls beginning at each nesting depth
	DataTraffic  mem.Stats
	// Report is the machine-readable form of this run. Its ICache
	// section is cleared: icache activity is host machinery that differs
	// with RiscConfig.NoICache while every simulated number here is
	// identical (TestICacheDeterminism compares whole RiscRun values).
	Report obs.Report
}

// VaxRun is the outcome of one workload on the CISC baseline.
type VaxRun struct {
	Result       int32
	Instructions uint64
	Cycles       uint64
	Micros       float64
	TextBytes    int
	Stats        vax.Stats
	Mix          []trace.Share
	DataTraffic  mem.Stats
	// Report is the machine-readable form of this run.
	Report obs.Report
}

// RiscConfig tweaks a RISC run.
type RiscConfig struct {
	Windows   int  // 0 = the paper's 8
	NoWindows bool // ablation: spill/refill on every call
	Optimize  bool // fill delay slots
	Opt       int  // compiler optimization level (-O0 / -O1)
	NoICache  bool // disable the simulator's predecoded instruction cache
}

// VaxConfig tweaks a CISC baseline run.
type VaxConfig struct {
	Opt int // compiler optimization level (-O0 / -O1)
}

// OptLevel is the compiler optimization level the harness's composite
// measurements (Compare, SweepWindows, MeasureCallCost) run at.
// risc1-bench's -opt flag overrides it.
var OptLevel = 1

// NoICache globally disables the predecoded instruction cache in every
// RISC run the harness makes — risc1-bench's -nocache escape hatch.
// Simulated cycles and statistics are identical either way; only host
// speed changes.
var NoICache bool

// CPUConfig is the simulator organization a RISC bench configuration
// asks for — the cache key batch workers reuse machines under.
func (cfg RiscConfig) CPUConfig() cpu.Config {
	return cpu.Config{Windows: cfg.Windows, NoWindows: cfg.NoWindows, NoICache: cfg.NoICache || NoICache}
}

// RunRISC compiles and executes a workload on the RISC I simulator.
func RunRISC(w Workload, cfg RiscConfig) (RiscRun, error) {
	return RunRISCOn(context.Background(), nil, w, cfg)
}

// RunRISCOn is RunRISC on a batch worker: sims (when non-nil) supplies
// the per-worker simulator to reuse, and ctx bounds the run. This is
// the function CompareAllOn submits to the pool.
func RunRISCOn(ctx context.Context, sims *exec.Sims, w Workload, cfg RiscConfig) (RiscRun, error) {
	// Compiling through the Sims goes via the pool's shared program
	// cache, so a sweep resubmitting one workload under many machine
	// configurations compiles it once (nil sims compile directly).
	prog, text, passes, err := sims.CompileRISC(ctx, w.Source, cc.Options{Opt: cfg.Opt, DelaySlots: cfg.Optimize})
	if err != nil {
		return RiscRun{}, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	var c *cpu.CPU
	if sims != nil {
		c = sims.RISC(cfg.CPUConfig())
	} else {
		c = cpu.New(cfg.CPUConfig())
	}
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		return RiscRun{}, err
	}
	if err := c.RunContext(ctx); err != nil {
		return RiscRun{}, fmt.Errorf("bench %s (risc): %w\n%s", w.Name, err, text)
	}
	addr, ok := prog.Symbol("result")
	if !ok {
		return RiscRun{}, fmt.Errorf("bench %s: no global named result", w.Name)
	}
	v, err := c.Mem.LoadWord(addr)
	if err != nil {
		return RiscRun{}, err
	}
	run := RiscRun{
		Result:       int32(v),
		Instructions: c.Trace.Instructions,
		Cycles:       c.Trace.Cycles,
		Micros:       c.Micros(),
		TextBytes:    prog.TextSize,
		Windows:      c.Regs.Stats,
		CPUStats:     c.Stats,
		Slots:        prog.Slots,
		Mix:          c.Trace.Mix(),
		Ops:          c.Trace.OpCounts(),
		MaxDepth:     c.Regs.MaxDepth(),
		Depths:       c.Trace.DepthHistogram(),
		DataTraffic:  c.Mem.Stats,
		Report:       c.BuildReport(w.Name),
	}
	run.Report.ICache = nil // host machinery; see the field comment
	run.Report.Config.Optimized = cfg.Optimize
	run.Report.Config.OptLevel = cfg.Opt
	run.Report.Config.Passes = passes
	if run.Result != w.Expected {
		return run, fmt.Errorf("bench %s (risc): result %d, want %d", w.Name, run.Result, w.Expected)
	}
	return run, nil
}

// RunVAX compiles and executes a workload on the CISC baseline.
func RunVAX(w Workload, cfg VaxConfig) (VaxRun, error) {
	return RunVAXOn(context.Background(), nil, w, cfg)
}

// RunVAXOn is RunVAX on a batch worker, mirroring RunRISCOn.
func RunVAXOn(ctx context.Context, sims *exec.Sims, w Workload, cfg VaxConfig) (VaxRun, error) {
	prog, text, passes, err := sims.CompileVAX(ctx, w.Source, cc.Options{Opt: cfg.Opt})
	if err != nil {
		return VaxRun{}, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	var c *vax.CPU
	if sims != nil {
		c = sims.VAX(vax.Config{})
	} else {
		c = vax.New(vax.Config{})
	}
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		return VaxRun{}, err
	}
	if err := c.RunContext(ctx); err != nil {
		return VaxRun{}, fmt.Errorf("bench %s (vax): %w\n%s", w.Name, err, text)
	}
	addr, ok := prog.Symbol("result")
	if !ok {
		return VaxRun{}, fmt.Errorf("bench %s: no global named result", w.Name)
	}
	v, err := c.Mem.LoadWord(addr)
	if err != nil {
		return VaxRun{}, err
	}
	run := VaxRun{
		Result:       int32(v),
		Instructions: c.Trace.Instructions,
		Cycles:       c.Trace.Cycles,
		Micros:       c.Micros(),
		TextBytes:    prog.TextSize,
		Stats:        c.Stats,
		Mix:          c.Trace.Mix(),
		DataTraffic:  c.Mem.Stats,
		Report:       c.BuildReport(w.Name),
	}
	run.Report.Config.OptLevel = cfg.Opt
	run.Report.Config.Passes = passes
	if run.Result != w.Expected {
		return run, fmt.Errorf("bench %s (vax): result %d, want %d", w.Name, run.Result, w.Expected)
	}
	return run, nil
}

// Comparison is one workload measured on every machine variant the
// paper's tables need.
type Comparison struct {
	Workload Workload
	Risc     RiscRun // 8 windows, delay slots optimized
	RiscNop  RiscRun // 8 windows, unoptimized (NOPs in every slot)
	Vax      VaxRun
}

// Compare runs one workload everywhere.
func Compare(w Workload) (Comparison, error) {
	risc, err := RunRISC(w, RiscConfig{Optimize: true, Opt: OptLevel})
	if err != nil {
		return Comparison{}, err
	}
	riscNop, err := RunRISC(w, RiscConfig{Optimize: false, Opt: OptLevel})
	if err != nil {
		return Comparison{}, err
	}
	vx, err := RunVAX(w, VaxConfig{Opt: OptLevel})
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Workload: w, Risc: risc, RiscNop: riscNop, Vax: vx}, nil
}

// CompareAll runs the whole suite through a batch pool sized by the
// package's Parallel setting. Output order (and therefore any report
// built from it) is the suite order regardless of worker count.
func CompareAll(suite []Workload) ([]Comparison, error) {
	p := newPool()
	defer p.Close()
	return CompareAllOn(context.Background(), p, suite)
}

// Reports flattens a comparison set into the run list of an
// obs.BenchReport: for each workload the optimized RISC run, the
// unoptimized RISC run, then the baseline (told apart by Machine and
// Config.Optimized).
func Reports(cs []Comparison) []obs.Report {
	out := make([]obs.Report, 0, 3*len(cs))
	for _, c := range cs {
		out = append(out, c.Risc.Report, c.RiscNop.Report, c.Vax.Report)
	}
	return out
}

// WindowSweep measures the overflow rate (fraction of calls that spill)
// for each window count, per call-heavy workload — the data behind the
// paper's window-size figure.
type WindowSweep struct {
	Windows   []int
	Workloads []string
	// Rate[i][j] is the overflow rate at Windows[i] for Workloads[j].
	Rate [][]float64
	// Micros[i][j] is the total simulated run time, showing how window
	// count buys performance until the overflow rate bottoms out.
	Micros [][]float64
	// Calls[j] is the total window calls made by workload j.
	Calls []uint64
}

// SweepWindows runs the call-heavy subset across window counts, one
// pool job per (window count, workload) pair.
func SweepWindows(suite []Workload, windowCounts []int) (WindowSweep, error) {
	p := newPool()
	defer p.Close()
	return SweepWindowsOn(context.Background(), p, suite, windowCounts)
}

// SweepWindowsOn is SweepWindows on an existing pool. Rows are indexed
// by window count and column by workload, assembled from the batch in
// submission order, so the sweep is deterministic at any parallelism.
func SweepWindowsOn(ctx context.Context, p *exec.Pool, suite []Workload, windowCounts []int) (WindowSweep, error) {
	var sweep WindowSweep
	sweep.Windows = windowCounts
	var heavy []Workload
	for _, w := range suite {
		if w.CallHeavy {
			heavy = append(heavy, w)
			sweep.Workloads = append(sweep.Workloads, w.Name)
		}
	}
	sweep.Calls = make([]uint64, len(heavy))
	jobs := make([]exec.Job, 0, len(windowCounts)*len(heavy))
	for _, wins := range windowCounts {
		for _, w := range heavy {
			jobs = append(jobs, riscJob(w, RiscConfig{Windows: wins, Optimize: true, Opt: OptLevel}))
		}
	}
	results := p.RunBatch(ctx, jobs)
	for i := range windowCounts {
		row := make([]float64, len(heavy))
		us := make([]float64, len(heavy))
		for j := range heavy {
			res := results[i*len(heavy)+j]
			if res.Err != nil {
				return sweep, res.Err
			}
			run := res.Value.(RiscRun)
			if run.Windows.Calls > 0 {
				row[j] = float64(run.Windows.Overflows) / float64(run.Windows.Calls)
			}
			us[j] = run.Micros
			sweep.Calls[j] = run.Windows.Calls
		}
		sweep.Rate = append(sweep.Rate, row)
		sweep.Micros = append(sweep.Micros, us)
	}
	return sweep, nil
}

// CallCost measures the incremental cost of one call/return pair on each
// machine, by differencing a calling loop against a call-free loop — the
// paper's procedure-call overhead comparison.
type CallCost struct {
	Machine       string
	CyclesPerCall float64
	MicrosPerCall float64
	MemWordsPer   float64 // data-memory words moved per call/return
}

const callLoopN = 2000

func callBenchSource(withCall bool) string {
	body := "s = s + leaf(i, 1);"
	if !withCall {
		body = "s = s + i + 1;"
	}
	return fmt.Sprintf(`
int result;
int leaf(int a, int b) { return a + b; }
int main() {
	int i; int s;
	s = 0;
	for (i = 0; i < %d; i = i + 1) {
		%s
	}
	result = s;
	return 0;
}
`, callLoopN, body)
}

func callBenchExpected() int32 {
	var s int32
	for i := int32(0); i < callLoopN; i++ {
		s += i + 1
	}
	return s
}

// MeasureCallCost returns per-call costs for RISC I with windows, RISC I
// without windows (every call spills), and the CISC baseline's CALLS/RET.
func MeasureCallCost() ([]CallCost, error) {
	with := Workload{Name: "callcost", Source: callBenchSource(true), Expected: callBenchExpected()}
	without := Workload{Name: "callbase", Source: callBenchSource(false), Expected: callBenchExpected()}

	var out []CallCost

	riscConfigs := []struct {
		name string
		cfg  RiscConfig
	}{
		{"RISC I (8 windows)", RiscConfig{Optimize: true, Opt: OptLevel}},
		{"RISC I (no windows)", RiscConfig{NoWindows: true, Optimize: true, Opt: OptLevel}},
	}
	for _, rc := range riscConfigs {
		a, err := RunRISC(with, rc.cfg)
		if err != nil {
			return nil, err
		}
		b, err := RunRISC(without, rc.cfg)
		if err != nil {
			return nil, err
		}
		dCycles := float64(a.Cycles-b.Cycles) / callLoopN
		dWords := float64(a.DataTraffic.BytesRead+a.DataTraffic.BytesWritten-
			b.DataTraffic.BytesRead-b.DataTraffic.BytesWritten) / 4 / callLoopN
		out = append(out, CallCost{
			Machine:       rc.name,
			CyclesPerCall: dCycles,
			MicrosPerCall: dCycles * cpu.DefaultCycleNS / 1000,
			MemWordsPer:   dWords,
		})
	}

	a, err := RunVAX(with, VaxConfig{Opt: OptLevel})
	if err != nil {
		return nil, err
	}
	b, err := RunVAX(without, VaxConfig{Opt: OptLevel})
	if err != nil {
		return nil, err
	}
	dCycles := float64(a.Cycles-b.Cycles) / callLoopN
	dWords := float64(a.DataTraffic.BytesRead+a.DataTraffic.BytesWritten-
		b.DataTraffic.BytesRead-b.DataTraffic.BytesWritten) / 4 / callLoopN
	out = append(out, CallCost{
		Machine:       "CISC (CALLS/RET)",
		CyclesPerCall: dCycles,
		MicrosPerCall: dCycles * vax.CycleNS / 1000,
		MemWordsPer:   dWords,
	})
	return out, nil
}
