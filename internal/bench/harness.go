package bench

import (
	"context"
	"fmt"

	"risc1/internal/asm"
	"risc1/internal/cpu"
	"risc1/internal/exec"
	"risc1/internal/machine"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/regfile"
	"risc1/internal/rv32"
	"risc1/internal/trace"
	"risc1/internal/vax"
)

// The harness runs every workload through the machine registry: one
// generic compile+load+run core (runOn), with a thin typed wrapper per
// machine that unwraps the adapter to mine concrete statistics the
// paper's tables need (window spills, delay-slot fills, microcoded call
// costs). Adding a machine means registering a backend and, if a table
// wants its internals, one more wrapper — the core never changes.

// Registry entries the harness measures. Resolved once; a missing one
// is a build error in the registry, not a runtime condition.
var (
	riscBackend = backend("risc1")
	ciscBackend = backend("cisc")
	rv32Backend = backend("rv32")
)

func backend(name string) *machine.Backend {
	b, ok := machine.Lookup(name)
	if !ok {
		panic("bench: machine " + name + " is not registered")
	}
	return b
}

// RiscRun is the outcome of one workload on the RISC I simulator.
type RiscRun struct {
	Result       int32
	Instructions uint64
	Cycles       uint64
	Micros       float64
	TextBytes    int
	Windows      regfile.Stats
	CPUStats     cpu.Stats
	Slots        asm.SlotStats
	Mix          []trace.Share
	Ops          []trace.Share // per-opcode dynamic counts
	MaxDepth     int
	Depths       []uint64 // calls beginning at each nesting depth
	DataTraffic  mem.Stats
	// Report is the machine-readable form of this run. Its ICache
	// section is cleared: icache activity is host machinery that differs
	// with RiscConfig.NoICache while every simulated number here is
	// identical (TestICacheDeterminism compares whole RiscRun values).
	Report obs.Report
}

// VaxRun is the outcome of one workload on the CISC baseline.
type VaxRun struct {
	Result       int32
	Instructions uint64
	Cycles       uint64
	Micros       float64
	TextBytes    int
	Stats        vax.Stats
	Mix          []trace.Share
	DataTraffic  mem.Stats
	// Report is the machine-readable form of this run.
	Report obs.Report
}

// Rv32Run is the outcome of one workload on the RV32I-subset machine —
// the delay-slot-free, window-free RISC point between the other two.
type Rv32Run struct {
	Result       int32
	Instructions uint64
	Cycles       uint64
	Micros       float64
	TextBytes    int
	Stats        rv32.Stats
	Mix          []trace.Share
	DataTraffic  mem.Stats
	// Report is the machine-readable form of this run.
	Report obs.Report
}

// RiscConfig tweaks a RISC run.
type RiscConfig struct {
	Windows   int  // 0 = the paper's 8
	NoWindows bool // ablation: spill/refill on every call
	Optimize  bool // fill delay slots
	Opt       int  // compiler optimization level (-O0 / -O1)
	NoICache  bool // disable the simulator's predecoded instruction cache
}

// VaxConfig tweaks a CISC baseline run.
type VaxConfig struct {
	Opt int // compiler optimization level (-O0 / -O1)
}

// Rv32Config tweaks an RV32 run.
type Rv32Config struct {
	Opt int // compiler optimization level (-O0 / -O1)
}

// OptLevel is the compiler optimization level the harness's composite
// measurements (Compare, SweepWindows, MeasureCallCost) run at.
// risc1-bench's -opt flag overrides it.
var OptLevel = 1

// NoICache globally disables the predecoded instruction cache in every
// RISC run the harness makes — risc1-bench's -nocache escape hatch.
// Simulated cycles and statistics are identical either way; only host
// speed changes.
var NoICache bool

// options maps a RISC bench configuration to registry options — the
// cache key batch workers reuse machines under.
func (cfg RiscConfig) options() machine.Options {
	return machine.Options{
		Opt:        cfg.Opt,
		DelaySlots: cfg.Optimize,
		Windows:    cfg.Windows,
		NoWindows:  cfg.NoWindows,
		NoICache:   cfg.NoICache || NoICache,
	}
}

func (cfg VaxConfig) options() machine.Options { return machine.Options{Opt: cfg.Opt} }

func (cfg Rv32Config) options() machine.Options { return machine.Options{Opt: cfg.Opt} }

// runOn is the generic core every harness measurement goes through:
// compile w for backend b (via the pool's shared program cache when
// sims is non-nil, so a sweep resubmitting one workload under many
// machine configurations compiles it once), load it into the worker's
// cached simulator (or a fresh one outside a pool), run to completion,
// and verify the result word against the workload's Go reference value.
func runOn(ctx context.Context, sims *exec.Sims, b *machine.Backend, w Workload, o machine.Options) (machine.Machine, machine.Program, []obs.PassStat, int32, error) {
	o = b.Normalize(o)
	prog, text, passes, err := sims.Compile(ctx, b, w.Source, o)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	var m machine.Machine
	if sims != nil {
		m = sims.Machine(b, o)
	} else {
		m = b.New(o)
	}
	m.Reset(prog.Entry())
	if err := prog.LoadInto(m.Mem()); err != nil {
		return nil, nil, nil, 0, err
	}
	if err := m.RunContext(ctx); err != nil {
		return nil, nil, nil, 0, fmt.Errorf("bench %s (%s): %w\n%s", w.Name, b.Name, err, text)
	}
	addr, ok := prog.Symbol("result")
	if !ok {
		return nil, nil, nil, 0, fmt.Errorf("bench %s: no global named result", w.Name)
	}
	v, err := m.Mem().LoadWord(addr)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if int32(v) != w.Expected {
		return nil, nil, nil, 0, fmt.Errorf("bench %s (%s): result %d, want %d", w.Name, b.Name, int32(v), w.Expected)
	}
	return m, prog, passes, int32(v), nil
}

// RunRISC compiles and executes a workload on the RISC I simulator.
func RunRISC(w Workload, cfg RiscConfig) (RiscRun, error) {
	return RunRISCOn(context.Background(), nil, w, cfg)
}

// RunRISCOn is RunRISC on a batch worker: sims (when non-nil) supplies
// the per-worker simulator to reuse, and ctx bounds the run. This is
// the function CompareAllOn submits to the pool.
func RunRISCOn(ctx context.Context, sims *exec.Sims, w Workload, cfg RiscConfig) (RiscRun, error) {
	m, prog, passes, v, err := runOn(ctx, sims, riscBackend, w, cfg.options())
	if err != nil {
		return RiscRun{}, err
	}
	c := machine.Unwrap(m).(*cpu.CPU)
	ap := machine.Unwrap(prog).(*asm.Program)
	run := RiscRun{
		Result:       v,
		Instructions: c.Trace.Instructions,
		Cycles:       c.Trace.Cycles,
		Micros:       c.Micros(),
		TextBytes:    ap.TextSize,
		Windows:      c.Regs.Stats,
		CPUStats:     c.Stats,
		Slots:        ap.Slots,
		Mix:          c.Trace.Mix(),
		Ops:          c.Trace.OpCounts(),
		MaxDepth:     c.Regs.MaxDepth(),
		Depths:       c.Trace.DepthHistogram(),
		DataTraffic:  c.Mem.Stats,
		Report:       m.BuildReport(w.Name),
	}
	run.Report.ICache = nil // host machinery; see the field comment
	run.Report.Config.Optimized = cfg.Optimize
	run.Report.Config.OptLevel = cfg.Opt
	run.Report.Config.Passes = passes
	return run, nil
}

// RunVAX compiles and executes a workload on the CISC baseline.
func RunVAX(w Workload, cfg VaxConfig) (VaxRun, error) {
	return RunVAXOn(context.Background(), nil, w, cfg)
}

// RunVAXOn is RunVAX on a batch worker, mirroring RunRISCOn.
func RunVAXOn(ctx context.Context, sims *exec.Sims, w Workload, cfg VaxConfig) (VaxRun, error) {
	m, prog, passes, v, err := runOn(ctx, sims, ciscBackend, w, cfg.options())
	if err != nil {
		return VaxRun{}, err
	}
	c := machine.Unwrap(m).(*vax.CPU)
	vp := machine.Unwrap(prog).(*vax.Program)
	run := VaxRun{
		Result:       v,
		Instructions: c.Trace.Instructions,
		Cycles:       c.Trace.Cycles,
		Micros:       c.Micros(),
		TextBytes:    vp.TextSize,
		Stats:        c.Stats,
		Mix:          c.Trace.Mix(),
		DataTraffic:  c.Mem.Stats,
		Report:       m.BuildReport(w.Name),
	}
	run.Report.Config.OptLevel = cfg.Opt
	run.Report.Config.Passes = passes
	return run, nil
}

// RunRV32 compiles and executes a workload on the RV32I-subset machine.
func RunRV32(w Workload, cfg Rv32Config) (Rv32Run, error) {
	return RunRV32On(context.Background(), nil, w, cfg)
}

// RunRV32On is RunRV32 on a batch worker, mirroring RunRISCOn.
func RunRV32On(ctx context.Context, sims *exec.Sims, w Workload, cfg Rv32Config) (Rv32Run, error) {
	m, prog, passes, v, err := runOn(ctx, sims, rv32Backend, w, cfg.options())
	if err != nil {
		return Rv32Run{}, err
	}
	c := machine.Unwrap(m).(*rv32.CPU)
	rp := machine.Unwrap(prog).(*rv32.Program)
	run := Rv32Run{
		Result:       v,
		Instructions: c.Trace.Instructions,
		Cycles:       c.Trace.Cycles,
		Micros:       c.Micros(),
		TextBytes:    rp.TextSize,
		Stats:        c.Stats,
		Mix:          c.Trace.Mix(),
		DataTraffic:  c.Mem.Stats,
		Report:       m.BuildReport(w.Name),
	}
	run.Report.Config.OptLevel = cfg.Opt
	run.Report.Config.Passes = passes
	return run, nil
}

// Comparison is one workload measured on every machine variant the
// paper's tables need.
type Comparison struct {
	Workload Workload
	Risc     RiscRun // 8 windows, delay slots optimized
	RiscNop  RiscRun // 8 windows, unoptimized (NOPs in every slot)
	Vax      VaxRun
	Rv32     Rv32Run // windowless, delay-slot-free RISC
}

// Compare runs one workload everywhere.
func Compare(w Workload) (Comparison, error) {
	risc, err := RunRISC(w, RiscConfig{Optimize: true, Opt: OptLevel})
	if err != nil {
		return Comparison{}, err
	}
	riscNop, err := RunRISC(w, RiscConfig{Optimize: false, Opt: OptLevel})
	if err != nil {
		return Comparison{}, err
	}
	vx, err := RunVAX(w, VaxConfig{Opt: OptLevel})
	if err != nil {
		return Comparison{}, err
	}
	rv, err := RunRV32(w, Rv32Config{Opt: OptLevel})
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Workload: w, Risc: risc, RiscNop: riscNop, Vax: vx, Rv32: rv}, nil
}

// CompareAll runs the whole suite through a batch pool sized by the
// package's Parallel setting. Output order (and therefore any report
// built from it) is the suite order regardless of worker count.
func CompareAll(suite []Workload) ([]Comparison, error) {
	p := newPool()
	defer p.Close()
	return CompareAllOn(context.Background(), p, suite)
}

// Reports flattens a comparison set into the run list of an
// obs.BenchReport: for each workload the optimized RISC run, the
// unoptimized RISC run, the baseline, then the RV32 run (told apart by
// Machine and Config.Optimized).
func Reports(cs []Comparison) []obs.Report {
	out := make([]obs.Report, 0, 4*len(cs))
	for _, c := range cs {
		out = append(out, c.Risc.Report, c.RiscNop.Report, c.Vax.Report, c.Rv32.Report)
	}
	return out
}

// WindowSweep measures the overflow rate (fraction of calls that spill)
// for each window count, per call-heavy workload — the data behind the
// paper's window-size figure.
type WindowSweep struct {
	Windows   []int
	Workloads []string
	// Rate[i][j] is the overflow rate at Windows[i] for Workloads[j].
	Rate [][]float64
	// Micros[i][j] is the total simulated run time, showing how window
	// count buys performance until the overflow rate bottoms out.
	Micros [][]float64
	// Calls[j] is the total window calls made by workload j.
	Calls []uint64
}

// SweepWindows runs the call-heavy subset across window counts, one
// pool job per (window count, workload) pair.
func SweepWindows(suite []Workload, windowCounts []int) (WindowSweep, error) {
	p := newPool()
	defer p.Close()
	return SweepWindowsOn(context.Background(), p, suite, windowCounts)
}

// SweepWindowsOn is SweepWindows on an existing pool. Rows are indexed
// by window count and column by workload, assembled from the batch in
// submission order, so the sweep is deterministic at any parallelism.
func SweepWindowsOn(ctx context.Context, p *exec.Pool, suite []Workload, windowCounts []int) (WindowSweep, error) {
	var sweep WindowSweep
	sweep.Windows = windowCounts
	var heavy []Workload
	for _, w := range suite {
		if w.CallHeavy {
			heavy = append(heavy, w)
			sweep.Workloads = append(sweep.Workloads, w.Name)
		}
	}
	sweep.Calls = make([]uint64, len(heavy))
	jobs := make([]exec.Job, 0, len(windowCounts)*len(heavy))
	for _, wins := range windowCounts {
		for _, w := range heavy {
			jobs = append(jobs, riscJob(w, RiscConfig{Windows: wins, Optimize: true, Opt: OptLevel}))
		}
	}
	results := p.RunBatch(ctx, jobs)
	for i := range windowCounts {
		row := make([]float64, len(heavy))
		us := make([]float64, len(heavy))
		for j := range heavy {
			res := results[i*len(heavy)+j]
			if res.Err != nil {
				return sweep, res.Err
			}
			run := res.Value.(RiscRun)
			if run.Windows.Calls > 0 {
				row[j] = float64(run.Windows.Overflows) / float64(run.Windows.Calls)
			}
			us[j] = run.Micros
			sweep.Calls[j] = run.Windows.Calls
		}
		sweep.Rate = append(sweep.Rate, row)
		sweep.Micros = append(sweep.Micros, us)
	}
	return sweep, nil
}

// CallCost measures the incremental cost of one call/return pair on each
// machine, by differencing a calling loop against a call-free loop — the
// paper's procedure-call overhead comparison.
type CallCost struct {
	Machine       string
	CyclesPerCall float64
	MicrosPerCall float64
	MemWordsPer   float64 // data-memory words moved per call/return
}

const callLoopN = 2000

func callBenchSource(withCall bool) string {
	body := "s = s + leaf(i, 1);"
	if !withCall {
		body = "s = s + i + 1;"
	}
	return fmt.Sprintf(`
int result;
int leaf(int a, int b) { return a + b; }
int main() {
	int i; int s;
	s = 0;
	for (i = 0; i < %d; i = i + 1) {
		%s
	}
	result = s;
	return 0;
}
`, callLoopN, body)
}

func callBenchExpected() int32 {
	var s int32
	for i := int32(0); i < callLoopN; i++ {
		s += i + 1
	}
	return s
}

// callMeasure runs one side of the differenced microbenchmark and
// returns the totals the subtraction needs: simulated cycles and
// data-memory bytes moved.
func callMeasure(b *machine.Backend, w Workload, o machine.Options) (cycles, memBytes uint64, err error) {
	m, _, _, _, err := runOn(context.Background(), nil, b, w, o)
	if err != nil {
		return 0, 0, err
	}
	st := m.Mem().Stats
	return m.Cycles(), st.BytesRead + st.BytesWritten, nil
}

// MeasureCallCost returns per-call costs for RISC I with windows, RISC I
// without windows (every call spills), the CISC baseline's CALLS/RET,
// and RV32's jal/jalr with explicit frame stores.
func MeasureCallCost() ([]CallCost, error) {
	with := Workload{Name: "callcost", Source: callBenchSource(true), Expected: callBenchExpected()}
	without := Workload{Name: "callbase", Source: callBenchSource(false), Expected: callBenchExpected()}

	variants := []struct {
		label string
		b     *machine.Backend
		o     machine.Options
	}{
		{"RISC I (8 windows)", riscBackend, RiscConfig{Optimize: true, Opt: OptLevel}.options()},
		{"RISC I (no windows)", riscBackend, RiscConfig{NoWindows: true, Optimize: true, Opt: OptLevel}.options()},
		{"CISC (CALLS/RET)", ciscBackend, VaxConfig{Opt: OptLevel}.options()},
		{"RV32 (jal/jalr)", rv32Backend, Rv32Config{Opt: OptLevel}.options()},
	}
	out := make([]CallCost, 0, len(variants))
	for _, vt := range variants {
		aCycles, aBytes, err := callMeasure(vt.b, with, vt.o)
		if err != nil {
			return nil, err
		}
		bCycles, bBytes, err := callMeasure(vt.b, without, vt.o)
		if err != nil {
			return nil, err
		}
		dCycles := float64(aCycles-bCycles) / callLoopN
		dWords := float64(aBytes-bBytes) / 4 / callLoopN
		out = append(out, CallCost{
			Machine:       vt.label,
			CyclesPerCall: dCycles,
			MicrosPerCall: dCycles * vt.b.CycleNS / 1000,
			MemWordsPer:   dWords,
		})
	}
	return out, nil
}
