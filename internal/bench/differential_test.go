package bench

import (
	"testing"

	"risc1/internal/cc"
)

// TestOptLevelsAgreeOnAllWorkloads is the optimizer's differential
// acceptance test: for every benchmark workload, compiling at -O0 and
// -O1 must produce identical guest-visible results on all three
// simulators. (RunRISC/RunVAX/RunRV32 already compare each run against
// the Go reference value, so this also re-checks correctness at both
// levels.)
func TestOptLevelsAgreeOnAllWorkloads(t *testing.T) {
	for _, w := range Suite(Small()) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			r0, err := RunRISC(w, RiscConfig{Optimize: true, Opt: 0})
			if err != nil {
				t.Fatalf("risc -O0: %v", err)
			}
			r1, err := RunRISC(w, RiscConfig{Optimize: true, Opt: 1})
			if err != nil {
				t.Fatalf("risc -O1: %v", err)
			}
			if r0.Result != r1.Result {
				t.Errorf("risc: -O0 result %d != -O1 result %d", r0.Result, r1.Result)
			}
			if r1.Instructions > r0.Instructions {
				t.Errorf("risc: -O1 executed more instructions than -O0 (%d vs %d)",
					r1.Instructions, r0.Instructions)
			}
			v0, err := RunVAX(w, VaxConfig{Opt: 0})
			if err != nil {
				t.Fatalf("vax -O0: %v", err)
			}
			v1, err := RunVAX(w, VaxConfig{Opt: 1})
			if err != nil {
				t.Fatalf("vax -O1: %v", err)
			}
			if v0.Result != v1.Result {
				t.Errorf("vax: -O0 result %d != -O1 result %d", v0.Result, v1.Result)
			}
			if v1.Instructions > v0.Instructions {
				t.Errorf("vax: -O1 executed more instructions than -O0 (%d vs %d)",
					v1.Instructions, v0.Instructions)
			}
			g0, err := RunRV32(w, Rv32Config{Opt: 0})
			if err != nil {
				t.Fatalf("rv32 -O0: %v", err)
			}
			g1, err := RunRV32(w, Rv32Config{Opt: 1})
			if err != nil {
				t.Fatalf("rv32 -O1: %v", err)
			}
			if g0.Result != g1.Result {
				t.Errorf("rv32: -O0 result %d != -O1 result %d", g0.Result, g1.Result)
			}
			if g1.Instructions > g0.Instructions {
				t.Errorf("rv32: -O1 executed more instructions than -O0 (%d vs %d)",
					g1.Instructions, g0.Instructions)
			}
		})
	}
}

// TestOptShrinksStaticCode pins the optimizer's static effect: -O1 code
// must be strictly smaller than -O0 code for the CISC baseline on every
// workload (the optimizer moved machine-independent work out of the
// RISC generator, so the baseline now benefits equally), and no larger
// for RISC.
func TestOptShrinksStaticCode(t *testing.T) {
	for _, w := range Suite(Small()) {
		v0, _, _, err := cc.CompileVAX(w.Source, cc.Options{Opt: 0})
		if err != nil {
			t.Fatalf("%s vax -O0: %v", w.Name, err)
		}
		v1, _, _, err := cc.CompileVAX(w.Source, cc.Options{Opt: 1})
		if err != nil {
			t.Fatalf("%s vax -O1: %v", w.Name, err)
		}
		if v1.TextSize >= v0.TextSize {
			t.Errorf("%s: vax -O1 text %d bytes, not smaller than -O0's %d",
				w.Name, v1.TextSize, v0.TextSize)
		}
		r0, _, _, err := cc.CompileRISC(w.Source, cc.Options{Opt: 0, DelaySlots: true})
		if err != nil {
			t.Fatalf("%s risc -O0: %v", w.Name, err)
		}
		r1, _, _, err := cc.CompileRISC(w.Source, cc.Options{Opt: 1, DelaySlots: true})
		if err != nil {
			t.Fatalf("%s risc -O1: %v", w.Name, err)
		}
		if r1.TextSize > r0.TextSize {
			t.Errorf("%s: risc -O1 text %d bytes, larger than -O0's %d",
				w.Name, r1.TextSize, r0.TextSize)
		}
	}
}
