package bench

import (
	"context"

	"risc1/internal/exec"
)

// Parallel is the worker count the harness's composite measurements
// (CompareAll, SweepWindows, RunAblation) run with — risc1-bench's
// -parallel flag. Values below 1 mean one worker. Whatever the count,
// every result is assembled in submission order, so tables and reports
// are byte-identical across settings (TestParallelDeterminism pins it).
var Parallel = 1

// newPool builds the engine behind one composite measurement.
func newPool() *exec.Pool {
	n := Parallel
	if n < 1 {
		n = 1
	}
	return exec.NewPool(exec.Config{Workers: n})
}

// riscJob wraps one RISC run as a pool job carrying its typed result.
func riscJob(w Workload, cfg RiscConfig) exec.Job {
	return exec.Job{Key: w.Name + "/risc", Fn: func(ctx context.Context, sims *exec.Sims) (any, error) {
		return RunRISCOn(ctx, sims, w, cfg)
	}}
}

// vaxJob wraps one baseline run as a pool job.
func vaxJob(w Workload, cfg VaxConfig) exec.Job {
	return exec.Job{Key: w.Name + "/vax", Fn: func(ctx context.Context, sims *exec.Sims) (any, error) {
		return RunVAXOn(ctx, sims, w, cfg)
	}}
}

// rv32Job wraps one RV32 run as a pool job.
func rv32Job(w Workload, cfg Rv32Config) exec.Job {
	return exec.Job{Key: w.Name + "/rv32", Fn: func(ctx context.Context, sims *exec.Sims) (any, error) {
		return RunRV32On(ctx, sims, w, cfg)
	}}
}

// CompareAllOn runs the whole suite through pool: four jobs per
// workload (optimized RISC, unoptimized RISC, baseline, RV32), results
// reassembled in suite order. The pool's per-worker simulators are
// reused across jobs; the cross-job leakage tests in internal/exec pin
// that reuse never changes a result.
func CompareAllOn(ctx context.Context, p *exec.Pool, suite []Workload) ([]Comparison, error) {
	jobs := make([]exec.Job, 0, 4*len(suite))
	for _, w := range suite {
		jobs = append(jobs,
			riscJob(w, RiscConfig{Optimize: true, Opt: OptLevel}),
			riscJob(w, RiscConfig{Optimize: false, Opt: OptLevel}),
			vaxJob(w, VaxConfig{Opt: OptLevel}),
			rv32Job(w, Rv32Config{Opt: OptLevel}),
		)
	}
	results := p.RunBatch(ctx, jobs)
	out := make([]Comparison, 0, len(suite))
	for i, w := range suite {
		c := Comparison{Workload: w}
		for k, res := range results[4*i : 4*i+4] {
			if res.Err != nil {
				return nil, res.Err
			}
			switch k {
			case 0:
				c.Risc = res.Value.(RiscRun)
			case 1:
				c.RiscNop = res.Value.(RiscRun)
			case 2:
				c.Vax = res.Value.(VaxRun)
			default:
				c.Rv32 = res.Value.(Rv32Run)
			}
		}
		out = append(out, c)
	}
	return out, nil
}
