package bench

import (
	"bytes"
	"testing"

	"risc1/internal/obs"
)

// TestParallelDeterminism is the byte-identity contract behind the
// -parallel flag: the same suite run on one worker and on eight must
// produce the same JSON bench report, byte for byte. Results come back
// ordered by submission index, every simulated number is deterministic,
// and the report carries no wall-clock state — so any difference here
// is a real nondeterminism bug in the pool or a leak between reused
// simulators.
func TestParallelDeterminism(t *testing.T) {
	report := func(workers int) []byte {
		t.Helper()
		old := Parallel
		Parallel = workers
		defer func() { Parallel = old }()
		cs, err := CompareAll(Suite(Small()))
		if err != nil {
			t.Fatal(err)
		}
		r := obs.NewBenchReport("small", Reports(cs))
		b, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := report(1)
	parallel := report(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("bench report differs between -parallel=1 (%d bytes) and -parallel=8 (%d bytes)",
			len(serial), len(parallel))
	}
}

// TestAblationThroughPool keeps the pooled ablation on the rails: the
// full configuration must beat the featureless one on every call-heavy
// workload, whatever the worker count.
func TestAblationThroughPool(t *testing.T) {
	old := Parallel
	Parallel = 4
	defer func() { Parallel = old }()
	rows, err := RunAblation(Suite(Small()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no call-heavy rows")
	}
	for _, r := range rows {
		if r.Full >= r.NoWindowsNoOpt {
			t.Errorf("%s: full design (%d cycles) not faster than featureless (%d)",
				r.Name, r.Full, r.NoWindowsNoOpt)
		}
	}
}
