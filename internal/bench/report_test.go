package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"risc1/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the report golden file")

// goldenWorkload is a fixed small run the golden file pins. Fib at a
// fixed input is deterministic and exercises windows, traps and both
// instruction classes.
func goldenWorkload(t *testing.T) Workload {
	t.Helper()
	for _, w := range Suite(Small()) {
		if w.Name == "fib" {
			return w
		}
	}
	t.Fatal("no fib workload in the small suite")
	return Workload{}
}

// TestReportGolden pins the run-report JSON shape. A diff here means the
// schema changed: bump obs.ReportVersion, update DESIGN.md section 8,
// and regenerate with go test ./internal/bench -run TestReportGolden -update.
func TestReportGolden(t *testing.T) {
	run, err := RunRISC(goldenWorkload(t), RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON diverged from the golden file; if the schema "+
			"deliberately changed, bump obs.ReportVersion and rerun with -update.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportDeterminism is the acceptance criterion: two identical runs
// emit byte-identical reports.
func TestReportDeterminism(t *testing.T) {
	w := goldenWorkload(t)
	a, err := RunRISC(w, RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRISC(w, RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("identical runs produced different report bytes")
	}
}

// TestReportMatchesCollector asserts the report's totals are the
// collector's, not a parallel count that could drift.
func TestReportMatchesCollector(t *testing.T) {
	run, err := RunRISC(goldenWorkload(t), RiscConfig{Optimize: true, Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := run.Report
	if r.Totals.Cycles != run.Cycles || r.Totals.Instructions != run.Instructions {
		t.Errorf("report totals %d cycles / %d instructions, collector %d / %d",
			r.Totals.Cycles, r.Totals.Instructions, run.Cycles, run.Instructions)
	}
	if r.Totals.BaseCycles+r.Totals.TrapCycles != r.Totals.Cycles {
		t.Errorf("base (%d) + trap (%d) != total (%d)",
			r.Totals.BaseCycles, r.Totals.TrapCycles, r.Totals.Cycles)
	}
	if r.Memory.Reads != run.DataTraffic.Reads || r.Memory.BytesWritten != run.DataTraffic.BytesWritten {
		t.Errorf("report memory section %+v disagrees with DataTraffic %+v", r.Memory, run.DataTraffic)
	}
	var winSum uint64
	for _, m := range r.Mix {
		winSum += m.Count
	}
	if winSum != r.Totals.Instructions {
		t.Errorf("mix counts sum to %d, want %d", winSum, r.Totals.Instructions)
	}
}

// TestVaxReportMatchesCollector does the same for the baseline.
func TestVaxReportMatchesCollector(t *testing.T) {
	run, err := RunVAX(goldenWorkload(t), VaxConfig{Opt: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := run.Report
	if r.Machine != "cisc" {
		t.Errorf("machine = %q", r.Machine)
	}
	if r.Totals.Cycles != run.Cycles || r.Totals.Instructions != run.Instructions {
		t.Errorf("report totals %d/%d, collector %d/%d",
			r.Totals.Cycles, r.Totals.Instructions, run.Cycles, run.Instructions)
	}
	if r.Cisc == nil || r.Cisc.Calls == 0 {
		t.Errorf("cisc section missing or empty: %+v", r.Cisc)
	}
}

// TestBenchReportShape checks the suite-level wrapper: four runs per
// workload, valid JSON, stable schema header.
func TestBenchReportShape(t *testing.T) {
	c, err := Compare(goldenWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	br := obs.NewBenchReport("small", Reports([]Comparison{c}))
	if len(br.Runs) != 4 {
		t.Fatalf("runs = %d, want risc, risc-nop, vax, rv32", len(br.Runs))
	}
	if br.Runs[0].Machine != "risc1" || !br.Runs[0].Config.Optimized {
		t.Errorf("run 0 = %s optimized=%v, want optimized risc1", br.Runs[0].Machine, br.Runs[0].Config.Optimized)
	}
	if br.Runs[1].Machine != "risc1" || br.Runs[1].Config.Optimized {
		t.Errorf("run 1 should be the unoptimized risc run")
	}
	if br.Runs[2].Machine != "cisc" {
		t.Errorf("run 2 = %s, want cisc", br.Runs[2].Machine)
	}
	if br.Runs[3].Machine != "rv32" {
		t.Errorf("run 3 = %s, want rv32", br.Runs[3].Machine)
	}
	b, err := br.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("bench report invalid JSON: %v", err)
	}
	if parsed["schema"] != "risc1.bench-report" {
		t.Errorf("schema = %v", parsed["schema"])
	}
}
