package asm

import (
	"risc1/internal/isa"
	"risc1/internal/syntax"
)

// optimize fills delayed-jump slots: where a jump is followed by a NOP
// and preceded by an instruction that can legally execute after the jump
// instead of before it, the predecessor moves into the shadow slot. This
// is the branch optimization the paper's compiler performed; its fill
// rate is one of the reproduced results.
//
// Only JMP/JMPR slots are filled. CALL/RET slots are left alone because
// the register window changes with the transfer, so an instruction moved
// into the slot would address different physical registers.
func (p *parser) optimize() {
	for i := 1; i+1 < len(p.items); i++ {
		br := &p.items[i]
		if br.kind != itemInst || (br.op != isa.JMP && br.op != isa.JMPR) {
			continue
		}
		slot := &p.items[i+1]
		cand := &p.items[i-1]
		if !isNop(*slot) || len(slot.labels) != 0 {
			continue // slot already useful, or a jump target
		}
		if len(br.labels) != 0 || len(cand.labels) != 0 {
			// Moving the candidate across a label would change what
			// executes on paths that enter at the label.
			continue
		}
		if !movable(*cand, *br) {
			continue
		}
		// The candidate must not itself sit in another transfer's slot.
		if i >= 2 && inSlotOf(p.items[i-2]) {
			continue
		}
		// Swap candidate and branch; the old NOP disappears.
		p.items[i-1], p.items[i] = p.items[i], p.items[i-1]
		p.items = append(p.items[:i+1], p.items[i+2:]...)
	}
	p.fillFromTargets()
}

// fillFromTargets handles slots the predecessor pass could not fill: for
// an *unconditional* jump to a label, the first instruction at the
// target can be copied into the shadow slot and the jump retargeted four
// bytes past the label — the executed stream is provably identical, so
// this is always safe. (The paper's compiler also filled conditional
// slots this way, accepting a wasted instruction on the fall-through
// path; this implementation stays strictly semantics-preserving.)
func (p *parser) fillFromTargets() {
	// Label addresses are not assigned yet (layout runs later), so
	// targets resolve through the attached label names.
	labelItem := make(map[string]int, len(p.items))
	for i, it := range p.items {
		for _, l := range it.labels {
			labelItem[l] = i
		}
	}
	for i := 0; i+1 < len(p.items); i++ {
		br := &p.items[i]
		if br.kind != itemInst || br.op != isa.JMPR || isa.Cond(br.rd&0x0f) != isa.CondAlways {
			continue
		}
		slot := &p.items[i+1]
		if !isNop(*slot) || len(slot.labels) != 0 {
			continue
		}
		sym, ok := br.longE.(syntax.Sym)
		if !ok {
			continue
		}
		ti, ok := labelItem[sym.Name]
		if !ok {
			continue
		}
		target := p.items[ti]
		if target.kind != itemInst || target.op.Info().Class == isa.ClassCtrl {
			continue
		}
		// Copy the target instruction into the slot and jump past it.
		copied := target
		copied.labels = nil
		p.items[i+1] = copied
		br.longE = syntax.Binary{Op: "+", X: sym, Y: syntax.Num{V: isa.InstBytes}, Line: br.line}
	}
}

// inSlotOf reports whether the item preceding a candidate is a control
// transfer, which would make the candidate that transfer's delay slot.
func inSlotOf(prev item) bool {
	return prev.kind == itemInst && prev.op.Info().Class == isa.ClassCtrl
}

// movable reports whether cand may execute after br rather than before
// it. Since the delay slot executes on both the taken and the untaken
// path, ordinary data flow is preserved automatically; the only hazards
// are the branch's own inputs: its condition codes and its target
// registers.
func movable(cand, br item) bool {
	if cand.kind != itemInst {
		return false
	}
	info := cand.op.Info()
	if info.Class == isa.ClassCtrl {
		return false // never move a transfer into a slot
	}
	if cand.op == isa.PUTPSW {
		return false // rewrites the condition codes wholesale
	}
	// A conditional branch reads the flags; don't move their producer.
	if cand.scc && isa.Cond(br.rd&0x0f) != isa.CondAlways {
		return false
	}
	// A register-form JMP reads rs1 (and rs2); don't move its producer.
	if br.op == isa.JMP {
		writes := candWrites(cand)
		if writes != 0 && (cand.rd == br.rs1 || (!br.hasImm && cand.rd == br.rs2)) {
			return false
		}
	}
	return true
}

// candWrites reports whether the candidate writes a visible register
// (returns 0 for stores and PSW writes, 1 otherwise). Writes to r0 are
// architectural no-ops but are conservatively treated as writes.
func candWrites(cand item) int {
	if cand.op.Info().Store || cand.op == isa.PUTPSW {
		return 0
	}
	return 1
}
