package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"risc1/internal/isa"
	"risc1/internal/syntax"
)

// Options selects assembler behaviour.
type Options struct {
	// Optimize runs the delayed-jump optimizer: NOPs in the shadow of a
	// jump are replaced, where provably safe, by the instruction that
	// preceded the jump — the optimization the paper's compiler applied.
	Optimize bool
}

// Assemble translates RISC I assembly source into a loadable program.
//
// Syntax summary: one instruction or directive per line; comments with
// ';' or '#'; "label:" prefixes; a '.' suffix on a mnemonic sets the
// condition codes (e.g. "sub. r1, r2, r3"). Pseudo-instructions: nop,
// mov, li, call, ret, ba, and b<cond> (beq, bne, blt, ...). Directives:
// .org .equ .word .half .byte .ascii .asciz .space .align.
func Assemble(src string, opts Options) (*Program, error) {
	p := &parser{syms: make(map[string]uint32)}
	if err := p.parseAll(src); err != nil {
		return nil, err
	}
	if opts.Optimize {
		p.optimize()
	}
	if err := p.layout(); err != nil {
		return nil, err
	}
	return p.emit()
}

// MustAssemble is Assemble for known-good embedded sources; it panics on
// error, which indicates a defect in the embedded program.
func MustAssemble(src string, opts Options) *Program {
	prog, err := Assemble(src, opts)
	if err != nil {
		panic(err)
	}
	return prog
}

type itemKind uint8

const (
	itemInst itemKind = iota
	itemWord
	itemHalf
	itemByte
	itemAscii
	itemSpace
	itemAlign
	itemOrg
)

type item struct {
	kind   itemKind
	line   int
	labels []string

	// Instruction fields (itemInst).
	op     isa.Opcode
	scc    bool
	rd     uint8
	rs1    uint8
	rs2    uint8
	hasImm bool        // short-format immediate present
	immE   syntax.Expr // imm13
	longE  syntax.Expr // imm19 (LDHI) or target address (pc-relative)
	pcRel  bool        // longE is an absolute target; encode longE - addr

	// Data fields.
	exprs []syntax.Expr
	str   string
	count uint32 // .space size / .align boundary / .org address

	addr uint32
}

type parser struct {
	items   []item
	syms    map[string]uint32
	pending []string // labels awaiting the next item
}

func (p *parser) parseAll(src string) error {
	for lineNo, line := range strings.Split(src, "\n") {
		if err := p.parseLine(line, lineNo+1); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseLine(line string, lineNo int) error {
	toks, err := syntax.ScanLine(line, lineNo)
	if err != nil {
		return err
	}
	// Leading labels.
	for len(toks) >= 2 && toks[0].Kind == syntax.Ident && toks[1].Kind == syntax.Punct && toks[1].Text == ":" {
		name := toks[0].Text
		p.pending = append(p.pending, name)
		toks = toks[2:]
	}
	if len(toks) == 0 {
		return nil
	}
	if toks[0].Kind != syntax.Ident {
		return errf(lineNo, "expected mnemonic or directive, got %q", toks[0].Text)
	}
	head := strings.ToLower(toks[0].Text)
	rest := toks[1:]
	if strings.HasPrefix(head, ".") {
		return p.parseDirective(head, rest, lineNo)
	}
	// Optional "." suffix selects condition-code setting.
	scc := false
	if len(rest) > 0 && rest[0].Text == "." {
		scc = true
		rest = rest[1:]
	}
	return p.parseInst(head, scc, rest, lineNo)
}

func (p *parser) add(it item) {
	it.labels = p.pending
	p.pending = nil
	p.items = append(p.items, it)
}

// operand cursor over a token slice.
type opCursor struct {
	toks []syntax.Token
	pos  int
	line int
}

func (c *opCursor) done() bool { return c.pos >= len(c.toks) }

func (c *opCursor) comma() error {
	if c.pos < len(c.toks) && c.toks[c.pos].Kind == syntax.Punct && c.toks[c.pos].Text == "," {
		c.pos++
		return nil
	}
	return errf(c.line, "expected ','")
}

func (c *opCursor) end() error {
	if !c.done() {
		return errf(c.line, "unexpected trailing operands")
	}
	return nil
}

// reg parses a register name r0..r31.
func (c *opCursor) reg() (uint8, error) {
	if c.done() || c.toks[c.pos].Kind != syntax.Ident {
		return 0, errf(c.line, "expected register")
	}
	r, ok := regNumber(c.toks[c.pos].Text)
	if !ok {
		return 0, errf(c.line, "expected register, got %q", c.toks[c.pos].Text)
	}
	c.pos++
	return r, nil
}

// regOrExpr parses either a register or a constant expression.
func (c *opCursor) regOrExpr() (reg uint8, isReg bool, e syntax.Expr, err error) {
	if !c.done() && c.toks[c.pos].Kind == syntax.Ident {
		if r, ok := regNumber(c.toks[c.pos].Text); ok {
			c.pos++
			return r, true, nil, nil
		}
	}
	e, err = c.expr()
	return 0, false, e, err
}

func (c *opCursor) expr() (syntax.Expr, error) {
	ep := &syntax.Parser{Toks: c.toks, Pos: c.pos, Line: c.line}
	e, err := ep.Parse()
	if err != nil {
		return nil, err
	}
	c.pos = ep.Pos
	return e, nil
}

func regNumber(s string) (uint8, bool) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumVisibleRegs {
		return 0, false
	}
	return uint8(n), true
}

// Conventional registers for pseudo-instructions: the return address lives
// in local r25, and "ret" skips the call plus its delay slot.
const (
	RetReg    = 25
	RetOffset = 8
)

func (p *parser) parseInst(name string, scc bool, toks []syntax.Token, line int) error {
	c := &opCursor{toks: toks, line: line}

	// Pseudo-instructions first.
	switch name {
	case "nop":
		if err := c.end(); err != nil {
			return err
		}
		p.add(nopItem(line))
		return nil
	case "mov":
		rd, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		reg, isReg, e, err := c.regOrExpr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		if isReg {
			p.add(item{kind: itemInst, line: line, op: isa.ADD, scc: scc, rd: rd, rs1: reg, hasImm: true, immE: syntax.Num{}})
		} else {
			p.add(item{kind: itemInst, line: line, op: isa.ADD, scc: scc, rd: rd, hasImm: true, immE: e})
		}
		return nil
	case "li":
		rd, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		if v, ok := syntax.LiteralValue(e); ok && v >= isa.Imm13Min && v <= isa.Imm13Max {
			p.add(item{kind: itemInst, line: line, op: isa.ADD, rd: rd, hasImm: true, immE: syntax.Num{V: v}})
			return nil
		}
		p.add(item{kind: itemInst, line: line, op: isa.LDHI, rd: rd, longE: exprHi{e}})
		p.items = append(p.items, item{kind: itemInst, line: line, op: isa.ADD, rd: rd, rs1: rd, hasImm: true, immE: exprLo{e}})
		return nil
	case "call":
		// "call label" is the pseudo (CALLR through r25); the raw
		// three-operand form "call rd, rs1, s2" starts with a register
		// and falls through to the real opcode below.
		if _, isRawForm := func() (uint8, bool) {
			if len(toks) > 0 && toks[0].Kind == syntax.Ident {
				return regNumber(toks[0].Text)
			}
			return 0, false
		}(); !isRawForm {
			e, err := c.expr()
			if err != nil {
				return err
			}
			if err := c.end(); err != nil {
				return err
			}
			p.add(item{kind: itemInst, line: line, op: isa.CALLR, rd: RetReg, longE: e, pcRel: true})
			return nil
		}
	case "ret":
		if c.done() {
			p.add(item{kind: itemInst, line: line, op: isa.RET, rd: RetReg, hasImm: true, immE: syntax.Num{V: RetOffset}})
			return nil
		}
		// Explicit form: ret rd, s2.
		rd, err := c.reg()
		if err != nil {
			return err
		}
		if err := c.comma(); err != nil {
			return err
		}
		reg, isReg, e, err := c.regOrExpr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		it := item{kind: itemInst, line: line, op: isa.RET, scc: scc, rd: rd}
		if isReg {
			it.rs2 = reg
		} else {
			it.hasImm, it.immE = true, e
		}
		p.add(it)
		return nil
	case "ba":
		return p.branchPseudo(isa.CondAlways, c, line)
	}
	if cond, ok := branchCond(name); ok {
		return p.branchPseudo(cond, c, line)
	}

	op, ok := isa.ByName(name)
	if !ok {
		return errf(line, "unknown instruction %q", name)
	}
	info := op.Info()
	it := item{kind: itemInst, line: line, op: op, scc: scc}

	parseS2 := func() error {
		reg, isReg, e, err := c.regOrExpr()
		if err != nil {
			return err
		}
		if isReg {
			it.rs2 = reg
		} else {
			it.hasImm, it.immE = true, e
		}
		return nil
	}

	switch {
	case info.Cond && info.Format == isa.FormatLong: // jmpr cond, target
		cond, err := parseCond(c)
		if err != nil {
			return err
		}
		it.rd = uint8(cond)
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		it.longE, it.pcRel = e, true

	case info.Cond: // jmp cond, rs1, s2
		cond, err := parseCond(c)
		if err != nil {
			return err
		}
		it.rd = uint8(cond)
		if err := c.comma(); err != nil {
			return err
		}
		r, err := c.reg()
		if err != nil {
			return err
		}
		it.rs1 = r
		if err := c.comma(); err != nil {
			return err
		}
		if err := parseS2(); err != nil {
			return err
		}

	case info.Format == isa.FormatLong: // ldhi/callr: rd, imm19
		rd, err := c.reg()
		if err != nil {
			return err
		}
		it.rd = rd
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		it.longE = e
		it.pcRel = op == isa.CALLR

	case op == isa.RET || op == isa.RETINT: // rd, s2
		rd, err := c.reg()
		if err != nil {
			return err
		}
		it.rd = rd
		if err := c.comma(); err != nil {
			return err
		}
		if err := parseS2(); err != nil {
			return err
		}

	case op == isa.GETPSW || op == isa.GTLPC: // rd
		rd, err := c.reg()
		if err != nil {
			return err
		}
		it.rd = rd

	case op == isa.PUTPSW: // rs1, s2
		r, err := c.reg()
		if err != nil {
			return err
		}
		it.rs1 = r
		if err := c.comma(); err != nil {
			return err
		}
		if err := parseS2(); err != nil {
			return err
		}

	default: // rd, rs1, s2 (ALU, loads, stores, call, callint)
		rd, err := c.reg()
		if err != nil {
			return err
		}
		it.rd = rd
		if err := c.comma(); err != nil {
			return err
		}
		r, err := c.reg()
		if err != nil {
			return err
		}
		it.rs1 = r
		if err := c.comma(); err != nil {
			return err
		}
		if err := parseS2(); err != nil {
			return err
		}
	}
	if err := c.end(); err != nil {
		return err
	}
	p.add(it)
	return nil
}

func (p *parser) branchPseudo(cond isa.Cond, c *opCursor, line int) error {
	e, err := c.expr()
	if err != nil {
		return err
	}
	if err := c.end(); err != nil {
		return err
	}
	p.add(item{kind: itemInst, line: line, op: isa.JMPR, rd: uint8(cond), longE: e, pcRel: true})
	return nil
}

// branchCond maps pseudo-branch mnemonics ("beq", "bne", ...) to jump
// conditions.
func branchCond(name string) (isa.Cond, bool) {
	if !strings.HasPrefix(name, "b") || len(name) < 2 {
		return 0, false
	}
	return isa.CondByName(name[1:])
}

func parseCond(c *opCursor) (isa.Cond, error) {
	if c.done() || c.toks[c.pos].Kind != syntax.Ident {
		return 0, errf(c.line, "expected jump condition")
	}
	cond, ok := isa.CondByName(strings.ToLower(c.toks[c.pos].Text))
	if !ok {
		return 0, errf(c.line, "unknown jump condition %q", c.toks[c.pos].Text)
	}
	c.pos++
	return cond, nil
}

func nopItem(line int) item {
	return item{kind: itemInst, line: line, op: isa.ADD}
}

func isNop(it item) bool {
	return it.kind == itemInst && it.op == isa.ADD && !it.scc &&
		it.rd == 0 && it.rs1 == 0 && !it.hasImm && it.rs2 == 0
}

func (p *parser) parseDirective(name string, toks []syntax.Token, line int) error {
	c := &opCursor{toks: toks, line: line}
	switch name {
	case ".equ":
		if c.done() || c.toks[c.pos].Kind != syntax.Ident {
			return errf(line, ".equ needs a name")
		}
		sym := c.toks[c.pos].Text
		c.pos++
		if err := c.comma(); err != nil {
			return err
		}
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		v, err := e.Eval(p.syms)
		if err != nil {
			return errf(line, ".equ value must be computable here: %v", err)
		}
		if _, dup := p.syms[sym]; dup {
			return errf(line, "symbol %q redefined", sym)
		}
		p.syms[sym] = uint32(v)
		return nil

	case ".org", ".space", ".align":
		e, err := c.expr()
		if err != nil {
			return err
		}
		if err := c.end(); err != nil {
			return err
		}
		v, err := e.Eval(p.syms)
		if err != nil {
			return errf(line, "%s operand must be computable here: %v", name, err)
		}
		if v < 0 {
			return errf(line, "%s operand must be non-negative", name)
		}
		kind := map[string]itemKind{".org": itemOrg, ".space": itemSpace, ".align": itemAlign}[name]
		if kind == itemAlign && (v == 0 || v&(v-1) != 0) {
			return errf(line, ".align needs a power of two")
		}
		p.add(item{kind: kind, line: line, count: uint32(v)})
		return nil

	case ".word", ".half", ".byte":
		var exprs []syntax.Expr
		for {
			e, err := c.expr()
			if err != nil {
				return err
			}
			exprs = append(exprs, e)
			if c.done() {
				break
			}
			if err := c.comma(); err != nil {
				return err
			}
		}
		kind := map[string]itemKind{".word": itemWord, ".half": itemHalf, ".byte": itemByte}[name]
		p.add(item{kind: kind, line: line, exprs: exprs})
		return nil

	case ".ascii", ".asciz":
		if c.done() || c.toks[c.pos].Kind != syntax.String {
			return errf(line, "%s needs a string", name)
		}
		s := c.toks[c.pos].Text
		c.pos++
		if err := c.end(); err != nil {
			return err
		}
		if name == ".asciz" {
			s += "\x00"
		}
		p.add(item{kind: itemAscii, line: line, str: s})
		return nil
	}
	return errf(line, "unknown directive %q", name)
}

func (it *item) size() uint32 {
	switch it.kind {
	case itemInst:
		return isa.InstBytes
	case itemWord:
		return 4 * uint32(len(it.exprs))
	case itemHalf:
		return 2 * uint32(len(it.exprs))
	case itemByte:
		return uint32(len(it.exprs))
	case itemAscii:
		return uint32(len(it.str))
	case itemSpace:
		return it.count
	default:
		return 0 // org/align handled in layout
	}
}

func (it *item) alignment() uint32 {
	switch it.kind {
	case itemInst, itemWord:
		return 4
	case itemHalf:
		return 2
	default:
		return 1
	}
}

// layout assigns addresses and defines labels.
func (p *parser) layout() error {
	lc := uint32(0)
	for i := range p.items {
		it := &p.items[i]
		switch it.kind {
		case itemOrg:
			if it.count < lc {
				return errf(it.line, ".org %#x moves backwards from %#x", it.count, lc)
			}
			lc = it.count
		case itemAlign:
			lc = (lc + it.count - 1) &^ (it.count - 1)
		}
		if a := it.alignment(); lc%a != 0 {
			lc = (lc + a - 1) &^ (a - 1)
		}
		it.addr = lc
		for _, l := range it.labels {
			if _, dup := p.syms[l]; dup {
				return errf(it.line, "symbol %q redefined", l)
			}
			p.syms[l] = lc
		}
		lc += it.size()
	}
	for _, l := range p.pending {
		if _, dup := p.syms[l]; dup {
			return fmt.Errorf("asm: symbol %q redefined", l)
		}
		p.syms[l] = lc
	}
	return nil
}

// emit encodes every item into segments.
func (p *parser) emit() (*Program, error) {
	prog := &Program{Symbols: p.syms}
	var cur *Segment
	ensure := func(addr uint32) *Segment {
		if cur != nil && cur.Addr+uint32(len(cur.Data)) == addr {
			return cur
		}
		prog.Segments = append(prog.Segments, Segment{Addr: addr})
		cur = &prog.Segments[len(prog.Segments)-1]
		return cur
	}
	put := func(addr uint32, b []byte) {
		s := ensure(addr)
		s.Data = append(s.Data, b...)
	}

	for i := range p.items {
		it := &p.items[i]
		switch it.kind {
		case itemInst:
			in, err := p.encode(it)
			if err != nil {
				return nil, err
			}
			w, err := in.Encode()
			if err != nil {
				return nil, errf(it.line, "%v", err)
			}
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], w)
			put(it.addr, b[:])
			prog.TextSize += 4
		case itemWord, itemHalf, itemByte:
			sz := map[itemKind]int{itemWord: 4, itemHalf: 2, itemByte: 1}[it.kind]
			for j, e := range it.exprs {
				v, err := e.Eval(p.syms)
				if err != nil {
					return nil, errf(it.line, "%v", err)
				}
				b := make([]byte, sz)
				switch sz {
				case 4:
					binary.BigEndian.PutUint32(b, uint32(v))
				case 2:
					binary.BigEndian.PutUint16(b, uint16(v))
				default:
					b[0] = byte(v)
				}
				put(it.addr+uint32(j*sz), b)
			}
			prog.DataSize += sz * len(it.exprs)
		case itemAscii:
			put(it.addr, []byte(it.str))
			prog.DataSize += len(it.str)
		case itemSpace:
			if it.count > 0 {
				put(it.addr, make([]byte, it.count))
				prog.DataSize += int(it.count)
			}
		}
	}

	p.slotStats(prog)
	prog.Entry = p.entry()
	return prog, nil
}

func (p *parser) entry() uint32 {
	if v, ok := p.syms["start"]; ok {
		return v
	}
	if v, ok := p.syms["main"]; ok {
		return v
	}
	for _, it := range p.items {
		if it.kind == itemInst {
			return it.addr
		}
	}
	return 0
}

// encode turns an item into an isa.Inst, resolving expressions.
func (p *parser) encode(it *item) (isa.Inst, error) {
	in := isa.Inst{Op: it.op, SCC: it.scc, Rd: it.rd, Rs1: it.rs1, Rs2: it.rs2}
	if it.hasImm {
		v, err := it.immE.Eval(p.syms)
		if err != nil {
			return in, errf(it.line, "%v", err)
		}
		if v < isa.Imm13Min || v > isa.Imm13Max {
			return in, errf(it.line, "immediate %d does not fit in 13 bits", v)
		}
		in.Imm = true
		in.Imm13 = int32(v)
	}
	if it.longE != nil {
		v, err := it.longE.Eval(p.syms)
		if err != nil {
			return in, errf(it.line, "%v", err)
		}
		if it.pcRel {
			v -= int64(it.addr)
		}
		if v < isa.Imm19Min || v > isa.Imm19Max {
			return in, errf(it.line, "displacement %d does not fit in 19 bits", v)
		}
		in.Imm19 = int32(v)
	}
	return in, nil
}

// slotStats counts, after optimization, how each control transfer's delay
// slot ended up: useful instruction or NOP.
func (p *parser) slotStats(prog *Program) {
	for i, it := range p.items {
		if it.kind != itemInst || it.op.Info().Class != isa.ClassCtrl {
			continue
		}
		prog.Slots.Transfers++
		if i+1 < len(p.items) && isNop(p.items[i+1]) {
			prog.Slots.Nops++
		} else {
			prog.Slots.Filled++
		}
	}
}
