// Package asm implements a two-pass assembler for the RISC I instruction
// set, including the delayed-jump optimizer the paper's compiler used to
// fill branch shadow slots, and static statistics (code size, delay-slot
// fill rate) for the evaluation tables.
package asm

import (
	"fmt"
	"sort"

	"risc1/internal/mem"
)

// Segment is a contiguous block of assembled bytes.
type Segment struct {
	Addr uint32
	Data []byte
}

// SlotStats reports what the delayed-jump optimizer did — the static side
// of the paper's branch-optimization experiment.
type SlotStats struct {
	Transfers int // control-transfer instructions assembled
	Filled    int // delay slots filled with useful work by the optimizer
	Nops      int // delay slots left holding a NOP
}

// FillRate returns the fraction of delay slots holding useful work.
func (s SlotStats) FillRate() float64 {
	if s.Transfers == 0 {
		return 0
	}
	return float64(s.Filled) / float64(s.Transfers)
}

// Program is the output of the assembler.
type Program struct {
	Segments []Segment
	Symbols  map[string]uint32
	Entry    uint32 // address of "main" if defined, else of "start", else first instruction
	TextSize int    // bytes of instructions (static code size for the tables)
	DataSize int    // bytes of data directives
	Slots    SlotStats
}

// LoadInto copies all segments into memory.
func (p *Program) LoadInto(m *mem.Memory) error {
	for _, s := range p.Segments {
		if err := m.WriteBytes(s.Addr, s.Data); err != nil {
			return fmt.Errorf("asm: loading segment at %#08x: %w", s.Addr, err)
		}
	}
	return nil
}

// Symbol looks up a label or .equ value.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// SortedSymbols returns symbol names in address order, for listings.
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Error is an assembly diagnostic with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
