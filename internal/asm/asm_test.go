package asm

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"risc1/internal/isa"
)

// words decodes a program's first segment into instructions.
func words(t *testing.T, p *Program) []uint32 {
	t.Helper()
	if len(p.Segments) == 0 {
		t.Fatal("no segments")
	}
	data := p.Segments[0].Data
	out := make([]uint32, 0, len(data)/4)
	for i := 0; i+4 <= len(data); i += 4 {
		out = append(out, binary.BigEndian.Uint32(data[i:]))
	}
	return out
}

func disasm(t *testing.T, w uint32) string {
	t.Helper()
	in, err := isa.Decode(w)
	if err != nil {
		t.Fatalf("decode %#08x: %v", w, err)
	}
	return in.String()
}

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicInstructions(t *testing.T) {
	p := assemble(t, `
		add r1, r2, r3
		sub. r4, r5, -7
		xor r6, r7, 0x1f
		sll r1, r1, 2
		ldl r16, r30, 8
		stl r10, r30, 12
		jmp eq, r5, 0
		ret r26, 8
		getpsw r3
		putpsw r3, 0
		ldhi r9, 100
	`)
	want := []string{
		"add r1, r2, r3",
		"sub. r4, r5, -7",
		"xor r6, r7, 31",
		"sll r1, r1, 2",
		"ldl r16, r30, 8",
		"stl r10, r30, 12",
		"jmp eq, r5, 0",
		"ret r26, 8",
		"getpsw r3",
		"putpsw r3, 0",
		"ldhi r9, 100",
	}
	ws := words(t, p)
	if len(ws) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ws), len(want))
	}
	for i, w := range ws {
		if got := disasm(t, w); got != want[i] {
			t.Errorf("inst %d: %q, want %q", i, got, want[i])
		}
	}
	if p.TextSize != 4*len(want) {
		t.Errorf("TextSize = %d, want %d", p.TextSize, 4*len(want))
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
main:	li r1, 0
loop:	add r1, r1, 1
	sub. r0, r1, 10
	bne loop
	nop
	ba done
	nop
done:	ret
	nop
	`)
	if p.Entry != 0 {
		t.Errorf("entry = %#x, want 0 (main)", p.Entry)
	}
	loop, ok := p.Symbol("loop")
	if !ok || loop != 4 {
		t.Errorf("loop = %#x, %v; want 4", loop, ok)
	}
	ws := words(t, p)
	// bne at address 12 targeting 4: displacement -8.
	if got := disasm(t, ws[3]); got != "jmpr ne, -8" {
		t.Errorf("bne encoded as %q", got)
	}
	// ret pseudo expands to ret r25, 8.
	if got := disasm(t, ws[7]); got != "ret r25, 8" {
		t.Errorf("ret encoded as %q", got)
	}
}

func TestCallPseudo(t *testing.T) {
	p := assemble(t, `
	call fn
	nop
	ret
	nop
fn:	ret
	nop
	`)
	ws := words(t, p)
	if got := disasm(t, ws[0]); got != "callr r25, 16" {
		t.Errorf("call encoded as %q", got)
	}
}

func TestLiExpansion(t *testing.T) {
	p := assemble(t, `
	li r1, 42
	li r2, -4096
	li r3, 0x12345678
	li r4, big
	.equ big, 70000
	`)
	ws := words(t, p)
	if got := disasm(t, ws[0]); got != "add r1, r0, 42" {
		t.Errorf("small li: %q", got)
	}
	if got := disasm(t, ws[1]); got != "add r2, r0, -4096" {
		t.Errorf("negative-edge li: %q", got)
	}
	// 0x12345678: two instructions (ldhi + add).
	if got := disasm(t, ws[2]); !strings.HasPrefix(got, "ldhi r3, ") {
		t.Errorf("large li first inst: %q", got)
	}
	if got := disasm(t, ws[3]); !strings.HasPrefix(got, "add r3, r3, ") {
		t.Errorf("large li second inst: %q", got)
	}
	// Symbolic li always takes the two-instruction form.
	if got := disasm(t, ws[4]); !strings.HasPrefix(got, "ldhi r4, ") {
		t.Errorf("symbolic li first inst: %q", got)
	}
}

func TestLiValueReconstruction(t *testing.T) {
	// For several 32-bit constants, check hi<<13 + signext(lo) == value.
	for _, v := range []uint32{0, 1, 0x1fff, 0x1000, 0xdeadbeef, 0x7fffffff, 0x80000000, 0xffffffff, 70000} {
		lo := int32(v<<19) >> 19
		hi := int32(v-uint32(lo)) >> 13
		if got := uint32(hi)<<13 + uint32(lo); got != v {
			t.Errorf("li split of %#x: hi=%d lo=%d reconstructs %#x", v, hi, lo, got)
		}
		if hi < isa.Imm19Min || hi > isa.Imm19Max {
			t.Errorf("li split of %#x: hi=%d out of 19-bit range", v, hi)
		}
		if lo < isa.Imm13Min || lo > isa.Imm13Max {
			t.Errorf("li split of %#x: lo=%d out of 13-bit range", v, lo)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	p := assemble(t, `
	.org 0x100
val:	.word 1, 2, -3
h:	.half 0x1234
b:	.byte 1, 2, 3
s:	.asciz "hi"
	.align 4
w2:	.word end
end:
	`)
	if a, _ := p.Symbol("val"); a != 0x100 {
		t.Errorf("val at %#x, want 0x100", a)
	}
	if a, _ := p.Symbol("h"); a != 0x10c {
		t.Errorf("h at %#x, want 0x10c", a)
	}
	if a, _ := p.Symbol("b"); a != 0x10e {
		t.Errorf("b at %#x, want 0x10e", a)
	}
	if a, _ := p.Symbol("s"); a != 0x111 {
		t.Errorf("s at %#x, want 0x111", a)
	}
	w2, _ := p.Symbol("w2")
	if w2 != 0x114 {
		t.Errorf("w2 at %#x, want 0x114 (aligned)", w2)
	}
	if end, _ := p.Symbol("end"); end != 0x118 {
		t.Errorf("end at %#x, want 0x118", end)
	}
	if p.DataSize != 12+2+3+3+4 {
		t.Errorf("DataSize = %d", p.DataSize)
	}
}

func TestEqu(t *testing.T) {
	p := assemble(t, `
	.equ N, 10
	.equ N2, N*2+1
	add r1, r0, N2
	`)
	ws := words(t, p)
	if got := disasm(t, ws[0]); got != "add r1, r0, 21" {
		t.Errorf("equ arithmetic: %q", got)
	}
}

func TestExpressions(t *testing.T) {
	p := assemble(t, `
	.equ A, 6
	add r1, r0, (A+2)*4-1
	add r2, r0, A|9
	add r3, r0, 1<<4
	add r4, r0, ~0 & 0xf
	add r5, r0, 'A'
	add r6, r0, 100/7
	add r7, r0, 100%7
	`)
	want := []int32{31, 15, 16, 15, 65, 14, 2}
	for i, w := range words(t, p) {
		in, _ := isa.Decode(w)
		if in.Imm13 != want[i] {
			t.Errorf("expr %d = %d, want %d", i, in.Imm13, want[i])
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus r1, r2, r3", "unknown instruction"},
		{"add r1, r2", "expected ','"},
		{"add r1, r2, r3, r4", "trailing"},
		{"add r99, r0, 0", "expected register"},
		{"add r1, r0, 99999", "13 bits"},
		{"jmp zz, r1, 0", "unknown jump condition"},
		{"x: .word 1\nx: .word 2", "redefined"},
		{".equ q, undef_sym", "computable"},
		{"ldl r1, r2, undefined_label", "undefined symbol"},
		{".org 8\n.org 4", "backwards"},
		{".align 3", "power of two"},
		{".ascii 42", "needs a string"},
		{"add r1, r0, 1/0", "division by zero"},
		{`.ascii "unterminated`, "unterminated"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src, Options{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q: error %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestOptimizerFillsJumpSlot(t *testing.T) {
	src := `
main:	add r1, r0, 1
	add r2, r0, 2
	ba out
	nop
	add r3, r0, 3
out:	ret
	nop
	`
	plain := assemble(t, src)
	opt, err := Assemble(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Slots.Transfers != 2 || plain.Slots.Nops != 2 {
		t.Errorf("unoptimized slots = %+v, want 2 transfers, 2 nops", plain.Slots)
	}
	if opt.Slots.Transfers != 2 || opt.Slots.Filled != 1 {
		t.Errorf("optimized slots = %+v, want 1 filled of 2", opt.Slots)
	}
	// The moved instruction: "add r2" should now follow "ba".
	ws := words(t, opt)
	if got := disasm(t, ws[1]); !strings.HasPrefix(got, "jmpr alw") {
		t.Fatalf("expected jump second after optimization, got %q", got)
	}
	if got := disasm(t, ws[2]); got != "add r2, r0, 2" {
		t.Errorf("slot holds %q, want the moved add", got)
	}
	// Program is one instruction shorter (nop gone).
	if opt.TextSize != plain.TextSize-4 {
		t.Errorf("optimized TextSize = %d, want %d", opt.TextSize, plain.TextSize-4)
	}
}

func TestOptimizerRespectsHazards(t *testing.T) {
	// The flag-setting sub must not move into a conditional branch's slot.
	src := `
	add r1, r0, 5
	sub. r0, r1, 5
	beq target
	nop
target:	ret
	nop
	`
	opt, err := Assemble(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := words(t, opt)
	if got := disasm(t, ws[1]); got != "sub. r0, r1, 5" {
		t.Errorf("flag producer moved illegally; inst 1 is %q", got)
	}
	if opt.Slots.Nops < 1 {
		t.Errorf("slot should remain a nop: %+v", opt.Slots)
	}
}

func TestOptimizerRespectsJumpRegister(t *testing.T) {
	// r5 feeds the register-form jmp; its producer must stay put.
	src := `
	li r5, 64
	jmp alw, r5, 0
	nop
	`
	opt, err := Assemble(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := words(t, opt)
	if got := disasm(t, ws[1]); !strings.HasPrefix(got, "jmp alw") {
		t.Errorf("jump should stay second, got %q", got)
	}
	if got := disasm(t, ws[2]); got != "add r0, r0, r0" {
		t.Errorf("slot should remain nop, got %q", got)
	}
}

func TestOptimizerRespectsLabels(t *testing.T) {
	// The candidate is a jump target: moving it would change the path
	// that enters at the label.
	src := `
	ba skip
	nop
cand:	add r1, r0, 1
	ba out
	nop
skip:	ba cand
	nop
out:	ret
	nop
	`
	opt, err := Assemble(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	candAddr, _ := opt.Symbol("cand")
	seg := opt.Segments[0]
	w := binary.BigEndian.Uint32(seg.Data[candAddr-seg.Addr:])
	if got := disasm(t, w); got != "add r1, r0, 1" {
		t.Errorf("labeled candidate moved: cand now %q", got)
	}
}

func TestOptimizerDoesNotTouchCallSlots(t *testing.T) {
	src := `
	add r10, r0, 7
	call fn
	nop
	ret
	nop
fn:	ret
	nop
	`
	opt, err := Assemble(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := words(t, opt)
	// add r10 must stay before the call: it writes the outgoing
	// parameter in the caller's window.
	if got := disasm(t, ws[0]); got != "add r10, r0, 7" {
		t.Errorf("call slot filled illegally; first inst %q", got)
	}
}

func TestSegmentsSplitOnOrg(t *testing.T) {
	p := assemble(t, `
	add r1, r0, 1
	.org 0x200
	.word 7
	`)
	if len(p.Segments) != 2 {
		t.Fatalf("got %d segments, want 2", len(p.Segments))
	}
	if p.Segments[1].Addr != 0x200 {
		t.Errorf("second segment at %#x", p.Segments[1].Addr)
	}
}

func TestSortedSymbols(t *testing.T) {
	p := assemble(t, `
b:	add r1, r0, 1
a:	add r2, r0, 2
	`)
	got := p.SortedSymbols()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("SortedSymbols = %v, want [b a] (address order)", got)
	}
}

func TestMovPseudo(t *testing.T) {
	p := assemble(t, `
	mov r1, r2
	mov r3, 99
	`)
	ws := words(t, p)
	if got := disasm(t, ws[0]); got != "add r1, r2, 0" {
		t.Errorf("mov reg: %q", got)
	}
	if got := disasm(t, ws[1]); got != "add r3, r0, 99" {
		t.Errorf("mov imm: %q", got)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bogus", Options{})
}

func TestOptimizerFillsFromTarget(t *testing.T) {
	// The slot of an unconditional jump is filled by copying the target
	// instruction and retargeting the jump past it.
	src := `
main:	sub. r0, r1, 0
	beq skip
	nop
	ba loop
	nop
skip:	ret
	nop
loop:	add r2, r2, 1
	ba loop
	nop
	`
	opt, err := Assemble(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Slots.Filled <= plain.Slots.Filled {
		t.Fatalf("fill-from-target did not fire: %+v vs %+v", opt.Slots, plain.Slots)
	}
	// Semantics check: the copied instruction plus retarget must leave
	// the loop body equivalent — verified structurally: the jump to
	// "loop" must now land at loop+4 and its slot must hold loop's add.
	loopAddr, _ := opt.Symbol("loop")
	seg := opt.Segments[0]
	// Find a jmpr whose displacement resolves to loopAddr+4.
	found := false
	for off := 0; off+4 <= len(seg.Data); off += 4 {
		w := binary.BigEndian.Uint32(seg.Data[off:])
		in, err := isa.Decode(w)
		if err != nil || in.Op != isa.JMPR {
			continue
		}
		target := seg.Addr + uint32(off) + uint32(in.Imm19)
		if target == loopAddr+4 {
			slot := binary.BigEndian.Uint32(seg.Data[off+4:])
			sin, _ := isa.Decode(slot)
			if sin.String() == "add r2, r2, 1" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no retargeted jump with the copied target instruction found")
	}
}

func TestOptimizerTargetCopySkipsControlTargets(t *testing.T) {
	// A jump whose target is itself a transfer must keep its NOP.
	src := `
main:	ba hop
	nop
hop:	ba out
	nop
out:	ret
	nop
	`
	opt, err := Assemble(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := words(t, opt)
	// First instruction pair: ba hop then nop (unfilled).
	if got := disasm(t, ws[1]); got != "add r0, r0, r0" {
		t.Errorf("slot of jump-to-jump should stay nop, got %q", got)
	}
}

// TestDisassembleAssembleRoundTrip checks that the assembler accepts the
// disassembler's output and reproduces the exact machine word, for every
// instruction form (at address 0, where pc-relative displacements encode
// transparently).
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		in := randomInst(r)
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		src := in.String() + "\n"
		p, err := Assemble(src, Options{})
		if err != nil {
			t.Fatalf("assembling disassembly %q: %v", src, err)
		}
		ws := words(t, p)
		if len(ws) != 1 || ws[0] != w {
			t.Fatalf("round trip %q: %#08x -> %#08x", src, w, ws[0])
		}
	}
}

// randomInst mirrors the generator in the isa tests, restricted to
// instructions whose canonical disassembly is assembler-legal syntax.
func randomInst(r *rand.Rand) isa.Inst {
	ops := isa.Instructions()
	for {
		info := ops[r.Intn(len(ops))]
		in := isa.Inst{Op: info.Op, SCC: r.Intn(2) == 0, Rd: uint8(r.Intn(32))}
		switch info.Op {
		case isa.GETPSW, isa.GTLPC:
			in.SCC = false // printed without the dot; keep canonical
		}
		if info.Cond {
			in.Rd = uint8(r.Intn(int(isa.NumConds)))
			in.SCC = false
		}
		if info.Format == isa.FormatLong {
			in.Imm19 = int32(r.Intn(isa.Imm19Max-isa.Imm19Min+1)) + isa.Imm19Min
			return in
		}
		in.Rs1 = uint8(r.Intn(32))
		if r.Intn(2) == 0 {
			in.Imm = true
			in.Imm13 = int32(r.Intn(isa.Imm13Max-isa.Imm13Min+1)) + isa.Imm13Min
		} else {
			in.Rs2 = uint8(r.Intn(32))
		}
		// Canonicalize fields the disassembly does not print.
		switch info.Op {
		case isa.RET, isa.RETINT:
			in.Rs1 = 0
		case isa.GETPSW, isa.GTLPC:
			in.Rs1, in.Rs2, in.Imm, in.Imm13 = 0, 0, false, 0
		case isa.PUTPSW:
			in.Rd = 0
		}
		return in
	}
}
