package asm

import "risc1/internal/syntax"

// exprLo extracts the low 13 bits (sign-extended) of a 32-bit constant —
// the part an ADD immediate can carry after an LDHI.
type exprLo struct{ x syntax.Expr }

// Eval implements syntax.Expr.
func (e exprLo) Eval(syms map[string]uint32) (int64, error) {
	v, err := e.x.Eval(syms)
	if err != nil {
		return 0, err
	}
	return int64(int32(uint32(v)<<19) >> 19), nil
}

// exprHi extracts the matching high 19 bits: value == hi<<13 + lo.
type exprHi struct{ x syntax.Expr }

// Eval implements syntax.Expr.
func (e exprHi) Eval(syms map[string]uint32) (int64, error) {
	v, err := e.x.Eval(syms)
	if err != nil {
		return 0, err
	}
	u := uint32(v)
	lo := int32(u<<19) >> 19
	return int64(int32(u-uint32(lo)) >> 13), nil
}
