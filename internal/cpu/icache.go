package cpu

import "risc1/internal/isa"

// The predecoded instruction cache removes fetch and decode from the
// interpreter's hot path: the first execution of an address decodes the
// 32-bit word once into a dense record (the isa.Inst plus the per-opcode
// cycle cost and trace handle, resolved once), and every later visit
// dispatches straight from the cache. This changes only host speed —
// simulated cycle accounting is untouched, so Stats and Trace are
// byte-identical with the cache on or off.
//
// Correctness under self-modifying code comes from mem.Memory's OnStore
// hook: every store (including window spills and raw WriteBytes loads)
// reports its byte range, and the cache drops the pages it covers. Pages
// hold 1024 instructions (4 KiB of code) and are allocated lazily, so a
// large memory costs nothing until code actually runs in it.

const (
	icPageWords = 1024 // instructions per page (4 KiB of code)
	icPageShift = 10
	icPageMask  = icPageWords - 1
)

// decoded is one predecoded instruction: the architectural fields plus
// the metadata execute() would otherwise re-derive every visit.
type decoded struct {
	in     isa.Inst
	cycles uint64
	handle int
	valid  bool
}

// ICacheStats counts cache activity — observability for tests and tools,
// not part of the simulated machine. Hits + Misses equals the number of
// dispatch attempts; Misses exceeds Fills only when a miss faults before
// the line can be filled (bad fetch or illegal opcode).
type ICacheStats struct {
	Hits          uint64 // instructions dispatched from the cache
	Misses        uint64 // dispatches that fell back to fetch+decode
	Fills         uint64 // instructions decoded into the cache
	Invalidations uint64 // cached lines/pages dropped by overlapping writes
}

type icache struct {
	pages []*[icPageWords]decoded
	stats ICacheStats
}

// newICache sizes the page table for a memory of memSize bytes.
func newICache(memSize int) *icache {
	words := (memSize + isa.InstBytes - 1) / isa.InstBytes
	npages := (words + icPageWords - 1) / icPageWords
	return &icache{pages: make([]*[icPageWords]decoded, npages)}
}

// lookup returns the cached record for pc, or nil on a miss (including a
// misaligned or out-of-range pc, which the slow path turns into the same
// fault it always raised). Nil-receiver safe so -nocache costs one branch.
// Misses are counted by countMiss at the dispatch site, not here: the hit
// path runs once per simulated instruction and must stay inlinable.
func (ic *icache) lookup(pc uint32) *decoded {
	if ic == nil {
		return nil
	}
	idx := pc >> 2
	p := idx >> icPageShift
	if pc&3 == 0 && p < uint32(len(ic.pages)) {
		if pg := ic.pages[p]; pg != nil {
			if d := &pg[idx&icPageMask]; d.valid {
				ic.stats.Hits++
				return d
			}
		}
	}
	return nil
}

// countMiss attributes one dispatch to the fetch+decode slow path.
func (ic *icache) countMiss() {
	if ic != nil {
		ic.stats.Misses++
	}
}

// fill records a freshly decoded instruction.
func (ic *icache) fill(pc uint32, in isa.Inst, cycles uint64, handle int) {
	if ic == nil || pc&3 != 0 {
		return
	}
	idx := pc >> 2
	p := idx >> icPageShift
	if p >= uint32(len(ic.pages)) {
		return
	}
	pg := ic.pages[p]
	if pg == nil {
		pg = new([icPageWords]decoded)
		ic.pages[p] = pg
	}
	pg[idx&icPageMask] = decoded{in: in, cycles: cycles, handle: handle, valid: true}
	ic.stats.Fills++
}

// clone deep-copies the cache — allocated pages and counters — for
// machine forks. The clone is only valid while the fork's memory holds
// the same code bytes the original's did at clone time, which Fork
// guarantees by cloning cache and memory together.
func (ic *icache) clone() *icache {
	if ic == nil {
		return nil
	}
	n := &icache{pages: make([]*[icPageWords]decoded, len(ic.pages)), stats: ic.stats}
	for i, pg := range ic.pages {
		if pg != nil {
			cp := *pg
			n.pages[i] = &cp
		}
	}
	return n
}

// invalidate drops every cached instruction overlapping the byte range
// [addr, addr+size); it is the Memory.OnStore hook. Ordinary stores
// (word-sized and smaller) clear individual lines — data and code often
// share a 4 KiB page, and dropping the whole page on every store to a
// nearby global would thrash the cache. Bulk writes (program loads,
// Reset) drop whole pages instead.
func (ic *icache) invalidate(addr, size uint32) {
	if ic == nil || size == 0 {
		return
	}
	first := addr >> 2
	last := uint32((uint64(addr) + uint64(size) - 1) >> 2)
	if last-first+1 < icPageWords {
		for w := first; w <= last; w++ {
			p := w >> icPageShift
			if p >= uint32(len(ic.pages)) {
				return
			}
			pg := ic.pages[p]
			if pg == nil {
				continue
			}
			if d := &pg[w&icPageMask]; d.valid {
				*d = decoded{}
				ic.stats.Invalidations++
			}
		}
		return
	}
	firstPage, lastPage := first>>icPageShift, last>>icPageShift
	if firstPage >= uint32(len(ic.pages)) {
		return
	}
	if lastPage >= uint32(len(ic.pages)) {
		lastPage = uint32(len(ic.pages)) - 1
	}
	for p := firstPage; p <= lastPage; p++ {
		if ic.pages[p] != nil {
			ic.pages[p] = nil
			ic.stats.Invalidations++
		}
	}
}
