package cpu

import (
	"testing"

	"risc1/internal/asm"
	"risc1/internal/mem"
)

// load assembles src into a fresh machine, ready to run.
func load(t *testing.T, src string, cfg Config) *CPU {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(cfg)
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	return c
}

const snapSrc = `
main:	add r1, r0, 0	; sum
	add r2, r0, 1	; i
loop:	add r1, r1, r2
	sll r3, r1, 2
	xor r3, r3, r2
	stl r3, r0, 128
	add r2, r2, 1
	sub. r0, r2, 40
	ble loop
	nop
	ret
	nop
`

// outcome is the architectural observable the tests compare: registers
// of interest, the last store, and the full CPU + memory statistics.
type outcome struct {
	r1, r3, stored uint32
	stats          Stats
	mem            mem.Stats
	instrs         uint64
}

// finish runs the machine to completion and collects its outcome.
func finish(t *testing.T, c *CPU) outcome {
	t.Helper()
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, err := c.Mem.LoadWord(128)
	if err != nil {
		t.Fatal(err)
	}
	// Undo the verification load so memory stats compare cleanly.
	c.Mem.Stats.Reads--
	c.Mem.Stats.BytesRead -= 4
	return outcome{
		r1: c.Regs.Get(1), r3: c.Regs.Get(3), stored: v,
		stats: c.Stats, mem: c.Mem.Stats, instrs: c.Trace.Instructions,
	}
}

// TestSnapshotRestoreDeterministic: snapshot mid-run, run to the end,
// restore, run again — every architectural observable must repeat.
func TestSnapshotRestoreDeterministic(t *testing.T) {
	c := load(t, snapSrc, Config{})
	if done, err := c.RunSteps(25); done || err != nil {
		t.Fatalf("mid-run stop: done=%v err=%v", done, err)
	}
	snap := c.Snapshot()
	defer snap.Release()
	if snap.Instructions() != 25 {
		t.Errorf("snapshot instruction count = %d, want 25", snap.Instructions())
	}

	a := finish(t, c)
	c.Restore(snap)
	b := finish(t, c)

	if a != b {
		t.Errorf("restored run diverged:\n%+v\n%+v", a, b)
	}
}

// TestForkRunsIndependently: fork a machine mid-run; parent and child
// both finish with identical results, and a memory write on one side
// does not appear on the other.
func TestForkRunsIndependently(t *testing.T) {
	c := load(t, snapSrc, Config{})
	if _, err := c.RunSteps(25); err != nil {
		t.Fatal(err)
	}
	f := c.Fork()

	// Scribble on the parent's memory outside the program's working set;
	// the fork must not see it. Undo the scribble's stats footprint so
	// the two sides stay comparable.
	if err := c.Mem.StoreWord(4096, 0xF00D); err != nil {
		t.Fatal(err)
	}
	c.Mem.Stats.Writes--
	c.Mem.Stats.BytesWritten -= 4
	a := finish(t, c)

	if v, _ := f.Mem.LoadWord(4096); v != 0 {
		t.Fatalf("parent's write leaked into fork: %#x", v)
	}
	f.Mem.Stats.Reads--
	f.Mem.Stats.BytesRead -= 4
	b := finish(t, f)

	if a != b {
		t.Errorf("fork diverged from parent:\n%+v\n%+v", a, b)
	}
}

// TestRestoreDropsStaleDecode: run program A to completion, restore a
// snapshot taken before load, write program B over the same addresses,
// and run — the icache must not replay A's decoded instructions.
func TestRestoreDropsStaleDecode(t *testing.T) {
	progA, err := asm.Assemble(`
main:	add r1, r0, 111
	ret
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progB, err := asm.Assemble(`
main:	add r1, r0, 222
	ret
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	c.Reset(progA.Entry)
	blank := c.Snapshot() // empty machine, nothing loaded
	defer blank.Release()

	if err := progA.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(1); got != 111 {
		t.Fatalf("program A: r1 = %d", got)
	}

	c.Restore(blank)
	if err := progB.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(1); got != 222 {
		t.Errorf("program B after restore: r1 = %d, want 222 (stale decode?)", got)
	}
}

// TestResetDropsStaleDecode is the Reset counterpart of the restore
// test above: run program A, Reset the machine, load program B over the
// same addresses, run — B's instructions must execute, not A's stale
// predecodes. Reset zeroes memory by releasing pages, so without the
// full-range OnStore it fires, the icache would happily replay A.
func TestResetDropsStaleDecode(t *testing.T) {
	progA, err := asm.Assemble(`
main:	add r1, r0, 111
	ret
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progB, err := asm.Assemble(`
main:	add r1, r0, 222
	ret
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	c.Reset(progA.Entry)
	if err := progA.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(1); got != 111 {
		t.Fatalf("program A: r1 = %d", got)
	}

	c.Reset(progB.Entry)
	if err := progB.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(1); got != 222 {
		t.Errorf("program B after reset: r1 = %d, want 222 (stale decode)", got)
	}
}

// TestForkIcacheIndependent: after forking, self-modifying stores on the
// fork must invalidate only the fork's cloned icache — the parent keeps
// running its original code, and vice versa.
func TestForkIcacheIndependent(t *testing.T) {
	c := load(t, snapSrc, Config{})
	if _, err := c.RunSteps(25); err != nil {
		t.Fatal(err)
	}
	f := c.Fork()

	// Overwrite the fork's loop body at 'sll r3, r1, 2' with a nop-like
	// add r3, r0, 7; the parent must be unaffected.
	progPatch, err := asm.Assemble(`
main:	add r3, r0, 7
	ret
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The patched instruction encoding: assemble in isolation and copy
	// the first word over the fork's loop body (address of 'sll' = 12).
	var word [4]byte
	seg := progPatch.Segments[0]
	copy(word[:], seg.Data[:4])
	if err := f.Mem.WriteBytes(12, word[:]); err != nil {
		t.Fatal(err)
	}

	par := finish(t, c)
	fk := finish(t, f)

	if par.r3 == fk.r3 {
		t.Errorf("fork's code patch did not take effect (r3 parent %d == fork %d): stale fork icache", par.r3, fk.r3)
	}
	// Parent result must match an unpatched reference run.
	ref := finish(t, load(t, snapSrc, Config{}))
	if par.r1 != ref.r1 || par.r3 != ref.r3 {
		t.Errorf("parent diverged after fork patched its copy: r1 %d/%d r3 %d/%d", par.r1, ref.r1, par.r3, ref.r3)
	}
}

// TestRestoreIncompatibleConfigPanics: a snapshot from a machine with
// different architectural parameters must be rejected.
func TestRestoreIncompatibleConfigPanics(t *testing.T) {
	a := New(Config{Windows: 8})
	snap := a.Snapshot()
	defer snap.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("restore across window counts did not panic")
		}
	}()
	New(Config{Windows: 4}).Restore(snap)
}

// TestRestoreIgnoresFuelAndICacheSwitch: MaxInstructions and NoICache
// are host-side knobs, not architectural state — restore must work
// across them.
func TestRestoreIgnoresFuelAndICacheSwitch(t *testing.T) {
	a := load(t, snapSrc, Config{MaxInstructions: 1000})
	snap := a.Snapshot()
	defer snap.Release()
	b := New(Config{MaxInstructions: 5, NoICache: true})
	b.Restore(snap) // must not panic
	if done, err := b.RunSteps(3); done || err != nil {
		t.Fatalf("restored machine did not run: done=%v err=%v", done, err)
	}
}
