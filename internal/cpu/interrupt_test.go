package cpu

import (
	"testing"

	"risc1/internal/asm"
)

// interruptProgram counts in a loop; the handler at "handler" bumps a
// global counter register and resumes.
const interruptProgram = `
main:	add r2, r0, 0		; loop counter
loop:	add r2, r2, 1
	sub. r0, r2, 4000
	blt loop
	nop
	ret
	nop

	.org 0x400
handler:
	add r3, r3, 1		; interrupt counter (global register)
	retint r25, 0
	nop
`

func TestInterruptDeliveryAndResume(t *testing.T) {
	prog, err := asm.Assemble(interruptProgram, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vector, _ := prog.Symbol("handler")
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)

	fired := 0
	for !func() bool { h, _ := c.Halted(); return h }() {
		if c.Trace.Instructions == 500 || c.Trace.Instructions == 1500 {
			c.RaiseInterrupt(vector)
			fired++
		}
		c.Step()
	}
	if _, err := c.Halted(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(2); got != 4000 {
		t.Errorf("main loop result = %d, want 4000 (interrupts must be transparent)", got)
	}
	if got := c.Regs.Get(3); got != uint32(fired) {
		t.Errorf("handler ran %d times, want %d", got, fired)
	}
	if !c.InterruptsEnabled() {
		t.Error("RETINT should re-enable interrupts")
	}
}

func TestInterruptDisabledInsideHandler(t *testing.T) {
	// A second interrupt raised while the handler runs must wait for
	// RETINT.
	prog, err := asm.Assemble(`
main:	add r2, r0, 0
loop:	add r2, r2, 1
	sub. r0, r2, 2000
	blt loop
	nop
	ret
	nop
	.org 0x400
handler:
	add r3, r3, 1
	add r4, r4, 1		; padding so the handler takes several steps
	add r4, r4, 1
	retint r25, 0
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vector, _ := prog.Symbol("handler")
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)

	// Run until inside the handler, then raise another interrupt.
	for c.Trace.Instructions < 100 {
		c.Step()
	}
	c.RaiseInterrupt(vector)
	// Delivery may be deferred past a delay slot; take a few steps.
	for i := 0; i < 5 && c.InterruptsEnabled(); i++ {
		c.Step()
	}
	if c.InterruptsEnabled() {
		t.Fatal("interrupts should be disabled on entry")
	}
	c.RaiseInterrupt(vector) // nested request: must be deferred until RETINT
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(3); got != 2 {
		t.Errorf("handler ran %d times, want 2 (second deferred until RETINT)", got)
	}
	if got := c.Regs.Get(2); got != 2000 {
		t.Errorf("main loop corrupted: %d", got)
	}
}

func TestCallintDisablesInterrupts(t *testing.T) {
	c := run(t, `
main:	callint r25, r0, target
	nop
	ret
	nop
target:	getpsw r2
	ret r25, 8
	nop
	`, Config{})
	// PSW bit 4 is the interrupt-enable flag; CALLINT must have cleared
	// it before the handler read the PSW.
	if c.Regs.Get(2)&(1<<4) != 0 {
		t.Error("CALLINT should disable interrupts (PSW bit 4 clear)")
	}
}

func TestInterruptPreservesWindowRegisters(t *testing.T) {
	// The handler gets a fresh window, so the interrupted procedure's
	// locals are untouched even if the handler writes the same r-numbers.
	prog, err := asm.Assemble(`
main:	add r16, r0, 3777	; a local in the interrupted window
	add r2, r0, 0
loop:	add r2, r2, 1
	sub. r0, r2, 1000
	blt loop
	nop
	add r4, r16, 0		; expose the local in a global afterwards
	ret
	nop
	.org 0x400
handler:
	add r16, r0, 1111	; clobber the handler window's r16
	retint r25, 0
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vector, _ := prog.Symbol("handler")
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	for c.Trace.Instructions < 50 {
		c.Step()
	}
	c.RaiseInterrupt(vector)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(4); got != 3777 {
		t.Errorf("interrupted window's local = %d, want 3777", got)
	}
}

// TestInterruptInSlotDeferralAndResumeAddress pins down the delivery
// protocol step by step: an interrupt raised while the next instruction
// occupies a delayed-jump shadow must wait until the shadow instruction
// has executed, and the resume address saved in r25 of the handler's
// window must be the in-flight jump target, so RETINT restarts execution
// exactly where the transfer was headed.
func TestInterruptInSlotDeferralAndResumeAddress(t *testing.T) {
	prog, err := asm.Assemble(`
main:	ba over
	add r2, r0, 1		; delay slot
	add r2, r0, 99		; skipped
over:	add r3, r2, 0
	add r4, r4, 1
	ret
	nop
	.org 0x400
handler:
	add r5, r5, 1		; padding: keep the handler alive one step
	retint r25, 0
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vector, _ := prog.Symbol("handler")
	overAddr, _ := prog.Symbol("over")
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)

	c.Step() // executes the ba; the next instruction is its delay slot
	if !c.inSlot {
		t.Fatal("setup: expected to be in the delay slot after the ba")
	}
	c.RaiseInterrupt(vector)

	c.Step() // the shadow instruction must run; delivery is deferred
	if !c.InterruptsEnabled() {
		t.Fatal("interrupt delivered inside a delayed-jump shadow")
	}
	if got := c.Regs.Get(2); got != 1 {
		t.Fatalf("delay slot did not execute before delivery: r2 = %d", got)
	}
	if c.PC() != overAddr {
		t.Fatalf("pc after the slot = %#x, want the jump target %#x", c.PC(), overAddr)
	}

	c.Step() // delivery happens here, then the handler's first instruction
	if c.InterruptsEnabled() {
		t.Fatal("interrupt entry should disable interrupts")
	}
	if got := c.Regs.Get(5); got != 1 {
		t.Fatalf("handler did not start: r5 = %d", got)
	}
	if got := c.Regs.Get(25); got != overAddr {
		t.Fatalf("resume address in r25 = %#x, want the in-flight target %#x", got, overAddr)
	}

	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(3); got != 1 {
		t.Errorf("r3 = %d, want 1 (resume re-entered at the jump target, once)", got)
	}
	if got := c.Regs.Get(4); got != 1 {
		t.Errorf("r4 = %d, want 1 (post-target code ran exactly once)", got)
	}
	if !c.InterruptsEnabled() {
		t.Error("RETINT should re-enable interrupts")
	}
}

func TestInterruptDeferredInDelaySlot(t *testing.T) {
	// Raise an interrupt while the next instruction is a delay slot; the
	// machine must complete the slot (and the in-flight transfer) first.
	prog, err := asm.Assemble(`
main:	ba over
	add r2, r0, 1		; delay slot
	add r2, r0, 99		; skipped
over:	add r3, r2, 0
	ret
	nop
	.org 0x400
handler:
	retint r25, 0
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vector, _ := prog.Symbol("handler")
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	c.Step() // executes the ba; next instruction is its slot
	c.RaiseInterrupt(vector)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Regs.Get(3); got != 1 {
		t.Errorf("r3 = %d, want 1 (slot executed, skip respected, interrupt transparent)", got)
	}
}
