package cpu

import (
	"strings"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/isa"
	"risc1/internal/pipeline"
)

// run assembles and executes src to completion on a fresh CPU.
func run(t *testing.T, src string, cfg Config) *CPU {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(cfg)
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestArithmeticAndHalt(t *testing.T) {
	c := run(t, `
main:	add r1, r0, 40
	add r1, r1, 2
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(1); got != 42 {
		t.Errorf("r1 = %d, want 42", got)
	}
	if halted, err := c.Halted(); !halted || err != nil {
		t.Errorf("halted = %v, %v", halted, err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := run(t, `
	.equ buf, 0x800
main:	li r1, 0x12345678
	li r2, buf
	stl r1, r2, 0
	ldl r3, r2, 0
	sts r1, r2, 4
	ldsu r4, r2, 4
	ldss r5, r2, 4
	stb r1, r2, 8
	ldbu r6, r2, 8
	ldbs r7, r2, 8
	ret
	nop
	`, Config{})
	checks := []struct {
		reg  uint8
		want uint32
	}{
		{3, 0x12345678},
		{4, 0x5678},
		{5, 0x5678},
		{6, 0x78},
		{7, 0x78},
	}
	for _, tc := range checks {
		if got := c.Regs.Get(tc.reg); got != tc.want {
			t.Errorf("r%d = %#x, want %#x", tc.reg, got, tc.want)
		}
	}
}

func TestSignExtendingLoads(t *testing.T) {
	c := run(t, `
	.equ buf, 0x800
main:	li r1, 0xff85
	li r2, buf
	sts r1, r2, 0
	ldss r3, r2, 0
	stb r1, r2, 4
	ldbs r4, r2, 4
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(3); int32(got) != -123 {
		t.Errorf("ldss = %d, want -123", int32(got))
	}
	if got := c.Regs.Get(4); int32(got) != -123 {
		t.Errorf("ldbs = %d, want -123", int32(got))
	}
}

func TestLoopWithConditionalBranch(t *testing.T) {
	// Sum 1..10 with a delayed branch; the nop delay slots execute.
	c := run(t, `
main:	add r1, r0, 0	; sum
	add r2, r0, 1	; i
loop:	add r1, r1, r2
	add r2, r2, 1
	sub. r0, r2, 10
	ble loop
	nop
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if c.Stats.JumpsTaken == 0 || c.Stats.JumpsUntaken == 0 {
		t.Errorf("branch stats = %+v: expected both taken and untaken", c.Stats)
	}
}

func TestDelaySlotExecutes(t *testing.T) {
	// The add after the taken jump must execute (delayed jump).
	c := run(t, `
main:	add r1, r0, 1
	ba over
	add r1, r1, 10	; delay slot: executes
	add r1, r1, 100	; skipped
over:	ret
	nop
	`, Config{})
	if got := c.Regs.Get(1); got != 11 {
		t.Errorf("r1 = %d, want 11 (delay slot executed, next skipped)", got)
	}
}

func TestCallPassesParamsThroughWindows(t *testing.T) {
	c := run(t, `
main:	add r10, r0, 20	; outgoing param
	add r11, r0, 22
	call addfn
	nop
	add r1, r10, 0	; result comes back in r10
	ret
	nop
addfn:	add r26, r26, r27 ; incoming params; result into HIGH reg
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(1); got != 42 {
		t.Errorf("r1 = %d, want 42", got)
	}
	if c.Regs.Stats.Calls != 1 || c.Regs.Stats.Returns != 1 {
		t.Errorf("window stats = %+v", c.Regs.Stats)
	}
}

func TestCallerLocalsSurviveCall(t *testing.T) {
	c := run(t, `
main:	add r16, r0, 7
	call fn
	nop
	add r1, r16, 0
	ret
	nop
fn:	add r16, r0, 999	; callee's local, different window
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(1); got != 7 {
		t.Errorf("caller local = %d, want 7", got)
	}
}

// fibSrc computes fib(n) recursively — the call-intensive pattern the
// register windows exist for. Result in global r1.
const fibSrc = `
	.equ N, 12
main:	add r10, r0, N
	call fib
	nop
	add r1, r10, 0
	ret
	nop

; fib(n): n in r26 (incoming), result in r26 (caller's r10)
fib:	sub. r0, r26, 2
	bge recurse
	nop
	ret			; fib(0)=0, fib(1)=1: result already in r26
	nop
recurse:
	add r16, r26, 0		; save n in a local
	sub r10, r16, 1
	call fib
	nop
	add r17, r10, 0		; fib(n-1)
	sub r10, r16, 2
	call fib
	nop
	add r26, r17, r10	; fib(n-1)+fib(n-2)
	ret
	nop
`

func TestRecursionWithWindowOverflow(t *testing.T) {
	for _, cfg := range []Config{{Windows: 2}, {Windows: 3}, {Windows: 4}, {Windows: 8}, {NoWindows: true}} {
		c := run(t, fibSrc, cfg)
		if got := c.Regs.Get(1); got != 144 {
			t.Errorf("windows=%d nowin=%v: fib(12) = %d, want 144", cfg.Windows, cfg.NoWindows, got)
		}
	}
}

func TestOverflowStatsShrinkWithMoreWindows(t *testing.T) {
	rate := func(cfg Config) float64 {
		c := run(t, fibSrc, cfg)
		return float64(c.Regs.Stats.Overflows) / float64(c.Regs.Stats.Calls)
	}
	r2, r4, r8 := rate(Config{Windows: 2}), rate(Config{Windows: 4}), rate(Config{Windows: 8})
	if !(r2 > r4 && r4 > r8) {
		t.Errorf("overflow rate should fall with windows: %f %f %f", r2, r4, r8)
	}
	if r2 != 1.0 {
		t.Errorf("two windows must overflow on every call, got %f", r2)
	}
}

func TestWindowTrapsCostCycles(t *testing.T) {
	with := run(t, fibSrc, Config{Windows: 8})
	without := run(t, fibSrc, Config{NoWindows: true})
	if without.Trace.Cycles <= with.Trace.Cycles {
		t.Errorf("no-windows run should cost more cycles: %d vs %d", without.Trace.Cycles, with.Trace.Cycles)
	}
	if without.Stats.SpillWords == 0 || without.Stats.RefillWords == 0 {
		t.Error("no-windows run should spill and refill")
	}
	if with.Stats.TrapCycles >= without.Stats.TrapCycles {
		t.Error("8-window run should spend fewer cycles in traps")
	}
}

func TestSpillRefillPreservesDeepState(t *testing.T) {
	// Each activation stamps a local; after returning all the way out,
	// main's local must have survived the spills.
	c := run(t, `
main:	add r16, r0, 123
	add r10, r0, 20		; depth counter
	call down
	nop
	add r1, r16, 0
	ret
	nop
down:	sub. r0, r26, 0
	beq back
	nop
	add r16, r26, 0
	sub r10, r26, 1
	call down
	nop
back:	ret
	nop
	`, Config{Windows: 3})
	if got := c.Regs.Get(1); got != 123 {
		t.Errorf("main's local after deep recursion = %d, want 123", got)
	}
	if c.Regs.Stats.Overflows == 0 {
		t.Error("expected overflows with 3 windows and depth 20")
	}
}

func TestFlagsArithmetic(t *testing.T) {
	c := run(t, `
main:	li r1, 0x7fffffff
	add. r2, r1, 1		; overflow
	getpsw r3
	sub. r0, r0, 1		; borrow: C clear
	getpsw r4
	sub. r0, r0, r0		; zero: Z, C set
	getpsw r5
	ret
	nop
	`, Config{})
	// PSW bits: Z=1, N=2, C=4, V=8.
	if got := c.Regs.Get(3) & 0xf; got != 0b1010 {
		t.Errorf("overflow add flags = %04b, want N|V=1010", got)
	}
	if got := c.Regs.Get(4) & 0xf; got != 0b0010 {
		t.Errorf("0-1 flags = %04b, want N only (C=borrow)", got)
	}
	if got := c.Regs.Get(5) & 0xf; got != 0b0101 {
		t.Errorf("0-0 flags = %04b, want Z|C", got)
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
main:	li r1, -16
	sra r2, r1, 2
	srl r3, r1, 28
	sll r4, r1, 1
	ret
	nop
	`, Config{})
	if got := int32(c.Regs.Get(2)); got != -4 {
		t.Errorf("sra -16>>2 = %d, want -4", got)
	}
	if got := c.Regs.Get(3); got != 15 {
		t.Errorf("srl = %d, want 15", got)
	}
	if got := int32(c.Regs.Get(4)); got != -32 {
		t.Errorf("sll = %d, want -32", got)
	}
}

func TestSubrAndCarryChain(t *testing.T) {
	c := run(t, `
main:	add r1, r0, 5
	subr r2, r1, 30		; 30 - 5
	add. r0, r0, 0		; clear flags, set C=0 via add 0+0 (no carry)
	addc r3, r0, 0		; 0+0+carry(0)
	sub. r0, r0, 0		; sets C (no borrow)
	addc r4, r0, 0		; 0+0+carry(1)
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(2); got != 25 {
		t.Errorf("subr = %d, want 25", got)
	}
	if got := c.Regs.Get(3); got != 0 {
		t.Errorf("addc without carry = %d, want 0", got)
	}
	if got := c.Regs.Get(4); got != 1 {
		t.Errorf("addc with carry = %d, want 1", got)
	}
}

// TestAddcCarryAtWrapBoundary adds the 96-bit numbers
// 0x00000000_00000000_ffffffff + 0x00000000_ffffffff_00000001 with an
// add./addc./addc chain. The middle limb is 0 + 0xffffffff + carry-in 1:
// folding the carry into the operand first wraps it to zero and loses
// the carry-out, corrupting the top limb (the seed's setFlagsAdd bug).
func TestAddcCarryAtWrapBoundary(t *testing.T) {
	c := run(t, `
main:	li r1, 0xffffffff	; X lo
	add r2, r0, 0		; X mid
	add r3, r0, 1		; Y lo
	li r4, 0xffffffff	; Y mid
	add. r5, r1, r3		; lo limb: 0, carry out
	addc. r6, r2, r4	; mid limb: 0 + 0xffffffff + 1 = 0, carry out
	addc r7, r0, 0		; hi limb: must see the mid carry
	getpsw r8		; flags still from the mid addc.
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(5); got != 0 {
		t.Errorf("low limb = %#x, want 0", got)
	}
	if got := c.Regs.Get(6); got != 0 {
		t.Errorf("mid limb = %#x, want 0", got)
	}
	if got := c.Regs.Get(7); got != 1 {
		t.Errorf("high limb = %d, want 1 (carry across the wrapped middle limb)", got)
	}
	if got := c.Regs.Get(8) & 0xf; got != 0b0101 {
		t.Errorf("mid addc. flags = %04b, want Z|C = 0101", got)
	}
}

// TestSubcBorrowAtWrapBoundary is the dual: 2^64 - 0xffffffff_00000001
// as three limbs. The middle limb is 0 - 0xffffffff - borrow-in 1; the
// wrapped-operand flag logic reports "no borrow" and corrupts the top.
func TestSubcBorrowAtWrapBoundary(t *testing.T) {
	c := run(t, `
main:	add r1, r0, 0		; X lo
	add r2, r0, 0		; X mid
	add r3, r0, 1		; X hi (X = 2^64)
	add r4, r0, 1		; Y lo
	li r5, 0xffffffff	; Y mid
	sub. r6, r1, r4		; lo limb: 0 - 1 = 0xffffffff, borrow
	subc. r7, r2, r5	; mid limb: 0 - 0xffffffff - 1 = 0, borrow out
	subc r8, r3, 0		; hi limb: 1 - 0 - borrow(1) = 0
	getpsw r9		; flags still from the mid subc.
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(6); got != 0xffffffff {
		t.Errorf("low limb = %#x, want 0xffffffff", got)
	}
	if got := c.Regs.Get(7); got != 0 {
		t.Errorf("mid limb = %#x, want 0", got)
	}
	if got := c.Regs.Get(8); got != 0 {
		t.Errorf("high limb = %d, want 0 (borrow across the wrapped middle limb)", got)
	}
	if got := c.Regs.Get(9) & 0xf; got != 0b0001 {
		t.Errorf("mid subc. flags = %04b, want Z only (C clear = borrow)", got)
	}
}

// TestPSWRoundTrip: GETPSW/PUTPSW in the same window must be lossless,
// including the CWP field (read back at window 1 inside a callee).
func TestPSWRoundTrip(t *testing.T) {
	c := run(t, `
main:	call f
	nop
	ret
	nop
f:	sub. r0, r0, 0		; Z and C set
	getpsw r1
	putpsw r1, 0		; write the same CWP back: accepted
	getpsw r2
	ret
	nop
	`, Config{})
	r1, r2 := c.Regs.Get(1), c.Regs.Get(2)
	if r1 != r2 {
		t.Errorf("PSW round trip lossy: getpsw %#x, after putpsw %#x", r1, r2)
	}
	if got := isa.PSWCWP(r1); got != 1 {
		t.Errorf("PSW CWP field = %d, want 1 (inside one call)", got)
	}
	if r1&isa.PSWFlagBits != isa.PSWZ|isa.PSWC {
		t.Errorf("PSW flags = %#x, want Z|C", r1&isa.PSWFlagBits)
	}
}

// TestPutPSWForeignCWPFaults: writing a PSW whose CWP field does not
// match the current window is an error, not a silent drop.
func TestPutPSWForeignCWPFaults(t *testing.T) {
	prog, err := asm.Assemble(`
main:	call f
	nop
	putpsw r1, 0		; r1 was captured at CWP 1; we are back at CWP 0
	ret
	nop
f:	getpsw r1
	ret
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "CWP") {
		t.Errorf("expected read-only-CWP fault, got %v", err)
	}
}

// TestSaveStackOverflowFaults: recursion past the bottom of the save
// stack must fault loudly instead of wrapping the save pointer around
// the address space and overwriting top-of-memory data.
func TestSaveStackOverflowFaults(t *testing.T) {
	prog, err := asm.Assemble(`
	.org 128
main:	call main
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// SaveStackTop 128 holds exactly two 16-word spills (addresses
	// 0..127, below the code); the third must fault.
	c := New(Config{Windows: 2, MemSize: 4096, SaveStackTop: 128, MaxInstructions: 1 << 16})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	err = c.Run()
	if err == nil || !strings.Contains(err.Error(), "register-save stack overflow") {
		t.Errorf("expected save-stack overflow fault, got %v", err)
	}
}

func TestGtlpc(t *testing.T) {
	c := run(t, `
main:	add r1, r0, 1
	gtlpc r2
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(2); got != 0 {
		t.Errorf("gtlpc = %#x, want 0 (address of preceding instruction)", got)
	}
}

func TestCycleAccounting(t *testing.T) {
	c := run(t, `
main:	add r1, r0, 1	; 1 cycle
	ldl r2, r0, 0	; 2 cycles
	stl r2, r0, 8	; 2 cycles
	ret		; 1 cycle; halting ret skips its delay slot
	nop
	`, Config{})
	if got := c.Trace.Cycles; got != 6 {
		t.Errorf("cycles = %d, want 6", got)
	}
	if got := c.Trace.Instructions; got != 4 {
		t.Errorf("instructions = %d, want 4", got)
	}
	if us := c.Micros(); us != 6*0.4 {
		t.Errorf("Micros = %f, want 2.4", us)
	}
}

func TestInstructionMix(t *testing.T) {
	c := run(t, fibSrc, Config{})
	mix := c.Trace.Mix()
	if len(mix) == 0 {
		t.Fatal("empty mix")
	}
	var total float64
	for _, s := range mix {
		total += s.Frac
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("mix fractions sum to %f", total)
	}
	ops := c.Trace.OpCounts()
	if ops[0].Count == 0 {
		t.Error("no op counts recorded")
	}
}

func TestFaultOnMisalignedLoad(t *testing.T) {
	prog, err := asm.Assemble(`
main:	ldl r1, r0, 2
	ret
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("expected misaligned fault, got %v", err)
	}
}

func TestFaultOnIllegalInstruction(t *testing.T) {
	c := New(Config{})
	c.Reset(0)
	// Word 0 has opcode 0: illegal.
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "illegal opcode") {
		t.Errorf("expected illegal-opcode fault, got %v", err)
	}
}

func TestInstructionLimit(t *testing.T) {
	prog, err := asm.Assemble(`
main:	ba main
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{MaxInstructions: 1000})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Errorf("expected instruction-limit error, got %v", err)
	}
}

func TestStepAfterHaltIsNoop(t *testing.T) {
	c := run(t, "main:\tret\n\tnop\n", Config{})
	before := c.Trace.Instructions
	c.Step()
	if c.Trace.Instructions != before {
		t.Error("Step after halt executed an instruction")
	}
}

func TestDelaySlotNopCounting(t *testing.T) {
	c := run(t, `
main:	ba l1
	nop		; wasted slot
l1:	ba l2
	add r1, r0, 1	; useful slot
l2:	ret
	nop		; not executed: halting ret skips its slot
	`, Config{})
	if got := c.Stats.DelaySlotNops; got != 1 {
		t.Errorf("delay-slot nops = %d, want 1", got)
	}
}

func TestPutPSWRestoresFlags(t *testing.T) {
	c := run(t, `
main:	sub. r0, r0, 0	; Z and C set
	getpsw r1
	add. r0, r0, 1	; flags change
	putpsw r1, 0	; restore
	beq was_zero
	nop
	add r2, r0, 0
	ret
	nop
was_zero:
	add r2, r0, 1
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(2); got != 1 {
		t.Errorf("PUTPSW did not restore Z: r2 = %d", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.Windows != 8 || cfg.MemSize != 1<<20 || cfg.MaxInstructions == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if c.Regs.Config().PhysicalRegs() != 138 {
		t.Error("default register file should have 138 registers")
	}
	nc := New(Config{NoWindows: true})
	if nc.Config().Windows != 2 {
		t.Error("NoWindows should force the degenerate two-window file")
	}
}

func TestLdhiBuildsConstants(t *testing.T) {
	c := run(t, `
main:	li r1, 0xdeadbeef
	li r2, -559038737	; same value, signed
	xor. r3, r1, r2
	ret
	nop
	`, Config{})
	if got := c.Regs.Get(1); got != 0xdeadbeef {
		t.Errorf("li large = %#x", got)
	}
	if got := c.Regs.Get(3); got != 0 {
		t.Errorf("signed/unsigned li disagree: xor = %#x", got)
	}
	if !c.Flags().Z {
		t.Error("xor. of equal values should set Z")
	}
}

func TestTracerHook(t *testing.T) {
	prog, err := asm.Assemble("main:\tadd r1, r0, 1\n\tret\n\tnop\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	var seen []string
	c.Tracer = func(pc uint32, in isa.Inst) {
		seen = append(seen, in.String())
	}
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "add r1, r0, 1" {
		t.Errorf("trace = %v", seen)
	}
}

func TestSaveStackExhaustionFaults(t *testing.T) {
	// Infinite recursion must fault when the register-save stack runs
	// off the bottom of memory, not hang or corrupt.
	prog, err := asm.Assemble(`
main:	call main
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{MemSize: 4096, Windows: 2, MaxInstructions: 1 << 20})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	// The runaway save stack descends through the tiny memory, first
	// clobbering the code (illegal opcode on refetch) or finally running
	// off the bottom (spill out of range). Either way the machine must
	// stop with a fault rather than hang or exit cleanly.
	if err := c.Run(); err == nil {
		t.Fatal("expected a fault")
	}
}

// TestParallelSimulators checks that independent CPUs share no hidden
// state (run with -race).
func TestParallelSimulators(t *testing.T) {
	prog, err := asm.Assemble(fibSrc, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan uint32, 8)
	for i := 0; i < 8; i++ {
		go func() {
			c := New(Config{})
			c.Reset(prog.Entry)
			prog.LoadInto(c.Mem)
			if err := c.Run(); err != nil {
				done <- 0
				return
			}
			done <- c.Regs.Get(1)
		}()
	}
	for i := 0; i < 8; i++ {
		if got := <-done; got != 144 {
			t.Errorf("parallel run %d: fib(12) = %d", i, got)
		}
	}
}

// TestPipelineModelAgreesWithCycleAccounting cross-validates the coarse
// per-instruction cycle model against the first-principles two-stage
// pipeline: the same instruction stream must yield the same cycle count
// (net of window-trap cycles, which the pipeline model does not see).
func TestPipelineModelAgreesWithCycleAccounting(t *testing.T) {
	prog, err := asm.Assemble(fibSrc, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	model := pipeline.New(false)
	c.Tracer = func(pc uint32, in isa.Inst) { model.Issue(in.Op) }
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := c.Trace.Cycles - c.Stats.TrapCycles
	if got := model.Stats().Cycles; got != want {
		t.Errorf("pipeline model: %d cycles, cpu accounting: %d", got, want)
	}
	if model.Stats().Instructions != c.Trace.Instructions {
		t.Errorf("instruction streams diverge: %d vs %d",
			model.Stats().Instructions, c.Trace.Instructions)
	}
}
