package cpu

import (
	"context"
	"errors"
	"testing"

	"risc1/internal/asm"
)

// spinProg is an infinite busy loop — the guest shape the cooperative
// cancellation machinery exists for.
const spinProg = `
main:	ba main
	nop
`

func assemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestRunContextCancellation stops an infinite guest loop from the
// outside. A context that is already cancelled returns before any
// instruction executes; one cancelled mid-run is noticed within one run
// quantum, on an instruction boundary, and the machine can resume.
func TestRunContextCancellation(t *testing.T) {
	prog := assemble(t, spinProg)
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext = %v, want context.Canceled", err)
	}
	if c.Trace.Instructions != 0 {
		t.Errorf("pre-cancelled context executed %d instructions, want 0", c.Trace.Instructions)
	}

	// Mid-run: let one quantum pass by hand, then a cancelled context
	// stops the next boundary without losing the machine.
	if _, err := c.RunSteps(runQuantum); err != nil {
		t.Fatal(err)
	}
	before := c.Trace.Instructions
	if err := c.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("resumed RunContext = %v, want context.Canceled", err)
	}
	if c.Trace.Instructions != before {
		t.Errorf("cancelled resume executed %d more instructions, want 0",
			c.Trace.Instructions-before)
	}
	if halted, err := c.RunSteps(10); err != nil || halted {
		t.Errorf("machine not resumable after cancellation: %v, %v", halted, err)
	}
}

// TestRunStepsBudget pins the quantum primitive: RunSteps executes at
// most n instructions and reports the halt state.
func TestRunStepsBudget(t *testing.T) {
	prog := assemble(t, spinProg)
	c := New(Config{})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	halted, err := c.RunSteps(100)
	if err != nil || halted {
		t.Fatalf("RunSteps = %v, %v; want running, nil", halted, err)
	}
	if c.Trace.Instructions != 100 {
		t.Errorf("executed %d instructions, want exactly 100", c.Trace.Instructions)
	}

	done := assemble(t, "main:\tret\n\tnop\n")
	c = New(Config{})
	c.Reset(done.Entry)
	done.LoadInto(c.Mem)
	halted, err = c.RunSteps(100)
	if err != nil || !halted {
		t.Errorf("RunSteps on a halting program = %v, %v; want halted, nil", halted, err)
	}
}

// TestInstructionLimitSentinel pins that fuel exhaustion is a wrapped
// ErrInstructionLimit — the sentinel internal/exec classifies on.
func TestInstructionLimitSentinel(t *testing.T) {
	prog := assemble(t, spinProg)
	c := New(Config{MaxInstructions: 500})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); !errors.Is(err, ErrInstructionLimit) {
		t.Errorf("Run = %v, want wrapped ErrInstructionLimit", err)
	}
}

// TestSetMaxInstructions re-arms the fuel budget on a reused machine,
// the way the pool's simulator cache does between jobs.
func TestSetMaxInstructions(t *testing.T) {
	prog := assemble(t, spinProg)
	c := New(Config{MaxInstructions: 100})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("first run = %v, want fuel exhaustion", err)
	}
	c.SetMaxInstructions(1000)
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if err := c.Run(); !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("second run = %v, want fuel exhaustion", err)
	}
	if c.Trace.Instructions != 1000 {
		t.Errorf("second run executed %d instructions, want the re-armed 1000", c.Trace.Instructions)
	}
	// Zero restores the default budget rather than an un-runnable zero.
	c.SetMaxInstructions(0)
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	if halted, err := c.RunSteps(5000); err != nil || halted {
		t.Errorf("after SetMaxInstructions(0): %v, %v; want 5000 free steps", halted, err)
	}
}

// TestSimulatorsDoNotAliasMemory is the package-state audit's teeth: two
// independently constructed CPUs share nothing. One runs a program and
// scribbles over memory and registers; the other — untouched since
// construction — must still be pristine.
func TestSimulatorsDoNotAliasMemory(t *testing.T) {
	scribble := assemble(t, `
	.equ buf, 0x800
main:	li r1, 0xdeadbeef
	li r2, buf
	stl r1, r2, 0
	stl r1, r2, 4
	ret
	nop
	`)
	a := New(Config{})
	b := New(Config{})
	a.Reset(scribble.Entry)
	scribble.LoadInto(a.Mem)
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Mem.LoadWord(0x800); v != 0xdeadbeef {
		t.Fatalf("scribbler did not write: %#x", v)
	}
	if v, _ := b.Mem.LoadWord(0x800); v != 0 {
		t.Errorf("second CPU sees the first CPU's store: mem[0x800] = %#x", v)
	}
	if v := b.Regs.Get(1); v != 0 {
		t.Errorf("second CPU sees the first CPU's register write: r1 = %#x", v)
	}
	if b.Trace.Instructions != 0 {
		t.Errorf("second CPU counted the first CPU's instructions: %d", b.Trace.Instructions)
	}
}
