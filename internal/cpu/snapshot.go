package cpu

import (
	"fmt"

	"risc1/internal/isa"
	"risc1/internal/mem"
	"risc1/internal/regfile"
	"risc1/internal/trace"
)

// Machine snapshots capture the complete architectural state of a RISC I
// simulator — memory (copy-on-write, O(touched pages)), the register
// file and window pointers, PC/NPC/flags/PSW bits, the save-stack
// pointer, interrupt state, and all simulated statistics — so a run can
// be rewound (time-travel debugging) or a compiled+initialized image can
// be re-entered per request without repeating the prelude (warm-start
// serving).
//
// What a snapshot does NOT capture, by design (DESIGN.md §12):
//
//   - the predecoded icache: host-side machinery; Restore invalidates it
//     through the memory's OnStore hook and it refills on demand.
//   - observer state (tracer ring, profiler counters) and the Tracer
//     callback: observation belongs to a run, not to the machine.
//   - the instruction budget (Config.MaxInstructions): fuel is re-armed
//     per run by the batch engine, so Restore leaves it alone.

// Snapshot is an immutable machine image. It may be restored into any
// CPU with a compatible configuration, any number of times, from any
// goroutine; concurrent restores share memory pages copy-on-write.
type Snapshot struct {
	cfg   Config
	mem   *mem.Snapshot
	regs  *regfile.File
	tr    *trace.Collector
	stats Stats

	pc, npc, lastPC uint32
	flags           isa.Flags
	saveSP          uint32
	inSlot          bool
	halted          bool
	haltErr         error
	intEnabled      bool
	pendingIRQ      *uint32
}

// MemPages reports how many memory pages the snapshot references — the
// unit of snapshot and restore cost.
func (s *Snapshot) MemPages() int { return s.mem.Pages() }

// Instructions returns the snapshotted instruction count, which the
// time-travel stepper uses to pick a rewind point.
func (s *Snapshot) Instructions() uint64 { return s.tr.Instructions }

// compatible reports whether two configurations describe the same
// simulated machine. The instruction budget and the host-side icache
// switch are excluded: neither changes architectural state.
func compatible(a, b Config) bool {
	a.MaxInstructions, b.MaxInstructions = 0, 0
	a.NoICache, b.NoICache = false, false
	return a == b
}

// Snapshot captures the machine's architectural state in O(touched
// memory pages). The CPU may keep running afterwards; the snapshot is
// unaffected.
func (c *CPU) Snapshot() *Snapshot {
	s := &Snapshot{
		cfg:        c.cfg,
		mem:        c.Mem.Snapshot(),
		regs:       c.Regs.Clone(),
		tr:         c.Trace.Clone(),
		stats:      c.Stats,
		pc:         c.pc,
		npc:        c.npc,
		lastPC:     c.lastPC,
		flags:      c.flags,
		saveSP:     c.saveSP,
		inSlot:     c.inSlot,
		halted:     c.halted,
		haltErr:    c.haltErr,
		intEnabled: c.intEnabled,
	}
	if c.pendingIRQ != nil {
		v := *c.pendingIRQ
		s.pendingIRQ = &v
	}
	return s
}

// Restore rewinds the machine to the snapshot in O(touched pages). The
// Mem, Regs and Trace pointers stay stable (their contents are
// overwritten in place), the icache is invalidated through the OnStore
// hook, and the instruction budget is left as configured. It panics if
// the snapshot came from an incompatible configuration.
func (c *CPU) Restore(s *Snapshot) {
	if !compatible(c.cfg, s.cfg) {
		panic(fmt.Sprintf("cpu: restore of a %+v snapshot into a %+v machine", s.cfg, c.cfg))
	}
	c.Mem.Restore(s.mem) // fires OnStore per changed page run → icache drops exactly the stale decodes
	c.Regs.CopyFrom(s.regs)
	c.Trace.CopyFrom(s.tr)
	c.Stats = s.stats
	c.pc = s.pc
	c.npc = s.npc
	c.lastPC = s.lastPC
	c.flags = s.flags
	c.saveSP = s.saveSP
	c.inSlot = s.inSlot
	c.halted = s.halted
	c.haltErr = s.haltErr
	c.intEnabled = s.intEnabled
	c.pendingIRQ = nil
	if s.pendingIRQ != nil {
		v := *s.pendingIRQ
		c.pendingIRQ = &v
	}
}

// Release returns the snapshot's memory pages to the page pool.
// Optional — an unreleased snapshot is garbage-collected, just not
// recycled — and the snapshot must not be restored afterwards.
func (s *Snapshot) Release() { s.mem.Release() }

// Fork returns an independent copy of the machine: memory shared
// copy-on-write (O(touched pages)), register file, window state, PSW
// and statistics copied, and the predecoded icache cloned so the fork
// starts at full host speed. The fork gets its own invalidation hook;
// observers (Obs, Tracer) are not carried over — attach the fork's own
// if the new run should be observed. Parent and fork may then run
// concurrently.
func (c *CPU) Fork() *CPU {
	n := &CPU{
		cfg:        c.cfg,
		Mem:        c.Mem.Fork(),
		Regs:       c.Regs.Clone(),
		Trace:      c.Trace.Clone(),
		Stats:      c.Stats,
		pc:         c.pc,
		npc:        c.npc,
		lastPC:     c.lastPC,
		flags:      c.flags,
		saveSP:     c.saveSP,
		inSlot:     c.inSlot,
		halted:     c.halted,
		haltErr:    c.haltErr,
		intEnabled: c.intEnabled,
		opHandles:  c.opHandles,
	}
	if c.pendingIRQ != nil {
		v := *c.pendingIRQ
		n.pendingIRQ = &v
	}
	if c.icache != nil {
		n.icache = c.icache.clone()
		n.Mem.OnStore = n.icache.invalidate
	}
	return n
}
