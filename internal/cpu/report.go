package cpu

import (
	"risc1/internal/isa"
	"risc1/internal/obs"
)

// BuildReport assembles the versioned machine-readable run report for
// the machine's current statistics. The caller attaches the profiler
// section separately (obs.ProfileSection) since symbol naming lives with
// the program, not the CPU.
func (c *CPU) BuildReport(workload string) obs.Report {
	r := obs.Report{
		Schema:   obs.ReportSchema,
		Version:  obs.ReportVersion,
		Machine:  "risc1",
		Workload: workload,
		Config: obs.ReportConfig{
			Windows:   c.cfg.Windows,
			NoWindows: c.cfg.NoWindows,
			MemSize:   c.cfg.MemSize,
			CycleNS:   DefaultCycleNS,
		},
		Totals: obs.Totals{
			Instructions: c.Trace.Instructions,
			Cycles:       c.Trace.Cycles,
			BaseCycles:   c.Trace.Cycles - c.Stats.TrapCycles,
			TrapCycles:   c.Stats.TrapCycles,
			Micros:       c.Micros(),
		},
		Windows: &obs.Windows{
			Calls:       c.Regs.Stats.Calls,
			Returns:     c.Regs.Stats.Returns,
			Overflows:   c.Regs.Stats.Overflows,
			Underflows:  c.Regs.Stats.Underflows,
			MaxDepth:    c.Regs.MaxDepth(),
			SpillWords:  c.Stats.SpillWords,
			RefillWords: c.Stats.RefillWords,
			DepthHist:   c.Trace.DepthHistogram(),
		},
		Control: &obs.Control{
			JumpsTaken:    c.Stats.JumpsTaken,
			JumpsUntaken:  c.Stats.JumpsUntaken,
			DelaySlotNops: c.Stats.DelaySlotNops,
		},
		Memory: obs.Memory{
			Reads:        c.Mem.Stats.Reads,
			Writes:       c.Mem.Stats.Writes,
			BytesRead:    c.Mem.Stats.BytesRead,
			BytesWritten: c.Mem.Stats.BytesWritten,
			Accesses:     c.Mem.Stats.Accesses(),
		},
	}
	if c.Trace.Instructions > 0 {
		r.Totals.CPI = float64(c.Trace.Cycles) / float64(c.Trace.Instructions)
	}
	for _, s := range c.Trace.Mix() {
		r.Mix = append(r.Mix, obs.MixEntry{Name: s.Name, Count: s.Count, Frac: s.Frac})
	}
	for _, s := range c.Trace.OpCounts() {
		r.Ops = append(r.Ops, obs.MixEntry{Name: s.Name, Count: s.Count, Frac: s.Frac})
	}
	if c.icache != nil {
		s := c.icache.stats
		r.ICache = &obs.ICache{Hits: s.Hits, Misses: s.Misses, Fills: s.Fills, Invalidations: s.Invalidations}
	}
	return r
}

// Disassembler returns a pc → assembly-text resolver reading the CPU's
// current memory image — the disasm callback for annotated profiles.
func (c *CPU) Disassembler() func(pc uint32) (string, bool) {
	return func(pc uint32) (string, bool) {
		w, err := c.Mem.FetchWord(pc)
		if err != nil {
			return "", false
		}
		in, err := isa.Decode(w)
		if err != nil {
			return "", false
		}
		return in.String(), true
	}
}
