package cpu

import (
	"strings"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/obs"
)

// TestHotLoopAllocFreeObserverOff guards the observability layer's
// compile-to-nil contract: with no observer attached, the straight-line
// interpreter loop allocates nothing per instruction. (Window
// spills/refills allocate their transfer buffer; the test program
// makes no calls so the loop path is isolated.)
func TestHotLoopAllocFreeObserverOff(t *testing.T) {
	prog, err := asm.Assemble(`
main:	add r1, r0, 0
loop:	add r1, r1, 1
	ba loop
	nop
	`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ { // warm the icache
		c.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { c.Step() })
	if allocs != 0 {
		t.Errorf("Step allocates %.2f objects per instruction with Obs=nil, want 0", allocs)
	}
}

// BenchmarkStep measures the per-instruction interpreter cost with the
// observability layer detached — the baseline the tentpole's <2%
// regression budget is judged against. Run with -benchmem: the
// allocation column must stay 0.
func BenchmarkStep(b *testing.B) {
	prog, err := asm.Assemble(`
main:	add r1, r0, 0
loop:	add r1, r1, 1
	ba loop
	nop
	`, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c := New(Config{})
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// observedRun executes src with a full observer (tracer + profiler)
// attached and returns the CPU and observer.
func observedRun(t *testing.T, src string, cfg Config, sink obs.Sink) (*CPU, *obs.Observer) {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(cfg)
	o := &obs.Observer{Tracer: obs.NewTracer(0, sink), Prof: obs.NewProfiler()}
	c.Obs = o
	c.Reset(prog.Entry)
	if err := prog.LoadInto(c.Mem); err != nil {
		t.Fatal(err)
	}
	o.Prof.Start(prog.Entry)
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := o.Finish(); err != nil {
		t.Fatalf("observer: %v", err)
	}
	return c, o
}

// TestObserverDoesNotPerturbSimulation runs the same program with and
// without the observer and asserts every simulated number is identical.
func TestObserverDoesNotPerturbSimulation(t *testing.T) {
	c1 := run(t, fibSrc, Config{})
	c2, _ := observedRun(t, fibSrc, Config{}, nil)
	if c1.Trace.Cycles != c2.Trace.Cycles || c1.Trace.Instructions != c2.Trace.Instructions {
		t.Errorf("observer changed accounting: %d/%d cycles, %d/%d instructions",
			c1.Trace.Cycles, c2.Trace.Cycles, c1.Trace.Instructions, c2.Trace.Instructions)
	}
	if c1.Stats != c2.Stats {
		t.Errorf("observer changed stats:\nplain    %+v\nobserved %+v", c1.Stats, c2.Stats)
	}
	if c1.Regs.Stats != c2.Regs.Stats {
		t.Errorf("observer changed window stats:\nplain    %+v\nobserved %+v", c1.Regs.Stats, c2.Regs.Stats)
	}
}

// TestProfilerAccountsEveryCycle asserts the profiler's conservation
// law: sampled cycles plus trap overhead equal the collector's total.
func TestProfilerAccountsEveryCycle(t *testing.T) {
	// Two windows force spills/refills on the recursive calls, so trap
	// overhead is exercised too.
	c, o := observedRun(t, fibSrc, Config{Windows: 2}, nil)
	if got, want := o.Prof.TotalCycles(), c.Trace.Cycles; got != want {
		t.Errorf("profiler total = %d cycles, collector = %d", got, want)
	}
	if c.Stats.TrapCycles == 0 {
		t.Fatal("expected window traps with 2 windows")
	}
	if got, want := o.Prof.TrapCycles(), c.Stats.TrapCycles; got != want {
		t.Errorf("profiler trap cycles = %d, cpu = %d", got, want)
	}
}

// TestProfilerFunctionAttribution checks the per-function table: fib is
// called the textbook number of times and dominates the profile, and
// main's cumulative cycles cover the entire run.
func TestProfilerFunctionAttribution(t *testing.T) {
	prog, err := asm.Assemble(fibSrc, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, o := observedRun(t, fibSrc, Config{}, nil)
	symtab := obs.NewSymTab(prog.Symbols)
	funcs := o.Prof.Functions(symtab.Namer())
	byName := map[string]obs.FuncRow{}
	for _, f := range funcs {
		byName[f.Name] = f
	}
	// fib(12) makes 465 calls: calls(n) = calls(n-1)+calls(n-2)+2.
	fib, ok := byName["fib"]
	if !ok {
		t.Fatalf("no fib row in %+v", funcs)
	}
	if fib.Calls != 465 {
		t.Errorf("fib calls = %d, want 465", fib.Calls)
	}
	mainRow, ok := byName["main"]
	if !ok {
		t.Fatalf("no main row in %+v", funcs)
	}
	if mainRow.Cum != c.Trace.Cycles {
		t.Errorf("main cumulative = %d, want the whole run (%d)", mainRow.Cum, c.Trace.Cycles)
	}
	if fib.Flat <= mainRow.Flat {
		t.Errorf("fib flat (%d) should dominate main flat (%d)", fib.Flat, mainRow.Flat)
	}
}

// TestTracerEventStream checks kinds, ordering and delay-slot marking
// in the ring buffer for a call/return round trip.
func TestTracerEventStream(t *testing.T) {
	_, o := observedRun(t, `
main:	add r10, r0, 20
	add r11, r0, 22
	call addfn
	nop
	add r1, r10, 0
	ret
	nop
addfn:	add r26, r26, r27
	ret
	nop
	`, Config{}, nil)
	var kinds []string
	var slotSeen bool
	for _, ev := range o.Tracer.Ring() {
		if ev.Kind != obs.KindInstr {
			kinds = append(kinds, ev.Kind.String())
		}
		if ev.Slot {
			slotSeen = true
		}
	}
	want := []string{"call", "return"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("non-instr event kinds = %v, want %v", kinds, want)
	}
	if !slotSeen {
		t.Error("no instruction was marked as a delay-slot execution")
	}
	// 9 executed instructions + call + return (the final halting ret
	// emits no return event and skips its slot).
	if got := o.Tracer.Events(); got != 11 {
		t.Errorf("event count = %d, want 11", got)
	}
}

// TestTracerWindowTrapEvents asserts spill/refill events carry the word
// counts the paper's memory-traffic argument is built on.
func TestTracerWindowTrapEvents(t *testing.T) {
	_, o := observedRun(t, fibSrc, Config{Windows: 2}, nil)
	var spills, refills int
	for _, ev := range o.Tracer.Ring() {
		switch ev.Kind {
		case obs.KindSpill:
			spills++
			if ev.Words == 0 || ev.Cost == 0 {
				t.Fatalf("spill event missing words/cost: %+v", ev)
			}
		case obs.KindRefill:
			refills++
		}
	}
	if spills == 0 || refills == 0 {
		t.Errorf("spills = %d, refills = %d; want both > 0 in the ring tail", spills, refills)
	}
}
