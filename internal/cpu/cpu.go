// Package cpu simulates the RISC I processor at the architectural cycle
// level: fetch/decode/execute with delayed jumps, condition codes,
// register-window overflow/underflow traps with spill/refill to a memory
// save stack, and the cycle accounting used by the paper's evaluation
// (register-to-register instructions take one cycle, memory accesses two,
// because the single memory port is shared with instruction fetch).
package cpu

import (
	"context"
	"errors"
	"fmt"

	"risc1/internal/isa"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/regfile"
	"risc1/internal/trace"
)

// ErrInstructionLimit is wrapped by the error Run returns when a program
// exhausts its instruction budget (MaxInstructions, the "fuel" limit of
// batch execution). Check with errors.Is.
var ErrInstructionLimit = errors.New("instruction limit exceeded")

// runQuantum is how many instructions RunContext executes between
// context checks: large enough that the check is free against the cost
// of simulating the quantum, small enough that cancellation and
// deadlines take effect in well under a millisecond of host time.
const runQuantum = 8192

// HaltAddr is the simulator's halt sentinel: a RET whose target is this
// address stops the machine cleanly. The startup convention places
// HaltAddr-8 in r25 of the entry activation, so the usual epilogue
// "ret r25, 8" from the entry procedure halts.
const HaltAddr = 0xfffffff0

// DefaultCycleNS is the paper's estimated RISC I cycle time (400 ns),
// used only to convert cycle counts into microseconds for reports.
const DefaultCycleNS = 400

// Trap-handling overhead in cycles, added on top of the spill/refill
// memory traffic for a window overflow or underflow (pipeline drain,
// save-stack pointer update).
const trapOverheadCycles = 4

// Config selects the simulated machine's organization.
type Config struct {
	// Windows sets the register-file window count; zero means the
	// paper's default of eight.
	Windows int
	// MemSize is the main memory size in bytes; zero means 1 MiB.
	MemSize int
	// SaveStackTop is the initial register-save stack pointer (the stack
	// grows down); zero places it at the top of memory.
	SaveStackTop uint32
	// NoWindows simulates a conventional flat register file: only one
	// activation's registers are resident, so every call spills and
	// every return refills — the paper's point of comparison for what
	// procedure calls cost without windows. (Internally this is the
	// degenerate two-window configuration.)
	NoWindows bool
	// MaxInstructions aborts runaway programs; zero means 2^32.
	MaxInstructions uint64
	// NoICache disables the predecoded instruction cache, forcing a
	// fetch+decode from memory on every instruction — the host-speed
	// escape hatch behind risc1-run's -nocache flag. Simulated cycles
	// and statistics are identical either way by construction.
	NoICache bool
}

func (c Config) withDefaults() Config {
	if c.NoWindows {
		c.Windows = 2
	}
	if c.Windows == 0 {
		c.Windows = regfile.DefaultConfig.Windows
	}
	if c.MemSize == 0 {
		c.MemSize = 1 << 20
	}
	if c.SaveStackTop == 0 {
		c.SaveStackTop = uint32(c.MemSize)
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 1 << 32
	}
	return c
}

// Stats extends the generic collector with RISC-specific counters.
type Stats struct {
	TrapCycles    uint64 // cycles spent in overflow/underflow handling
	SpillWords    uint64 // words written to the save stack
	RefillWords   uint64 // words read from the save stack
	JumpsTaken    uint64
	JumpsUntaken  uint64
	DelaySlotNops uint64 // NOP-equivalent instructions executed in delay slots
}

// CPU is one RISC I processor with its memory.
type CPU struct {
	cfg Config

	Mem   *mem.Memory
	Regs  *regfile.File
	Trace *trace.Collector
	Stats Stats

	// Tracer, when non-nil, receives every instruction just before it
	// executes — a lightweight hook for models that only need the
	// instruction stream (the pipeline viewer). Richer observation goes
	// through Obs.
	Tracer func(pc uint32, in isa.Inst)

	// Obs, when non-nil, receives structured execution events: every
	// instruction, call, return, window spill/refill, interrupt and
	// fault, feeding the tracer and the guest profiler. nil (the
	// default) keeps the hot loop observation-free; Reset does not
	// clear it. Attaching an observer never changes simulated state.
	Obs *obs.Observer

	pc     uint32 // address of the instruction being executed
	npc    uint32 // address of the next instruction (delayed-jump slot)
	lastPC uint32 // previous pc, for GTLPC
	flags  isa.Flags

	saveSP  uint32 // register-save stack pointer (grows down)
	inSlot  bool   // the current instruction occupies a delay slot
	halted  bool
	haltErr error

	intEnabled bool
	pendingIRQ *uint32 // vector address of a requested interrupt

	opHandles [64]int // trace handles indexed by opcode

	// icache is the predecoded instruction cache (nil with NoICache);
	// stores invalidate it through the Memory.OnStore hook.
	icache *icache
}

// New builds a CPU with zeroed memory and registers.
func New(cfg Config) *CPU {
	cfg = cfg.withDefaults()
	c := &CPU{
		cfg:   cfg,
		Mem:   mem.New(cfg.MemSize),
		Regs:  regfile.New(regfile.Config{Windows: cfg.Windows}),
		Trace: trace.New(),
	}
	for _, info := range isa.Instructions() {
		c.opHandles[info.Op] = c.Trace.Handle(info.Name, info.Class.String())
	}
	if !cfg.NoICache {
		c.icache = newICache(cfg.MemSize)
		c.Mem.OnStore = c.icache.invalidate
	}
	c.resetState(0)
	return c
}

// ICacheStats reports instruction-cache activity (zero with NoICache).
// It describes the simulator's host-speed machinery, not the simulated
// machine: architectural cycle counts never depend on it.
func (c *CPU) ICacheStats() ICacheStats {
	if c.icache == nil {
		return ICacheStats{}
	}
	return c.icache.stats
}

// Config returns the configuration the CPU was built with (with defaults
// filled in).
func (c *CPU) Config() Config { return c.cfg }

// PC returns the address of the next instruction to execute.
func (c *CPU) PC() uint32 { return c.pc }

// Flags returns the current condition codes.
func (c *CPU) Flags() isa.Flags { return c.flags }

// Halted reports whether the machine has stopped, and why (nil for a
// clean halt through the halt sentinel).
func (c *CPU) Halted() (bool, error) { return c.halted, c.haltErr }

func (c *CPU) resetState(entry uint32) {
	c.pc = entry
	c.npc = entry + isa.InstBytes
	c.lastPC = entry
	c.flags = isa.Flags{}
	c.saveSP = c.cfg.SaveStackTop
	c.halted = false
	c.haltErr = nil
	c.inSlot = false
	c.intEnabled = true
	c.pendingIRQ = nil
	c.Stats = Stats{}
}

// Reset clears memory, registers and statistics, and arranges the halt
// convention: r25 of the entry window holds HaltAddr-8 so that the entry
// procedure's "ret r25, 8" stops the machine.
func (c *CPU) Reset(entry uint32) {
	c.Mem.Reset()
	c.Regs.Reset()
	c.Trace.Reset()
	c.resetState(entry)
	c.Regs.Set(25, HaltAddr-8)
}

// SetEntry rewinds execution to entry without clearing memory — used
// after loading a program image.
func (c *CPU) SetEntry(entry uint32) {
	c.Regs.Reset()
	c.Trace.Reset()
	c.resetState(entry)
	c.Regs.Set(25, HaltAddr-8)
}

// Run executes until the program halts, faults, or exceeds the
// instruction limit. It returns the reason for an abnormal stop.
func (c *CPU) Run() error {
	return c.RunContext(context.Background())
}

// RunContext executes like Run but additionally stops between
// instruction quanta when ctx is cancelled or its deadline passes,
// returning the context's error. Cancellation never corrupts state: the
// machine stops on an instruction boundary and can be resumed with
// another call. A context that is already done returns before the first
// quantum — zero instructions execute.
func (c *CPU) RunContext(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		halted, err := c.RunSteps(runQuantum)
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
	}
}

// RunSteps executes at most n instructions. It reports whether the
// machine halted, with the fault (or wrapped ErrInstructionLimit) as the
// error. halted false with a nil error means the budget n ran out with
// the program still going.
func (c *CPU) RunSteps(n uint64) (bool, error) {
	for i := uint64(0); i < n && !c.halted; i++ {
		if c.Trace.Instructions >= c.cfg.MaxInstructions {
			return false, fmt.Errorf("cpu: %w: limit %d at pc %#08x", ErrInstructionLimit, c.cfg.MaxInstructions, c.pc)
		}
		c.Step()
	}
	return c.halted, c.haltErr
}

// SetMaxInstructions replaces the instruction budget ("fuel") without
// rebuilding the machine — batch-execution workers reuse one simulator
// across jobs with differing limits. Zero restores the default of 2^32.
func (c *CPU) SetMaxInstructions(n uint64) {
	if n == 0 {
		n = 1 << 32
	}
	c.cfg.MaxInstructions = n
}

// RaiseInterrupt requests an external interrupt. Before the next
// instruction outside a delayed-jump shadow, the processor performs the
// hardware CALLINT sequence: advance the register window, save the
// interrupted PC in r25 of the new window, disable interrupts, and
// vector. The handler returns with "retint r25, 0".
func (c *CPU) RaiseInterrupt(vector uint32) {
	v := vector
	c.pendingIRQ = &v
}

// InterruptsEnabled reports the interrupt-enable state (cleared by
// interrupt entry and CALLINT, set by RETINT).
func (c *CPU) InterruptsEnabled() bool { return c.intEnabled }

// deliverInterrupt performs the trap entry. Delivery is deferred while
// the next instruction sits in a delayed-jump shadow: interrupting
// between a transfer and its slot would lose the in-flight target (the
// restartability problem GTLPC exists for); waiting one instruction
// sidesteps it.
func (c *CPU) deliverInterrupt() {
	vector := *c.pendingIRQ
	c.pendingIRQ = nil
	c.intEnabled = false
	if spilled := c.Regs.Call(); spilled != nil {
		if !c.spill(spilled) {
			return
		}
	}
	c.Trace.Depth(c.Regs.Depth())
	if c.Obs != nil {
		c.observeCall(obs.KindInterrupt, c.pc, vector)
		if c.Obs.Prof != nil {
			c.Obs.Prof.Overhead(vector, trapOverheadCycles)
		}
	}
	c.Regs.Set(25, c.pc) // resume address
	c.lastPC = c.pc
	c.pc = vector
	c.npc = vector + isa.InstBytes
	c.Trace.AddCycles(trapOverheadCycles)
	c.Stats.TrapCycles += trapOverheadCycles
}

// Step executes a single instruction. After a halt it does nothing.
func (c *CPU) Step() {
	if c.halted {
		return
	}
	if c.pendingIRQ != nil && c.intEnabled && !c.inSlot {
		c.deliverInterrupt()
		if c.halted {
			return
		}
	}
	// Hot path: dispatch from the predecoded cache. A miss (cold line,
	// invalidated page, misaligned or out-of-range pc) falls through to
	// the fetch+decode path, which raises exactly the faults it always
	// did and refills the line on success.
	if d := c.icache.lookup(c.pc); d != nil {
		c.execute(d.in, d.cycles, d.handle)
		return
	}
	c.icache.countMiss()
	word, err := c.Mem.FetchWord(c.pc)
	if err != nil {
		c.fault(fmt.Errorf("cpu: fetch at %#08x: %w", c.pc, err))
		return
	}
	in, err := isa.Decode(word)
	if err != nil {
		c.fault(fmt.Errorf("cpu: at %#08x: %w", c.pc, err))
		return
	}
	cycles := uint64(in.Op.Info().Cycles)
	handle := c.opHandles[in.Op]
	c.icache.fill(c.pc, in, cycles, handle)
	c.execute(in, cycles, handle)
}

func (c *CPU) fault(err error) {
	c.halted = true
	c.haltErr = err
	if o := c.Obs; o != nil && o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Kind: obs.KindFault, PC: c.pc, Cycle: c.Trace.Cycles, Text: err.Error()})
	}
}

// observeInstr feeds the observer one about-to-execute instruction. It
// lives out of line so the instruments-off hot path in execute stays a
// single predictable branch.
func (c *CPU) observeInstr(in isa.Inst, cost uint64) {
	o := c.Obs
	if o.Prof != nil {
		o.Prof.Sample(c.pc, cost)
	}
	if o.Tracer != nil {
		ev := obs.Event{
			Kind:  obs.KindInstr,
			PC:    c.pc,
			Cycle: c.Trace.Cycles,
			Cost:  cost,
			Op:    in.Op.String(),
			Text:  in.String(),
			Slot:  c.inSlot,
		}
		// Jump outcomes are known before execution: Eval is pure.
		if in.Op == isa.JMP || in.Op == isa.JMPR {
			ev.Taken = in.Cond().Eval(c.flags)
		}
		o.Tracer.Emit(ev)
	}
}

// observeCall reports a window-advancing transfer (CALL/CALLR/CALLINT
// or interrupt delivery) after the window has moved.
func (c *CPU) observeCall(kind obs.Kind, fromPC, target uint32) {
	o := c.Obs
	if o.Prof != nil {
		o.Prof.EnterCall(target)
	}
	if o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Kind: kind, PC: fromPC, Cycle: c.Trace.Cycles, Target: target, Depth: c.Regs.Depth()})
	}
}

// observeReturn reports a window-retreating transfer after the window
// has moved back.
func (c *CPU) observeReturn(target uint32) {
	o := c.Obs
	if o.Prof != nil {
		o.Prof.LeaveCall()
	}
	if o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Kind: obs.KindReturn, PC: c.pc, Cycle: c.Trace.Cycles, Target: target, Depth: c.Regs.Depth()})
	}
}

// observeWindowTrap reports a spill or refill before its cycles land in
// the collector, charging the trap overhead to the current PC.
func (c *CPU) observeWindowTrap(kind obs.Kind, words int, cost uint64) {
	o := c.Obs
	if o.Prof != nil {
		o.Prof.Overhead(c.pc, cost)
	}
	if o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Kind: kind, PC: c.pc, Cycle: c.Trace.Cycles, Words: words, Cost: cost})
	}
}

// s2 evaluates the short-format second operand.
func (c *CPU) s2(in isa.Inst) uint32 {
	if in.Imm {
		return uint32(in.Imm13)
	}
	return c.Regs.Get(in.Rs2)
}

func (c *CPU) setFlagsLogic(res uint32) {
	c.flags = isa.Flags{Z: res == 0, N: int32(res) < 0}
}

// setFlagsAdd sets the condition codes for the three-input addition
// a + b + carry = res. Carry-out must be computed from the unwrapped
// three-input sum: folding the carry into b first corrupts C whenever
// b+carry wraps (b = 0xffffffff with carry-in 1), which silently breaks
// multi-word arithmetic chains.
func (c *CPU) setFlagsAdd(a, b, carry, res uint32) {
	c.flags = isa.Flags{
		Z: res == 0,
		N: int32(res) < 0,
		C: uint64(a)+uint64(b)+uint64(carry) > 0xffffffff,
		V: ^(a^b)&(a^res)&0x80000000 != 0,
	}
}

// setFlagsSub sets the condition codes for a - b - borrow = res.
// C means "no borrow", the convention CondLO/CondHIS assume; like the
// add case it is computed from the three unwrapped inputs.
func (c *CPU) setFlagsSub(a, b, borrow, res uint32) {
	c.flags = isa.Flags{
		Z: res == 0,
		N: int32(res) < 0,
		C: uint64(a) >= uint64(b)+uint64(borrow),
		V: (a^b)&(a^res)&0x80000000 != 0,
	}
}

// advance moves sequentially: the executed instruction was at pc; the
// next one is at npc.
func (c *CPU) advance() {
	c.lastPC = c.pc
	c.pc = c.npc
	c.npc = c.pc + isa.InstBytes
	c.inSlot = false
}

// transfer schedules a delayed control transfer: the instruction at npc
// (the delay slot) executes first, then control reaches target.
func (c *CPU) transfer(target uint32) {
	c.lastPC = c.pc
	c.pc = c.npc
	c.npc = target
	c.inSlot = true
}

// execute runs one decoded instruction. cycles and handle are the
// per-opcode metadata (isa cycle cost, trace handle) that the caller
// resolved once — at decode time on the slow path, at cache-fill time on
// the hot path — so the interpreter never re-derives them per visit.
func (c *CPU) execute(in isa.Inst, cycles uint64, handle int) {
	if c.Tracer != nil {
		c.Tracer(c.pc, in)
	}
	if c.Obs != nil {
		c.observeInstr(in, cycles)
	}
	c.Trace.ExecHandle(handle, cycles)

	// A NOP in the shadow of a transfer is a wasted delay slot; the
	// canonical NOP is "add r0, r0, 0" (any write to r0 is a no-op).
	if c.inSlot && in.Op == isa.ADD && in.Rd == 0 && !in.SCC {
		c.Stats.DelaySlotNops++
	}

	switch in.Op {
	case isa.ADD, isa.ADDC:
		a, b := c.Regs.Get(in.Rs1), c.s2(in)
		carry := uint32(0)
		if in.Op == isa.ADDC && c.flags.C {
			carry = 1
		}
		res := a + b + carry
		c.Regs.Set(in.Rd, res)
		if in.SCC {
			c.setFlagsAdd(a, b, carry, res)
		}
		c.advance()

	case isa.SUB, isa.SUBC, isa.SUBR, isa.SUBCR:
		a, b := c.Regs.Get(in.Rs1), c.s2(in)
		if in.Op == isa.SUBR || in.Op == isa.SUBCR {
			a, b = b, a
		}
		borrow := uint32(0)
		if (in.Op == isa.SUBC || in.Op == isa.SUBCR) && !c.flags.C {
			borrow = 1
		}
		res := a - b - borrow
		c.Regs.Set(in.Rd, res)
		if in.SCC {
			c.setFlagsSub(a, b, borrow, res)
		}
		c.advance()

	case isa.AND, isa.OR, isa.XOR:
		a, b := c.Regs.Get(in.Rs1), c.s2(in)
		var res uint32
		switch in.Op {
		case isa.AND:
			res = a & b
		case isa.OR:
			res = a | b
		default:
			res = a ^ b
		}
		c.Regs.Set(in.Rd, res)
		if in.SCC {
			c.setFlagsLogic(res)
		}
		c.advance()

	case isa.SLL, isa.SRL, isa.SRA:
		a := c.Regs.Get(in.Rs1)
		sh := c.s2(in) & 31
		var res uint32
		switch in.Op {
		case isa.SLL:
			res = a << sh
		case isa.SRL:
			res = a >> sh
		default:
			res = uint32(int32(a) >> sh)
		}
		c.Regs.Set(in.Rd, res)
		if in.SCC {
			c.setFlagsLogic(res)
		}
		c.advance()

	case isa.LDL, isa.LDSU, isa.LDSS, isa.LDBU, isa.LDBS:
		addr := c.Regs.Get(in.Rs1) + c.s2(in)
		var v uint32
		var err error
		switch in.Op {
		case isa.LDL:
			v, err = c.Mem.LoadWord(addr)
		case isa.LDSU:
			v, err = c.Mem.LoadHalf(addr)
		case isa.LDSS:
			v, err = c.Mem.LoadHalf(addr)
			v = uint32(int32(v<<16) >> 16)
		case isa.LDBU:
			v, err = c.Mem.LoadByte(addr)
		default: // LDBS
			v, err = c.Mem.LoadByte(addr)
			v = uint32(int32(v<<24) >> 24)
		}
		if err != nil {
			c.fault(fmt.Errorf("cpu: at %#08x: %w", c.pc, err))
			return
		}
		c.Regs.Set(in.Rd, v)
		if in.SCC {
			c.setFlagsLogic(v)
		}
		c.advance()

	case isa.STL, isa.STS, isa.STB:
		addr := c.Regs.Get(in.Rs1) + c.s2(in)
		v := c.Regs.Get(in.Rd)
		var err error
		switch in.Op {
		case isa.STL:
			err = c.Mem.StoreWord(addr, v)
		case isa.STS:
			err = c.Mem.StoreHalf(addr, v)
		default:
			err = c.Mem.StoreByte(addr, v)
		}
		if err != nil {
			c.fault(fmt.Errorf("cpu: at %#08x: %w", c.pc, err))
			return
		}
		c.advance()

	case isa.JMP, isa.JMPR:
		var target uint32
		if in.Op == isa.JMP {
			target = c.Regs.Get(in.Rs1) + c.s2(in)
		} else {
			target = c.pc + uint32(in.Imm19)
		}
		if in.Cond().Eval(c.flags) {
			c.Stats.JumpsTaken++
			c.transfer(target)
		} else {
			c.Stats.JumpsUntaken++
			c.advance()
		}

	case isa.CALL, isa.CALLR, isa.CALLINT:
		if in.Op == isa.CALLINT {
			c.intEnabled = false
		}
		var target uint32
		if in.Op == isa.CALL {
			target = c.Regs.Get(in.Rs1) + c.s2(in)
		} else if in.Op == isa.CALLR {
			target = c.pc + uint32(in.Imm19)
		} else {
			target = c.Regs.Get(in.Rs1) + c.s2(in)
		}
		callPC := c.pc
		if spilled := c.Regs.Call(); spilled != nil {
			if !c.spill(spilled) {
				return
			}
		}
		c.Trace.Depth(c.Regs.Depth())
		if c.Obs != nil {
			c.observeCall(obs.KindCall, callPC, target)
		}
		// The return address lands in the NEW window, so the callee
		// (and RET) can find it; r25 is the software convention.
		c.Regs.Set(in.Rd, callPC)
		c.transfer(target)

	case isa.RET, isa.RETINT:
		if in.Op == isa.RETINT {
			c.intEnabled = true
		}
		target := c.Regs.Get(in.Rd) + c.s2(in)
		if target == HaltAddr {
			// Simulator halt convention: do not retreat the window.
			c.halted = true
			return
		}
		if c.Regs.Return() {
			if !c.refill() {
				return
			}
		}
		if c.Obs != nil {
			c.observeReturn(target)
		}
		c.transfer(target)

	case isa.LDHI:
		c.Regs.Set(in.Rd, uint32(in.Imm19)<<13)
		if in.SCC {
			c.setFlagsLogic(uint32(in.Imm19) << 13)
		}
		c.advance()

	case isa.GTLPC:
		c.Regs.Set(in.Rd, c.lastPC)
		c.advance()

	case isa.GETPSW:
		c.Regs.Set(in.Rd, c.psw())
		c.advance()

	case isa.PUTPSW:
		if !c.setPSW(c.Regs.Get(in.Rs1) + c.s2(in)) {
			return
		}
		c.advance()

	default:
		c.fault(fmt.Errorf("cpu: at %#08x: unimplemented opcode %v", c.pc, in.Op))
	}
}

// spill writes an evicted window to the save stack. It returns false and
// faults the machine on a memory error or when the save stack would run
// past address zero — decrementing the save pointer below zero would
// wrap uint32 and silently overwrite top-of-memory data.
func (c *CPU) spill(vals []uint32) bool {
	need := uint32(4 * len(vals))
	if c.saveSP < need {
		c.fault(fmt.Errorf("cpu: register-save stack overflow: save pointer %#08x cannot hold %d more words", c.saveSP, len(vals)))
		return false
	}
	c.saveSP -= need
	for i, v := range vals {
		if err := c.Mem.StoreWord(c.saveSP+uint32(4*i), v); err != nil {
			c.fault(fmt.Errorf("cpu: window overflow spill: %w", err))
			return false
		}
	}
	cost := uint64(2*len(vals) + trapOverheadCycles)
	if c.Obs != nil {
		c.observeWindowTrap(obs.KindSpill, len(vals), cost)
	}
	c.Stats.TrapCycles += cost
	c.Stats.SpillWords += uint64(len(vals))
	c.Trace.AddCycles(cost)
	return true
}

// refill restores the youngest spilled window from the save stack.
func (c *CPU) refill() bool {
	vals := make([]uint32, regfile.SpillRegs)
	for i := range vals {
		v, err := c.Mem.LoadWord(c.saveSP + uint32(4*i))
		if err != nil {
			c.fault(fmt.Errorf("cpu: window underflow refill: %w", err))
			return false
		}
		vals[i] = v
	}
	c.saveSP += uint32(4 * len(vals))
	c.Regs.Refill(vals)
	cost := uint64(2*len(vals) + trapOverheadCycles)
	if c.Obs != nil {
		c.observeWindowTrap(obs.KindRefill, len(vals), cost)
	}
	c.Stats.TrapCycles += cost
	c.Stats.RefillWords += uint64(len(vals))
	c.Trace.AddCycles(cost)
	return true
}

// psw packs the processor status word; the layout (flags, interrupt
// enable, read-only CWP in bits 8..12) is defined by the isa.PSW*
// constants.
func (c *CPU) psw() uint32 {
	w := c.flags.PSW()
	if c.intEnabled {
		w |= isa.PSWIntEnable
	}
	w |= uint32(c.Regs.CWP()) << isa.PSWCWPShift
	return w
}

// setPSW installs the writable PSW fields (flags, interrupt enable).
// The CWP field is read-only: only CALL/RET/CALLINT/RETINT move the
// window pointer. A GETPSW/PUTPSW round trip in the same window writes
// the current CWP back and succeeds; writing a *different* CWP would
// previously be discarded silently (a lossy round trip with no
// diagnostic), so it now faults. Returns false after faulting.
func (c *CPU) setPSW(w uint32) bool {
	if got := isa.PSWCWP(w); got != c.Regs.CWP() {
		c.fault(fmt.Errorf("cpu: at %#08x: putpsw: CWP field is read-only (wrote %d, current window %d)", c.pc, got, c.Regs.CWP()))
		return false
	}
	c.flags = isa.FlagsFromPSW(w)
	c.intEnabled = w&isa.PSWIntEnable != 0
	return true
}

// Micros converts the accumulated cycle count to microseconds at the
// paper's nominal 400 ns cycle time.
func (c *CPU) Micros() float64 {
	return float64(c.Trace.Cycles) * DefaultCycleNS / 1000
}
