package cpu

import (
	"fmt"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/isa"
)

// selfModifyingSrc runs a three-iteration loop whose body instruction is
// patched at runtime: iteration one executes "add r2, r2, 1", then the
// program stores a freshly encoded "add r2, r2, 5" over it, so later
// iterations must see the new instruction. Final r2 = 1 + 5 + 5 = 11;
// a stale instruction cache would compute 3.
func selfModifyingSrc(t *testing.T) string {
	t.Helper()
	word, err := (isa.Inst{Op: isa.ADD, Rd: 2, Rs1: 2, Imm: true, Imm13: 5}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`
main:	add r2, r0, 0
	add r3, r0, 0
	li r4, %d
	li r5, target
loop:
target:	add r2, r2, 1	; patched to "add r2, r2, 5" after iteration 1
	add r3, r3, 1
	stl r4, r5, 0
	sub. r0, r3, 3
	blt loop
	nop
	ret
	nop
`, int32(word))
}

func TestSelfModifyingCodeInvalidatesICache(t *testing.T) {
	src := selfModifyingSrc(t)
	c := run(t, src, Config{})
	if got := c.Regs.Get(2); got != 11 {
		t.Errorf("r2 = %d, want 11 (store over cached code must invalidate)", got)
	}
	st := c.ICacheStats()
	if st.Fills == 0 {
		t.Error("expected icache fills")
	}
	if st.Invalidations == 0 {
		t.Error("expected icache invalidations from the code patch")
	}
}

// TestSelfModifyingCodeDeterminism checks the tentpole invariant on the
// nastiest input: simulated cycles, instructions, and results must be
// identical with the cache on and off even while the program rewrites
// itself under the cache.
func TestSelfModifyingCodeDeterminism(t *testing.T) {
	src := selfModifyingSrc(t)
	on := run(t, src, Config{})
	off := run(t, src, Config{NoICache: true})
	if on.Trace.Cycles != off.Trace.Cycles {
		t.Errorf("cycles diverge: icache %d, nocache %d", on.Trace.Cycles, off.Trace.Cycles)
	}
	if on.Trace.Instructions != off.Trace.Instructions {
		t.Errorf("instructions diverge: icache %d, nocache %d", on.Trace.Instructions, off.Trace.Instructions)
	}
	if on.Stats != off.Stats {
		t.Errorf("stats diverge:\nicache  %+v\nnocache %+v", on.Stats, off.Stats)
	}
	for r := uint8(0); r < 32; r++ {
		if on.Regs.Get(r) != off.Regs.Get(r) {
			t.Errorf("r%d diverges: %#x vs %#x", r, on.Regs.Get(r), off.Regs.Get(r))
		}
	}
}

func TestNoICacheDisablesCache(t *testing.T) {
	c := run(t, fibSrc, Config{NoICache: true})
	if got := c.Regs.Get(1); got != 144 {
		t.Errorf("fib(12) without icache = %d, want 144", got)
	}
	if st := c.ICacheStats(); st != (ICacheStats{}) {
		t.Errorf("NoICache run recorded cache activity: %+v", st)
	}
}

// TestICacheDeterminismFib compares every observable of a recursive,
// spill-heavy run (window traps store to memory, which exercises the
// OnStore hook) with the cache on and off.
func TestICacheDeterminismFib(t *testing.T) {
	for _, cfg := range []Config{{Windows: 2}, {Windows: 8}} {
		off := cfg
		off.NoICache = true
		a, b := run(t, fibSrc, cfg), run(t, fibSrc, off)
		if a.Trace.Cycles != b.Trace.Cycles || a.Trace.Instructions != b.Trace.Instructions {
			t.Errorf("windows=%d: cycles/instructions diverge: %d/%d vs %d/%d",
				cfg.Windows, a.Trace.Cycles, a.Trace.Instructions, b.Trace.Cycles, b.Trace.Instructions)
		}
		if a.Stats != b.Stats {
			t.Errorf("windows=%d: stats diverge:\nicache  %+v\nnocache %+v", cfg.Windows, a.Stats, b.Stats)
		}
		if a.Regs.Get(1) != b.Regs.Get(1) {
			t.Errorf("windows=%d: results diverge: %d vs %d", cfg.Windows, a.Regs.Get(1), b.Regs.Get(1))
		}
	}
}

// TestICacheFaultParity: a program that jumps into garbage must fault
// with the same diagnostic whether or not the bad word was reached
// through the cache path.
func TestICacheFaultParity(t *testing.T) {
	src := `
main:	jmp alw, r0, 64		; jump to a zeroed word (illegal opcode 0)
	nop
`
	for _, cfg := range []Config{{}, {NoICache: true}} {
		prog, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c := New(cfg)
		c.Reset(prog.Entry)
		prog.LoadInto(c.Mem)
		err = c.Run()
		if err == nil {
			t.Fatalf("cfg %+v: expected illegal-opcode fault", cfg)
		}
	}
}

// BenchmarkStepICache/NoCache measure the interpreter's per-instruction
// cost in isolation (a tight self-loop, no allocation per iteration).
func benchmarkStep(b *testing.B, noICache bool) {
	prog, err := asm.Assemble("main:\tba main\n\tadd r1, r1, 1\n", asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c := New(Config{NoICache: noICache, MaxInstructions: 1 << 62})
	c.Reset(prog.Entry)
	prog.LoadInto(c.Mem)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func BenchmarkStepICache(b *testing.B)  { benchmarkStep(b, false) }
func BenchmarkStepNoCache(b *testing.B) { benchmarkStep(b, true) }
