package loadgen

import (
	"context"

	"risc1/internal/obs"
)

// SweepConfig describes a saturation sweep: a geometric ramp of arrival
// rates, each run through the fixed-rate generator, hunting the
// admission-control knee — the first rate whose 429 (queue_full)
// fraction crosses KneeFrac.
type SweepConfig struct {
	// Base carries everything but the rate; each step overrides
	// Base.Rate and derives its own schedule seed from Base.Seed.
	Base Config
	// StartRate is the first step's arrival rate; each subsequent step
	// multiplies by Factor. Defaults: 25 req/s, ×2, 6 steps.
	StartRate float64
	Factor    float64
	Steps     int
	// RequestsPerStep overrides Base.Requests per step when > 0.
	RequestsPerStep int
	// KneeFrac is the rejected fraction that counts as saturated
	// (default 0.01 — one request in a hundred turned away).
	KneeFrac float64
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.StartRate <= 0 {
		c.StartRate = 25
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.Steps <= 0 {
		c.Steps = 6
	}
	if c.KneeFrac <= 0 {
		c.KneeFrac = 0.01
	}
	return c
}

// Sweep runs the rate ramp and returns a mode "sweep" report with one
// row per step and the located knee (nil when no step saturated). Steps
// run in ascending rate order; the sweep keeps going past the knee so
// the report shows how rejection grows, not just where it starts.
func Sweep(ctx context.Context, cfg SweepConfig, tgt Target, clk Clock) (*obs.LoadReport, error) {
	cfg = cfg.withDefaults()

	rep := obs.NewLoadReport("sweep")
	rate := cfg.StartRate
	for i := 0; i < cfg.Steps; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		step := cfg.Base
		step.Rate = rate
		if cfg.RequestsPerStep > 0 {
			step.Requests = cfg.RequestsPerStep
		}
		// A distinct seed per step: the same base stream at a different
		// rate would replay identical program choices, and we want each
		// step to be an independent draw from the same distribution.
		step.Seed = cfg.Base.Seed + int64(i)*1_000_003

		run, err := Run(ctx, step, tgt, clk)
		if err != nil {
			return rep, err
		}
		if rep.Corpus.Programs == 0 {
			rep.Corpus = run.Corpus
			base := run.Config
			base.RatePerSec = 0 // per-step, not global
			base.Seed = cfg.Base.Seed
			base.SweepStartRate = cfg.StartRate
			base.SweepFactor = cfg.Factor
			base.SweepSteps = cfg.Steps
			base.KneeFrac = cfg.KneeFrac
			rep.Config = base
		}

		row := stepRow(rate, run)
		rep.Steps = append(rep.Steps, row)
		if rep.Knee == nil && row.RejectedFrac >= cfg.KneeFrac {
			rep.Knee = &obs.SweepKnee{RatePerSec: rate, RejectedFrac: row.RejectedFrac}
		}
		rate *= cfg.Factor
	}
	return rep, nil
}

// stepRow folds one fixed-rate run into a sweep row.
func stepRow(rate float64, run *obs.LoadReport) obs.SweepStep {
	row := obs.SweepStep{
		RatePerSec: rate,
		Offered:    run.Totals.Offered,
		P50:        run.Latency.P50,
		P99:        run.Latency.P99,
		P999:       run.Latency.P999,
	}
	for _, o := range run.Totals.Outcomes {
		switch o.Name {
		case "ok":
			row.OK += o.Count
		case "queue_full":
			row.Rejected += o.Count
		default:
			row.Errors += o.Count
		}
	}
	if row.Offered > 0 {
		row.RejectedFrac = float64(row.Rejected) / float64(row.Offered)
	}
	return row
}
