package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"risc1/internal/cluster"
)

// fakeReplica serves a fixed /v1/cluster document.
func fakeReplica(t *testing.T, doc *cluster.Response) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(doc)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func clusterFP() cluster.Fingerprint {
	return cluster.NewFingerprint([]string{"risc1"}, 1<<26, 10*time.Second, 1<<20)
}

// docFor builds a membership document for self that sees every URL in
// all as up.
func docFor(self string, all []string, fp cluster.Fingerprint) *cluster.Response {
	doc := &cluster.Response{
		Schema: cluster.ResponseSchema, Self: self, Generation: 1, Fingerprint: fp,
	}
	for _, u := range all {
		st := cluster.StateUp
		if u == self {
			st = cluster.StateSelf
		}
		doc.Members = append(doc.Members, cluster.Member{URL: u, State: st})
	}
	return doc
}

// TestCheckClusterConverged: replicas agreeing on the up-set and the
// fingerprint pass all three checks.
func TestCheckClusterConverged(t *testing.T) {
	fp := clusterFP()
	// The fakes must know each other's final URLs; allocate first, fill
	// the docs after.
	docA, docB := &cluster.Response{}, &cluster.Response{}
	a, b := fakeReplica(t, docA), fakeReplica(t, docB)
	all := []string{a.URL, b.URL}
	*docA = *docFor(a.URL, all, fp)
	*docB = *docFor(b.URL, all, fp)

	ck := CheckCluster(context.Background(), nil, all)
	if !ck.OK() || !ck.Healthy || !ck.Consistent || !ck.Compatible {
		t.Fatalf("converged cluster failed the check: %+v\n%s", ck, ck.Summary())
	}
	if !strings.Contains(ck.Summary(), "cluster OK") {
		t.Errorf("summary lacks the OK verdict:\n%s", ck.Summary())
	}
}

// TestCheckClusterDivergent: replicas disagreeing about who is up are
// flagged inconsistent (a ring split: keys home differently at each).
func TestCheckClusterDivergent(t *testing.T) {
	fp := clusterFP()
	docA, docB := &cluster.Response{}, &cluster.Response{}
	a, b := fakeReplica(t, docA), fakeReplica(t, docB)
	all := []string{a.URL, b.URL}
	*docA = *docFor(a.URL, all, fp)
	*docB = *docFor(b.URL, all, fp)
	// b thinks a is down.
	docB.Members[0].State = cluster.StateDown

	ck := CheckCluster(context.Background(), nil, all)
	if ck.OK() || ck.Consistent {
		t.Fatalf("divergent views passed the check: %+v", ck)
	}
	if !ck.Healthy || !ck.Compatible {
		t.Errorf("divergence misreported as health/compatibility: %+v", ck)
	}
	if !strings.Contains(ck.Summary(), "divergent membership views") {
		t.Errorf("summary lacks the divergence verdict:\n%s", ck.Summary())
	}
}

// TestCheckClusterHeterogeneous: mismatched fingerprints are flagged
// incompatible even when every view agrees.
func TestCheckClusterHeterogeneous(t *testing.T) {
	fpA := clusterFP()
	fpB := cluster.NewFingerprint([]string{"risc1"}, 1<<10, 10*time.Second, 1<<20)
	docA, docB := &cluster.Response{}, &cluster.Response{}
	a, b := fakeReplica(t, docA), fakeReplica(t, docB)
	all := []string{a.URL, b.URL}
	*docA = *docFor(a.URL, all, fpA)
	*docB = *docFor(b.URL, all, fpB)

	ck := CheckCluster(context.Background(), nil, all)
	if ck.OK() || ck.Compatible {
		t.Fatalf("heterogeneous fingerprints passed the check: %+v", ck)
	}
	if !strings.Contains(ck.Summary(), "incompatible fingerprints") {
		t.Errorf("summary lacks the incompatibility verdict:\n%s", ck.Summary())
	}
}

// TestCheckClusterUnreachable: a dead replica fails Healthy but the
// survivors' agreement is still evaluated.
func TestCheckClusterUnreachable(t *testing.T) {
	fp := clusterFP()
	docA := &cluster.Response{}
	a := fakeReplica(t, docA)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	all := []string{a.URL, dead.URL}
	*docA = *docFor(a.URL, all, fp)

	ck := CheckCluster(context.Background(), nil, all)
	if ck.Healthy || ck.OK() {
		t.Fatalf("unreachable replica passed the health check: %+v", ck)
	}
	if !strings.Contains(ck.Summary(), "UNREACHABLE") {
		t.Errorf("summary lacks the unreachable row:\n%s", ck.Summary())
	}
}
